package repro_test

// End-to-end CLI integration tests: build the three commands and drive the
// full generate → embed → attack → detect pipeline through real processes
// and CSV files, the way a downstream user would.

import (
	"encoding/json"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"
)

const itemScanSpec = "Visit_Nbr:int!key, Item_Nbr:int:categorical"

// buildCommands compiles the CLIs once into a shared temp dir.
func buildCommands(t *testing.T) map[string]string {
	t.Helper()
	dir := t.TempDir()
	bins := map[string]string{}
	for _, name := range []string{"wmtool", "wmdatagen", "wmexperiments", "wmserver"} {
		bin := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
		cmd.Dir = "."
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, out)
		}
		bins[name] = bin
	}
	return bins
}

func run(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err != nil {
		t.Fatalf("%s %s: %v\n%s", filepath.Base(bin), strings.Join(args, " "), err, out)
	}
	return string(out)
}

func runExpectFail(t *testing.T, bin string, args ...string) string {
	t.Helper()
	out, err := exec.Command(bin, args...).CombinedOutput()
	if err == nil {
		t.Fatalf("%s %s: expected failure\n%s", filepath.Base(bin), strings.Join(args, " "), out)
	}
	return string(out)
}

func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bins := buildCommands(t)
	dir := t.TempDir()
	data := filepath.Join(dir, "itemscan.csv")
	marked := filepath.Join(dir, "marked.csv")
	attacked := filepath.Join(dir, "attacked.csv")
	domain := filepath.Join(dir, "Item_Nbr.domain")

	// 1. Generate, including the catalog file the detector will need.
	out := run(t, bins["wmdatagen"], "-dataset", "itemscan", "-n", "8000",
		"-catalog", "400", "-seed", "cli-test", "-out", data, "-domains-dir", dir)
	if !strings.Contains(out, "wrote 8000 tuples") {
		t.Fatalf("datagen output: %s", out)
	}
	if _, err := os.Stat(domain); err != nil {
		t.Fatalf("catalog file missing: %v", err)
	}

	// 2. Embed against the catalog domain.
	out = run(t, bins["wmtool"], "embed", "-in", data, "-schema", itemScanSpec,
		"-attr", "Item_Nbr", "-wm", "1011001110", "-k1", "cli-s1", "-k2", "cli-s2",
		"-e", "40", "-domain", domain, "-out", marked)
	if !strings.Contains(out, "embedded 10-bit watermark") {
		t.Fatalf("embed output: %s", out)
	}
	// Bandwidth 8000/40 = 200 appears in the output for the detect step.
	if !strings.Contains(out, "bandwidth |wm_data|: 200") {
		t.Fatalf("embed output lacks bandwidth: %s", out)
	}

	// 3. Detect on the intact file.
	out = run(t, bins["wmtool"], "detect", "-in", marked, "-schema", itemScanSpec,
		"-attr", "Item_Nbr", "-wmlen", "10", "-k1", "cli-s1", "-k2", "cli-s2",
		"-e", "40", "-domain", domain, "-expect", "1011001110")
	if !strings.Contains(out, "detected watermark: 1011001110") {
		t.Fatalf("detect output: %s", out)
	}
	if !strings.Contains(out, "match vs expected: 100.0%") {
		t.Fatalf("detect match: %s", out)
	}

	// 4. Attack: drop 50% of tuples, then detect with the recorded
	// bandwidth and the catalog domain.
	run(t, bins["wmtool"], "attack", "-in", marked, "-schema", itemScanSpec,
		"-type", "subset", "-frac", "0.5", "-seed", "cli-attack", "-out", attacked)
	out = run(t, bins["wmtool"], "detect", "-in", attacked, "-schema", itemScanSpec,
		"-attr", "Item_Nbr", "-wmlen", "10", "-k1", "cli-s1", "-k2", "cli-s2",
		"-e", "40", "-bandwidth", "200", "-domain", domain, "-expect", "1011001110")
	if !strings.Contains(out, "match vs expected: 100.0%") {
		t.Fatalf("post-attack detect: %s", out)
	}

	// 4b. The documented pitfall: detecting the attacked file *without*
	// the catalog derives a shifted domain and degrades the match.
	out = run(t, bins["wmtool"], "detect", "-in", attacked, "-schema", itemScanSpec,
		"-attr", "Item_Nbr", "-wmlen", "10", "-k1", "cli-s1", "-k2", "cli-s2",
		"-e", "40", "-bandwidth", "200", "-expect", "1011001110")
	if strings.Contains(out, "match vs expected: 100.0%") {
		t.Logf("note: data-derived domain happened to survive the subset attack intact")
	}

	// 5. Wrong keys must not reproduce the mark.
	out = run(t, bins["wmtool"], "detect", "-in", marked, "-schema", itemScanSpec,
		"-attr", "Item_Nbr", "-wmlen", "10", "-k1", "wrong", "-k2", "keys",
		"-e", "40", "-expect", "1011001110")
	if strings.Contains(out, "match vs expected: 100.0%") {
		t.Fatalf("wrong keys matched: %s", out)
	}
}

// TestCLICertificateFlow exercises the recommended watermark/verify flow:
// one certificate file carries everything needed for later verification,
// including after an attack and after a bijective remap.
func TestCLICertificateFlow(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bins := buildCommands(t)
	dir := t.TempDir()
	data := filepath.Join(dir, "data.csv")
	marked := filepath.Join(dir, "marked.csv")
	attacked := filepath.Join(dir, "attacked.csv")
	remapped := filepath.Join(dir, "remapped.csv")
	record := filepath.Join(dir, "record.json")

	run(t, bins["wmdatagen"], "-dataset", "itemscan", "-n", "20000",
		"-catalog", "300", "-zipf", "1.2", "-seed", "cert-test", "-out", data)
	out := run(t, bins["wmtool"], "watermark", "-in", data, "-schema", itemScanSpec,
		"-attr", "Item_Nbr", "-secret", "cert-secret", "-wm", "1011001110",
		"-e", "50", "-out", marked, "-record", record)
	if !strings.Contains(out, "certificate written") {
		t.Fatalf("watermark output: %s", out)
	}

	// Verify intact.
	out = run(t, bins["wmtool"], "verify", "-in", marked, "-schema", itemScanSpec,
		"-record", record)
	if !strings.Contains(out, "verdict: WATERMARK PRESENT") {
		t.Fatalf("verify output: %s", out)
	}
	if !strings.Contains(out, "bit agreement:      100.0%") {
		t.Fatalf("verify agreement: %s", out)
	}

	// Verify after a 50% subset attack — the record carries the bandwidth.
	run(t, bins["wmtool"], "attack", "-in", marked, "-schema", itemScanSpec,
		"-type", "subset", "-frac", "0.5", "-seed", "cert-attack", "-out", attacked)
	out = run(t, bins["wmtool"], "verify", "-in", attacked, "-schema", itemScanSpec,
		"-record", record)
	if !strings.Contains(out, "verdict: WATERMARK PRESENT") {
		t.Fatalf("post-attack verify: %s", out)
	}

	// Verify after a bijective remap — automatic Section 4.5 recovery.
	run(t, bins["wmtool"], "attack", "-in", marked, "-schema", itemScanSpec,
		"-type", "remap", "-attr", "Item_Nbr", "-seed", "cert-remap", "-out", remapped)
	out = run(t, bins["wmtool"], "verify", "-in", remapped, "-schema", itemScanSpec,
		"-record", record)
	if !strings.Contains(out, "inverse mapping") {
		t.Fatalf("remap recovery note missing: %s", out)
	}
	if !strings.Contains(out, "verdict: WATERMARK PRESENT") &&
		!strings.Contains(out, "verdict: partial match") {
		t.Fatalf("post-remap verify: %s", out)
	}

	// The certificate is the secret: verification with a corrupted record
	// must fail cleanly.
	if err := os.WriteFile(record, []byte(`{"secret":""}`), 0o600); err != nil {
		t.Fatal(err)
	}
	runExpectFail(t, bins["wmtool"], "verify", "-in", marked, "-schema", itemScanSpec,
		"-record", record)
}

func TestCLIAttackVariants(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bins := buildCommands(t)
	dir := t.TempDir()
	data := filepath.Join(dir, "data.csv")
	run(t, bins["wmdatagen"], "-dataset", "itemscan", "-n", "2000",
		"-catalog", "100", "-seed", "variants", "-out", data)

	for _, tc := range []struct {
		typ  string
		args []string
	}{
		{"addition", nil},
		{"alteration", []string{"-attr", "Item_Nbr"}},
		{"shuffle", nil},
		{"sort", []string{"-attr", "Item_Nbr"}},
		{"remap", []string{"-attr", "Item_Nbr"}},
	} {
		out := filepath.Join(dir, tc.typ+".csv")
		args := append([]string{"attack", "-in", data, "-schema", itemScanSpec,
			"-type", tc.typ, "-frac", "0.2", "-out", out}, tc.args...)
		run(t, bins["wmtool"], args...)
		if _, err := os.Stat(out); err != nil {
			t.Errorf("%s: no output file", tc.typ)
		}
	}
}

func TestCLIAnalyze(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bins := buildCommands(t)
	out := run(t, bins["wmtool"], "analyze", "-n", "6000", "-e", "60",
		"-a", "1200", "-p", "0.7", "-r", "15")
	for _, want := range []string{
		"marked tuples attacked (a/e):     20",
		"P(r,a) normal approx",
		"minimum e",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("analyze output missing %q:\n%s", want, out)
		}
	}
}

func TestCLIExperimentsTableA(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bins := buildCommands(t)
	dir := t.TempDir()
	out := run(t, bins["wmexperiments"], "-run", "tablea", "-outdir", dir)
	if !strings.Contains(out, "Table A") {
		t.Fatalf("experiments output: %s", out)
	}
	csv, err := os.ReadFile(filepath.Join(dir, "tablea.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(csv), "row,paper_value,computed") {
		t.Fatalf("tablea.csv header: %s", csv[:40])
	}
}

func TestCLIErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bins := buildCommands(t)
	// Missing required flags.
	runExpectFail(t, bins["wmtool"], "embed", "-in", "x.csv")
	// Unknown command.
	runExpectFail(t, bins["wmtool"], "frobnicate")
	// Unknown attack type.
	dir := t.TempDir()
	data := filepath.Join(dir, "d.csv")
	run(t, bins["wmdatagen"], "-dataset", "itemscan", "-n", "100",
		"-catalog", "10", "-out", data)
	runExpectFail(t, bins["wmtool"], "attack", "-in", data, "-schema", itemScanSpec,
		"-type", "nuke", "-out", filepath.Join(dir, "o.csv"))
	// Datagen without -out.
	runExpectFail(t, bins["wmdatagen"], "-dataset", "itemscan")
}

// TestCLIParallel: the -parallel flag must reproduce the sequential
// embed/detect results exactly — same marked file, same recovered bits.
func TestCLIParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bins := buildCommands(t)
	dir := t.TempDir()
	data := filepath.Join(dir, "itemscan.csv")
	seqMarked := filepath.Join(dir, "seq.csv")
	parMarked := filepath.Join(dir, "par.csv")
	domain := filepath.Join(dir, "Item_Nbr.domain")

	run(t, bins["wmdatagen"], "-dataset", "itemscan", "-n", "8000",
		"-catalog", "400", "-seed", "cli-parallel", "-out", data, "-domains-dir", dir)

	embedArgs := []string{"embed", "-in", data, "-schema", itemScanSpec,
		"-attr", "Item_Nbr", "-wm", "1011001110", "-k1", "cli-s1", "-k2", "cli-s2",
		"-e", "40", "-domain", domain}
	run(t, bins["wmtool"], append(embedArgs, "-out", seqMarked)...)
	run(t, bins["wmtool"], append(embedArgs, "-out", parMarked, "-parallel", "0")...)

	seqBytes, err := os.ReadFile(seqMarked)
	if err != nil {
		t.Fatal(err)
	}
	parBytes, err := os.ReadFile(parMarked)
	if err != nil {
		t.Fatal(err)
	}
	if string(seqBytes) != string(parBytes) {
		t.Fatal("-parallel embed produced a different marked file")
	}

	out := run(t, bins["wmtool"], "detect", "-in", parMarked, "-schema", itemScanSpec,
		"-attr", "Item_Nbr", "-wmlen", "10", "-k1", "cli-s1", "-k2", "cli-s2",
		"-e", "40", "-domain", domain, "-expect", "1011001110", "-parallel", "0")
	if !strings.Contains(out, "detected watermark: 1011001110") ||
		!strings.Contains(out, "match vs expected: 100.0%") {
		t.Fatalf("parallel detect output: %s", out)
	}
}

// TestCLIBatchVerify: `verify -records a,b` audits one suspect against
// several certificates in a single streaming scan.
func TestCLIBatchVerify(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	bins := buildCommands(t)
	dir := t.TempDir()
	data := filepath.Join(dir, "data.csv")
	marked := filepath.Join(dir, "marked.csv")
	recordA := filepath.Join(dir, "owner.json")
	recordB := filepath.Join(dir, "bystander.json")

	run(t, bins["wmdatagen"], "-dataset", "itemscan", "-n", "12000",
		"-catalog", "300", "-seed", "batch-cli", "-out", data)
	run(t, bins["wmtool"], "watermark", "-in", data, "-schema", itemScanSpec,
		"-attr", "Item_Nbr", "-secret", "batch-owner", "-wm", "1011001110",
		"-e", "40", "-out", marked, "-record", recordA)
	// A second owner marks a throwaway copy: their certificate must NOT
	// match the first owner's data.
	run(t, bins["wmtool"], "watermark", "-in", data, "-schema", itemScanSpec,
		"-attr", "Item_Nbr", "-secret", "batch-bystander", "-wm", "1011001110",
		"-e", "40", "-out", filepath.Join(dir, "other.csv"), "-record", recordB)

	out := run(t, bins["wmtool"], "verify", "-in", marked, "-schema", itemScanSpec,
		"-records", recordA+","+recordB, "-parallel", "0")
	if !strings.Contains(out, "against 2 certificates (one scan)") {
		t.Fatalf("batch verify banner: %s", out)
	}
	if !strings.Contains(out, "WATERMARK PRESENT") {
		t.Fatalf("owner certificate not detected: %s", out)
	}
	if !strings.Contains(out, "no watermark evidence") {
		t.Fatalf("bystander certificate not rejected: %s", out)
	}

	// -record and -records are mutually exclusive; one is required.
	runExpectFail(t, bins["wmtool"], "verify", "-in", marked, "-schema", itemScanSpec,
		"-record", recordA, "-records", recordA+","+recordB)
	runExpectFail(t, bins["wmtool"], "verify", "-in", marked, "-schema", itemScanSpec)
}

// TestCLIRemoteMode drives the SDK-backed remote mode end to end with
// real processes: a wmtool-serve server, then watermark/verify/audit
// against it over HTTP — the certificate living only in the server's
// store, addressed by ID.
func TestCLIRemoteMode(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries and runs a server")
	}
	bins := buildCommands(t)
	dir := t.TempDir()
	data := filepath.Join(dir, "itemscan.csv")
	marked := filepath.Join(dir, "marked.csv")

	run(t, bins["wmdatagen"], "-dataset", "itemscan", "-n", "6000",
		"-catalog", "300", "-seed", "cli-remote", "-out", data, "-domains-dir", dir)

	// Grab a free port, then hand it to the server process.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	serverURL := "http://" + addr

	srv := exec.Command(bins["wmtool"], "serve", "-addr", addr,
		"-store", filepath.Join(dir, "store"), "-workers", "2", "-job-workers", "2")
	var srvOut strings.Builder
	srv.Stdout, srv.Stderr = &srvOut, &srvOut
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Process.Signal(os.Interrupt) //nolint:errcheck
		srv.Wait()                       //nolint:errcheck
	})
	// Wait for liveness.
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(serverURL + "/healthz")
		if err == nil {
			resp.Body.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never came up: %v\n%s", err, srvOut.String())
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Remote watermark: certificate stored server-side, ID printed.
	out := run(t, bins["wmtool"], "watermark", "-server", serverURL,
		"-in", data, "-schema", itemScanSpec, "-attr", "Item_Nbr",
		"-secret", "cli-remote-secret", "-wm", "1011001110", "-e", "40",
		"-domain", filepath.Join(dir, "Item_Nbr.domain"), "-out", marked)
	m := regexp.MustCompile(`certificate stored server-side: id ([0-9a-f]{32})`).FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("watermark -server output lacks certificate id:\n%s", out)
	}
	certID := m[1]

	// Remote verify by stored ID, suspect streamed from disk.
	out = run(t, bins["wmtool"], "verify", "-server", serverURL,
		"-in", marked, "-schema", itemScanSpec, "-record", certID)
	if !strings.Contains(out, "bit agreement:      100.0%") ||
		!strings.Contains(out, "WATERMARK PRESENT") {
		t.Fatalf("verify -server output:\n%s", out)
	}

	// Async audit job: submit, wait, per-certificate verdicts.
	out = run(t, bins["wmtool"], "audit", "-server", serverURL,
		"-in", marked, "-schema", itemScanSpec, "-poll", "20ms")
	if !strings.Contains(out, "audit job job-") || !strings.Contains(out, "done in") {
		t.Fatalf("audit output lacks job lifecycle:\n%s", out)
	}
	if !strings.Contains(out, certID) || !strings.Contains(out, "WATERMARK PRESENT") {
		t.Fatalf("audit verdicts wrong:\n%s", out)
	}

	// The pristine file must not audit as present.
	out = run(t, bins["wmtool"], "audit", "-server", serverURL,
		"-in", data, "-schema", itemScanSpec, "-poll", "20ms")
	if strings.Contains(out, "WATERMARK PRESENT") {
		t.Fatalf("pristine data audited as present:\n%s", out)
	}
}

// TestCLIClusterAudit drives the distributed topology as real processes:
// one wmserver -coordinator, two wmserver -join workers, and wmtool
// audit -json pointed at the coordinator. The audit fans out across the
// worker processes and the -json report on stdout is pure
// machine-readable JSON matching the single-node verdicts.
func TestCLIClusterAudit(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries and runs three servers")
	}
	bins := buildCommands(t)
	dir := t.TempDir()
	data := filepath.Join(dir, "itemscan.csv")
	marked := filepath.Join(dir, "marked.csv")
	run(t, bins["wmdatagen"], "-dataset", "itemscan", "-n", "6000",
		"-catalog", "300", "-seed", "cli-cluster", "-out", data, "-domains-dir", dir)

	freePort := func() string {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr := l.Addr().String()
		l.Close()
		return addr
	}
	startServer := func(name string, args ...string) string {
		t.Helper()
		addr := freePort()
		full := append([]string{"-addr", addr, "-store", filepath.Join(dir, name)}, args...)
		srv := exec.Command(bins["wmserver"], full...)
		var out strings.Builder
		srv.Stdout, srv.Stderr = &out, &out
		if err := srv.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			srv.Process.Signal(os.Interrupt) //nolint:errcheck
			srv.Wait()                       //nolint:errcheck
		})
		url := "http://" + addr
		deadline := time.Now().Add(15 * time.Second)
		for {
			resp, err := http.Get(url + "/healthz")
			if err == nil {
				resp.Body.Close()
				return url
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s never came up: %v\n%s", name, err, out.String())
			}
			time.Sleep(50 * time.Millisecond)
		}
	}

	coordURL := startServer("coord", "-coordinator", "-shard-rows", "700")
	startServer("w1", "-join", coordURL, "-capacity", "2")
	startServer("w2", "-join", coordURL, "-capacity", "2")

	// Watermark through the coordinator so the certificate lands in ITS
	// store (workers need none — certificates travel in shard requests).
	out := run(t, bins["wmtool"], "watermark", "-server", coordURL,
		"-in", data, "-schema", itemScanSpec, "-attr", "Item_Nbr",
		"-secret", "cli-cluster-secret", "-wm", "1011001110", "-e", "40",
		"-domain", filepath.Join(dir, "Item_Nbr.domain"), "-out", marked)
	m := regexp.MustCompile(`certificate stored server-side: id ([0-9a-f]{32})`).FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("watermark output lacks certificate id:\n%s", out)
	}
	certID := m[1]

	// Wait for both workers' first heartbeats to land.
	deadline := time.Now().Add(15 * time.Second)
	for {
		resp, err := http.Get(coordURL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		var health struct {
			Cluster struct {
				LiveWorkers int `json:"live_workers"`
			} `json:"cluster"`
		}
		err = json.NewDecoder(resp.Body).Decode(&health)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if health.Cluster.LiveWorkers == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("workers never joined (live=%d)", health.Cluster.LiveWorkers)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Distributed audit with -json: stdout is the pure JSON report.
	cmd := exec.Command(bins["wmtool"], "audit", "-server", coordURL,
		"-in", marked, "-schema", itemScanSpec, "-poll", "20ms", "-json")
	var stdout, stderr strings.Builder
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("audit -json: %v\nstdout:\n%s\nstderr:\n%s", err, stdout.String(), stderr.String())
	}
	var report struct {
		Results []struct {
			ID      string  `json:"id"`
			Match   float64 `json:"match"`
			Verdict string  `json:"verdict"`
		} `json:"results"`
		Tuples int `json:"tuples"`
	}
	if err := json.Unmarshal([]byte(stdout.String()), &report); err != nil {
		t.Fatalf("stdout is not pure JSON: %v\n%s", err, stdout.String())
	}
	if report.Tuples != 6000 || len(report.Results) != 1 {
		t.Fatalf("report shape: %+v", report)
	}
	if r := report.Results[0]; r.ID != certID || r.Match != 1 || r.Verdict != "present" {
		t.Fatalf("distributed verdict: %+v", r)
	}
	if !strings.Contains(stderr.String(), "audit job job-") {
		t.Fatalf("human chatter missing from stderr:\n%s", stderr.String())
	}
}
