package repro_test

// Cross-package integration scenarios: full pipelines composing the core
// codec, the quality assessor with the constraint language, the attack
// suite, multi-attribute embedding, and the frequency channel — the ways a
// downstream user would actually combine the packages.

import (
	"bytes"
	"strconv"
	"testing"

	"repro/internal/attacks"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/ecc"
	"repro/internal/freq"
	"repro/internal/keyhash"
	"repro/internal/mark"
	"repro/internal/multimark"
	"repro/internal/quality"
	"repro/internal/relation"
	"repro/internal/stats"
)

// TestGauntlet runs the full adversary model against one watermarked
// relation: every attack class, stacked compositions included, against the
// core certificate API.
func TestGauntlet(t *testing.T) {
	r, dom, err := datagen.ItemScan(datagen.ItemScanConfig{
		N: 30000, CatalogSize: 500, ZipfS: 1.0, Seed: "gauntlet",
	})
	if err != nil {
		t.Fatal(err)
	}
	rec, _, err := core.Watermark(r, core.Spec{
		Secret:    "gauntlet-secret",
		Attribute: "Item_Nbr",
		WM:        "1011001110",
		E:         60,
		Domain:    dom,
	})
	if err != nil {
		t.Fatal(err)
	}
	src := stats.NewSource("gauntlet-attacks")

	check := func(name string, attacked *relation.Relation, minMatch float64) {
		t.Helper()
		rep, err := rec.Verify(attacked)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rep.Match < minMatch {
			t.Errorf("%s: match %.2f < %.2f", name, rep.Match, minMatch)
		}
	}

	// A1 at three severities.
	for _, keep := range []float64{0.8, 0.5, 0.2} {
		a, err := attacks.HorizontalSubset(r, keep, src.Fork("a1-"+strconv.Itoa(int(keep*100))))
		if err != nil {
			t.Fatal(err)
		}
		check("A1 keep "+strconv.Itoa(int(keep*100))+"%", a, 1.0)
	}
	// A2.
	a2, err := attacks.SubsetAddition(r, 0.4, src.Fork("a2"))
	if err != nil {
		t.Fatal(err)
	}
	check("A2 +40%", a2, 0.9)
	// A3 moderate.
	a3, err := attacks.SubsetAlteration(r, "Item_Nbr", 0.3, dom, src.Fork("a3"))
	if err != nil {
		t.Fatal(err)
	}
	check("A3 30%", a3, 0.9)
	// A4 both forms.
	check("A4 shuffle", attacks.Resort(r, src.Fork("a4")), 1.0)
	sorted, err := attacks.SortByAttr(r, "Item_Nbr")
	if err != nil {
		t.Fatal(err)
	}
	check("A4 sort", sorted, 1.0)
	// A6 with automatic recovery.
	a6, _, err := attacks.BijectiveRemap(r, "Item_Nbr", src.Fork("a6"))
	if err != nil {
		t.Fatal(err)
	}
	check("A6 remap+auto-recovery", a6, 0.7)

	// Stacked: A3 (15%) → A2 (+20%) → A1 (keep 60%) → A4.
	s1, err := attacks.SubsetAlteration(r, "Item_Nbr", 0.15, dom, src.Fork("s1"))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := attacks.SubsetAddition(s1, 0.2, src.Fork("s2"))
	if err != nil {
		t.Fatal(err)
	}
	s3, err := attacks.HorizontalSubset(s2, 0.6, src.Fork("s3"))
	if err != nil {
		t.Fatal(err)
	}
	s4 := attacks.Resort(s3, src.Fork("s4"))
	check("stacked A3+A2+A1+A4", s4, 0.9)
}

// TestConstraintGatedEmbedding drives the Section 4.1 + Section 6 story
// end to end: the owner expresses semantic constraints in the expression
// language, the assessor enforces them during embedding, the rollback log
// can undo everything, and the watermark still detects.
func TestConstraintGatedEmbedding(t *testing.T) {
	r, dom, err := datagen.ItemScan(datagen.ItemScanConfig{
		N: 20000, CatalogSize: 400, ZipfS: 1.0, Seed: "constrained",
	})
	if err != nil {
		t.Fatal(err)
	}
	orig := r.Clone()

	budget, err := quality.ParseConstraint("budget",
		"altered_fraction() <= 0.02 and freq_drift('Item_Nbr') <= 0.08", r)
	if err != nil {
		t.Fatal(err)
	}
	assessor := quality.NewAssessor(budget, quality.ValueDomain("Item_Nbr", dom))
	opts := mark.Options{
		Attr:     "Item_Nbr",
		K1:       keyhash.NewKey("cons-k1"),
		K2:       keyhash.NewKey("cons-k2"),
		E:        50, // would alter ~2% unconstrained — right at the budget
		Domain:   dom,
		Assessor: assessor,
	}
	wm := ecc.MustParseBits("1011001110")
	st, err := mark.Embed(r, wm, opts)
	if err != nil {
		t.Fatal(err)
	}
	if frac := st.AlterationRate(); frac > 0.02 {
		t.Fatalf("alteration %.4f exceeded the expressed budget", frac)
	}
	rep, err := mark.Detect(r, len(wm), opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MatchFraction(wm) < 0.9 {
		t.Fatalf("constrained embedding too weak: %v", rep.MatchFraction(wm))
	}
	// The rollback log restores the original byte for byte.
	if err := assessor.UndoAll(r); err != nil {
		t.Fatal(err)
	}
	if !r.Equal(orig) {
		t.Fatal("rollback failed to restore the original relation")
	}
}

// TestBeltAndBraces combines all three embedding layers — key channel,
// multimark inter-attribute channel, frequency channel — on one relation
// and verifies each witness independently under the attack it is built for.
func TestBeltAndBraces(t *testing.T) {
	r, cities, airs, err := datagen.Airline(datagen.AirlineConfig{
		N: 30000, Cities: 1500, Airlines: 25, Seed: "belt-braces",
	})
	if err != nil {
		t.Fatal(err)
	}
	wm := ecc.MustParseBits("110101")
	cfg := multimark.Config{
		Secret: "belt-secret",
		E:      25,
		Domains: map[string]*relation.Domain{
			"departure_city": cities,
			"airline":        airs,
		},
	}
	plan, err := multimark.BuildPlan(r, cfg, multimark.PlanOptions{IncludeInterAttribute: true})
	if err != nil {
		t.Fatal(err)
	}
	rec, _, err := multimark.EmbedAll(r, wm, plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The frequency channel needs enough distinct values per watermark bit;
	// the 25-value airline attribute is too thin for 6 bits and must say
	// so through the failure report rather than silently half-encode.
	fp := freq.DefaultParams(keyhash.NewKey("belt-freq"))
	thinStats, err := freq.Embed(r.Clone(), "airline", wm, fp)
	if err != nil {
		t.Fatal(err)
	}
	if len(thinStats.Numeric.Failed) == 0 {
		t.Log("note: thin attribute encoded all subsets this time")
	}
	// The 1500-value city attribute carries it comfortably.
	if _, err := freq.Embed(r, "departure_city", wm, fp); err != nil {
		t.Fatal(err)
	}

	// Witness 1: intact data through the combined channels.
	comb, err := multimark.DetectAll(r, rec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if comb.WM.String() != wm.String() {
		t.Fatalf("combined channels: %s vs %s", comb.WM, wm)
	}

	// Witness 2: extreme partition to the city column only — frequency
	// channel territory.
	bag := relation.New(relation.MustSchema([]relation.Attribute{
		{Name: "rowid", Type: relation.TypeInt},
		{Name: "departure_city", Type: relation.TypeString, Categorical: true},
	}, "rowid"))
	for i := 0; i < r.Len(); i++ {
		v, _ := r.Value(i, "departure_city")
		bag.MustAppend(relation.Tuple{strconv.Itoa(i), v})
	}
	frep, err := freq.Detect(bag, "departure_city", len(wm), fp)
	if err != nil {
		t.Fatal(err)
	}
	if ecc.AlterationRate(wm, frep.WM) > 0.2 {
		t.Fatalf("frequency witness on single column: %s vs %s", frep.WM, wm)
	}
}

// TestUnicodeAndQuotedValues pushes non-ASCII and CSV-hostile categorical
// values through the full embed → CSV round trip → detect pipeline.
func TestUnicodeAndQuotedValues(t *testing.T) {
	catalog := []string{
		"München", "İstanbul", "北京", "São Paulo", "Zürich",
		`quoted "city"`, "comma, city", "tab\tcity", "Владивосток", "Kraków",
	}
	s := relation.MustSchema([]relation.Attribute{
		{Name: "id", Type: relation.TypeInt},
		{Name: "city", Type: relation.TypeString, Categorical: true},
	}, "id")
	r := relation.New(s)
	src := stats.NewSource("unicode")
	for i := 0; i < 4000; i++ {
		r.MustAppend(relation.Tuple{strconv.Itoa(i), catalog[src.Intn(len(catalog))]})
	}
	dom := relation.MustDomain(catalog)
	opts := mark.Options{
		Attr:   "city",
		K1:     keyhash.NewKey("uni-k1"),
		K2:     keyhash.NewKey("uni-k2"),
		E:      20,
		Domain: dom,
	}
	wm := ecc.MustParseBits("10110")
	if _, err := mark.Embed(r, wm, opts); err != nil {
		t.Fatal(err)
	}

	// CSV round trip.
	var buf bytes.Buffer
	if err := relation.WriteCSV(&buf, r); err != nil {
		t.Fatal(err)
	}
	back, err := relation.ReadCSV(&buf, s)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := mark.Detect(back, len(wm), opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.WM.String() != wm.String() {
		t.Fatalf("unicode round trip: %s vs %s", rep.WM, wm)
	}
}
