// Command wmserver runs the watermarking system as an HTTP service: embed
// and verify jobs arrive as JSON, run through the chunked worker pool of
// internal/pipeline, and certificates persist in an on-disk record store.
//
// Usage:
//
//	wmserver -addr :8080 -store ./wmstore -workers 0 -scanner-cache 256
//
// One binary plays every cluster role. A coordinator accepts worker
// registrations and fans corpus audits out across them; workers join a
// coordinator and scan the row-range shards it dispatches:
//
//	wmserver -addr :8080 -store ./wmstore -coordinator
//	wmserver -addr :8081 -store ./w1store -join http://coord:8080 -capacity 2
//	wmserver -addr :8082 -store ./w2store -join http://coord:8080 -capacity 2
//
// Point clients (wmtool audit, the SDK, curl) at the coordinator; audits
// are distributed transparently and the reports are bit-identical to a
// single-node scan. See internal/server for the endpoint reference,
// internal/cluster for the protocol, README.md for a quickstart with
// curl. SIGINT/SIGTERM drains in-flight requests before exiting.
//
// Every role serves Prometheus-format telemetry at GET /metrics and logs
// structured lines (log/slog, -log-level, switchable at runtime via
// PUT /debug/loglevel) carrying the X-Request-ID that correlates an API
// call with the shard scans it fans out; -pprof additionally mounts
// net/http/pprof under /debug/pprof/. Distributed traces ride W3C
// traceparent headers across the cluster: GET /v2/jobs/{id}/trace
// assembles a job's cross-process span tree, GET /debug/traces lists the
// flight recorder's slowest and errored requests, and -trace-sample /
// -trace-ring / -trace-off tune or disable the recorder.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net"
	"os"
	"strconv"

	"repro/internal/cluster"
	"repro/internal/keyhash"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	storeDir := flag.String("store", "./wmstore", "certificate store directory")
	workers := flag.Int("workers", 0, "default pipeline workers per job (0 = NumCPU)")
	maxBody := flag.Int64("max-body", server.DefaultMaxBodyBytes, "maximum request body bytes")
	scannerCache := flag.Int("scanner-cache", 0, "prepared-certificate cache entries (0 = default, negative = disable)")
	jobWorkers := flag.Int("job-workers", 0, "concurrent async jobs (0 = default)")
	jobQueue := flag.Int("job-queue", 0, "async job queue depth; beyond it POST /v2/jobs replies 429 (0 = default)")
	coordinator := flag.Bool("coordinator", false, "act as cluster coordinator: accept worker registrations and fan corpus audits out across them")
	join := flag.String("join", "", "coordinator base URL to join as a scan worker (e.g. http://coord:8080)")
	advertise := flag.String("advertise", "", "base URL the coordinator reaches this worker at (default derives http://127.0.0.1:<port> from -addr)")
	workerID := flag.String("worker-id", "", "stable worker identity across restarts (default: the advertise URL)")
	capacity := flag.Int("capacity", 0, "concurrent shards this worker scans (0 = 1)")
	shardRows := flag.String("shard-rows", "", "suspect rows per dispatched shard when coordinating: a row count, or \"auto\" to size each shard from the receiving worker's observed throughput (empty/0 = default fixed size)")
	targetShardLatency := flag.Duration("target-shard-latency", 0, "per-shard wall time -shard-rows auto aims each worker at (0 = default)")
	kernel := flag.String("kernel", "", "pin the batched keyed-hash backend (see 'wmtool kernels'; empty = auto-select the fastest for this machine)")
	logLevel := flag.String("log-level", "info", "initial log level: debug, info, warn or error (changeable at runtime via PUT /debug/loglevel)")
	enablePprof := flag.Bool("pprof", false, "mount /debug/pprof/ profiling endpoints")
	traceSample := flag.Float64("trace-sample", 1, "trace head-sampling ratio in [0,1]: the probability a request's trace keeps child spans; errored requests are recorded regardless; the decision is a pure function of the trace ID, so every cluster node agrees without coordination")
	traceRing := flag.Int("trace-ring", 0, "finished spans retained in this node's in-memory trace ring (0 = default)")
	traceOff := flag.Bool("trace-off", false, "disable tracing and the /v2/jobs/{id}/trace, /v2/internal/trace and /debug/traces routes entirely")
	flag.Parse()

	if *coordinator && *join != "" {
		fmt.Fprintln(os.Stderr, "wmserver: -coordinator and -join are mutually exclusive (a node is one or the other)")
		os.Exit(2)
	}
	adv := *advertise
	if *join != "" && adv == "" {
		var err error
		if adv, err = deriveAdvertiseURL(*addr); err != nil {
			fmt.Fprintln(os.Stderr, "wmserver:", err)
			os.Exit(2)
		}
	}
	clusterCfg, err := parseShardRows(*shardRows)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wmserver:", err)
		os.Exit(2)
	}
	clusterCfg.TargetShardLatency = *targetShardLatency
	kind, err := parseKernel(*kernel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wmserver:", err)
		os.Exit(2)
	}

	level := new(slog.LevelVar)
	level.Set(obs.ParseLevel(*logLevel))
	err = server.Run(*addr, *storeDir, server.Config{
		Workers:             *workers,
		MaxBodyBytes:        *maxBody,
		ScannerCacheEntries: *scannerCache,
		JobWorkers:          *jobWorkers,
		JobQueueDepth:       *jobQueue,
		Log:                 obs.NewLogger(os.Stderr, level),
		LogLevel:            level,
		EnablePprof:         *enablePprof,
		Trace:               trace.Options{SampleRatio: *traceSample, Capacity: *traceRing},
		TraceOff:            *traceOff,
		HashKernel:          kind,
		Cluster: server.ClusterConfig{
			Coordinator:  *coordinator,
			Cluster:      clusterCfg,
			JoinURL:      *join,
			AdvertiseURL: adv,
			WorkerID:     *workerID,
			Capacity:     *capacity,
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "wmserver:", err)
		os.Exit(1)
	}
}

// parseShardRows maps the -shard-rows value onto cluster.Config: a plain
// row count keeps the fixed-size scheduler, "auto" switches on
// throughput-driven shard sizing.
func parseShardRows(v string) (cluster.Config, error) {
	switch v {
	case "", "0":
		return cluster.Config{}, nil
	case "auto":
		return cluster.Config{AutoShardRows: true}, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return cluster.Config{}, fmt.Errorf("invalid -shard-rows %q (want a row count or \"auto\")", v)
	}
	return cluster.Config{ShardRows: n}, nil
}

// parseKernel validates a -kernel value against the registered hash
// backends, listing them on a miss.
func parseKernel(v string) (keyhash.KernelKind, error) {
	if v == "" || v == "auto" {
		return keyhash.KernelAuto, nil
	}
	for _, bk := range keyhash.Backends() {
		if string(bk.Kind) == v {
			if !bk.Available {
				return "", fmt.Errorf("-kernel %s not available on this machine (needs %s)", v, bk.Requires)
			}
			return bk.Kind, nil
		}
	}
	names := "auto"
	for _, bk := range keyhash.Backends() {
		names += ", " + string(bk.Kind)
	}
	return "", fmt.Errorf("unknown -kernel %q (have %s)", v, names)
}

// deriveAdvertiseURL builds a loopback advertise URL from a listen
// address — the single-machine default; multi-host clusters must pass
// -advertise with a reachable host.
func deriveAdvertiseURL(addr string) (string, error) {
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return "", fmt.Errorf("cannot derive -advertise from -addr %q: %v", addr, err)
	}
	if port == "" || port == "0" {
		return "", fmt.Errorf("cannot derive -advertise from -addr %q: pass -advertise explicitly", addr)
	}
	if host == "" || host == "::" || host == "0.0.0.0" {
		host = "127.0.0.1"
	}
	return "http://" + net.JoinHostPort(host, port), nil
}
