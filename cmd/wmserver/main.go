// Command wmserver runs the watermarking system as an HTTP service: embed
// and verify jobs arrive as JSON, run through the chunked worker pool of
// internal/pipeline, and certificates persist in an on-disk record store.
//
// Usage:
//
//	wmserver -addr :8080 -store ./wmstore -workers 0 -scanner-cache 256
//
// See internal/server for the endpoint reference, README.md for a
// quickstart with curl. SIGINT/SIGTERM drains in-flight requests before
// exiting.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	storeDir := flag.String("store", "./wmstore", "certificate store directory")
	workers := flag.Int("workers", 0, "default pipeline workers per job (0 = NumCPU)")
	maxBody := flag.Int64("max-body", server.DefaultMaxBodyBytes, "maximum request body bytes")
	scannerCache := flag.Int("scanner-cache", 0, "prepared-certificate cache entries (0 = default, negative = disable)")
	jobWorkers := flag.Int("job-workers", 0, "concurrent async jobs (0 = default)")
	jobQueue := flag.Int("job-queue", 0, "async job queue depth; beyond it POST /v2/jobs replies 429 (0 = default)")
	flag.Parse()

	err := server.Run(*addr, *storeDir, server.Config{
		Workers:             *workers,
		MaxBodyBytes:        *maxBody,
		ScannerCacheEntries: *scannerCache,
		JobWorkers:          *jobWorkers,
		JobQueueDepth:       *jobQueue,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "wmserver:", err)
		os.Exit(1)
	}
}
