// Command wmexperiments regenerates every figure and table of the paper's
// evaluation, printing aligned text to stdout and writing CSV files.
//
// Usage:
//
//	wmexperiments -run all                 # figures 4-7 + Table A + ablations
//	wmexperiments -run fig4,fig7,tablea    # selected artifacts
//	wmexperiments -scale paper             # full N=141000, 15 passes
//	wmexperiments -outdir results          # CSV destination
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/experiments"
)

type artifact struct {
	name string
	file string
	run  func(experiments.Config) (*experiments.Table, error)
}

var artifacts = []artifact{
	{"fig4", "figure4.csv", experiments.Figure4},
	{"fig5", "figure5.csv", experiments.Figure5},
	{"fig6", "figure6.csv", experiments.Figure6},
	{"fig7", "figure7.csv", experiments.Figure7},
	{"tablea", "tablea.csv", func(experiments.Config) (*experiments.Table, error) {
		return experiments.TableA()
	}},
	{"tableb", "tableb.csv", experiments.BaselineComparison},
	{"ablation-vote", "ablation_vote.csv", experiments.AblationVoteAggregation},
	{"ablation-ecc", "ablation_ecc.csv", experiments.AblationECC},
	{"ablation-map", "ablation_map.csv", experiments.AblationEmbeddingMap},
}

func main() {
	run := flag.String("run", "all", "comma-separated artifacts: fig4,fig5,fig6,fig7,tablea,tableb,ablation-vote,ablation-ecc,ablation-map or 'all'")
	scale := flag.String("scale", "default", "default (20k tuples, 5 passes) | paper (141k tuples, 15 passes)")
	outdir := flag.String("outdir", "results", "directory for CSV output")
	passes := flag.Int("passes", 0, "override pass count (0 = scale default)")
	n := flag.Int("n", 0, "override dataset size (0 = scale default)")
	flag.Parse()

	var cfg experiments.Config
	switch *scale {
	case "default":
		cfg = experiments.DefaultConfig()
	case "paper":
		cfg = experiments.PaperConfig()
	default:
		fmt.Fprintf(os.Stderr, "wmexperiments: unknown scale %q\n", *scale)
		os.Exit(2)
	}
	if *passes > 0 {
		cfg.Passes = *passes
	}
	if *n > 0 {
		cfg.N = *n
	}

	selected := map[string]bool{}
	if *run == "all" {
		for _, a := range artifacts {
			selected[a.name] = true
		}
	} else {
		for _, name := range strings.Split(*run, ",") {
			selected[strings.TrimSpace(name)] = true
		}
	}

	if err := os.MkdirAll(*outdir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "wmexperiments:", err)
		os.Exit(1)
	}

	fmt.Printf("configuration: N=%d, catalog=%d, |wm|=%d, passes=%d\n\n",
		cfg.N, cfg.CatalogSize, cfg.WMBits, cfg.Passes)

	ranAny := false
	for _, a := range artifacts {
		if !selected[a.name] {
			continue
		}
		ranAny = true
		tab, err := a.run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wmexperiments: %s: %v\n", a.name, err)
			os.Exit(1)
		}
		if err := tab.Render(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "wmexperiments:", err)
			os.Exit(1)
		}
		if a.name == "tablea" {
			fmt.Println("row legend:")
			for i := 1; i <= len(experiments.TableARowLabels); i++ {
				fmt.Printf("  %d  %s\n", i, experiments.TableARowLabels[i])
			}
		}
		fmt.Println()
		path := filepath.Join(*outdir, a.file)
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wmexperiments:", err)
			os.Exit(1)
		}
		if err := tab.WriteCSV(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "wmexperiments:", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "wmexperiments:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n\n", path)
	}
	if !ranAny {
		fmt.Fprintln(os.Stderr, "wmexperiments: nothing selected; see -run")
		os.Exit(2)
	}
}
