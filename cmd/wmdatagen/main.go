// Command wmdatagen generates the synthetic datasets the experiments run
// on: the Wal-Mart ItemScan stand-in and the airline-reservation relation
// (see internal/datagen and the DESIGN.md substitution table).
//
// Usage:
//
//	wmdatagen -dataset itemscan -n 141000 -catalog 1000 -zipf 1.0 -seed s -out itemscan.csv
//	wmdatagen -dataset airline  -n 10000  -cities 50 -airlines 20 -seed s -out airline.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/datagen"
	"repro/internal/relation"
)

func main() {
	dataset := flag.String("dataset", "itemscan", "itemscan | airline")
	n := flag.Int("n", 20000, "number of tuples")
	catalog := flag.Int("catalog", 1000, "itemscan: product catalog size")
	zipf := flag.Float64("zipf", 1.0, "itemscan: popularity skew exponent")
	cities := flag.Int("cities", 50, "airline: number of departure cities")
	airlines := flag.Int("airlines", 20, "airline: number of carriers")
	seed := flag.String("seed", "wmdatagen", "generation seed")
	out := flag.String("out", "", "output CSV (required)")
	domainsDir := flag.String("domains-dir", "", "optional directory for <attr>.domain catalog files (one value per line); detectors need the catalog, not the sample")
	flag.Parse()

	if *out == "" {
		fmt.Fprintln(os.Stderr, "wmdatagen: -out is required")
		os.Exit(2)
	}

	var (
		r       *relation.Relation
		domains = map[string]*relation.Domain{}
		err     error
	)
	switch *dataset {
	case "itemscan":
		var items *relation.Domain
		r, items, err = datagen.ItemScan(datagen.ItemScanConfig{
			N: *n, CatalogSize: *catalog, ZipfS: *zipf, Seed: *seed,
		})
		domains["Item_Nbr"] = items
	case "airline":
		var cityDom, airDom *relation.Domain
		r, cityDom, airDom, err = datagen.Airline(datagen.AirlineConfig{
			N: *n, Cities: *cities, Airlines: *airlines, Seed: *seed,
		})
		domains["departure_city"] = cityDom
		domains["airline"] = airDom
	default:
		err = fmt.Errorf("unknown dataset %q", *dataset)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "wmdatagen:", err)
		os.Exit(1)
	}

	if *domainsDir != "" {
		if err := os.MkdirAll(*domainsDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "wmdatagen:", err)
			os.Exit(1)
		}
		for attr, dom := range domains {
			if dom == nil {
				continue
			}
			path := filepath.Join(*domainsDir, attr+".domain")
			if err := os.WriteFile(path, []byte(strings.Join(dom.Values(), "\n")+"\n"), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "wmdatagen:", err)
				os.Exit(1)
			}
			fmt.Printf("wrote %d catalog values to %s\n", dom.Size(), path)
		}
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wmdatagen:", err)
		os.Exit(1)
	}
	if err := relation.WriteCSV(f, r); err != nil {
		f.Close()
		fmt.Fprintln(os.Stderr, "wmdatagen:", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "wmdatagen:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d tuples to %s\n", r.Len(), *out)
	fmt.Printf("schema spec: %s\n", relation.SchemaSpec(r.Schema()))
}
