// Command wmlint runs the repository's invariant analyzers
// (internal/lint) over module packages and exits non-zero on findings.
//
// Usage:
//
//	wmlint [-json] [-only name,name] [-list] [packages...]
//
// With no package patterns it analyzes ./.... Each finding prints as
//
//	file:line:col: message (analyzer)
//
// or, with -json, as one JSON array of
//
//	{"analyzer","file","line","col","message"}
//
// objects on stdout. Exit status: 0 clean, 1 findings, 2 load/internal
// failure. CI runs `go run ./cmd/wmlint ./...` in place of the shell
// grep gates the analyzers replaced; run it locally before pushing.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: wmlint [-json] [-only name,name] [-list] [packages...]\n\n")
		fmt.Fprintf(os.Stderr, "Runs the repo's invariant analyzers; exits 1 on findings.\n\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.All()
	if *only != "" {
		var err error
		analyzers, err = lint.ByName(*only)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, _, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	diags, err := lint.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "wmlint: %d finding(s) across %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
