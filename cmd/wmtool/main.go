// Command wmtool embeds, detects, and attacks categorical watermarks in
// CSV relations — the operational face of the library.
//
// Usage:
//
//	wmtool embed   -in data.csv -schema SPEC -attr A -wm BITS -k1 S1 -k2 S2 -e N -out marked.csv
//	wmtool detect  -in marked.csv -schema SPEC -attr A -wmlen N -k1 S1 -k2 S2 -e N [-bandwidth B]
//	wmtool verify  -in suspect.csv -schema SPEC -record cert.json | -records a.json,b.json,c.json
//	wmtool attack  -in marked.csv -schema SPEC -type T [-frac F] [-attr A] [-seed S] -out attacked.csv
//	wmtool analyze [-n N] [-e E] [-a A] [-p P] [-r R] [-theta T]
//	wmtool audit   -server URL -in suspect.csv -schema SPEC [-records id1,id2] [-nowait] [-json] [-trace]
//	wmtool loglevel -server URL [debug|info|warn|error]
//	wmtool serve   [-addr :8080] [-store DIR] [-workers N] [-scanner-cache N] [-job-workers N]
//
// SPEC is the schema grammar of internal/relation, e.g.
// "Visit_Nbr:int!key, Item_Nbr:int:categorical". Attack types: subset,
// addition, alteration, shuffle, sort, remap.
//
// embed, detect, watermark and verify accept -parallel N to run the
// chunked worker pool of internal/pipeline (1 = sequential, 0 = NumCPU);
// verify -records checks a suspect against many certificates in ONE
// streaming scan; serve runs the wmserver HTTP API in-process.
//
// Remote mode: watermark and verify accept -server URL to run against a
// live wmserver through the internal/client SDK instead of locally — the
// certificate then lives in the server's store and is addressed by ID
// (watermark prints it; verify's -record / -records then take stored IDs,
// the suspect streaming from disk to the server's detection pipeline). audit
// is remote-only: it submits an async batch-verification job
// (POST /v2/jobs), polls it to completion, and prints the
// per-certificate reports.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strings"
	"time"

	"runtime"
	"runtime/pprof"

	"repro/internal/analysis"
	"repro/internal/api"
	"repro/internal/attacks"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/ecc"
	"repro/internal/keyhash"
	"repro/internal/mark"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/pipeline"
	"repro/internal/relation"
	"repro/internal/server"
	"repro/internal/stats"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "embed":
		err = cmdEmbed(os.Args[2:])
	case "detect":
		err = cmdDetect(os.Args[2:])
	case "watermark":
		err = cmdWatermark(os.Args[2:])
	case "verify":
		err = cmdVerify(os.Args[2:])
	case "attack":
		err = cmdAttack(os.Args[2:])
	case "analyze":
		err = cmdAnalyze(os.Args[2:])
	case "audit":
		err = cmdAudit(os.Args[2:])
	case "kernels":
		err = cmdKernels(os.Args[2:])
	case "loglevel":
		err = cmdLogLevel(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "wmtool: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "wmtool:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `wmtool — categorical data watermarking (Sion, ICDE 2004)

commands:
  watermark  embed and save a watermark certificate (recommended flow)
  verify     verify a suspect CSV against a certificate
  embed      low-level: watermark with explicit keys/parameters
  detect     low-level: blindly recover a watermark
  attack     apply an adversary-model attack (A1-A6)
  analyze    Section 4.4 vulnerability mathematics
  audit      submit an async corpus audit to a wmserver and await the verdicts
  kernels    list the batched hash backends and their calibrated speeds
  loglevel   read or set a running wmserver's log level without a restart
  serve      run the wmserver HTTP API in-process

watermark and verify accept -server URL to run against a live wmserver
(certificates stored server-side, addressed by ID).

run 'wmtool <command> -h' for flags`)
}

// loadDomain reads a value catalog: one value per line, blank lines
// ignored. Detection after data-loss attacks must use the attribute's
// catalog, not the values surviving in the data — a subset attack that
// removes all occurrences of a value would otherwise shift every index
// after it and scramble the parity channel.
func loadDomain(path string) (*relation.Domain, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var values []string
	for _, line := range strings.Split(string(data), "\n") {
		if line = strings.TrimRight(line, "\r"); line != "" {
			values = append(values, line)
		}
	}
	return relation.NewDomain(values)
}

func loadRelation(path, spec string) (*relation.Relation, error) {
	schema, err := relation.ParseSchemaSpec(spec)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return relation.ReadCSV(f, schema)
}

// profiler backs the -cpuprofile/-memprofile flags on the scan-heavy
// commands (verify, audit) — the CLI counterpart of wmserver's -pprof
// endpoints, for profiling a one-shot scan without standing up a server.
type profiler struct {
	cpu, mem string
	cpuFile  *os.File
}

// addProfileFlags registers the profiling flags on fs.
func addProfileFlags(fs *flag.FlagSet) *profiler {
	p := &profiler{}
	fs.StringVar(&p.cpu, "cpuprofile", "", "write a CPU profile of this command to the given file (inspect with go tool pprof)")
	fs.StringVar(&p.mem, "memprofile", "", "write an allocation profile, taken at command exit, to the given file")
	return p
}

// start begins CPU profiling if requested. Call stop before exiting.
func (p *profiler) start() error {
	if p.cpu == "" {
		return nil
	}
	f, err := os.Create(p.cpu)
	if err != nil {
		return err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return err
	}
	p.cpuFile = f
	return nil
}

// stop flushes the requested profiles. Profile-write failures must not
// change the command's verdict or exit code, so they are reported on
// stderr rather than returned.
func (p *profiler) stop() {
	if p.cpuFile != nil {
		pprof.StopCPUProfile()
		if err := p.cpuFile.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "wmtool: cpuprofile:", err)
		}
		p.cpuFile = nil
	}
	if p.mem == "" {
		return
	}
	f, err := os.Create(p.mem)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wmtool: memprofile:", err)
		return
	}
	runtime.GC() // materialize the final live set before snapshotting
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, "wmtool: memprofile:", err)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "wmtool: memprofile:", err)
	}
}

func saveRelation(path string, r *relation.Relation) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := relation.WriteCSV(f, r); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func cmdEmbed(args []string) error {
	fs := flag.NewFlagSet("embed", flag.ExitOnError)
	in := fs.String("in", "", "input CSV")
	spec := fs.String("schema", "", "schema spec")
	attr := fs.String("attr", "", "categorical attribute to watermark")
	keyAttr := fs.String("key-attr", "", "key attribute (default: primary key)")
	wmStr := fs.String("wm", "", "watermark bits, e.g. 1011001110")
	k1 := fs.String("k1", "", "secret key 1 passphrase")
	k2 := fs.String("k2", "", "secret key 2 passphrase")
	e := fs.Uint64("e", 60, "fitness parameter e")
	codeName := fs.String("code", ecc.MajorityCode{}.Name(),
		fmt.Sprintf("error correcting code %v", ecc.Names()))
	domainPath := fs.String("domain", "", "value catalog file for -attr (one value per line); strongly recommended — see detect")
	out := fs.String("out", "", "output CSV")
	parallel := fs.Int("parallel", 1, "pipeline workers (1 = sequential, 0 = NumCPU)")
	fs.Parse(args)

	if *in == "" || *spec == "" || *attr == "" || *wmStr == "" || *k1 == "" || *k2 == "" || *out == "" {
		return fmt.Errorf("embed: -in, -schema, -attr, -wm, -k1, -k2, -out are required")
	}
	wm, err := ecc.ParseBits(*wmStr)
	if err != nil {
		return err
	}
	code, err := ecc.ByName(*codeName)
	if err != nil {
		return err
	}
	r, err := loadRelation(*in, *spec)
	if err != nil {
		return err
	}
	var dom *relation.Domain
	if *domainPath != "" {
		if dom, err = loadDomain(*domainPath); err != nil {
			return err
		}
	}
	opts := mark.Options{
		KeyAttr: *keyAttr,
		Attr:    *attr,
		K1:      keyhash.NewKey(*k1),
		K2:      keyhash.NewKey(*k2),
		E:       *e,
		Code:    code,
		Domain:  dom,
	}
	st, err := pipeline.Embed(context.Background(), r, wm, opts, pipeline.Config{Workers: *parallel})
	if err != nil {
		return err
	}
	if err := saveRelation(*out, r); err != nil {
		return err
	}
	fmt.Printf("embedded %d-bit watermark into %s\n", len(wm), *out)
	fmt.Printf("  tuples:            %d\n", st.Tuples)
	fmt.Printf("  fit tuples:        %d\n", st.Fit)
	fmt.Printf("  altered:           %d (%.2f%% of data)\n", st.Altered, st.AlterationRate()*100)
	fmt.Printf("  bandwidth |wm_data|: %d  <- keep this for detection after data loss\n", st.Bandwidth)
	return nil
}

func cmdDetect(args []string) error {
	fs := flag.NewFlagSet("detect", flag.ExitOnError)
	in := fs.String("in", "", "input CSV")
	spec := fs.String("schema", "", "schema spec")
	attr := fs.String("attr", "", "watermarked attribute")
	keyAttr := fs.String("key-attr", "", "key attribute (default: primary key)")
	wmLen := fs.Int("wmlen", 0, "watermark bit length")
	k1 := fs.String("k1", "", "secret key 1 passphrase")
	k2 := fs.String("k2", "", "secret key 2 passphrase")
	e := fs.Uint64("e", 60, "fitness parameter e")
	bw := fs.Int("bandwidth", 0, "embedding-time |wm_data| (0 = derive from data)")
	codeName := fs.String("code", ecc.MajorityCode{}.Name(), "error correcting code")
	domainPath := fs.String("domain", "", "value catalog file for -attr; without it the domain is derived from the (possibly attacked) data and indices may shift")
	expect := fs.String("expect", "", "optional expected bits to score against")
	parallel := fs.Int("parallel", 1, "pipeline workers (1 = sequential, 0 = NumCPU)")
	fs.Parse(args)

	if *in == "" || *spec == "" || *attr == "" || *wmLen <= 0 || *k1 == "" || *k2 == "" {
		return fmt.Errorf("detect: -in, -schema, -attr, -wmlen, -k1, -k2 are required")
	}
	code, err := ecc.ByName(*codeName)
	if err != nil {
		return err
	}
	r, err := loadRelation(*in, *spec)
	if err != nil {
		return err
	}
	var dom *relation.Domain
	if *domainPath != "" {
		if dom, err = loadDomain(*domainPath); err != nil {
			return err
		}
	}
	opts := mark.Options{
		KeyAttr:           *keyAttr,
		Attr:              *attr,
		K1:                keyhash.NewKey(*k1),
		K2:                keyhash.NewKey(*k2),
		E:                 *e,
		Code:              code,
		Domain:            dom,
		BandwidthOverride: *bw,
	}
	rep, err := pipeline.Detect(context.Background(), r, *wmLen, opts, pipeline.Config{Workers: *parallel})
	if err != nil {
		return err
	}
	fmt.Printf("detected watermark: %s\n", rep.WM)
	fmt.Printf("  tuples examined:   %d\n", rep.Tuples)
	fmt.Printf("  fit tuples:        %d\n", rep.Fit)
	fmt.Printf("  positions filled:  %d / %d\n", rep.PositionsFilled, rep.Bandwidth)
	fmt.Printf("  unknown values:    %d\n", rep.UnknownValues)
	fmt.Printf("  mean vote margin:  %.3f\n", rep.MeanMargin)
	fmt.Printf("  false-positive probability of a %d-bit match: %.3g\n",
		*wmLen, analysis.FalsePositiveProb(*wmLen))
	if *expect != "" {
		want, err := ecc.ParseBits(*expect)
		if err != nil {
			return err
		}
		if len(want) != *wmLen {
			return fmt.Errorf("expected bits length %d != wmlen %d", len(want), *wmLen)
		}
		fmt.Printf("  match vs expected: %.1f%%\n", rep.MatchFraction(want)*100)
	}
	return nil
}

func cmdWatermark(args []string) error {
	fs := flag.NewFlagSet("watermark", flag.ExitOnError)
	in := fs.String("in", "", "input CSV")
	spec := fs.String("schema", "", "schema spec")
	attr := fs.String("attr", "", "categorical attribute to watermark")
	secret := fs.String("secret", "", "master watermarking secret")
	wmStr := fs.String("wm", "", "watermark bits, e.g. 1011001110")
	e := fs.Uint64("e", 60, "fitness parameter e")
	domainPath := fs.String("domain", "", "value catalog file (one value per line); default: derived from data and stored in the record")
	withFreq := fs.Bool("frequency-channel", false, "additionally embed into the occurrence histogram (survives extreme vertical partitions)")
	maxAlter := fs.Float64("max-alteration", 0, "quality budget: maximum fraction of tuples altered (0 = unlimited)")
	out := fs.String("out", "", "output CSV")
	recordPath := fs.String("record", "", "output watermark certificate (JSON, secret!); local mode only")
	parallel := fs.Int("parallel", 1, "pipeline workers (1 = sequential, 0 = NumCPU)")
	serverURL := fs.String("server", "", "wmserver base URL: embed remotely, certificate stored server-side")
	fs.Parse(args)

	if *serverURL != "" {
		if *in == "" || *spec == "" || *attr == "" || *secret == "" || *wmStr == "" || *out == "" {
			return fmt.Errorf("watermark -server: -in, -schema, -attr, -secret, -wm, -out are required")
		}
		return remoteWatermark(*serverURL, *in, *spec, *attr, *secret, *wmStr, *domainPath, *out, *e, *withFreq, *maxAlter, *parallel)
	}
	if *in == "" || *spec == "" || *attr == "" || *secret == "" || *wmStr == "" || *out == "" || *recordPath == "" {
		return fmt.Errorf("watermark: -in, -schema, -attr, -secret, -wm, -out, -record are required")
	}
	r, err := loadRelation(*in, *spec)
	if err != nil {
		return err
	}
	var dom *relation.Domain
	if *domainPath != "" {
		if dom, err = loadDomain(*domainPath); err != nil {
			return err
		}
	}
	rec, st, err := core.Watermark(r, core.Spec{
		Secret:                *secret,
		Attribute:             *attr,
		WM:                    *wmStr,
		E:                     *e,
		Domain:                dom,
		WithFrequencyChannel:  *withFreq,
		MaxAlterationFraction: *maxAlter,
		Workers:               specWorkers(*parallel),
	})
	if err != nil {
		return err
	}
	if err := saveRelation(*out, r); err != nil {
		return err
	}
	data, err := rec.Save()
	if err != nil {
		return err
	}
	if err := os.WriteFile(*recordPath, data, 0o600); err != nil {
		return err
	}
	fmt.Printf("watermarked %s (%d tuples)\n", *out, r.Len())
	fmt.Printf("  key channel: %d fit, %d altered (%.2f%% of data)\n",
		st.Mark.Fit, st.Mark.Altered, st.Mark.AlterationRate()*100)
	if *withFreq {
		fmt.Printf("  frequency channel: %d tuples moved\n", st.FrequencyMoved)
	}
	fmt.Printf("  certificate written to %s — keep it secret, it proves ownership\n", *recordPath)
	return nil
}

// specWorkers maps the CLI -parallel convention (1 = sequential,
// 0 = NumCPU) onto core.Spec.Workers (0/1 = sequential, < 0 = NumCPU).
func specWorkers(parallel int) int {
	if parallel == 0 {
		return -1
	}
	return parallel
}

func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	in := fs.String("in", "", "suspect CSV")
	spec := fs.String("schema", "", "schema spec")
	recordPath := fs.String("record", "", "watermark certificate (JSON file; a stored ID with -server)")
	recordPaths := fs.String("records", "", "comma-separated certificate files (stored IDs with -server): verify all against ONE streaming scan of -in")
	parallel := fs.Int("parallel", 1, "pipeline workers (1 = sequential, 0 = NumCPU)")
	serverURL := fs.String("server", "", "wmserver base URL: verify remotely against stored certificates, streaming the suspect from disk")
	kernelFlag := fs.String("kernel", "", "pin the batched keyed-hash backend for local scans (see 'wmtool kernels'; empty = auto-select)")
	prof := addProfileFlags(fs)
	fs.Parse(args)

	if *in == "" || *spec == "" || (*recordPath == "") == (*recordPaths == "") {
		return fmt.Errorf("verify: -in, -schema, and exactly one of -record / -records are required")
	}
	kernel, err := parseKernelFlag(*kernelFlag)
	if err != nil {
		return fmt.Errorf("verify: %w", err)
	}
	if err := prof.start(); err != nil {
		return err
	}
	defer prof.stop()
	if *serverURL != "" {
		if *kernelFlag != "" {
			return fmt.Errorf("verify: -kernel applies to local scans; pin the server's backend with wmserver -kernel")
		}
		return remoteVerify(*serverURL, *in, *spec, *recordPath, splitList(*recordPaths), *parallel)
	}
	if *recordPaths != "" {
		return verifyBatch(*in, *spec, splitList(*recordPaths), specWorkers(*parallel), kernel)
	}
	data, err := os.ReadFile(*recordPath)
	if err != nil {
		return err
	}
	rec, err := core.LoadRecord(data)
	if err != nil {
		return err
	}
	suspect, err := loadRelation(*in, *spec)
	if err != nil {
		return err
	}
	rep, err := rec.VerifyWith(suspect, core.VerifyOptions{
		Workers:    specWorkers(*parallel),
		HashKernel: kernel,
	})
	if err != nil {
		return err
	}
	wmLen := len(rec.WM)
	fmt.Printf("verification of %s against %s\n", *in, *recordPath)
	fmt.Printf("  claimed watermark:  %s\n", rec.WM)
	fmt.Printf("  detected watermark: %s\n", rep.Detected)
	fmt.Printf("  bit agreement:      %.1f%%\n", rep.Match*100)
	if rep.RemapRecovered {
		fmt.Println("  note: values were bijectively remapped; inverse mapping")
		fmt.Println("  recovered from the registered frequency profile (Section 4.5)")
	}
	if rep.FrequencyMatch >= 0 {
		fmt.Printf("  frequency channel:  %.1f%% agreement\n", rep.FrequencyMatch*100)
	}
	fmt.Printf("  chance of a full %d-bit match on unmarked data: %.3g\n",
		wmLen, analysis.FalsePositiveProb(wmLen))
	fmt.Printf("verdict: %s\n", verdictString(rep.Match))
	return nil
}

// verdictString renders a match fraction at the shared core thresholds.
func verdictString(match float64) string {
	switch {
	case match >= core.PresentThreshold:
		return "WATERMARK PRESENT"
	case match >= core.PartialThreshold:
		return "partial match — data heavily attacked or partly unrelated"
	default:
		return "no watermark evidence"
	}
}

// verifyBatch checks the suspect against every certificate in one
// streaming scan: the CSV is read straight off disk tuple-at-a-time and
// fanned across all prepared scanners (core.VerifyBatch), so auditing a
// dataset against a whole certificate catalog costs one pass.
func verifyBatch(in, spec string, recordPaths []string, workers int, kernel keyhash.KernelKind) error {
	records := make([]*core.Record, len(recordPaths))
	for i, path := range recordPaths {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if records[i], err = core.LoadRecord(data); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	}
	schema, err := relation.ParseSchemaSpec(spec)
	if err != nil {
		return err
	}
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	defer f.Close()
	// The zero-copy block reader: core.VerifyBatch's pipeline recognizes
	// its BlockReader side and scans columnar blocks, 0 allocs/row.
	src, err := relation.NewCSVBlockReader(f, schema)
	if err != nil {
		return err
	}
	outs, err := core.VerifyBatch(context.Background(), records, src, core.BatchOptions{Workers: workers, HashKernel: kernel})
	if err != nil {
		return err
	}
	fmt.Printf("batch verification of %s against %d certificates (one scan)\n", in, len(records))
	for i, out := range outs {
		if out.Err != nil {
			fmt.Printf("  %-30s error: %v\n", recordPaths[i], out.Err)
			continue
		}
		rep := out.Report
		fmt.Printf("  %-30s match %5.1f%%  %s\n", recordPaths[i], rep.Match*100, verdictString(rep.Match))
	}
	for _, out := range outs {
		if out.Err == nil {
			fmt.Printf("  (%d tuples scanned once; remap recovery and frequency channel\n"+
				"   are skipped on the streaming path — rerun with -record for those)\n",
				out.Report.Primary.Tuples)
			break
		}
	}
	return nil
}

// cmdKernels reports the batched keyed-hash backends compiled into this
// binary, which of them this machine can run, and the startup
// micro-benchmark's measured rate for each — the data behind every
// -kernel flag and behind the auto selection scans default to.
func cmdKernels(args []string) error {
	fs := flag.NewFlagSet("kernels", flag.ExitOnError)
	fs.Parse(args)
	cal := keyhash.Calibrate()
	fmt.Println("batched keyed-hash backends, H(V;k) = SHA-256(len(k) || k || V || k):")
	for _, bk := range keyhash.Backends() {
		line := fmt.Sprintf("  %-13s %d lane", bk.Kind, bk.Lanes)
		if bk.Lanes != 1 {
			line += "s"
		}
		if rate, ok := cal.HashesPerSec[bk.Kind]; ok {
			line += fmt.Sprintf("  %8.2f Mhash/s", rate/1e6)
		}
		if !bk.Available {
			line += "  unavailable (needs " + bk.Requires + ")"
		}
		if bk.Kind == cal.Kind {
			line += "  <- auto selection"
		}
		fmt.Println(line)
	}
	fmt.Printf("\nauto (the default for every scan) picked %q on this machine.\n", cal.Kind)
	fmt.Println("pin a backend with 'wmtool verify -kernel <kind>' or 'wmserver -kernel <kind>'.")
	return nil
}

// parseKernelFlag validates a -kernel value against the registered
// backends, listing them on a miss.
func parseKernelFlag(v string) (keyhash.KernelKind, error) {
	if v == "" || v == "auto" {
		return keyhash.KernelAuto, nil
	}
	for _, bk := range keyhash.Backends() {
		if string(bk.Kind) == v {
			if !bk.Available {
				return "", fmt.Errorf("kernel %s not available on this machine (needs %s)", v, bk.Requires)
			}
			return bk.Kind, nil
		}
	}
	names := "auto"
	for _, bk := range keyhash.Backends() {
		names += ", " + string(bk.Kind)
	}
	return "", fmt.Errorf("unknown kernel %q (have %s)", v, names)
}

func cmdAttack(args []string) error {
	fs := flag.NewFlagSet("attack", flag.ExitOnError)
	in := fs.String("in", "", "input CSV")
	spec := fs.String("schema", "", "schema spec")
	typ := fs.String("type", "", "attack: subset | addition | alteration | shuffle | sort | remap")
	frac := fs.Float64("frac", 0.5, "attack fraction (meaning depends on type)")
	attr := fs.String("attr", "", "target attribute (alteration/sort/remap)")
	seed := fs.String("seed", "wmtool-attack", "attack randomness seed")
	out := fs.String("out", "", "output CSV")
	fs.Parse(args)

	if *in == "" || *spec == "" || *typ == "" || *out == "" {
		return fmt.Errorf("attack: -in, -schema, -type, -out are required")
	}
	r, err := loadRelation(*in, *spec)
	if err != nil {
		return err
	}
	src := stats.NewSource(*seed)
	var attacked *relation.Relation
	switch *typ {
	case "subset":
		attacked, err = attacks.HorizontalSubset(r, 1-*frac, src)
		if err == nil {
			fmt.Printf("A1: dropped %.0f%% of tuples (%d -> %d)\n", *frac*100, r.Len(), attacked.Len())
		}
	case "addition":
		attacked, err = attacks.SubsetAddition(r, *frac, src)
		if err == nil {
			fmt.Printf("A2: added %d tuples\n", attacked.Len()-r.Len())
		}
	case "alteration":
		if *attr == "" {
			return fmt.Errorf("attack alteration: -attr required")
		}
		attacked, err = attacks.SubsetAlteration(r, *attr, *frac, nil, src)
		if err == nil {
			fmt.Printf("A3: randomly altered %.0f%% of %s values\n", *frac*100, *attr)
		}
	case "shuffle":
		attacked = attacks.Resort(r, src)
		fmt.Println("A4: tuples shuffled")
	case "sort":
		if *attr == "" {
			return fmt.Errorf("attack sort: -attr required")
		}
		attacked, err = attacks.SortByAttr(r, *attr)
		if err == nil {
			fmt.Printf("A4: sorted by %s\n", *attr)
		}
	case "remap":
		if *attr == "" {
			return fmt.Errorf("attack remap: -attr required")
		}
		var forward map[string]string
		attacked, forward, err = attacks.BijectiveRemap(r, *attr, src)
		if err == nil {
			fmt.Printf("A6: remapped %d distinct %s values bijectively\n", len(forward), *attr)
		}
	default:
		return fmt.Errorf("attack: unknown type %q", *typ)
	}
	if err != nil {
		return err
	}
	return saveRelation(*out, attacked)
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	storeDir := fs.String("store", "./wmstore", "certificate store directory")
	workers := fs.Int("workers", 0, "default pipeline workers per job (0 = NumCPU)")
	maxBody := fs.Int64("max-body", server.DefaultMaxBodyBytes, "maximum request body bytes")
	scannerCache := fs.Int("scanner-cache", 0, "prepared-certificate cache entries (0 = default, negative = disable)")
	jobWorkers := fs.Int("job-workers", 0, "concurrent async jobs (0 = default)")
	jobQueue := fs.Int("job-queue", 0, "async job queue depth; beyond it POST /v2/jobs replies 429 (0 = default)")
	logLevel := fs.String("log-level", "info", "initial log level: debug, info, warn or error (changeable at runtime via PUT /debug/loglevel)")
	enablePprof := fs.Bool("pprof", false, "mount /debug/pprof/ profiling endpoints")
	traceSample := fs.Float64("trace-sample", 1, "trace head-sampling ratio in [0,1]; errored requests are recorded regardless")
	traceRing := fs.Int("trace-ring", 0, "finished spans retained in the trace ring (0 = default)")
	traceOff := fs.Bool("trace-off", false, "disable tracing and the trace routes entirely")
	fs.Parse(args)

	level := new(slog.LevelVar)
	level.Set(obs.ParseLevel(*logLevel))
	return server.Run(*addr, *storeDir, server.Config{
		Workers:             *workers,
		MaxBodyBytes:        *maxBody,
		ScannerCacheEntries: *scannerCache,
		JobWorkers:          *jobWorkers,
		JobQueueDepth:       *jobQueue,
		Log:                 obs.NewLogger(os.Stderr, level),
		LogLevel:            level,
		EnablePprof:         *enablePprof,
		Trace:               trace.Options{SampleRatio: *traceSample, Capacity: *traceRing},
		TraceOff:            *traceOff,
	})
}

func cmdAnalyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	n := fs.Int("n", 6000, "relation size N")
	e := fs.Uint64("e", 60, "fitness parameter e")
	a := fs.Int("a", 1200, "attack size (tuples altered)")
	p := fs.Float64("p", 0.7, "per-marked-tuple flip success rate")
	r := fs.Int("r", 15, "wm_data flips counted as attacker success")
	theta := fs.Float64("theta", 0.10, "tolerable attack success probability")
	wmLen := fs.Int("wmlen", 10, "watermark bits")
	nA := fs.Int("na", 1000, "categorical domain size n_A for capacity analysis")
	fs.Parse(args)

	fmt.Printf("Section 4.4 vulnerability analysis (N=%d, e=%d, a=%d, p=%.2f, r=%d)\n",
		*n, *e, *a, *p, *r)
	fmt.Printf("  false positive, |wm| bits:        %.3g\n", analysis.FalsePositiveProb(*wmLen))
	fmt.Printf("  false positive, full bandwidth:   %.3g\n", analysis.FalsePositiveProbFullBandwidth(*n, *e))

	m := analysis.AttackModel{N: *n, E: *e, A: *a, P: *p, R: *r}
	exact, err := analysis.AttackSuccessExact(m)
	if err != nil {
		return err
	}
	normal, cltOK, err := analysis.AttackSuccessNormal(m)
	if err != nil {
		return err
	}
	fmt.Printf("  marked tuples attacked (a/e):     %d\n", m.MarkedAttacked())
	fmt.Printf("  P(r,a) exact binomial:            %.4f\n", exact)
	fmt.Printf("  P(r,a) normal approx (eq. 2):     %.4f  (CLT applies: %v)\n", normal, cltOK)
	fmt.Printf("  expected final mark damage:       %.2f%%\n",
		analysis.ExpectedMarkAlteration(*r, *n, *e, 0.05, *wmLen, int(uint64(*n) / *e))*100)

	eStar, err := analysis.MinimumE(*a, *p, *theta, *r)
	if err != nil {
		return err
	}
	fmt.Printf("  minimum e for P <= %.0f%%:           %d\n", *theta*100, eStar)
	fmt.Printf("  implied alteration budget (N/e*): %.2f%% of data\n",
		analysis.AlterationBudget(*n, eStar)*100)

	// Section 2.4 / 3.1 channel capacities at this configuration.
	cap, err := analysis.Capacity(*n, *e, *nA, float64(*a)/float64(*n), *theta)
	if err != nil {
		return err
	}
	fmt.Printf("channel capacities (n_A=%d):\n", *nA)
	fmt.Printf("  direct-domain entropy:            %.1f bits (rejected by the paper)\n", cap.DirectDomainBits)
	fmt.Printf("  key-association bandwidth (N/e):  %d bits\n", cap.AssociationBits)
	fmt.Printf("  robust watermark capacity:        %d bits (per-bit error <= %.0f%% under this attack)\n",
		cap.RobustBits, *theta*100)
	fmt.Printf("  frequency-histogram channel:      %d bits\n", cap.FrequencyBits)
	return nil
}

// ---- remote mode: the CLI as the SDK's first consumer ----

// splitList parses a comma-separated flag value, tolerating blanks.
func splitList(raw string) []string {
	var out []string
	for _, v := range strings.Split(raw, ",") {
		if v = strings.TrimSpace(v); v != "" {
			out = append(out, v)
		}
	}
	return out
}

// sdkWorkers maps the CLI -parallel convention onto the wire workers
// field, where 0 means "server default".
func sdkWorkers(parallel int) int {
	if parallel <= 1 {
		return 0
	}
	return parallel
}

// remoteWatermark embeds over a running wmserver: the relation travels
// inline, the certificate stays in the server's store, and the marked
// copy lands in outPath.
func remoteWatermark(serverURL, in, spec, attr, secret, wmStr, domainPath, outPath string, e uint64, withFreq bool, maxAlter float64, parallel int) error {
	data, err := os.ReadFile(in)
	if err != nil {
		return err
	}
	var domain []string
	if domainPath != "" {
		dom, err := loadDomain(domainPath)
		if err != nil {
			return err
		}
		domain = dom.Values()
	}
	c := client.New(serverURL)
	resp, err := c.Watermark(context.Background(), api.WatermarkRequest{
		Schema:                spec,
		Data:                  string(data),
		Secret:                secret,
		Attribute:             attr,
		WM:                    wmStr,
		E:                     e,
		Domain:                domain,
		FrequencyChannel:      withFreq,
		MaxAlterationFraction: maxAlter,
		Workers:               sdkWorkers(parallel),
	})
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, []byte(resp.Data), 0o644); err != nil {
		return err
	}
	fmt.Printf("watermarked %s via %s (%d tuples)\n", outPath, serverURL, resp.Tuples)
	fmt.Printf("  key channel: %d fit, %d altered (%.2f%% of data)\n",
		resp.Fit, resp.Altered, resp.AlterationRate*100)
	fmt.Printf("  certificate stored server-side: id %s\n", resp.ID)
	fmt.Printf("  verify later with: wmtool verify -server %s -record %s -in SUSPECT.csv -schema '%s'\n",
		serverURL, resp.ID, spec)
	return nil
}

// remoteVerify checks a suspect file against stored certificates on a
// running wmserver. The suspect streams from disk straight into the
// server's detection pipeline (text/csv body) — it is never held in
// memory on either side.
func remoteVerify(serverURL, in, spec, recordID string, recordIDs []string, parallel int) error {
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	defer f.Close()
	c := client.New(serverURL)
	opts := client.StreamOptions{Schema: spec, Workers: sdkWorkers(parallel)}

	if recordID != "" {
		rep, err := c.VerifyStream(context.Background(), recordID, f, opts)
		if err != nil {
			return err
		}
		fmt.Printf("verification of %s against %s (server %s)\n", in, recordID, serverURL)
		fmt.Printf("  detected watermark: %s\n", rep.Detected)
		fmt.Printf("  bit agreement:      %.1f%%\n", rep.Match*100)
		fmt.Printf("  chance of a full %d-bit match on unmarked data: %.3g\n",
			len(rep.Detected), rep.FalsePositiveProb)
		fmt.Printf("verdict: %s\n", verdictString(rep.Match))
		return nil
	}

	resp, err := c.VerifyBatchStream(context.Background(), recordIDs, f, opts)
	if err != nil {
		return err
	}
	printBatchResults(in, serverURL, resp)
	return nil
}

// printBatchResults renders per-certificate audit verdicts.
func printBatchResults(in, serverURL string, resp *api.BatchVerifyResponse) {
	fmt.Printf("batch verification of %s against %d certificates (server %s, one scan, %d tuples)\n",
		in, len(resp.Results), serverURL, resp.Tuples)
	for _, res := range resp.Results {
		if res.Error != "" {
			fmt.Printf("  %-34s error: %s\n", res.ID, res.Error)
			continue
		}
		fmt.Printf("  %-34s match %5.1f%%  %s\n", res.ID, res.Match*100, verdictString(res.Match))
	}
}

// cmdAudit submits an async batch-verification job to a wmserver and —
// unless -nowait — polls it to completion and prints the per-certificate
// reports. This is the court-grade corpus audit as a job resource: the
// upload returns immediately, the scan runs on the server's job pool,
// and Ctrl-C'ing the wait leaves the job running server-side (cancel it
// with DELETE /v2/jobs/{id} if that is not wanted).
//
// The wait polls under capped exponential backoff with jitter (fast
// first polls so short audits return promptly, a few requests a minute
// once the job is clearly long) and prints the server's tuples-scanned
// progress as it advances; -poll pins a fixed interval instead.
func cmdAudit(args []string) error {
	fs := flag.NewFlagSet("audit", flag.ExitOnError)
	serverURL := fs.String("server", "", "wmserver base URL (required)")
	in := fs.String("in", "", "suspect CSV")
	spec := fs.String("schema", "", "schema spec")
	records := fs.String("records", "", "comma-separated stored certificate IDs (empty = whole catalog)")
	workers := fs.Int("parallel", 0, "server-side scan workers (0 = server default)")
	nowait := fs.Bool("nowait", false, "submit and print the job ID without waiting")
	poll := fs.Duration("poll", 0, "fixed poll interval while waiting (0 = capped exponential backoff with jitter)")
	quiet := fs.Bool("quiet", false, "suppress progress lines while waiting")
	jsonOut := fs.Bool("json", false, "emit the final batch report (or, with -nowait, the job resource) as JSON on stdout; human chatter goes to stderr")
	showTrace := fs.Bool("trace", false, "after the summary, fetch GET /v2/jobs/{id}/trace and render the distributed span tree with a per-phase latency table")
	prof := addProfileFlags(fs)
	fs.Parse(args)

	if *serverURL == "" || *in == "" || *spec == "" {
		return fmt.Errorf("audit: -server, -in, -schema are required")
	}
	if err := prof.start(); err != nil {
		return err
	}
	defer prof.stop()
	data, err := os.ReadFile(*in)
	if err != nil {
		return err
	}
	c := client.New(*serverURL)
	ctx := context.Background()
	job, err := c.SubmitJob(ctx, api.JobRequest{
		Kind: api.JobKindVerifyBatch,
		VerifyBatch: &api.BatchVerifyRequest{
			Records: splitList(*records),
			Schema:  *spec,
			Data:    string(data),
			Workers: *workers,
		},
	})
	if err != nil {
		return err
	}
	// With -json, stdout carries machine-readable output ONLY; everything
	// a human reads moves to stderr so `wmtool audit -json | jq` works.
	human := os.Stdout
	if *jsonOut {
		human = os.Stderr
	}
	fmt.Fprintf(human, "audit job %s submitted (%s)\n", job.ID, job.State)
	if *nowait {
		fmt.Fprintf(human, "poll with: curl %s/v2/jobs/%s\n", *serverURL, job.ID)
		if *jsonOut {
			return writeJSONOut(job)
		}
		return nil
	}

	start := time.Now()
	waitOpts := client.WaitOptions{}
	if *poll > 0 {
		waitOpts.Initial, waitOpts.Max, waitOpts.Jitter = *poll, *poll, -1
	}
	if !*quiet {
		var lastProgress int64 = -1
		waitOpts.Notify = func(j *api.Job) {
			if j.State == api.JobRunning && j.Progress > lastProgress {
				fmt.Fprintf(human, "  ... %d tuples scanned (%s)\n", j.Progress, time.Since(start).Round(time.Second))
				lastProgress = j.Progress
			}
		}
	}
	final, err := c.WaitJobWith(ctx, job.ID, waitOpts)
	if err != nil {
		return err
	}
	switch final.State {
	case api.JobDone:
		fmt.Fprintf(human, "job %s done in %s\n", final.ID, time.Since(start).Round(time.Millisecond))
		printAuditSummary(human, final, time.Since(start))
		if !*jsonOut {
			printBatchResults(*in, *serverURL, final.VerifyBatch)
		}
		// The trace always renders on the human stream — with -json it
		// lands on stderr and stdout stays the machine-pure report.
		if *showTrace {
			showJobTrace(ctx, c, human, final.ID)
		}
		if *jsonOut {
			return writeJSONOut(final.VerifyBatch)
		}
		return nil
	case api.JobCancelled:
		return fmt.Errorf("audit: job %s was cancelled", final.ID)
	default:
		return fmt.Errorf("audit: job %s failed: %v", final.ID, final.Error)
	}
}

// printAuditSummary renders the one-line audit roll-up: tuples scanned
// (the job's progress counter), server-side wall time (StartedAt to
// FinishedAt, falling back to the locally measured wait), and the
// aggregate certificate-tuple throughput — each scanned tuple is checked
// against every certificate in one pass, so cert·tuples/s is the figure
// that stays comparable as the catalog grows. Written to the human
// stream, so with -json it lands on stderr and stdout stays machine-pure.
func printAuditSummary(human *os.File, final *api.Job, localElapsed time.Duration) {
	wall := localElapsed
	if final.StartedAt != nil && final.FinishedAt != nil {
		if d := final.FinishedAt.Sub(*final.StartedAt); d > 0 {
			wall = d
		}
	}
	certs := 0
	if final.VerifyBatch != nil {
		certs = len(final.VerifyBatch.Results)
	}
	rate := 0.0
	if secs := wall.Seconds(); secs > 0 {
		rate = float64(final.Progress) * float64(certs) / secs
	}
	fmt.Fprintf(human, "audit summary: %d tuples x %d certificates in %s (%.0f cert·tuples/s)\n",
		final.Progress, certs, wall.Round(time.Millisecond), rate)
}

// writeJSONOut renders v as indented JSON on stdout — the -json contract.
func writeJSONOut(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
