package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"repro/internal/api"
	"repro/internal/client"
)

// showJobTrace fetches a finished job's assembled cross-process span
// tree and renders it — the -trace tail of `wmtool audit`. The tree is
// best-effort by design (rings are bounded, workers may be gone), so a
// fetch failure is reported on the human stream and never fails the
// audit that produced it.
func showJobTrace(ctx context.Context, c *client.Client, w io.Writer, jobID string) {
	jt, err := c.JobTrace(ctx, jobID)
	if err != nil {
		fmt.Fprintf(w, "trace unavailable: %v\n", err)
		return
	}
	renderJobTrace(w, jt)
}

// renderJobTrace prints the span tree indented by depth, then the
// per-phase latency table collected from spans carrying the pipeline's
// ingest_ns/hash_ns/vote_ns/merge_ns attributes.
func renderJobTrace(w io.Writer, jt *api.JobTrace) {
	if jt.SpanCount == 0 {
		fmt.Fprintf(w, "trace %s: no spans retained (sampling off, or rings evicted them)\n", jt.TraceID)
		return
	}
	fmt.Fprintf(w, "trace %s: %d spans\n", jt.TraceID, jt.SpanCount)
	var walk func(n *api.TraceNode, depth int)
	walk = func(n *api.TraceNode, depth int) {
		sp := n.Span
		name := strings.Repeat("  ", depth) + sp.Name
		line := fmt.Sprintf("  %-44s %12s", name, time.Duration(sp.DurationNs).Round(time.Microsecond))
		if sp.Node != "" {
			line += "  [" + sp.Node + "]"
		}
		if sp.Error != "" {
			line += "  error: " + sp.Error
		}
		fmt.Fprintln(w, line)
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	for _, r := range jt.Roots {
		walk(r, 0)
	}
	renderPhaseTable(w, jt)
}

// phaseAttrs names the pipeline's per-phase span attributes in render
// order. The values are CPU nanoseconds summed across the scan's worker
// goroutines, so columns can exceed the span's wall duration — that gap
// is the parallelism.
var phaseAttrs = [4]string{"ingest_ns", "hash_ns", "vote_ns", "merge_ns"}

// renderPhaseTable prints one row per span that carries phase timings
// (typically one per executed shard, or one for a single-node scan) and
// a cross-shard total row.
func renderPhaseTable(w io.Writer, jt *api.JobTrace) {
	type row struct {
		name, node string
		ns         [4]int64
	}
	var rows []row
	var walk func(n *api.TraceNode)
	walk = func(n *api.TraceNode) {
		sp := n.Span
		r := row{name: sp.Name, node: sp.Node}
		found := false
		for i, key := range phaseAttrs {
			if v, err := strconv.ParseInt(sp.Attrs[key], 10, 64); err == nil {
				r.ns[i], found = v, true
			}
		}
		if found {
			rows = append(rows, r)
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, r := range jt.Roots {
		walk(r)
	}
	if len(rows) == 0 {
		return
	}
	fmt.Fprintf(w, "per-phase CPU time (summed across scan workers):\n")
	fmt.Fprintf(w, "  %-34s %-12s %10s %10s %10s %10s\n", "span", "node", "ingest", "hash", "vote", "merge")
	var total [4]int64
	for _, r := range rows {
		fmt.Fprintf(w, "  %-34s %-12s", r.name, r.node)
		for i, ns := range r.ns {
			total[i] += ns
			fmt.Fprintf(w, " %10s", time.Duration(ns).Round(time.Microsecond))
		}
		fmt.Fprintln(w)
	}
	if len(rows) > 1 {
		fmt.Fprintf(w, "  %-34s %-12s", "total", "")
		for _, ns := range total {
			fmt.Fprintf(w, " %10s", time.Duration(ns).Round(time.Microsecond))
		}
		fmt.Fprintln(w)
	}
}

// cmdLogLevel reads or sets a running wmserver's log level over the
// /debug/loglevel route: with no positional argument it prints the level
// in effect, with one it asks the server to switch (debug, info, warn or
// error) — no restart, the server's slog.LevelVar flips in place.
func cmdLogLevel(args []string) error {
	fs := flag.NewFlagSet("loglevel", flag.ExitOnError)
	serverURL := fs.String("server", "", "wmserver base URL (required)")
	fs.Parse(args)
	if *serverURL == "" {
		return fmt.Errorf("loglevel: -server is required")
	}
	if fs.NArg() > 1 {
		return fmt.Errorf("loglevel: want at most one level argument, got %d", fs.NArg())
	}
	c := client.New(*serverURL)
	ctx := context.Background()
	if fs.NArg() == 0 {
		level, err := c.LogLevel(ctx)
		if err != nil {
			return err
		}
		fmt.Println(level)
		return nil
	}
	level, err := c.SetLogLevel(ctx, fs.Arg(0))
	if err != nil {
		return err
	}
	fmt.Printf("log level now %s\n", level)
	return nil
}
