package pipeline

import (
	"context"
	"reflect"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/ecc"
	"repro/internal/keyhash"
	"repro/internal/mark"
	"repro/internal/relation"
)

// blockEngineRelation builds a marked relation plus its CSV form for the
// streaming paths.
func blockEngineRelation(t *testing.T, n int) (*relation.Relation, *relation.Domain, string, mark.Options, ecc.Bits) {
	t.Helper()
	schema := relation.MustSchema([]relation.Attribute{
		{Name: "id", Type: relation.TypeString},
		{Name: "cat", Type: relation.TypeString, Categorical: true},
	}, "id")
	r := relation.New(schema)
	values := []string{"a", "b", "c", "d", "e", "f"}
	for i := 0; i < n; i++ {
		r.MustAppend(relation.Tuple{"row-" + strconv.Itoa(i), values[(i*7)%len(values)]})
	}
	dom, err := relation.NewDomain(values)
	if err != nil {
		t.Fatal(err)
	}
	wm := ecc.MustParseBits("1011001110")
	opts := mark.Options{
		Attr: "cat", K1: keyhash.NewKey("pb-k1"), K2: keyhash.NewKey("pb-k2"),
		E: 5, Domain: dom,
	}
	st, err := mark.Embed(r, wm, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.BandwidthOverride = st.Bandwidth
	var csv strings.Builder
	if err := relation.WriteCSV(&csv, r); err != nil {
		t.Fatal(err)
	}
	return r, dom, csv.String(), opts, wm
}

// TestDetectBlockRowsEquivalence proves the detection paths are
// bit-identical across block sizes — including 1, odd sizes that leave
// ragged tails, and the tuple-at-a-time legacy engine — for both vote
// aggregations and both the materialized and streaming entry points.
func TestDetectBlockRowsEquivalence(t *testing.T) {
	r, _, csv, opts, wm := blockEngineRelation(t, 5000)
	for _, agg := range []mark.VoteAggregation{mark.MajorityVote, mark.LastWriteWins} {
		opts := opts
		opts.Aggregation = agg
		var want mark.DetectReport
		for i, blockRows := range []int{0, -1, 1, 3, 511, 512, 4096, 1 << 20} {
			cfg := Config{Workers: 3, ChunkRows: 700, BlockRows: blockRows}
			got, err := Detect(context.Background(), r, len(wm), opts, cfg)
			if err != nil {
				t.Fatal(err)
			}
			src, err := relation.NewCSVRowReader(strings.NewReader(csv), r.Schema())
			if err != nil {
				t.Fatal(err)
			}
			stream, err := DetectReader(context.Background(), src, len(wm), opts, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if i == 0 {
				want = got
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("agg %v blockRows %d: Detect diverged from default engine", agg, blockRows)
			}
			if !reflect.DeepEqual(stream, want) {
				t.Fatalf("agg %v blockRows %d: DetectReader diverged from default engine", agg, blockRows)
			}
			if got.WM.String() != wm.String() {
				t.Fatalf("agg %v blockRows %d: lost the watermark: %s", agg, blockRows, got.WM)
			}
		}
	}
}

// TestEmbedBlockRowsEquivalence proves embedding emits identical
// relations and statistics across block sizes on both the materialized
// and streaming paths.
func TestEmbedBlockRowsEquivalence(t *testing.T) {
	schema := relation.MustSchema([]relation.Attribute{
		{Name: "id", Type: relation.TypeString},
		{Name: "cat", Type: relation.TypeString, Categorical: true},
	}, "id")
	base := relation.New(schema)
	values := []string{"a", "b", "c", "d"}
	for i := 0; i < 4000; i++ {
		base.MustAppend(relation.Tuple{"r" + strconv.Itoa(i), values[(i*3)%len(values)]})
	}
	dom, err := relation.NewDomain(values)
	if err != nil {
		t.Fatal(err)
	}
	wm := ecc.MustParseBits("101101")
	opts := mark.Options{
		Attr: "cat", K1: keyhash.NewKey("pe-k1"), K2: keyhash.NewKey("pe-k2"),
		E: 4, Domain: dom, BandwidthOverride: 900,
	}
	var csv strings.Builder
	if err := relation.WriteCSV(&csv, base); err != nil {
		t.Fatal(err)
	}

	var wantRel *relation.Relation
	var wantStats mark.EmbedStats
	var wantCSV string
	for i, blockRows := range []int{0, 1, 7, 512, 1 << 20} {
		cfg := Config{Workers: 4, ChunkRows: 600, BlockRows: blockRows}
		r := base.Clone()
		st, err := Embed(context.Background(), r, wm, opts, cfg)
		if err != nil {
			t.Fatal(err)
		}
		src, err := relation.NewCSVRowReader(strings.NewReader(csv.String()), base.Schema())
		if err != nil {
			t.Fatal(err)
		}
		var streamedOut strings.Builder
		dst, err := relation.NewCSVRowWriter(&streamedOut, base.Schema())
		if err != nil {
			t.Fatal(err)
		}
		streamStats, err := EmbedReader(context.Background(), src, dst, wm, opts, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			wantRel, wantStats, wantCSV = r, st, streamedOut.String()
			continue
		}
		if !r.Equal(wantRel) {
			t.Fatalf("blockRows %d: embedded relation diverged", blockRows)
		}
		if st != wantStats {
			t.Fatalf("blockRows %d: stats diverged: %+v vs %+v", blockRows, st, wantStats)
		}
		if streamedOut.String() != wantCSV {
			t.Fatalf("blockRows %d: streamed embedding diverged", blockRows)
		}
		if streamStats != wantStats {
			t.Fatalf("blockRows %d: streamed stats diverged: %+v vs %+v", blockRows, streamStats, wantStats)
		}
	}
}

// TestScanManyMemoEquivalence proves the per-block digest memo changes
// nothing: a scanner fleet where several certificates share a fitness
// key (one owner, many certificates — the memo's fast path) tallies
// exactly like each scanner scanning the stream alone, and exactly like
// the memo-less tuple-at-a-time engine.
func TestScanManyMemoEquivalence(t *testing.T) {
	r, dom, csv, opts, _ := blockEngineRelation(t, 6000)
	_ = dom
	mkScanner := func(k1, k2 string) *mark.Scanner {
		o := opts
		o.K1, o.K2 = keyhash.NewKey(k1), keyhash.NewKey(k2)
		sc, err := mark.NewStreamScanner(r.Schema(), 10, o)
		if err != nil {
			t.Fatal(err)
		}
		return sc
	}
	// Owner A holds three certificates (same k1 lane), owner B two, C one.
	scanners := []*mark.Scanner{
		mkScanner("owner-a|k1", "owner-a|k2"),
		mkScanner("owner-a|k1", "owner-a|k2-bis"),
		mkScanner("owner-a|k1", "owner-a|k2-ter"),
		mkScanner("owner-b|k1", "owner-b|k2"),
		mkScanner("owner-b|k1", "owner-b|k2-bis"),
		mkScanner("owner-c|k1", "owner-c|k2"),
	}

	scan := func(scs []*mark.Scanner, cfg Config) []*mark.Tally {
		src, err := relation.NewCSVRowReader(strings.NewReader(csv), r.Schema())
		if err != nil {
			t.Fatal(err)
		}
		tallies, err := ScanMany(context.Background(), src, scs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return tallies
	}

	together := scan(scanners, Config{Workers: 3, ChunkRows: 900})
	tuple := scan(scanners, Config{Workers: 3, ChunkRows: 900, BlockRows: -1})
	for i, sc := range scanners {
		alone := scan([]*mark.Scanner{sc}, Config{Workers: 1})
		if !reflect.DeepEqual(together[i], alone[0]) {
			t.Fatalf("scanner %d: memo-shared tally diverged from solo scan", i)
		}
		if !reflect.DeepEqual(together[i], tuple[i]) {
			t.Fatalf("scanner %d: block tally diverged from tuple-at-a-time engine", i)
		}
	}
}

// TestProgressCountsTuples proves the progress hook ticks every suspect
// tuple exactly once per pass — on the materialized, streaming and
// fan-out paths, at every block size, regardless of certificate count.
func TestProgressCountsTuples(t *testing.T) {
	r, _, csv, opts, wm := blockEngineRelation(t, 3000)
	for _, blockRows := range []int{0, -1, 17, 512} {
		var n atomic.Int64
		cfg := Config{Workers: 3, ChunkRows: 500, BlockRows: blockRows,
			Progress: func(tuples int) { n.Add(int64(tuples)) }}

		if _, err := Detect(context.Background(), r, len(wm), opts, cfg); err != nil {
			t.Fatal(err)
		}
		if got := n.Load(); got != int64(r.Len()) {
			t.Fatalf("blockRows %d: Detect progress %d, want %d", blockRows, got, r.Len())
		}

		n.Store(0)
		src, err := relation.NewCSVRowReader(strings.NewReader(csv), r.Schema())
		if err != nil {
			t.Fatal(err)
		}
		scanners := make([]*mark.Scanner, 4)
		for i := range scanners {
			o := opts
			o.K1 = keyhash.NewKey("prog-" + strconv.Itoa(i))
			sc, err := mark.NewStreamScanner(r.Schema(), 10, o)
			if err != nil {
				t.Fatal(err)
			}
			scanners[i] = sc
		}
		if _, err := ScanMany(context.Background(), src, scanners, cfg); err != nil {
			t.Fatal(err)
		}
		if got := n.Load(); got != int64(r.Len()) {
			t.Fatalf("blockRows %d: ScanMany progress %d, want %d (once per tuple, not per certificate)",
				blockRows, got, r.Len())
		}
	}

	// Embedding ticks too (block engine only).
	var n atomic.Int64
	cfg := Config{Workers: 2, ChunkRows: 800,
		Progress: func(tuples int) { n.Add(int64(tuples)) }}
	clone := r.Clone()
	if _, err := Embed(context.Background(), clone, wm, opts, cfg); err != nil {
		t.Fatal(err)
	}
	if got := n.Load(); got != int64(r.Len()) {
		t.Fatalf("Embed progress %d, want %d", got, r.Len())
	}
}
