package pipeline

import (
	"context"
	"errors"
	"io"
	"sync/atomic"
	"testing"

	"repro/internal/ecc"
	"repro/internal/keyhash"
	"repro/internal/mark"
	"repro/internal/relation"
)

// gatedReader yields synthetic rows and, after gateAt rows, cancels the
// supplied cancel func — simulating a client disconnect or job
// cancellation arriving mid-stream. It counts every row handed out so
// tests can assert the pipeline stopped pulling instead of draining all
// total rows.
type gatedReader struct {
	schema  *relation.Schema
	total   int
	gateAt  int
	cancel  context.CancelFunc
	served  atomic.Int64
	tupleFn func(i int) relation.Tuple
}

func (g *gatedReader) Schema() *relation.Schema { return g.schema }

func (g *gatedReader) Read() (relation.Tuple, error) {
	n := int(g.served.Add(1))
	if n > g.total {
		return nil, io.EOF
	}
	if n == g.gateAt && g.cancel != nil {
		g.cancel()
	}
	return g.tupleFn(n), nil
}

func cancelTestScanner(t *testing.T, schema *relation.Schema) *mark.Scanner {
	t.Helper()
	dom, err := relation.NewDomain([]string{"0", "1", "2", "3"})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := mark.NewStreamScanner(schema, 4, mark.Options{
		Attr:              "Item_Nbr",
		K1:                keyhash.NewKey("ctx-k1"),
		K2:                keyhash.NewKey("ctx-k2"),
		E:                 2,
		Domain:            dom,
		BandwidthOverride: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

func cancelTestSchema(t *testing.T) *relation.Schema {
	t.Helper()
	schema, err := relation.ParseSchemaSpec("Visit_Nbr:int!key, Item_Nbr:int:categorical")
	if err != nil {
		t.Fatal(err)
	}
	return schema
}

// TestScanManyCancelledStopsBeforeDraining is the acceptance property for
// context threading on the streaming path: when the context is cancelled
// mid-stream, ScanMany returns ctx.Err() and stops pulling rows well
// before the reader is drained.
func TestScanManyCancelledStopsBeforeDraining(t *testing.T) {
	schema := cancelTestSchema(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const total = 500_000
	src := &gatedReader{
		schema: schema,
		total:  total,
		gateAt: 10_000,
		cancel: cancel,
		tupleFn: func(i int) relation.Tuple {
			return relation.Tuple{itoa(i), "1"}
		},
	}
	_, err := ScanMany(ctx, src, []*mark.Scanner{cancelTestScanner(t, schema)},
		Config{Workers: 2, ChunkRows: 512})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("ScanMany after cancel: err = %v, want context.Canceled", err)
	}
	if served := src.served.Load(); served >= total {
		t.Fatalf("reader was drained (%d rows) despite cancellation", served)
	} else if served > 40_000 {
		t.Errorf("pipeline pulled %d rows after a cancel at 10k — cancellation too lazy", served)
	}
}

// TestDetectCancelledBeforeStart asserts the materialized chunked path
// refuses to start under an already-cancelled context.
func TestDetectCancelledBeforeStart(t *testing.T) {
	schema := cancelTestSchema(t)
	r := relation.New(schema)
	for i := 0; i < 4096; i++ {
		if err := r.Append(relation.Tuple{itoa(i), "1"}); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	dom, _ := relation.NewDomain([]string{"0", "1", "2", "3"})
	opts := mark.Options{
		Attr:   "Item_Nbr",
		K1:     keyhash.NewKey("ctx-k1"),
		K2:     keyhash.NewKey("ctx-k2"),
		E:      2,
		Domain: dom,
	}
	if _, err := Detect(ctx, r, 4, opts, Config{Workers: 4}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Detect under cancelled ctx: err = %v, want context.Canceled", err)
	}
	if _, err := Embed(ctx, r, ecc.MustParseBits("1011"), opts, Config{Workers: 4}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Embed under cancelled ctx: err = %v, want context.Canceled", err)
	}
}

// TestRunChunksCancelMidFlight cancels while chunk workers are mid-pass
// and asserts the run reports ctx.Err() rather than a partial result.
func TestRunChunksCancelMidFlight(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var processed atomic.Int64
	chunks := partition(100_000, 100) // 1000 chunks
	_, err := runChunks(ctx, 4, chunks, func(c chunkRange) (int, error) {
		if processed.Add(1) == 5 {
			cancel()
		}
		return c.Hi - c.Lo, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("runChunks after cancel: err = %v, want context.Canceled", err)
	}
	if n := processed.Load(); n >= 1000 {
		t.Fatalf("all %d chunks processed despite cancellation", n)
	}
}

// itoa avoids pulling strconv into every call site above.
func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [20]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[pos:])
}

// TestSequentialFallbacksCancelMidPass covers the order-dependent
// fallbacks (workers == 1, quality assessor): they run on the calling
// goroutine but must still observe cancellation between chunks instead
// of burning to the end of the relation.
func TestSequentialFallbacksCancelMidPass(t *testing.T) {
	schema := cancelTestSchema(t)
	r := relation.New(schema)
	for i := 0; i < 50_000; i++ {
		if err := r.Append(relation.Tuple{itoa(i), "1"}); err != nil {
			t.Fatal(err)
		}
	}
	dom, _ := relation.NewDomain([]string{"0", "1", "2", "3"})
	baseOpts := mark.Options{
		Attr:   "Item_Nbr",
		K1:     keyhash.NewKey("seq-k1"),
		K2:     keyhash.NewKey("seq-k2"),
		E:      2,
		Domain: dom,
	}

	// Detect, workers == 1: cancel from a fit-row callback is impossible
	// (Scan has no hooks), so cancel from a timer-free side channel: a
	// context cancelled before the second chunk begins.
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { cancel(); close(done) }()
	<-done
	if _, err := Detect(ctx, r, 4, baseOpts, Config{Workers: 1, ChunkRows: 1024}); !errors.Is(err, context.Canceled) {
		t.Fatalf("sequential Detect after cancel: err = %v, want context.Canceled", err)
	}

	// Embed with an OnAlter hook (order-dependent → sequential walk):
	// the hook cancels mid-pass; the walk must stop at the next chunk
	// boundary rather than finishing all 50k rows.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	var alters int
	opts := baseOpts
	opts.OnAlter = func(row int) {
		if alters++; alters == 1 {
			cancel2()
		}
	}
	_, err := Embed(ctx2, r, ecc.MustParseBits("1011"), opts, Config{Workers: 4, ChunkRows: 1024})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("sequential Embed after cancel: err = %v, want context.Canceled", err)
	}
	if alters > 2048 {
		t.Fatalf("embedding altered %d rows after an immediate cancel — walk too lazy", alters)
	}
}
