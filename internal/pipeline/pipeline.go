// Package pipeline executes watermark embedding and detection as chunked,
// worker-pool passes. The codec of internal/mark decides everything per
// tuple from the tuple's own key, so a relation partitions cleanly into
// contiguous key-ranges that workers process independently on
// runtime.NumCPU() goroutines; per-chunk results merge into exactly what
// the sequential pass would produce (bit-identical recovered watermarks —
// see the equivalence tests). stream.go adds the same machinery over
// relation.RowReader streams so datasets never need to be fully
// materialized.
//
// Within a chunk, every path — sequential, worker-pool, streaming,
// multi-certificate fan-out — feeds fixed-size tuple blocks
// (Config.BlockRows) through the batched keyed-hash kernels of
// mark.ScanBlock/EmbedBlock rather than looping tuple-at-a-time, and the
// multi-certificate engine runs its certificate loop inside the block
// loop so a block's keys and digests stay cache-resident across all
// certificates of a batch audit. Config.Progress observes the pass at
// block granularity — the tuples-scanned counter async jobs report.
//
// This is the execution engine behind core.Spec.Workers, wmtool -parallel
// and the wmserver handlers.
//
// Every entry point takes a context.Context and stops between chunks when
// it is cancelled — the mechanism by which an HTTP client disconnect, an
// async-job cancellation (internal/jobs) or a server shutdown actually
// halts scan work mid-pass instead of burning CPU to the end of the
// dataset. Cancellation is chunk-granular: a worker finishes the chunk in
// its hands, then exits; the streaming reader additionally checks between
// rows, so a cancelled streaming pass stops without draining its source.
package pipeline

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/ecc"
	"repro/internal/mark"
	"repro/internal/obs/trace"
	"repro/internal/relation"
)

// Config sizes the worker pool and the scan blocks it feeds the codec.
type Config struct {
	// Workers is the number of concurrent workers. 0 or negative means
	// runtime.NumCPU().
	Workers int
	// ChunkRows is the number of rows per chunk. 0 derives a chunk size
	// that gives each worker several chunks (for tail balancing) without
	// dropping below MinChunkRows.
	ChunkRows int
	// BlockRows is the number of rows per scan block — the unit the
	// workers feed through the batched keyed-hash kernels
	// (mark.ScanBlock / mark.EmbedBlock), and the granularity of
	// Progress ticks. 0 means mark.DefaultBlockRows. A negative value
	// selects the tuple-at-a-time legacy engine (mark.ScanTuple per row)
	// on the detection paths — the baseline the block-engine benchmarks
	// compare against; embedding always runs block-at-a-time.
	BlockRows int
	// Progress, when non-nil, is invoked with the number of suspect
	// tuples each completed scan block covered — the hook async jobs use
	// to surface tuples-scanned-so-far. It is called concurrently from
	// worker goroutines and must be safe for that (an atomic counter
	// add, typically). Multi-certificate passes (ScanMany) tick once per
	// block, not once per certificate.
	Progress func(tuples int)
	// Phases, when non-nil, accumulates per-phase CPU time
	// (ingest/hash/vote/merge) for the columnar streaming engine —
	// coarse block-boundary clocks summed across workers, read by trace
	// spans. Only scanManyBlocks (the ScanMany fast path) meters itself;
	// leave nil on unsampled passes so the zero-allocation path never
	// reads a clock.
	Phases *trace.Phases
}

// MinChunkRows is the floor for derived chunk sizes: below this the
// per-chunk bookkeeping (a bandwidth-sized tally or touched-set per
// chunk) outweighs the scan work.
const MinChunkRows = 1024

// chunksPerWorker is the oversubscription factor for derived chunk sizes;
// several chunks per worker smooths uneven fitness density across ranges.
const chunksPerWorker = 4

func (c Config) workers() int {
	if c.Workers <= 0 {
		return runtime.NumCPU()
	}
	return c.Workers
}

func (c Config) chunkRows(n, workers int) int {
	if c.ChunkRows > 0 {
		return c.ChunkRows
	}
	per := n / (workers * chunksPerWorker)
	if per < MinChunkRows {
		per = MinChunkRows
	}
	return per
}

// blockRows resolves the scan-block size for the block engine.
func (c Config) blockRows() int {
	if c.BlockRows > 0 {
		return c.BlockRows
	}
	return mark.DefaultBlockRows
}

// report ticks the progress hook, if any, and the process-wide scan
// counters (see Stats). One call per scan block keeps the cost to two
// atomic adds per DefaultBlockRows tuples — invisible next to the
// keyed-hash work inside the block.
func (c Config) report(tuples int) {
	if tuples <= 0 {
		return
	}
	statTuples.Add(uint64(tuples))
	statBlocks.Add(1)
	if c.Progress != nil {
		c.Progress(tuples)
	}
}

// scanRange feeds rows [lo, hi) of r through sc into t block-at-a-time
// (or tuple-at-a-time when cfg.BlockRows < 0), checking ctx and ticking
// progress between blocks. bs is the caller's per-goroutine scratch.
func scanRange(ctx context.Context, sc *mark.Scanner, r *relation.Relation, lo, hi int, t *mark.Tally, bs *mark.BlockScratch, cfg Config) error {
	if cfg.BlockRows < 0 {
		for j := lo; j < hi; j++ {
			sc.ScanTuple(r.Tuple(j), t)
		}
		cfg.report(hi - lo)
		return nil
	}
	br := cfg.blockRows()
	for blockLo := lo; blockLo < hi; blockLo += br {
		if err := ctx.Err(); err != nil {
			return err
		}
		blockHi := min(blockLo+br, hi)
		if err := sc.ScanBlock(r, blockLo, blockHi, t, bs); err != nil {
			return err
		}
		cfg.report(blockHi - blockLo)
	}
	return nil
}

// embedRange feeds rows [lo, hi) of r through em into cs
// block-at-a-time, checking ctx and ticking progress between blocks.
// Runs at least one (possibly empty) block so cs always carries the pass
// bandwidth.
func embedRange(ctx context.Context, em *mark.Embedder, r *relation.Relation, lo, hi int, cs *mark.ChunkStats, bs *mark.BlockScratch, cfg Config) error {
	br := cfg.blockRows()
	for blockLo := lo; ; blockLo += br {
		if err := ctx.Err(); err != nil {
			return err
		}
		blockHi := min(blockLo+br, hi)
		if err := em.EmbedBlock(r, blockLo, blockHi, cs, bs); err != nil {
			return err
		}
		cfg.report(blockHi - blockLo)
		if blockHi >= hi {
			return nil
		}
	}
}

// chunkRange is one [Lo, Hi) row range of a partitioned relation.
type chunkRange struct {
	Index  int
	Lo, Hi int
}

// partition splits n rows into contiguous ranges of about chunkRows rows.
func partition(n, chunkRows int) []chunkRange {
	if n == 0 {
		return []chunkRange{{Index: 0, Lo: 0, Hi: 0}}
	}
	var out []chunkRange
	for lo := 0; lo < n; lo += chunkRows {
		hi := lo + chunkRows
		if hi > n {
			hi = n
		}
		out = append(out, chunkRange{Index: len(out), Lo: lo, Hi: hi})
	}
	return out
}

// runChunks fans worker goroutines over the chunks, calling work for each;
// results land in a slice indexed by chunk. The first error wins. A
// cancelled ctx stops dispatch and lets in-flight chunks finish; the call
// then reports ctx.Err().
func runChunks[T any](ctx context.Context, workers int, chunks []chunkRange, work func(chunkRange) (T, error)) ([]T, error) {
	results := make([]T, len(chunks))
	errs := make([]error, len(chunks))
	if workers > len(chunks) {
		workers = len(chunks)
	}
	jobs := make(chan chunkRange)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range jobs {
				if ctx.Err() != nil {
					return
				}
				results[c.Index], errs[c.Index] = work(c)
			}
		}()
	}
feed:
	for _, c := range chunks {
		select {
		case jobs <- c:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// Embed watermarks r in place like mark.Embed, but processes key-range
// chunks on a worker pool. The result is equivalent to the sequential
// pass: the same tuples are altered to the same values (each decision
// depends only on the tuple's own key), and the merged statistics match.
//
// Quality-gated embedding is inherently sequential — the assessor's
// alteration budget makes later decisions depend on earlier ones — so
// when opts.Assessor, opts.SkipRow or opts.OnAlter is set (or one worker
// is requested) Embed runs the chunks in order on the calling goroutine
// instead of the pool. Likewise when the watermarked attribute is the
// schema's primary key (a Section 3.3 pairwise embedding with KeyAttr
// overridden): rewriting key values mutates the relation's shared key
// index, which concurrent workers cannot do safely. The sequential walk
// still checks ctx between chunks, so even an order-dependent embedding
// is cancellable mid-pass; a partially-embedded relation must be
// discarded on error either way.
func Embed(ctx context.Context, r *relation.Relation, wm ecc.Bits, opts mark.Options, cfg Config) (mark.EmbedStats, error) {
	if err := ctx.Err(); err != nil {
		return mark.EmbedStats{}, err
	}
	workers := cfg.workers()
	em, err := mark.NewEmbedder(r, wm, opts)
	if err != nil {
		return mark.EmbedStats{}, err
	}
	chunks := partition(r.Len(), cfg.chunkRows(r.Len(), workers))
	if workers == 1 || opts.Assessor != nil || opts.SkipRow != nil || opts.OnAlter != nil ||
		attrIsPrimaryKey(r, opts.Attr) {
		// In-order chunk walk: identical to mark.Embed (EmbedBlock is its
		// kernel, rows visited in the same order) plus cancellation points.
		var agg mark.ChunkStats
		var bs mark.BlockScratch
		for _, c := range chunks {
			if err := ctx.Err(); err != nil {
				return mark.EmbedStats{}, err
			}
			if err := embedRange(ctx, em, r, c.Lo, c.Hi, &agg, &bs, cfg); err != nil {
				return mark.EmbedStats{}, err
			}
		}
		return mark.MergeChunks(agg), nil
	}
	parts, err := runChunks(ctx, workers, chunks, func(c chunkRange) (mark.ChunkStats, error) {
		var cs mark.ChunkStats
		var bs mark.BlockScratch
		err := embedRange(ctx, em, r, c.Lo, c.Hi, &cs, &bs, cfg)
		return cs, err
	})
	if err != nil {
		return mark.EmbedStats{}, err
	}
	return mark.MergeChunks(parts...), nil
}

// Detect recovers a watermark like mark.Detect, but scans key-range
// chunks on a worker pool and merges the per-chunk vote tallies in scan
// order before aggregating and decoding once. The recovered bit string is
// bit-identical to the sequential pass for both vote-aggregation
// policies; the suspect relation is never modified.
func Detect(ctx context.Context, r *relation.Relation, wmLen int, opts mark.Options, cfg Config) (mark.DetectReport, error) {
	if err := ctx.Err(); err != nil {
		return mark.DetectReport{}, err
	}
	workers := cfg.workers()
	sc, err := mark.NewScanner(r, wmLen, opts)
	if err != nil {
		return mark.DetectReport{}, err
	}
	chunks := partition(r.Len(), cfg.chunkRows(r.Len(), workers))
	if workers == 1 {
		// In-order chunk walk over one tally: the same row loop as
		// mark.Detect, split only to interleave cancellation checks.
		total := sc.NewTally()
		var bs mark.BlockScratch
		for _, c := range chunks {
			if err := ctx.Err(); err != nil {
				return mark.DetectReport{}, err
			}
			if err := scanRange(ctx, sc, r, c.Lo, c.Hi, total, &bs, cfg); err != nil {
				return mark.DetectReport{}, err
			}
		}
		return sc.Report(total)
	}
	parts, err := runChunks(ctx, workers, chunks, func(c chunkRange) (*mark.Tally, error) {
		t := sc.NewTally()
		var bs mark.BlockScratch
		if err := scanRange(ctx, sc, r, c.Lo, c.Hi, t, &bs, cfg); err != nil {
			return nil, err
		}
		return t, nil
	})
	if err != nil {
		return mark.DetectReport{}, err
	}
	total := parts[0]
	for _, t := range parts[1:] {
		total.Merge(t)
	}
	return sc.Report(total)
}

// attrIsPrimaryKey reports whether attr is the relation's primary key —
// the one column whose rewrites touch the shared key index.
func attrIsPrimaryKey(r *relation.Relation, attr string) bool {
	i, ok := r.Schema().Index(attr)
	return ok && i == r.Schema().KeyIndex()
}

// validateChunkable rejects option combinations the chunked paths cannot
// honor; shared by the streaming entry points.
func validateChunkable(opts mark.Options, verb string) error {
	if opts.Assessor != nil || opts.SkipRow != nil || opts.OnAlter != nil {
		return fmt.Errorf("pipeline: streaming %s cannot honor Assessor/SkipRow/OnAlter (order-dependent hooks)", verb)
	}
	return nil
}
