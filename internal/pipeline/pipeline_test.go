package pipeline

import (
	"context"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/ecc"
	"repro/internal/keyhash"
	"repro/internal/mark"
	"repro/internal/quality"
	"repro/internal/relation"
)

func testData(t testing.TB, n int) (*relation.Relation, *relation.Domain) {
	t.Helper()
	r, dom, err := datagen.ItemScan(datagen.ItemScanConfig{
		N: n, CatalogSize: 300, ZipfS: 1.0, Seed: "pipeline-test",
	})
	if err != nil {
		t.Fatal(err)
	}
	return r, dom
}

func testOptions(dom *relation.Domain) mark.Options {
	return mark.Options{
		Attr:   "Item_Nbr",
		K1:     keyhash.NewKey("pipeline-k1"),
		K2:     keyhash.NewKey("pipeline-k2"),
		E:      30,
		Domain: dom,
	}
}

// TestParallelEmbedEqualsSequential is the embed half of the acceptance
// criterion: the parallel pass must rewrite exactly the tuples the
// sequential pass rewrites, to the same values, with matching stats.
func TestParallelEmbedEqualsSequential(t *testing.T) {
	wm := ecc.MustParseBits("1011001110")
	seqRel, dom := testData(t, 20000)
	opts := testOptions(dom)

	parRel := seqRel.Clone()
	seqStats, err := mark.Embed(seqRel, wm, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range []Config{
		{Workers: 2},
		{Workers: 4, ChunkRows: 333},
		{Workers: 16, ChunkRows: 100},
	} {
		work := parRel.Clone()
		parStats, err := Embed(context.Background(), work, wm, opts, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !seqRel.Equal(work) {
			t.Fatalf("cfg %+v: parallel embed altered different tuples", cfg)
		}
		if parStats != seqStats {
			t.Fatalf("cfg %+v: stats diverge:\nseq: %+v\npar: %+v", cfg, seqStats, parStats)
		}
	}
}

// TestParallelDetectBitIdentical is the detect half of the acceptance
// criterion: parallel detection must recover a bit-identical watermark to
// the sequential core path on the same seeded relation.
func TestParallelDetectBitIdentical(t *testing.T) {
	wm := ecc.MustParseBits("1011001110")
	r, dom := testData(t, 20000)
	opts := testOptions(dom)
	if _, err := mark.Embed(r, wm, opts); err != nil {
		t.Fatal(err)
	}

	for _, agg := range []mark.VoteAggregation{mark.MajorityVote, mark.LastWriteWins} {
		opts.Aggregation = agg
		seq, err := mark.Detect(r, len(wm), opts)
		if err != nil {
			t.Fatal(err)
		}
		if seq.WM.String() != wm.String() {
			t.Fatalf("%v: sequential path lost the watermark: %s", agg, seq.WM)
		}
		for _, cfg := range []Config{
			{Workers: 2},
			{Workers: 4, ChunkRows: 251},
			{Workers: 16, ChunkRows: 64},
		} {
			par, err := Detect(context.Background(), r, len(wm), opts, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if par.WM.String() != seq.WM.String() {
				t.Fatalf("%v cfg %+v: parallel detected %s, sequential %s", agg, cfg, par.WM, seq.WM)
			}
			if !reflect.DeepEqual(par, seq) {
				t.Fatalf("%v cfg %+v: reports diverge:\nseq: %+v\npar: %+v", agg, cfg, seq, par)
			}
		}
	}
}

// TestEmbedAssessorFallsBackSequential: quality budgets are
// order-dependent, so the pipeline must produce the sequential result
// even when asked for many workers.
func TestEmbedAssessorFallsBackSequential(t *testing.T) {
	wm := ecc.MustParseBits("1011001110")
	seqRel, dom := testData(t, 8000)
	parRel := seqRel.Clone()
	opts := testOptions(dom)

	mk := func(r *relation.Relation) mark.Options {
		o := opts
		o.Assessor = quality.NewAssessor(quality.MaxAlterationFraction(0.005, r.Len()))
		return o
	}
	seqStats, err := mark.Embed(seqRel, wm, mk(seqRel))
	if err != nil {
		t.Fatal(err)
	}
	parStats, err := Embed(context.Background(), parRel, wm, mk(parRel), Config{Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !seqRel.Equal(parRel) || parStats != seqStats {
		t.Fatalf("assessor path diverged from sequential:\nseq: %+v\npar: %+v", seqStats, parStats)
	}
	if parStats.SkippedQuality == 0 {
		t.Fatal("test budget never bound — assessor fallback untested")
	}
}

// TestEmbedPrimaryKeyAttrFallsBackSequential: a Section 3.3 pairwise
// embedding can override KeyAttr and watermark the schema's primary key;
// rewriting key values mutates the relation's shared key index, so the
// pipeline must run that case sequentially (concurrent workers would
// race on the index map — run with -race).
func TestEmbedPrimaryKeyAttrFallsBackSequential(t *testing.T) {
	// Fresh replacement values, so key rewrites never collide.
	fresh := make([]string, 64)
	for i := range fresh {
		fresh[i] = "R" + strconv.Itoa(i)
	}
	dom, err := relation.NewDomain(fresh)
	if err != nil {
		t.Fatal(err)
	}
	mk := func() *relation.Relation {
		r, _ := testData(t, 8000)
		return r
	}
	opts := mark.Options{
		KeyAttr: "Item_Nbr",  // non-key column acts as K...
		Attr:    "Visit_Nbr", // ...and the primary key is rewritten
		K1:      keyhash.NewKey("pk-k1"),
		K2:      keyhash.NewKey("pk-k2"),
		E:       30,
		Domain:  dom,
	}
	wm := ecc.MustParseBits("101")

	seqRel := mk()
	seqStats, seqErr := mark.Embed(seqRel, wm, opts)
	parRel := mk()
	parStats, parErr := Embed(context.Background(), parRel, wm, opts, Config{Workers: 8, ChunkRows: 100})
	if (seqErr == nil) != (parErr == nil) {
		t.Fatalf("error divergence: seq %v, par %v", seqErr, parErr)
	}
	if seqErr == nil {
		if !seqRel.Equal(parRel) {
			t.Fatal("primary-key embedding diverged from sequential")
		}
		if parStats != seqStats {
			t.Fatalf("stats diverge:\nseq: %+v\npar: %+v", seqStats, parStats)
		}
	}
}

func TestEmbedReaderMatchesMaterialized(t *testing.T) {
	wm := ecc.MustParseBits("1011001110")
	matRel, dom := testData(t, 12000)
	opts := testOptions(dom)

	// Render the pristine relation to CSV, then stream-embed it.
	var in strings.Builder
	if err := relation.WriteCSV(&in, matRel); err != nil {
		t.Fatal(err)
	}
	matStats, err := mark.Embed(matRel, wm, opts)
	if err != nil {
		t.Fatal(err)
	}

	sOpts := opts
	sOpts.BandwidthOverride = matStats.Bandwidth
	src, err := relation.NewCSVRowReader(strings.NewReader(in.String()), matRel.Schema())
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	dst, err := relation.NewCSVRowWriter(&out, matRel.Schema())
	if err != nil {
		t.Fatal(err)
	}
	streamStats, err := EmbedReader(context.Background(), src, dst, wm, sOpts, Config{Workers: 4, ChunkRows: 777})
	if err != nil {
		t.Fatal(err)
	}
	if streamStats != matStats {
		t.Fatalf("stats diverge:\nmat:    %+v\nstream: %+v", matStats, streamStats)
	}
	got, err := relation.ReadCSV(strings.NewReader(out.String()), matRel.Schema())
	if err != nil {
		t.Fatal(err)
	}
	if !matRel.Equal(got) {
		t.Fatal("streamed embed emitted different rows than the materialized pass")
	}
}

func TestDetectReaderMatchesMaterialized(t *testing.T) {
	wm := ecc.MustParseBits("1011001110")
	r, dom := testData(t, 12000)
	opts := testOptions(dom)
	st, err := mark.Embed(r, wm, opts)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := mark.Detect(r, len(wm), opts)
	if err != nil {
		t.Fatal(err)
	}

	var in strings.Builder
	if err := relation.WriteJSONL(&in, r); err != nil {
		t.Fatal(err)
	}
	sOpts := opts
	sOpts.BandwidthOverride = st.Bandwidth
	src := relation.NewJSONLRowReader(strings.NewReader(in.String()), r.Schema())
	rep, err := DetectReader(context.Background(), src, len(wm), sOpts, Config{Workers: 4, ChunkRows: 997})
	if err != nil {
		t.Fatal(err)
	}
	if rep.WM.String() != seq.WM.String() {
		t.Fatalf("stream detected %s, sequential %s", rep.WM, seq.WM)
	}
	if !reflect.DeepEqual(rep, seq) {
		t.Fatalf("reports diverge:\nseq:    %+v\nstream: %+v", seq, rep)
	}
}

func TestStreamPropagatesReadErrors(t *testing.T) {
	_, dom := testData(t, 100)
	opts := testOptions(dom)
	opts.BandwidthOverride = 64
	schema := datagen.ItemScanSchema()

	// Truncated quoted field: the reader fails mid-stream.
	in := "Visit_Nbr,Item_Nbr\n1,10\n\"2,11\n"
	src, err := relation.NewCSVRowReader(strings.NewReader(in), schema)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DetectReader(context.Background(), src, 3, opts, Config{Workers: 2, ChunkRows: 1}); err == nil {
		t.Fatal("malformed stream accepted")
	}
}

func TestStreamRejectsOrderDependentHooks(t *testing.T) {
	_, dom := testData(t, 100)
	opts := testOptions(dom)
	opts.BandwidthOverride = 64
	opts.SkipRow = func(int) bool { return false }
	schema := datagen.ItemScanSchema()
	src, err := relation.NewCSVRowReader(strings.NewReader("Visit_Nbr,Item_Nbr\n1,10\n"), schema)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DetectReader(context.Background(), src, 3, opts, Config{}); err == nil {
		t.Fatal("order-dependent hook accepted by streaming path")
	}
	var out strings.Builder
	dst, err := relation.NewCSVRowWriter(&out, schema)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EmbedReader(context.Background(), src, dst, ecc.MustParseBits("101"), opts, Config{}); err == nil {
		t.Fatal("order-dependent hook accepted by streaming embed")
	}
}

func TestPartition(t *testing.T) {
	cases := []struct {
		n, chunk int
		want     int
	}{
		{0, 100, 1},
		{1, 100, 1},
		{100, 100, 1},
		{101, 100, 2},
		{1000, 100, 10},
	}
	for _, c := range cases {
		got := partition(c.n, c.chunk)
		if len(got) != c.want {
			t.Errorf("partition(%d, %d): %d chunks, want %d", c.n, c.chunk, len(got), c.want)
		}
		covered := 0
		for i, ch := range got {
			if ch.Index != i {
				t.Errorf("partition(%d, %d): chunk %d has index %d", c.n, c.chunk, i, ch.Index)
			}
			covered += ch.Hi - ch.Lo
		}
		if covered != c.n {
			t.Errorf("partition(%d, %d): covers %d rows", c.n, c.chunk, covered)
		}
	}
}
