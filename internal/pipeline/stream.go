package pipeline

import (
	"context"
	"io"
	"sync"

	"repro/internal/ecc"
	"repro/internal/mark"
	"repro/internal/relation"
)

// Streaming ingestion: the same chunked worker pool, fed from a
// relation.RowReader instead of a materialized relation. Rows are
// buffered into chunk-sized mini-relations; workers embed or scan each
// chunk while the reader fills the next, and a single collector consumes
// results in chunk order (so LastWriteWins detection and output row order
// match the sequential pass). Memory is bounded by
// workers × chunk size, never by the dataset.
//
// Because the stream's length is unknown up front, both entry points
// require Options.BandwidthOverride (the embedding-time |wm_data|) and
// Options.Domain (the value catalog) — exactly the parameters that travel
// in a core.Record. Primary-key uniqueness is enforced only within a
// chunk; a stream with duplicate keys across chunks is the caller's
// responsibility, as detecting it would require materializing the key
// set.

// StreamChunkRows is the default chunk size for streaming passes.
const StreamChunkRows = 8192

func (c Config) streamChunkRows() int {
	if c.ChunkRows > 0 {
		return c.ChunkRows
	}
	return StreamChunkRows
}

// streamJob is one chunk travelling through the streaming pool: the
// mini-relation plus a rendezvous channel its result comes back on.
type streamJob[T any] struct {
	rel *relation.Relation
	res chan streamResult[T]
}

type streamResult[T any] struct {
	val T
	err error
}

// runStream reads chunk mini-relations from src and routes each through
// work on a pool of workers, invoking collect for every chunk result in
// stream order. It returns the first error from reading, working, or
// collecting; a collect error stops the reader early. A cancelled ctx
// stops the reader between rows — the source is NOT drained — and the
// call reports ctx.Err().
//
// Chunk relations are recycled: once collect returns for a chunk, its
// mini-relation goes back to the reader for refilling, so neither work
// nor collect may retain it (or any tuple of it) past their return.
func runStream[T any](ctx context.Context, src relation.RowReader, cfg Config, work func(*relation.Relation) (T, error), collect func(T) error) error {
	workers := cfg.workers()
	chunkRows := cfg.streamChunkRows()

	jobs := make(chan *streamJob[T], workers)
	ordered := make(chan *streamJob[T], workers)
	freeRels := make(chan *relation.Relation, 2*workers)
	stop := make(chan struct{})
	var stopOnce sync.Once

	// A cancelled ctx trips the same stop latch a collect error does, so
	// the reader and dispatcher unwind through one path.
	watcherDone := make(chan struct{})
	defer close(watcherDone)
	go func() {
		select {
		case <-ctx.Done():
			stopOnce.Do(func() { close(stop) })
		case <-watcherDone:
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for job := range jobs {
				if ctx.Err() != nil {
					job.res <- streamResult[T]{err: ctx.Err()}
					continue
				}
				val, err := work(job.rel)
				job.res <- streamResult[T]{val, err}
			}
		}()
	}

	var readErr error
	go func() {
		defer close(jobs)
		defer close(ordered)
		newRel := func() *relation.Relation {
			select {
			case r := <-freeRels:
				r.Reset()
				return r
			default:
				return relation.New(src.Schema())
			}
		}
		rel := newRel()
		dispatch := func() bool {
			job := &streamJob[T]{rel: rel, res: make(chan streamResult[T], 1)}
			select {
			case <-stop:
				return false
			case jobs <- job:
			}
			ordered <- job
			rel = newRel()
			return true
		}
		stopped := func() bool {
			select {
			case <-stop:
				return true
			default:
				return false
			}
		}
		for {
			if stopped() {
				return
			}
			t, err := src.Read()
			if err == io.EOF {
				break
			}
			if err != nil {
				readErr = err
				return
			}
			if err := rel.Append(t); err != nil {
				readErr = err
				return
			}
			if rel.Len() >= chunkRows {
				if !dispatch() {
					return
				}
			}
		}
		if rel.Len() > 0 {
			dispatch()
		}
	}()

	var firstErr error
	for job := range ordered {
		r := <-job.res
		if firstErr == nil {
			if r.err != nil {
				firstErr = r.err
			} else if err := collect(r.val); err != nil {
				firstErr = err
			}
			if firstErr != nil {
				stopOnce.Do(func() { close(stop) })
			}
		}
		select { // collect is done with the chunk — recycle it
		case freeRels <- job.rel:
		default:
		}
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	if readErr != nil && firstErr == nil {
		firstErr = readErr
	}
	return firstErr
}

// EmbedReader streams rows from src, watermarks them chunk-by-chunk on a
// worker pool, and writes the (possibly rewritten) rows to dst in input
// order. Requires opts.Domain and opts.BandwidthOverride — with an
// unknown stream length there is no N to derive either from. The emitted
// rows are identical to what a materialized mark.Embed pass would
// produce under the same bandwidth and domain.
func EmbedReader(ctx context.Context, src relation.RowReader, dst relation.RowWriter, wm ecc.Bits, opts mark.Options, cfg Config) (mark.EmbedStats, error) {
	if err := validateChunkable(opts, "embed"); err != nil {
		return mark.EmbedStats{}, err
	}
	em, err := mark.NewStreamEmbedder(src.Schema(), wm, opts)
	if err != nil {
		return mark.EmbedStats{}, err
	}
	var agg mark.ChunkStats
	err = runStream(ctx, src, cfg,
		func(rel *relation.Relation) (*streamEmbedOut, error) {
			var cs mark.ChunkStats
			var bs mark.BlockScratch
			if err := embedRange(ctx, em, rel, 0, rel.Len(), &cs, &bs, cfg); err != nil {
				return nil, err
			}
			return &streamEmbedOut{rel: rel, cs: cs}, nil
		},
		func(out *streamEmbedOut) error {
			for i := 0; i < out.rel.Len(); i++ {
				if err := dst.Write(out.rel.Tuple(i)); err != nil {
					return err
				}
			}
			agg.Add(out.cs)
			return nil
		})
	if err != nil {
		return mark.EmbedStats{}, err
	}
	if err := dst.Flush(); err != nil {
		return mark.EmbedStats{}, err
	}
	st := mark.MergeChunks(agg)
	st.Bandwidth = em.Bandwidth() // an empty stream still has a fixed |wm_data|
	return st, nil
}

type streamEmbedOut struct {
	rel *relation.Relation
	cs  mark.ChunkStats
}

// ScanMany is the fan-out detection engine: it drives every prepared
// scanner over a SINGLE pass of src and returns one merged tally per
// scanner, in scanner order. Chunks are scanned on the worker pool
// block-at-a-time with the certificate loop INSIDE the block loop: each
// fixed-size block's key column is extracted once, its fitness digests
// are computed once per distinct lane (certificates sharing an owner
// secret replay each other's digests through the scratch memo), and the
// block's keys and digests stay cache-resident while every scanner
// sweeps it. Per-chunk tallies merge in stream order, so every tally —
// including its LastWriteWins column — is bit-identical to scanning the
// materialized stream with that scanner alone. The dataset is read,
// parsed and chunked exactly once no matter how many scanners ride the
// pass; this is what makes corpus-against-catalog verification
// (core.VerifyBatch) scale with the number of certificates.
//
// Scanners must have been prepared against src's schema (their key and
// attribute columns are resolved positions). With zero scanners the stream
// is not consumed. cfg.Progress ticks once per block, with suspect tuples
// covered (not multiplied by the number of scanners).
func ScanMany(ctx context.Context, src relation.RowReader, scanners []*mark.Scanner, cfg Config) ([]*mark.Tally, error) {
	totals := make([]*mark.Tally, len(scanners))
	for i, sc := range scanners {
		totals[i] = sc.NewTally()
	}
	if len(scanners) == 0 {
		return totals, nil
	}
	if br, ok := src.(relation.BlockReader); ok && cfg.BlockRows >= 0 {
		// Columnar fast path: the source fills pooled blocks directly
		// (zero allocations per row), and the scanners vote over the
		// arena bytes through Scanner.ScanColumns. Bit-identical to the
		// row path below — the equivalence tests drive both.
		return scanManyBlocks(ctx, br, scanners, totals, cfg)
	}
	err := runStream(ctx, src, cfg,
		func(rel *relation.Relation) ([]*mark.Tally, error) {
			parts := make([]*mark.Tally, len(scanners))
			for i, sc := range scanners {
				parts[i] = sc.NewTally()
			}
			if cfg.BlockRows < 0 {
				// Tuple-at-a-time legacy engine: scanner-major, each
				// scanner sweeping the chunk with its own hasher state.
				for i, sc := range scanners {
					for j := 0; j < rel.Len(); j++ {
						sc.ScanTuple(rel.Tuple(j), parts[i])
					}
				}
				cfg.report(rel.Len())
				return parts, nil
			}
			var bs mark.BlockScratch
			br := cfg.blockRows()
			for lo := 0; lo < rel.Len(); lo += br {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				hi := min(lo+br, rel.Len())
				for i, sc := range scanners {
					if err := sc.ScanBlock(rel, lo, hi, parts[i], &bs); err != nil {
						return nil, err
					}
				}
				cfg.report(hi - lo)
			}
			return parts, nil
		},
		func(parts []*mark.Tally) error {
			for i := range totals {
				totals[i].Merge(parts[i])
			}
			return nil
		})
	if err != nil {
		return nil, err
	}
	return totals, nil
}

// DetectOutcome is one scanner's result from DetectMany. Err carries a
// per-certificate decode failure (e.g. an ECC that cannot decode the
// recovered wm_data); the scan itself either succeeds for all scanners or
// fails the whole call.
type DetectOutcome struct {
	Report mark.DetectReport
	Err    error
}

// DetectMany runs ScanMany and aggregates each scanner's tally into its
// detection report. Outcomes are in scanner order.
func DetectMany(ctx context.Context, src relation.RowReader, scanners []*mark.Scanner, cfg Config) ([]DetectOutcome, error) {
	tallies, err := ScanMany(ctx, src, scanners, cfg)
	if err != nil {
		return nil, err
	}
	out := make([]DetectOutcome, len(scanners))
	for i, sc := range scanners {
		out[i].Report, out[i].Err = sc.Report(tallies[i])
	}
	return out, nil
}

// DetectReader streams rows from src and recovers a wmLen-bit watermark —
// the single-scanner case of DetectMany. Requires opts.Domain and
// opts.BandwidthOverride. The recovered bit string is bit-identical to
// running mark.Detect over the materialized stream with the same
// parameters.
func DetectReader(ctx context.Context, src relation.RowReader, wmLen int, opts mark.Options, cfg Config) (mark.DetectReport, error) {
	if err := validateChunkable(opts, "detect"); err != nil {
		return mark.DetectReport{}, err
	}
	sc, err := mark.NewStreamScanner(src.Schema(), wmLen, opts)
	if err != nil {
		return mark.DetectReport{}, err
	}
	outs, err := DetectMany(ctx, src, []*mark.Scanner{sc}, cfg)
	if err != nil {
		return mark.DetectReport{}, err
	}
	return outs[0].Report, outs[0].Err
}
