package pipeline

import (
	"context"
	"io"
	"sync"
	"time"

	"repro/internal/mark"
	"repro/internal/relation"
)

// The columnar streaming engine: ScanMany's fast path for sources that
// implement relation.BlockReader. The reader goroutine fills pooled
// columnar blocks straight from the input bytes (no per-row tuples, no
// per-field strings), groups them into chunk-sized jobs, and the worker
// pool votes over each block's arena bytes through Scanner.ScanColumns.
// Everything cycles: blocks return to the relation block pool after
// scanning, per-chunk tally groups and job shells return to free lists
// after collection, and each worker keeps one BlockScratch for its
// lifetime — steady state performs zero allocations per row. Tallies
// merge in stream order, so results (including LastWriteWins) are
// bit-identical to the row-at-a-time path.

// blockJob is one group of columnar blocks travelling through the pool,
// plus the rendezvous channel its per-scanner tallies come back on.
type blockJob struct {
	blks []*relation.Block
	res  chan blockTallies
}

type blockTallies struct {
	parts []*mark.Tally
	err   error
}

// scanManyBlocks drives every scanner over a single pass of src,
// accumulating into totals (one per scanner, in scanner order). Same
// ordering, cancellation and error semantics as the runStream path:
// tallies merge in stream order, rows buffered when a read error hits
// are discarded, and a cancelled ctx stops the reader between blocks.
func scanManyBlocks(ctx context.Context, src relation.BlockReader, scanners []*mark.Scanner, totals []*mark.Tally, cfg Config) ([]*mark.Tally, error) {
	workers := cfg.workers()
	blockRows := cfg.blockRows()
	groupBlocks := max(cfg.streamChunkRows()/blockRows, 1)

	jobs := make(chan *blockJob, workers)
	ordered := make(chan *blockJob, workers)
	freeJobs := make(chan *blockJob, 2*workers)
	freeParts := make(chan []*mark.Tally, 2*workers)
	stop := make(chan struct{})
	var stopOnce sync.Once

	watcherDone := make(chan struct{})
	defer close(watcherDone)
	go func() {
		select {
		case <-ctx.Done():
			stopOnce.Do(func() { close(stop) })
		case <-watcherDone:
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var bs mark.BlockScratch // one scratch per worker, reused across jobs
			if cfg.Phases != nil {
				bs.EnableHashTiming()
			}
			for job := range jobs {
				var res blockTallies
				if err := ctx.Err(); err != nil {
					res.err = err
				} else if cfg.Phases == nil {
					res.parts, res.err = scanBlockGroup(ctx, scanners, job.blks, &bs, freeParts, cfg)
				} else {
					// Phase clocks at job granularity: the scratch meters
					// kernel time, the remainder of the scan elapsed is the
					// fitness/vote walk.
					start := time.Now()
					res.parts, res.err = scanBlockGroup(ctx, scanners, job.blks, &bs, freeParts, cfg)
					elapsed := time.Since(start)
					hash := time.Duration(bs.HashNanos())
					cfg.Phases.AddHash(hash)
					cfg.Phases.AddVote(elapsed - hash)
				}
				for _, blk := range job.blks {
					relation.PutBlock(blk)
				}
				job.blks = job.blks[:0]
				job.res <- res
			}
		}()
	}

	var readErr error
	go func() {
		defer close(jobs)
		defer close(ordered)
		getJob := func() *blockJob {
			select {
			case j := <-freeJobs:
				return j
			default:
				return &blockJob{res: make(chan blockTallies, 1)}
			}
		}
		putBlocks := func(blks []*relation.Block) {
			for _, blk := range blks {
				relation.PutBlock(blk)
			}
		}
		job := getJob()
		defer func() { putBlocks(job.blks) }()
		dispatch := func() bool {
			select {
			case <-stop:
				return false
			case jobs <- job:
			}
			ordered <- job
			job = getJob()
			return true
		}
		stopped := func() bool {
			select {
			case <-stop:
				return true
			default:
				return false
			}
		}
		for {
			if stopped() {
				return
			}
			blk := relation.GetBlock(src.Schema())
			var readStart time.Time
			if cfg.Phases != nil {
				readStart = time.Now()
			}
			n, err := src.ReadBlock(blk, blockRows)
			if cfg.Phases != nil {
				cfg.Phases.AddIngest(time.Since(readStart))
			}
			if err == io.EOF {
				relation.PutBlock(blk)
				break
			}
			if err != nil {
				// Discard the buffered group, like the row path discards
				// its partial chunk: the whole call errors out anyway.
				relation.PutBlock(blk)
				readErr = err
				return
			}
			if n == 0 {
				relation.PutBlock(blk)
				continue
			}
			job.blks = append(job.blks, blk)
			if len(job.blks) >= groupBlocks {
				if !dispatch() {
					return
				}
			}
		}
		if len(job.blks) > 0 {
			dispatch()
		}
	}()

	var firstErr error
	for job := range ordered {
		r := <-job.res
		if firstErr == nil {
			if r.err != nil {
				firstErr = r.err
				stopOnce.Do(func() { close(stop) })
			} else {
				var mergeStart time.Time
				if cfg.Phases != nil {
					mergeStart = time.Now()
				}
				for i := range totals {
					totals[i].Merge(r.parts[i])
				}
				if cfg.Phases != nil {
					cfg.Phases.AddMerge(time.Since(mergeStart))
				}
			}
		}
		if r.parts != nil {
			select {
			case freeParts <- r.parts:
			default:
			}
		}
		select {
		case freeJobs <- job:
		default:
		}
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if readErr != nil && firstErr == nil {
		firstErr = readErr
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return totals, nil
}

// scanBlockGroup sweeps every scanner over one group of blocks,
// certificate loop inside the block loop, into a recycled tally group.
func scanBlockGroup(ctx context.Context, scanners []*mark.Scanner, blks []*relation.Block, bs *mark.BlockScratch, freeParts chan []*mark.Tally, cfg Config) ([]*mark.Tally, error) {
	var parts []*mark.Tally
	select {
	case parts = <-freeParts:
		for _, t := range parts {
			t.Reset()
		}
	default:
		parts = make([]*mark.Tally, len(scanners))
		for i, sc := range scanners {
			parts[i] = sc.NewTally()
		}
	}
	for _, blk := range blks {
		if err := ctx.Err(); err != nil {
			return parts, err
		}
		for i, sc := range scanners {
			if err := sc.ScanColumns(blk, parts[i], bs); err != nil {
				return parts, err
			}
		}
		cfg.report(blk.Rows())
	}
	return parts, nil
}
