package pipeline

import "sync/atomic"

// Process-wide scan-engine counters, ticked once per block from
// Config.report. They back the wm_scan_tuples_total and
// wm_scan_blocks_total sampled families in /metrics; keeping them here
// (rather than plumbing a registry through the hot path) means the
// block loop pays exactly two uncontended-in-practice atomic adds per
// block whether or not a server is scraping.
var (
	statTuples atomic.Uint64
	statBlocks atomic.Uint64
)

// Stats reports the cumulative number of tuples and scan blocks (or
// progress ticks, for tuple-at-a-time and streaming chunk paths) that
// this process's pipelines have pushed through scan and embed passes.
func Stats() (tuples, blocks uint64) {
	return statTuples.Load(), statBlocks.Load()
}
