package pipeline

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/ecc"
	"repro/internal/keyhash"
	"repro/internal/mark"
	"repro/internal/relation"
)

// detectManyData builds a relation carrying several watermarks embedded
// under distinct key pairs — the suspect-against-catalog shape — and
// returns it with the option sets of every certificate (only the first
// two actually marked the data; the rest are innocent bystanders whose
// detection must still be bit-identical to their individual scans).
func detectManyData(t *testing.T, agg mark.VoteAggregation) (*relation.Relation, []mark.Options, ecc.Bits) {
	t.Helper()
	r, dom := testData(t, 5000)
	wm := ecc.MustParseBits("1011001110")
	var optsSet []mark.Options
	for i := 0; i < 5; i++ {
		opts := mark.Options{
			Attr:        "Item_Nbr",
			K1:          keyhash.NewKey(fmt.Sprintf("dm-k1-%d", i)),
			K2:          keyhash.NewKey(fmt.Sprintf("dm-k2-%d", i)),
			E:           20,
			Domain:      dom,
			Aggregation: agg,
		}
		optsSet = append(optsSet, opts)
	}
	for i := 0; i < 2; i++ {
		st, err := mark.Embed(r, wm, optsSet[i])
		if err != nil {
			t.Fatal(err)
		}
		optsSet[i].BandwidthOverride = st.Bandwidth
	}
	for i := 2; i < len(optsSet); i++ {
		optsSet[i].BandwidthOverride = mark.Bandwidth(r.Len(), optsSet[i].E)
	}
	return r, optsSet, wm
}

// TestDetectManyMatchesIndividualScans is the one-scan equivalence proof:
// fanning N prepared scanners over a single stream pass yields, for every
// scanner, exactly the report a dedicated sequential mark.Detect (and a
// dedicated DetectReader pass) would produce — for both vote-aggregation
// policies, and regardless of chunk boundaries.
func TestDetectManyMatchesIndividualScans(t *testing.T) {
	for _, agg := range []mark.VoteAggregation{mark.MajorityVote, mark.LastWriteWins} {
		t.Run(agg.String(), func(t *testing.T) {
			r, optsSet, wm := detectManyData(t, agg)

			scanners := make([]*mark.Scanner, len(optsSet))
			for i, opts := range optsSet {
				sc, err := mark.NewStreamScanner(r.Schema(), len(wm), opts)
				if err != nil {
					t.Fatal(err)
				}
				scanners[i] = sc
			}
			cfg := Config{Workers: 4, ChunkRows: 700} // uneven tail on purpose
			outs, err := DetectMany(context.Background(), relation.Rows(r), scanners, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(outs) != len(optsSet) {
				t.Fatalf("got %d outcomes, want %d", len(outs), len(optsSet))
			}

			for i, opts := range optsSet {
				want, err := mark.Detect(r, len(wm), opts)
				if err != nil {
					t.Fatal(err)
				}
				if outs[i].Err != nil {
					t.Fatalf("scanner %d: %v", i, outs[i].Err)
				}
				if !reflect.DeepEqual(outs[i].Report, want) {
					t.Errorf("scanner %d: DetectMany report diverged:\n got %+v\nwant %+v",
						i, outs[i].Report, want)
				}
				solo, err := DetectReader(context.Background(), relation.Rows(r), len(wm), opts, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(solo, want) {
					t.Errorf("scanner %d: DetectReader diverged from mark.Detect", i)
				}
			}
			// The marked certificates recover their watermark perfectly.
			for i := 0; i < 2; i++ {
				if got := outs[i].Report.WM.String(); got != wm.String() {
					t.Errorf("marked certificate %d recovered %s, want %s", i, got, wm)
				}
			}
		})
	}
}

// TestScanManyZeroScanners asserts the degenerate case neither fails nor
// consumes the stream.
func TestScanManyZeroScanners(t *testing.T) {
	r, _ := testData(t, 10)
	src := relation.Rows(r)
	tallies, err := ScanMany(context.Background(), src, nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tallies) != 0 {
		t.Fatalf("got %d tallies, want 0", len(tallies))
	}
	if tup, err := src.Read(); err != nil || tup == nil {
		t.Fatalf("stream was consumed: tuple %v, err %v", tup, err)
	}
}

// TestScanManyPropagatesReadError asserts a corrupt stream fails the whole
// batch rather than returning partial tallies.
func TestScanManyPropagatesReadError(t *testing.T) {
	r, dom := testData(t, 100)
	opts := mark.Options{
		Attr: "Item_Nbr", K1: keyhash.NewKey("er-k1"), K2: keyhash.NewKey("er-k2"),
		E: 5, Domain: dom, BandwidthOverride: 20,
	}
	sc, err := mark.NewStreamScanner(r.Schema(), 10, opts)
	if err != nil {
		t.Fatal(err)
	}
	var csvData strings.Builder
	if err := relation.WriteCSV(&csvData, r); err != nil {
		t.Fatal(err)
	}
	broken := csvData.String() + "not,a,valid,row,at,all\n"
	src, err := relation.NewCSVRowReader(strings.NewReader(broken), r.Schema())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ScanMany(context.Background(), src, []*mark.Scanner{sc}, Config{Workers: 2, ChunkRows: 16}); err == nil {
		t.Fatal("ScanMany swallowed a stream read error")
	}
}
