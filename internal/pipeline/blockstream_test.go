package pipeline

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"repro/internal/keyhash"
	"repro/internal/mark"
	"repro/internal/relation"
)

// blockStreamScanners prepares N stream scanners (two sharing a fitness
// key, so the memo-lane path is exercised) against r's schema.
func blockStreamScanners(t testing.TB, r *relation.Relation, dom *relation.Domain, agg mark.VoteAggregation) []*mark.Scanner {
	t.Helper()
	keys := [][2]string{
		{"bs-own-a", "bs-a2"},
		{"bs-own-a", "bs-b2"}, // shares the k1 lane with the first
		{"bs-own-c", "bs-c2"},
	}
	scanners := make([]*mark.Scanner, len(keys))
	for i, kp := range keys {
		opts := mark.Options{
			Attr: "Item_Nbr", K1: keyhash.NewKey(kp[0]), K2: keyhash.NewKey(kp[1]),
			E: 20, Domain: dom, Aggregation: agg,
			BandwidthOverride: mark.Bandwidth(r.Len(), 20),
		}
		sc, err := mark.NewStreamScanner(r.Schema(), 10, opts)
		if err != nil {
			t.Fatal(err)
		}
		scanners[i] = sc
	}
	return scanners
}

// TestScanManyBlockReaderEquivalence is the columnar fast-path proof:
// ScanMany fed by the zero-copy CSV and JSONL block readers produces,
// for every scanner, tallies bit-identical to the row-reader path and
// to the materialized pass — for both vote aggregations and across
// worker counts, chunk sizes and block sizes (size-1 blocks and ragged
// tails included).
func TestScanManyBlockReaderEquivalence(t *testing.T) {
	r, dom := testData(t, 7000)
	var csvData, jsonlData strings.Builder
	if err := relation.WriteCSV(&csvData, r); err != nil {
		t.Fatal(err)
	}
	if err := relation.WriteJSONL(&jsonlData, r); err != nil {
		t.Fatal(err)
	}

	for _, agg := range []mark.VoteAggregation{mark.MajorityVote, mark.LastWriteWins} {
		scanners := blockStreamScanners(t, r, dom, agg)
		want, err := ScanMany(context.Background(), relation.Rows(r), scanners, Config{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, cfg := range []Config{
			{Workers: 1},
			{Workers: 4, ChunkRows: 700},
			{Workers: 3, ChunkRows: 1100, BlockRows: 1},
			{Workers: 4, ChunkRows: 999, BlockRows: 37},
			{Workers: 16, ChunkRows: 100, BlockRows: 512},
		} {
			for _, format := range []string{"csv", "jsonl"} {
				var src relation.RowReader
				if format == "csv" {
					br, err := relation.NewCSVBlockReader(strings.NewReader(csvData.String()), r.Schema())
					if err != nil {
						t.Fatal(err)
					}
					src = br
				} else {
					src = relation.NewJSONLBlockReader(strings.NewReader(jsonlData.String()), r.Schema())
				}
				got, err := ScanMany(context.Background(), src, scanners, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("agg %v cfg %+v %s: block-reader ScanMany diverged from materialized pass", agg, cfg, format)
				}
			}
		}
		// The legacy engine request (BlockRows < 0) must bypass the fast
		// path and still agree.
		br, err := relation.NewCSVBlockReader(strings.NewReader(csvData.String()), r.Schema())
		if err != nil {
			t.Fatal(err)
		}
		got, err := ScanMany(context.Background(), br, scanners, Config{Workers: 2, ChunkRows: 500, BlockRows: -1})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("agg %v: legacy-engine pass over a block reader diverged", agg)
		}
	}
}

// TestScanManyBlockReaderPropagatesReadError mirrors the row-path test:
// a corrupt stream fails the whole batch, not partial tallies.
func TestScanManyBlockReaderPropagatesReadError(t *testing.T) {
	r, dom := testData(t, 300)
	var csvData strings.Builder
	if err := relation.WriteCSV(&csvData, r); err != nil {
		t.Fatal(err)
	}
	broken := csvData.String() + "not,a,valid,row,at,all\n"
	src, err := relation.NewCSVBlockReader(strings.NewReader(broken), r.Schema())
	if err != nil {
		t.Fatal(err)
	}
	scanners := blockStreamScanners(t, r, dom, mark.MajorityVote)
	if _, err := ScanMany(context.Background(), src, scanners, Config{Workers: 2, ChunkRows: 64}); err == nil {
		t.Fatal("ScanMany swallowed a block-reader read error")
	}
}

// TestScanManyBlockReaderCancelled asserts a cancelled context fails the
// pass with ctx.Err and the reader unwinds without deadlocking.
func TestScanManyBlockReaderCancelled(t *testing.T) {
	r, dom := testData(t, 5000)
	var csvData strings.Builder
	if err := relation.WriteCSV(&csvData, r); err != nil {
		t.Fatal(err)
	}
	src, err := relation.NewCSVBlockReader(strings.NewReader(csvData.String()), r.Schema())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	scanners := blockStreamScanners(t, r, dom, mark.MajorityVote)
	if _, err := ScanMany(ctx, src, scanners, Config{Workers: 2, ChunkRows: 128}); err != context.Canceled {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// TestScanManyBlocksAllocsPerRow pins the tentpole end to end: a full
// streaming ScanMany pass over the zero-copy readers — parse, hash,
// vote — stays under a few fixed allocations per PASS amortized to
// effectively zero per row. The budget covers the per-pass machinery
// (reader construction, channels, goroutines, first-lap pool fills);
// the per-row cost it bounds is what the tentpole eliminated.
func TestScanManyBlocksAllocsPerRow(t *testing.T) {
	const rows = 20000
	r, dom := testData(t, rows)
	var csvData, jsonlData strings.Builder
	if err := relation.WriteCSV(&csvData, r); err != nil {
		t.Fatal(err)
	}
	if err := relation.WriteJSONL(&jsonlData, r); err != nil {
		t.Fatal(err)
	}
	scanners := blockStreamScanners(t, r, dom, mark.MajorityVote)
	for _, tc := range []struct {
		format string
		data   string
	}{
		{"csv", csvData.String()},
		{"jsonl", jsonlData.String()},
	} {
		t.Run(tc.format, func(t *testing.T) {
			pass := func() {
				var src relation.RowReader
				if tc.format == "csv" {
					br, err := relation.NewCSVBlockReader(strings.NewReader(tc.data), r.Schema())
					if err != nil {
						t.Fatal(err)
					}
					src = br
				} else {
					src = relation.NewJSONLBlockReader(strings.NewReader(tc.data), r.Schema())
				}
				if _, err := ScanMany(context.Background(), src, scanners, Config{Workers: 1}); err != nil {
					t.Fatal(err)
				}
			}
			pass() // warm the block and tally pools
			allocs := testing.AllocsPerRun(5, pass)
			perRow := allocs / rows
			if perRow > 0.05 {
				t.Fatalf("streaming %s scan allocates %.0f per pass = %.3f allocs/row, want ~0", tc.format, allocs, perRow)
			}
		})
	}
}

// BenchmarkScanManyIngestion measures the end-to-end streaming scan —
// bytes in, tallies out — over the legacy row readers vs the zero-copy
// block readers, for both wire formats.
func BenchmarkScanManyIngestion(b *testing.B) {
	r, dom := testData(b, 50000)
	var csvData, jsonlData strings.Builder
	if err := relation.WriteCSV(&csvData, r); err != nil {
		b.Fatal(err)
	}
	if err := relation.WriteJSONL(&jsonlData, r); err != nil {
		b.Fatal(err)
	}
	scanners := blockStreamScanners(b, r, dom, mark.MajorityVote)
	mk := map[string]func(b *testing.B, data string) relation.RowReader{
		"csv/rows": func(b *testing.B, data string) relation.RowReader {
			rr, err := relation.NewCSVRowReader(strings.NewReader(data), r.Schema())
			if err != nil {
				b.Fatal(err)
			}
			return rr
		},
		"csv/blocks": func(b *testing.B, data string) relation.RowReader {
			br, err := relation.NewCSVBlockReader(strings.NewReader(data), r.Schema())
			if err != nil {
				b.Fatal(err)
			}
			return br
		},
		"jsonl/rows": func(b *testing.B, data string) relation.RowReader {
			return relation.NewJSONLRowReader(strings.NewReader(data), r.Schema())
		},
		"jsonl/blocks": func(b *testing.B, data string) relation.RowReader {
			return relation.NewJSONLBlockReader(strings.NewReader(data), r.Schema())
		},
	}
	for _, name := range []string{"csv/rows", "csv/blocks", "jsonl/rows", "jsonl/blocks"} {
		data := csvData.String()
		if strings.HasPrefix(name, "jsonl") {
			data = jsonlData.String()
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				src := mk[name](b, data)
				if _, err := ScanMany(context.Background(), src, scanners, Config{}); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(r.Len())*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
		})
	}
}
