package lint

import (
	"bufio"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// fixtureCases maps each testdata fixture package to the analyzer its
// "// want `regex`" comments are written against. Every want comment
// must be matched by a diagnostic on its line, and every diagnostic must
// be claimed by a want comment — positions are part of the contract.
var fixtureCases = []struct {
	dir      string
	analyzer string
}{
	{"secretflow", "secretflow"},
	{"wiretypes", "wiretypes"},
	{"importgate", "importgate"},
	{"importgate_api", "importgate"},
	{"ctxloop", "ctxloop"},
	{"slogonly", "slogonly"},
	{"determinism", "determinism"},
	{"arenacopy", "arenacopy"},
	{"spanend", "spanend"},
}

// wantComment extracts the expectation regex from a fixture line.
var wantComment = regexp.MustCompile("// want `([^`]+)`")

// expectation is one want comment: a diagnostic matching re must be
// reported at file:line.
type expectation struct {
	file string // base name
	line int
	re   *regexp.Regexp
}

func collectWants(t *testing.T, dir string) []expectation {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			for _, m := range wantComment.FindAllStringSubmatch(sc.Text(), -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regex %q: %v", e.Name(), line, m[1], err)
				}
				wants = append(wants, expectation{e.Name(), line, re})
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	if len(wants) == 0 {
		t.Fatalf("%s: no want comments — fixture asserts nothing", dir)
	}
	return wants
}

// TestFixtures type-checks every testdata package against the real
// module's export data, runs its analyzer, and diffs positioned
// diagnostics against the want comments.
func TestFixtures(t *testing.T) {
	loader, _, err := NewLoader("../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range fixtureCases {
		t.Run(tc.dir, func(t *testing.T) {
			dir := filepath.Join("testdata", tc.dir)
			pkg, err := loader.LoadFixture(dir)
			if err != nil {
				t.Fatal(err)
			}
			analyzers, err := ByName(tc.analyzer)
			if err != nil {
				t.Fatal(err)
			}
			if analyzers[0].Applies != nil && !analyzers[0].Applies(pkg.Path) {
				t.Fatalf("analyzer %s does not apply to fixture path %s — check the //wmlint:fixture directive",
					tc.analyzer, pkg.Path)
			}
			diags, err := Run([]*Package{pkg}, analyzers)
			if err != nil {
				t.Fatal(err)
			}
			wants := collectWants(t, dir)
			claimed := make([]bool, len(diags))
			for _, w := range wants {
				matched := false
				for i, d := range diags {
					if claimed[i] || filepath.Base(d.File) != w.file || d.Line != w.line {
						continue
					}
					if w.re.MatchString(d.Message) {
						claimed[i] = true
						matched = true
						break
					}
				}
				if !matched {
					t.Errorf("%s:%d: want diagnostic matching %q, got none", w.file, w.line, w.re)
				}
			}
			for i, d := range diags {
				if !claimed[i] {
					t.Errorf("unexpected diagnostic: %s", d)
				}
			}
		})
	}
}

// TestRepoClean is the dogfood gate: the full analyzer suite over the
// real module must report nothing. Every deliberate exception carries a
// //wmlint:ignore directive with its justification, so a finding here is
// either a regression or an undocumented exception — both are failures.
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	pkgs, _, err := Load("../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
	diags, err := Run(pkgs, All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("repo not lint-clean: %s", d)
	}
}

func TestByName(t *testing.T) {
	got, err := ByName("secretflow, ctxloop")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Name != "secretflow" || got[1].Name != "ctxloop" {
		t.Fatalf("ByName selection wrong: %+v", got)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("ByName accepted an unknown analyzer")
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Analyzer: "ctxloop", File: "x.go", Line: 3, Col: 7, Message: "m"}
	if got, want := d.String(), "x.go:3:7: m (ctxloop)"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}
