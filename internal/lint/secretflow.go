package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// SecretFlow enforces the invariant the whole ownership scheme rests on:
// the keyed secret must stay secret. It taints watermark key material —
// core.Spec.Secret / core.Record.Secret selections, keyhash.Key values,
// and whole Spec/Record certificates — propagates the taint through
// local assignments, conversions, formatting helpers and string
// concatenation, and reports any tainted expression reaching an
// observability or wire sink: log/slog calls, internal/obs metric and
// label constructors, fmt.Errorf / errors.New error strings, fmt and
// log printers, and internal/api wire-struct fields outside the
// sanctioned /v2/internal/scan certificate path.
var SecretFlow = &Analyzer{
	Name: "secretflow",
	Doc: "watermark key material (core.Spec.Secret, core.Record.Secret, keyhash.Key) " +
		"must never flow into slog calls, obs metrics/labels, error strings, fmt/log " +
		"printers, or unsanctioned internal/api wire fields",
	Applies: func(pkgPath string) bool {
		// Everything shipped: internal packages and the binaries. The
		// runnable examples are pedagogical (some print key material on
		// purpose to illustrate the court scenario) and stay out.
		return strings.HasPrefix(pkgPath, "repro/internal/") || strings.HasPrefix(pkgPath, "repro/cmd/")
	},
	Run: runSecretFlow,
}

// secretContainer types: a whole value of one of these carries the
// owner secret, so passing one to a sink leaks it (slog.Any("rec", rec)
// serializes the Secret field along with everything else).
var secretContainers = [][2]string{
	{"repro/internal/core", "Spec"},
	{"repro/internal/core", "Record"},
}

// secretFieldOwners are the named struct types whose field "Secret" is
// key material when selected.
var secretFieldOwners = [][2]string{
	{"repro/internal/core", "Spec"},
	{"repro/internal/core", "Record"},
	{"repro/internal/api", "WatermarkRequest"},
}

// sanctionedWireFields are the internal/api fields certificates are
// allowed to travel in: the /v2/internal/scan shard request (workers
// cannot compute keyed hashes without the secret) and the inline
// certificate of a verify request. Everything else in internal/api is
// public surface and must stay secret-free.
var sanctionedWireFields = map[string]bool{
	"ShardScanRequest.Records": true,
	"VerifyRequest.Record":     true,
}

func runSecretFlow(pass *Pass) error {
	info := pass.Pkg.Info
	s := &secretScan{pass: pass, info: info}
	forEachFile(pass, func(f *ast.File) {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			s.tainted = make(map[types.Object]bool)
			// Two propagation passes reach a fixpoint for the straight-
			// line assignment chains that occur in practice (secret ->
			// derived string -> logged value).
			for i := 0; i < 2; i++ {
				s.collectTaint(fd.Body)
			}
			s.checkSinks(fd.Body)
		}
	})
	return nil
}

type secretScan struct {
	pass    *Pass
	info    *types.Info
	tainted map[types.Object]bool
}

// collectTaint records local variables assigned from secretish
// expressions.
func (s *secretScan) collectTaint(body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range st.Rhs {
				if i >= len(st.Lhs) {
					break
				}
				if !s.secretish(rhs) {
					continue
				}
				if id, ok := st.Lhs[i].(*ast.Ident); ok {
					if obj := s.objectOf(id); obj != nil {
						s.tainted[obj] = true
					}
				}
			}
		case *ast.ValueSpec:
			for i, v := range st.Values {
				if i >= len(st.Names) {
					break
				}
				if s.secretish(v) {
					if obj := s.objectOf(st.Names[i]); obj != nil {
						s.tainted[obj] = true
					}
				}
			}
		}
		return true
	})
}

func (s *secretScan) objectOf(id *ast.Ident) types.Object {
	if obj := s.info.Defs[id]; obj != nil {
		return obj
	}
	return s.info.Uses[id]
}

// secretish reports whether an expression carries key material.
func (s *secretScan) secretish(e ast.Expr) bool {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.Ident:
		if obj := s.objectOf(x); obj != nil && s.tainted[obj] {
			return true
		}
	case *ast.SelectorExpr:
		if x.Sel.Name == "Secret" {
			if tv, ok := s.info.Types[x.X]; ok {
				for _, owner := range secretFieldOwners {
					if isNamed(tv.Type, owner[0], owner[1]) {
						return true
					}
				}
			}
		}
	case *ast.CallExpr:
		if isConversion(s.info, x) && len(x.Args) == 1 {
			if s.secretish(x.Args[0]) {
				return true
			}
			break
		}
		if s.propagatingCall(x) {
			for _, arg := range x.Args {
				if s.secretish(arg) {
					return true
				}
			}
		}
		// A method on key material that renders it (Key.String) yields
		// key material.
		if methodOn(s.info, x, "repro/internal/keyhash", "String", "Key") {
			return true
		}
	case *ast.BinaryExpr:
		if x.Op == token.ADD && (s.secretish(x.X) || s.secretish(x.Y)) {
			return true
		}
	case *ast.CompositeLit:
		for _, elt := range x.Elts {
			v := elt
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				v = kv.Value
			}
			if s.secretish(v) {
				return true
			}
		}
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return s.secretish(x.X)
		}
	case *ast.StarExpr:
		return s.secretish(x.X)
	}
	// Type-based: any value whose type is (or contains, behind
	// pointers/slices) keyhash.Key or a certificate struct.
	if tv, ok := s.info.Types[e]; ok && tv.Type != nil {
		if isNamed(tv.Type, "repro/internal/keyhash", "Key") {
			return true
		}
		for _, c := range secretContainers {
			if isNamed(tv.Type, c[0], c[1]) {
				return true
			}
		}
	}
	return false
}

// propagatingCall reports whether a call forwards taint from its
// arguments to its result (formatting and encoding helpers).
func (s *secretScan) propagatingCall(call *ast.CallExpr) bool {
	return calleeIn(s.info, call, "fmt", "Sprint", "Sprintf", "Sprintln", "Appendf") ||
		calleeIn(s.info, call, "encoding/hex", "EncodeToString") ||
		methodOn(s.info, call, "encoding/base64", "EncodeToString")
}

// checkSinks reports tainted expressions reaching a sink.
func (s *secretScan) checkSinks(body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			s.checkCallSink(x)
		case *ast.CompositeLit:
			s.checkWireLit(x)
		case *ast.AssignStmt:
			s.checkWireAssign(x)
		}
		return true
	})
}

func (s *secretScan) checkCallSink(call *ast.CallExpr) {
	var sink string
	switch {
	case calleeIn(s.info, call, "log/slog"):
		sink = "a log/slog call"
	case calleeIn(s.info, call, "repro/internal/obs"):
		sink = "an internal/obs metrics/observability call"
	case calleeIn(s.info, call, "fmt", "Errorf"):
		sink = "an error string (fmt.Errorf)"
	case calleeIn(s.info, call, "errors", "New"):
		sink = "an error string (errors.New)"
	case calleeIn(s.info, call, "fmt", "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln"):
		sink = "a fmt printer"
	case calleeIn(s.info, call, "log"):
		sink = "a log package call"
	default:
		return
	}
	for _, arg := range call.Args {
		if s.secretish(arg) {
			s.pass.Reportf(arg.Pos(),
				"watermark key material reaches %s — ownership is provable only while the secret stays secret", sink)
		}
	}
}

// checkWireLit flags secret material placed into an internal/api
// composite literal outside the sanctioned certificate path.
func (s *secretScan) checkWireLit(lit *ast.CompositeLit) {
	tv, ok := s.info.Types[lit]
	if !ok {
		return
	}
	named := namedType(tv.Type)
	if named == nil || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "repro/internal/api" {
		return
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return
	}
	typeName := named.Obj().Name()
	for i, elt := range lit.Elts {
		v := elt
		fieldName := ""
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			v = kv.Value
			if id, ok := kv.Key.(*ast.Ident); ok {
				fieldName = id.Name
			}
		} else if i < st.NumFields() {
			fieldName = st.Field(i).Name()
		}
		if !s.secretish(v) {
			continue
		}
		if sanctionedWireFields[typeName+"."+fieldName] {
			continue
		}
		s.pass.Reportf(v.Pos(),
			"watermark key material reaches wire field api.%s.%s — only the /v2/internal/scan certificate path (%s) may carry secrets",
			typeName, fieldName, sanctionedList())
	}
}

// checkWireAssign flags secret material assigned onto an internal/api
// struct field outside the sanctioned certificate path.
func (s *secretScan) checkWireAssign(st *ast.AssignStmt) {
	for i, lhs := range st.Lhs {
		if i >= len(st.Rhs) {
			break
		}
		sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
		if !ok {
			continue
		}
		tv, ok := s.info.Types[sel.X]
		if !ok {
			continue
		}
		named := namedType(tv.Type)
		if named == nil || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != "repro/internal/api" {
			continue
		}
		if !s.secretish(st.Rhs[i]) {
			continue
		}
		key := named.Obj().Name() + "." + sel.Sel.Name
		if sanctionedWireFields[key] {
			continue
		}
		s.pass.Reportf(st.Rhs[i].Pos(),
			"watermark key material reaches wire field api.%s — only the /v2/internal/scan certificate path (%s) may carry secrets",
			key, sanctionedList())
	}
}

func sanctionedList() string {
	names := make([]string, 0, len(sanctionedWireFields))
	for k := range sanctionedWireFields {
		names = append(names, k)
	}
	// Two entries; keep the message stable without importing sort here.
	if len(names) == 2 && names[0] > names[1] {
		names[0], names[1] = names[1], names[0]
	}
	return strings.Join(names, ", ")
}
