package lint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one type-checked, non-test view of a module package: the
// parsed GoFiles plus the go/types artifacts analyzers consume. Test
// files are deliberately absent — every invariant the suite enforces is
// about production code, and the grep gates this framework replaced
// excluded *_test.go for the same reason.
type Package struct {
	// Path is the import path analyzers gate on. For fixture packages it
	// is the path the fixture claims via its //wmlint:fixture directive,
	// not a real location.
	Path string
	// Name is the package name from the source.
	Name string
	// Dir is the directory the files were read from.
	Dir string
	// Fset positions every token.Pos in Files.
	Fset *token.FileSet
	// Files are the parsed non-test files, comments included.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the type-checker's expression/object tables.
	Info *types.Info
	// Imports are the package's direct imports, as written in source.
	Imports []string

	stdlib map[string]bool
}

// IsStdlib reports whether an import path names a standard-library
// package. Loaded modules answer from `go list` metadata; fixture
// packages fall back to the conventional heuristic (no dot in the first
// path element).
func (p *Package) IsStdlib(path string) bool {
	if p.stdlib != nil {
		if std, ok := p.stdlib[path]; ok {
			return std
		}
	}
	first := path
	if i := strings.IndexByte(path, '/'); i >= 0 {
		first = path[:i]
	}
	return !strings.Contains(first, ".") && !strings.HasPrefix(path, "repro/")
}

// listPkg is the subset of `go list -json` output the loader needs.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	Standard   bool
	GoFiles    []string
	Imports    []string
	Module     *struct{ Path, Dir string }
	Error      *struct{ Err string }
	DepsErrors []*struct{ Err string }
}

// A Loader resolves imports against compiler export data produced by
// `go list -export`. One Loader serves both the module load and any
// fixture packages type-checked afterwards (fixtures import real module
// packages, so they need the same resolution table).
type Loader struct {
	Fset    *token.FileSet
	exports map[string]string // import path -> export data file
	stdlib  map[string]bool   // import path -> is standard library
	imp     types.Importer
}

// NewLoader builds a Loader for the module rooted at dir by listing the
// dependency closure of the given patterns with export data.
func NewLoader(dir string, patterns ...string) (*Loader, []*listPkg, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, nil, err
	}
	var pkgs []*listPkg
	dec := json.NewDecoder(out)
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			_ = cmd.Wait()
			return nil, nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		pkgs = append(pkgs, &p)
	}
	if err := cmd.Wait(); err != nil {
		return nil, nil, fmt.Errorf("lint: go list: %w\n%s", err, stderr.String())
	}
	l := &Loader{
		Fset:    token.NewFileSet(),
		exports: make(map[string]string, len(pkgs)),
		stdlib:  make(map[string]bool, len(pkgs)),
	}
	for _, p := range pkgs {
		l.stdlib[p.ImportPath] = p.Standard
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
	}
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := l.exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	}
	l.imp = importer.ForCompiler(l.Fset, "gc", lookup)
	return l, pkgs, nil
}

// check parses and type-checks one directory's worth of files as the
// package path asPath.
func (l *Loader) check(dir, asPath string, fileNames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range fileNames {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, errors.New("lint: no files")
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErrs []error
	conf := types.Config{
		Importer:    l.imp,
		FakeImportC: true,
		Error:       func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(asPath, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s: %w", asPath, errors.Join(typeErrs...))
	}
	var imports []string
	seen := make(map[string]bool)
	for _, f := range files {
		for _, spec := range f.Imports {
			path := strings.Trim(spec.Path.Value, `"`)
			if !seen[path] {
				seen[path] = true
				imports = append(imports, path)
			}
		}
	}
	sort.Strings(imports)
	return &Package{
		Path:    asPath,
		Name:    tpkg.Name(),
		Dir:     dir,
		Fset:    l.Fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
		Imports: imports,
		stdlib:  l.stdlib,
	}, nil
}

// Load discovers, parses and type-checks the module packages matching
// patterns under dir. Standard-library and external packages in the
// dependency closure resolve through export data but are not returned:
// only packages of the surrounding module are analysis targets.
func Load(dir string, patterns ...string) ([]*Package, *Loader, error) {
	l, listed, err := NewLoader(dir, patterns...)
	if err != nil {
		return nil, nil, err
	}
	var out []*Package
	for _, p := range listed {
		if p.Standard || p.Module == nil || len(p.GoFiles) == 0 {
			continue
		}
		if p.Error != nil {
			return nil, nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		pkg, err := l.check(p.Dir, p.ImportPath, p.GoFiles)
		if err != nil {
			return nil, nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, l, nil
}

// fixtureDirective names the import path a fixture package pretends to
// live at, e.g. "//wmlint:fixture repro/internal/server". Analyzer
// applicability is decided against this path.
const fixtureDirective = "//wmlint:fixture "

// LoadFixture parses and type-checks every .go file in dir as one
// package. The first file carrying a //wmlint:fixture directive decides
// the package's claimed import path; without one the path defaults to
// the directory name.
func (l *Loader) LoadFixture(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	asPath := filepath.Base(dir)
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		for _, line := range strings.Split(string(data), "\n") {
			if strings.HasPrefix(line, fixtureDirective) {
				asPath = strings.TrimSpace(strings.TrimPrefix(line, fixtureDirective))
			}
		}
	}
	return l.check(dir, asPath, names)
}
