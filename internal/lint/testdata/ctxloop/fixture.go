// Package fixture exercises both ctxloop rules: block/row-crossing
// loops without a cancellation point, detached contexts, and the
// compliant loop shapes that must pass.
//
//wmlint:fixture repro/internal/pipeline
package fixture

import (
	"context"

	"repro/internal/mark"
	"repro/internal/relation"
)

func scanNoCancel(sc *mark.Scanner, r *relation.Relation, t *mark.Tally) error {
	var bs mark.BlockScratch
	for lo := 0; lo < r.Len(); lo += 128 { // want `loop crosses scan-block/row boundaries`
		if err := sc.ScanBlock(r, lo, min(lo+128, r.Len()), t, &bs); err != nil {
			return err
		}
	}
	return nil
}

func readNoCancel(src relation.RowReader) error {
	for { // want `loop crosses scan-block/row boundaries`
		if _, err := src.Read(); err != nil {
			return err
		}
	}
}

func scanWithCancel(ctx context.Context, sc *mark.Scanner, r *relation.Relation, t *mark.Tally) error {
	var bs mark.BlockScratch
	for lo := 0; lo < r.Len(); lo += 128 {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := sc.ScanBlock(r, lo, min(lo+128, r.Len()), t, &bs); err != nil {
			return err
		}
	}
	return nil
}

func readWithStopLatch(src relation.RowReader, stop chan struct{}) error {
	stopped := func() bool {
		select {
		case <-stop:
			return true
		default:
			return false
		}
	}
	for {
		if stopped() {
			return nil
		}
		if _, err := src.Read(); err != nil {
			return err
		}
	}
}

func detached() context.Context {
	return context.Background() // want `calls context.Background`
}

func readBlocksNoCancel(src relation.BlockReader, blk *relation.Block) error {
	for { // want `loop crosses scan-block/row boundaries`
		if _, err := src.ReadBlock(blk, 512); err != nil {
			return err
		}
	}
}

func scanColumnsNoCancel(sc *mark.Scanner, blks []*relation.Block, t *mark.Tally) error {
	var bs mark.BlockScratch
	for _, blk := range blks { // want `loop crosses scan-block/row boundaries`
		if err := sc.ScanColumns(blk, t, &bs); err != nil {
			return err
		}
	}
	return nil
}

func readBlocksWithCancel(ctx context.Context, src relation.BlockReader, blk *relation.Block) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if _, err := src.ReadBlock(blk, 512); err != nil {
			return err
		}
	}
}
