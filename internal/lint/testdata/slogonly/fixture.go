// Package fixture logs through the channels slogonly forbids in the
// service layers; the slog call shows the sanctioned route passes.
//
//wmlint:fixture repro/internal/server
package fixture

import (
	"fmt"
	"log"
	"log/slog"
)

func logs(n int) {
	log.Printf("worker %d", n) // want `legacy log package`
	fmt.Println("status")      // want `prints to stdout via fmt`
	slog.Info("ok", "worker", n)
}
