// Package fixture violates the stdlib-only rule for internal/obs.
//
//wmlint:fixture repro/internal/obs
package fixture

import (
	_ "repro/internal/relation" // want `must stay stdlib-only`
)
