// Package fixture reads clocks, draws randomness and ranges over maps
// inside the tally-merge/report scope determinism protects; the
// annotated reduction shows how a deliberate map walk is declared.
//
//wmlint:fixture repro/internal/mark
package fixture

import (
	"math/rand" // want `imports math/rand`
	"time"
)

func clock() int64 {
	return time.Now().UnixNano() // want `clock read in a tally-merge/report path`
}

func draw() int { return rand.Int() }

func mapOrder(m map[string]int) int {
	s := 0
	for _, v := range m { // want `range over a map`
		s += v
	}
	return s
}

func mapOrderDeclared(m map[string]int) int {
	best := 0
	//wmlint:ignore determinism order-independent max reduction
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}
