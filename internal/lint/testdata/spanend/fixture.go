// Package fixture exercises the spanend analyzer: spans that leak
// (no End, discarded, escaping the function, an early return slipping
// past a same-block End) and the compliant lifecycles that must pass.
//
//wmlint:fixture repro/internal/pipeline
package fixture

import (
	"context"
	"errors"

	"repro/internal/obs/trace"
)

type holder struct {
	sp *trace.Span
}

func leaks(ctx context.Context) {
	_, sp := trace.Start(ctx, "leaks") // want `span "sp" is not deterministically ended`
	sp.SetAttr("k", "v")
}

func discarded(ctx context.Context) {
	_, _ = trace.Start(ctx, "discarded") // want `span from trace start call is discarded`
}

func escapes(ctx context.Context, h *holder) {
	_, h.sp = trace.Start(ctx, "escapes") // want `stored outside the function`
}

func escapesAnnotated(ctx context.Context, h *holder) {
	//wmlint:ignore spanend the holder's Close ends it; fixture exercises suppression
	_, h.sp = trace.Start(ctx, "annotated")
}

func returnBetween(ctx context.Context, err error) {
	_, sp := trace.Start(ctx, "returnBetween") // want `span "sp" is not deterministically ended`
	if err != nil {
		return
	}
	sp.End()
}

func serverLeaks(ctx context.Context, r *trace.Recorder) {
	_, sp := r.StartServer(ctx, "serverLeaks", "") // want `span "sp" is not deterministically ended`
	sp.SetAttr("k", "v")
}

func endsInClosure(ctx context.Context) {
	// A plain (non-deferred) closure runs who-knows-when; its End does
	// not dominate this function's exits.
	_, sp := trace.Start(ctx, "endsInClosure") // want `span "sp" is not deterministically ended`
	cleanup := func() { sp.End() }
	_ = cleanup
}

func deferred(ctx context.Context) {
	_, sp := trace.Start(ctx, "deferred")
	defer sp.End()
	sp.SetAttr("k", "v")
}

func deferredInBranch(ctx context.Context, on bool) {
	var sp *trace.Span
	if on {
		_, sp = trace.Start(ctx, "deferredInBranch")
		defer sp.End()
	}
	sp.SetAttr("k", "v")
}

func deferredClosure(ctx context.Context) {
	_, sp := trace.Start(ctx, "deferredClosure")
	defer func() {
		sp.SetInt("n", 1)
		sp.End()
	}()
}

func straightLine(ctx context.Context) error {
	_, sp := trace.Start(ctx, "straightLine")
	sp.SetAttr("k", "v")
	sp.End()
	return errors.New("after the bracket")
}

func closureOwnsSpan(ctx context.Context) func() {
	return func() {
		_, sp := trace.Start(ctx, "closureOwnsSpan")
		defer sp.End()
	}
}

func closureLeaksSpan(ctx context.Context) func() {
	return func() {
		_, sp := trace.Start(ctx, "closureLeaksSpan") // want `span "sp" is not deterministically ended`
		sp.SetAttr("k", "v")
	}
}
