// Package fixture re-inlines wire shapes inside internal/server, which
// wiretypes exists to forbid; routeState shows a non-wire struct passes.
//
//wmlint:fixture repro/internal/server
package fixture

type uploadRequest struct { // want `wire-type declaration uploadRequest`
	Name string
}

type routeState struct {
	ID string `json:"id"` // want `json-tagged struct field`
}

type handlerDeps struct {
	retries int
}
