// Package fixture exercises the arenacopy analyzer: string conversions
// of arena-backed block bytes (direct, through local aliases, through
// subslices) must be flagged; the sanctioned escapes — direct map
// indexing, Column.String, an annotated deliberate copy — must not.
//
//wmlint:fixture repro/internal/pipeline
package fixture

import (
	"repro/internal/relation"
)

type key string

func directConversion(col *relation.Column, i int) string {
	return string(col.Value(i)) // want `string conversion copies arena-backed block bytes`
}

func namedStringConversion(col *relation.Column, i int) key {
	return key(col.Value(i)) // want `string conversion copies arena-backed block bytes`
}

func rawBytesConversion(blk *relation.Block) string {
	return string(blk.RawBytes()) // want `string conversion copies arena-backed block bytes`
}

func aliasConversion(col *relation.Column, n int) []string {
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		v := col.Value(i)
		out = append(out, string(v)) // want `string conversion copies arena-backed block bytes`
	}
	return out
}

func rawSubsliceConversion(col *relation.Column) string {
	data, offs := col.Raw()
	return string(data[offs[0]:offs[1]]) // want `string conversion copies arena-backed block bytes`
}

func transitiveAlias(col *relation.Column, i int) string {
	v := col.Value(i)
	w := v[1:]
	return string(w) // want `string conversion copies arena-backed block bytes`
}

// mapIndex is the sanctioned classification idiom: a conversion used
// directly as a map index stays on the stack (Domain.IndexBytes).
func mapIndex(m map[string]int, col *relation.Column, i int) int {
	return m[string(col.Value(i))]
}

// sanctionedMaterializer copies out of the arena through the one
// annotated escape hatch.
func sanctionedMaterializer(col *relation.Column, i int) string {
	return col.String(i)
}

// annotatedCopy records its justification, so the finding is suppressed.
func annotatedCopy(col *relation.Column, i int) string {
	//wmlint:ignore arenacopy this value outlives the block by design
	return string(col.Value(i))
}

// nonArenaConversion conversions of unrelated byte slices stay legal.
func nonArenaConversion(b []byte) string {
	return string(b)
}
