// Package fixture makes the wire contract import one of its
// implementation layers, which importgate forbids.
//
//wmlint:fixture repro/internal/api
package fixture

import (
	_ "repro/internal/pipeline" // want `must not import`
)
