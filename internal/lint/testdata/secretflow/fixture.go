// Package fixture deliberately leaks watermark key material through
// every sink class secretflow guards — logs, error strings, printers,
// observability calls and wire fields — and walks the sanctioned
// /v2/internal/scan certificate path as the negative case.
//
//wmlint:fixture repro/internal/server
package fixture

import (
	"context"
	"errors"
	"fmt"
	"log/slog"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/keyhash"
	"repro/internal/obs"
)

func leakDirect(spec core.Spec) {
	slog.Info("watermarking", "secret", spec.Secret) // want `key material reaches a log/slog call`
}

func leakViaLocal(rec *core.Record) error {
	hint := "certificate " + rec.Secret
	return fmt.Errorf("verify failed: %s", hint) // want `key material reaches an error string`
}

func leakKeyString(k keyhash.Key) {
	fmt.Println(k.String()) // want `key material reaches a fmt printer`
}

func leakWholeRecord(rec *core.Record) error {
	return errors.New(fmt.Sprint(rec)) // want `key material reaches an error string`
}

func leakToObs(ctx context.Context, spec core.Spec) context.Context {
	return obs.WithRequestID(ctx, spec.Secret) // want `internal/obs metrics/observability call`
}

func leakWireAssign(req *api.WatermarkRequest, spec core.Spec) {
	req.Secret = spec.Secret // want `wire field api.WatermarkRequest.Secret`
}

func leakWireLit(rec *core.Record) api.VerifyRequest {
	return api.VerifyRequest{ID: rec.Secret} // want `wire field api.VerifyRequest.ID`
}

// sanctioned is the negative case: ShardScanRequest.Records and
// VerifyRequest.Record are the certificate path workers need secrets on.
func sanctioned(rec *core.Record) (api.ShardScanRequest, api.VerifyRequest) {
	return api.ShardScanRequest{Records: []*core.Record{rec}},
		api.VerifyRequest{Record: rec}
}
