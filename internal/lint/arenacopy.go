package lint

import (
	"go/ast"
	"go/types"
)

// ArenaCopy guards the zero-allocation ingestion contract: inside the
// block-pipeline packages, a string(...) conversion of an arena-backed
// byte slice silently reintroduces the per-row allocation the columnar
// path exists to eliminate. Arena-backed means derived from the
// relation block accessors — Column.Value, Column.Raw, Block.RawBytes —
// whose results alias pooled block storage. The analyzer tracks simple
// local aliases (v := col.Value(i), data, _ := col.Raw(), subslices of
// either) and flags conversions of any of them to a string type.
//
// Two shapes are exempt: a conversion used directly as a map index
// (m[string(v)] — the compiler keeps it on the stack, the idiom behind
// Domain.IndexBytes), and Column.String, the one sanctioned
// materializer, which carries the //wmlint:ignore directive.
var ArenaCopy = &Analyzer{
	Name: "arenacopy",
	Doc: "string(...) conversions of arena-backed block bytes allocate per row; " +
		"hash and classify on the byte view (Kernel.HashColumn, Domain.IndexBytes) " +
		"or materialize through Column.String",
	Applies: pathIn("repro/internal/relation", "repro/internal/pipeline", "repro/internal/mark"),
	Run:     runArenaCopy,
}

const relationPath = "repro/internal/relation"

func runArenaCopy(pass *Pass) error {
	info := pass.Pkg.Info
	forEachFile(pass, func(f *ast.File) {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkArenaCopies(pass, info, fd.Body)
			}
		}
	})
	return nil
}

// arenaSourceCall reports whether call returns bytes aliasing a block
// arena: Column.Value / Block.Value (a row's bytes), Block.RawBytes
// (the raw record spans). Column.Raw is handled at its assignment site,
// since only its first result is the arena.
func arenaSourceCall(info *types.Info, call *ast.CallExpr) bool {
	return methodOn(info, call, relationPath, "Value", "Column", "Block") ||
		methodOn(info, call, relationPath, "RawBytes", "Block")
}

// checkArenaCopies flags arena-to-string conversions within one
// function body (nested literals included — object identity keeps the
// alias sets from colliding).
func checkArenaCopies(pass *Pass, info *types.Info, body *ast.BlockStmt) {
	// Alias pass, to a fixed point: variables assigned from an arena
	// source, from another tracked variable, or from a subslice of one.
	tracked := make(map[types.Object]bool)
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			st, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			if len(st.Rhs) == 1 && len(st.Lhs) > 1 {
				// data, offs := col.Raw(): the first result is the arena.
				if call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr); ok &&
					methodOn(info, call, relationPath, "Raw", "Column") {
					changed = trackArenaIdent(info, tracked, st.Lhs[0]) || changed
				}
				return true
			}
			for i, rhs := range st.Rhs {
				if i < len(st.Lhs) && isArenaExpr(info, tracked, rhs) {
					changed = trackArenaIdent(info, tracked, st.Lhs[i]) || changed
				}
			}
			return true
		})
	}

	// Conversions appearing directly as a map index do not allocate —
	// the compiler's m[string(b)] fast path — so they are exempt.
	exempt := make(map[*ast.CallExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		ix, ok := n.(*ast.IndexExpr)
		if !ok {
			return true
		}
		if tv, ok := info.Types[ix.X]; ok {
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				if call, ok := ast.Unparen(ix.Index).(*ast.CallExpr); ok {
					exempt[call] = true
				}
			}
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || exempt[call] || len(call.Args) != 1 || !isConversion(info, call) {
			return true
		}
		tv, ok := info.Types[call.Fun]
		if !ok {
			return true
		}
		if basic, ok := tv.Type.Underlying().(*types.Basic); !ok || basic.Kind() != types.String {
			return true
		}
		if isArenaExpr(info, tracked, call.Args[0]) {
			pass.Reportf(call.Pos(),
				"string conversion copies arena-backed block bytes (allocates per row) — "+
					"use the byte view (Kernel.HashColumn, Domain.IndexBytes, direct map index) "+
					"or materialize via Column.String")
		}
		return true
	})
}

// isArenaExpr reports whether e evaluates to arena-aliasing bytes: an
// arena source call, a tracked alias, or a subslice of either.
func isArenaExpr(info *types.Info, tracked map[types.Object]bool, e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		return arenaSourceCall(info, x)
	case *ast.Ident:
		obj := info.Uses[x]
		if obj == nil {
			obj = info.Defs[x]
		}
		return obj != nil && tracked[obj]
	case *ast.SliceExpr:
		return isArenaExpr(info, tracked, x.X)
	}
	return false
}

// trackArenaIdent marks the assigned identifier as arena-aliasing,
// reporting whether the set grew.
func trackArenaIdent(info *types.Info, tracked map[types.Object]bool, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok || id.Name == "_" {
		return false
	}
	obj := info.Defs[id]
	if obj == nil {
		obj = info.Uses[id]
	}
	if obj == nil || tracked[obj] {
		return false
	}
	tracked[obj] = true
	return true
}
