package lint

import (
	"go/ast"
	"regexp"
	"strings"
)

// WireTypes keeps internal/server a pure route layer: every struct it
// marshals on the wire must come from internal/api, the single wire
// contract. A json-tagged field or a *Request/*Response-shaped struct
// declaration inside internal/server means someone re-inlined a wire
// type — the typed replacement for the shell grep gate CI used to run.
var WireTypes = &Analyzer{
	Name: "wiretypes",
	Doc: "internal/server must not declare wire shapes: no json-tagged struct fields " +
		"and no *Request/*Response/*Result/*Info/*List/*Error struct declarations " +
		"(wire types live in internal/api)",
	Applies: pathIn("repro/internal/server"),
	Run:     runWireTypes,
}

var wireTypeName = regexp.MustCompile(`(Request|Response|Result|Info|List|Error)$`)

func runWireTypes(pass *Pass) error {
	forEachFile(pass, func(f *ast.File) {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			if wireTypeName.MatchString(ts.Name.Name) {
				pass.Reportf(ts.Name.Pos(),
					"wire-type declaration %s inside internal/server — move it to internal/api", ts.Name.Name)
			}
			for _, field := range st.Fields.List {
				if field.Tag != nil && strings.Contains(field.Tag.Value, `json:"`) {
					pass.Reportf(field.Tag.Pos(),
						"json-tagged struct field inside internal/server — wire shapes belong in internal/api")
				}
			}
			return true
		})
	})
	return nil
}
