package lint

import (
	"go/ast"
	"go/types"
)

// CtxLoop enforces the cancellation contract that lets an HTTP client
// disconnect, a job cancel or a server shutdown actually stop scan work:
//
//  1. In internal/pipeline and internal/cluster, any loop that crosses
//     scan-block or row boundaries — a loop whose body calls
//     mark.ScanBlock / mark.EmbedBlock / mark.ScanColumns or reads from
//     a relation.RowReader or BlockReader — must contain a cancellation
//     point: a
//     ctx.Err()/ctx.Done() check, a channel receive (the stop-latch
//     pattern), or a call into a local helper that performs one.
//  2. Library packages (all of internal/) must not mint detached
//     contexts with context.Background()/context.TODO(): a detached
//     context silently severs the cancellation chain. The handful of
//     deliberate lifecycle detachments carry //wmlint:ignore directives
//     with their justification.
var CtxLoop = &Analyzer{
	Name: "ctxloop",
	Doc: "scan loops in internal/pipeline and internal/cluster must observe ctx between " +
		"chunks; internal packages must not call context.Background()/TODO() undeclared",
	Applies: pathIn("repro/internal"),
	Run:     runCtxLoop,
}

// scanLoopPackages are where rule 1 applies: the two packages that own
// multi-block scan loops.
var scanLoopPackages = pathIn("repro/internal/pipeline", "repro/internal/cluster")

func runCtxLoop(pass *Pass) error {
	info := pass.Pkg.Info
	forEachFile(pass, func(f *ast.File) {
		// Rule 2: no detached contexts in library code.
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if calleeIn(info, call, "context", "Background", "TODO") {
				pass.Reportf(call.Pos(),
					"library package calls context.%s — detached contexts sever the cancellation chain; "+
						"thread the caller's ctx (or annotate a deliberate lifecycle detachment)",
					calleeObject(info, call).Name())
			}
			return true
		})
		if !scanLoopPackages(pass.Pkg.Path) {
			return
		}
		// Rule 1: block/row-crossing loops need a cancellation point.
		// Only the OUTERMOST crossing loop is the chunk boundary: once it
		// observes ctx, everything nested runs within one chunk's budget.
		closures := collectClosures(f, info)
		funcs := collectFuncDecls(f)
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch loop := n.(type) {
			case *ast.ForStmt:
				body = loop.Body
			case *ast.RangeStmt:
				body = loop.Body
			default:
				return true
			}
			if !loopCrossesBlocks(body, info) {
				return true
			}
			if !hasCancelPoint(body, info, closures, funcs, true) {
				pass.Reportf(n.Pos(),
					"loop crosses scan-block/row boundaries without a cancellation point — "+
						"check ctx.Err()/ctx.Done() (or receive on a stop channel) between chunks")
			}
			return false // nested loops are within this chunk boundary
		})
	})
	return nil
}

// loopCrossesBlocks reports whether a loop body (excluding nested
// function literals and go statements, whose work runs elsewhere)
// advances through scan blocks or stream rows.
func loopCrossesBlocks(body *ast.BlockStmt, info *types.Info) bool {
	found := false
	inspectSameGoroutine(body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return
		}
		if methodOn(info, call, "repro/internal/mark", "ScanBlock") ||
			methodOn(info, call, "repro/internal/mark", "EmbedBlock") ||
			methodOn(info, call, "repro/internal/mark", "ScanColumns") {
			found = true
		}
		if methodOn(info, call, "repro/internal/relation", "Read",
			"RowReader", "CSVRowReader", "JSONLRowReader",
			"CSVBlockReader", "JSONLBlockReader") {
			found = true
		}
		if methodOn(info, call, "repro/internal/relation", "ReadBlock",
			"BlockReader", "RawShardSource", "CSVBlockReader", "JSONLBlockReader") {
			found = true
		}
	})
	return found
}

// hasCancelPoint reports whether the node contains a cancellation
// observation: ctx.Err()/ctx.Done() on a context.Context value, a
// channel receive (stop-latch / select), or — when followCalls — a call
// to a same-file function or closure whose own body contains one.
func hasCancelPoint(node ast.Node, info *types.Info, closures map[types.Object]*ast.FuncLit, funcs map[string]*ast.FuncDecl, followCalls bool) bool {
	found := false
	inspectSameGoroutine(node, func(n ast.Node) {
		if found {
			return
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
				if (sel.Sel.Name == "Err" || sel.Sel.Name == "Done") && isContextExpr(info, sel.X) {
					found = true
					return
				}
			}
			if !followCalls {
				return
			}
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
				if obj := info.Uses[id]; obj != nil {
					if lit, ok := closures[obj]; ok && hasCancelPoint(lit.Body, info, closures, funcs, false) {
						found = true
						return
					}
				}
				if fd, ok := funcs[id.Name]; ok && fd.Body != nil &&
					hasCancelPoint(fd.Body, info, closures, funcs, false) {
					found = true
					return
				}
			}
		case *ast.UnaryExpr:
			// <-ch: any channel receive is a cancellation-capable wait
			// (the stop-latch pattern ties it to ctx elsewhere).
			if x.Op.String() == "<-" {
				found = true
			}
		case *ast.SelectStmt:
			found = true
		}
	})
	return found
}

// collectClosures maps variables to the function literals assigned to
// them anywhere in the file, so `stopped := func() bool {...}` can be
// looked through at its call sites.
func collectClosures(f *ast.File, info *types.Info) map[types.Object]*ast.FuncLit {
	out := make(map[types.Object]*ast.FuncLit)
	ast.Inspect(f, func(n ast.Node) bool {
		st, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range st.Rhs {
			lit, ok := rhs.(*ast.FuncLit)
			if !ok || i >= len(st.Lhs) {
				continue
			}
			id, ok := st.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			if obj := info.Defs[id]; obj != nil {
				out[obj] = lit
			} else if obj := info.Uses[id]; obj != nil {
				out[obj] = lit
			}
		}
		return true
	})
	return out
}

// collectFuncDecls indexes the file's function declarations by name.
func collectFuncDecls(f *ast.File) map[string]*ast.FuncDecl {
	out := make(map[string]*ast.FuncDecl)
	for _, decl := range f.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok {
			out[fd.Name.Name] = fd
		}
	}
	return out
}

// inspectSameGoroutine walks node but does not descend into function
// literals or go statements: their bodies execute on other goroutines
// (or later), so nothing inside them counts for the enclosing loop.
func inspectSameGoroutine(node ast.Node, fn func(ast.Node)) {
	ast.Inspect(node, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		}
		if n != nil {
			fn(n)
		}
		return true
	})
}
