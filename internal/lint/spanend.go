package lint

import (
	"go/ast"
	"go/types"
)

// SpanEnd enforces the span-lifecycle contract of internal/obs/trace: a
// span that is started must be deterministically ended, because End is
// the publication point — an unended span never reaches the ring or the
// flight recorder, and its whole subtree silently vanishes from
// assembled traces. Every call to trace.Start or Recorder.StartServer
// in internal/ must therefore have a dominating End on the span it
// returns:
//
//   - `defer sp.End()` anywhere in the same function (the idiom), or
//   - a plain `sp.End()` statement in the same block as the Start, with
//     no return statement anywhere between the two — a straight-line
//     bracket no early exit can escape.
//
// A span discarded into `_`, or stored somewhere the function cannot
// guarantee to end (a struct field, say), is reported: such lifecycles
// exist (the job queue span outlives Submit by design) but each must
// carry a //wmlint:ignore directive explaining who ends it.
var SpanEnd = &Analyzer{
	Name: "spanend",
	Doc: "every span opened with trace.Start/StartServer must be ended on all paths: " +
		"defer sp.End(), or a same-block End with no intervening return",
	Applies: pathIn("repro/internal"),
	Run:     runSpanEnd,
}

// tracePkg is the defining package of the Start functions and the Span
// type the analyzer tracks.
const tracePkg = "repro/internal/obs/trace"

func runSpanEnd(pass *Pass) error {
	info := pass.Pkg.Info
	forEachFile(pass, func(f *ast.File) {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkSpanFunc(pass, info, fd.Body)
			}
		}
	})
	return nil
}

// checkSpanFunc analyzes one function body (recursing into nested
// function literals, each its own scope: a span started inside a
// closure must be ended inside it).
func checkSpanFunc(pass *Pass, info *types.Info, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			checkSpanFunc(pass, info, lit.Body)
			return false
		}
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		for i, st := range block.List {
			assign, ok := st.(*ast.AssignStmt)
			if !ok || len(assign.Rhs) != 1 {
				continue
			}
			call, ok := assign.Rhs[0].(*ast.CallExpr)
			if !ok || !isSpanStart(info, call) {
				continue
			}
			checkSpanAssign(pass, info, body, block, i, assign)
		}
		return true
	})
}

// isSpanStart reports whether call opens a span: the package function
// trace.Start or the Recorder method StartServer.
func isSpanStart(info *types.Info, call *ast.CallExpr) bool {
	return calleeIn(info, call, tracePkg, "Start") ||
		methodOn(info, call, tracePkg, "StartServer", "Recorder")
}

// checkSpanAssign validates one `..., sp := trace.Start*(...)` statement
// (block.List[idx]) inside funcBody.
func checkSpanAssign(pass *Pass, info *types.Info, funcBody *ast.BlockStmt, block *ast.BlockStmt, idx int, assign *ast.AssignStmt) {
	// The span is the call's last result; a mismatched assignment shape
	// would not type-check, so the last LHS is the span destination.
	dest := assign.Lhs[len(assign.Lhs)-1]
	id, ok := ast.Unparen(dest).(*ast.Ident)
	if !ok {
		pass.Reportf(assign.Pos(),
			"span from trace start call is stored outside the function — End cannot be verified here; "+
				"end it on every path and annotate with //wmlint:ignore spanend <who ends it>")
		return
	}
	if id.Name == "_" {
		pass.Reportf(assign.Pos(),
			"span from trace start call is discarded — an unended span never reaches the ring; "+
				"assign it and defer End()")
		return
	}
	obj := info.Defs[id]
	if obj == nil {
		obj = info.Uses[id]
	}
	if obj == nil {
		return
	}
	if hasDeferredEnd(info, funcBody, obj) {
		return
	}
	if sameBlockEnd(info, block, idx, obj) {
		return
	}
	pass.Reportf(assign.Pos(),
		"span %q is not deterministically ended — add `defer %s.End()`, or call %s.End() in this "+
			"block with no return between Start and End", id.Name, id.Name, id.Name)
}

// hasDeferredEnd reports a `defer sp.End()` (or a deferred closure
// calling sp.End()) anywhere in the function body.
func hasDeferredEnd(info *types.Info, body *ast.BlockStmt, span types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			// Do not descend into non-deferred closures: their execution
			// is not tied to this function's exit.
			_, isLit := n.(*ast.FuncLit)
			return !isLit
		}
		if isEndOn(info, d.Call, span) {
			found = true
			return false
		}
		if lit, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok && isEndOn(info, call, span) {
					found = true
				}
				return !found
			})
		}
		return false
	})
	return found
}

// sameBlockEnd reports a straight-line bracket: a plain sp.End()
// statement later in the same block, with no return statement anywhere
// in the statements between (an early exit there would skip the End).
func sameBlockEnd(info *types.Info, block *ast.BlockStmt, idx int, span types.Object) bool {
	for _, st := range block.List[idx+1:] {
		if expr, ok := st.(*ast.ExprStmt); ok {
			if call, ok := expr.X.(*ast.CallExpr); ok && isEndOn(info, call, span) {
				return true
			}
		}
		if containsReturn(st) {
			return false
		}
	}
	return false
}

// containsReturn reports a return statement anywhere in st, excluding
// nested function literals (their returns exit the closure, not this
// function).
func containsReturn(st ast.Stmt) bool {
	found := false
	inspectSameGoroutine(st, func(n ast.Node) {
		if _, ok := n.(*ast.ReturnStmt); ok {
			found = true
		}
	})
	return found
}

// isEndOn reports whether call is sp.End() on the given span object.
func isEndOn(info *types.Info, call *ast.CallExpr, span types.Object) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && info.Uses[id] == span
}
