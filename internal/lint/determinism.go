package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Determinism protects the property every distributed-correctness test
// asserts: merged audit reports are bit-identical no matter how the scan
// was sharded. The tally-merge/report code (internal/mark, the ECC
// decode it feeds, and the core verification bracket) therefore must not
// read clocks, draw randomness, or iterate maps in a way that can feed
// output order. Order-independent map reductions carry //wmlint:ignore
// directives explaining why they are safe.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc: "tally-merge/report paths (internal/mark, internal/ecc, internal/core) must be " +
		"bit-identical across cluster topologies: no time.Now/Since, no math/rand or " +
		"crypto/rand, no range over maps",
	Applies: pathIn("repro/internal/mark", "repro/internal/ecc", "repro/internal/core"),
	Run:     runDeterminism,
}

var nondeterministicImports = []string{"math/rand", "math/rand/v2", "crypto/rand"}

func runDeterminism(pass *Pass) error {
	info := pass.Pkg.Info
	forEachFile(pass, func(f *ast.File) {
		for _, spec := range f.Imports {
			path := strings.Trim(spec.Path.Value, `"`)
			for _, bad := range nondeterministicImports {
				if path == bad {
					pass.Reportf(spec.Pos(),
						"%s imports %s — randomness in a tally-merge/report path breaks "+
							"bit-identical reports across cluster topologies", pass.Pkg.Path, path)
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				if calleeIn(info, x, "time", "Now", "Since", "Until") {
					pass.Reportf(x.Pos(),
						"clock read in a tally-merge/report path — results must not depend on wall time")
				}
			case *ast.RangeStmt:
				tv, ok := info.Types[x.X]
				if !ok || tv.Type == nil {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					pass.Reportf(x.Pos(),
						"range over a map in a tally-merge/report path — iteration order is "+
							"nondeterministic; sort keys first (or annotate an order-independent reduction)")
				}
			}
			return true
		})
	})
	return nil
}
