package lint

import (
	"go/ast"
	"strings"
)

// ImportGate enforces per-package import allowlists — the layering
// rules the architecture depends on, checked on real import data
// instead of grep:
//
//   - internal/obs and internal/keyhash are stdlib-only. obs is the
//     reason go.mod carries zero third-party requirements; keyhash is
//     the hot path and must stay free of anything that could drag a
//     dependency under the hash kernels.
//   - internal/api (the wire contract) must not import the layers that
//     implement it, or the contract stops being a leaf.
//   - internal/core (the domain) must not reach up into transport,
//     service or telemetry layers.
var ImportGate = &Analyzer{
	Name: "importgate",
	Doc: "per-package import allowlists: internal/obs and internal/keyhash stdlib-only; " +
		"internal/api and internal/core must not import their implementation layers",
	Applies: func(pkgPath string) bool {
		for _, r := range importRules {
			if r.pkg == pkgPath {
				return true
			}
		}
		return false
	},
	Run: runImportGate,
}

// importRule constrains one package's import set.
type importRule struct {
	pkg string
	// stdlibOnly forbids every non-standard-library import.
	stdlibOnly bool
	// deny forbids specific import paths (and their subpackages).
	deny []string
	// reason is appended to the diagnostic so the failure explains the
	// architecture, not just the rule.
	reason string
}

var importRules = []importRule{
	{
		pkg:        "repro/internal/obs",
		stdlibOnly: true,
		reason:     "the telemetry layer is why go.mod has zero third-party requirements",
	},
	{
		pkg:        "repro/internal/keyhash",
		stdlibOnly: true,
		reason:     "the keyed-hash hot path must not grow dependencies",
	},
	{
		pkg:        "repro/internal/obs/trace",
		stdlibOnly: true,
		reason:     "the tracing pillar rides every layer and must stay as dependency-free as obs itself",
	},
	{
		pkg: "repro/internal/api",
		deny: []string{
			"repro/internal/server",
			"repro/internal/cluster",
			"repro/internal/client",
			"repro/internal/jobs",
			"repro/internal/pipeline",
			"repro/internal/obs",
		},
		reason: "the wire contract must stay a leaf below its implementations",
	},
	{
		pkg: "repro/internal/core",
		deny: []string{
			"repro/internal/api",
			"repro/internal/server",
			"repro/internal/cluster",
			"repro/internal/client",
			"repro/internal/jobs",
			"repro/internal/obs",
		},
		reason: "the domain layer must not depend on transport, service or telemetry",
	},
}

func runImportGate(pass *Pass) error {
	var rule *importRule
	for i := range importRules {
		if importRules[i].pkg == pass.Pkg.Path {
			rule = &importRules[i]
			break
		}
	}
	if rule == nil {
		return nil
	}
	forEachFile(pass, func(f *ast.File) {
		for _, spec := range f.Imports {
			path := strings.Trim(spec.Path.Value, `"`)
			if rule.stdlibOnly && !pass.Pkg.IsStdlib(path) && path != rule.pkg {
				pass.Reportf(spec.Pos(),
					"%s must stay stdlib-only but imports %q — %s", rule.pkg, path, rule.reason)
				continue
			}
			for _, d := range rule.deny {
				if path == d || strings.HasPrefix(path, d+"/") {
					pass.Reportf(spec.Pos(),
						"%s must not import %q — %s", rule.pkg, path, rule.reason)
				}
			}
		}
	})
	return nil
}
