package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// pathIn returns an Applies func matching any of the given import paths
// or their subpackages.
func pathIn(paths ...string) func(string) bool {
	return func(pkgPath string) bool {
		for _, p := range paths {
			if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
				return true
			}
		}
		return false
	}
}

// namedType unwraps pointers, slices, arrays and aliases down to a named
// type, or nil when the underlying type is unnamed (struct literal,
// map, chan, basic).
func namedType(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Alias:
			t = types.Unalias(u)
		case *types.Pointer:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// isNamed reports whether t (possibly behind pointers/slices) is the
// named type pkgPath.name.
func isNamed(t types.Type, pkgPath, name string) bool {
	n := namedType(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// calleeObject resolves a call expression to the function or method
// object being invoked, or nil (builtins, calls through function-typed
// values, type conversions).
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if obj, ok := info.Uses[fun].(*types.Func); ok {
			return obj
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			return sel.Obj()
		}
		// Package-qualified call: pkg.Func.
		if obj, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return obj
		}
	}
	return nil
}

// calleeIn reports whether call invokes a function or method whose
// defining package is pkgPath, optionally restricted to the given names
// (no names = any).
func calleeIn(info *types.Info, call *ast.CallExpr, pkgPath string, names ...string) bool {
	obj := calleeObject(info, call)
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != pkgPath {
		return false
	}
	if len(names) == 0 {
		return true
	}
	for _, n := range names {
		if obj.Name() == n {
			return true
		}
	}
	return false
}

// isConversion reports whether a call expression is a type conversion.
func isConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType()
}

// methodOn reports whether call is a method invocation named name whose
// receiver type (behind pointers) is declared in recvPkg; recvNames
// restricts the receiver type name (empty = any type of that package).
func methodOn(info *types.Info, call *ast.CallExpr, recvPkg, name string, recvNames ...string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return false
	}
	n := namedType(selection.Recv())
	if n == nil {
		return false
	}
	obj := n.Obj()
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != recvPkg {
		return false
	}
	if len(recvNames) == 0 {
		return true
	}
	for _, rn := range recvNames {
		if obj.Name() == rn {
			return true
		}
	}
	return false
}

// isContextExpr reports whether e's static type is context.Context.
func isContextExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && isNamed(tv.Type, "context", "Context")
}
