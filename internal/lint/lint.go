// Package lint is a stdlib-only static-analysis framework for the
// repository's own invariants. It drives go/parser + go/types over the
// module's packages (discovered with `go list -json`, type-checked
// against compiler export data — no golang.org/x/tools dependency, so
// go.mod stays third-party-free) and runs a suite of project-specific
// analyzers over the typed ASTs.
//
// The analyzers encode the invariants the paper's security argument and
// the cluster's correctness argument rest on:
//
//   - secretflow:   watermark key material must never reach logs,
//     metrics, error strings or unsanctioned wire structs — ownership is
//     provable only while the keyed secret stays secret.
//   - wiretypes:    internal/server is a route layer; wire shapes live
//     in internal/api.
//   - importgate:   per-package import allowlists (obs and keyhash are
//     stdlib-only; api must not import its implementations).
//   - ctxloop:      scan loops in pipeline and cluster must observe
//     cancellation between chunks; library packages must not mint
//     detached contexts.
//   - slogonly:     service layers log through log/slog, never
//     log.Printf or fmt.Print*.
//   - determinism:  tally-merge/report code must stay bit-identical
//     across cluster topologies — no clocks, no randomness, no
//     map-order-dependent iteration.
//   - arenacopy:    the zero-allocation block pipeline must not convert
//     arena-backed byte slices to strings — that reintroduces the
//     per-row allocation the columnar path eliminates.
//   - spanend:      every trace span started in internal/ must be
//     deterministically ended — End is the publication point, so a
//     missed End silently drops the span's subtree from every trace.
//
// cmd/wmlint is the multichecker binary; CI runs it in place of the
// shell grep gates it replaced.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer is one named invariant check. Run is invoked once per
// loaded package the analyzer applies to, and reports findings through
// the Pass.
type Analyzer struct {
	// Name is the analyzer's identifier — what -only selects, what
	// diagnostics carry, and what a //wmlint:ignore directive names.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Applies reports whether the analyzer runs on the package with the
	// given import path. nil means every package.
	Applies func(pkgPath string) bool
	// Run performs the check. Diagnostics go through pass.Reportf; an
	// error aborts the whole lint run (reserved for internal failures,
	// not findings).
	Run func(pass *Pass) error
}

// A Diagnostic is one positioned finding.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.File, d.Line, d.Col, d.Message, d.Analyzer)
}

// A Pass carries one analyzer's view of one package.
type Pass struct {
	Pkg      *Package
	analyzer *Analyzer
	diags    *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Position resolves a token.Pos against the package's file set.
func (p *Pass) Position(pos token.Pos) token.Position { return p.Pkg.Fset.Position(pos) }

// All returns the full analyzer suite, in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		SecretFlow,
		WireTypes,
		ImportGate,
		CtxLoop,
		SlogOnly,
		Determinism,
		ArenaCopy,
		SpanEnd,
	}
}

// ByName resolves a comma-separated analyzer selection against All.
func ByName(names string) ([]*Analyzer, error) {
	var out []*Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		found := false
		for _, a := range All() {
			if a.Name == name {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("lint: unknown analyzer %q", name)
		}
	}
	return out, nil
}

// Run executes the analyzers over the packages and returns the surviving
// diagnostics sorted by position. Findings on a line carrying (or
// directly following) a matching //wmlint:ignore directive are
// suppressed.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if a.Applies != nil && !a.Applies(pkg.Path) {
				continue
			}
			pass := &Pass{Pkg: pkg, analyzer: a, diags: &diags}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	diags = suppress(diags, pkgs)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// ignoreDirective matches "//wmlint:ignore <analyzer> [reason...]".
// A reason is required: a suppression without a recorded justification
// is itself a finding.
var ignoreDirective = regexp.MustCompile(`^//wmlint:ignore\s+([a-z]+)\s+(\S.*)$`)

// suppress drops diagnostics covered by //wmlint:ignore directives. A
// directive covers its own line (trailing comment) and the line after it
// (comment on its own line above the offending statement).
func suppress(diags []Diagnostic, pkgs []*Package) []Diagnostic {
	type key struct {
		file     string
		line     int
		analyzer string
	}
	ignored := make(map[key]bool)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := ignoreDirective.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					ignored[key{pos.Filename, pos.Line, m[1]}] = true
					ignored[key{pos.Filename, pos.Line + 1, m[1]}] = true
				}
			}
		}
	}
	if len(ignored) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		if ignored[key{d.File, d.Line, d.Analyzer}] {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}

// forEachFile walks every non-test file of the pass's package.
func forEachFile(pass *Pass, fn func(*ast.File)) {
	for _, f := range pass.Pkg.Files {
		fn(f)
	}
}
