package lint

import (
	"go/ast"
)

// SlogOnly keeps the service layers on structured logging: since PR 6
// every server/cluster/jobs log line flows through log/slog with
// request-ID correlation, and a stray log.Printf or fmt.Println would
// bypass level filtering, the JSON handler and the X-Request-ID chain.
var SlogOnly = &Analyzer{
	Name: "slogonly",
	Doc: "internal/server, internal/cluster and internal/jobs log via log/slog only — " +
		"no log.Print*/log.Fatal*/log.Panic* and no fmt.Print*/Println to stdout",
	Applies: pathIn("repro/internal/server", "repro/internal/cluster", "repro/internal/jobs"),
	Run:     runSlogOnly,
}

func runSlogOnly(pass *Pass) error {
	info := pass.Pkg.Info
	forEachFile(pass, func(f *ast.File) {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch {
			case calleeIn(info, call, "log",
				"Print", "Printf", "Println", "Fatal", "Fatalf", "Fatalln", "Panic", "Panicf", "Panicln"):
				pass.Reportf(call.Pos(),
					"%s calls the legacy log package — service layers log via log/slog "+
						"(levels, JSON handler, request-ID correlation)", pass.Pkg.Path)
			case calleeIn(info, call, "fmt", "Print", "Printf", "Println"):
				pass.Reportf(call.Pos(),
					"%s prints to stdout via fmt — service layers log via log/slog", pass.Pkg.Path)
			}
			return true
		})
	})
	return nil
}
