package mark

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/ecc"
	"repro/internal/keyhash"
	"repro/internal/quality"
	"repro/internal/relation"
)

// Block-at-a-time execution: the codec's per-tuple decisions (fitness,
// bit position, value index) all start from keyed hashes of the tuple's
// own key, so a block of tuples can batch those hashes through one
// keyhash.Kernel call and then replay the per-tuple logic over the
// precomputed digests. ScanBlock and EmbedBlock are bit-identical to the
// ScanTuple / tuple-at-a-time loops — the property tests drive both over
// random block shapes — and ScanTuple remains the block-size-1 special
// case and the semantic definition of one tuple's work.
//
// BlockScratch is where the batching pays twice: the key column is
// extracted once per block no matter how many certificates scan it, and
// the per-block digest memo (keyhash.BlockMemo) hashes each key value
// once per lane — certificates sharing an owner secret, and therefore a
// fitness key, replay each other's digests instead of rehashing.

// DefaultBlockRows is the block size Scan, EmbedRange and the pipeline
// default to: large enough to amortize a kernel call, small enough that
// a block's keys and digests stay cache-resident while every
// certificate of a batch audit sweeps it.
const DefaultBlockRows = 512

// keyColCache is one extracted key column of the current block.
type keyColCache struct {
	col  int
	keys []string
}

// BlockScratch carries the reusable state of a block-at-a-time pass:
// extracted key columns, the per-block digest memo, and the voting-row
// staging arrays. One scratch serves any number of scanners and
// embedders — sharing it across certificates is what enables key-column
// and digest reuse — but it is mutable state: one scratch per goroutine,
// never shared concurrently. The zero value is ready to use.
type BlockScratch struct {
	rel      *relation.Relation
	lo, hi   int
	cols     []keyColCache
	freeKeys [][]string // retired key-column backing arrays, for reuse
	memo     keyhash.BlockMemo

	// columnar block identity (ScanColumns): the pooled Block pointer
	// plus its generation counter, because pooling reuses pointers.
	blk    *relation.Block
	blkGen uint64

	// staging for the current ScanBlock/EmbedBlock call
	fitRows []int32
	fitBits []uint8
	fitKeys []string
	d2      []keyhash.Digest

	// columnar staging for ScanColumns: the fit keys packed as one
	// contiguous byte run with offsets, feeding Kernel.HashColumn
	// without materializing strings.
	fitData []byte
	fitOffs []int32

	// hash-phase metering (EnableHashTiming): nanoseconds spent inside
	// the two kernel calls of ScanColumns, so a traced pass can split a
	// block's scan time into hash vs vote without touching the per-row
	// loops. Off by default — the untimed path pays one branch per
	// kernel call.
	timeHash  bool
	hashNanos int64
}

// EnableHashTiming makes this scratch's ScanColumns calls meter their
// kernel time. Per-goroutine like the scratch itself; enable once, read
// deltas with HashNanos.
func (bs *BlockScratch) EnableHashTiming() { bs.timeHash = true }

// HashNanos returns the kernel nanoseconds accumulated since the last
// call and resets the counter.
func (bs *BlockScratch) HashNanos() int64 {
	n := bs.hashNanos
	bs.hashNanos = 0
	return n
}

// setBlock points the scratch at rows [lo, hi) of r, invalidating the
// extracted columns and the digest memo when the block changed. Retired
// key slices are recycled into the next block's extractions.
func (bs *BlockScratch) setBlock(r *relation.Relation, lo, hi int) {
	if bs.rel == r && bs.blk == nil && bs.lo == lo && bs.hi == hi {
		return
	}
	bs.rel, bs.lo, bs.hi = r, lo, hi
	bs.blk, bs.blkGen = nil, 0
	for i := range bs.cols {
		bs.freeKeys = append(bs.freeKeys, bs.cols[i].keys[:0])
	}
	bs.cols = bs.cols[:0]
	bs.memo.Reset()
}

// keyColumn returns the block's key values for col, extracting them on
// first use and replaying them for every later caller of the same block.
func (bs *BlockScratch) keyColumn(col int) []string {
	for i := range bs.cols {
		if bs.cols[i].col == col {
			return bs.cols[i].keys
		}
	}
	var keys []string
	if n := len(bs.freeKeys); n > 0 {
		keys = bs.freeKeys[n-1]
		bs.freeKeys = bs.freeKeys[:n-1]
	}
	if cap(keys) < bs.hi-bs.lo {
		keys = make([]string, 0, bs.hi-bs.lo)
	}
	for j := bs.lo; j < bs.hi; j++ {
		keys = append(keys, bs.rel.Tuple(j)[col])
	}
	bs.cols = append(bs.cols, keyColCache{col: col, keys: keys})
	return keys
}

// stage resets the voting-row staging arrays for a fresh block walk.
func (bs *BlockScratch) stage() {
	bs.fitRows = bs.fitRows[:0]
	bs.fitBits = bs.fitBits[:0]
	bs.fitKeys = bs.fitKeys[:0]
}

// d2For sizes the position-digest scratch for n voting rows.
func (bs *BlockScratch) d2For(n int) []keyhash.Digest {
	if cap(bs.d2) < n {
		bs.d2 = make([]keyhash.Digest, n)
	}
	return bs.d2[:n]
}

// checkRange validates a block range against a relation.
func checkRange(r *relation.Relation, lo, hi int) error {
	if lo < 0 || hi > r.Len() || lo > hi {
		return fmt.Errorf("mark: row range [%d, %d) out of bounds (N=%d)", lo, hi, r.Len())
	}
	return nil
}

// ScanBlock accumulates the votes of rows [lo, hi) of r into t — the
// batched form of the ScanTuple loop, in three passes over the block:
// one kernel call for the fitness digests (replayed from the scratch
// memo when another scanner of the same lane got there first), a fitness
// and domain walk that stages the voting rows, one kernel call for their
// position digests, and the vote tally in row order. Every counter and
// vote, including the order-sensitive Last column, lands exactly as the
// tuple-at-a-time pass would have it.
//
// bs may be shared across scanners (that is the point) but not across
// goroutines; nil uses a throwaway scratch.
func (s *Scanner) ScanBlock(r *relation.Relation, lo, hi int, t *Tally, bs *BlockScratch) error {
	if err := checkRange(r, lo, hi); err != nil {
		return err
	}
	if bs == nil {
		bs = &BlockScratch{}
	}
	bs.setBlock(r, lo, hi)
	keys := bs.keyColumn(s.keyCol)
	d1 := bs.memo.Lane(s.keyCol, s.k1s, s.kern1, keys)

	bs.stage()
	t.Rows += hi - lo
	for j, keyVal := range keys {
		if !keyhash.Fit(d1[j], s.opts.E) {
			continue
		}
		t.Fit++
		idx, ok := s.dom.Index(r.Tuple(lo + j)[s.attrCol])
		if !ok {
			t.UnknownValues++
			continue
		}
		bs.fitRows = append(bs.fitRows, int32(j))
		bs.fitBits = append(bs.fitBits, uint8(idx&1))
		bs.fitKeys = append(bs.fitKeys, keyVal)
	}

	d2 := bs.d2For(len(bs.fitKeys))
	s.kern2.HashMany(bs.fitKeys, d2)
	bw := uint64(s.bw)
	for i, bit := range bs.fitBits {
		pos := int(d2[i].Mod(bw))
		if bit == ecc.One {
			t.Votes[pos].Ones++
		} else {
			t.Votes[pos].Zeros++
		}
		t.Last[pos] = bit
	}
	return nil
}

// setColumnBlock points the scratch at a columnar block, invalidating
// the memo when the block identity changed. Pooled blocks reuse
// pointers, so identity is the (pointer, generation) pair; a scratch
// that last saw a row-range block is invalidated unconditionally.
func (bs *BlockScratch) setColumnBlock(blk *relation.Block) {
	if bs.blk == blk && bs.blkGen == blk.Gen() {
		return
	}
	bs.blk, bs.blkGen = blk, blk.Gen()
	bs.rel, bs.lo, bs.hi = nil, 0, 0
	for i := range bs.cols {
		bs.freeKeys = append(bs.freeKeys, bs.cols[i].keys[:0])
	}
	bs.cols = bs.cols[:0]
	bs.memo.Reset()
}

// stageColumns resets the columnar staging arrays for a fresh
// ScanColumns walk. fitOffs keeps the leading 0 sentinel so
// fitOffs[i:i+2] brackets staged key i.
func (bs *BlockScratch) stageColumns() {
	bs.fitBits = bs.fitBits[:0]
	bs.fitData = bs.fitData[:0]
	if cap(bs.fitOffs) == 0 {
		bs.fitOffs = make([]int32, 1, 64)
	}
	bs.fitOffs = bs.fitOffs[:1]
	bs.fitOffs[0] = 0
}

// ScanColumns accumulates the votes of a columnar block into t — the
// zero-allocation form of ScanBlock: the key column's arena bytes feed
// Kernel.HashColumn directly (replayed from the scratch memo when
// another scanner of the same lane got there first), the fitness and
// domain walk stages the voting keys as one contiguous byte run, and a
// second HashColumn call derives their positions. Every counter and
// vote, including the order-sensitive Last column, lands exactly as
// ScanTuple over Block.Tuple(i) would have it.
//
// bs follows the ScanBlock sharing rules; nil uses a throwaway scratch.
func (s *Scanner) ScanColumns(blk *relation.Block, t *Tally, bs *BlockScratch) error {
	if arity := blk.Schema().Arity(); s.keyCol >= arity || s.attrCol >= arity {
		return fmt.Errorf("mark: block arity %d lacks column %d", arity, max(s.keyCol, s.attrCol))
	}
	if bs == nil {
		bs = &BlockScratch{}
	}
	bs.setColumnBlock(blk)
	keyData, keyOffs := blk.Col(s.keyCol).Raw()
	var hashStart time.Time
	if bs.timeHash {
		//wmlint:ignore determinism hash-phase metering only — the nanos feed trace spans, never the tally
		hashStart = time.Now()
	}
	d1 := bs.memo.LaneColumn(s.keyCol, s.k1s, s.kern1, keyData, keyOffs)
	if bs.timeHash {
		//wmlint:ignore determinism hash-phase metering only — the nanos feed trace spans, never the tally
		bs.hashNanos += int64(time.Since(hashStart))
	}

	bs.stageColumns()
	n := blk.Rows()
	t.Rows += n
	attrCol := blk.Col(s.attrCol)
	for j := 0; j < n; j++ {
		if !keyhash.Fit(d1[j], s.opts.E) {
			continue
		}
		t.Fit++
		idx, ok := s.dom.IndexBytes(attrCol.Value(j))
		if !ok {
			t.UnknownValues++
			continue
		}
		bs.fitBits = append(bs.fitBits, uint8(idx&1))
		bs.fitData = append(bs.fitData, keyData[keyOffs[j]:keyOffs[j+1]]...)
		bs.fitOffs = append(bs.fitOffs, int32(len(bs.fitData)))
	}

	d2 := bs.d2For(len(bs.fitBits))
	if bs.timeHash {
		//wmlint:ignore determinism hash-phase metering only — the nanos feed trace spans, never the tally
		hashStart = time.Now()
	}
	s.kern2.HashColumn(bs.fitData, bs.fitOffs, d2)
	if bs.timeHash {
		//wmlint:ignore determinism hash-phase metering only — the nanos feed trace spans, never the tally
		bs.hashNanos += int64(time.Since(hashStart))
	}
	bw := uint64(s.bw)
	for i, bit := range bs.fitBits {
		pos := int(d2[i].Mod(bw))
		if bit == ecc.One {
			t.Votes[pos].Ones++
		} else {
			t.Votes[pos].Zeros++
		}
		t.Last[pos] = bit
	}
	return nil
}

// EmbedBlock embeds rows [lo, hi) of r, accumulating into cs — the
// batched form of the tuple-at-a-time embedding walk: fitness digests
// in one kernel call, the in-order fitness walk staging the embeddable
// rows, their position digests in a second kernel call, then the value
// rewrites applied in row order (quality gating, alteration counters
// and the OnAlter hook all fire in the same order as the sequential
// pass). When Options.SkipRow is set the walk stays fully interleaved
// per row instead — the ledger hook may read state that OnAlter or the
// assessor writes for earlier rows, so batching the ledger decisions
// ahead of the rewrites would change what it observes; only the fitness
// digests (pure functions of the keys) stay batched there.
//
// The same concurrency rules as EmbedRange apply; bs follows the
// ScanBlock sharing rules.
func (e *Embedder) EmbedBlock(r *relation.Relation, lo, hi int, cs *ChunkStats, bs *BlockScratch) error {
	cs.Bandwidth = e.bw
	if cs.Touched == nil {
		cs.Touched = make([]bool, e.bw)
	}
	if err := checkRange(r, lo, hi); err != nil {
		return err
	}
	if bs == nil {
		bs = &BlockScratch{}
	}
	cs.Tuples += hi - lo
	bs.setBlock(r, lo, hi)
	keys := bs.keyColumn(e.keyCol)
	d1 := bs.memo.Lane(e.keyCol, e.k1s, e.kern1, keys)
	opts := &e.opts

	if opts.SkipRow != nil {
		// Ledger-gated walk: sequential-identical hook interleaving.
		var d2 [1]keyhash.Digest
		for j := range keys {
			if !keyhash.Fit(d1[j], opts.E) {
				continue
			}
			cs.Fit++
			if opts.SkipRow(lo + j) {
				cs.SkippedLedger++
				continue
			}
			e.kern2.HashMany(keys[j:j+1], d2[:])
			if err := e.embedRow(r, lo+j, d1[j], int(d2[0].Mod(uint64(e.bw))), cs); err != nil {
				return err
			}
		}
		return nil
	}

	bs.stage()
	for j, keyVal := range keys {
		if !keyhash.Fit(d1[j], opts.E) {
			continue
		}
		cs.Fit++
		bs.fitRows = append(bs.fitRows, int32(j))
		bs.fitKeys = append(bs.fitKeys, keyVal)
	}

	d2 := bs.d2For(len(bs.fitKeys))
	e.kern2.HashMany(bs.fitKeys, d2)
	for i, j32 := range bs.fitRows {
		j := int(j32)
		if err := e.embedRow(r, lo+j, d1[j], int(d2[i].Mod(uint64(e.bw))), cs); err != nil {
			return err
		}
	}
	return nil
}

// embedRow applies one fit, non-skipped row's rewrite: derive the value
// index from the fitness digest and the wm_data bit at pos, rewrite
// through the quality gate, count, and fire OnAlter — the shared back
// half of both EmbedBlock walks.
func (e *Embedder) embedRow(r *relation.Relation, row int, d1 keyhash.Digest, pos int, cs *ChunkStats) error {
	opts := &e.opts
	bit := uint64(e.wmData[pos])
	// Value-index selection: an independent digest word drives the
	// pseudorandom pair choice so the mod-e fitness constraint on
	// word 0 cannot bias it (DESIGN.md clarification 1).
	idx := keyhash.PairIndex(d1.Uint64At(1), e.dom.Size(), bit)
	newVal := e.dom.Value(idx)
	if r.Tuple(row)[e.attrCol] == newVal {
		cs.Unchanged++
		cs.Touched[pos] = true
		return nil
	}
	if opts.Assessor != nil {
		if aerr := opts.Assessor.Apply(r, row, opts.Attr, newVal); aerr != nil {
			var verr *quality.ViolationError
			if errors.As(aerr, &verr) {
				cs.SkippedQuality++
				return nil
			}
			return aerr
		}
	} else {
		if serr := r.SetValue(row, opts.Attr, newVal); serr != nil {
			return serr
		}
	}
	cs.Altered++
	cs.Touched[pos] = true
	if opts.OnAlter != nil {
		opts.OnAlter(row)
	}
	return nil
}
