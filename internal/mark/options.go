// Package mark implements the core categorical watermark codec of Section
// 3.2: embedding a watermark into the association between a (primary) key
// attribute K and a categorical attribute A, and blind detection without
// the original data.
//
// Embedding (Figure 1(a)):
//
//	wm_data ← ECC.encode(wm, N/e)
//	for each tuple T_j:
//	    if H(T_j(K); k1) mod e == 0 {                    // "fit" tuple
//	        pos ← H(T_j(K); k2) mod |wm_data|            // bit selection
//	        t   ← pseudorandom index with t&1 == wm_data[pos]
//	        T_j(A) ← a_t                                 // value rewrite
//	    }
//
// Detection (Figure 2(a)) recomputes fitness and positions from the keys
// alone, reads back bit = index(T_j(A)) & 1, majority-votes collisions,
// and ECC-decodes. Because every decision depends only on the tuple's own
// key, the scheme survives re-sorting (A4), subset selection (A1) and
// data addition (A2) structurally.
//
// The package also implements the Figure 1(b)/2(b) alternate that keeps an
// explicit embedding map instead of the k2 position hash, the Section 4.6
// data-addition channel, and the Section 4.3 incremental-update hook.
package mark

import (
	"errors"
	"fmt"

	"repro/internal/ecc"
	"repro/internal/keyhash"
	"repro/internal/quality"
	"repro/internal/relation"
)

// VoteAggregation selects how detection combines multiple fit tuples that
// map to the same wm_data position.
type VoteAggregation int

const (
	// MajorityVote tallies 0/1 votes per position and takes the majority —
	// strictly stronger than the paper's literal pseudocode and consistent
	// with its ECC philosophy (DESIGN.md clarification 3). Default.
	MajorityVote VoteAggregation = iota
	// LastWriteWins sets each position to the last vote encountered in
	// scan order, exactly as Figure 2(a) is written. Exposed for the
	// vote-aggregation ablation bench.
	LastWriteWins
)

// String names the aggregation for reports.
func (v VoteAggregation) String() string {
	switch v {
	case MajorityVote:
		return "majority"
	case LastWriteWins:
		return "last-write"
	default:
		return fmt.Sprintf("VoteAggregation(%d)", int(v))
	}
}

// Options configures one (K, A) embedding channel. K1, K2, E, and the
// attribute names must match between Embed and Detect.
type Options struct {
	// KeyAttr is the attribute acting as the key K. Empty means the
	// relation's primary key. Section 3.3 reuses this with non-key
	// attributes for pairwise embeddings such as mark(A, B).
	KeyAttr string
	// Attr is the categorical attribute A to be watermarked.
	Attr string
	// K1 is the secret fitness/value-selection key.
	K1 keyhash.Key
	// K2 is the secret bit-position key; must differ from K1 so tuple
	// selection and bit-position selection are uncorrelated (Section
	// 3.2.1). Unused by the embedding-map variant.
	K2 keyhash.Key
	// E is the fitness modulus e: on average one tuple in E is embedded.
	E uint64
	// BandwidthOverride fixes |wm_data| explicitly. Zero derives N/e from
	// the relation at call time. |wm_data| is determined once, at
	// embedding time; a detector running on data that has since lost or
	// gained tuples (attacks A1/A2) must pass the embedding-time value or
	// every position hash lands in the wrong slot. In practice the value
	// travels with the rest of the watermark record (k1, k2, e, |wm|).
	BandwidthOverride int
	// Code is the error-correcting code; nil means the paper's majority
	// voting code (ecc.MajorityCode).
	Code ecc.Code
	// Domain fixes the categorical value set {a_1 … a_nA}. Nil derives it
	// from the data at call time; for detection after data-loss attacks
	// always pass the catalog-derived domain (see relation.Domain docs).
	Domain *relation.Domain
	// Assessor, when non-nil, gates every embedding alteration through the
	// Section 4.1 quality constraints; vetoed alterations are skipped and
	// counted, not fatal.
	Assessor *quality.Assessor
	// Aggregation selects the detection vote-aggregation policy.
	Aggregation VoteAggregation
	// ZeroUnfilled makes wm_data positions that received no vote read as
	// 0 instead of an erasure. Figure 2(a) zero-initialises wm_data and
	// only overwrites positions with surviving fit tuples, so this is the
	// paper-literal behaviour; it makes "1" bits decay under data loss.
	// The default erasure-aware decoding ignores unfilled positions and is
	// strictly stronger (see EXPERIMENTS.md, Figure 7 discussion).
	ZeroUnfilled bool
	// HashKernel selects the batched keyed-hash backend for the
	// block-at-a-time engine (see keyhash.Kernel). The zero value picks
	// the fastest backend available on this CPU; digests — and therefore
	// every embedding decision and detection vote — are identical across
	// backends.
	HashKernel keyhash.KernelKind
	// SkipRow, when non-nil, excludes rows from embedding — the Section
	// 3.3 interference ledger hook ("remembering modified tuples in each
	// marking pass ... to avoid tuples that were already considered").
	SkipRow func(row int) bool
	// OnAlter, when non-nil, is invoked after every committed embedding
	// alteration; multimark uses it to maintain the interference ledger.
	OnAlter func(row int)
}

// Errors returned by the codec.
var (
	// ErrInsufficientBandwidth reports |wm| > N/e: the watermark does not
	// fit the embedding bandwidth (Section 2.4). Decrease e or shorten wm.
	ErrInsufficientBandwidth = errors.New("mark: watermark longer than embedding bandwidth N/e")
	// ErrDomainTooSmall reports a categorical attribute with fewer than
	// two values — no parity channel exists (Section 3.3 note).
	ErrDomainTooSmall = errors.New("mark: categorical domain has fewer than 2 values")
	// ErrSameKeys reports K1 == K2, which would correlate tuple selection
	// with bit-position selection and starve some wm_data bits.
	ErrSameKeys = errors.New("mark: k1 and k2 must differ")
)

// code returns the configured ECC, defaulting to majority voting.
func (o *Options) code() ecc.Code {
	if o.Code != nil {
		return o.Code
	}
	return ecc.MajorityCode{}
}

// resolveCols validates keys and resolves attribute names against a
// schema. The key attribute defaults to the schema's primary key.
func (o *Options) resolveCols(s *relation.Schema, needK2 bool) (keyCol, attrCol int, err error) {
	if err := o.K1.Validate(); err != nil {
		return 0, 0, fmt.Errorf("mark: k1: %w", err)
	}
	if needK2 {
		if err := o.K2.Validate(); err != nil {
			return 0, 0, fmt.Errorf("mark: k2: %w", err)
		}
		if string(o.K1) == string(o.K2) {
			return 0, 0, ErrSameKeys
		}
	}
	if o.E == 0 {
		return 0, 0, errors.New("mark: fitness parameter e must be positive")
	}
	kName := o.KeyAttr
	if kName == "" {
		kName = s.KeyName()
	}
	keyCol, ok := s.Index(kName)
	if !ok {
		return 0, 0, fmt.Errorf("mark: key attribute %q not in schema", kName)
	}
	if o.Attr == "" {
		return 0, 0, errors.New("mark: no categorical attribute named")
	}
	attrCol, ok = s.Index(o.Attr)
	if !ok {
		return 0, 0, fmt.Errorf("mark: attribute %q not in schema", o.Attr)
	}
	if keyCol == attrCol {
		return 0, 0, fmt.Errorf("mark: key and watermarked attribute are both %q", o.Attr)
	}
	return keyCol, attrCol, nil
}

// resolve validates the options against a relation and returns the key and
// attribute column indices plus the effective domain (derived from the
// data when Options.Domain is nil).
func (o *Options) resolve(r *relation.Relation, needK2 bool) (keyCol, attrCol int, dom *relation.Domain, err error) {
	keyCol, attrCol, err = o.resolveCols(r.Schema(), needK2)
	if err != nil {
		return 0, 0, nil, err
	}
	dom = o.Domain
	if dom == nil {
		dom, err = relation.DomainOf(r, o.Attr)
		if err != nil {
			return 0, 0, nil, err
		}
	}
	if dom.Size() < 2 {
		return 0, 0, nil, ErrDomainTooSmall
	}
	return keyCol, attrCol, dom, nil
}

// resolveSchema validates the options against a bare schema, for row
// streams where no relation exists to derive a domain from:
// Options.Domain is mandatory.
func (o *Options) resolveSchema(s *relation.Schema, needK2 bool) (keyCol, attrCol int, dom *relation.Domain, err error) {
	keyCol, attrCol, err = o.resolveCols(s, needK2)
	if err != nil {
		return 0, 0, nil, err
	}
	if o.Domain == nil {
		return 0, 0, nil, errors.New("mark: streaming passes require an explicit Domain (no data to derive it from)")
	}
	if o.Domain.Size() < 2 {
		return 0, 0, nil, ErrDomainTooSmall
	}
	return keyCol, attrCol, o.Domain, nil
}

// Bandwidth returns |wm_data| = N/e for a relation of n tuples, the
// paper's available embedding bandwidth (Section 2.4).
func Bandwidth(n int, e uint64) int {
	if e == 0 {
		return 0
	}
	return int(uint64(n) / e)
}

// bandwidth resolves the effective |wm_data| for a relation of n tuples.
func (o *Options) bandwidth(n int) int {
	if o.BandwidthOverride > 0 {
		return o.BandwidthOverride
	}
	return Bandwidth(n, o.E)
}
