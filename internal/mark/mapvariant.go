package mark

import (
	"errors"
	"fmt"

	"repro/internal/ecc"
	"repro/internal/keyhash"
	"repro/internal/quality"
	"repro/internal/relation"
)

// EmbeddingMap is the alternate bit-position bookkeeping of Figures 1(b)
// and 2(b): an on-the-fly mapping from key values to wm_data bit indices,
// assigned sequentially during embedding. It removes the need for the k2
// key and guarantees every wm_data bit is embedded exactly once (no
// position collisions), at the cost of no longer being fully blind — the
// map (~N/e entries) must be stored alongside the keys. The paper notes it
// uses this variant in its own implementation.
type EmbeddingMap map[string]int

// EmbedWithMap watermarks r per Figure 1(b) and returns the embedding map.
// Options.K2 is ignored. Bits are assigned to fit tuples in scan order:
// fit tuple number i carries wm_data[i].
func EmbedWithMap(r *relation.Relation, wm ecc.Bits, opts Options) (EmbeddingMap, EmbedStats, error) {
	var stats EmbedStats
	keyCol, attrCol, dom, err := opts.resolve(r, false)
	if err != nil {
		return nil, stats, err
	}
	if len(wm) == 0 {
		return nil, stats, errors.New("mark: empty watermark")
	}
	n := r.Len()
	bw := opts.bandwidth(n)
	if bw < len(wm) {
		return nil, stats, fmt.Errorf("%w: |wm|=%d, N/e=%d", ErrInsufficientBandwidth, len(wm), bw)
	}
	wmData, err := opts.code().Encode(wm, bw)
	if err != nil {
		return nil, stats, err
	}

	stats.Tuples = n
	stats.Bandwidth = bw
	em := make(EmbeddingMap, bw)
	idx := 0

	for j := 0; j < n && idx < bw; j++ {
		t := r.Tuple(j)
		keyVal := t[keyCol]
		d1 := keyhash.HashString(opts.K1, keyVal)
		if !keyhash.Fit(d1, opts.E) {
			continue
		}
		stats.Fit++
		if opts.SkipRow != nil && opts.SkipRow(j) {
			stats.SkippedLedger++
			continue
		}
		if _, dup := em[keyVal]; dup {
			// Duplicate key value (possible when KeyAttr is not the
			// primary key): first assignment wins, as re-assigning would
			// desynchronise decode.
			continue
		}
		bit := uint64(wmData[idx])
		vIdx := keyhash.PairIndex(d1.Uint64At(1), dom.Size(), bit)
		newVal := dom.Value(vIdx)
		old := t[attrCol]
		if old != newVal {
			if opts.Assessor != nil {
				if aerr := opts.Assessor.Apply(r, j, opts.Attr, newVal); aerr != nil {
					var verr *quality.ViolationError
					if errors.As(aerr, &verr) {
						stats.SkippedQuality++
						continue
					}
					return nil, stats, aerr
				}
			} else if serr := r.SetValue(j, opts.Attr, newVal); serr != nil {
				return nil, stats, serr
			}
			stats.Altered++
			if opts.OnAlter != nil {
				opts.OnAlter(j)
			}
		} else {
			stats.Unchanged++
		}
		em[keyVal] = idx
		idx++
	}
	stats.PositionsTouched = idx
	return em, stats, nil
}

// DetectWithMap recovers a wmLen-bit watermark per Figure 2(b), using the
// stored embedding map to place each fit tuple's bit exactly. Tuples
// missing from the map (e.g. added by an A2 attack and accidentally fit)
// are ignored.
func DetectWithMap(r *relation.Relation, wmLen int, em EmbeddingMap, opts Options) (DetectReport, error) {
	var rep DetectReport
	keyCol, attrCol, dom, err := opts.resolve(r, false)
	if err != nil {
		return rep, err
	}
	if wmLen <= 0 {
		return rep, errors.New("mark: non-positive watermark length")
	}
	if len(em) == 0 {
		return rep, errors.New("mark: empty embedding map")
	}
	bw := 0
	//wmlint:ignore determinism order-independent max reduction over the embedding map
	for _, idx := range em {
		if idx < 0 {
			return rep, fmt.Errorf("mark: embedding map has negative index %d", idx)
		}
		if idx+1 > bw {
			bw = idx + 1
		}
	}
	if bw < wmLen {
		return rep, fmt.Errorf("%w: |wm|=%d, map bandwidth=%d", ErrInsufficientBandwidth, wmLen, bw)
	}

	rep.Tuples = r.Len()
	rep.Bandwidth = bw
	wmData := ecc.NewErased(bw)

	for j := 0; j < r.Len(); j++ {
		t := r.Tuple(j)
		keyVal := t[keyCol]
		if !keyhash.Fit(keyhash.HashString(opts.K1, keyVal), opts.E) {
			continue
		}
		rep.Fit++
		pos, ok := em[keyVal]
		if !ok {
			continue // not part of the original embedding
		}
		idx, ok := dom.Index(t[attrCol])
		if !ok {
			rep.UnknownValues++
			continue
		}
		wmData[pos] = uint8(idx & 1)
	}
	for _, b := range wmData {
		if b != ecc.Erased {
			rep.PositionsFilled++
		}
	}
	if rep.PositionsFilled > 0 {
		rep.MeanMargin = 1 // map placement is exact; every vote is unanimous
	}

	wm, err := opts.code().Decode(wmData, wmLen)
	if err != nil {
		return rep, err
	}
	rep.WM = wm
	return rep, nil
}
