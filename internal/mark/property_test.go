package mark

import (
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"

	"repro/internal/ecc"
	"repro/internal/keyhash"
	"repro/internal/relation"
	"repro/internal/stats"
)

// buildRandom builds a small relation with nA categorical values, for the
// property tests below.
func buildRandom(seed string, n, nA int) (*relation.Relation, *relation.Domain) {
	s := relation.MustSchema([]relation.Attribute{
		{Name: "k", Type: relation.TypeInt},
		{Name: "a", Type: relation.TypeString, Categorical: true},
	}, "k")
	src := stats.NewSource("prop/" + seed)
	values := make([]string, nA)
	for i := range values {
		values[i] = "val-" + strconv.Itoa(i)
	}
	r := relation.New(s)
	for i := 0; i < n; i++ {
		r.MustAppend(relation.Tuple{strconv.Itoa(i), values[src.Intn(nA)]})
	}
	return r, relation.MustDomain(values)
}

// Property: embed→detect is the identity for random watermarks, domain
// sizes, and e values (given sufficient bandwidth).
//
// Bandwidth is sized at 16×|wm| because bit positions are Poisson-placed:
// at k×|wm| positions a whole replica group is empty with probability
// ≈ (1/ē)^k, which the paper's Section 3.2.1 note accepts as an ECC-absorbed
// risk — the multiplier keeps that probability negligible for a test that
// asserts exact round trips. The RNG is pinned for reproducibility
// (testing/quick is time-seeded by default).
func TestRoundTripProperty(t *testing.T) {
	iter := 0
	f := func(wmBitsRaw uint16, eRaw, nARaw uint8) bool {
		iter++
		e := uint64(eRaw%20) + 2       // 2..21
		nA := int(nARaw%30) + 2        // 2..31
		wmLen := int(wmBitsRaw%12) + 1 // 1..12
		n := int(e) * wmLen * 16       // ensures bandwidth ≥ 16·|wm|
		r, dom := buildRandom(strconv.Itoa(iter), n, nA)
		wm := make(ecc.Bits, wmLen)
		for i := range wm {
			wm[i] = uint8((wmBitsRaw >> uint(i)) & 1)
		}
		opts := Options{
			Attr:   "a",
			K1:     keyhash.NewKey("prop-k1-" + strconv.Itoa(iter)),
			K2:     keyhash.NewKey("prop-k2-" + strconv.Itoa(iter)),
			E:      e,
			Domain: dom,
		}
		if _, err := Embed(r, wm, opts); err != nil {
			t.Logf("embed error: %v", err)
			return false
		}
		rep, err := Detect(r, wmLen, opts)
		if err != nil {
			t.Logf("detect error: %v", err)
			return false
		}
		return rep.WM.String() == wm.String()
	}
	cfg := &quick.Config{
		MaxCount: 60,
		Rand:     rand.New(rand.NewSource(20040301)), // ICDE 2004
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: fitness selection is invariant under any permutation of the
// data — the exact mechanism behind re-sorting resilience.
func TestFitSetPermutationInvariance(t *testing.T) {
	r, _ := buildRandom("fit-perm", 2000, 10)
	k1 := keyhash.NewKey("fit-perm")
	collect := func(rel *relation.Relation) map[string]bool {
		fit := map[string]bool{}
		for i := 0; i < rel.Len(); i++ {
			if keyhash.FitKey(k1, rel.Key(i), 15) {
				fit[rel.Key(i)] = true
			}
		}
		return fit
	}
	before := collect(r)
	r.Shuffle(stats.NewSource("perm"))
	after := collect(r)
	if len(before) != len(after) {
		t.Fatalf("fit set size changed: %d vs %d", len(before), len(after))
	}
	for k := range before {
		if !after[k] {
			t.Fatalf("key %s lost fitness after permutation", k)
		}
	}
}

// Property: the watermark detected from a subset equals the watermark
// detected from the full set whenever every subset position retains at
// least one voter and votes are unanimous (no attack) — exercised across
// random subset fractions.
func TestSubsetDetectionConsistency(t *testing.T) {
	r, dom := buildRandom("subset-prop", 9000, 12)
	wm := ecc.MustParseBits("101101")
	opts := Options{
		Attr: "a", K1: keyhash.NewKey("sp1"), K2: keyhash.NewKey("sp2"),
		E: 15, Domain: dom,
	}
	if _, err := Embed(r, wm, opts); err != nil {
		t.Fatal(err)
	}
	bw := Bandwidth(r.Len(), opts.E)
	src := stats.NewSource("subset-fractions")
	for _, keepFrac := range []float64{0.9, 0.7, 0.5, 0.3} {
		keep := src.Sample(r.Len(), int(float64(r.Len())*keepFrac))
		sub, err := r.SelectRows(keep)
		if err != nil {
			t.Fatal(err)
		}
		detOpts := opts
		detOpts.BandwidthOverride = bw
		rep, err := Detect(sub, len(wm), detOpts)
		if err != nil {
			t.Fatal(err)
		}
		if rep.WM.String() != wm.String() {
			t.Errorf("keep=%.0f%%: detected %s, want %s", keepFrac*100, rep.WM, wm)
		}
	}
}

// Property: two embeddings under different keys into disjoint channels do
// not destroy each other beyond the noise the ECC absorbs (the Section 3.3
// low-interference claim, single-attribute version: second pass re-marks
// some of the first pass's fit tuples).
func TestDoubleEmbeddingInterferenceBounded(t *testing.T) {
	r, dom := buildRandom("interf", 30000, 16)
	wmA := ecc.MustParseBits("1011001110")
	wmB := ecc.MustParseBits("0110010011")
	optsA := Options{Attr: "a", K1: keyhash.NewKey("A1"), K2: keyhash.NewKey("A2"), E: 20, Domain: dom}
	optsB := Options{Attr: "a", K1: keyhash.NewKey("B1"), K2: keyhash.NewKey("B2"), E: 20, Domain: dom}
	if _, err := Embed(r, wmA, optsA); err != nil {
		t.Fatal(err)
	}
	if _, err := Embed(r, wmB, optsB); err != nil {
		t.Fatal(err)
	}
	// B is intact (embedded last).
	repB, err := Detect(r, len(wmB), optsB)
	if err != nil {
		t.Fatal(err)
	}
	if repB.WM.String() != wmB.String() {
		t.Fatalf("wmB corrupted: %s vs %s", wmB, repB.WM)
	}
	// A suffers only the ~1/e overlap; majority voting shrugs it off.
	repA, err := Detect(r, len(wmA), optsA)
	if err != nil {
		t.Fatal(err)
	}
	if repA.MatchFraction(wmA) < 0.9 {
		t.Fatalf("wmA degraded to %v by second embedding", repA.MatchFraction(wmA))
	}
}

// Property: detection probability under random unrelated keys behaves like
// coin flips per bit — the false-positive foundation of Section 4.4. With
// 24 random key pairs and an 8-bit mark, expected full matches ≈ 24/256;
// we assert none occurs AND the mean match fraction is near 0.5.
func TestFalsePositiveBehaviour(t *testing.T) {
	r, dom := buildRandom("fp", 8000, 10)
	wm := ecc.MustParseBits("10110010")
	// NOT embedded: r is unwatermarked. Detection with arbitrary keys
	// must not reliably find wm.
	total := 0.0
	const trials = 24
	for i := 0; i < trials; i++ {
		opts := Options{
			Attr: "a",
			K1:   keyhash.NewKey("fp-k1-" + strconv.Itoa(i)),
			K2:   keyhash.NewKey("fp-k2-" + strconv.Itoa(i)),
			E:    10, Domain: dom,
		}
		rep, err := Detect(r, len(wm), opts)
		if err != nil {
			t.Fatal(err)
		}
		total += rep.MatchFraction(wm)
	}
	mean := total / trials
	if mean < 0.3 || mean > 0.7 {
		t.Fatalf("mean random match fraction %v, want ≈ 0.5", mean)
	}
}
