package mark

import (
	"fmt"

	"repro/internal/ecc"
)

// TallyWire is the serialized form of a Tally — the unit of work that
// crosses machine boundaries in a distributed audit. A cluster worker
// scans its row-range shard into ordinary tallies, wires them, and ships
// them back; the coordinator decodes each one and folds the partials in
// row order with Tally.Merge, producing a total bit-identical to a local
// single-pass scan (see the round-trip tests, which assert exactly that
// for both vote aggregations).
//
// Vote counts travel as two parallel per-position arrays rather than an
// array of structs: a bandwidth-b tally is 2b JSON integers plus one
// base64 string, compact enough that a shard response carrying dozens of
// certificates stays small next to the shard's row payload.
type TallyWire struct {
	// Rows, Fit, UnknownValues mirror the Tally scan counters.
	Rows          int `json:"rows"`
	Fit           int `json:"fit"`
	UnknownValues int `json:"unknown_values,omitempty"`
	// Zeros and Ones are the per-position vote counts; both have exactly
	// bandwidth entries.
	Zeros []int `json:"zeros"`
	Ones  []int `json:"ones"`
	// Last is the last vote per position in scan order, one byte per
	// position (0, 1, or 0xFF = ecc.Erased); JSON carries it base64-coded.
	Last []byte `json:"last"`
}

// Wire serializes t. The returned value shares no memory with t.
func (t *Tally) Wire() TallyWire {
	w := TallyWire{
		Rows:          t.Rows,
		Fit:           t.Fit,
		UnknownValues: t.UnknownValues,
		Zeros:         make([]int, len(t.Votes)),
		Ones:          make([]int, len(t.Votes)),
		Last:          make([]byte, len(t.Last)),
	}
	for i, v := range t.Votes {
		w.Zeros[i] = v.Zeros
		w.Ones[i] = v.Ones
	}
	copy(w.Last, t.Last)
	return w
}

// Tally deserializes w, validating shape and value ranges — wire input
// crosses trust boundaries, and a malformed partial must fail the shard
// rather than corrupt (or panic) the merged audit. The returned tally
// shares no memory with w.
func (w TallyWire) Tally() (*Tally, error) {
	if len(w.Zeros) != len(w.Ones) || len(w.Zeros) != len(w.Last) {
		return nil, fmt.Errorf("mark: tally wire arrays disagree: %d zeros, %d ones, %d last",
			len(w.Zeros), len(w.Ones), len(w.Last))
	}
	if w.Rows < 0 || w.Fit < 0 || w.UnknownValues < 0 {
		return nil, fmt.Errorf("mark: negative tally counters (rows=%d, fit=%d, unknown=%d)",
			w.Rows, w.Fit, w.UnknownValues)
	}
	t := &Tally{
		Rows:          w.Rows,
		Fit:           w.Fit,
		UnknownValues: w.UnknownValues,
		Votes:         make([]ecc.VoteTally, len(w.Zeros)),
		Last:          make([]uint8, len(w.Last)),
	}
	for i := range w.Zeros {
		if w.Zeros[i] < 0 || w.Ones[i] < 0 {
			return nil, fmt.Errorf("mark: negative vote count at position %d", i)
		}
		t.Votes[i] = ecc.VoteTally{Zeros: w.Zeros[i], Ones: w.Ones[i]}
		switch w.Last[i] {
		case ecc.Zero, ecc.One, ecc.Erased:
			t.Last[i] = w.Last[i]
		default:
			return nil, fmt.Errorf("mark: invalid last-vote byte %#x at position %d", w.Last[i], i)
		}
	}
	return t, nil
}

// Bandwidth reports the wire tally's position count — what the receiver
// checks against its scanner's bandwidth before merging.
func (w TallyWire) Bandwidth() int { return len(w.Zeros) }
