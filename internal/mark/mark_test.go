package mark

import (
	"errors"
	"strconv"
	"testing"

	"repro/internal/datagen"
	"repro/internal/ecc"
	"repro/internal/keyhash"
	"repro/internal/quality"
	"repro/internal/relation"
	"repro/internal/stats"
)

func testOptions(dom *relation.Domain) Options {
	return Options{
		Attr:   "Item_Nbr",
		K1:     keyhash.NewKey("test-k1"),
		K2:     keyhash.NewKey("test-k2"),
		E:      30,
		Domain: dom,
	}
}

func testData(t *testing.T, n int) (*relation.Relation, *relation.Domain) {
	t.Helper()
	r, dom, err := datagen.ItemScan(datagen.ItemScanConfig{
		N: n, CatalogSize: 200, ZipfS: 1.0, Seed: "mark-test",
	})
	if err != nil {
		t.Fatal(err)
	}
	return r, dom
}

func TestEmbedDetectRoundTrip(t *testing.T) {
	r, dom := testData(t, 6000)
	opts := testOptions(dom)
	wm := ecc.MustParseBits("1011001110")

	st, err := Embed(r, wm, opts)
	if err != nil {
		t.Fatal(err)
	}
	if st.Fit == 0 || st.Altered == 0 {
		t.Fatalf("embedding did nothing: %+v", st)
	}
	rep, err := Detect(r, len(wm), opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.WM.String() != wm.String() {
		t.Fatalf("round trip: embedded %s, detected %s", wm, rep.WM)
	}
	if rep.MatchFraction(wm) != 1 {
		t.Fatalf("match fraction %v", rep.MatchFraction(wm))
	}
}

func TestEmbedFitRateMatchesE(t *testing.T) {
	r, dom := testData(t, 12000)
	opts := testOptions(dom)
	opts.E = 60
	wm := ecc.MustParseBits("1010101010")
	st, err := Embed(r, wm, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(r.Len()) / 60
	if f := float64(st.Fit); f < want*0.7 || f > want*1.3 {
		t.Fatalf("fit count %d, want ~%.0f", st.Fit, want)
	}
	// The paper: data alteration ≈ N/e tuples. Altered ≤ Fit, and most fit
	// tuples need an actual rewrite (only ~1/nA already hold the value).
	if st.Altered < st.Fit/2 {
		t.Fatalf("altered %d of %d fit — too few rewrites", st.Altered, st.Fit)
	}
}

func TestEmbedOnlyTouchesFitTuplesAndAttr(t *testing.T) {
	r, dom := testData(t, 4000)
	orig := r.Clone()
	opts := testOptions(dom)
	wm := ecc.MustParseBits("110010")
	if _, err := Embed(r, wm, opts); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < r.Len(); i++ {
		if r.Key(i) != orig.Key(i) {
			t.Fatal("embedding changed a primary key")
		}
		vNew, _ := r.Value(i, "Item_Nbr")
		vOld, _ := orig.Value(i, "Item_Nbr")
		if vNew != vOld {
			if !keyhash.FitKey(opts.K1, r.Key(i), opts.E) {
				t.Fatalf("non-fit tuple %d was altered", i)
			}
			if !dom.Contains(vNew) {
				t.Fatalf("altered value %q outside domain", vNew)
			}
		}
	}
}

// The parity invariant: after embedding, every fit tuple's value index
// parity equals its assigned wm_data bit.
func TestEmbedParityInvariant(t *testing.T) {
	r, dom := testData(t, 5000)
	opts := testOptions(dom)
	wm := ecc.MustParseBits("1011001110")
	if _, err := Embed(r, wm, opts); err != nil {
		t.Fatal(err)
	}
	bw := Bandwidth(r.Len(), opts.E)
	wmData, err := ecc.MajorityCode{}.Encode(wm, bw)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < r.Len(); i++ {
		key := r.Key(i)
		if !keyhash.FitKey(opts.K1, key, opts.E) {
			continue
		}
		v, _ := r.Value(i, "Item_Nbr")
		idx, ok := dom.Index(v)
		if !ok {
			t.Fatalf("fit tuple %d value %q outside domain", i, v)
		}
		pos := int(keyhash.HashString(opts.K2, key).Mod(uint64(bw)))
		if uint8(idx&1) != wmData[pos] {
			t.Fatalf("tuple %d parity %d != wm_data[%d]=%d", i, idx&1, pos, wmData[pos])
		}
	}
}

func TestDetectWrongKeysYieldsGarbage(t *testing.T) {
	r, dom := testData(t, 6000)
	opts := testOptions(dom)
	wm := ecc.MustParseBits("1011001110")
	if _, err := Embed(r, wm, opts); err != nil {
		t.Fatal(err)
	}
	bad := opts
	bad.K1 = keyhash.NewKey("wrong-1")
	bad.K2 = keyhash.NewKey("wrong-2")
	rep, err := Detect(r, len(wm), bad)
	if err != nil {
		t.Fatal(err)
	}
	// With wrong keys the detector reads random parities: expect roughly
	// half the bits to match, never all of them.
	if rep.MatchFraction(wm) == 1 {
		t.Fatal("wrong keys recovered the exact watermark")
	}
}

func TestDetectIsBlind(t *testing.T) {
	// Detection must work on the watermarked relation alone — this test
	// discards the original entirely and reconstructs options from scratch.
	r, dom := testData(t, 6000)
	wm := ecc.MustParseBits("0110110001")
	embedOpts := testOptions(dom)
	if _, err := Embed(r, wm, embedOpts); err != nil {
		t.Fatal(err)
	}
	freshOpts := Options{
		Attr:   "Item_Nbr",
		K1:     keyhash.NewKey("test-k1"),
		K2:     keyhash.NewKey("test-k2"),
		E:      30,
		Domain: dom,
	}
	rep, err := Detect(r, len(wm), freshOpts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.WM.String() != wm.String() {
		t.Fatalf("blind detection failed: %s vs %s", wm, rep.WM)
	}
}

func TestDetectSurvivesResorting(t *testing.T) {
	// Attack A4: tuple order must be irrelevant.
	r, dom := testData(t, 6000)
	opts := testOptions(dom)
	wm := ecc.MustParseBits("1011001110")
	if _, err := Embed(r, wm, opts); err != nil {
		t.Fatal(err)
	}
	r.Shuffle(stats.NewSource("resort-attack"))
	rep, err := Detect(r, len(wm), opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.WM.String() != wm.String() {
		t.Fatalf("re-sorting broke detection: %s vs %s", wm, rep.WM)
	}
	if err := r.SortBy("Item_Nbr"); err != nil {
		t.Fatal(err)
	}
	rep, err = Detect(r, len(wm), opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.WM.String() != wm.String() {
		t.Fatal("sorting by attribute broke detection")
	}
}

func TestDetectSurvivesSubsetSelection(t *testing.T) {
	// Attack A1: keep a random half; positions computed against the
	// embedding-time bandwidth.
	r, dom := testData(t, 12000)
	opts := testOptions(dom)
	wm := ecc.MustParseBits("1011001110")
	if _, err := Embed(r, wm, opts); err != nil {
		t.Fatal(err)
	}
	bw := Bandwidth(r.Len(), opts.E)
	src := stats.NewSource("subset-attack")
	keep := src.Sample(r.Len(), r.Len()/2)
	sub, err := r.SelectRows(keep)
	if err != nil {
		t.Fatal(err)
	}
	detOpts := opts
	detOpts.BandwidthOverride = bw
	rep, err := Detect(sub, len(wm), detOpts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.WM.String() != wm.String() {
		t.Fatalf("50%% data loss broke detection: %s vs %s", wm, rep.WM)
	}
}

func TestDetectSurvivesDataAddition(t *testing.T) {
	// Attack A2: append unmarked tuples equal to 30% of the data.
	r, dom := testData(t, 8000)
	opts := testOptions(dom)
	wm := ecc.MustParseBits("1011001110")
	if _, err := Embed(r, wm, opts); err != nil {
		t.Fatal(err)
	}
	bw := Bandwidth(r.Len(), opts.E)
	src := stats.NewSource("addition-attack")
	zipf := stats.NewZipf(dom.Size(), 1.0)
	for i := 0; i < 2400; i++ {
		r.MustAppend(relation.Tuple{
			strconv.Itoa(9_000_000 + i),
			dom.Value(zipf.Sample(src)),
		})
	}
	detOpts := opts
	detOpts.BandwidthOverride = bw
	rep, err := Detect(r, len(wm), detOpts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MatchFraction(wm) < 0.9 {
		t.Fatalf("30%% data addition degraded match to %v", rep.MatchFraction(wm))
	}
}

func TestEmbedErrors(t *testing.T) {
	r, dom := testData(t, 1000)
	wm := ecc.MustParseBits("1010")

	cases := []struct {
		name   string
		mutate func(o *Options)
		wm     ecc.Bits
	}{
		{"empty k1", func(o *Options) { o.K1 = nil }, wm},
		{"empty k2", func(o *Options) { o.K2 = nil }, wm},
		{"same keys", func(o *Options) { o.K2 = o.K1 }, wm},
		{"zero e", func(o *Options) { o.E = 0 }, wm},
		{"no attr", func(o *Options) { o.Attr = "" }, wm},
		{"bad attr", func(o *Options) { o.Attr = "ghost" }, wm},
		{"key==attr", func(o *Options) { o.KeyAttr = "Item_Nbr" }, wm},
		{"bad key attr", func(o *Options) { o.KeyAttr = "ghost" }, wm},
		{"empty wm", func(o *Options) {}, ecc.Bits{}},
	}
	for _, c := range cases {
		opts := testOptions(dom)
		c.mutate(&opts)
		if _, err := Embed(r.Clone(), c.wm, opts); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestEmbedInsufficientBandwidth(t *testing.T) {
	r, dom := testData(t, 300)
	opts := testOptions(dom)
	opts.E = 100 // bandwidth 3 < 4 wm bits
	_, err := Embed(r, ecc.MustParseBits("1010"), opts)
	if !errors.Is(err, ErrInsufficientBandwidth) {
		t.Fatalf("error %v, want ErrInsufficientBandwidth", err)
	}
}

func TestEmbedTinyDomain(t *testing.T) {
	s := relation.MustSchema([]relation.Attribute{
		{Name: "k", Type: relation.TypeInt},
		{Name: "a", Type: relation.TypeString, Categorical: true},
	}, "k")
	r := relation.New(s)
	for i := 0; i < 500; i++ {
		r.MustAppend(relation.Tuple{strconv.Itoa(i), "only"})
	}
	opts := Options{
		Attr: "a", K1: keyhash.NewKey("a"), K2: keyhash.NewKey("b"), E: 10,
	}
	_, err := Embed(r, ecc.MustParseBits("101"), opts)
	if !errors.Is(err, ErrDomainTooSmall) {
		t.Fatalf("error %v, want ErrDomainTooSmall", err)
	}
}

func TestDetectErrors(t *testing.T) {
	r, dom := testData(t, 1000)
	opts := testOptions(dom)
	if _, err := Detect(r, 0, opts); err == nil {
		t.Error("zero wmLen accepted")
	}
	opts2 := opts
	opts2.E = 500 // bandwidth 2
	if _, err := Detect(r, 10, opts2); !errors.Is(err, ErrInsufficientBandwidth) {
		t.Errorf("bandwidth error = %v", err)
	}
}

func TestEmbedWithQualityBudget(t *testing.T) {
	r, dom := testData(t, 6000)
	opts := testOptions(dom)
	// Budget of 10 alterations: embedding must stop altering after 10 and
	// count the rest as quality-skipped.
	opts.Assessor = quality.NewAssessor(quality.MaxAlterations(10))
	wm := ecc.MustParseBits("1010")
	st, err := Embed(r, wm, opts)
	if err != nil {
		t.Fatal(err)
	}
	if st.Altered != 10 {
		t.Fatalf("altered %d, want exactly 10", st.Altered)
	}
	if st.SkippedQuality == 0 {
		t.Fatal("no quality skips recorded")
	}
}

func TestEmbedQualityRollbackRestoresData(t *testing.T) {
	r, dom := testData(t, 3000)
	orig := r.Clone()
	opts := testOptions(dom)
	assessor := quality.NewAssessor()
	opts.Assessor = assessor
	wm := ecc.MustParseBits("110011")
	if _, err := Embed(r, wm, opts); err != nil {
		t.Fatal(err)
	}
	if r.Equal(orig) {
		t.Fatal("embedding changed nothing")
	}
	if err := assessor.UndoAll(r); err != nil {
		t.Fatal(err)
	}
	if !r.Equal(orig) {
		t.Fatal("rollback log failed to restore the original relation")
	}
}

func TestEmbedSkipRowLedger(t *testing.T) {
	r, dom := testData(t, 4000)
	opts := testOptions(dom)
	skip := map[int]bool{}
	var altered []int
	opts.OnAlter = func(row int) { altered = append(altered, row) }
	wm := ecc.MustParseBits("1100")
	if _, err := Embed(r, wm, opts); err != nil {
		t.Fatal(err)
	}
	for _, row := range altered {
		skip[row] = true
	}
	// Re-embed with a different watermark, skipping previously altered
	// rows: none of them may change again.
	snapshot := r.Clone()
	opts2 := opts
	opts2.K1 = keyhash.NewKey("second-k1")
	opts2.K2 = keyhash.NewKey("second-k2")
	opts2.SkipRow = func(row int) bool { return skip[row] }
	opts2.OnAlter = nil
	st, err := Embed(r, ecc.MustParseBits("0011"), opts2)
	if err != nil {
		t.Fatal(err)
	}
	for row := range skip {
		v1, _ := snapshot.Value(row, "Item_Nbr")
		v2, _ := r.Value(row, "Item_Nbr")
		if v1 != v2 {
			t.Fatalf("ledgered row %d was re-altered", row)
		}
	}
	if st.SkippedLedger == 0 {
		// Only fails if no fit tuple of pass 2 was in the ledger — with
		// N=4000, e=30 the overlap expectation is ~4; allow but note.
		t.Logf("note: no ledger overlap occurred in this configuration")
	}
}

func TestVoteAggregationString(t *testing.T) {
	if MajorityVote.String() != "majority" || LastWriteWins.String() != "last-write" {
		t.Fatal("aggregation names wrong")
	}
}

func TestDetectLastWriteWins(t *testing.T) {
	// The paper-literal aggregation still round-trips cleanly with no
	// attack (all votes for a position agree by construction).
	r, dom := testData(t, 6000)
	opts := testOptions(dom)
	wm := ecc.MustParseBits("1011001110")
	if _, err := Embed(r, wm, opts); err != nil {
		t.Fatal(err)
	}
	opts.Aggregation = LastWriteWins
	rep, err := Detect(r, len(wm), opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.WM.String() != wm.String() {
		t.Fatalf("last-write aggregation: %s vs %s", wm, rep.WM)
	}
}

func TestEmbedDeterministic(t *testing.T) {
	r1, dom := testData(t, 3000)
	r2 := r1.Clone()
	opts := testOptions(dom)
	wm := ecc.MustParseBits("10110")
	if _, err := Embed(r1, wm, opts); err != nil {
		t.Fatal(err)
	}
	if _, err := Embed(r2, wm, opts); err != nil {
		t.Fatal(err)
	}
	if !r1.Equal(r2) {
		t.Fatal("embedding is not deterministic")
	}
}

func TestEmbedIdempotent(t *testing.T) {
	// Re-embedding the same watermark with the same keys must be a no-op:
	// every fit tuple already carries the right parity.
	r, dom := testData(t, 3000)
	opts := testOptions(dom)
	wm := ecc.MustParseBits("10110")
	if _, err := Embed(r, wm, opts); err != nil {
		t.Fatal(err)
	}
	st, err := Embed(r, wm, opts)
	if err != nil {
		t.Fatal(err)
	}
	if st.Altered != 0 {
		t.Fatalf("second embedding altered %d tuples, want 0", st.Altered)
	}
	if st.Unchanged != st.Fit {
		t.Fatalf("unchanged %d != fit %d", st.Unchanged, st.Fit)
	}
}
