package mark

import (
	"strconv"
	"testing"

	"repro/internal/ecc"
	"repro/internal/keyhash"
	"repro/internal/relation"
)

func TestAddTuplesCarryWatermark(t *testing.T) {
	r, dom := testData(t, 6000)
	opts := testOptions(dom)
	wm := ecc.MustParseBits("1011001110")
	if _, err := Embed(r, wm, opts); err != nil {
		t.Fatal(err)
	}
	bw := Bandwidth(r.Len(), opts.E)

	addOpts := opts
	addOpts.BandwidthOverride = bw
	st, err := AddTuples(r, wm, 200, SequentialKeys(5_000_000), "add-test", addOpts, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st.Added != 200 {
		t.Fatalf("added %d, want 200", st.Added)
	}
	// Rejection sampling should try ≈ e per hit (plus non-fit skips).
	if st.CandidatesTried < 200 || st.CandidatesTried > 200*int(opts.E)*10 {
		t.Fatalf("candidates tried %d implausible for e=%d", st.CandidatesTried, opts.E)
	}
	// Every added tuple is fit and parity-correct.
	wmData, _ := ecc.MajorityCode{}.Encode(wm, bw)
	for i := r.Len() - 200; i < r.Len(); i++ {
		key := r.Key(i)
		if !keyhash.FitKey(opts.K1, key, opts.E) {
			t.Fatalf("added tuple %d not fit", i)
		}
		v, _ := r.Value(i, "Item_Nbr")
		idx, ok := dom.Index(v)
		if !ok {
			t.Fatalf("added tuple value %q outside domain", v)
		}
		pos := int(keyhash.HashString(opts.K2, key).Mod(uint64(bw)))
		if uint8(idx&1) != wmData[pos] {
			t.Fatalf("added tuple %d parity mismatch", i)
		}
	}
	// Detection on the enlarged relation still recovers the watermark.
	detOpts := opts
	detOpts.BandwidthOverride = bw
	rep, err := Detect(r, len(wm), detOpts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.WM.String() != wm.String() {
		t.Fatalf("post-addition detection: %s vs %s", wm, rep.WM)
	}
}

func TestAddTuplesReinforcesAgainstLoss(t *testing.T) {
	// Section 4.6: p_add·N extra bits strengthen the mark. Verify added
	// tuples vote correctly by detecting on the added tuples alone.
	r, dom := testData(t, 6000)
	opts := testOptions(dom)
	wm := ecc.MustParseBits("10110011")
	if _, err := Embed(r, wm, opts); err != nil {
		t.Fatal(err)
	}
	bw := Bandwidth(r.Len(), opts.E)
	n0 := r.Len()
	addOpts := opts
	addOpts.BandwidthOverride = bw
	if _, err := AddTuples(r, wm, 300, SequentialKeys(7_000_000), "reinforce", addOpts, 0); err != nil {
		t.Fatal(err)
	}
	onlyAdded := r.Filter(func(i int, _ relation.Tuple) bool { return i >= n0 })
	detOpts := opts
	detOpts.BandwidthOverride = bw
	rep, err := Detect(onlyAdded, len(wm), detOpts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MatchFraction(wm) < 0.85 {
		t.Fatalf("added-only detection match %v", rep.MatchFraction(wm))
	}
}

func TestAddTuplesZero(t *testing.T) {
	r, dom := testData(t, 2000)
	opts := testOptions(dom)
	st, err := AddTuples(r, ecc.MustParseBits("1010"), 0, SequentialKeys(1), "z", opts, 0)
	if err != nil || st.Added != 0 {
		t.Fatalf("zero addition: %+v, %v", st, err)
	}
}

func TestAddTuplesErrors(t *testing.T) {
	r, dom := testData(t, 2000)
	opts := testOptions(dom)
	if _, err := AddTuples(r, ecc.MustParseBits("1010"), -1, SequentialKeys(1), "n", opts, 0); err == nil {
		t.Error("negative count accepted")
	}
	if _, err := AddTuples(r, ecc.Bits{}, 5, SequentialKeys(1), "n", opts, 0); err == nil {
		t.Error("empty wm accepted")
	}
	// Exhausted attempts: a minter that always collides.
	stuck := func(int) string { return r.Key(0) }
	if _, err := AddTuples(r, ecc.MustParseBits("1010"), 5, stuck, "n", opts, 50); err == nil {
		t.Error("stuck minter did not error")
	}
}

func TestSequentialKeys(t *testing.T) {
	m := SequentialKeys(100)
	if m(0) != "100" || m(5) != "105" {
		t.Fatalf("minter output %s, %s", m(0), m(5))
	}
}

func TestInsertWatermarkedFitTuple(t *testing.T) {
	r, dom := testData(t, 6000)
	opts := testOptions(dom)
	wm := ecc.MustParseBits("1011001110")
	if _, err := Embed(r, wm, opts); err != nil {
		t.Fatal(err)
	}
	bw := Bandwidth(r.Len(), opts.E)
	insOpts := opts
	insOpts.BandwidthOverride = bw

	// Find a fit key not in the relation.
	var fitKey, unfitKey string
	for i := 0; fitKey == "" || unfitKey == ""; i++ {
		k := strconv.Itoa(8_000_000 + i)
		if keyhash.FitKey(opts.K1, k, opts.E) {
			if fitKey == "" {
				fitKey = k
			}
		} else if unfitKey == "" {
			unfitKey = k
		}
	}

	marked, err := InsertWatermarked(r, relation.Tuple{fitKey, dom.Value(0)}, wm, insOpts)
	if err != nil {
		t.Fatal(err)
	}
	if !marked {
		t.Fatal("fit tuple not marked")
	}
	// Inserted fit tuple carries the right parity.
	i, _ := r.Lookup(fitKey)
	v, _ := r.Value(i, "Item_Nbr")
	idx, _ := dom.Index(v)
	wmData, _ := ecc.MajorityCode{}.Encode(wm, bw)
	pos := int(keyhash.HashString(opts.K2, fitKey).Mod(uint64(bw)))
	if uint8(idx&1) != wmData[pos] {
		t.Fatal("inserted tuple parity mismatch")
	}

	marked, err = InsertWatermarked(r, relation.Tuple{unfitKey, dom.Value(3)}, wm, insOpts)
	if err != nil {
		t.Fatal(err)
	}
	if marked {
		t.Fatal("unfit tuple reported as marked")
	}
	j, _ := r.Lookup(unfitKey)
	if v, _ := r.Value(j, "Item_Nbr"); v != dom.Value(3) {
		t.Fatal("unfit tuple's value was rewritten")
	}
}

func TestInsertWatermarkedArityError(t *testing.T) {
	r, dom := testData(t, 2000)
	opts := testOptions(dom)
	if _, err := InsertWatermarked(r, relation.Tuple{"1"}, ecc.MustParseBits("1010"), opts); err == nil {
		t.Fatal("bad arity accepted")
	}
}

// End-to-end incremental scenario: watermark, then stream inserts through
// InsertWatermarked; detection still recovers the mark.
func TestIncrementalUpdatesPreserveMark(t *testing.T) {
	r, dom := testData(t, 6000)
	opts := testOptions(dom)
	wm := ecc.MustParseBits("1011001110")
	if _, err := Embed(r, wm, opts); err != nil {
		t.Fatal(err)
	}
	bw := Bandwidth(r.Len(), opts.E)
	insOpts := opts
	insOpts.BandwidthOverride = bw
	for i := 0; i < 1000; i++ {
		tuple := relation.Tuple{strconv.Itoa(6_500_000 + i), dom.Value(i % dom.Size())}
		if _, err := InsertWatermarked(r, tuple, wm, insOpts); err != nil {
			t.Fatal(err)
		}
	}
	detOpts := opts
	detOpts.BandwidthOverride = bw
	rep, err := Detect(r, len(wm), detOpts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.WM.String() != wm.String() {
		t.Fatalf("incremental inserts broke the mark: %s vs %s", wm, rep.WM)
	}
}
