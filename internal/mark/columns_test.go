package mark

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/keyhash"
	"repro/internal/relation"
)

// fillBlock loads rows [lo, hi) of r into a columnar block.
func fillBlock(blk *relation.Block, r *relation.Relation, lo, hi int) {
	blk.Reset(r.Schema())
	for j := lo; j < hi; j++ {
		blk.AppendTuple(r.Tuple(j))
	}
}

// TestScanColumnsMatchesScanBlock is the columnar equivalence property:
// for random relations and random partitions (size-1 blocks and ragged
// tails included), ScanColumns over columnar blocks accumulates exactly
// the tally — and exactly the report, under both vote aggregations —
// that ScanBlock and the ScanTuple loop produce.
func TestScanColumnsMatchesScanBlock(t *testing.T) {
	for trial := 0; trial < 6; trial++ {
		rng := rand.New(rand.NewSource(int64(700 + trial)))
		n := 1 + rng.Intn(3000)
		r := blockTestRelation(t, n, int64(50+trial))
		for _, agg := range []VoteAggregation{MajorityVote, LastWriteWins} {
			for _, kind := range []keyhash.KernelKind{keyhash.KernelAuto, keyhash.KernelPortable} {
				opts := Options{
					Attr: "cat", K1: keyhash.NewKey("col-k1"), K2: keyhash.NewKey("col-k2"),
					E: 3, Aggregation: agg, Domain: blockTestDomain(t),
					BandwidthOverride: 40, HashKernel: kind,
				}
				sc, err := NewScanner(r, 10, opts)
				if err != nil {
					t.Fatal(err)
				}

				want := sc.NewTally()
				for j := 0; j < r.Len(); j++ {
					sc.ScanTuple(r.Tuple(j), want)
				}

				got := sc.NewTally()
				var bs BlockScratch
				blk := relation.GetBlock(r.Schema())
				for _, p := range randomPartition(rng, r.Len()) {
					fillBlock(blk, r, p[0], p[1])
					if err := sc.ScanColumns(blk, got, &bs); err != nil {
						t.Fatal(err)
					}
				}
				relation.PutBlock(blk)
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("trial %d agg %v kernel %q: ScanColumns tally diverged from ScanTuple loop", trial, agg, kind)
				}

				wantRep, err1 := sc.Report(want)
				gotRep, err2 := sc.Report(got)
				if (err1 == nil) != (err2 == nil) || !reflect.DeepEqual(wantRep, gotRep) {
					t.Fatalf("trial %d agg %v kernel %q: report diverged", trial, agg, kind)
				}
			}
		}
	}
}

// TestScanColumnsInterleavedWithScanBlock alternates the columnar and
// row-range entry points through ONE scratch — a pooled block between
// two row ranges and vice versa — proving the identity tracking
// invalidates across modes instead of replaying a stale memo.
func TestScanColumnsInterleavedWithScanBlock(t *testing.T) {
	r := blockTestRelation(t, 2000, 31)
	opts := Options{
		Attr: "cat", K1: keyhash.NewKey("mix-k1"), K2: keyhash.NewKey("mix-k2"),
		E: 3, Domain: blockTestDomain(t), BandwidthOverride: 32,
	}
	sc, err := NewScanner(r, 8, opts)
	if err != nil {
		t.Fatal(err)
	}
	want := sc.NewTally()
	if err := sc.Scan(r, 0, r.Len(), want); err != nil {
		t.Fatal(err)
	}

	got := sc.NewTally()
	var bs BlockScratch
	blk := relation.GetBlock(r.Schema())
	rng := rand.New(rand.NewSource(33))
	for i, p := range randomPartition(rng, r.Len()) {
		if i%2 == 0 {
			fillBlock(blk, r, p[0], p[1])
			if err := sc.ScanColumns(blk, got, &bs); err != nil {
				t.Fatal(err)
			}
		} else {
			if err := sc.ScanBlock(r, p[0], p[1], got, &bs); err != nil {
				t.Fatal(err)
			}
		}
	}
	relation.PutBlock(blk)
	if !reflect.DeepEqual(want, got) {
		t.Fatal("interleaved ScanColumns/ScanBlock diverged from sequential scan")
	}
}

// TestScanColumnsSharedScratchAcrossScanners proves lane sharing holds
// on the columnar path too: scanners sharing a fitness key replay each
// other's HashColumn digests through one scratch, and a block refilled
// in place (same pointer, bumped generation) is re-hashed, not replayed.
func TestScanColumnsSharedScratchAcrossScanners(t *testing.T) {
	r := blockTestRelation(t, 1500, 13)
	dom := blockTestDomain(t)
	newOpts := func(k1, k2 string) Options {
		return Options{
			Attr: "cat", K1: keyhash.NewKey(k1), K2: keyhash.NewKey(k2),
			E: 3, Domain: dom, BandwidthOverride: 32,
		}
	}
	optsList := []Options{
		newOpts("colowner-a", "colowner-a2"),
		newOpts("colowner-a", "colother-k2"), // shares the k1 memo lane with the first
		newOpts("colowner-b", "colowner-b2"),
	}
	scanners := make([]*Scanner, len(optsList))
	want := make([]*Tally, len(optsList))
	for i, o := range optsList {
		sc, err := NewScanner(r, 8, o)
		if err != nil {
			t.Fatal(err)
		}
		scanners[i] = sc
		want[i] = sc.NewTally()
		if err := sc.Scan(r, 0, r.Len(), want[i]); err != nil {
			t.Fatal(err)
		}
	}

	got := make([]*Tally, len(scanners))
	for i, sc := range scanners {
		got[i] = sc.NewTally()
	}
	var bs BlockScratch
	blk := relation.GetBlock(r.Schema()) // one block, refilled per partition
	rng := rand.New(rand.NewSource(14))
	for _, p := range randomPartition(rng, r.Len()) {
		fillBlock(blk, r, p[0], p[1])
		for i, sc := range scanners {
			if err := sc.ScanColumns(blk, got[i], &bs); err != nil {
				t.Fatal(err)
			}
		}
	}
	relation.PutBlock(blk)
	for i := range scanners {
		if !reflect.DeepEqual(want[i], got[i]) {
			t.Fatalf("scanner %d: shared-scratch columnar tally diverged from solo scan", i)
		}
	}
}

// TestScanColumnsSteadyStateAllocs pins the tentpole invariant at the
// codec layer: once the scratch is warm, scanning pooled columnar
// blocks performs zero allocations per block, and therefore per row.
func TestScanColumnsSteadyStateAllocs(t *testing.T) {
	r := blockTestRelation(t, 1024, 17)
	opts := Options{
		Attr: "cat", K1: keyhash.NewKey("al-k1"), K2: keyhash.NewKey("al-k2"),
		E: 2, Domain: blockTestDomain(t), BandwidthOverride: 32,
	}
	sc, err := NewScanner(r, 8, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Two distinct blocks so every scan re-keys the memo (pointer or
	// generation changes) instead of replaying the previous call.
	blkA := relation.GetBlock(r.Schema())
	blkB := relation.GetBlock(r.Schema())
	fillBlock(blkA, r, 0, 512)
	fillBlock(blkB, r, 512, 1024)
	tally := sc.NewTally()
	var bs BlockScratch
	scanBoth := func() {
		if err := sc.ScanColumns(blkA, tally, &bs); err != nil {
			t.Fatal(err)
		}
		if err := sc.ScanColumns(blkB, tally, &bs); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ { // warm the scratch, memo lanes and staging
		scanBoth()
	}
	if allocs := testing.AllocsPerRun(50, scanBoth); allocs != 0 {
		t.Fatalf("steady-state ScanColumns allocates: %.1f allocs per 2-block scan", allocs)
	}
	relation.PutBlock(blkA)
	relation.PutBlock(blkB)
}

// TestScanColumnsArityGuard pins the error for a block missing the
// scanner's columns.
func TestScanColumnsArityGuard(t *testing.T) {
	r := blockTestRelation(t, 10, 3)
	opts := Options{
		Attr: "cat", K1: keyhash.NewKey("ag-k1"), K2: keyhash.NewKey("ag-k2"),
		E: 2, Domain: blockTestDomain(t), BandwidthOverride: 16,
	}
	sc, err := NewScanner(r, 8, opts)
	if err != nil {
		t.Fatal(err)
	}
	narrow := relation.MustSchema([]relation.Attribute{
		{Name: "id", Type: relation.TypeString},
	}, "id")
	blk := relation.GetBlock(narrow)
	if err := sc.ScanColumns(blk, sc.NewTally(), nil); err == nil {
		t.Fatal("expected arity error for a block lacking the attribute column")
	}
	relation.PutBlock(blk)
}
