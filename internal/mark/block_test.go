package mark

import (
	"fmt"
	"math/rand"
	"reflect"
	"strconv"
	"testing"

	"repro/internal/ecc"
	"repro/internal/keyhash"
	"repro/internal/relation"
)

// blockTestRelation builds a relation with a mix of in-domain, unknown
// and repeated categorical values so every ScanBlock branch (vote,
// unknown value, unfit) is exercised.
func blockTestRelation(t testing.TB, n int, seed int64) *relation.Relation {
	t.Helper()
	schema := relation.MustSchema([]relation.Attribute{
		{Name: "id", Type: relation.TypeString},
		{Name: "cat", Type: relation.TypeString, Categorical: true},
	}, "id")
	r := relation.New(schema)
	rng := rand.New(rand.NewSource(seed))
	values := []string{"a", "b", "c", "d", "e", "f", "zz-unknown"}
	for i := 0; i < n; i++ {
		id := strconv.FormatInt(seed, 10) + "-" + strconv.Itoa(rng.Intn(1<<30)) + "-" + strconv.Itoa(i)
		r.MustAppend(relation.Tuple{id, values[rng.Intn(len(values))]})
	}
	return r
}

// blockTestDomain is the scan-side catalog; "zz-unknown" stays outside
// it so some fit tuples cast no vote.
func blockTestDomain(t testing.TB) *relation.Domain {
	t.Helper()
	dom, err := relation.NewDomain([]string{"a", "b", "c", "d", "e", "f"})
	if err != nil {
		t.Fatal(err)
	}
	return dom
}

// randomPartition splits [0, n) into contiguous ranges of random sizes,
// always including some size-1 blocks and a ragged tail.
func randomPartition(rng *rand.Rand, n int) [][2]int {
	var parts [][2]int
	lo := 0
	for lo < n {
		var size int
		switch rng.Intn(4) {
		case 0:
			size = 1
		case 1:
			size = 1 + rng.Intn(7)
		default:
			size = 1 + rng.Intn(200)
		}
		hi := min(lo+size, n)
		parts = append(parts, [2]int{lo, hi})
		lo = hi
	}
	return parts
}

// TestScanBlockMatchesScanTuple is the block-engine equivalence
// property: for random relations and random block partitions (block
// size 1 and ragged tails included), ScanBlock accumulates exactly the
// tally — and therefore exactly the report, under both vote
// aggregations — that the ScanTuple loop produces.
func TestScanBlockMatchesScanTuple(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		n := 1 + rng.Intn(3000)
		r := blockTestRelation(t, n, int64(trial))
		for _, agg := range []VoteAggregation{MajorityVote, LastWriteWins} {
			for _, kind := range []keyhash.KernelKind{keyhash.KernelAuto, keyhash.KernelPortable} {
				opts := Options{
					Attr: "cat", K1: keyhash.NewKey("bk-k1"), K2: keyhash.NewKey("bk-k2"),
					E: 3, Aggregation: agg, Domain: blockTestDomain(t),
					BandwidthOverride: 40, HashKernel: kind,
				}
				sc, err := NewScanner(r, 10, opts)
				if err != nil {
					t.Fatal(err)
				}

				want := sc.NewTally()
				for j := 0; j < r.Len(); j++ {
					sc.ScanTuple(r.Tuple(j), want)
				}

				got := sc.NewTally()
				var bs BlockScratch
				for _, p := range randomPartition(rng, r.Len()) {
					if err := sc.ScanBlock(r, p[0], p[1], got, &bs); err != nil {
						t.Fatal(err)
					}
				}
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("trial %d agg %v kernel %q: ScanBlock tally diverged from ScanTuple loop", trial, agg, kind)
				}

				wantRep, err1 := sc.Report(want)
				gotRep, err2 := sc.Report(got)
				if (err1 == nil) != (err2 == nil) || !reflect.DeepEqual(wantRep, gotRep) {
					t.Fatalf("trial %d agg %v kernel %q: report diverged", trial, agg, kind)
				}
			}
		}
	}
}

// TestScanBlockSizeOneIsScanTuple pins the special case the API doc
// promises: a size-1 block is exactly one ScanTuple call.
func TestScanBlockSizeOneIsScanTuple(t *testing.T) {
	r := blockTestRelation(t, 200, 7)
	opts := Options{
		Attr: "cat", K1: keyhash.NewKey("bk1-k1"), K2: keyhash.NewKey("bk1-k2"),
		E: 2, Domain: blockTestDomain(t), BandwidthOverride: 16,
	}
	sc, err := NewScanner(r, 8, opts)
	if err != nil {
		t.Fatal(err)
	}
	want, got := sc.NewTally(), sc.NewTally()
	var bs BlockScratch
	for j := 0; j < r.Len(); j++ {
		sc.ScanTuple(r.Tuple(j), want)
		if err := sc.ScanBlock(r, j, j+1, got, &bs); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("row %d: size-1 ScanBlock diverged from ScanTuple", j)
		}
	}
}

// TestScanBlockSharedScratchAcrossScanners proves scratch sharing is
// sound: many scanners — some sharing a fitness key (same memo lane),
// some not — sweeping the same blocks through ONE scratch produce the
// same tallies as each scanning alone with its own scratch.
func TestScanBlockSharedScratchAcrossScanners(t *testing.T) {
	r := blockTestRelation(t, 1500, 11)
	dom := blockTestDomain(t)
	newOpts := func(k1, k2 string) Options {
		return Options{
			Attr: "cat", K1: keyhash.NewKey(k1), K2: keyhash.NewKey(k2),
			E: 3, Domain: dom, BandwidthOverride: 32,
		}
	}
	optsList := []Options{
		newOpts("owner-a", "owner-a2"),
		newOpts("owner-a", "other-k2"), // shares the k1 memo lane with the first
		newOpts("owner-b", "owner-b2"),
	}
	scanners := make([]*Scanner, len(optsList))
	for i, o := range optsList {
		sc, err := NewScanner(r, 8, o)
		if err != nil {
			t.Fatal(err)
		}
		scanners[i] = sc
	}

	// Alone, fresh scratch each.
	want := make([]*Tally, len(scanners))
	for i, sc := range scanners {
		want[i] = sc.NewTally()
		if err := sc.Scan(r, 0, r.Len(), want[i]); err != nil {
			t.Fatal(err)
		}
	}

	// Together, one scratch, certificate-inner-loop-per-block.
	got := make([]*Tally, len(scanners))
	for i, sc := range scanners {
		got[i] = sc.NewTally()
	}
	var bs BlockScratch
	rng := rand.New(rand.NewSource(12))
	for _, p := range randomPartition(rng, r.Len()) {
		for i, sc := range scanners {
			if err := sc.ScanBlock(r, p[0], p[1], got[i], &bs); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := range scanners {
		if !reflect.DeepEqual(want[i], got[i]) {
			t.Fatalf("scanner %d: shared-scratch tally diverged from solo scan", i)
		}
	}
}

// TestEmbedBlockMatchesSizeOne is the embedding-side property: embedding
// through random block partitions yields the same relation bytes and the
// same merged statistics as the block-size-1 walk (the tuple-at-a-time
// special case), for both plain and ledger-gated embeddings.
func TestEmbedBlockMatchesSizeOne(t *testing.T) {
	wm := ecc.MustParseBits("1011001110")
	for trial := 0; trial < 6; trial++ {
		rng := rand.New(rand.NewSource(int64(300 + trial)))
		n := 50 + rng.Intn(2500)
		base := blockTestRelation(t, n, int64(40+trial))
		skip := func(row int) bool { return row%7 == 3 }
		for _, withLedger := range []bool{false, true} {
			opts := Options{
				Attr: "cat", K1: keyhash.NewKey("eb-k1"), K2: keyhash.NewKey("eb-k2"),
				E: 3, Domain: blockTestDomain(t), BandwidthOverride: 30,
			}
			if withLedger {
				opts.SkipRow = skip
			}

			// Oracle: block-size-1 walk.
			r1 := base.Clone()
			em1, err := NewEmbedder(r1, wm, opts)
			if err != nil {
				t.Fatal(err)
			}
			var cs1 ChunkStats
			var bs1 BlockScratch
			for j := 0; j < r1.Len(); j++ {
				if err := em1.EmbedBlock(r1, j, j+1, &cs1, &bs1); err != nil {
					t.Fatal(err)
				}
			}

			// Random partition through a shared scratch.
			r2 := base.Clone()
			em2, err := NewEmbedder(r2, wm, opts)
			if err != nil {
				t.Fatal(err)
			}
			var cs2 ChunkStats
			var bs2 BlockScratch
			for _, p := range randomPartition(rng, r2.Len()) {
				if err := em2.EmbedBlock(r2, p[0], p[1], &cs2, &bs2); err != nil {
					t.Fatal(err)
				}
			}

			if !r1.Equal(r2) {
				t.Fatalf("trial %d ledger=%v: block embedding altered different tuples", trial, withLedger)
			}
			if !reflect.DeepEqual(MergeChunks(cs1), MergeChunks(cs2)) {
				t.Fatalf("trial %d ledger=%v: stats diverged:\n one-row %+v\n blocks  %+v",
					trial, withLedger, MergeChunks(cs1), MergeChunks(cs2))
			}
		}
	}
}

// TestEmbedBlockOrderDependentLedger pins the hook-interleaving
// contract: a SkipRow that reads state OnAlter writes (here, an
// alteration budget that closes mid-pass) must observe exactly the
// sequential interleaving — SkipRow(j) after every earlier row's
// OnAlter — no matter how the rows are blocked.
func TestEmbedBlockOrderDependentLedger(t *testing.T) {
	wm := ecc.MustParseBits("1011001110")
	base := blockTestRelation(t, 2000, 21)
	embed := func(partitionSeed int64) (*relation.Relation, ChunkStats) {
		altered := 0
		opts := Options{
			Attr: "cat", K1: keyhash.NewKey("ol-k1"), K2: keyhash.NewKey("ol-k2"),
			E: 3, Domain: blockTestDomain(t), BandwidthOverride: 30,
			SkipRow: func(int) bool { return altered >= 25 }, // budget ledger
			OnAlter: func(int) { altered++ },
		}
		r := base.Clone()
		em, err := NewEmbedder(r, wm, opts)
		if err != nil {
			t.Fatal(err)
		}
		var cs ChunkStats
		var bs BlockScratch
		if partitionSeed < 0 { // the size-1 oracle
			for j := 0; j < r.Len(); j++ {
				if err := em.EmbedBlock(r, j, j+1, &cs, &bs); err != nil {
					t.Fatal(err)
				}
			}
			return r, cs
		}
		for _, p := range randomPartition(rand.New(rand.NewSource(partitionSeed)), r.Len()) {
			if err := em.EmbedBlock(r, p[0], p[1], &cs, &bs); err != nil {
				t.Fatal(err)
			}
		}
		return r, cs
	}

	wantRel, wantStats := embed(-1)
	if wantStats.SkippedLedger == 0 || wantStats.Altered != 25 {
		t.Fatalf("ledger never closed — test is vacuous: %+v", wantStats)
	}
	for seed := int64(0); seed < 4; seed++ {
		gotRel, gotStats := embed(seed)
		if !gotRel.Equal(wantRel) {
			t.Fatalf("seed %d: blocked embedding diverged from sequential under order-dependent ledger", seed)
		}
		if !reflect.DeepEqual(MergeChunks(gotStats), MergeChunks(wantStats)) {
			t.Fatalf("seed %d: stats diverged: %+v vs %+v", seed, MergeChunks(gotStats), MergeChunks(wantStats))
		}
	}
}

// FuzzScanBlockEquivalence lets the fuzzer pick the relation size, seed,
// fitness parameter and block partition seed, and re-checks the
// ScanBlock ≡ ScanTuple-loop property.
func FuzzScanBlockEquivalence(f *testing.F) {
	f.Add(int64(1), uint16(500), uint8(3), int64(2))
	f.Add(int64(9), uint16(1), uint8(1), int64(4))
	f.Add(int64(17), uint16(1024), uint8(60), int64(8))
	f.Fuzz(func(t *testing.T, seed int64, n uint16, e uint8, partSeed int64) {
		if n == 0 || e == 0 {
			t.Skip()
		}
		r := blockTestRelation(t, int(n), seed)
		opts := Options{
			Attr: "cat", K1: keyhash.NewKey("fz-k1"), K2: keyhash.NewKey("fz-k2"),
			E: uint64(e), Domain: blockTestDomain(t), BandwidthOverride: 24,
		}
		sc, err := NewScanner(r, 8, opts)
		if err != nil {
			t.Fatal(err)
		}
		want := sc.NewTally()
		for j := 0; j < r.Len(); j++ {
			sc.ScanTuple(r.Tuple(j), want)
		}
		got := sc.NewTally()
		var bs BlockScratch
		for _, p := range randomPartition(rand.New(rand.NewSource(partSeed)), r.Len()) {
			if err := sc.ScanBlock(r, p[0], p[1], got, &bs); err != nil {
				t.Fatal(err)
			}
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("n=%d e=%d: ScanBlock diverged from ScanTuple loop", n, e)
		}
	})
}

// BenchmarkScanBlock compares the tuple-at-a-time vote kernel against
// ScanBlock across block sizes — the microbenchmark behind the block
// engine's headline (the CI bench job tracks it).
func BenchmarkScanBlock(b *testing.B) {
	r := blockTestRelation(b, 100000, 1)
	opts := Options{
		Attr: "cat", K1: keyhash.NewKey("bench-k1"), K2: keyhash.NewKey("bench-k2"),
		E: 65, Domain: blockTestDomain(b), BandwidthOverride: 1500,
	}
	sc, err := NewScanner(r, 10, opts)
	if err != nil {
		b.Fatal(err)
	}
	n := r.Len()
	b.Run("tuple-loop", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tally := sc.NewTally()
			for j := 0; j < n; j++ {
				sc.ScanTuple(r.Tuple(j), tally)
			}
		}
		b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "tuples/s")
	})
	for _, block := range []int{64, 512, 4096} {
		b.Run(fmt.Sprintf("block=%d", block), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tally := sc.NewTally()
				var bs BlockScratch
				for lo := 0; lo < n; lo += block {
					if err := sc.ScanBlock(r, lo, min(lo+block, n), tally, &bs); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "tuples/s")
		})
	}
	// The columnar path: the same rows pre-packed into arena-backed
	// blocks, voted through ScanColumns — the ingestion pipeline's
	// steady state (zero allocations once the tally exists).
	for _, block := range []int{512, 4096} {
		var blks []*relation.Block
		for lo := 0; lo < n; lo += block {
			blk := relation.NewBlock(r.Schema())
			blk.Reset(r.Schema())
			for j := lo; j < min(lo+block, n); j++ {
				if err := blk.AppendTuple(r.Tuple(j)); err != nil {
					b.Fatal(err)
				}
			}
			blks = append(blks, blk)
		}
		b.Run(fmt.Sprintf("columns=%d", block), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tally := sc.NewTally()
				var bs BlockScratch
				for _, blk := range blks {
					if err := sc.ScanColumns(blk, tally, &bs); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "tuples/s")
		})
	}
}
