package mark

import (
	"errors"
	"fmt"
	"strconv"

	"repro/internal/ecc"
	"repro/internal/keyhash"
	"repro/internal/relation"
	"repro/internal/stats"
)

// This file implements the Section 4.6 data-addition channel and the
// Section 4.3 incremental-update hook.
//
// Data addition: instead of (or in addition to) altering existing tuples,
// mint new tuples whose keys satisfy the fitness criterion and whose
// categorical values carry watermark bits. The one-way hash does not
// prevent this: fitness only requires H(K;k1) ≡ 0 (mod e), a property one
// candidate key in e satisfies on average, so rejection sampling finds fit
// keys quickly. Added tuples conform to the attribute's empirical value
// distribution for stealthiness — their *pair choice* is drawn from the
// data's own histogram rather than uniformly.

// KeyMinter produces candidate primary-key values for synthetic tuples.
// Calls receive an increasing attempt counter; the minter must eventually
// produce values not present in the relation.
type KeyMinter func(attempt int) string

// SequentialKeys returns a KeyMinter yielding base+attempt as decimal
// strings — matching a sequence-allocated integer key column.
func SequentialKeys(base int) KeyMinter {
	return func(attempt int) string {
		return fmt.Sprintf("%d", base+attempt)
	}
}

// AdditionStats reports what AddTuples did.
type AdditionStats struct {
	// Added is the number of tuples appended.
	Added int
	// CandidatesTried is the number of minted keys tested for fitness
	// (≈ Added × e on average).
	CandidatesTried int
}

// AddTuples appends nAdd watermark-carrying fit tuples to r (Section 4.6).
// Non-watermarked attributes are sampled from r's empirical per-attribute
// value distributions; the watermarked attribute carries the correct
// wm_data bit for the minted key's position. The watermark wm must match
// the one embedded in r (same opts). maxAttempts bounds the rejection
// sampling (0 means 1000·e·nAdd).
//
// The effective bandwidth is computed from r's size *before* addition and
// should equal the embedding-time bandwidth; pass BandwidthOverride when
// the relation has changed size since embedding.
func AddTuples(r *relation.Relation, wm ecc.Bits, nAdd int, minter KeyMinter, seed string, opts Options, maxAttempts int) (AdditionStats, error) {
	var st AdditionStats
	keyCol, attrCol, dom, err := opts.resolve(r, true)
	if err != nil {
		return st, err
	}
	if nAdd < 0 {
		return st, errors.New("mark: negative addition count")
	}
	if nAdd == 0 {
		return st, nil
	}
	if len(wm) == 0 {
		return st, errors.New("mark: empty watermark")
	}
	bw := opts.bandwidth(r.Len())
	if bw < len(wm) {
		return st, fmt.Errorf("%w: |wm|=%d, N/e=%d", ErrInsufficientBandwidth, len(wm), bw)
	}
	wmData, err := opts.code().Encode(wm, bw)
	if err != nil {
		return st, err
	}
	if maxAttempts <= 0 {
		maxAttempts = 1000 * int(opts.E) * nAdd
	}

	// Empirical distributions for every non-key attribute, so synthetic
	// tuples blend into the data ("conforming to the overall data
	// distribution, in order to preserve stealthiness").
	src := stats.NewSource("mark-addition/" + seed)
	samplers := make([]*stats.Weighted, r.Schema().Arity())
	for col := 0; col < r.Schema().Arity(); col++ {
		if col == keyCol {
			continue
		}
		h, herr := relation.HistogramOf(r, r.Schema().Attr(col).Name)
		if herr != nil {
			return st, herr
		}
		labels, freqs := h.FreqVector()
		if len(labels) == 0 {
			return st, fmt.Errorf("mark: attribute %q has no values to sample", r.Schema().Attr(col).Name)
		}
		samplers[col] = stats.NewWeighted(labels, freqs)
	}
	// Pair-choice distribution over the watermarked attribute: weight each
	// (even, odd) pair by its empirical mass so added values look natural.
	pairWeights := make([]float64, dom.Size()/2)
	attrHist, err := relation.HistogramOf(r, opts.Attr)
	if err != nil {
		return st, err
	}
	for p := range pairWeights {
		w := attrHist.Freq(dom.Value(2*p)) + attrHist.Freq(dom.Value(2*p+1))
		pairWeights[p] = w + 1e-9 // keep every pair reachable
	}
	pairLabels := make([]string, len(pairWeights))
	for p := range pairLabels {
		pairLabels[p] = strconv.Itoa(p)
	}
	pairSampler := stats.NewWeighted(pairLabels, pairWeights)

	for st.Added < nAdd {
		if st.CandidatesTried >= maxAttempts {
			return st, fmt.Errorf("mark: gave up after %d candidate keys (added %d of %d)",
				st.CandidatesTried, st.Added, nAdd)
		}
		keyVal := minter(st.CandidatesTried)
		st.CandidatesTried++
		if _, exists := r.Lookup(keyVal); exists {
			continue
		}
		d1 := keyhash.HashString(opts.K1, keyVal)
		if !keyhash.Fit(d1, opts.E) {
			continue
		}
		pos := int(keyhash.HashString(opts.K2, keyVal).Mod(uint64(bw)))
		bit := int(wmData[pos])
		pair, _ := strconv.Atoi(pairSampler.Sample(src))
		value := dom.Value(2*pair + bit)

		t := make(relation.Tuple, r.Schema().Arity())
		for col := range t {
			switch col {
			case keyCol:
				t[col] = keyVal
			case attrCol:
				t[col] = value
			default:
				t[col] = samplers[col].Sample(src)
			}
		}
		if err := r.Append(t); err != nil {
			return st, err
		}
		st.Added++
	}
	return st, nil
}

// InsertWatermarked appends a tuple, first rewriting its categorical value
// if the tuple is fit — the Section 4.3 incremental-update path: "as
// updates occur to the data, the resulting tuples can be evaluated on the
// fly for fitness and watermarked accordingly". Returns whether the tuple
// was watermark-bearing. The bandwidth must be the embedding-time value
// (BandwidthOverride) so positions stay aligned as the relation grows.
func InsertWatermarked(r *relation.Relation, t relation.Tuple, wm ecc.Bits, opts Options) (bool, error) {
	keyCol, attrCol, dom, err := opts.resolve(r, true)
	if err != nil {
		return false, err
	}
	if len(t) != r.Schema().Arity() {
		return false, fmt.Errorf("mark: tuple arity %d, schema arity %d", len(t), r.Schema().Arity())
	}
	bw := opts.bandwidth(r.Len())
	if bw < len(wm) {
		return false, fmt.Errorf("%w: |wm|=%d, bandwidth=%d", ErrInsufficientBandwidth, len(wm), bw)
	}
	keyVal := t[keyCol]
	d1 := keyhash.HashString(opts.K1, keyVal)
	marked := false
	if keyhash.Fit(d1, opts.E) {
		wmData, cerr := opts.code().Encode(wm, bw)
		if cerr != nil {
			return false, cerr
		}
		pos := int(keyhash.HashString(opts.K2, keyVal).Mod(uint64(bw)))
		bit := uint64(wmData[pos])
		idx := keyhash.PairIndex(d1.Uint64At(1), dom.Size(), bit)
		t = t.Clone()
		t[attrCol] = dom.Value(idx)
		marked = true
	}
	if err := r.Append(t); err != nil {
		return false, err
	}
	return marked, nil
}
