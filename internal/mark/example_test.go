package mark_test

import (
	"fmt"
	"log"
	"strconv"

	"repro/internal/ecc"
	"repro/internal/keyhash"
	"repro/internal/mark"
	"repro/internal/relation"
)

// The paper's core algorithm on a toy relation: fit tuples are selected by
// a keyed hash of the primary key, and the categorical value's index
// parity carries the watermark bit.
func ExampleEmbed() {
	schema := relation.MustSchema([]relation.Attribute{
		{Name: "visit", Type: relation.TypeInt},
		{Name: "item", Type: relation.TypeString, Categorical: true},
	}, "visit")
	items := []string{"item-00", "item-01", "item-02", "item-03", "item-04", "item-05"}
	r := relation.New(schema)
	for i := 0; i < 2000; i++ {
		r.MustAppend(relation.Tuple{strconv.Itoa(i), items[i%len(items)]})
	}

	opts := mark.Options{
		Attr:   "item",
		K1:     keyhash.NewKey("secret-1"),
		K2:     keyhash.NewKey("secret-2"),
		E:      10, // 1 in 10 tuples carries a bit
		Domain: relation.MustDomain(items),
	}
	wm := ecc.MustParseBits("110100")
	st, err := mark.Embed(r, wm, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("bandwidth N/e = %d, fit tuples = %d\n", st.Bandwidth, st.Fit)

	rep, err := mark.Detect(r, len(wm), opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered %s\n", rep.WM)
	// Output:
	// bandwidth N/e = 200, fit tuples = 204
	// recovered 110100
}
