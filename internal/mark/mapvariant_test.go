package mark

import (
	"testing"

	"repro/internal/ecc"
	"repro/internal/keyhash"
	"repro/internal/stats"
)

func TestMapVariantRoundTrip(t *testing.T) {
	r, dom := testData(t, 6000)
	opts := testOptions(dom)
	opts.K2 = nil // the map variant must not need k2
	wm := ecc.MustParseBits("1011001110")

	em, st, err := EmbedWithMap(r, wm, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(em) == 0 || st.Altered == 0 {
		t.Fatalf("map embedding did nothing: map=%d, %+v", len(em), st)
	}
	rep, err := DetectWithMap(r, len(wm), em, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.WM.String() != wm.String() {
		t.Fatalf("map round trip: %s vs %s", wm, rep.WM)
	}
	if rep.MeanMargin != 1 {
		t.Fatalf("map placement margin %v, want 1", rep.MeanMargin)
	}
}

// Figure 1(b) assigns sequential indices, so every wm_data bit up to the
// fit count is embedded exactly once — no collisions.
func TestMapVariantSequentialCoverage(t *testing.T) {
	r, dom := testData(t, 6000)
	opts := testOptions(dom)
	wm := ecc.MustParseBits("101100")
	em, st, err := EmbedWithMap(r, wm, opts)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool, len(em))
	max := -1
	for _, idx := range em {
		if seen[idx] {
			t.Fatalf("wm_data index %d assigned twice", idx)
		}
		seen[idx] = true
		if idx > max {
			max = idx
		}
	}
	if max != len(em)-1 {
		t.Fatalf("indices not dense: max %d over %d entries", max, len(em))
	}
	if st.PositionsTouched != len(em) {
		t.Fatalf("positions touched %d != map size %d", st.PositionsTouched, len(em))
	}
}

func TestMapVariantSurvivesSubsetSelection(t *testing.T) {
	r, dom := testData(t, 12000)
	opts := testOptions(dom)
	wm := ecc.MustParseBits("1011001110")
	em, _, err := EmbedWithMap(r, wm, opts)
	if err != nil {
		t.Fatal(err)
	}
	src := stats.NewSource("map-subset")
	sub, err := r.SelectRows(src.Sample(r.Len(), r.Len()/2))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := DetectWithMap(sub, len(wm), em, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.WM.String() != wm.String() {
		t.Fatalf("map variant under 50%% loss: %s vs %s", wm, rep.WM)
	}
	// Half the map entries should decode as erasures, roughly.
	if rep.PositionsFilled >= len(em) {
		t.Fatal("no erasures despite 50% data loss")
	}
}

func TestMapVariantResorting(t *testing.T) {
	r, dom := testData(t, 5000)
	opts := testOptions(dom)
	wm := ecc.MustParseBits("110110")
	em, _, err := EmbedWithMap(r, wm, opts)
	if err != nil {
		t.Fatal(err)
	}
	r.Shuffle(stats.NewSource("map-resort"))
	rep, err := DetectWithMap(r, len(wm), em, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.WM.String() != wm.String() {
		t.Fatal("map variant not resilient to re-sorting")
	}
}

func TestDetectWithMapErrors(t *testing.T) {
	r, dom := testData(t, 1000)
	opts := testOptions(dom)
	if _, err := DetectWithMap(r, 4, EmbeddingMap{}, opts); err == nil {
		t.Error("empty map accepted")
	}
	if _, err := DetectWithMap(r, 0, EmbeddingMap{"1": 0}, opts); err == nil {
		t.Error("zero wmLen accepted")
	}
	if _, err := DetectWithMap(r, 4, EmbeddingMap{"1": -2}, opts); err == nil {
		t.Error("negative index accepted")
	}
	if _, err := DetectWithMap(r, 4, EmbeddingMap{"1": 2}, opts); err == nil {
		t.Error("bandwidth 3 < wmLen 4 accepted")
	}
}

func TestMapVariantIgnoresUnmappedFitTuples(t *testing.T) {
	// A2-added tuples that happen to be fit must not perturb detection.
	r, dom := testData(t, 6000)
	opts := testOptions(dom)
	wm := ecc.MustParseBits("10110011")
	em, _, err := EmbedWithMap(r, wm, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Mint keys that are fit but absent from the map, with hostile values.
	added := 0
	for i := 0; added < 50 && i < 100000; i++ {
		key := "999" + itoa(i)
		if keyhash.FitKey(opts.K1, key, opts.E) {
			r.MustAppend([]string{key, dom.Value(added % dom.Size())})
			added++
		}
	}
	rep, err := DetectWithMap(r, len(wm), em, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.WM.String() != wm.String() {
		t.Fatalf("unmapped fit tuples corrupted detection: %s vs %s", wm, rep.WM)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [20]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}
