package mark

import (
	"repro/internal/ecc"
	"repro/internal/relation"
)

// EmbedStats reports what one embedding pass did.
type EmbedStats struct {
	// Tuples is N, the relation size.
	Tuples int
	// Fit is the number of tuples satisfying the fitness criterion.
	Fit int
	// Altered counts tuples whose attribute value actually changed.
	Altered int
	// Unchanged counts fit tuples whose value already carried the right
	// index (no rewrite needed).
	Unchanged int
	// SkippedLedger counts fit tuples excluded by Options.SkipRow.
	SkippedLedger int
	// SkippedQuality counts fit tuples whose rewrite a quality constraint
	// vetoed.
	SkippedQuality int
	// Bandwidth is |wm_data| = N/e.
	Bandwidth int
	// PositionsTouched is the number of distinct wm_data positions some
	// fit tuple embedded (collisions collapse; the ECC tolerates the
	// remainder, Section 3.2.1 note).
	PositionsTouched int
}

// AlterationRate returns Altered / Tuples: the fraction of the data
// modified by watermarking, the quantity the paper trades against
// resilience via e (Section 4.4).
func (s EmbedStats) AlterationRate() float64 {
	if s.Tuples == 0 {
		return 0
	}
	return float64(s.Altered) / float64(s.Tuples)
}

// Embed watermarks r in place per Figure 1(a). wm must be non-empty 0/1
// bits. Returns statistics; r is modified unless an error occurs before
// any alteration (bandwidth and argument validation happen first).
//
// Embed is the one-chunk special case of the Embedder/EmbedRange hooks in
// chunk.go; internal/pipeline runs the same pass across multiple ranges
// concurrently.
func Embed(r *relation.Relation, wm ecc.Bits, opts Options) (EmbedStats, error) {
	e, err := NewEmbedder(r, wm, opts)
	if err != nil {
		return EmbedStats{}, err
	}
	cs, err := e.EmbedRange(r, 0, r.Len())
	return MergeChunks(cs), err
}
