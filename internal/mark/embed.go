package mark

import (
	"errors"
	"fmt"

	"repro/internal/ecc"
	"repro/internal/keyhash"
	"repro/internal/quality"
	"repro/internal/relation"
)

// EmbedStats reports what one embedding pass did.
type EmbedStats struct {
	// Tuples is N, the relation size.
	Tuples int
	// Fit is the number of tuples satisfying the fitness criterion.
	Fit int
	// Altered counts tuples whose attribute value actually changed.
	Altered int
	// Unchanged counts fit tuples whose value already carried the right
	// index (no rewrite needed).
	Unchanged int
	// SkippedLedger counts fit tuples excluded by Options.SkipRow.
	SkippedLedger int
	// SkippedQuality counts fit tuples whose rewrite a quality constraint
	// vetoed.
	SkippedQuality int
	// Bandwidth is |wm_data| = N/e.
	Bandwidth int
	// PositionsTouched is the number of distinct wm_data positions some
	// fit tuple embedded (collisions collapse; the ECC tolerates the
	// remainder, Section 3.2.1 note).
	PositionsTouched int
}

// AlterationRate returns Altered / Tuples: the fraction of the data
// modified by watermarking, the quantity the paper trades against
// resilience via e (Section 4.4).
func (s EmbedStats) AlterationRate() float64 {
	if s.Tuples == 0 {
		return 0
	}
	return float64(s.Altered) / float64(s.Tuples)
}

// Embed watermarks r in place per Figure 1(a). wm must be non-empty 0/1
// bits. Returns statistics; r is modified unless an error occurs before
// any alteration (bandwidth and argument validation happen first).
func Embed(r *relation.Relation, wm ecc.Bits, opts Options) (EmbedStats, error) {
	var stats EmbedStats
	keyCol, attrCol, dom, err := opts.resolve(r, true)
	if err != nil {
		return stats, err
	}
	if len(wm) == 0 {
		return stats, errors.New("mark: empty watermark")
	}
	n := r.Len()
	bw := opts.bandwidth(n)
	if bw < len(wm) {
		return stats, fmt.Errorf("%w: |wm|=%d, N/e=%d (N=%d, e=%d)",
			ErrInsufficientBandwidth, len(wm), bw, n, opts.E)
	}
	wmData, err := opts.code().Encode(wm, bw)
	if err != nil {
		return stats, err
	}

	stats.Tuples = n
	stats.Bandwidth = bw
	touched := make(map[int]bool)

	for j := 0; j < n; j++ {
		t := r.Tuple(j)
		keyVal := t[keyCol]
		d1 := keyhash.HashString(opts.K1, keyVal)
		if !keyhash.Fit(d1, opts.E) {
			continue
		}
		stats.Fit++
		if opts.SkipRow != nil && opts.SkipRow(j) {
			stats.SkippedLedger++
			continue
		}
		pos := int(keyhash.HashString(opts.K2, keyVal).Mod(uint64(bw)))
		bit := uint64(wmData[pos])
		// Value-index selection: an independent digest word drives the
		// pseudorandom pair choice so the mod-e fitness constraint on
		// word 0 cannot bias it (DESIGN.md clarification 1).
		idx := keyhash.PairIndex(d1.Uint64At(1), dom.Size(), bit)
		newVal := dom.Value(idx)
		old := t[attrCol]
		if old == newVal {
			stats.Unchanged++
			touched[pos] = true
			continue
		}
		if opts.Assessor != nil {
			if aerr := opts.Assessor.Apply(r, j, opts.Attr, newVal); aerr != nil {
				var verr *quality.ViolationError
				if errors.As(aerr, &verr) {
					stats.SkippedQuality++
					continue
				}
				return stats, aerr
			}
		} else {
			if serr := r.SetValue(j, opts.Attr, newVal); serr != nil {
				return stats, serr
			}
		}
		stats.Altered++
		touched[pos] = true
		if opts.OnAlter != nil {
			opts.OnAlter(j)
		}
	}
	stats.PositionsTouched = len(touched)
	return stats, nil
}
