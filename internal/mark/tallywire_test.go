package mark

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"strconv"
	"testing"

	"repro/internal/ecc"
	"repro/internal/keyhash"
	"repro/internal/relation"
)

// TestTallyWireGoldenJSON pins the wire encoding byte-for-byte: coordinator
// and worker may run different builds, so the serialized shape is a
// compatibility contract, not an implementation detail.
func TestTallyWireGoldenJSON(t *testing.T) {
	tally := &Tally{
		Rows:          7,
		Fit:           4,
		UnknownValues: 1,
		Votes: []ecc.VoteTally{
			{Zeros: 2, Ones: 0},
			{Zeros: 0, Ones: 1},
			{Zeros: 0, Ones: 0},
		},
		Last: []uint8{ecc.Zero, ecc.One, ecc.Erased},
	}
	data, err := json.Marshal(tally.Wire())
	if err != nil {
		t.Fatal(err)
	}
	const golden = `{"rows":7,"fit":4,"unknown_values":1,"zeros":[2,0,0],"ones":[0,1,0],"last":"AAH/"}`
	if string(data) != golden {
		t.Fatalf("wire JSON drifted:\n got  %s\n want %s", data, golden)
	}

	var w TallyWire
	if err := json.Unmarshal([]byte(golden), &w); err != nil {
		t.Fatal(err)
	}
	back, err := w.Tally()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, tally) {
		t.Fatalf("golden round-trip diverged:\n got  %+v\n want %+v", back, tally)
	}
	if w.Bandwidth() != 3 {
		t.Fatalf("Bandwidth() = %d, want 3", w.Bandwidth())
	}
}

// TestTallyWireRoundTripMergesIdentically is the property test behind the
// distributed-audit contract: splitting a scan into range tallies, passing
// each through encode(JSON(decode)) as a shard response would, and merging
// the decoded partials in row order yields exactly the single-pass tally
// and report — for both vote aggregations. Shard boundaries are randomized
// (including empty and single-row ranges).
func TestTallyWireRoundTripMergesIdentically(t *testing.T) {
	r := tallyWireTestRelation(t)
	wm := ecc.MustParseBits("110100101101")
	rng := rand.New(rand.NewSource(23))
	for _, agg := range []VoteAggregation{MajorityVote, LastWriteWins} {
		opts := Options{
			Attr: "cat", K1: keyhash.NewKey("tw-k1"), K2: keyhash.NewKey("tw-k2"),
			E: 3, Aggregation: agg,
		}
		if _, err := Embed(r, wm, opts); err != nil {
			t.Fatal(err)
		}
		sc, err := NewScanner(r, len(wm), opts)
		if err != nil {
			t.Fatal(err)
		}
		whole := sc.NewTally()
		if err := sc.Scan(r, 0, r.Len(), whole); err != nil {
			t.Fatal(err)
		}

		for trial := 0; trial < 25; trial++ {
			// Random contiguous partition of [0, len) into 1..8 shards.
			cuts := []int{0, r.Len()}
			for k := rng.Intn(8); k > 0; k-- {
				cuts = append(cuts, rng.Intn(r.Len()+1))
			}
			sortInts(cuts)

			total := sc.NewTally()
			for i := 0; i+1 < len(cuts); i++ {
				part := sc.NewTally()
				if err := sc.Scan(r, cuts[i], cuts[i+1], part); err != nil {
					t.Fatal(err)
				}
				data, err := json.Marshal(part.Wire())
				if err != nil {
					t.Fatal(err)
				}
				var w TallyWire
				if err := json.Unmarshal(data, &w); err != nil {
					t.Fatal(err)
				}
				decoded, err := w.Tally()
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(decoded, part) {
					t.Fatalf("%v trial %d: round-trip changed the partial tally", agg, trial)
				}
				total.Merge(decoded)
			}
			if !reflect.DeepEqual(total, whole) {
				t.Fatalf("%v trial %d: merged wire partials diverged from single pass", agg, trial)
			}
			wantRep, err := sc.Report(whole)
			if err != nil {
				t.Fatal(err)
			}
			gotRep, err := sc.Report(total)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(gotRep, wantRep) {
				t.Fatalf("%v trial %d: report mismatch", agg, trial)
			}
		}
	}
}

// TestTallyWireOutOfOrderShardCompletion models the coordinator's collect
// path: shard results ARRIVE in arbitrary completion order, are parked by
// shard index, and are merged in row order once all are in. The result
// must match the sequential pass exactly — in particular the
// LastWriteWins column, which a completion-order merge would corrupt.
func TestTallyWireOutOfOrderShardCompletion(t *testing.T) {
	r := tallyWireTestRelation(t)
	wm := ecc.MustParseBits("1010011100")
	rng := rand.New(rand.NewSource(7))
	for _, agg := range []VoteAggregation{MajorityVote, LastWriteWins} {
		opts := Options{
			Attr: "cat", K1: keyhash.NewKey("oo-k1"), K2: keyhash.NewKey("oo-k2"),
			E: 2, Aggregation: agg,
		}
		if _, err := Embed(r, wm, opts); err != nil {
			t.Fatal(err)
		}
		sc, err := NewScanner(r, len(wm), opts)
		if err != nil {
			t.Fatal(err)
		}
		whole := sc.NewTally()
		if err := sc.Scan(r, 0, r.Len(), whole); err != nil {
			t.Fatal(err)
		}

		const shardRows = 97 // ragged tail on purpose
		var ranges [][2]int
		for lo := 0; lo < r.Len(); lo += shardRows {
			ranges = append(ranges, [2]int{lo, min(lo+shardRows, r.Len())})
		}
		// Complete the shards in a shuffled order, parking wire results by
		// shard index as the scheduler does.
		parked := make([]*Tally, len(ranges))
		for _, i := range rng.Perm(len(ranges)) {
			part := sc.NewTally()
			if err := sc.Scan(r, ranges[i][0], ranges[i][1], part); err != nil {
				t.Fatal(err)
			}
			decoded, err := part.Wire().Tally()
			if err != nil {
				t.Fatal(err)
			}
			parked[i] = decoded
		}
		total := sc.NewTally()
		for _, part := range parked {
			total.Merge(part)
		}
		if !reflect.DeepEqual(total, whole) {
			t.Fatalf("%v: in-order merge of out-of-order completions diverged", agg)
		}
		rep, err := sc.Report(total)
		if err != nil {
			t.Fatal(err)
		}
		if rep.WM.String() != wm.String() {
			t.Fatalf("%v: recovered %s, want %s", agg, rep.WM, wm)
		}
	}
}

// TestTallyWireRejectsMalformed exercises the trust-boundary validation:
// mismatched arrays, negative counters, and junk last-vote bytes must
// error instead of panicking a later Merge or Report.
func TestTallyWireRejectsMalformed(t *testing.T) {
	cases := map[string]TallyWire{
		"array mismatch":    {Zeros: []int{0, 1}, Ones: []int{0}, Last: []byte{0, 1}},
		"last mismatch":     {Zeros: []int{0}, Ones: []int{0}, Last: []byte{}},
		"negative rows":     {Rows: -1},
		"negative fit":      {Fit: -3},
		"negative unknown":  {UnknownValues: -2},
		"negative votes":    {Zeros: []int{-1}, Ones: []int{0}, Last: []byte{0xFF}},
		"invalid last byte": {Zeros: []int{0}, Ones: []int{0}, Last: []byte{0x07}},
	}
	for name, w := range cases {
		if _, err := w.Tally(); err == nil {
			t.Errorf("%s: Tally() accepted malformed wire %+v", name, w)
		}
	}
}

func tallyWireTestRelation(t *testing.T) *relation.Relation {
	t.Helper()
	schema := relation.MustSchema([]relation.Attribute{
		{Name: "id", Type: relation.TypeInt},
		{Name: "cat", Type: relation.TypeString, Categorical: true},
	}, "id")
	r := relation.New(schema)
	values := []string{"aa", "bb", "cc", "dd", "ee"}
	for i := 0; i < 700; i++ {
		r.MustAppend(relation.Tuple{strconv.Itoa(i), values[i%len(values)]})
	}
	return r
}

// sortInts is a tiny insertion sort — the slices here are single digits
// long, and it avoids importing sort for one call.
func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
