package mark

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/ecc"
	"repro/internal/relation"
)

// chunkBoundaries carves n rows into the given number of ranges.
func chunkBoundaries(n, chunks int) [][2]int {
	var out [][2]int
	per := n / chunks
	if per == 0 {
		per = 1
	}
	for lo := 0; lo < n; lo += per {
		hi := lo + per
		if hi > n || len(out) == chunks-1 {
			hi = n
		}
		out = append(out, [2]int{lo, hi})
		if hi == n {
			break
		}
	}
	return out
}

func TestEmbedRangeChunkedEqualsSequential(t *testing.T) {
	wm := ecc.MustParseBits("1011001110")
	for _, chunks := range []int{2, 3, 7} {
		seqRel, dom := testData(t, 6000)
		chunkRel := seqRel.Clone()
		opts := testOptions(dom)

		seqStats, err := Embed(seqRel, wm, opts)
		if err != nil {
			t.Fatal(err)
		}

		em, err := NewEmbedder(chunkRel, wm, opts)
		if err != nil {
			t.Fatal(err)
		}
		var parts []ChunkStats
		for _, b := range chunkBoundaries(chunkRel.Len(), chunks) {
			cs, err := em.EmbedRange(chunkRel, b[0], b[1])
			if err != nil {
				t.Fatal(err)
			}
			parts = append(parts, cs)
		}
		merged := MergeChunks(parts...)

		if !seqRel.Equal(chunkRel) {
			t.Fatalf("%d chunks: chunked embedding altered different tuples", chunks)
		}
		if merged != seqStats {
			t.Fatalf("%d chunks: stats diverge:\nseq:    %+v\nmerged: %+v", chunks, seqStats, merged)
		}
	}
}

func TestScannerChunkedEqualsSequential(t *testing.T) {
	r, dom := testData(t, 6000)
	opts := testOptions(dom)
	wm := ecc.MustParseBits("1011001110")
	if _, err := Embed(r, wm, opts); err != nil {
		t.Fatal(err)
	}

	for _, agg := range []VoteAggregation{MajorityVote, LastWriteWins} {
		opts.Aggregation = agg
		seq, err := Detect(r, len(wm), opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, chunks := range []int{2, 5} {
			sc, err := NewScanner(r, len(wm), opts)
			if err != nil {
				t.Fatal(err)
			}
			var total *Tally
			for _, b := range chunkBoundaries(r.Len(), chunks) {
				part := sc.NewTally()
				if err := sc.Scan(r, b[0], b[1], part); err != nil {
					t.Fatal(err)
				}
				if total == nil {
					total = part
				} else {
					total.Merge(part)
				}
			}
			rep, err := sc.Report(total)
			if err != nil {
				t.Fatal(err)
			}
			if rep.WM.String() != seq.WM.String() {
				t.Fatalf("%v/%d chunks: detected %s, sequential %s", agg, chunks, rep.WM, seq.WM)
			}
			seqNoWM, repNoWM := seq, rep
			seqNoWM.WM, repNoWM.WM = nil, nil
			if !reflect.DeepEqual(repNoWM, seqNoWM) {
				t.Fatalf("%v/%d chunks: reports diverge:\nseq:     %+v\nchunked: %+v", agg, chunks, seqNoWM, repNoWM)
			}
		}
	}
}

func TestEmbedRangeBounds(t *testing.T) {
	r, dom := testData(t, 500)
	em, err := NewEmbedder(r, ecc.MustParseBits("101"), func() Options {
		o := testOptions(dom)
		o.E = 10
		return o
	}())
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range [][2]int{{-1, 10}, {0, 501}, {400, 300}} {
		if _, err := em.EmbedRange(r, b[0], b[1]); err == nil {
			t.Fatalf("range [%d,%d): expected error", b[0], b[1])
		}
	}
}

func TestStreamEmbedderRequiresExplicitParams(t *testing.T) {
	_, dom := testData(t, 100)
	schema := relation.MustSchema([]relation.Attribute{
		{Name: "Visit_Nbr", Type: relation.TypeInt},
		{Name: "Item_Nbr", Type: relation.TypeInt, Categorical: true},
	}, "Visit_Nbr")
	wm := ecc.MustParseBits("101")

	noDomain := testOptions(nil)
	noDomain.BandwidthOverride = 64
	if _, err := NewStreamEmbedder(schema, wm, noDomain); err == nil || !strings.Contains(err.Error(), "Domain") {
		t.Fatalf("expected explicit-domain error, got %v", err)
	}
	if _, err := NewStreamScanner(schema, 3, noDomain); err == nil || !strings.Contains(err.Error(), "Domain") {
		t.Fatalf("expected explicit-domain error, got %v", err)
	}

	noBW := testOptions(dom)
	if _, err := NewStreamEmbedder(schema, wm, noBW); err == nil || !strings.Contains(err.Error(), "BandwidthOverride") {
		t.Fatalf("expected bandwidth error, got %v", err)
	}
	if _, err := NewStreamScanner(schema, 3, noBW); err == nil || !strings.Contains(err.Error(), "BandwidthOverride") {
		t.Fatalf("expected bandwidth error, got %v", err)
	}
}

func TestStreamEmbedderMatchesMaterialized(t *testing.T) {
	matRel, dom := testData(t, 4000)
	opts := testOptions(dom)
	wm := ecc.MustParseBits("1011001110")

	streamRel := matRel.Clone()
	st, err := Embed(matRel, wm, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Stream pass: same bandwidth and domain pinned explicitly, rows fed
	// through chunk-sized mini relations.
	sOpts := opts
	sOpts.BandwidthOverride = st.Bandwidth
	em, err := NewStreamEmbedder(streamRel.Schema(), wm, sOpts)
	if err != nil {
		t.Fatal(err)
	}
	var parts []ChunkStats
	for _, b := range chunkBoundaries(streamRel.Len(), 4) {
		cs, err := em.EmbedRange(streamRel, b[0], b[1])
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, cs)
	}
	if !matRel.Equal(streamRel) {
		t.Fatal("stream embedder rewrote different tuples than the materialized pass")
	}
	if merged := MergeChunks(parts...); merged != st {
		t.Fatalf("stats diverge:\nmaterialized: %+v\nstream:       %+v", st, merged)
	}
}
