package mark

import (
	"repro/internal/ecc"
	"repro/internal/relation"
)

// DetectReport is the outcome of a blind detection pass (Figure 2(a)).
type DetectReport struct {
	// WM is the recovered watermark.
	WM ecc.Bits
	// Tuples is the number of tuples examined.
	Tuples int
	// Fit is the number of tuples passing the fitness criterion.
	Fit int
	// UnknownValues counts fit tuples whose attribute value was outside
	// the domain (noise, or an un-reversed remapping attack, Section 4.5);
	// they cast no vote.
	UnknownValues int
	// Bandwidth is |wm_data| = N/e used for position arithmetic.
	Bandwidth int
	// PositionsFilled is the number of wm_data positions that received at
	// least one vote; the rest decode as erasures.
	PositionsFilled int
	// MeanMargin is the average majority margin over filled positions
	// (1 = unanimous votes everywhere, 0 = coin flips). A crude
	// detection-confidence signal for the courtroom scenario.
	MeanMargin float64
}

// MatchFraction returns the fraction of bits of want that the recovered
// watermark reproduces; 1.0 is a perfect match. Panics on length mismatch.
func (d DetectReport) MatchFraction(want ecc.Bits) float64 {
	return 1 - ecc.AlterationRate(want, d.WM)
}

// Detect blindly recovers a wmLen-bit watermark from r per Figure 2(a):
// it re-derives the fit set and bit positions from the keys, reads each
// fit tuple's value-index parity as a vote, aggregates votes per position
// (majority by default), and ECC-decodes the resulting wm_data.
//
// Detection never needs the original relation — only the keys, e, the
// code, and the attribute's value domain.
//
// Detect is the one-chunk special case of the Scanner/Scan/Report hooks
// in chunk.go; internal/pipeline runs the same pass across multiple
// ranges concurrently and merges the tallies.
func Detect(r *relation.Relation, wmLen int, opts Options) (DetectReport, error) {
	s, err := NewScanner(r, wmLen, opts)
	if err != nil {
		return DetectReport{}, err
	}
	t := s.NewTally()
	if err := s.Scan(r, 0, r.Len(), t); err != nil {
		return DetectReport{}, err
	}
	return s.Report(t)
}
