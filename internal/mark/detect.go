package mark

import (
	"errors"
	"fmt"

	"repro/internal/ecc"
	"repro/internal/keyhash"
	"repro/internal/relation"
)

// DetectReport is the outcome of a blind detection pass (Figure 2(a)).
type DetectReport struct {
	// WM is the recovered watermark.
	WM ecc.Bits
	// Tuples is the number of tuples examined.
	Tuples int
	// Fit is the number of tuples passing the fitness criterion.
	Fit int
	// UnknownValues counts fit tuples whose attribute value was outside
	// the domain (noise, or an un-reversed remapping attack, Section 4.5);
	// they cast no vote.
	UnknownValues int
	// Bandwidth is |wm_data| = N/e used for position arithmetic.
	Bandwidth int
	// PositionsFilled is the number of wm_data positions that received at
	// least one vote; the rest decode as erasures.
	PositionsFilled int
	// MeanMargin is the average majority margin over filled positions
	// (1 = unanimous votes everywhere, 0 = coin flips). A crude
	// detection-confidence signal for the courtroom scenario.
	MeanMargin float64
}

// MatchFraction returns the fraction of bits of want that the recovered
// watermark reproduces; 1.0 is a perfect match. Panics on length mismatch.
func (d DetectReport) MatchFraction(want ecc.Bits) float64 {
	return 1 - ecc.AlterationRate(want, d.WM)
}

// Detect blindly recovers a wmLen-bit watermark from r per Figure 2(a):
// it re-derives the fit set and bit positions from the keys, reads each
// fit tuple's value-index parity as a vote, aggregates votes per position
// (majority by default), and ECC-decodes the resulting wm_data.
//
// Detection never needs the original relation — only the keys, e, the
// code, and the attribute's value domain.
func Detect(r *relation.Relation, wmLen int, opts Options) (DetectReport, error) {
	var rep DetectReport
	keyCol, attrCol, dom, err := opts.resolve(r, true)
	if err != nil {
		return rep, err
	}
	if wmLen <= 0 {
		return rep, errors.New("mark: non-positive watermark length")
	}
	n := r.Len()
	bw := opts.bandwidth(n)
	if bw < wmLen {
		return rep, fmt.Errorf("%w: |wm|=%d, N/e=%d (N=%d, e=%d)",
			ErrInsufficientBandwidth, wmLen, bw, n, opts.E)
	}

	rep.Tuples = n
	rep.Bandwidth = bw
	votes := make([]ecc.VoteTally, bw)
	last := make([]uint8, bw) // for LastWriteWins
	for i := range last {
		last[i] = ecc.Erased
	}

	for j := 0; j < n; j++ {
		t := r.Tuple(j)
		keyVal := t[keyCol]
		d1 := keyhash.HashString(opts.K1, keyVal)
		if !keyhash.Fit(d1, opts.E) {
			continue
		}
		rep.Fit++
		idx, ok := dom.Index(t[attrCol])
		if !ok {
			rep.UnknownValues++
			continue
		}
		pos := int(keyhash.HashString(opts.K2, keyVal).Mod(uint64(bw)))
		bit := uint8(idx & 1)
		if bit == ecc.One {
			votes[pos].Ones++
		} else {
			votes[pos].Zeros++
		}
		last[pos] = bit
	}

	wmData := make(ecc.Bits, bw)
	marginSum := 0.0
	for i := range wmData {
		switch opts.Aggregation {
		case LastWriteWins:
			wmData[i] = last[i]
		default:
			if votes[i].Ones == 0 && votes[i].Zeros == 0 {
				wmData[i] = ecc.Erased
			} else {
				wmData[i] = votes[i].Winner(ecc.Zero)
			}
		}
		if wmData[i] != ecc.Erased {
			rep.PositionsFilled++
			marginSum += votes[i].Margin()
		}
		if wmData[i] == ecc.Erased && opts.ZeroUnfilled {
			wmData[i] = ecc.Zero // paper-literal zero-initialised wm_data
		}
	}
	if rep.PositionsFilled > 0 {
		rep.MeanMargin = marginSum / float64(rep.PositionsFilled)
	}

	wm, err := opts.code().Decode(wmData, wmLen)
	if err != nil {
		return rep, err
	}
	rep.WM = wm
	return rep, nil
}
