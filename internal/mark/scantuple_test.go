package mark

import (
	"reflect"
	"strconv"
	"testing"

	"repro/internal/ecc"
	"repro/internal/keyhash"
	"repro/internal/relation"
)

// TestScanTupleMatchesScan proves the per-tuple entry point is the vote
// kernel Scan is built from: feeding every tuple through ScanTuple —
// including split across multiple tallies merged in scan order — yields
// the same tally and the same decoded report as one Scan over the whole
// relation, for both vote-aggregation policies.
func TestScanTupleMatchesScan(t *testing.T) {
	r := scanTupleTestRelation(t)
	wm := ecc.MustParseBits("1011001110")
	for _, agg := range []VoteAggregation{MajorityVote, LastWriteWins} {
		opts := Options{
			Attr: "cat", K1: keyhash.NewKey("st-k1"), K2: keyhash.NewKey("st-k2"),
			E: 3, Aggregation: agg,
		}
		if _, err := Embed(r, wm, opts); err != nil {
			t.Fatal(err)
		}
		sc, err := NewScanner(r, len(wm), opts)
		if err != nil {
			t.Fatal(err)
		}

		whole := sc.NewTally()
		if err := sc.Scan(r, 0, r.Len(), whole); err != nil {
			t.Fatal(err)
		}

		// One tuple at a time into a single tally.
		single := sc.NewTally()
		for j := 0; j < r.Len(); j++ {
			sc.ScanTuple(r.Tuple(j), single)
		}
		if !reflect.DeepEqual(whole, single) {
			t.Fatalf("%v: tuple-at-a-time tally diverged from Scan", agg)
		}

		// Split across per-tuple tallies, merged in scan order — the
		// streaming fan-out shape. Last-write-wins depends on this order.
		merged := sc.NewTally()
		for j := 0; j < r.Len(); j++ {
			part := sc.NewTally()
			sc.ScanTuple(r.Tuple(j), part)
			merged.Merge(part)
		}
		if !reflect.DeepEqual(whole, merged) {
			t.Fatalf("%v: merged per-tuple tallies diverged from Scan", agg)
		}

		wantRep, err := sc.Report(whole)
		if err != nil {
			t.Fatal(err)
		}
		gotRep, err := sc.Report(merged)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(wantRep, gotRep) {
			t.Fatalf("%v: report mismatch:\n got %+v\nwant %+v", agg, gotRep, wantRep)
		}
		if gotRep.WM.String() != wm.String() {
			t.Fatalf("%v: recovered %s, want %s", agg, gotRep.WM, wm)
		}
	}
}

func scanTupleTestRelation(t *testing.T) *relation.Relation {
	t.Helper()
	schema := relation.MustSchema([]relation.Attribute{
		{Name: "id", Type: relation.TypeInt},
		{Name: "cat", Type: relation.TypeString, Categorical: true},
	}, "id")
	r := relation.New(schema)
	values := []string{"a", "b", "c", "d"}
	for i := 0; i < 600; i++ {
		r.MustAppend(relation.Tuple{strconv.Itoa(i), values[i%len(values)]})
	}
	return r
}
