package mark

import (
	"errors"
	"fmt"

	"repro/internal/ecc"
	"repro/internal/keyhash"
	"repro/internal/relation"
)

// Chunked embedding and detection hooks. Every per-tuple decision in the
// codec — fitness, bit position, value index — depends only on the tuple's
// own key, so a relation can be partitioned into row ranges and processed
// independently as long as the global parameters (|wm_data|, the domain,
// the encoded wm_data) are fixed once up front. Embedder and Scanner fix
// them; EmbedRange/Scan process a range; the merge operations recombine
// partial results into exactly what the sequential pass would have
// produced. Embed and Detect are themselves implemented as the one-chunk
// special case, so the sequential and chunked paths cannot drift apart.
//
// internal/pipeline builds its worker pool on these hooks.

// Embedder is a prepared embedding pass: options resolved, bandwidth
// fixed, wm_data encoded. It is immutable after construction and safe for
// concurrent use by multiple goroutines calling EmbedRange on disjoint
// row ranges of the same relation.
type Embedder struct {
	opts         Options
	k1s          string // opts.K1 as a string: the memo lane key, converted once
	keyCol       int
	attrCol      int
	dom          *relation.Domain
	bw           int
	wmData       ecc.Bits
	kern1, kern2 keyhash.Kernel
}

// newEmbedder assembles the prepared pass once parameters are validated.
func newEmbedder(opts Options, keyCol, attrCol int, dom *relation.Domain, bw int, wmData ecc.Bits) (*Embedder, error) {
	kern1, err := opts.K1.NewKernel(opts.HashKernel)
	if err != nil {
		return nil, fmt.Errorf("mark: k1: %w", err)
	}
	kern2, err := opts.K2.NewKernel(opts.HashKernel)
	if err != nil {
		return nil, fmt.Errorf("mark: k2: %w", err)
	}
	return &Embedder{
		opts:    opts,
		k1s:     string(opts.K1),
		keyCol:  keyCol,
		attrCol: attrCol,
		dom:     dom,
		bw:      bw,
		wmData:  wmData,
		kern1:   kern1,
		kern2:   kern2,
	}, nil
}

// NewEmbedder validates options against r and prepares an embedding pass
// over its rows. The bandwidth |wm_data| is fixed from r.Len() (or
// Options.BandwidthOverride) at construction time.
func NewEmbedder(r *relation.Relation, wm ecc.Bits, opts Options) (*Embedder, error) {
	keyCol, attrCol, dom, err := opts.resolve(r, true)
	if err != nil {
		return nil, err
	}
	if len(wm) == 0 {
		return nil, errors.New("mark: empty watermark")
	}
	n := r.Len()
	bw := opts.bandwidth(n)
	if bw < len(wm) {
		return nil, fmt.Errorf("%w: |wm|=%d, N/e=%d (N=%d, e=%d)",
			ErrInsufficientBandwidth, len(wm), bw, n, opts.E)
	}
	wmData, err := opts.code().Encode(wm, bw)
	if err != nil {
		return nil, err
	}
	return newEmbedder(opts, keyCol, attrCol, dom, bw, wmData)
}

// NewStreamEmbedder prepares an embedding pass for data arriving as a row
// stream, where no full relation exists to derive parameters from. It
// therefore requires opts.Domain (the value catalog) and
// opts.BandwidthOverride (the embedding-time |wm_data|) to be set
// explicitly.
func NewStreamEmbedder(schema *relation.Schema, wm ecc.Bits, opts Options) (*Embedder, error) {
	keyCol, attrCol, dom, err := opts.resolveSchema(schema, true)
	if err != nil {
		return nil, err
	}
	if len(wm) == 0 {
		return nil, errors.New("mark: empty watermark")
	}
	if opts.BandwidthOverride <= 0 {
		return nil, errors.New("mark: streaming embed requires BandwidthOverride (stream length is unknown)")
	}
	bw := opts.BandwidthOverride
	if bw < len(wm) {
		return nil, fmt.Errorf("%w: |wm|=%d, bandwidth=%d",
			ErrInsufficientBandwidth, len(wm), bw)
	}
	wmData, err := opts.code().Encode(wm, bw)
	if err != nil {
		return nil, err
	}
	return newEmbedder(opts, keyCol, attrCol, dom, bw, wmData)
}

// Bandwidth returns the fixed |wm_data| of this pass — the value a
// detector must be given after data-loss attacks.
func (e *Embedder) Bandwidth() int { return e.bw }

// ChunkStats is the partial result of embedding one row range: the usual
// statistics plus the set of wm_data positions the range touched, which
// MergeChunks needs to count distinct positions across ranges.
type ChunkStats struct {
	EmbedStats
	// Touched[pos] is true when some fit tuple of the range embedded
	// wm_data position pos. Length is the pass bandwidth.
	Touched []bool
}

// EmbedRange embeds rows [lo, hi) of r, walking the range in
// DefaultBlockRows-sized blocks through EmbedBlock (one scratch for the
// whole call, so memory stays bounded on arbitrarily large ranges). It
// writes only the watermarked attribute of rows inside the range, so
// concurrent calls on disjoint ranges of the same relation are safe
// provided (a) Options.Assessor, Options.SkipRow and Options.OnAlter
// are either nil or themselves concurrency-safe (the quality assessor's
// shared alteration budget is order-dependent), and (b) the watermarked
// attribute is NOT the relation's primary key — rewriting key values
// mutates the shared key index. internal/pipeline falls back to a
// sequential pass in both cases.
func (e *Embedder) EmbedRange(r *relation.Relation, lo, hi int) (ChunkStats, error) {
	cs := ChunkStats{Touched: make([]bool, e.bw)}
	cs.Bandwidth = e.bw
	if err := checkRange(r, lo, hi); err != nil {
		return cs, err
	}
	var bs BlockScratch
	for blockLo := lo; ; blockLo += DefaultBlockRows {
		blockHi := min(blockLo+DefaultBlockRows, hi)
		if err := e.EmbedBlock(r, blockLo, blockHi, &cs, &bs); err != nil {
			return cs, err
		}
		if blockHi == hi {
			return cs, nil
		}
	}
}

// Add folds another range's result into c (order-independent): counters
// sum, touched sets union. Both chunks must come from the same pass.
func (c *ChunkStats) Add(o ChunkStats) {
	c.Tuples += o.Tuples
	c.Fit += o.Fit
	c.Altered += o.Altered
	c.Unchanged += o.Unchanged
	c.SkippedLedger += o.SkippedLedger
	c.SkippedQuality += o.SkippedQuality
	c.Bandwidth = o.Bandwidth
	if c.Touched == nil {
		c.Touched = make([]bool, len(o.Touched))
	}
	for pos, hit := range o.Touched {
		if hit {
			c.Touched[pos] = true
		}
	}
}

// MergeChunks combines per-range embedding results (in any order) into the
// statistics the equivalent sequential pass would report.
func MergeChunks(chunks ...ChunkStats) EmbedStats {
	var agg ChunkStats
	for _, c := range chunks {
		agg.Add(c)
	}
	out := agg.EmbedStats
	for _, hit := range agg.Touched {
		if hit {
			out.PositionsTouched++
		}
	}
	return out
}

// Scanner is a prepared detection pass: options resolved, bandwidth fixed,
// keyed-hash contexts built. It is immutable after construction and safe
// for concurrent use by multiple goroutines scanning disjoint row ranges
// (or disjoint tallies — see ScanTuple).
type Scanner struct {
	opts         Options
	k1s          string // opts.K1 as a string: the memo lane key, converted once
	keyCol       int
	attrCol      int
	dom          *relation.Domain
	bw           int
	wmLen        int
	h1, h2       *keyhash.Hasher
	kern1, kern2 keyhash.Kernel
}

// NewScanner validates options against r and prepares a detection pass.
// The bandwidth is fixed from r.Len() (or Options.BandwidthOverride) at
// construction time.
func NewScanner(r *relation.Relation, wmLen int, opts Options) (*Scanner, error) {
	keyCol, attrCol, dom, err := opts.resolve(r, true)
	if err != nil {
		return nil, err
	}
	return newScanner(keyCol, attrCol, dom, r.Len(), wmLen, opts)
}

// NewStreamScanner prepares a detection pass for data arriving as a row
// stream. Like NewStreamEmbedder it requires opts.Domain and
// opts.BandwidthOverride, because neither the value catalog nor the
// stream length can be derived up front.
func NewStreamScanner(schema *relation.Schema, wmLen int, opts Options) (*Scanner, error) {
	keyCol, attrCol, dom, err := opts.resolveSchema(schema, true)
	if err != nil {
		return nil, err
	}
	if opts.BandwidthOverride <= 0 {
		return nil, errors.New("mark: streaming detect requires BandwidthOverride (stream length is unknown)")
	}
	return newScanner(keyCol, attrCol, dom, 0, wmLen, opts)
}

func newScanner(keyCol, attrCol int, dom *relation.Domain, n, wmLen int, opts Options) (*Scanner, error) {
	if wmLen <= 0 {
		return nil, errors.New("mark: non-positive watermark length")
	}
	bw := opts.bandwidth(n)
	if bw < wmLen {
		return nil, fmt.Errorf("%w: |wm|=%d, N/e=%d (N=%d, e=%d)",
			ErrInsufficientBandwidth, wmLen, bw, n, opts.E)
	}
	h1, err := opts.K1.NewHasher()
	if err != nil {
		return nil, fmt.Errorf("mark: k1: %w", err)
	}
	h2, err := opts.K2.NewHasher()
	if err != nil {
		return nil, fmt.Errorf("mark: k2: %w", err)
	}
	kern1, err := opts.K1.NewKernel(opts.HashKernel)
	if err != nil {
		return nil, fmt.Errorf("mark: k1: %w", err)
	}
	kern2, err := opts.K2.NewKernel(opts.HashKernel)
	if err != nil {
		return nil, fmt.Errorf("mark: k2: %w", err)
	}
	return &Scanner{
		opts:    opts,
		k1s:     string(opts.K1),
		keyCol:  keyCol,
		attrCol: attrCol,
		dom:     dom,
		bw:      bw,
		wmLen:   wmLen,
		h1:      h1,
		h2:      h2,
		kern1:   kern1,
		kern2:   kern2,
	}, nil
}

// Bandwidth returns the fixed |wm_data| of this pass.
func (s *Scanner) Bandwidth() int { return s.bw }

// Tally is the partial detection state accumulated over one or more row
// ranges: per-position vote counts, the last vote seen in scan order
// (for the LastWriteWins ablation), and the scan counters.
type Tally struct {
	// Rows is the number of tuples scanned.
	Rows int
	// Fit is the number of tuples passing the fitness criterion.
	Fit int
	// UnknownValues counts fit tuples whose value fell outside the domain.
	UnknownValues int
	// Votes holds per-position 0/1 vote counts.
	Votes []ecc.VoteTally
	// Last holds the last vote per position in scan order (ecc.Erased
	// where the range cast no vote).
	Last []uint8
}

// NewTally returns an empty tally sized for the scanner's bandwidth.
func (s *Scanner) NewTally() *Tally {
	t := &Tally{
		Votes: make([]ecc.VoteTally, s.bw),
		Last:  make([]uint8, s.bw),
	}
	for i := range t.Last {
		t.Last[i] = ecc.Erased
	}
	return t
}

// Reset clears t for reuse, keeping its bandwidth-sized arrays — the
// pooling hook the streaming fan-out uses to recycle per-chunk tallies.
func (t *Tally) Reset() {
	t.Rows, t.Fit, t.UnknownValues = 0, 0, 0
	clear(t.Votes)
	for i := range t.Last {
		t.Last[i] = ecc.Erased
	}
}

// ScanTuple accumulates one tuple's vote into t — the single vote kernel
// every detection path (sequential, chunked, streaming, batched) runs per
// tuple: re-derive fitness and bit position from the tuple's own key, read
// the value-index parity, tally it. tup must be in the schema attribute
// order the scanner was prepared against; the relation it came from is
// never needed. Concurrent callers must use distinct tallies and merge
// them afterwards in scan order with Tally.Merge.
func (s *Scanner) ScanTuple(tup relation.Tuple, t *Tally) {
	t.Rows++
	keyVal := tup[s.keyCol]
	d1 := s.h1.HashString(keyVal)
	if !keyhash.Fit(d1, s.opts.E) {
		return
	}
	t.Fit++
	idx, ok := s.dom.Index(tup[s.attrCol])
	if !ok {
		t.UnknownValues++
		return
	}
	pos := int(s.h2.HashString(keyVal).Mod(uint64(s.bw)))
	bit := uint8(idx & 1)
	if bit == ecc.One {
		t.Votes[pos].Ones++
	} else {
		t.Votes[pos].Zeros++
	}
	t.Last[pos] = bit
}

// Scan reads rows [lo, hi) of r and accumulates their votes into t,
// walking the range in DefaultBlockRows-sized blocks through ScanBlock
// (one scratch for the whole call). The votes are bit-identical to the
// ScanTuple loop over the same rows; the relation is never modified.
// Concurrent Scan calls must use distinct tallies; merge them afterwards
// with Tally.Merge.
func (s *Scanner) Scan(r *relation.Relation, lo, hi int, t *Tally) error {
	if err := checkRange(r, lo, hi); err != nil {
		return err
	}
	var bs BlockScratch
	for blockLo := lo; ; blockLo += DefaultBlockRows {
		blockHi := min(blockLo+DefaultBlockRows, hi)
		if err := s.ScanBlock(r, blockLo, blockHi, t, &bs); err != nil {
			return err
		}
		if blockHi == hi {
			return nil
		}
	}
}

// Merge folds a tally covering a LATER row range into t. Vote counts are
// commutative; the Last column is not — merge tallies in scan order so
// that LastWriteWins aggregation reproduces the sequential pass exactly.
func (t *Tally) Merge(later *Tally) {
	t.Rows += later.Rows
	t.Fit += later.Fit
	t.UnknownValues += later.UnknownValues
	for i := range t.Votes {
		t.Votes[i].Zeros += later.Votes[i].Zeros
		t.Votes[i].Ones += later.Votes[i].Ones
		if later.Last[i] != ecc.Erased {
			t.Last[i] = later.Last[i]
		}
	}
}

// Report aggregates a completed tally per the configured vote-aggregation
// policy and ECC-decodes the result — the back half of Figure 2(a).
func (s *Scanner) Report(t *Tally) (DetectReport, error) {
	rep := DetectReport{
		Tuples:        t.Rows,
		Fit:           t.Fit,
		UnknownValues: t.UnknownValues,
		Bandwidth:     s.bw,
	}
	wmData := make(ecc.Bits, s.bw)
	marginSum := 0.0
	for i := range wmData {
		switch s.opts.Aggregation {
		case LastWriteWins:
			wmData[i] = t.Last[i]
		default:
			if t.Votes[i].Ones == 0 && t.Votes[i].Zeros == 0 {
				wmData[i] = ecc.Erased
			} else {
				wmData[i] = t.Votes[i].Winner(ecc.Zero)
			}
		}
		if wmData[i] != ecc.Erased {
			rep.PositionsFilled++
			marginSum += t.Votes[i].Margin()
		}
		if wmData[i] == ecc.Erased && s.opts.ZeroUnfilled {
			wmData[i] = ecc.Zero // paper-literal zero-initialised wm_data
		}
	}
	if rep.PositionsFilled > 0 {
		rep.MeanMargin = marginSum / float64(rep.PositionsFilled)
	}

	wm, err := s.opts.code().Decode(wmData, s.wmLen)
	if err != nil {
		return rep, err
	}
	rep.WM = wm
	return rep, nil
}
