package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSourceDeterministic(t *testing.T) {
	a, b := NewSource("seed"), NewSource("seed")
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("sources diverged at draw %d", i)
		}
	}
}

func TestSourceSeedSensitivity(t *testing.T) {
	a, b := NewSource("seed-1"), NewSource("seed-2")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same != 0 {
		t.Fatalf("different seeds shared %d of 100 draws", same)
	}
}

func TestForkIndependence(t *testing.T) {
	parent := NewSource("parent")
	c1 := parent.Fork("pass-1")
	c2 := parent.Fork("pass-2")
	c1again := NewSource("parent").Fork("pass-1")
	if c1.Uint64() != c1again.Uint64() {
		t.Fatal("fork not deterministic")
	}
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("sibling forks produced identical draws")
	}
}

func TestForkDoesNotDisturbParent(t *testing.T) {
	a := NewSource("p")
	b := NewSource("p")
	_ = a.Fork("child")
	for i := 0; i < 16; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Fork consumed parent state")
		}
	}
}

func TestIntnRange(t *testing.T) {
	s := NewSource("intn")
	for _, n := range []int{1, 2, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := s.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsNonPositive(t *testing.T) {
	for _, n := range []int{0, -3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Intn(%d): expected panic", n)
				}
			}()
			NewSource("x").Intn(n)
		}()
	}
}

func TestIntnUniform(t *testing.T) {
	s := NewSource("uniform")
	const n, trials = 10, 50000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[s.Intn(n)]++
	}
	want := float64(trials) / n
	for v, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("value %d drawn %d times, want ~%.0f", v, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := NewSource("f64")
	sum := 0.0
	const n = 20000
	for i := 0; i < n; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
		sum += f
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := NewSource("perm")
	for _, n := range []int{0, 1, 5, 100} {
		p := s.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestSampleDistinct(t *testing.T) {
	s := NewSource("sample")
	f := func(n16, k16 uint16) bool {
		n := int(n16%500) + 1
		k := int(k16) % (n + 1)
		got := s.Sample(n, k)
		if len(got) != k {
			return false
		}
		seen := map[int]bool{}
		for _, v := range got {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSamplePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k > n")
		}
	}()
	NewSource("x").Sample(3, 4)
}

func TestSampleCoverage(t *testing.T) {
	// Every index should be selectable.
	s := NewSource("cov")
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		for _, v := range s.Sample(10, 3) {
			seen[v] = true
		}
	}
	if len(seen) != 10 {
		t.Fatalf("Sample covered %d of 10 indices", len(seen))
	}
}

func TestBoolProbability(t *testing.T) {
	s := NewSource("bool")
	const trials = 40000
	hits := 0
	for i := 0; i < trials; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	want := 0.3 * trials
	if math.Abs(float64(hits)-want) > 5*math.Sqrt(want*0.7) {
		t.Errorf("Bool(0.3) hit %d of %d, want ~%.0f", hits, trials, want)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	s := NewSource("norm")
	const n = 50000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := s.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	s := NewSource("shuffle")
	vals := []int{10, 20, 30, 40, 50, 60}
	orig := append([]int(nil), vals...)
	s.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	counts := map[int]int{}
	for _, v := range vals {
		counts[v]++
	}
	for _, v := range orig {
		if counts[v] != 1 {
			t.Fatalf("shuffle lost or duplicated %d: %v", v, vals)
		}
	}
}
