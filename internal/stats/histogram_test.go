package stats

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	h.Add("chicago")
	h.Add("chicago")
	h.Add("boston")
	if h.Total() != 3 || h.Distinct() != 2 {
		t.Fatalf("total=%d distinct=%d, want 3/2", h.Total(), h.Distinct())
	}
	if h.Count("chicago") != 2 || h.Count("boston") != 1 || h.Count("nyc") != 0 {
		t.Fatal("wrong counts")
	}
	if f := h.Freq("chicago"); math.Abs(f-2.0/3.0) > 1e-12 {
		t.Fatalf("Freq(chicago) = %v", f)
	}
}

func TestHistogramEmptyFreq(t *testing.T) {
	h := NewHistogram()
	if h.Freq("x") != 0 {
		t.Fatal("empty histogram should report 0 frequency")
	}
}

func TestHistogramAddNRemove(t *testing.T) {
	h := NewHistogram()
	h.AddN("a", 5)
	h.AddN("a", -2)
	if h.Count("a") != 3 || h.Total() != 3 {
		t.Fatalf("count=%d total=%d after partial removal", h.Count("a"), h.Total())
	}
	h.AddN("a", -3)
	if h.Count("a") != 0 || h.Distinct() != 0 || h.Total() != 0 {
		t.Fatal("full removal should delete the label")
	}
}

func TestHistogramClampNegative(t *testing.T) {
	h := NewHistogram()
	h.AddN("a", 2)
	h.AddN("a", -10) // over-removal clamps at zero
	if h.Count("a") != 0 || h.Total() != 0 {
		t.Fatalf("clamp failed: count=%d total=%d", h.Count("a"), h.Total())
	}
}

func TestHistogramLabelsSorted(t *testing.T) {
	h := NewHistogram()
	for _, l := range []string{"zebra", "apple", "mango"} {
		h.Add(l)
	}
	want := []string{"apple", "mango", "zebra"}
	if got := h.Labels(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Labels() = %v, want %v", got, want)
	}
}

func TestFreqVectorAligned(t *testing.T) {
	h := NewHistogram()
	h.AddN("b", 3)
	h.AddN("a", 1)
	labels, freqs := h.FreqVector()
	if !reflect.DeepEqual(labels, []string{"a", "b"}) {
		t.Fatalf("labels %v", labels)
	}
	if math.Abs(freqs[0]-0.25) > 1e-12 || math.Abs(freqs[1]-0.75) > 1e-12 {
		t.Fatalf("freqs %v", freqs)
	}
}

func TestL1DistanceSelfZero(t *testing.T) {
	h := NewHistogram()
	h.AddN("a", 3)
	h.AddN("b", 7)
	if d := h.L1Distance(h); d != 0 {
		t.Fatalf("self distance %v", d)
	}
}

func TestL1DistanceDisjoint(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	a.AddN("x", 5)
	b.AddN("y", 5)
	if d := a.L1Distance(b); math.Abs(d-2) > 1e-12 {
		t.Fatalf("disjoint distance %v, want 2", d)
	}
}

func TestL1DistanceSymmetric(t *testing.T) {
	f := func(counts [6]uint8) bool {
		a, b := NewHistogram(), NewHistogram()
		labels := []string{"p", "q", "r"}
		for i, l := range labels {
			a.AddN(l, int(counts[i]))
			b.AddN(l, int(counts[i+3]))
		}
		if a.Total() == 0 || b.Total() == 0 {
			return true
		}
		return math.Abs(a.L1Distance(b)-b.L1Distance(a)) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramClone(t *testing.T) {
	h := NewHistogram()
	h.AddN("a", 2)
	c := h.Clone()
	c.Add("a")
	c.Add("b")
	if h.Count("a") != 2 || h.Count("b") != 0 {
		t.Fatal("clone mutation leaked into original")
	}
	if c.Count("a") != 3 || c.Total() != 4 {
		t.Fatal("clone did not copy state")
	}
}
