package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNormalCDFKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1, 0.8413447460685429},
		{-1, 0.15865525393145705},
		{1.28, 0.8997274320455896}, // the paper's 10% threshold z
		{2, 0.9772498680518208},
		{-3, 0.0013498980316300933},
	}
	for _, c := range cases {
		if got := NormalCDF(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("NormalCDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestNormalSurvivalComplement(t *testing.T) {
	for _, x := range []float64{-4, -1, 0, 0.5, 1.28, 3, 6} {
		if s := NormalCDF(x) + NormalSurvival(x); math.Abs(s-1) > 1e-12 {
			t.Errorf("CDF+Survival at %v = %v, want 1", x, s)
		}
	}
	// Deep tail keeps precision where 1-CDF would round to 0.
	if s := NormalSurvival(10); s <= 0 || s > 1e-20 {
		t.Errorf("Survival(10) = %v, want tiny positive", s)
	}
}

func TestNormalQuantileRoundTrip(t *testing.T) {
	for _, p := range []float64{1e-10, 0.001, 0.1, 0.3, 0.5, 0.7, 0.9, 0.975, 1 - 1e-10} {
		z := NormalQuantile(p)
		if got := NormalCDF(z); math.Abs(got-p) > 1e-10 {
			t.Errorf("CDF(Quantile(%v)) = %v", p, got)
		}
	}
}

func TestNormalQuantilePaperThreshold(t *testing.T) {
	// Section 4.4: θ = 10% upper tail ⇒ z ≈ 1.28 by table lookup.
	z := NormalQuantile(0.9)
	if math.Abs(z-1.2815515655446004) > 1e-9 {
		t.Errorf("Quantile(0.9) = %v, want 1.28155…", z)
	}
}

func TestNormalQuantileEdges(t *testing.T) {
	if !math.IsInf(NormalQuantile(0), -1) {
		t.Error("Quantile(0) should be -Inf")
	}
	if !math.IsInf(NormalQuantile(1), 1) {
		t.Error("Quantile(1) should be +Inf")
	}
	if !math.IsNaN(NormalQuantile(-0.1)) || !math.IsNaN(NormalQuantile(1.1)) {
		t.Error("out-of-range p should give NaN")
	}
}

func TestLogBinomialCoeff(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{5, 2, math.Log(10)},
		{10, 0, 0},
		{10, 10, 0},
		{20, 10, math.Log(184756)},
	}
	for _, c := range cases {
		if got := LogBinomialCoeff(c.n, c.k); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("LogBinomialCoeff(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
	if !math.IsInf(LogBinomialCoeff(5, 6), -1) {
		t.Error("C(5,6) should be log(0) = -Inf")
	}
}

func TestBinomialPMFSumsToOne(t *testing.T) {
	for _, tc := range []struct {
		n int
		p float64
	}{{10, 0.5}, {20, 0.7}, {100, 0.03}} {
		sum := 0.0
		for k := 0; k <= tc.n; k++ {
			sum += BinomialPMF(tc.n, k, tc.p)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("PMF(n=%d,p=%v) sums to %v", tc.n, tc.p, sum)
		}
	}
}

func TestBinomialPMFDegenerate(t *testing.T) {
	if got := BinomialPMF(5, 0, 0); got != 1 {
		t.Errorf("PMF(5,0,p=0) = %v, want 1", got)
	}
	if got := BinomialPMF(5, 5, 1); got != 1 {
		t.Errorf("PMF(5,5,p=1) = %v, want 1", got)
	}
	if got := BinomialPMF(5, 3, 0); got != 0 {
		t.Errorf("PMF(5,3,p=0) = %v, want 0", got)
	}
}

func TestBinomialTailKnown(t *testing.T) {
	// P[X >= 15] for X~B(20, 0.7): the paper's Table A2 scenario where the
	// attacker reaches a/e = 1200/60 = 20 marked tuples with flip rate 0.7.
	got := BinomialTail(20, 15, 0.7)
	// Exact value computed independently: Σ_{15}^{20} C(20,i) 0.7^i 0.3^{20-i}.
	want := 0.41637
	if math.Abs(got-want) > 5e-5 {
		t.Errorf("BinomialTail(20,15,0.7) = %v, want ~%v", got, want)
	}
}

func TestBinomialTailEdges(t *testing.T) {
	if got := BinomialTail(10, 0, 0.3); got != 1 {
		t.Errorf("Tail k=0 = %v, want 1", got)
	}
	if got := BinomialTail(10, 11, 0.3); got != 0 {
		t.Errorf("Tail k>n = %v, want 0", got)
	}
	if got := BinomialTail(10, -5, 0.3); got != 1 {
		t.Errorf("Tail negative k = %v, want 1", got)
	}
}

// Property: the tail is monotone non-increasing in k.
func TestBinomialTailMonotone(t *testing.T) {
	f := func(n8 uint8, pRaw uint16) bool {
		n := int(n8%60) + 1
		p := float64(pRaw) / 65535
		prev := 1.0
		for k := 0; k <= n+1; k++ {
			cur := BinomialTail(n, k, p)
			if cur > prev+1e-12 {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// The normal approximation used in the paper's equation (2) should agree
// with the exact tail to a few percent when the CLT condition holds.
func TestNormalApproximationAgreesWithExact(t *testing.T) {
	n, p, r := 100, 0.7, 75
	if !CLTApplies(n, p) {
		t.Fatal("CLT should apply")
	}
	exact := BinomialTail(n, r, p)
	z := (float64(r) - BinomialMean(n, p)) / BinomialStdDev(n, p)
	approx := NormalSurvival(z)
	if math.Abs(exact-approx) > 0.05 {
		t.Errorf("exact %v vs normal approx %v differ too much", exact, approx)
	}
}

func TestCLTApplies(t *testing.T) {
	if CLTApplies(10, 0.1) {
		t.Error("n·p = 1 should fail the paper's condition")
	}
	if !CLTApplies(20, 0.7) {
		t.Error("n·p = 14, n(1-p) = 6 should pass")
	}
}

// Monte-Carlo agreement between Source.NormFloat64 and NormalCDF.
func TestNormalSamplerMatchesCDF(t *testing.T) {
	s := NewSource("mc-normal")
	const n = 40000
	below := 0
	for i := 0; i < n; i++ {
		if s.NormFloat64() < 1.0 {
			below++
		}
	}
	got := float64(below) / n
	want := NormalCDF(1.0)
	if math.Abs(got-want) > 0.01 {
		t.Errorf("empirical P[Z<1] = %v, want %v", got, want)
	}
}
