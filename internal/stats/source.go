// Package stats provides the statistical substrate for the watermarking
// system: a deterministic keyed pseudorandom source (used by the data
// generator and the attack suite so every experiment is reproducible from a
// string seed), samplers (uniform, Zipf), the normal and binomial
// distribution mathematics behind the Section 4.4 vulnerability analysis,
// and histogram tooling for the Section 4.2 frequency-domain channel.
package stats

import (
	"crypto/sha256"
	"encoding/binary"
	"math"
)

// Source is a deterministic pseudorandom source built from SHA-256 in
// counter mode. Unlike math/rand it is stable across Go releases and
// platforms, which matters because experiment outputs (EXPERIMENTS.md) must
// be regenerable bit-for-bit from the recorded seeds.
type Source struct {
	key     [32]byte
	counter uint64
	buf     [32]byte
	pos     int // next unread byte in buf; len(buf) means exhausted
}

// NewSource creates a Source from a string seed.
func NewSource(seed string) *Source {
	s := &Source{key: sha256.Sum256([]byte("catwm-src-v1:" + seed))}
	s.pos = len(s.buf)
	return s
}

// Fork derives an independent child source. Streams drawn from the child
// are statistically independent of the parent's for distinct labels, which
// lets one experiment seed fan out to per-pass, per-attack sub-streams.
func (s *Source) Fork(label string) *Source {
	h := sha256.New()
	h.Write(s.key[:])
	h.Write([]byte("/fork/"))
	h.Write([]byte(label))
	var child Source
	h.Sum(child.key[:0])
	child.pos = len(child.buf)
	return &child
}

func (s *Source) refill() {
	var block [40]byte
	copy(block[:32], s.key[:])
	binary.BigEndian.PutUint64(block[32:], s.counter)
	s.counter++
	s.buf = sha256.Sum256(block[:])
	s.pos = 0
}

// Uint64 returns the next 64 pseudorandom bits.
func (s *Source) Uint64() uint64 {
	if s.pos+8 > len(s.buf) {
		s.refill()
	}
	v := binary.BigEndian.Uint64(s.buf[s.pos : s.pos+8])
	s.pos += 8
	return v
}

// Intn returns a uniform integer in [0, n). n must be positive.
// Rejection sampling removes modulo bias.
func (s *Source) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn requires n > 0")
	}
	un := uint64(n)
	max := (^uint64(0) / un) * un
	for {
		v := s.Uint64()
		if v < max {
			return int(v % un)
		}
	}
}

// Int63 returns a uniform non-negative int64.
func (s *Source) Int63() int64 {
	return int64(s.Uint64() >> 1)
}

// Float64 returns a uniform float64 in [0, 1).
func (s *Source) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}

// Bit returns a uniform bit as 0 or 1.
func (s *Source) Bit() uint8 {
	return uint8(s.Uint64() & 1)
}

// Bool returns true with probability p.
func (s *Source) Bool(p float64) bool {
	return s.Float64() < p
}

// Perm returns a uniform permutation of [0, n).
func (s *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	s.ShuffleInts(p)
	return p
}

// ShuffleInts performs a Fisher–Yates shuffle of p in place.
func (s *Source) ShuffleInts(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Shuffle performs a Fisher–Yates shuffle using the provided swap function.
func (s *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		swap(i, j)
	}
}

// Sample returns k distinct indices drawn uniformly from [0, n) in
// selection order. It uses a partial Fisher–Yates so it is O(n) memory but
// O(k) swaps. k must satisfy 0 <= k <= n.
func (s *Source) Sample(n, k int) []int {
	if k < 0 || k > n {
		panic("stats: Sample requires 0 <= k <= n")
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + s.Intn(n-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	return idx[:k]
}

// NormFloat64 returns a standard-normal variate (Box–Muller; the polar
// variant avoids trig in the common path).
func (s *Source) NormFloat64() float64 {
	for {
		u := 2*s.Float64() - 1
		v := 2*s.Float64() - 1
		r2 := u*u + v*v
		if r2 > 0 && r2 < 1 {
			return u * math.Sqrt(-2*math.Log(r2)/r2)
		}
	}
}
