package stats

import "math"

// This file holds the closed-form distribution mathematics used by the
// Section 4.4 vulnerability analysis: the standard normal CDF and quantile
// (the paper's "normal distribution table lookup"), and exact binomial tail
// probabilities for cross-checking the paper's central-limit approximation.

// NormalCDF returns Φ(x), the standard normal cumulative distribution
// function.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormalSurvival returns 1 − Φ(x) with full precision in the upper tail.
func NormalSurvival(x float64) float64 {
	return 0.5 * math.Erfc(x/math.Sqrt2)
}

// NormalQuantile returns Φ⁻¹(p) for p in (0, 1): the z value such that
// Φ(z) = p. It uses the Acklam rational approximation refined by one
// Halley step against math.Erfc, giving ~1e-15 relative accuracy — far
// beyond the printed tables the paper consulted.
func NormalQuantile(p float64) float64 {
	if math.IsNaN(p) || p <= 0 || p >= 1 {
		if p == 0 {
			return math.Inf(-1)
		}
		if p == 1 {
			return math.Inf(1)
		}
		return math.NaN()
	}

	// Acklam's approximation.
	const (
		pLow  = 0.02425
		pHigh = 1 - pLow
	)
	var a = [6]float64{
		-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00,
	}
	var b = [5]float64{
		-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01,
	}
	var c = [6]float64{
		-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00,
	}
	var d = [4]float64{
		7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00,
	}

	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= pHigh:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}

	// One Halley refinement.
	e := NormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}

// LogBinomialCoeff returns ln C(n, k) via lgamma, valid for large n.
func LogBinomialCoeff(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	ln1, _ := math.Lgamma(float64(n + 1))
	lk, _ := math.Lgamma(float64(k + 1))
	lnk, _ := math.Lgamma(float64(n - k + 1))
	return ln1 - lk - lnk
}

// BinomialPMF returns P[X = k] for X ~ Binomial(n, p), computed in
// log-space for numerical stability at large n.
func BinomialPMF(n, k int, p float64) float64 {
	if k < 0 || k > n {
		return 0
	}
	if p <= 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if p >= 1 {
		if k == n {
			return 1
		}
		return 0
	}
	lp := LogBinomialCoeff(n, k) +
		float64(k)*math.Log(p) + float64(n-k)*math.Log(1-p)
	return math.Exp(lp)
}

// BinomialTail returns P[X >= k] for X ~ Binomial(n, p). This is the exact
// form of the paper's equation (1): the probability that a random-alteration
// attack flips at least r embedded bits when it reaches a/e marked tuples
// each flipped with success rate p.
func BinomialTail(n, k int, p float64) float64 {
	if k <= 0 {
		return 1
	}
	if k > n {
		return 0
	}
	// Sum the smaller side for accuracy.
	if float64(k) > float64(n)*p {
		sum := 0.0
		for i := k; i <= n; i++ {
			sum += BinomialPMF(n, i, p)
		}
		return math.Min(sum, 1)
	}
	sum := 0.0
	for i := 0; i < k; i++ {
		sum += BinomialPMF(n, i, p)
	}
	return math.Max(0, 1-sum)
}

// BinomialMean returns E[X] = n·p.
func BinomialMean(n int, p float64) float64 { return float64(n) * p }

// BinomialStdDev returns σ = sqrt(n·p·(1−p)), the denominator of the
// paper's equation (2).
func BinomialStdDev(n int, p float64) float64 {
	return math.Sqrt(float64(n) * p * (1 - p))
}

// CLTApplies reports the paper's stated applicability condition for the
// central-limit approximation: n·p ≥ 5 and n·(1−p) ≥ 5.
func CLTApplies(n int, p float64) bool {
	return float64(n)*p >= 5 && float64(n)*(1-p) >= 5
}
