package stats

import (
	"math"
	"testing"
)

func TestZipfProbsSumToOne(t *testing.T) {
	for _, tc := range []struct {
		n int
		s float64
	}{{1, 1}, {10, 0}, {100, 1}, {1000, 1.5}} {
		z := NewZipf(tc.n, tc.s)
		sum := 0.0
		for k := 0; k < tc.n; k++ {
			sum += z.Prob(k)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("Zipf(%d,%v) probs sum to %v", tc.n, tc.s, sum)
		}
	}
}

func TestZipfMonotoneRanks(t *testing.T) {
	z := NewZipf(50, 1.0)
	for k := 1; k < 50; k++ {
		if z.Prob(k) > z.Prob(k-1)+1e-15 {
			t.Fatalf("rank %d more probable than rank %d", k, k-1)
		}
	}
}

func TestZipfZeroExponentUniform(t *testing.T) {
	z := NewZipf(10, 0)
	for k := 0; k < 10; k++ {
		if math.Abs(z.Prob(k)-0.1) > 1e-12 {
			t.Fatalf("s=0 rank %d prob %v, want 0.1", k, z.Prob(k))
		}
	}
}

func TestZipfSampleMatchesProb(t *testing.T) {
	z := NewZipf(20, 1.0)
	src := NewSource("zipf-sample")
	const trials = 60000
	counts := make([]int, 20)
	for i := 0; i < trials; i++ {
		counts[z.Sample(src)]++
	}
	for k := 0; k < 20; k++ {
		want := z.Prob(k) * trials
		tol := 5*math.Sqrt(want) + 5
		if math.Abs(float64(counts[k])-want) > tol {
			t.Errorf("rank %d sampled %d times, want ~%.0f", k, counts[k], want)
		}
	}
}

func TestZipfSampleRange(t *testing.T) {
	z := NewZipf(7, 2.0)
	src := NewSource("zipf-range")
	for i := 0; i < 5000; i++ {
		if k := z.Sample(src); k < 0 || k >= 7 {
			t.Fatalf("sample %d out of range", k)
		}
	}
}

func TestZipfPanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewZipf(0, 1) },
		func() { NewZipf(5, -0.1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestZipfProbOutOfRange(t *testing.T) {
	z := NewZipf(5, 1)
	if z.Prob(-1) != 0 || z.Prob(5) != 0 {
		t.Error("out-of-range ranks should have probability 0")
	}
}

func TestWeightedSample(t *testing.T) {
	w := NewWeighted([]string{"a", "b", "c"}, []float64{1, 2, 7})
	src := NewSource("weighted")
	const trials = 50000
	counts := map[string]int{}
	for i := 0; i < trials; i++ {
		counts[w.Sample(src)]++
	}
	wants := map[string]float64{"a": 0.1, "b": 0.2, "c": 0.7}
	for label, frac := range wants {
		want := frac * trials
		if math.Abs(float64(counts[label])-want) > 5*math.Sqrt(want) {
			t.Errorf("label %q sampled %d, want ~%.0f", label, counts[label], want)
		}
	}
}

func TestWeightedZeroWeightNeverSampled(t *testing.T) {
	w := NewWeighted([]string{"never", "always"}, []float64{0, 1})
	src := NewSource("w0")
	for i := 0; i < 2000; i++ {
		if w.Sample(src) == "never" {
			t.Fatal("zero-weight label sampled")
		}
	}
}

func TestWeightedPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty":    func() { NewWeighted(nil, nil) },
		"mismatch": func() { NewWeighted([]string{"a"}, []float64{1, 2}) },
		"negative": func() { NewWeighted([]string{"a"}, []float64{-1}) },
		"zero sum": func() { NewWeighted([]string{"a", "b"}, []float64{0, 0}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
