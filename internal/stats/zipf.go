package stats

import (
	"math"
	"sort"
)

// Zipf is a sampler over ranks {0, …, n−1} with P(rank k) ∝ 1/(k+1)^s.
// The Wal-Mart stand-in data generator uses it for Item_Nbr: real product
// sales follow a heavy-tailed popularity curve, and the paper's
// frequency-domain channel (Section 4.2) explicitly relies on the value
// occurrence distribution being non-uniform ("imagine airport or product
// codes").
type Zipf struct {
	cdf []float64 // cumulative probabilities, cdf[n-1] == 1
}

// NewZipf builds a Zipf distribution over n ranks with exponent s ≥ 0.
// s = 0 degenerates to uniform. n must be positive.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("stats: Zipf requires n > 0")
	}
	if s < 0 {
		panic("stats: Zipf exponent must be non-negative")
	}
	weights := make([]float64, n)
	total := 0.0
	for k := 0; k < n; k++ {
		w := math.Pow(float64(k+1), -s)
		weights[k] = w
		total += w
	}
	cdf := make([]float64, n)
	acc := 0.0
	for k, w := range weights {
		acc += w / total
		cdf[k] = acc
	}
	cdf[n-1] = 1 // guard against rounding shortfall
	return &Zipf{cdf: cdf}
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }

// Prob returns P(rank k).
func (z *Zipf) Prob(k int) float64 {
	if k < 0 || k >= len(z.cdf) {
		return 0
	}
	if k == 0 {
		return z.cdf[0]
	}
	return z.cdf[k] - z.cdf[k-1]
}

// Sample draws one rank using the provided source (inverse-CDF with binary
// search; O(log n)).
func (z *Zipf) Sample(src *Source) int {
	u := src.Float64()
	return sort.SearchFloat64s(z.cdf, u)
}

// Weighted is a general finite discrete distribution, used by the attack
// suite's subset-addition attack to mint tuples "conforming to the overall
// data distribution" (Section 4.6) from an empirical histogram.
type Weighted struct {
	labels []string
	cdf    []float64
}

// NewWeighted builds a sampler over labels with the given non-negative
// weights. Labels and weights must be the same non-zero length with a
// positive total weight.
func NewWeighted(labels []string, weights []float64) *Weighted {
	if len(labels) == 0 || len(labels) != len(weights) {
		panic("stats: Weighted requires matching non-empty labels and weights")
	}
	total := 0.0
	for _, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic("stats: Weighted requires non-negative finite weights")
		}
		total += w
	}
	if total <= 0 {
		panic("stats: Weighted requires positive total weight")
	}
	cdf := make([]float64, len(weights))
	acc := 0.0
	for i, w := range weights {
		acc += w / total
		cdf[i] = acc
	}
	cdf[len(cdf)-1] = 1
	return &Weighted{labels: append([]string(nil), labels...), cdf: cdf}
}

// Sample draws one label.
func (w *Weighted) Sample(src *Source) string {
	u := src.Float64()
	return w.labels[sort.SearchFloat64s(w.cdf, u)]
}
