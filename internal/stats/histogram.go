package stats

import "sort"

// Histogram is an occurrence-count table over categorical labels. It backs
// the paper's value occurrence frequency transform f_A(a_i) (Sections 3.1,
// 4.2) and the frequency-profile matching used to undo bijective attribute
// remapping (Section 4.5).
type Histogram struct {
	counts map[string]int
	total  int
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make(map[string]int)}
}

// Add records one occurrence of label.
func (h *Histogram) Add(label string) { h.AddN(label, 1) }

// AddN records n occurrences of label. n may be negative to remove
// occurrences but the stored count never drops below zero.
func (h *Histogram) AddN(label string, n int) {
	c := h.counts[label] + n
	if c < 0 {
		n -= c // clamp: only remove what exists
		c = 0
	}
	if c == 0 {
		delete(h.counts, label)
	} else {
		h.counts[label] = c
	}
	h.total += n
}

// Count returns the occurrence count of label.
func (h *Histogram) Count(label string) int { return h.counts[label] }

// Total returns the total number of recorded occurrences.
func (h *Histogram) Total() int { return h.total }

// Distinct returns the number of distinct labels present.
func (h *Histogram) Distinct() int { return len(h.counts) }

// Freq returns the normalised occurrence frequency f(label) in [0,1],
// the paper's f_A(a_j).
func (h *Histogram) Freq(label string) float64 {
	if h.total == 0 {
		return 0
	}
	return float64(h.counts[label]) / float64(h.total)
}

// Labels returns all labels sorted lexicographically — the paper's sorted
// value set {a_1, …, a_nA} ("distinct and can be sorted, e.g. by ASCII").
func (h *Histogram) Labels() []string {
	out := make([]string, 0, len(h.counts))
	for l := range h.counts {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// FreqVector returns (labels, frequencies) with labels sorted
// lexicographically, for handing to the numeric-set watermark encoder.
func (h *Histogram) FreqVector() ([]string, []float64) {
	labels := h.Labels()
	freqs := make([]float64, len(labels))
	for i, l := range labels {
		freqs[i] = h.Freq(l)
	}
	return labels, freqs
}

// L1Distance returns Σ |f_h(l) − f_o(l)| over the union of labels: the
// total variation ×2 between the two normalised frequency profiles. The
// quality-constraint package uses it to bound frequency drift.
func (h *Histogram) L1Distance(o *Histogram) float64 {
	seen := make(map[string]bool, len(h.counts)+len(o.counts))
	sum := 0.0
	for l := range h.counts {
		seen[l] = true
		d := h.Freq(l) - o.Freq(l)
		if d < 0 {
			d = -d
		}
		sum += d
	}
	for l := range o.counts {
		if seen[l] {
			continue
		}
		sum += o.Freq(l)
	}
	return sum
}

// Clone returns a deep copy.
func (h *Histogram) Clone() *Histogram {
	c := &Histogram{counts: make(map[string]int, len(h.counts)), total: h.total}
	for l, n := range h.counts {
		c.counts[l] = n
	}
	return c
}
