package keyhash

import (
	"testing"
	"testing/quick"
)

func TestBitLen(t *testing.T) {
	cases := []struct {
		x    uint64
		want int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{255, 8}, {256, 9}, {1 << 63, 64}, {^uint64(0), 64},
	}
	for _, c := range cases {
		if got := BitLen(c.x); got != c.want {
			t.Errorf("BitLen(%d) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestMSB(t *testing.T) {
	cases := []struct {
		x    uint64
		b    int
		want uint64
	}{
		{0b1011, 2, 0b10},      // top 2 bits of 1011
		{0b1011, 4, 0b1011},    // exact width
		{0b1011, 8, 0b1011},    // left-padded: value unchanged
		{0b11111111, 3, 0b111}, // top 3 of 8 ones
		{1 << 63, 1, 1},        // single top bit
		{0, 10, 0},             // zero stays zero
		{0xFFFF, 0, 0},         // zero-width request
		{^uint64(0), 64, ^uint64(0)},
	}
	for _, c := range cases {
		if got := MSB(c.x, c.b); got != c.want {
			t.Errorf("MSB(%b, %d) = %b, want %b", c.x, c.b, got, c.want)
		}
	}
}

func TestMSBPanicsOutOfRange(t *testing.T) {
	for _, b := range []int{-1, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("MSB width %d: expected panic", b)
				}
			}()
			MSB(1, b)
		}()
	}
}

// Property: MSB(x,b) always fits in b bits and is a prefix of x.
func TestMSBProperty(t *testing.T) {
	f := func(x uint64, b8 uint8) bool {
		b := int(b8 % 65)
		m := MSB(x, b)
		if BitLen(m) > b {
			return false
		}
		// Shifting the prefix back up must reproduce the top of x.
		n := BitLen(x)
		if n > b {
			return m == x>>uint(n-b)
		}
		return m == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSetBit(t *testing.T) {
	cases := []struct {
		d    uint64
		a    int
		v    uint64
		want uint64
	}{
		{0b1010, 0, 1, 0b1011},
		{0b1011, 0, 0, 0b1010},
		{0b1010, 0, 0, 0b1010}, // idempotent clear
		{0b1011, 0, 1, 0b1011}, // idempotent set
		{0, 63, 1, 1 << 63},
		{1 << 63, 63, 0, 0},
		{0b100, 1, 1, 0b110},
	}
	for _, c := range cases {
		if got := SetBit(c.d, c.a, c.v); got != c.want {
			t.Errorf("SetBit(%b,%d,%d) = %b, want %b", c.d, c.a, c.v, got, c.want)
		}
	}
}

func TestSetBitPanics(t *testing.T) {
	for _, tc := range []struct {
		a int
		v uint64
	}{{-1, 0}, {64, 0}, {0, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetBit(a=%d,v=%d): expected panic", tc.a, tc.v)
				}
			}()
			SetBit(0, tc.a, tc.v)
		}()
	}
}

// Property: after set_bit(d, a, v), Bit(·, a) == v and all other bits are
// untouched — the exact contract Figure 1 depends on.
func TestSetBitProperty(t *testing.T) {
	f := func(d uint64, a8, v8 uint8) bool {
		a := int(a8 % 64)
		v := uint64(v8 % 2)
		r := SetBit(d, a, v)
		if Bit(r, a) != v {
			return false
		}
		mask := ^(uint64(1) << uint(a))
		return r&mask == d&mask
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPairIndexInvariants(t *testing.T) {
	// Exhaustive over small domains and draws: t < n, t&1 == bit.
	for n := 2; n <= 17; n++ {
		for draw := uint64(0); draw < 200; draw++ {
			for bit := uint64(0); bit <= 1; bit++ {
				got := PairIndex(draw, n, bit)
				if got < 0 || got >= n {
					t.Fatalf("PairIndex(%d,%d,%d) = %d out of range", draw, n, bit, got)
				}
				if uint64(got)&1 != bit {
					t.Fatalf("PairIndex(%d,%d,%d) = %d, parity != bit", draw, n, bit, got)
				}
			}
		}
	}
}

func TestPairIndexCoversAllPairs(t *testing.T) {
	// Over many draws every usable value must be reachable.
	const n = 10
	seen := map[int]bool{}
	for draw := uint64(0); draw < 1000; draw++ {
		seen[PairIndex(draw, n, draw%2)] = true
	}
	if len(seen) != n {
		t.Fatalf("PairIndex covered %d of %d values", len(seen), n)
	}
}

func TestPairIndexPanicsTinyDomain(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for n<2")
		}
	}()
	PairIndex(0, 1, 0)
}

// Property: PairIndex with random draws produces near-uniform pair usage.
func TestPairIndexUniformity(t *testing.T) {
	k := NewKey("uniform")
	const n = 8 // 4 pairs
	counts := make([]int, n/2)
	const trials = 8000
	for i := 0; i < trials; i++ {
		d := HashString(k, itoa(i)).Uint64()
		counts[PairIndex(d, n, 0)/2]++
	}
	want := float64(trials) / float64(n/2)
	for p, c := range counts {
		if f := float64(c); f < want*0.85 || f > want*1.15 {
			t.Errorf("pair %d used %d times, want ~%.0f", p, c, want)
		}
	}
}

func TestBitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range position")
		}
	}()
	Bit(0, 64)
}
