package keyhash

import "sync/atomic"

// kernelCounters is one backend's process-wide HashMany activity: two
// atomic adds per HashMany call (i.e. per block lane, not per value), so
// the hash hot loop itself is untouched. Each backendDef owns a pair;
// kernels tick the pair of the def that built them.
type kernelCounters struct {
	calls  atomic.Uint64
	values atomic.Uint64
}

func (c *kernelCounters) tick(values int) {
	c.calls.Add(1)
	c.values.Add(uint64(values))
}

// KernelCounters is the cumulative HashMany activity of one backend.
type KernelCounters struct {
	Calls  uint64 // HashMany invocations
	Values uint64 // key values hashed across those calls
}

// ActiveKernel names the backend a KernelAuto request resolves to on
// this process — the calibrated winner — as the spelling NewKernel
// accepts. Trace spans attach it so a shard's phase timings can be read
// against the kernel that produced them. The first call may run the
// calibration pass (Calibrate caches it); scan paths call this after
// their kernels are built, so in practice it only reads the cache.
func ActiveKernel() string {
	return string(AutoKind())
}

// KernelStats reports per-backend HashMany totals for this process,
// keyed by the concrete kernel kind (KernelAuto resolves to whichever
// backend it picked, so it never appears as a key). The map is built
// from the backend registry, so every kind NewKernel accepts appears —
// a new backend can't silently vanish from /metrics.
func KernelStats() map[KernelKind]KernelCounters {
	out := make(map[KernelKind]KernelCounters, len(registry))
	for _, d := range registry {
		out[d.kind] = KernelCounters{
			Calls:  d.counters.calls.Load(),
			Values: d.counters.values.Load(),
		}
	}
	return out
}
