package keyhash

import "sync/atomic"

// Process-wide kernel invocation counters, one pair per backend. They
// back the wm_keyhash_* sampled families in /metrics: two atomic adds
// per HashMany call (i.e. per block lane, not per value), so the hash
// hot loop itself is untouched.
var (
	portableCalls  atomic.Uint64
	portableValues atomic.Uint64
	multiCalls     atomic.Uint64
	multiValues    atomic.Uint64
)

// KernelCounters is the cumulative HashMany activity of one backend.
type KernelCounters struct {
	Calls  uint64 // HashMany invocations
	Values uint64 // key values hashed across those calls
}

// KernelStats reports per-backend HashMany totals for this process,
// keyed by the concrete kernel kind (KernelAuto resolves to whichever
// backend it picked, so it never appears as a key).
func KernelStats() map[KernelKind]KernelCounters {
	return map[KernelKind]KernelCounters{
		KernelPortable:    {Calls: portableCalls.Load(), Values: portableValues.Load()},
		KernelMultiBuffer: {Calls: multiCalls.Load(), Values: multiValues.Load()},
	}
}
