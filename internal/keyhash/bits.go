package keyhash

// This file implements the bit-level notation of Section 2.1:
//
//	b(X)          — number of bits required to represent X
//	msb(X, b)     — the most significant b bits of X, left-padded with
//	                zeroes when b(X) < b
//	set_bit(d,a,v)— d with bit position a set to value v
//
// These are used verbatim by the embedding algorithm of Figure 1 and are
// exercised directly by the notation tests.

// BitLen returns b(X), the number of bits required to represent x.
// By the paper's convention b(0) = 0 (zero needs no bits; callers left-pad).
func BitLen(x uint64) int {
	n := 0
	for x != 0 {
		n++
		x >>= 1
	}
	return n
}

// MSB returns msb(X, b): the most significant b bits of x's minimal binary
// representation. When b(x) < b the result is x itself, i.e. the
// representation left-padded with (b - b(x)) zero bits, exactly as defined
// in Section 2.1. b must be in [0, 64].
func MSB(x uint64, b int) uint64 {
	if b < 0 || b > 64 {
		panic("keyhash: msb width out of range [0,64]")
	}
	if b == 0 {
		return 0
	}
	n := BitLen(x)
	if n <= b {
		return x
	}
	return x >> uint(n-b)
}

// SetBit returns set_bit(d, a, v): d with bit position a (0 = least
// significant) forced to v. v must be 0 or 1.
func SetBit(d uint64, a int, v uint64) uint64 {
	if a < 0 || a > 63 {
		panic("keyhash: bit position out of range [0,63]")
	}
	if v > 1 {
		panic("keyhash: bit value must be 0 or 1")
	}
	mask := uint64(1) << uint(a)
	if v == 1 {
		return d | mask
	}
	return d &^ mask
}

// Bit returns bit position a of d (0 = least significant).
func Bit(d uint64, a int) uint64 {
	if a < 0 || a > 63 {
		panic("keyhash: bit position out of range [0,63]")
	}
	return (d >> uint(a)) & 1
}

// PairIndex maps a pseudorandom draw onto a categorical value index t in
// [0, n) whose least significant bit equals bit. This realises the paper's
//
//	t = set_bit(msb(H(T(K);k1), b(n_A)), 0, wm_bit)
//
// while guaranteeing t < n for every n ≥ 2 (the raw construct can overflow
// the value set when n is not a power of two — see DESIGN.md, clarification
// 1). Values are organised as ⌊n/2⌋ (even, odd) pairs; the draw picks the
// pair uniformly and bit picks the side, so the decode invariant
// bit == t & 1 always holds.
func PairIndex(draw uint64, n int, bit uint64) int {
	if n < 2 {
		panic("keyhash: PairIndex requires a domain of at least 2 values")
	}
	if bit > 1 {
		panic("keyhash: bit value must be 0 or 1")
	}
	pairs := uint64(n / 2)
	t := 2*(draw%pairs) + bit
	return int(t)
}
