package keyhash

import "encoding/binary"

// The multi-buffer backend: two independent one-shot SHA-256 message
// streams interleaved through the CPU's SHA extensions in a single
// assembly loop (sha256block2_amd64.s). A single-stream SHA-NI
// implementation is latency-bound — each SHA256RNDS2 depends on the
// previous one, so the execution port sits idle most cycles. Feeding two
// independent states through the same instruction stream fills those
// bubbles and raises throughput well above 1.5× without changing a
// single digest bit.

// cpuid is implemented in cpuid_amd64.s.
func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)

// hasSHANI reports whether the CPU has the SHA extensions plus the
// SSSE3/SSE4.1 shuffles the kernel uses.
var hasSHANI = func() bool {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return false
	}
	const ssse3Bit = 1 << 9  // CPUID.1:ECX.SSSE3
	const sse41Bit = 1 << 19 // CPUID.1:ECX.SSE4.1
	const shaBit = 1 << 29   // CPUID.7.0:EBX.SHA
	_, _, ecx1, _ := cpuid(1, 0)
	if ecx1&ssse3Bit == 0 || ecx1&sse41Bit == 0 {
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	return ebx7&shaBit != 0
}()

// sha256block2 runs the SHA-256 compression over two independent
// messages at once: `blocks` 64-byte blocks from p0 are folded into s0
// while the same number from p1 fold into s1. States are plain h[0..7]
// word order (initialize to the IV for a fresh message).
//
//go:noescape
func sha256block2(s0, s1 *[8]uint32, p0, p1 *byte, blocks int)

// sha256IV is the SHA-256 initial state (FIPS 180-4, 5.3.3).
var sha256IV = [8]uint32{
	0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
	0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
}

// laneBytes is the multi-buffer lane width: up to two SHA-256 blocks,
// message plus mandatory padding.
const laneBytes = 128

// multiKernel pairs values into two-lane assembly calls. Immutable and
// safe for concurrent use: all per-call scratch is on the stack.
type multiKernel struct {
	h      *Hasher
	key    Key
	prefix []byte // len(k) ‖ k
}

// newMultiKernel returns the multi-buffer kernel, or nil when the CPU
// lacks SHA extensions. k must already be validated.
func newMultiKernel(k Key) Kernel {
	if !hasSHANI {
		return nil
	}
	h, err := k.NewHasher()
	if err != nil {
		return nil
	}
	return &multiKernel{h: h, key: k, prefix: h.prefix}
}

// blocksFor returns the padded block count of the construct for v — 1 or
// 2 — or 0 when it exceeds the two-block lane (streaming fallback).
func (m *multiKernel) blocksFor(v string) int {
	total := len(m.prefix) + len(v) + len(m.key)
	switch {
	case total+9 <= 64:
		return 1
	case total+9 <= laneBytes:
		return 2
	default:
		return 0
	}
}

// fill assembles the fully padded message len(k) ‖ k ‖ v ‖ k ‖ 0x80 ‖
// 0… ‖ len into a lane buffer, exactly as SHA-256 itself would pad it.
func (m *multiKernel) fill(buf *[laneBytes]byte, v string, blocks int) {
	n := copy(buf[:], m.prefix)
	n += copy(buf[n:], v)
	n += copy(buf[n:], m.key)
	end := 64 * blocks
	buf[n] = 0x80
	clear(buf[n+1 : end-8])
	binary.BigEndian.PutUint64(buf[end-8:end], uint64(n)*8)
}

// HashMany pairs values of equal padded block count and hashes each pair
// in one two-lane assembly call. Odd tails run through the scalar
// Hasher; values beyond the lane width use the streaming construct. The
// digests are bit-identical to Hash/HashString in every case.
func (m *multiKernel) HashMany(values []string, out []Digest) {
	multiCalls.Add(1)
	multiValues.Add(uint64(len(values)))
	_ = out[:len(values)] // one bounds check up front
	var b0, b1 [laneBytes]byte
	pending := [3]int{-1, -1, -1} // pending value index per block count
	for i, v := range values {
		nb := m.blocksFor(v)
		if nb == 0 {
			out[i] = HashString(m.key, v)
			continue
		}
		j := pending[nb]
		if j < 0 {
			pending[nb] = i
			continue
		}
		pending[nb] = -1
		m.fill(&b0, values[j], nb)
		m.fill(&b1, v, nb)
		s0, s1 := sha256IV, sha256IV
		sha256block2(&s0, &s1, &b0[0], &b1[0], nb)
		putDigest(&out[j], &s0)
		putDigest(&out[i], &s1)
	}
	for _, j := range pending[1:] {
		if j >= 0 {
			out[j] = m.h.HashString(values[j])
		}
	}
}

// putDigest serializes a final SHA-256 state into the big-endian digest
// byte order.
func putDigest(d *Digest, s *[8]uint32) {
	for i, w := range s {
		binary.BigEndian.PutUint32(d[4*i:], w)
	}
}
