package keyhash

import (
	"encoding/binary"
	"fmt"
)

// The multi-buffer backend: two independent one-shot SHA-256 message
// streams interleaved through the CPU's SHA extensions in a single
// assembly loop (sha256block2_amd64.s). A single-stream SHA-NI
// implementation is latency-bound — each SHA256RNDS2 depends on the
// previous one, so the execution port sits idle most cycles. Feeding two
// independent states through the same instruction stream fills those
// bubbles and raises throughput well above 1.5× without changing a
// single digest bit.

// cpuid and xgetbv are implemented in cpuid_amd64.s.
func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
func xgetbv(index uint32) (eax, edx uint32)

// init appends the amd64 backends to the registry in increasing lane
// order: 2-lane SHA-NI, 4-lane SHA-NI, 8-lane AVX2. One init keeps the
// registry order deterministic regardless of file compilation order.
func init() {
	registry = append(registry,
		multiBufferDef(),
		multiBuffer4Def(),
		avx2Def(),
	)
}

func multiBufferDef() *backendDef {
	d := &backendDef{
		kind:      KernelMultiBuffer,
		lanes:     2,
		requires:  "amd64 with SHA-NI, SSSE3, SSE4.1",
		available: func() bool { return hasSHANI },
	}
	d.build = func(k Key) Kernel { return newMultiKernel(k, &d.counters) }
	return d
}

// hasSHANI reports whether the CPU has the SHA extensions plus the
// SSSE3/SSE4.1 shuffles the kernel uses.
var hasSHANI = func() bool {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return false
	}
	const ssse3Bit = 1 << 9  // CPUID.1:ECX.SSSE3
	const sse41Bit = 1 << 19 // CPUID.1:ECX.SSE4.1
	const shaBit = 1 << 29   // CPUID.7.0:EBX.SHA
	_, _, ecx1, _ := cpuid(1, 0)
	if ecx1&ssse3Bit == 0 || ecx1&sse41Bit == 0 {
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	return ebx7&shaBit != 0
}()

// sha256block2 runs the SHA-256 compression over two independent
// messages at once: `blocks` 64-byte blocks from p0 are folded into s0
// while the same number from p1 fold into s1. States are plain h[0..7]
// word order (initialize to the IV for a fresh message).
//
//go:noescape
func sha256block2(s0, s1 *[8]uint32, p0, p1 *byte, blocks int)

// sha256IV is the SHA-256 initial state (FIPS 180-4, 5.3.3).
var sha256IV = [8]uint32{
	0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
	0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
}

// laneBytes is the multi-buffer lane width: up to two SHA-256 blocks,
// message plus mandatory padding.
const laneBytes = 128

// multiKernel pairs values into two-lane assembly calls. Immutable and
// safe for concurrent use: all per-call scratch is on the stack.
type multiKernel struct {
	h      *Hasher
	key    Key
	prefix []byte // len(k) ‖ k
	ctr    *kernelCounters
}

// newMultiKernel returns the two-lane multi-buffer kernel. The caller
// (the registry) has already checked availability and validated k.
func newMultiKernel(k Key, ctr *kernelCounters) Kernel {
	h, err := k.NewHasher()
	if err != nil {
		panic(fmt.Sprintf("keyhash: multibuffer kernel: %v", err))
	}
	return &multiKernel{h: h, key: k, prefix: h.prefix, ctr: ctr}
}

// paddedBlocks returns the padded block count of the construct for a
// value of vLen bytes — 1 or 2 — or 0 when it exceeds the two-block
// lane (streaming fallback).
func paddedBlocks(prefixLen, keyLen, vLen int) int {
	total := prefixLen + vLen + keyLen
	switch {
	case total+9 <= 64:
		return 1
	case total+9 <= laneBytes:
		return 2
	default:
		return 0
	}
}

// fillPadded assembles the fully padded message len(k) ‖ k ‖ v ‖ k ‖
// 0x80 ‖ 0… ‖ len into a lane buffer, exactly as SHA-256 would pad it.
func fillPadded[V ~string | ~[]byte](buf *[laneBytes]byte, prefix []byte, key Key, v V, blocks int) {
	n := copy(buf[:], prefix)
	n += copy(buf[n:], v)
	n += copy(buf[n:], key)
	end := 64 * blocks
	buf[n] = 0x80
	clear(buf[n+1 : end-8])
	binary.BigEndian.PutUint64(buf[end-8:end], uint64(n)*8)
}

// HashMany pairs values of equal padded block count and hashes each pair
// in one two-lane assembly call. Odd tails run through the scalar
// Hasher; values beyond the lane width use the streaming construct. The
// digests are bit-identical to Hash/HashString in every case.
func (m *multiKernel) HashMany(values []string, out []Digest) {
	m.ctr.tick(len(values))
	hashBatch2[string, strVals](m, strVals(values), out)
}

// HashColumn hashes a block column's arena view, same pairing strategy.
func (m *multiKernel) HashColumn(data []byte, offs []int32, out []Digest) {
	if len(offs) == 0 {
		return
	}
	m.ctr.tick(len(offs) - 1)
	hashBatch2[[]byte, colVals](m, colVals{data: data, offs: offs}, out)
}

// hashBatch2 is the two-lane batching core over either value shape.
func hashBatch2[V ~string | ~[]byte, S vals[V]](m *multiKernel, src S, out []Digest) {
	n := src.count()
	if n <= 0 {
		return
	}
	_ = out[:n] // one bounds check up front
	var b0, b1 [laneBytes]byte
	pending := [3]int{-1, -1, -1} // pending value index per block count
	for i := 0; i < n; i++ {
		v := src.at(i)
		nb := paddedBlocks(len(m.prefix), len(m.key), len(v))
		if nb == 0 {
			out[i] = hashFull(m.key, v)
			continue
		}
		j := pending[nb]
		if j < 0 {
			pending[nb] = i
			continue
		}
		pending[nb] = -1
		fillPadded(&b0, m.prefix, m.key, src.at(j), nb)
		fillPadded(&b1, m.prefix, m.key, v, nb)
		s0, s1 := sha256IV, sha256IV
		sha256block2(&s0, &s1, &b0[0], &b1[0], nb)
		putDigest(&out[j], &s0)
		putDigest(&out[i], &s1)
	}
	for _, j := range pending[1:] {
		if j >= 0 {
			out[j] = hashAny(m.h, src.at(j))
		}
	}
}

// putDigest serializes a final SHA-256 state into the big-endian digest
// byte order.
func putDigest(d *Digest, s *[8]uint32) {
	for i, w := range s {
		binary.BigEndian.PutUint32(d[4*i:], w)
	}
}
