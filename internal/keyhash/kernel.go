package keyhash

import (
	"crypto/sha256"
	"fmt"
)

// Kernel is a batched evaluation context for H(·;k): the pluggable bottom
// of the block-at-a-time scan engine. One HashMany call hashes a whole
// block of key values, which lets an implementation amortize per-call
// overhead (scratch reuse, padding assembly) or run several one-shot
// SHA-256 states at once (the amd64 multi-buffer backend). Digests are
// bit-identical to Hash/HashString — a Kernel is an execution strategy,
// never a different hash.
//
// Implementations must be immutable after construction and safe for
// concurrent use: the detection fan-out shares one prepared Scanner (and
// therefore one Kernel) across all worker goroutines. Per-call scratch
// lives on the stack or in caller-owned state (see BlockMemo).
type Kernel interface {
	// HashMany computes H(values[i];k) into out[i] for every value.
	// len(out) must be at least len(values).
	HashMany(values []string, out []Digest)
	// HashColumn is HashMany over a columnar value view: value i is
	// data[offs[i]:offs[i+1]], with len(offs) == n+1 and offs[0] == 0 —
	// the exact arena shape of a relation block column. The scan engine
	// hashes key-column bytes directly through this entry point, never
	// materializing a string per field. len(out) must be at least
	// len(offs)-1. Digests are bit-identical to HashMany over the same
	// byte sequences.
	HashColumn(data []byte, offs []int32, out []Digest)
}

// vals abstracts the two batch shapes the kernels accept — a []string
// batch and a columnar arena view — so each backend's batching core is
// written once, generically, and instantiated per shape with direct
// (devirtualized) accessors.
type vals[V ~string | ~[]byte] interface {
	count() int
	at(i int) V
}

type strVals []string

func (s strVals) count() int      { return len(s) }
func (s strVals) at(i int) string { return s[i] }

type colVals struct {
	data []byte
	offs []int32
}

func (c colVals) count() int      { return len(c.offs) - 1 }
func (c colVals) at(i int) []byte { return c.data[c.offs[i]:c.offs[i+1]] }

// hashFull is the beyond-lane streaming fallback for either value
// shape. (For V = []byte the conversion is a no-op; for V = string it
// pays the same copy HashString always has.)
func hashFull[V ~string | ~[]byte](k Key, v V) Digest { return Hash(k, []byte(v)) }

// KernelKind names a batched hash backend.
type KernelKind string

const (
	// KernelAuto picks the fastest backend available on this machine:
	// the first NewKernel(KernelAuto) in a process runs a short
	// calibration pass (see Calibrate) that micro-benchmarks every
	// available backend and caches the winner.
	KernelAuto KernelKind = ""
	// KernelPortable is the pure-Go batched kernel: one-shot SHA-256 per
	// value over a reused stack scratch buffer. Available everywhere.
	KernelPortable KernelKind = "portable"
	// KernelMultiBuffer interleaves two one-shot SHA-256 message streams
	// through the CPU's SHA extensions in one assembly loop, hiding the
	// SHA256RNDS2 dependency-chain latency that leaves a single-stream
	// implementation underutilizing the execution ports. amd64 with
	// SHA-NI only; NewKernel reports an error elsewhere.
	KernelMultiBuffer KernelKind = "multibuffer"
	// KernelMultiBuffer4 runs four independent SHA-256 streams per
	// assembly call — two interleaved 2-lane schedule chains feeding one
	// 4-deep interleaved round loop — hiding the SHA256RNDS2 latency
	// chain deeper than the 2-lane kernel can. amd64 with SHA-NI only.
	KernelMultiBuffer4 KernelKind = "multibuffer4"
	// KernelAVX2 is the 8-lane multi-buffer SHA-256 kernel: a transposed
	// message schedule evaluated with plain AVX2 integer SIMD, one YMM
	// word per round across eight independent messages. No SHA-NI
	// dependency — amd64 with AVX2 + BMI2 only.
	KernelAVX2 KernelKind = "avx2"
)

// backendDef is one registered hash backend: the registry entry that
// lets a kernel self-describe its lane width and CPU requirements, so
// enumeration (KernelKinds, Backends, KernelStats, Calibrate) can never
// silently miss a backend that NewKernel accepts.
type backendDef struct {
	kind  KernelKind
	lanes int
	// requires names the CPU gate for diagnostics ("" = none).
	requires string
	// available reports whether this CPU can run the backend.
	available func() bool
	// build constructs the kernel for a validated key; only called when
	// available() is true.
	build func(Key) Kernel
	// counters is the backend's process-wide HashMany activity, ticked
	// by every kernel the def builds and read by KernelStats.
	counters kernelCounters
}

// registry holds every backend in presentation order: portable first,
// then the accelerated backends by increasing lane count (arch init
// functions append theirs). Selection order is NOT registry order —
// KernelAuto picks by measured throughput (Calibrate).
var registry = func() []*backendDef {
	d := &backendDef{
		kind:      KernelPortable,
		lanes:     1,
		available: func() bool { return true },
	}
	d.build = func(k Key) Kernel { return newPortableKernel(k, &d.counters) }
	return []*backendDef{d}
}()

func lookupBackend(kind KernelKind) *backendDef {
	for _, d := range registry {
		if d.kind == kind {
			return d
		}
	}
	return nil
}

// KernelKinds lists the kinds accepted by NewKernel, KernelAuto first.
func KernelKinds() []KernelKind {
	kinds := make([]KernelKind, 0, len(registry)+1)
	kinds = append(kinds, KernelAuto)
	for _, d := range registry {
		kinds = append(kinds, d.kind)
	}
	return kinds
}

// BackendInfo describes one registered hash backend for introspection
// (wmtool kernels, the README catalog, tests).
type BackendInfo struct {
	// Kind is the spelling NewKernel accepts.
	Kind KernelKind `json:"kind"`
	// Lanes is how many independent SHA-256 streams one HashMany batch
	// step evaluates.
	Lanes int `json:"lanes"`
	// Requires names the CPU features gating the backend ("" = none).
	Requires string `json:"requires,omitempty"`
	// Available reports whether this machine can run the backend.
	Available bool `json:"available"`
}

// Backends lists every registered backend in presentation order,
// including ones this CPU cannot run (Available reports which).
func Backends() []BackendInfo {
	out := make([]BackendInfo, len(registry))
	for i, d := range registry {
		out[i] = BackendInfo{
			Kind:      d.kind,
			Lanes:     d.lanes,
			Requires:  d.requires,
			Available: d.available(),
		}
	}
	return out
}

// NewKernel validates the key and builds the requested hash backend.
// KernelAuto never fails on a valid key (it resolves to the calibrated
// winner, see Calibrate); a concrete kind fails where the CPU (or
// architecture) lacks the features it needs.
func (k Key) NewKernel(kind KernelKind) (Kernel, error) {
	if err := k.Validate(); err != nil {
		return nil, err
	}
	if kind == KernelAuto {
		kind = AutoKind()
	}
	d := lookupBackend(kind)
	if d == nil {
		return nil, fmt.Errorf("keyhash: unknown hash kernel %q (want one of %s)", kind, kindSpellings())
	}
	if !d.available() {
		return nil, fmt.Errorf("keyhash: kernel %q unavailable on this CPU (needs %s)", kind, d.requires)
	}
	return d.build(k), nil
}

// kindSpellings renders the accepted kinds for error messages.
func kindSpellings() string {
	s := fmt.Sprintf("%q", KernelAuto)
	for _, d := range registry {
		s += fmt.Sprintf(", %q", d.kind)
	}
	return s
}

// portableKernel is the pure-Go batched backend. The construct's message
// layout (len(k) ‖ k ‖ v ‖ k) is assembled into one stack scratch buffer
// that lives for the whole HashMany call, so the per-call zero-init and
// prefix copy of Hasher.HashString are paid once per block instead of
// once per value.
type portableKernel struct {
	h   *Hasher
	ctr *kernelCounters
}

func newPortableKernel(k Key, ctr *kernelCounters) *portableKernel {
	h, err := k.NewHasher()
	if err != nil {
		// NewKernel validated the key already.
		panic(fmt.Sprintf("keyhash: portable kernel: %v", err))
	}
	return &portableKernel{h: h, ctr: ctr}
}

// HashMany hashes every value with a single scratch buffer. Values too
// long for the one-shot buffer fall back to the streaming construct,
// exactly like Hasher.HashString.
func (p *portableKernel) HashMany(values []string, out []Digest) {
	p.ctr.tick(len(values))
	hashBatchPortable[string, strVals](p.h, strVals(values), out)
}

// HashColumn hashes a block column's arena view, same strategy.
func (p *portableKernel) HashColumn(data []byte, offs []int32, out []Digest) {
	if len(offs) == 0 {
		return
	}
	p.ctr.tick(len(offs) - 1)
	hashBatchPortable[[]byte, colVals](p.h, colVals{data: data, offs: offs}, out)
}

// hashBatchPortable is the portable batching core over either value
// shape: the construct's prefix is copied into one scratch buffer that
// lives for the whole batch.
func hashBatchPortable[V ~string | ~[]byte, S vals[V]](h *Hasher, src S, out []Digest) {
	n := src.count()
	if n <= 0 {
		return
	}
	_ = out[:n] // one bounds check up front
	var buf [oneShotMax]byte
	prefixLen := copy(buf[:], h.prefix)
	for i := 0; i < n; i++ {
		v := src.at(i)
		total := prefixLen + len(v) + len(h.key)
		if total > oneShotMax {
			out[i] = hashFull(h.key, v)
			continue
		}
		w := prefixLen
		w += copy(buf[w:], v)
		w += copy(buf[w:], h.key)
		out[i] = Digest(sha256.Sum256(buf[:w]))
	}
}

// laneKey identifies one memo lane: a secret key evaluated over one key
// column. Two scanners that derive the same k1 (certificates of the same
// owner secret) and resolve the same key column share a lane.
type laneKey struct {
	col int
	key string
}

// BlockMemo caches HashMany results per lane for ONE block of key
// values, so N certificates sharing a key column hash each distinct key
// value once per lane, not once per certificate. The caller owns the
// block identity: Reset invalidates every lane when the block changes.
//
// A BlockMemo is mutable scratch — per worker, never shared across
// goroutines.
type BlockMemo struct {
	lanes map[laneKey][]Digest
	free  [][]Digest
}

// Reset invalidates all lanes (the scratch block moved on); digest
// slices are recycled into the next block's lanes.
func (m *BlockMemo) Reset() {
	for k, d := range m.lanes {
		m.free = append(m.free, d)
		delete(m.lanes, k)
	}
}

// lane returns the digest slice for lk, reporting whether it was
// already computed. A miss returns a recycled (or grown) slice of n
// digests already installed in the map.
func (m *BlockMemo) lane(lk laneKey, n int) ([]Digest, bool) {
	if m.lanes == nil {
		m.lanes = make(map[laneKey][]Digest)
	}
	if d, ok := m.lanes[lk]; ok {
		return d, true
	}
	var d []Digest
	if f := len(m.free); f > 0 {
		d = m.free[f-1][:0]
		m.free = m.free[:f-1]
	}
	if cap(d) < n {
		d = make([]Digest, n)
	}
	d = d[:n]
	m.lanes[lk] = d
	return d, false
}

// Lane returns the digests of values under kern, computing them on the
// first call for this (col, key) lane and replaying them afterwards.
// key is the string form of the secret key (callers cache it — passing
// string(k) inline would allocate per call). The returned slice is
// valid until the next Reset.
func (m *BlockMemo) Lane(col int, key string, kern Kernel, values []string) []Digest {
	d, hit := m.lane(laneKey{col: col, key: key}, len(values))
	if !hit {
		kern.HashMany(values, d)
	}
	return d
}

// LaneColumn is Lane over a block column's arena view (value i is
// data[offs[i]:offs[i+1]], len(offs) == rows+1). Lanes are shared with
// Lane: the digests are bit-identical either way.
func (m *BlockMemo) LaneColumn(col int, key string, kern Kernel, data []byte, offs []int32) []Digest {
	d, hit := m.lane(laneKey{col: col, key: key}, len(offs)-1)
	if !hit {
		kern.HashColumn(data, offs, d)
	}
	return d
}
