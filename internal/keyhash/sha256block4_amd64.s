// Four-lane SHA-256 compression for the multibuffer4 keyed-hash kernel.
//
// func sha256block4(states *[32]uint32, msgs *[4*128]byte, wbuf *[256]uint32, blocks int)
//
// Folds `blocks` 64-byte blocks from each of four independent messages
// into four independent states. Lane l's message lives at msgs+l*128,
// lane l's state at states[l*8:]; states are plain h[0..7] word order.
//
// The two-lane kernel interleaves the schedule update (MSG1/MSG2) with
// the rounds, which caps it at two SHA256RNDS2 dependency chains in
// flight. Going wider that way runs out of XMM registers: four states
// plus four rotating schedules need more than sixteen. This kernel
// splits the work instead:
//
//   Phase A: compute the full 64-word message schedule of every lane
//            with the SHA256MSG1/MSG2 pipeline (two lanes interleaved,
//            exactly the 2-lane schedule flow minus the rounds) and
//            spill it to wbuf — 4 lanes x 64 words = 1 KiB of scratch
//            the Go caller stack-allocates (NOSPLIT frames can't).
//   Phase B: run the 64 rounds of all four lanes interleaved. Each
//            group is load W, add K, two SHA256RNDS2 — no schedule
//            work competing for ports — so four independent RNDS2
//            chains hide the instruction's latency twice as deep as
//            the 2-lane loop can.
//
// Requires SHA-NI, SSSE3 (PSHUFB) and SSE4.1 (PBLENDW); the Go side
// gates construction on CPUID.

#include "textflag.h"

// ---- Phase A: message schedule, two lanes interleaved. ----
// Lane A uses w regs X1-X4 with scratch X7; lane B uses X9-X12 with
// scratch X13. wbuf offsets are passed literally (lane base + group*16).

// Group 0: load 16 message bytes, byte-swap, spill.
#define S_LOAD0(off, p, woff, w) \
	MOVOU  off(p), w    \
	PSHUFB X8, w        \
	MOVOU  w, woff(DX)

// Groups 1-2: load + spill, fold MSG1 into the previous word.
#define S_LOAD1(off, p, woff, w, wprev) \
	MOVOU      off(p), w  \
	PSHUFB     X8, w      \
	MOVOU      w, woff(DX) \
	SHA256MSG1 w, wprev

// Group 3: last load; the schedule pipeline starts (MSG2 finishes
// group 4 = W16-19 into w0, which is spilled too).
#define S_LOAD3(p, woff3, woff4, w0, w2, w3, scr) \
	MOVOU      48(p), w3  \
	PSHUFB     X8, w3     \
	MOVOU      w3, woff3(DX) \
	MOVO       w3, scr    \
	PALIGNR    $4, w2, scr \
	PADDD      scr, w0    \
	SHA256MSG2 w3, w0     \
	MOVOU      w0, woff4(DX) \
	SHA256MSG1 w3, w2

// Produce groups 5-13: full schedule update (MSG1 + MSG2), spill.
#define S_MID(woffnxt, cur, prev3, nxt, scr) \
	MOVO       cur, scr   \
	PALIGNR    $4, prev3, scr \
	PADDD      scr, nxt   \
	SHA256MSG2 cur, nxt   \
	MOVOU      nxt, woffnxt(DX) \
	SHA256MSG1 cur, prev3

// Produce groups 14-15: MSG2 still needed, MSG1 no longer.
#define S_TAIL(woffnxt, cur, prev3, nxt, scr) \
	MOVO       cur, scr   \
	PALIGNR    $4, prev3, scr \
	PADDD      scr, nxt   \
	SHA256MSG2 cur, nxt   \
	MOVOU      nxt, woffnxt(DX)

// ---- Phase B: rounds, four lanes interleaved. ----
// One 4-round group of one lane: reload the precomputed schedule word,
// add the round constants, run both SHA256RNDS2 halves. X0 is the
// implicit SHA256RNDS2 operand; the full-register reload breaks the
// dependency between lanes, so four round chains overlap.
#define B_LANE(koff, woff, st0, st1) \
	MOVOU       woff(DX), X0 \
	PADDD       koff(AX), X0 \
	SHA256RNDS2 X0, st0, st1 \
	PSHUFD      $0x0e, X0, X0 \
	SHA256RNDS2 X0, st1, st0

// One group across all four lanes (states X1/X2, X3/X4, X9/X10, X11/X12).
#define B_GROUP(koff) \
	B_LANE(koff, koff+0, X1, X2)    \
	B_LANE(koff, koff+256, X3, X4)  \
	B_LANE(koff, koff+512, X9, X10) \
	B_LANE(koff, koff+768, X11, X12)

// ---- State format conversion, h[0..7] <-> (ABEF, CDGH). ----
// Same shuffle dance as the 2-lane kernel, but the working-form states
// park in the stack frame (o0/o1) between phases.
#define CONV_IN(o0, o1) \
	MOVOU   o0(DI), X1  \
	MOVOU   o1(DI), X2  \
	PSHUFD  $0xb1, X1, X1 \
	PSHUFD  $0x1b, X2, X2 \
	MOVO    X1, X7      \
	PALIGNR $8, X2, X1  \
	PBLENDW $0xf0, X7, X2 \
	MOVOU   X1, o0(SP)  \
	MOVOU   X2, o1(SP)

#define CONV_OUT(o0, o1) \
	MOVOU   o0(SP), X1  \
	MOVOU   o1(SP), X2  \
	PSHUFD  $0x1b, X1, X1 \
	PSHUFD  $0xb1, X2, X2 \
	MOVO    X1, X7      \
	PBLENDW $0xf0, X2, X1 \
	PALIGNR $8, X7, X2  \
	MOVOU   X1, o0(DI)  \
	MOVOU   X2, o1(DI)

// Load one lane's parked working state into its round registers.
#define LOAD_ST(o0, o1, st0, st1) \
	MOVOU o0(SP), st0 \
	MOVOU o1(SP), st1

// Feed-forward: add the parked incoming state, park the result.
#define FEED_FWD(o0, o1, st0, st1) \
	MOVOU o0(SP), X0 \
	PADDD X0, st0    \
	MOVOU o1(SP), X0 \
	PADDD X0, st1    \
	MOVOU st0, o0(SP) \
	MOVOU st1, o1(SP)

TEXT ·sha256block4(SB), NOSPLIT, $128-32
	MOVQ states+0(FP), DI
	MOVQ msgs+8(FP), SI
	MOVQ wbuf+16(FP), DX
	MOVQ blocks+24(FP), BX
	TESTQ BX, BX
	JZ   done
	LEAQ kernel4K256<>+0(SB), AX
	MOVOU kernel4Flip<>+0(SB), X8

	// Lane message pointers: lane l at msgs + l*128.
	LEAQ 128(SI), R8
	LEAQ 256(SI), R9
	LEAQ 384(SI), R10

	// h[0..7] -> working order, parked at SP+l*32.
	CONV_IN(0, 16)
	CONV_IN(32, 48)
	CONV_IN(64, 80)
	CONV_IN(96, 112)

blockLoop:
	// Phase A, lanes 0+1: schedules into wbuf[0:64] and wbuf[64:128].
	S_LOAD0(0, SI, 0, X1)
	S_LOAD0(0, R8, 256, X9)
	S_LOAD1(16, SI, 16, X2, X1)
	S_LOAD1(16, R8, 272, X10, X9)
	S_LOAD1(32, SI, 32, X3, X2)
	S_LOAD1(32, R8, 288, X11, X10)
	S_LOAD3(SI, 48, 64, X1, X3, X4, X7)
	S_LOAD3(R8, 304, 320, X9, X11, X12, X13)
	S_MID(80, X1, X4, X2, X7)
	S_MID(336, X9, X12, X10, X13)
	S_MID(96, X2, X1, X3, X7)
	S_MID(352, X10, X9, X11, X13)
	S_MID(112, X3, X2, X4, X7)
	S_MID(368, X11, X10, X12, X13)
	S_MID(128, X4, X3, X1, X7)
	S_MID(384, X12, X11, X9, X13)
	S_MID(144, X1, X4, X2, X7)
	S_MID(400, X9, X12, X10, X13)
	S_MID(160, X2, X1, X3, X7)
	S_MID(416, X10, X9, X11, X13)
	S_MID(176, X3, X2, X4, X7)
	S_MID(432, X11, X10, X12, X13)
	S_MID(192, X4, X3, X1, X7)
	S_MID(448, X12, X11, X9, X13)
	S_MID(208, X1, X4, X2, X7)
	S_MID(464, X9, X12, X10, X13)
	S_TAIL(224, X2, X1, X3, X7)
	S_TAIL(480, X10, X9, X11, X13)
	S_TAIL(240, X3, X2, X4, X7)
	S_TAIL(496, X11, X10, X12, X13)

	// Phase A, lanes 2+3: schedules into wbuf[128:192] and wbuf[192:256].
	S_LOAD0(0, R9, 512, X1)
	S_LOAD0(0, R10, 768, X9)
	S_LOAD1(16, R9, 528, X2, X1)
	S_LOAD1(16, R10, 784, X10, X9)
	S_LOAD1(32, R9, 544, X3, X2)
	S_LOAD1(32, R10, 800, X11, X10)
	S_LOAD3(R9, 560, 576, X1, X3, X4, X7)
	S_LOAD3(R10, 816, 832, X9, X11, X12, X13)
	S_MID(592, X1, X4, X2, X7)
	S_MID(848, X9, X12, X10, X13)
	S_MID(608, X2, X1, X3, X7)
	S_MID(864, X10, X9, X11, X13)
	S_MID(624, X3, X2, X4, X7)
	S_MID(880, X11, X10, X12, X13)
	S_MID(640, X4, X3, X1, X7)
	S_MID(896, X12, X11, X9, X13)
	S_MID(656, X1, X4, X2, X7)
	S_MID(912, X9, X12, X10, X13)
	S_MID(672, X2, X1, X3, X7)
	S_MID(928, X10, X9, X11, X13)
	S_MID(688, X3, X2, X4, X7)
	S_MID(944, X11, X10, X12, X13)
	S_MID(704, X4, X3, X1, X7)
	S_MID(960, X12, X11, X9, X13)
	S_MID(720, X1, X4, X2, X7)
	S_MID(976, X9, X12, X10, X13)
	S_TAIL(736, X2, X1, X3, X7)
	S_TAIL(992, X10, X9, X11, X13)
	S_TAIL(752, X3, X2, X4, X7)
	S_TAIL(1008, X11, X10, X12, X13)

	// Phase B: 16 round groups, four lanes each.
	LOAD_ST(0, 16, X1, X2)
	LOAD_ST(32, 48, X3, X4)
	LOAD_ST(64, 80, X9, X10)
	LOAD_ST(96, 112, X11, X12)

	B_GROUP(0)
	B_GROUP(16)
	B_GROUP(32)
	B_GROUP(48)
	B_GROUP(64)
	B_GROUP(80)
	B_GROUP(96)
	B_GROUP(112)
	B_GROUP(128)
	B_GROUP(144)
	B_GROUP(160)
	B_GROUP(176)
	B_GROUP(192)
	B_GROUP(208)
	B_GROUP(224)
	B_GROUP(240)

	FEED_FWD(0, 16, X1, X2)
	FEED_FWD(32, 48, X3, X4)
	FEED_FWD(64, 80, X9, X10)
	FEED_FWD(96, 112, X11, X12)

	ADDQ $64, SI
	ADDQ $64, R8
	ADDQ $64, R9
	ADDQ $64, R10
	DECQ BX
	JNZ  blockLoop

	// Working order back to h[0..7].
	CONV_OUT(0, 16)
	CONV_OUT(32, 48)
	CONV_OUT(64, 80)
	CONV_OUT(96, 112)

done:
	RET

// SHA-256 round constants, packed (16-byte stride, 4 constants per
// round group). File-local copy: static asm data symbols don't cross
// files.
DATA kernel4K256<>+0x00(SB)/4, $0x428a2f98
DATA kernel4K256<>+0x04(SB)/4, $0x71374491
DATA kernel4K256<>+0x08(SB)/4, $0xb5c0fbcf
DATA kernel4K256<>+0x0c(SB)/4, $0xe9b5dba5
DATA kernel4K256<>+0x10(SB)/4, $0x3956c25b
DATA kernel4K256<>+0x14(SB)/4, $0x59f111f1
DATA kernel4K256<>+0x18(SB)/4, $0x923f82a4
DATA kernel4K256<>+0x1c(SB)/4, $0xab1c5ed5
DATA kernel4K256<>+0x20(SB)/4, $0xd807aa98
DATA kernel4K256<>+0x24(SB)/4, $0x12835b01
DATA kernel4K256<>+0x28(SB)/4, $0x243185be
DATA kernel4K256<>+0x2c(SB)/4, $0x550c7dc3
DATA kernel4K256<>+0x30(SB)/4, $0x72be5d74
DATA kernel4K256<>+0x34(SB)/4, $0x80deb1fe
DATA kernel4K256<>+0x38(SB)/4, $0x9bdc06a7
DATA kernel4K256<>+0x3c(SB)/4, $0xc19bf174
DATA kernel4K256<>+0x40(SB)/4, $0xe49b69c1
DATA kernel4K256<>+0x44(SB)/4, $0xefbe4786
DATA kernel4K256<>+0x48(SB)/4, $0x0fc19dc6
DATA kernel4K256<>+0x4c(SB)/4, $0x240ca1cc
DATA kernel4K256<>+0x50(SB)/4, $0x2de92c6f
DATA kernel4K256<>+0x54(SB)/4, $0x4a7484aa
DATA kernel4K256<>+0x58(SB)/4, $0x5cb0a9dc
DATA kernel4K256<>+0x5c(SB)/4, $0x76f988da
DATA kernel4K256<>+0x60(SB)/4, $0x983e5152
DATA kernel4K256<>+0x64(SB)/4, $0xa831c66d
DATA kernel4K256<>+0x68(SB)/4, $0xb00327c8
DATA kernel4K256<>+0x6c(SB)/4, $0xbf597fc7
DATA kernel4K256<>+0x70(SB)/4, $0xc6e00bf3
DATA kernel4K256<>+0x74(SB)/4, $0xd5a79147
DATA kernel4K256<>+0x78(SB)/4, $0x06ca6351
DATA kernel4K256<>+0x7c(SB)/4, $0x14292967
DATA kernel4K256<>+0x80(SB)/4, $0x27b70a85
DATA kernel4K256<>+0x84(SB)/4, $0x2e1b2138
DATA kernel4K256<>+0x88(SB)/4, $0x4d2c6dfc
DATA kernel4K256<>+0x8c(SB)/4, $0x53380d13
DATA kernel4K256<>+0x90(SB)/4, $0x650a7354
DATA kernel4K256<>+0x94(SB)/4, $0x766a0abb
DATA kernel4K256<>+0x98(SB)/4, $0x81c2c92e
DATA kernel4K256<>+0x9c(SB)/4, $0x92722c85
DATA kernel4K256<>+0xa0(SB)/4, $0xa2bfe8a1
DATA kernel4K256<>+0xa4(SB)/4, $0xa81a664b
DATA kernel4K256<>+0xa8(SB)/4, $0xc24b8b70
DATA kernel4K256<>+0xac(SB)/4, $0xc76c51a3
DATA kernel4K256<>+0xb0(SB)/4, $0xd192e819
DATA kernel4K256<>+0xb4(SB)/4, $0xd6990624
DATA kernel4K256<>+0xb8(SB)/4, $0xf40e3585
DATA kernel4K256<>+0xbc(SB)/4, $0x106aa070
DATA kernel4K256<>+0xc0(SB)/4, $0x19a4c116
DATA kernel4K256<>+0xc4(SB)/4, $0x1e376c08
DATA kernel4K256<>+0xc8(SB)/4, $0x2748774c
DATA kernel4K256<>+0xcc(SB)/4, $0x34b0bcb5
DATA kernel4K256<>+0xd0(SB)/4, $0x391c0cb3
DATA kernel4K256<>+0xd4(SB)/4, $0x4ed8aa4a
DATA kernel4K256<>+0xd8(SB)/4, $0x5b9cca4f
DATA kernel4K256<>+0xdc(SB)/4, $0x682e6ff3
DATA kernel4K256<>+0xe0(SB)/4, $0x748f82ee
DATA kernel4K256<>+0xe4(SB)/4, $0x78a5636f
DATA kernel4K256<>+0xe8(SB)/4, $0x84c87814
DATA kernel4K256<>+0xec(SB)/4, $0x8cc70208
DATA kernel4K256<>+0xf0(SB)/4, $0x90befffa
DATA kernel4K256<>+0xf4(SB)/4, $0xa4506ceb
DATA kernel4K256<>+0xf8(SB)/4, $0xbef9a3f7
DATA kernel4K256<>+0xfc(SB)/4, $0xc67178f2
GLOBL kernel4K256<>(SB), RODATA, $256

// Byte-swap mask: big-endian message words from little-endian loads.
DATA kernel4Flip<>+0(SB)/8, $0x0405060700010203
DATA kernel4Flip<>+8(SB)/8, $0x0c0d0e0f08090a0b
GLOBL kernel4Flip<>(SB), RODATA, $16
