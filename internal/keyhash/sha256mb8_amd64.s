// Eight-lane transposed SHA-256 compression for the avx2 keyed-hash
// kernel.
//
// func sha256mb8(state *[64]uint32, w *[512]uint32)
//
// Everything is transposed: row t of w (32 bytes) holds word t of
// eight independent message schedules, row i of state holds h[i] of
// eight independent states. One call folds one 64-byte block of all
// eight messages. The Go side fills rows 0..15 (byte-swapped message
// words); this routine extends rows 16..63 in place, then runs the 64
// rounds with the eight states living in Y0..Y7 under a rotating role
// assignment, so the only memory traffic in the round loop is one
// schedule row load and one broadcast constant per round.
//
// Requires AVX2 (the Go side also gates on BMI2 + OS YMM state).

#include "textflag.h"

// One transposed round for all 8 lanes. The register playing each role
// rotates every round (the register that held h exits as the new a):
//   h += Sigma1(e) + Ch(e,f,g) + K[t] + W[t]   (= T1)
//   d += T1
//   h += Sigma0(a) + Maj(a,b,c)                (= T1 + T2, the new a)
// Ch  = g ^ (e & (f ^ g)),  Maj = (a & (b ^ c)) ^ (b & c).
// Temps: Y12-Y14.
#define R8(koff, woff, a, b, c, d, e, f, g, h) \
	VPSRLD $6, e, Y12    \
	VPSLLD $26, e, Y13   \
	VPOR   Y13, Y12, Y12 \
	VPSRLD $11, e, Y13   \
	VPSLLD $21, e, Y14   \
	VPOR   Y14, Y13, Y13 \
	VPXOR  Y13, Y12, Y12 \
	VPSRLD $25, e, Y13   \
	VPSLLD $7, e, Y14    \
	VPOR   Y14, Y13, Y13 \
	VPXOR  Y13, Y12, Y12 \
	VPADDD Y12, h, h     \
	VPXOR  g, f, Y13     \
	VPAND  e, Y13, Y13   \
	VPXOR  g, Y13, Y13   \
	VPADDD Y13, h, h     \
	VPBROADCASTD koff(AX), Y14 \
	VPADDD Y14, h, h     \
	VPADDD woff(DX), h, h \
	VPADDD h, d, d       \
	VPSRLD $2, a, Y12    \
	VPSLLD $30, a, Y13   \
	VPOR   Y13, Y12, Y12 \
	VPSRLD $13, a, Y13   \
	VPSLLD $19, a, Y14   \
	VPOR   Y14, Y13, Y13 \
	VPXOR  Y13, Y12, Y12 \
	VPSRLD $22, a, Y13   \
	VPSLLD $10, a, Y14   \
	VPOR   Y14, Y13, Y13 \
	VPXOR  Y13, Y12, Y12 \
	VPADDD Y12, h, h     \
	VPXOR  c, b, Y13     \
	VPAND  a, Y13, Y13   \
	VPAND  c, b, Y14     \
	VPXOR  Y14, Y13, Y13 \
	VPADDD Y13, h, h

// Eight rounds: one full rotation of the role assignment.
#define OCT(kb, wb) \
	R8(kb+0, wb+0, Y0, Y1, Y2, Y3, Y4, Y5, Y6, Y7)    \
	R8(kb+4, wb+32, Y7, Y0, Y1, Y2, Y3, Y4, Y5, Y6)   \
	R8(kb+8, wb+64, Y6, Y7, Y0, Y1, Y2, Y3, Y4, Y5)   \
	R8(kb+12, wb+96, Y5, Y6, Y7, Y0, Y1, Y2, Y3, Y4)  \
	R8(kb+16, wb+128, Y4, Y5, Y6, Y7, Y0, Y1, Y2, Y3) \
	R8(kb+20, wb+160, Y3, Y4, Y5, Y6, Y7, Y0, Y1, Y2) \
	R8(kb+24, wb+192, Y2, Y3, Y4, Y5, Y6, Y7, Y0, Y1) \
	R8(kb+28, wb+224, Y1, Y2, Y3, Y4, Y5, Y6, Y7, Y0)

TEXT ·sha256mb8(SB), NOSPLIT, $0-16
	MOVQ state+0(FP), DI
	MOVQ w+8(FP), DX
	LEAQ avx2K256<>+0(SB), AX

	// Extend the schedule: rows t = 16..63 (byte offsets 512..2016),
	// W[t] = sigma1(W[t-2]) + W[t-7] + sigma0(W[t-15]) + W[t-16], all
	// eight lanes per row. sigma1 = rotr17^rotr19^shr10, sigma0 =
	// rotr7^rotr18^shr3.
	MOVQ $512, CX
extLoop:
	VMOVDQU -64(DX)(CX*1), Y8
	VPSRLD  $17, Y8, Y9
	VPSLLD  $15, Y8, Y10
	VPOR    Y10, Y9, Y9
	VPSRLD  $19, Y8, Y10
	VPSLLD  $13, Y8, Y11
	VPOR    Y11, Y10, Y10
	VPXOR   Y10, Y9, Y9
	VPSRLD  $10, Y8, Y10
	VPXOR   Y10, Y9, Y9
	VMOVDQU -480(DX)(CX*1), Y8
	VPSRLD  $7, Y8, Y10
	VPSLLD  $25, Y8, Y11
	VPOR    Y11, Y10, Y10
	VPSRLD  $18, Y8, Y11
	VPSLLD  $14, Y8, Y12
	VPOR    Y12, Y11, Y11
	VPXOR   Y11, Y10, Y10
	VPSRLD  $3, Y8, Y11
	VPXOR   Y11, Y10, Y10
	VPADDD  Y10, Y9, Y9
	VPADDD  -224(DX)(CX*1), Y9, Y9
	VPADDD  -512(DX)(CX*1), Y9, Y9
	VMOVDQU Y9, (DX)(CX*1)
	ADDQ    $32, CX
	CMPQ    CX, $2048
	JNE     extLoop

	// States a..h into Y0..Y7.
	VMOVDQU (DI), Y0
	VMOVDQU 32(DI), Y1
	VMOVDQU 64(DI), Y2
	VMOVDQU 96(DI), Y3
	VMOVDQU 128(DI), Y4
	VMOVDQU 160(DI), Y5
	VMOVDQU 192(DI), Y6
	VMOVDQU 224(DI), Y7

	OCT(0, 0)
	OCT(32, 256)
	OCT(64, 512)
	OCT(96, 768)
	OCT(128, 1024)
	OCT(160, 1280)
	OCT(192, 1536)
	OCT(224, 1792)

	// Feed-forward: add the incoming states, store back.
	VPADDD  (DI), Y0, Y0
	VMOVDQU Y0, (DI)
	VPADDD  32(DI), Y1, Y1
	VMOVDQU Y1, 32(DI)
	VPADDD  64(DI), Y2, Y2
	VMOVDQU Y2, 64(DI)
	VPADDD  96(DI), Y3, Y3
	VMOVDQU Y3, 96(DI)
	VPADDD  128(DI), Y4, Y4
	VMOVDQU Y4, 128(DI)
	VPADDD  160(DI), Y5, Y5
	VMOVDQU Y5, 160(DI)
	VPADDD  192(DI), Y6, Y6
	VMOVDQU Y6, 192(DI)
	VPADDD  224(DI), Y7, Y7
	VMOVDQU Y7, 224(DI)

	VZEROUPPER
	RET

// SHA-256 round constants, flat layout for VPBROADCASTD.
DATA avx2K256<>+0x00(SB)/4, $0x428a2f98
DATA avx2K256<>+0x04(SB)/4, $0x71374491
DATA avx2K256<>+0x08(SB)/4, $0xb5c0fbcf
DATA avx2K256<>+0x0c(SB)/4, $0xe9b5dba5
DATA avx2K256<>+0x10(SB)/4, $0x3956c25b
DATA avx2K256<>+0x14(SB)/4, $0x59f111f1
DATA avx2K256<>+0x18(SB)/4, $0x923f82a4
DATA avx2K256<>+0x1c(SB)/4, $0xab1c5ed5
DATA avx2K256<>+0x20(SB)/4, $0xd807aa98
DATA avx2K256<>+0x24(SB)/4, $0x12835b01
DATA avx2K256<>+0x28(SB)/4, $0x243185be
DATA avx2K256<>+0x2c(SB)/4, $0x550c7dc3
DATA avx2K256<>+0x30(SB)/4, $0x72be5d74
DATA avx2K256<>+0x34(SB)/4, $0x80deb1fe
DATA avx2K256<>+0x38(SB)/4, $0x9bdc06a7
DATA avx2K256<>+0x3c(SB)/4, $0xc19bf174
DATA avx2K256<>+0x40(SB)/4, $0xe49b69c1
DATA avx2K256<>+0x44(SB)/4, $0xefbe4786
DATA avx2K256<>+0x48(SB)/4, $0x0fc19dc6
DATA avx2K256<>+0x4c(SB)/4, $0x240ca1cc
DATA avx2K256<>+0x50(SB)/4, $0x2de92c6f
DATA avx2K256<>+0x54(SB)/4, $0x4a7484aa
DATA avx2K256<>+0x58(SB)/4, $0x5cb0a9dc
DATA avx2K256<>+0x5c(SB)/4, $0x76f988da
DATA avx2K256<>+0x60(SB)/4, $0x983e5152
DATA avx2K256<>+0x64(SB)/4, $0xa831c66d
DATA avx2K256<>+0x68(SB)/4, $0xb00327c8
DATA avx2K256<>+0x6c(SB)/4, $0xbf597fc7
DATA avx2K256<>+0x70(SB)/4, $0xc6e00bf3
DATA avx2K256<>+0x74(SB)/4, $0xd5a79147
DATA avx2K256<>+0x78(SB)/4, $0x06ca6351
DATA avx2K256<>+0x7c(SB)/4, $0x14292967
DATA avx2K256<>+0x80(SB)/4, $0x27b70a85
DATA avx2K256<>+0x84(SB)/4, $0x2e1b2138
DATA avx2K256<>+0x88(SB)/4, $0x4d2c6dfc
DATA avx2K256<>+0x8c(SB)/4, $0x53380d13
DATA avx2K256<>+0x90(SB)/4, $0x650a7354
DATA avx2K256<>+0x94(SB)/4, $0x766a0abb
DATA avx2K256<>+0x98(SB)/4, $0x81c2c92e
DATA avx2K256<>+0x9c(SB)/4, $0x92722c85
DATA avx2K256<>+0xa0(SB)/4, $0xa2bfe8a1
DATA avx2K256<>+0xa4(SB)/4, $0xa81a664b
DATA avx2K256<>+0xa8(SB)/4, $0xc24b8b70
DATA avx2K256<>+0xac(SB)/4, $0xc76c51a3
DATA avx2K256<>+0xb0(SB)/4, $0xd192e819
DATA avx2K256<>+0xb4(SB)/4, $0xd6990624
DATA avx2K256<>+0xb8(SB)/4, $0xf40e3585
DATA avx2K256<>+0xbc(SB)/4, $0x106aa070
DATA avx2K256<>+0xc0(SB)/4, $0x19a4c116
DATA avx2K256<>+0xc4(SB)/4, $0x1e376c08
DATA avx2K256<>+0xc8(SB)/4, $0x2748774c
DATA avx2K256<>+0xcc(SB)/4, $0x34b0bcb5
DATA avx2K256<>+0xd0(SB)/4, $0x391c0cb3
DATA avx2K256<>+0xd4(SB)/4, $0x4ed8aa4a
DATA avx2K256<>+0xd8(SB)/4, $0x5b9cca4f
DATA avx2K256<>+0xdc(SB)/4, $0x682e6ff3
DATA avx2K256<>+0xe0(SB)/4, $0x748f82ee
DATA avx2K256<>+0xe4(SB)/4, $0x78a5636f
DATA avx2K256<>+0xe8(SB)/4, $0x84c87814
DATA avx2K256<>+0xec(SB)/4, $0x8cc70208
DATA avx2K256<>+0xf0(SB)/4, $0x90befffa
DATA avx2K256<>+0xf4(SB)/4, $0xa4506ceb
DATA avx2K256<>+0xf8(SB)/4, $0xbef9a3f7
DATA avx2K256<>+0xfc(SB)/4, $0xc67178f2
GLOBL avx2K256<>(SB), RODATA, $256
