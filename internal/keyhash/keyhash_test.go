package keyhash

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewKeyDeterministic(t *testing.T) {
	a := NewKey("alpha")
	b := NewKey("alpha")
	if a.String() != b.String() {
		t.Fatalf("NewKey not deterministic: %s vs %s", a, b)
	}
	c := NewKey("beta")
	if a.String() == c.String() {
		t.Fatalf("distinct passphrases produced identical keys")
	}
}

func TestNewKeyFullWidth(t *testing.T) {
	if got := len(NewKey("x")); got != 32 {
		t.Fatalf("derived key length = %d, want 32", got)
	}
}

func TestKeyValidate(t *testing.T) {
	if err := Key(nil).Validate(); err != ErrEmptyKey {
		t.Fatalf("empty key Validate = %v, want ErrEmptyKey", err)
	}
	if err := NewKey("ok").Validate(); err != nil {
		t.Fatalf("valid key Validate = %v, want nil", err)
	}
}

func TestHashDeterministic(t *testing.T) {
	k := NewKey("secret")
	d1 := HashString(k, "Chicago")
	d2 := HashString(k, "Chicago")
	if d1 != d2 {
		t.Fatal("hash not deterministic")
	}
}

func TestHashKeyDependence(t *testing.T) {
	d1 := HashString(NewKey("k1"), "Chicago")
	d2 := HashString(NewKey("k2"), "Chicago")
	if d1 == d2 {
		t.Fatal("different keys produced identical digests")
	}
}

func TestHashValueDependence(t *testing.T) {
	k := NewKey("secret")
	if HashString(k, "Chicago") == HashString(k, "San Jose") {
		t.Fatal("different values produced identical digests")
	}
}

// The length prefix must prevent boundary-shifting collisions between
// (key, value) splits of the same byte stream.
func TestHashBoundaryUnambiguous(t *testing.T) {
	d1 := Hash(Key("ab"), []byte("cd"))
	d2 := Hash(Key("abc"), []byte("d"))
	if d1 == d2 {
		t.Fatal("boundary shift produced a collision")
	}
	// And the trailing key bracket must matter too.
	d3 := Hash(Key("ab"), []byte("cdab"))
	if d1 == d3 {
		t.Fatal("trailing bracket ignored")
	}
}

func TestDigestUint64At(t *testing.T) {
	d := HashString(NewKey("k"), "v")
	words := map[uint64]bool{}
	for i := 0; i < 4; i++ {
		words[d.Uint64At(i)] = true
	}
	if len(words) != 4 {
		t.Fatalf("expected 4 distinct digest words, got %d", len(words))
	}
	if d.Uint64At(0) != d.Uint64() {
		t.Fatal("Uint64At(0) should equal Uint64()")
	}
}

func TestDigestUint64AtPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range word index")
		}
	}()
	var d Digest
	d.Uint64At(4)
}

func TestModPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero modulus")
		}
	}()
	var d Digest
	d.Mod(0)
}

// Fitness should select roughly 1/e of keys (Section 3.2.1 footnote 1).
func TestFitnessRate(t *testing.T) {
	k := NewKey("fit-rate")
	const n = 20000
	for _, e := range []uint64{10, 60, 100} {
		fit := 0
		for i := 0; i < n; i++ {
			if FitKey(k, itoa(i), e) {
				fit++
			}
		}
		want := float64(n) / float64(e)
		got := float64(fit)
		if math.Abs(got-want) > 4*math.Sqrt(want) {
			t.Errorf("e=%d: fit count %d, want ~%.0f (±4σ)", e, fit, want)
		}
	}
}

// Fitness under two different keys must be (near) independent: the fit sets
// should overlap at about rate 1/e², not systematically.
func TestFitnessKeyIndependence(t *testing.T) {
	k1, k2 := NewKey("one"), NewKey("two")
	const n, e = 30000, 10
	both := 0
	for i := 0; i < n; i++ {
		v := itoa(i)
		if FitKey(k1, v, e) && FitKey(k2, v, e) {
			both++
		}
	}
	want := float64(n) / float64(e*e)
	if math.Abs(float64(both)-want) > 5*math.Sqrt(want) {
		t.Errorf("joint fit count %d, want ~%.0f", both, want)
	}
}

func TestFitPanicsOnZeroE(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for e=0")
		}
	}()
	var d Digest
	Fit(d, 0)
}

// Property: fitness is a pure function of (key, value, e).
func TestFitnessDeterminismProperty(t *testing.T) {
	k := NewKey("prop")
	f := func(v string, e8 uint8) bool {
		e := uint64(e8)%200 + 1
		return FitKey(k, v, e) == FitKey(k, v, e)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: digests behave like a uniform 64-bit source — the low bit is
// unbiased across sequential values.
func TestDigestLowBitBalance(t *testing.T) {
	k := NewKey("balance")
	const n = 20000
	ones := 0
	for i := 0; i < n; i++ {
		ones += int(HashString(k, itoa(i)).Uint64() & 1)
	}
	if math.Abs(float64(ones)-n/2) > 4*math.Sqrt(n/4) {
		t.Errorf("low-bit ones = %d out of %d, biased", ones, n)
	}
}

func itoa(i int) string {
	// Local tiny formatter to keep the hot loops allocation-obvious.
	if i == 0 {
		return "0"
	}
	var buf [20]byte
	pos := len(buf)
	neg := i < 0
	if neg {
		i = -i
	}
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	if neg {
		pos--
		buf[pos] = '-'
	}
	return string(buf[pos:])
}
