// func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32)
//
// Raw CPUID, used once at init to decide whether the SHA-NI multi-buffer
// kernel may be selected.

#include "textflag.h"

TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL leaf+0(FP), AX
	MOVL sub+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET
