package keyhash

import (
	"strings"
	"testing"
)

// TestHasherMatchesHash asserts the prepared fast path is bit-identical to
// the streaming construct for every buffer-size regime, including values
// that overflow the one-shot stack buffer and oddly sized raw keys.
func TestHasherMatchesHash(t *testing.T) {
	keys := []Key{
		NewKey("hasher-test"),
		Key("k"),
		Key(strings.Repeat("long-key-", 30)), // prefix alone exceeds oneShotMax
	}
	values := []string{
		"",
		"1234567",
		"visit-9918231",
		strings.Repeat("v", oneShotMax), // forces the slow path
		strings.Repeat("w", 3*oneShotMax),
	}
	for _, k := range keys {
		h, err := k.NewHasher()
		if err != nil {
			t.Fatalf("NewHasher(%q): %v", k, err)
		}
		for _, v := range values {
			want := HashString(k, v)
			if got := h.HashString(v); got != want {
				t.Errorf("key %d bytes, value %d bytes: HashString mismatch", len(k), len(v))
			}
			if got := h.Hash([]byte(v)); got != want {
				t.Errorf("key %d bytes, value %d bytes: Hash mismatch", len(k), len(v))
			}
		}
	}
}

func TestNewHasherRejectsEmptyKey(t *testing.T) {
	if _, err := Key(nil).NewHasher(); err == nil {
		t.Fatal("NewHasher accepted an empty key")
	}
}
