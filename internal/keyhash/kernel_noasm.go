//go:build !amd64

package keyhash

// newMultiKernel reports the multi-buffer backend unavailable: the
// two-lane SHA-NI loop is amd64 assembly. KernelAuto falls back to the
// portable kernel here.
func newMultiKernel(Key) Kernel { return nil }
