package keyhash

// The AVX2 8-lane multi-buffer backend: a transposed SHA-256 where one
// YMM register holds the same word of eight independent messages, so
// every shift/xor/add of the compression function runs on all eight
// lanes at once. No SHA-NI dependency — this is the fast path for amd64
// machines with AVX2 but no SHA extensions, and a genuine contender
// even with them (eight lanes of plain integer SIMD vs the RNDS2
// latency chain — Calibrate decides per machine).

import (
	"encoding/binary"
	"fmt"
)

// hasAVX2 gates the 8-lane kernel: AVX2 + BMI2 present, and the OS
// saving the full XMM+YMM state (OSXSAVE + XGETBV), without which AVX
// registers are silently corrupted across context switches.
var hasAVX2 = func() bool {
	maxLeaf, _, _, _ := cpuid(0, 0)
	if maxLeaf < 7 {
		return false
	}
	const osxsaveBit = 1 << 27 // CPUID.1:ECX.OSXSAVE
	_, _, ecx1, _ := cpuid(1, 0)
	if ecx1&osxsaveBit == 0 {
		return false
	}
	const xmmYmmState = 1<<1 | 1<<2 // XCR0: SSE + AVX state enabled
	xcr0, _ := xgetbv(0)
	if xcr0&xmmYmmState != xmmYmmState {
		return false
	}
	const avx2Bit = 1 << 5 // CPUID.7.0:EBX.AVX2
	const bmi2Bit = 1 << 8 // CPUID.7.0:EBX.BMI2
	_, ebx7, _, _ := cpuid(7, 0)
	return ebx7&avx2Bit != 0 && ebx7&bmi2Bit != 0
}()

// sha256mb8 runs one SHA-256 block of eight independent messages in
// transposed form: w holds the first 16 schedule words as rows of eight
// lanes (w[t*8+l] = word t of lane l, already byte-swapped); the
// assembly extends rows 16..63 in place and folds the block into state,
// also transposed (state[i*8+l] = h[i] of lane l).
//
//go:noescape
func sha256mb8(state *[64]uint32, w *[512]uint32)

// mbKernel8 batches values into eight-lane transposed calls. Immutable
// and safe for concurrent use: all per-call scratch is on the stack.
type mbKernel8 struct {
	h      *Hasher
	key    Key
	prefix []byte // len(k) ‖ k
	ctr    *kernelCounters
}

func avx2Def() *backendDef {
	d := &backendDef{
		kind:      KernelAVX2,
		lanes:     8,
		requires:  "amd64 with AVX2, BMI2",
		available: func() bool { return hasAVX2 },
	}
	d.build = func(k Key) Kernel { return newMBKernel8(k, &d.counters) }
	return d
}

func newMBKernel8(k Key, ctr *kernelCounters) Kernel {
	h, err := k.NewHasher()
	if err != nil {
		panic(fmt.Sprintf("keyhash: avx2 kernel: %v", err))
	}
	return &mbKernel8{h: h, key: k, prefix: h.prefix, ctr: ctr}
}

// HashMany groups values of equal padded block count into batches of
// eight and hashes each batch one transposed block at a time. Ragged
// tails run through the scalar Hasher; values beyond the lane width use
// the streaming construct. The digests are bit-identical to
// Hash/HashString in every case.
func (m *mbKernel8) HashMany(values []string, out []Digest) {
	m.ctr.tick(len(values))
	hashBatch8[string, strVals](m, strVals(values), out)
}

// HashColumn hashes a block column's arena view, same batching strategy.
func (m *mbKernel8) HashColumn(data []byte, offs []int32, out []Digest) {
	if len(offs) == 0 {
		return
	}
	m.ctr.tick(len(offs) - 1)
	hashBatch8[[]byte, colVals](m, colVals{data: data, offs: offs}, out)
}

// hashBatch8 is the eight-lane batching core over either value shape.
func hashBatch8[V ~string | ~[]byte, S vals[V]](m *mbKernel8, src S, out []Digest) {
	n := src.count()
	if n <= 0 {
		return
	}
	_ = out[:n] // one bounds check up front
	var (
		bufs  [8][laneBytes]byte
		w     [512]uint32
		state [64]uint32
		pend  [3][8]int // pending value indexes per block count
		npend [3]int
	)
	for i := 0; i < n; i++ {
		v := src.at(i)
		nb := paddedBlocks(len(m.prefix), len(m.key), len(v))
		if nb == 0 {
			out[i] = hashFull(m.key, v)
			continue
		}
		pend[nb][npend[nb]] = i
		npend[nb]++
		if npend[nb] < 8 {
			continue
		}
		npend[nb] = 0
		for l, j := range pend[nb] {
			fillPadded(&bufs[l], m.prefix, m.key, src.at(j), nb)
		}
		for i2, h := range sha256IV {
			for l := 0; l < 8; l++ {
				state[i2*8+l] = h
			}
		}
		for b := 0; b < nb; b++ {
			off := b * 64
			for t := 0; t < 16; t++ {
				for l := 0; l < 8; l++ {
					w[t*8+l] = binary.BigEndian.Uint32(bufs[l][off+t*4:])
				}
			}
			sha256mb8(&state, &w)
		}
		for l, j := range pend[nb] {
			var s [8]uint32
			for i2 := range s {
				s[i2] = state[i2*8+l]
			}
			putDigest(&out[j], &s)
		}
	}
	for nb := 1; nb <= 2; nb++ {
		for _, j := range pend[nb][:npend[nb]] {
			out[j] = hashAny(m.h, src.at(j))
		}
	}
}
