package keyhash

// The 4-lane multi-buffer backend: four independent one-shot SHA-256
// message streams per assembly call (sha256block4_amd64.s). Where the
// 2-lane kernel interleaves two SHA256RNDS2 dependency chains, this one
// precomputes all four message schedules first and then interleaves
// four round chains with nothing but loads and PADDDs between them —
// hiding the RNDS2 latency twice as deep. Whether that wins over the
// 2-lane kernel depends on the microarchitecture, which is exactly what
// Calibrate measures.

import "fmt"

// sha256block4 folds `blocks` 64-byte blocks of four independent
// messages (lane l at msgs[l*laneBytes:]) into four states (lane l at
// states[l*8:], plain h[0..7] word order). wbuf is schedule scratch the
// assembly spills into: 4 lanes x 64 words. Caller-allocated because a
// NOSPLIT assembly frame cannot hold 1 KiB.
//
//go:noescape
func sha256block4(states *[32]uint32, msgs *[4 * laneBytes]byte, wbuf *[256]uint32, blocks int)

// multiKernel4 batches values into four-lane assembly calls. Immutable
// and safe for concurrent use: all per-call scratch is on the stack.
type multiKernel4 struct {
	h      *Hasher
	key    Key
	prefix []byte // len(k) ‖ k
	ctr    *kernelCounters
}

func multiBuffer4Def() *backendDef {
	d := &backendDef{
		kind:      KernelMultiBuffer4,
		lanes:     4,
		requires:  "amd64 with SHA-NI, SSSE3, SSE4.1",
		available: func() bool { return hasSHANI },
	}
	d.build = func(k Key) Kernel { return newMultiKernel4(k, &d.counters) }
	return d
}

func newMultiKernel4(k Key, ctr *kernelCounters) Kernel {
	h, err := k.NewHasher()
	if err != nil {
		panic(fmt.Sprintf("keyhash: multibuffer4 kernel: %v", err))
	}
	return &multiKernel4{h: h, key: k, prefix: h.prefix, ctr: ctr}
}

// HashMany groups values of equal padded block count into batches of
// four and hashes each batch in one assembly call. Leftover pairs use
// the 2-lane kernel, lone stragglers the scalar Hasher, and values
// beyond the lane width the streaming construct. The digests are
// bit-identical to Hash/HashString in every case.
func (m *multiKernel4) HashMany(values []string, out []Digest) {
	m.ctr.tick(len(values))
	hashBatch4[string, strVals](m, strVals(values), out)
}

// HashColumn hashes a block column's arena view, same batching strategy.
func (m *multiKernel4) HashColumn(data []byte, offs []int32, out []Digest) {
	if len(offs) == 0 {
		return
	}
	m.ctr.tick(len(offs) - 1)
	hashBatch4[[]byte, colVals](m, colVals{data: data, offs: offs}, out)
}

// hashBatch4 is the four-lane batching core over either value shape.
func hashBatch4[V ~string | ~[]byte, S vals[V]](m *multiKernel4, src S, out []Digest) {
	n := src.count()
	if n <= 0 {
		return
	}
	_ = out[:n] // one bounds check up front
	var (
		msgs   [4 * laneBytes]byte
		wbuf   [256]uint32
		states [32]uint32
		pend   [3][4]int // pending value indexes per block count
		npend  [3]int
	)
	for i := 0; i < n; i++ {
		v := src.at(i)
		nb := paddedBlocks(len(m.prefix), len(m.key), len(v))
		if nb == 0 {
			out[i] = hashFull(m.key, v)
			continue
		}
		pend[nb][npend[nb]] = i
		npend[nb]++
		if npend[nb] < 4 {
			continue
		}
		npend[nb] = 0
		for l, j := range pend[nb] {
			fillPadded((*[laneBytes]byte)(msgs[l*laneBytes:]), m.prefix, m.key, src.at(j), nb)
			*(*[8]uint32)(states[l*8:]) = sha256IV
		}
		sha256block4(&states, &msgs, &wbuf, nb)
		for l, j := range pend[nb] {
			putDigest(&out[j], (*[8]uint32)(states[l*8:]))
		}
	}
	// Ragged tails: up to three leftovers per block count. Pairs still
	// get the 2-lane kernel; a lone value runs through the scalar path.
	var b0, b1 [laneBytes]byte
	for nb := 1; nb <= 2; nb++ {
		rest := pend[nb][:npend[nb]]
		for len(rest) >= 2 {
			j0, j1 := rest[0], rest[1]
			rest = rest[2:]
			fillPadded(&b0, m.prefix, m.key, src.at(j0), nb)
			fillPadded(&b1, m.prefix, m.key, src.at(j1), nb)
			s0, s1 := sha256IV, sha256IV
			sha256block2(&s0, &s1, &b0[0], &b1[0], nb)
			putDigest(&out[j0], &s0)
			putDigest(&out[j1], &s1)
		}
		if len(rest) == 1 {
			out[rest[0]] = hashAny(m.h, src.at(rest[0]))
		}
	}
}
