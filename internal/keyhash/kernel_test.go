package keyhash

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// availableKernels returns every kernel kind constructible on this
// machine, so the equivalence suite covers each assembly backend
// exactly where it can run. Unavailability is taken from the backend
// registry itself: a kind that claims to be available but fails to
// construct is a test failure, not a skip.
func availableKernels(t testing.TB, k Key) map[KernelKind]Kernel {
	t.Helper()
	avail := map[KernelKind]bool{KernelAuto: true}
	for _, b := range Backends() {
		avail[b.Kind] = b.Available
	}
	kernels := map[KernelKind]Kernel{}
	for _, kind := range KernelKinds() {
		kern, err := k.NewKernel(kind)
		if err != nil {
			if !avail[kind] {
				t.Logf("kernel %q unavailable here: %v", kind, err)
				continue
			}
			t.Fatalf("NewKernel(%q): %v", kind, err)
		}
		kernels[kind] = kern
	}
	return kernels
}

// TestKernelMatchesHash drives every available kernel over value sets
// covering each execution path — the one-block and two-block assembly
// lanes, the pairing parity, and the beyond-lane streaming fallback —
// and requires digests bit-identical to the scalar construct.
func TestKernelMatchesHash(t *testing.T) {
	k := NewKey("kernel-equivalence")
	cases := [][]string{
		{},
		{"solo"},
		{"a", "b"},
		{"", "", ""},
		{"500123", "500124", "500125", "500126", "500127"},
		{strings.Repeat("x", 47), strings.Repeat("y", 48), strings.Repeat("z", 200), "tiny"},
		{strings.Repeat("long-value-", 30), strings.Repeat("w", 1000)},
	}
	// Ragged batch tails for every lane width: batch sizes around the
	// 2-, 4- and 8-lane boundaries, same-length values so they all land
	// in one block-count bucket.
	for _, n := range []int{3, 4, 5, 7, 8, 9, 15, 16, 17} {
		batch := make([]string, n)
		for i := range batch {
			batch[i] = fmt.Sprintf("tail-%02d-%02d", n, i)
		}
		cases = append(cases, batch)
	}
	// One-block and two-block values interleaved, so multi-lane batches
	// fill both buckets at once and flush them at different times.
	var mixed []string
	for i := 0; i < 23; i++ {
		if i%3 == 0 {
			mixed = append(mixed, strings.Repeat("m", 90)+fmt.Sprint(i))
		} else {
			mixed = append(mixed, fmt.Sprintf("m%d", i))
		}
	}
	cases = append(cases, mixed)
	// Every value length from 0 through past the two-block lane
	// boundary, in one batch (odd/even pairings shift as it goes).
	var sweep []string
	for n := 0; n <= 140; n++ {
		sweep = append(sweep, strings.Repeat("v", n))
	}
	cases = append(cases, sweep)

	for kind, kern := range availableKernels(t, k) {
		t.Run(string(kind), func(t *testing.T) {
			for ci, values := range cases {
				out := make([]Digest, len(values))
				kern.HashMany(values, out)
				for i, v := range values {
					if want := HashString(k, v); out[i] != want {
						t.Fatalf("case %d value %d (len %d): kernel %q digest mismatch\n got %x\nwant %x",
							ci, i, len(v), kind, out[i], want)
					}
				}
				// The columnar entry point must produce the identical
				// digests over the same byte sequences.
				data, offs := column(values)
				colOut := make([]Digest, len(values))
				kern.HashColumn(data, offs, colOut)
				for i := range values {
					if colOut[i] != out[i] {
						t.Fatalf("case %d value %d: kernel %q HashColumn differs from HashMany",
							ci, i, kind)
					}
				}
			}
		})
	}
}

// column lays values out as a contiguous arena + offsets, the shape
// HashColumn consumes.
func column(values []string) ([]byte, []int32) {
	offs := make([]int32, 1, len(values)+1)
	var data []byte
	for _, v := range values {
		data = append(data, v...)
		offs = append(offs, int32(len(data)))
	}
	return data, offs
}

// TestKernelMatchesHashRandom is the randomized sweep: arbitrary batch
// shapes, lengths and contents, odd keys included.
func TestKernelMatchesHashRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		keyLen := 1 + rng.Intn(64)
		keyBytes := make([]byte, keyLen)
		rng.Read(keyBytes)
		k := Key(keyBytes)
		values := make([]string, rng.Intn(40))
		for i := range values {
			b := make([]byte, rng.Intn(160))
			rng.Read(b)
			values[i] = string(b)
		}
		for kind, kern := range availableKernels(t, k) {
			out := make([]Digest, len(values))
			kern.HashMany(values, out)
			for i, v := range values {
				if want := HashString(k, v); out[i] != want {
					t.Fatalf("trial %d kernel %q keyLen %d value %d (len %d): digest mismatch",
						trial, kind, keyLen, i, len(v))
				}
			}
			data, offs := column(values)
			colOut := make([]Digest, len(values))
			kern.HashColumn(data, offs, colOut)
			for i := range values {
				if colOut[i] != out[i] {
					t.Fatalf("trial %d kernel %q value %d: HashColumn differs from HashMany",
						trial, kind, i)
				}
			}
		}
	}
}

// FuzzKernelMatchesHash cross-checks every available kernel against the
// scalar construct on fuzzer-chosen key and value bytes.
func FuzzKernelMatchesHash(f *testing.F) {
	f.Add([]byte("seed-key"), "value-a", "value-b", "value-c")
	f.Add([]byte{1}, "", strings.Repeat("q", 60), strings.Repeat("r", 130))
	f.Fuzz(func(t *testing.T, keyBytes []byte, v0, v1, v2 string) {
		if len(keyBytes) == 0 {
			t.Skip()
		}
		k := Key(keyBytes)
		values := []string{v0, v1, v2, v0}
		for kind, kern := range availableKernels(t, k) {
			out := make([]Digest, len(values))
			kern.HashMany(values, out)
			for i, v := range values {
				if want := HashString(k, v); out[i] != want {
					t.Fatalf("kernel %q value %d: digest mismatch", kind, i)
				}
			}
			data, offs := column(values)
			colOut := make([]Digest, len(values))
			kern.HashColumn(data, offs, colOut)
			for i := range values {
				if colOut[i] != out[i] {
					t.Fatalf("kernel %q value %d: HashColumn differs from HashMany", kind, i)
				}
			}
		}
	})
}

func TestNewKernelErrors(t *testing.T) {
	if _, err := Key(nil).NewKernel(KernelAuto); err == nil {
		t.Fatal("empty key: want error")
	}
	if _, err := NewKey("x").NewKernel(KernelKind("no-such-backend")); err == nil {
		t.Fatal("unknown kind: want error")
	}
}

// TestBlockMemoSharesLanes proves the lane cache: same (column, key)
// pairs hit the memo, different columns or keys do not, and Reset
// invalidates.
func TestBlockMemoSharesLanes(t *testing.T) {
	kA, kB := NewKey("owner-a"), NewKey("owner-b")
	kernA := countingKernel{inner: mustKernel(t, kA)}
	kernB := countingKernel{inner: mustKernel(t, kB)}
	values := []string{"k1", "k2", "k3"}

	var m BlockMemo
	first := m.Lane(0, string(kA), &kernA, values)
	again := m.Lane(0, string(kA), &kernA, values)
	if kernA.calls != 1 {
		t.Fatalf("same lane twice: %d kernel calls, want 1", kernA.calls)
	}
	if &first[0] != &again[0] {
		t.Fatal("memo hit should return the cached slice")
	}
	for i, v := range values {
		if first[i] != HashString(kA, v) {
			t.Fatalf("lane digest %d mismatch", i)
		}
	}

	m.Lane(1, string(kA), &kernA, values) // different column: new lane
	if kernA.calls != 2 {
		t.Fatalf("distinct column should re-hash: %d calls, want 2", kernA.calls)
	}
	m.Lane(0, string(kB), &kernB, values) // different key: new lane
	if kernB.calls != 1 {
		t.Fatalf("distinct key should hash its own lane: %d calls, want 1", kernB.calls)
	}

	// The columnar entry shares lanes with the string entry: same
	// (col, key) hits the memo without re-hashing.
	data, offs := column(values)
	col := m.LaneColumn(0, string(kA), &kernA, data, offs)
	if kernA.calls != 2 {
		t.Fatalf("LaneColumn should hit the Lane memo: %d calls, want 2", kernA.calls)
	}
	if &col[0] != &first[0] {
		t.Fatal("LaneColumn memo hit should return the cached slice")
	}

	m.Reset()
	m.LaneColumn(0, string(kA), &kernA, data, offs)
	if kernA.calls != 3 {
		t.Fatalf("Reset should invalidate lanes: %d calls, want 3", kernA.calls)
	}
	if d := m.Lane(0, string(kA), &kernA, values); d[0] != HashString(kA, values[0]) {
		t.Fatal("LaneColumn-filled lane digest mismatch")
	}
}

func mustKernel(t *testing.T, k Key) Kernel {
	t.Helper()
	kern, err := k.NewKernel(KernelAuto)
	if err != nil {
		t.Fatal(err)
	}
	return kern
}

// countingKernel counts HashMany invocations for memo assertions.
type countingKernel struct {
	inner Kernel
	calls int
}

func (c *countingKernel) HashMany(values []string, out []Digest) {
	c.calls++
	c.inner.HashMany(values, out)
}

func (c *countingKernel) HashColumn(data []byte, offs []int32, out []Digest) {
	c.calls++
	c.inner.HashColumn(data, offs, out)
}

// TestKernelKindsRoundTrip pins the knob spellings that travel through
// core.Spec and the CLI flags.
func TestKernelKindsRoundTrip(t *testing.T) {
	avail := map[KernelKind]bool{KernelAuto: true}
	for _, b := range Backends() {
		avail[b.Kind] = b.Available
	}
	for _, kind := range KernelKinds() {
		if !avail[kind] {
			continue // availability varies by CPU
		}
		if _, err := NewKey("k").NewKernel(kind); err != nil {
			t.Fatalf("kind %q: %v", kind, err)
		}
	}
	got := fmt.Sprintf("%s/%s/%s/%s", KernelPortable, KernelMultiBuffer, KernelMultiBuffer4, KernelAVX2)
	if got != "portable/multibuffer/multibuffer4/avx2" {
		t.Fatalf("kernel kind spellings changed: %s", got)
	}
}

// TestBackendRegistry pins the registry invariants every enumeration
// path (KernelKinds, KernelStats, Calibrate, wmtool kernels) relies on.
func TestBackendRegistry(t *testing.T) {
	backends := Backends()
	if len(backends) == 0 || backends[0].Kind != KernelPortable {
		t.Fatalf("portable backend must be registered first: %+v", backends)
	}
	if !backends[0].Available {
		t.Fatal("portable backend must always be available")
	}
	seen := map[KernelKind]bool{}
	for _, b := range backends {
		if seen[b.Kind] {
			t.Fatalf("duplicate backend %q", b.Kind)
		}
		seen[b.Kind] = true
		if b.Lanes < 1 {
			t.Fatalf("backend %q: lanes %d", b.Kind, b.Lanes)
		}
		if b.Kind != KernelPortable && b.Requires == "" {
			t.Fatalf("accelerated backend %q must name its CPU gate", b.Kind)
		}
	}
	stats := KernelStats()
	for _, b := range backends {
		if _, ok := stats[b.Kind]; !ok {
			t.Fatalf("KernelStats missing backend %q", b.Kind)
		}
	}
	if len(stats) != len(backends) {
		t.Fatalf("KernelStats has %d entries, registry %d", len(stats), len(backends))
	}
}

// TestKernelStatsCount proves the counters actually tick through the
// registry pairs: a fresh kernel's HashMany moves its backend's totals.
func TestKernelStatsCount(t *testing.T) {
	k := NewKey("stats-key")
	values := []string{"a", "b", "c"}
	out := make([]Digest, len(values))
	for kind, kern := range availableKernels(t, k) {
		if kind == KernelAuto {
			continue // double-counts whichever backend it resolves to
		}
		before := KernelStats()[kind]
		kern.HashMany(values, out)
		after := KernelStats()[kind]
		if after.Calls != before.Calls+1 || after.Values != before.Values+uint64(len(values)) {
			t.Fatalf("kernel %q counters did not tick: before %+v after %+v", kind, before, after)
		}
	}
}

// TestCalibrate pins the auto-selection contract: the winner is an
// available backend, every available backend gets a measured positive
// rate, and the cached result is stable across calls.
func TestCalibrate(t *testing.T) {
	cal := Calibrate()
	d := Calibrate()
	if cal.Kind != d.Kind {
		t.Fatalf("Calibrate not cached: %q then %q", cal.Kind, d.Kind)
	}
	found := false
	for _, b := range Backends() {
		if b.Kind == cal.Kind {
			found = true
			if !b.Available {
				t.Fatalf("calibration picked unavailable backend %q", cal.Kind)
			}
		}
		if b.Available {
			if rate, ok := cal.HashesPerSec[b.Kind]; !ok || rate <= 0 {
				t.Fatalf("backend %q: no positive calibrated rate (%v)", b.Kind, cal.HashesPerSec)
			}
		}
	}
	if !found {
		t.Fatalf("calibration picked unregistered backend %q", cal.Kind)
	}
	if cal.Rate() <= 0 {
		t.Fatalf("chosen backend rate %v", cal.Rate())
	}
	if AutoKind() != cal.Kind {
		t.Fatalf("AutoKind %q != Calibrate().Kind %q", AutoKind(), cal.Kind)
	}
}

// TestAutoKernelEquivalenceCovered is the CI guard: KernelAuto must
// never resolve to a backend whose equivalence suite would be skipped.
// The equivalence tests skip exactly the backends Backends() reports
// unavailable, so the auto pick being available — and constructible —
// means its digests are cross-checked on this machine.
func TestAutoKernelEquivalenceCovered(t *testing.T) {
	kind := AutoKind()
	for _, b := range Backends() {
		if b.Kind != kind {
			continue
		}
		if !b.Available {
			t.Fatalf("KernelAuto resolves to %q, which is unavailable here: its equivalence test is skipped", kind)
		}
		if _, err := NewKey("guard").NewKernel(kind); err != nil {
			t.Fatalf("KernelAuto resolves to %q but it does not construct: %v", kind, err)
		}
		t.Logf("KernelAuto -> %q (%d lanes), equivalence-covered on this machine", kind, b.Lanes)
		return
	}
	t.Fatalf("KernelAuto resolves to unregistered backend %q", kind)
}
