package keyhash

import (
	"strconv"
	"testing"
)

func BenchmarkHashString(b *testing.B) {
	k := NewKey("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = HashString(k, "500123")
	}
}

func BenchmarkFitKey(b *testing.B) {
	k := NewKey("bench")
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = strconv.Itoa(500000 + i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = FitKey(k, keys[i&1023], 65)
	}
}

func BenchmarkPairIndex(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = PairIndex(uint64(i)*2654435761, 1000, uint64(i)&1)
	}
}
