package keyhash

import (
	"os"
	"strconv"
	"strings"
	"testing"
)

func BenchmarkHashString(b *testing.B) {
	k := NewKey("bench")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = HashString(k, "500123")
	}
}

// BenchmarkHasher tracks the prepared-context fast path per tier: the
// short one-shot buffer (typical key-attribute values), the wide
// one-shot buffer, and the streaming fallback.
func BenchmarkHasher(b *testing.B) {
	k := NewKey("bench")
	h, err := k.NewHasher()
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name  string
		value string
	}{
		{"short-6B", "500123"},
		{"oneshot-40B", strings.Repeat("v", 40)},
		{"stream-200B", strings.Repeat("v", 200)},
	} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_ = h.HashString(tc.value)
			}
		})
	}
}

// BenchmarkKernelHashMany compares the batched kernels against the
// tuple-at-a-time Hasher loop over one block of realistic key values —
// the per-certificate unit of work of every batch audit.
func BenchmarkKernelHashMany(b *testing.B) {
	k := NewKey("bench")
	values := make([]string, 1024)
	for i := range values {
		values[i] = strconv.Itoa(500000 + i)
	}
	out := make([]Digest, len(values))

	h, err := k.NewHasher()
	if err != nil {
		b.Fatal(err)
	}
	b.Run("hasher-loop", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for j, v := range values {
				out[j] = h.HashString(v)
			}
		}
		reportHashRate(b, len(values))
	})
	for _, bk := range Backends() {
		if !bk.Available {
			b.Logf("kernel %q unavailable (needs %s)", bk.Kind, bk.Requires)
			continue
		}
		kern, err := k.NewKernel(bk.Kind)
		if err != nil {
			b.Fatalf("kernel %q: %v", bk.Kind, err)
		}
		b.Run(string(bk.Kind), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				kern.HashMany(values, out)
			}
			reportHashRate(b, len(values))
		})
	}

	// CI pins a backend via WM_BENCH_KERNEL so two runs produce the same
	// sub-benchmark name ("pinned") and benchstat can diff them — e.g.
	// old = multibuffer, new = widest. Accepted values: any kernel kind,
	// "auto" (the calibrated winner), or "widest" (most lanes available).
	if env := os.Getenv("WM_BENCH_KERNEL"); env != "" {
		kind, err := resolveBenchKernel(env)
		if err != nil {
			b.Fatal(err)
		}
		kern, err := k.NewKernel(kind)
		if err != nil {
			b.Fatalf("WM_BENCH_KERNEL=%s: %v", env, err)
		}
		b.Run("pinned", func(b *testing.B) {
			b.ReportAllocs()
			b.Logf("WM_BENCH_KERNEL=%s -> kernel %q", env, kind)
			for i := 0; i < b.N; i++ {
				kern.HashMany(values, out)
			}
			reportHashRate(b, len(values))
		})
	}
}

// resolveBenchKernel maps a WM_BENCH_KERNEL value to a concrete kind.
func resolveBenchKernel(env string) (KernelKind, error) {
	switch env {
	case "auto":
		return AutoKind(), nil
	case "widest":
		kind, lanes := KernelPortable, 1
		for _, bk := range Backends() {
			if bk.Available && bk.Lanes > lanes {
				kind, lanes = bk.Kind, bk.Lanes
			}
		}
		return kind, nil
	default:
		return KernelKind(env), nil
	}
}

func reportHashRate(b *testing.B, n int) {
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mhash/s")
}

func BenchmarkFitKey(b *testing.B) {
	k := NewKey("bench")
	keys := make([]string, 1024)
	for i := range keys {
		keys[i] = strconv.Itoa(500000 + i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = FitKey(k, keys[i&1023], 65)
	}
}

func BenchmarkPairIndex(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = PairIndex(uint64(i)*2654435761, 1000, uint64(i)&1)
	}
}
