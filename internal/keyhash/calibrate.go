package keyhash

import (
	"fmt"
	"sync"
	"time"
)

// Calibration is the result of the one-time startup micro-benchmark
// that KernelAuto uses to pick a backend: the chosen kind plus the
// measured single-thread hash rate of every backend this CPU can run.
type Calibration struct {
	// Kind is the fastest measured backend — what KernelAuto builds.
	Kind KernelKind
	// HashesPerSec maps every available backend to its measured
	// single-thread keyed-hash rate over a block of short values.
	HashesPerSec map[KernelKind]float64
}

// Rate returns the measured hash rate of the chosen backend.
func (c Calibration) Rate() float64 { return c.HashesPerSec[c.Kind] }

var (
	calibOnce   sync.Once
	calibResult Calibration
)

// Calibrate micro-benchmarks every backend available on this machine
// and returns the fastest, caching the result for the process lifetime.
// The first caller pays a few milliseconds (about a millisecond per
// available backend); everyone after reads the cache. NewKernel
// (KernelAuto) resolves through this, so the cost is paid at most once
// no matter how many scanners a process builds.
func Calibrate() Calibration {
	calibOnce.Do(func() { calibResult = runCalibration(time.Millisecond) })
	return calibResult
}

// AutoKind is the concrete backend KernelAuto resolves to.
func AutoKind() KernelKind { return Calibrate().Kind }

// runCalibration measures every available backend for roughly budget
// each and picks the fastest. Ties (unlikely) keep the earlier
// registry entry, i.e. the narrower kernel.
func runCalibration(budget time.Duration) Calibration {
	key := Key("keyhash-calibration-key")
	values := calibrationBlock()
	out := make([]Digest, len(values))

	cal := Calibration{
		Kind:         KernelPortable,
		HashesPerSec: make(map[KernelKind]float64, len(registry)),
	}
	best := 0.0
	for _, d := range registry {
		if !d.available() {
			continue
		}
		kern := d.build(key)
		kern.HashMany(values, out) // warm up: page in code + tables
		hashed := 0
		start := time.Now()
		var elapsed time.Duration
		for elapsed < budget {
			kern.HashMany(values, out)
			hashed += len(values)
			elapsed = time.Since(start)
		}
		rate := float64(hashed) / elapsed.Seconds()
		cal.HashesPerSec[d.kind] = rate
		if rate > best {
			best = rate
			cal.Kind = d.kind
		}
	}
	return cal
}

// calibrationBlock builds a block of values shaped like real categorical
// scans: mostly short identifiers (single-block messages) with a sprinkle
// of longer ones, so multi-lane kernels are measured on the batch shape
// they will actually see.
func calibrationBlock() []string {
	values := make([]string, 256)
	for i := range values {
		if i%32 == 31 {
			// A two-block message: long enough that prefix+value+key
			// spills past one 64-byte SHA-256 block.
			values[i] = fmt.Sprintf("calibration-long-value-%08d-%08d", i, i)
		} else {
			values[i] = fmt.Sprintf("v%06d", i)
		}
	}
	return values
}
