// Two-lane SHA-256 compression for the multi-buffer keyed-hash kernel.
//
// func sha256block2(s0, s1 *[8]uint32, p0, p1 *byte, blocks int)
//
// Folds `blocks` 64-byte blocks from p0 into state s0 and, interleaved
// in the same instruction stream, the same number of blocks from p1
// into s1. The two messages are independent, so their SHA256RNDS2
// dependency chains overlap in the out-of-order core: a single-stream
// SHA-NI loop is latency-bound on that chain (~3.3 cycles/byte on the
// machines this was tuned on), while the paired loop keeps the SHA unit
// busy and lands near twice the throughput.
//
// The round structure is the canonical Intel SHA-NI flow, the same one
// the Go runtime uses for crypto/sha256, duplicated per lane at
// 4-round-group granularity:
//
//	lane A: X1 = ABEF, X2 = CDGH, X3-X6 = message schedule
//	lane B: X9 = ABEF, X10 = CDGH, X11-X14 = message schedule
//	shared: X0 = WK staging (implicit SHA256RNDS2 operand),
//	        X7 = scratch, X8 = byte-swap shuffle mask
//
// Requires SHA-NI, SSSE3 (PSHUFB) and SSE4.1 (PBLENDW); the Go side
// gates construction on CPUID.

#include "textflag.h"

// Group 0-2: load 16 message bytes, byte-swap, stash the schedule word,
// run 4 rounds. MSG1 of the previous schedule word is folded in from
// group 1 on (G_LOAD1).
#define G_LOAD0(off, p, st0, st1, w) \
	MOVOU       off(p), X0          \
	PSHUFB      X8, X0              \
	MOVO        X0, w               \
	PADDD       off(AX), X0         \
	SHA256RNDS2 X0, st0, st1        \
	PSHUFD      $0x0e, X0, X0       \
	SHA256RNDS2 X0, st1, st0

#define G_LOAD1(off, p, st0, st1, w, wprev) \
	MOVOU       off(p), X0          \
	PSHUFB      X8, X0              \
	MOVO        X0, w               \
	PADDD       off(AX), X0         \
	SHA256RNDS2 X0, st0, st1        \
	PSHUFD      $0x0e, X0, X0       \
	SHA256RNDS2 X0, st1, st0        \
	SHA256MSG1  w, wprev

// Group 3: the last message load; the schedule pipeline starts (MSG2
// finishes W16-19 into w0).
#define G_LOAD3(p, st0, st1, w0, w2, w3) \
	MOVOU       48(p), X0           \
	PSHUFB      X8, X0              \
	MOVO        X0, w3              \
	PADDD       48(AX), X0          \
	SHA256RNDS2 X0, st0, st1        \
	MOVO        w3, X7              \
	PALIGNR     $4, w2, X7          \
	PADDD       X7, w0              \
	SHA256MSG2  w3, w0              \
	PSHUFD      $0x0e, X0, X0       \
	SHA256RNDS2 X0, st1, st0        \
	SHA256MSG1  w3, w2

// Groups 4-12: 4 rounds plus the full schedule update (MSG1 + MSG2).
#define G_MID(koff, st0, st1, cur, prev3, nxt) \
	MOVO        cur, X0             \
	PADDD       koff(AX), X0        \
	SHA256RNDS2 X0, st0, st1        \
	MOVO        cur, X7             \
	PALIGNR     $4, prev3, X7       \
	PADDD       X7, nxt             \
	SHA256MSG2  cur, nxt            \
	PSHUFD      $0x0e, X0, X0       \
	SHA256RNDS2 X0, st1, st0        \
	SHA256MSG1  cur, prev3

// Groups 13-14: schedule tail — MSG2 still needed, MSG1 no longer.
#define G_TAIL(koff, st0, st1, cur, prev3, nxt) \
	MOVO        cur, X0             \
	PADDD       koff(AX), X0        \
	SHA256RNDS2 X0, st0, st1        \
	MOVO        cur, X7             \
	PALIGNR     $4, prev3, X7       \
	PADDD       X7, nxt             \
	SHA256MSG2  cur, nxt            \
	PSHUFD      $0x0e, X0, X0       \
	SHA256RNDS2 X0, st1, st0

// Group 15: rounds 60-63, no schedule work left.
#define G_LAST(st0, st1, w3) \
	MOVO        w3, X0              \
	PADDD       240(AX), X0         \
	SHA256RNDS2 X0, st0, st1        \
	PSHUFD      $0x0e, X0, X0       \
	SHA256RNDS2 X0, st1, st0

TEXT ·sha256block2(SB), NOSPLIT, $64-40
	MOVQ s0+0(FP), DI
	MOVQ s1+8(FP), R9
	MOVQ p0+16(FP), SI
	MOVQ p1+24(FP), R8
	MOVQ blocks+32(FP), BX
	TESTQ BX, BX
	JZ   done
	LEAQ kernelK256<>+0(SB), AX
	MOVOU kernelFlip<>+0(SB), X8

	// h[0..7] -> (ABEF, CDGH) working order, per lane.
	MOVOU   (DI), X1
	MOVOU   16(DI), X2
	PSHUFD  $0xb1, X1, X1
	PSHUFD  $0x1b, X2, X2
	MOVO    X1, X7
	PALIGNR $8, X2, X1
	PBLENDW $0xf0, X7, X2

	MOVOU   (R9), X9
	MOVOU   16(R9), X10
	PSHUFD  $0xb1, X9, X9
	PSHUFD  $0x1b, X10, X10
	MOVO    X9, X7
	PALIGNR $8, X10, X9
	PBLENDW $0xf0, X7, X10

roundLoop:
	// Save the incoming states for the final feed-forward add.
	MOVOU X1, 0(SP)
	MOVOU X2, 16(SP)
	MOVOU X9, 32(SP)
	MOVOU X10, 48(SP)

	G_LOAD0(0, SI, X1, X2, X3)
	G_LOAD0(0, R8, X9, X10, X11)
	G_LOAD1(16, SI, X1, X2, X4, X3)
	G_LOAD1(16, R8, X9, X10, X12, X11)
	G_LOAD1(32, SI, X1, X2, X5, X4)
	G_LOAD1(32, R8, X9, X10, X13, X12)
	G_LOAD3(SI, X1, X2, X3, X5, X6)
	G_LOAD3(R8, X9, X10, X11, X13, X14)

	G_MID(64, X1, X2, X3, X6, X4)
	G_MID(64, X9, X10, X11, X14, X12)
	G_MID(80, X1, X2, X4, X3, X5)
	G_MID(80, X9, X10, X12, X11, X13)
	G_MID(96, X1, X2, X5, X4, X6)
	G_MID(96, X9, X10, X13, X12, X14)
	G_MID(112, X1, X2, X6, X5, X3)
	G_MID(112, X9, X10, X14, X13, X11)
	G_MID(128, X1, X2, X3, X6, X4)
	G_MID(128, X9, X10, X11, X14, X12)
	G_MID(144, X1, X2, X4, X3, X5)
	G_MID(144, X9, X10, X12, X11, X13)
	G_MID(160, X1, X2, X5, X4, X6)
	G_MID(160, X9, X10, X13, X12, X14)
	G_MID(176, X1, X2, X6, X5, X3)
	G_MID(176, X9, X10, X14, X13, X11)
	G_MID(192, X1, X2, X3, X6, X4)
	G_MID(192, X9, X10, X11, X14, X12)

	G_TAIL(208, X1, X2, X4, X3, X5)
	G_TAIL(208, X9, X10, X12, X11, X13)
	G_TAIL(224, X1, X2, X5, X4, X6)
	G_TAIL(224, X9, X10, X13, X12, X14)

	G_LAST(X1, X2, X6)
	G_LAST(X9, X10, X14)

	// Feed-forward: add the saved incoming states.
	MOVOU 0(SP), X7
	PADDD X7, X1
	MOVOU 16(SP), X7
	PADDD X7, X2
	MOVOU 32(SP), X7
	PADDD X7, X9
	MOVOU 48(SP), X7
	PADDD X7, X10

	ADDQ $64, SI
	ADDQ $64, R8
	DECQ BX
	JNZ  roundLoop

	// Working order back to h[0..7], per lane.
	PSHUFD  $0x1b, X1, X1
	PSHUFD  $0xb1, X2, X2
	MOVO    X1, X7
	PBLENDW $0xf0, X2, X1
	PALIGNR $8, X7, X2
	MOVOU   X1, (DI)
	MOVOU   X2, 16(DI)

	PSHUFD  $0x1b, X9, X9
	PSHUFD  $0xb1, X10, X10
	MOVO    X9, X7
	PBLENDW $0xf0, X10, X9
	PALIGNR $8, X7, X10
	MOVOU   X9, (R9)
	MOVOU   X10, 16(R9)

done:
	RET

// SHA-256 round constants, packed (16-byte stride, 4 constants per
// round group).
DATA kernelK256<>+0x00(SB)/4, $0x428a2f98
DATA kernelK256<>+0x04(SB)/4, $0x71374491
DATA kernelK256<>+0x08(SB)/4, $0xb5c0fbcf
DATA kernelK256<>+0x0c(SB)/4, $0xe9b5dba5
DATA kernelK256<>+0x10(SB)/4, $0x3956c25b
DATA kernelK256<>+0x14(SB)/4, $0x59f111f1
DATA kernelK256<>+0x18(SB)/4, $0x923f82a4
DATA kernelK256<>+0x1c(SB)/4, $0xab1c5ed5
DATA kernelK256<>+0x20(SB)/4, $0xd807aa98
DATA kernelK256<>+0x24(SB)/4, $0x12835b01
DATA kernelK256<>+0x28(SB)/4, $0x243185be
DATA kernelK256<>+0x2c(SB)/4, $0x550c7dc3
DATA kernelK256<>+0x30(SB)/4, $0x72be5d74
DATA kernelK256<>+0x34(SB)/4, $0x80deb1fe
DATA kernelK256<>+0x38(SB)/4, $0x9bdc06a7
DATA kernelK256<>+0x3c(SB)/4, $0xc19bf174
DATA kernelK256<>+0x40(SB)/4, $0xe49b69c1
DATA kernelK256<>+0x44(SB)/4, $0xefbe4786
DATA kernelK256<>+0x48(SB)/4, $0x0fc19dc6
DATA kernelK256<>+0x4c(SB)/4, $0x240ca1cc
DATA kernelK256<>+0x50(SB)/4, $0x2de92c6f
DATA kernelK256<>+0x54(SB)/4, $0x4a7484aa
DATA kernelK256<>+0x58(SB)/4, $0x5cb0a9dc
DATA kernelK256<>+0x5c(SB)/4, $0x76f988da
DATA kernelK256<>+0x60(SB)/4, $0x983e5152
DATA kernelK256<>+0x64(SB)/4, $0xa831c66d
DATA kernelK256<>+0x68(SB)/4, $0xb00327c8
DATA kernelK256<>+0x6c(SB)/4, $0xbf597fc7
DATA kernelK256<>+0x70(SB)/4, $0xc6e00bf3
DATA kernelK256<>+0x74(SB)/4, $0xd5a79147
DATA kernelK256<>+0x78(SB)/4, $0x06ca6351
DATA kernelK256<>+0x7c(SB)/4, $0x14292967
DATA kernelK256<>+0x80(SB)/4, $0x27b70a85
DATA kernelK256<>+0x84(SB)/4, $0x2e1b2138
DATA kernelK256<>+0x88(SB)/4, $0x4d2c6dfc
DATA kernelK256<>+0x8c(SB)/4, $0x53380d13
DATA kernelK256<>+0x90(SB)/4, $0x650a7354
DATA kernelK256<>+0x94(SB)/4, $0x766a0abb
DATA kernelK256<>+0x98(SB)/4, $0x81c2c92e
DATA kernelK256<>+0x9c(SB)/4, $0x92722c85
DATA kernelK256<>+0xa0(SB)/4, $0xa2bfe8a1
DATA kernelK256<>+0xa4(SB)/4, $0xa81a664b
DATA kernelK256<>+0xa8(SB)/4, $0xc24b8b70
DATA kernelK256<>+0xac(SB)/4, $0xc76c51a3
DATA kernelK256<>+0xb0(SB)/4, $0xd192e819
DATA kernelK256<>+0xb4(SB)/4, $0xd6990624
DATA kernelK256<>+0xb8(SB)/4, $0xf40e3585
DATA kernelK256<>+0xbc(SB)/4, $0x106aa070
DATA kernelK256<>+0xc0(SB)/4, $0x19a4c116
DATA kernelK256<>+0xc4(SB)/4, $0x1e376c08
DATA kernelK256<>+0xc8(SB)/4, $0x2748774c
DATA kernelK256<>+0xcc(SB)/4, $0x34b0bcb5
DATA kernelK256<>+0xd0(SB)/4, $0x391c0cb3
DATA kernelK256<>+0xd4(SB)/4, $0x4ed8aa4a
DATA kernelK256<>+0xd8(SB)/4, $0x5b9cca4f
DATA kernelK256<>+0xdc(SB)/4, $0x682e6ff3
DATA kernelK256<>+0xe0(SB)/4, $0x748f82ee
DATA kernelK256<>+0xe4(SB)/4, $0x78a5636f
DATA kernelK256<>+0xe8(SB)/4, $0x84c87814
DATA kernelK256<>+0xec(SB)/4, $0x8cc70208
DATA kernelK256<>+0xf0(SB)/4, $0x90befffa
DATA kernelK256<>+0xf4(SB)/4, $0xa4506ceb
DATA kernelK256<>+0xf8(SB)/4, $0xbef9a3f7
DATA kernelK256<>+0xfc(SB)/4, $0xc67178f2
GLOBL kernelK256<>(SB), RODATA, $256

// Byte-swap mask: big-endian message words from little-endian loads.
DATA kernelFlip<>+0(SB)/8, $0x0405060700010203
DATA kernelFlip<>+8(SB)/8, $0x0c0d0e0f08090a0b
GLOBL kernelFlip<>(SB), RODATA, $16
