package keyhash

import (
	"crypto/sha256"
	"encoding/binary"
)

// Hasher is a prepared evaluation context for H(·;k) with the key fixed.
// The construct's prefix (len(k) ‖ k) is assembled once at construction,
// and each Hash call runs a single one-shot SHA-256 over a stack buffer
// instead of four streaming writes through the hash.Hash interface. The
// digests are bit-identical to Hash/HashString — the hot detection and
// embedding loops evaluate one keyed hash per tuple per certificate, so
// this is the per-tuple unit of work batch verification multiplies.
// (The block engine batches that unit further: see Kernel, whose
// implementations reuse one scratch buffer per block instead of
// zero-initialising a fresh one per call.)
//
// A Hasher is immutable after construction and safe for concurrent use.
type Hasher struct {
	key    Key
	prefix []byte // len(k) ‖ k
}

// NewHasher validates the key and prepares a Hasher for it.
func (k Key) NewHasher() (*Hasher, error) {
	if err := k.Validate(); err != nil {
		return nil, err
	}
	prefix := make([]byte, 8+len(k))
	binary.BigEndian.PutUint64(prefix[:8], uint64(len(k)))
	copy(prefix[8:], k)
	return &Hasher{key: k, prefix: prefix}, nil
}

// The one-shot fast path is tiered so the compiler zero-initialises only
// as much stack as the input needs: a NewKey-derived 32-byte key leaves
// oneShotShort enough room for values up to 24 bytes — the realistic
// key-attribute range — and oneShotMax for values up to 56. Longer
// inputs fall back to the streaming construct. (BenchmarkHasher tracks
// the tier deltas; the batched kernels sidestep the per-call zero-init
// entirely by reusing one scratch buffer per block.)
const (
	oneShotShort = 96
	oneShotMax   = 128
)

// oneShot assembles len(k) ‖ k ‖ v ‖ k into buf and hashes it. buf must
// hold len(prefix) + len(v) + len(key) bytes.
func oneShot[V ~string | ~[]byte](h *Hasher, buf []byte, v V) Digest {
	n := copy(buf, h.prefix)
	n += copy(buf[n:], v)
	n += copy(buf[n:], h.key)
	return Digest(sha256.Sum256(buf[:n]))
}

// Hash computes H(v;k), identically to Hash(k, v).
func (h *Hasher) Hash(v []byte) Digest {
	switch total := len(h.prefix) + len(v) + len(h.key); {
	case total <= oneShotShort:
		var buf [oneShotShort]byte
		return oneShot(h, buf[:], v)
	case total <= oneShotMax:
		var buf [oneShotMax]byte
		return oneShot(h, buf[:], v)
	default:
		return Hash(h.key, v)
	}
}

// HashString is Hash over the UTF-8 bytes of v.
func (h *Hasher) HashString(v string) Digest {
	switch total := len(h.prefix) + len(v) + len(h.key); {
	case total <= oneShotShort:
		var buf [oneShotShort]byte
		return oneShot(h, buf[:], v)
	case total <= oneShotMax:
		var buf [oneShotMax]byte
		return oneShot(h, buf[:], v)
	default:
		return HashString(h.key, v)
	}
}

// hashAny is Hash/HashString over either value shape, with the same
// one-shot tiering — the scalar tail path of the generic kernel cores.
func hashAny[V ~string | ~[]byte](h *Hasher, v V) Digest {
	switch total := len(h.prefix) + len(v) + len(h.key); {
	case total <= oneShotShort:
		var buf [oneShotShort]byte
		return oneShot(h, buf[:], v)
	case total <= oneShotMax:
		var buf [oneShotMax]byte
		return oneShot(h, buf[:], v)
	default:
		return hashFull(h.key, v)
	}
}
