package keyhash

import (
	"crypto/sha256"
	"encoding/binary"
)

// Hasher is a prepared evaluation context for H(·;k) with the key fixed.
// The construct's prefix (len(k) ‖ k) is assembled once at construction,
// and each Hash call runs a single one-shot SHA-256 over a stack buffer
// instead of four streaming writes through the hash.Hash interface. The
// digests are bit-identical to Hash/HashString — the hot detection and
// embedding loops evaluate one keyed hash per tuple per certificate, so
// this is the per-tuple unit of work batch verification multiplies.
//
// A Hasher is immutable after construction and safe for concurrent use.
type Hasher struct {
	key    Key
	prefix []byte // len(k) ‖ k
}

// NewHasher validates the key and prepares a Hasher for it.
func (k Key) NewHasher() (*Hasher, error) {
	if err := k.Validate(); err != nil {
		return nil, err
	}
	prefix := make([]byte, 8+len(k))
	binary.BigEndian.PutUint64(prefix[:8], uint64(len(k)))
	copy(prefix[8:], k)
	return &Hasher{key: k, prefix: prefix}, nil
}

// oneShotMax bounds the stack-buffer fast path: prefix + value + key must
// fit. NewKey-derived keys are 32 bytes, so any value up to 56 bytes —
// beyond realistic key-attribute values — stays on the fast path; longer
// inputs fall back to the streaming construct. The buffer is deliberately
// small: the compiler zero-initialises it on every call.
const oneShotMax = 128

// Hash computes H(v;k), identically to Hash(k, v).
func (h *Hasher) Hash(v []byte) Digest {
	total := len(h.prefix) + len(v) + len(h.key)
	if total <= oneShotMax {
		var buf [oneShotMax]byte
		n := copy(buf[:], h.prefix)
		n += copy(buf[n:], v)
		n += copy(buf[n:], h.key)
		return Digest(sha256.Sum256(buf[:n]))
	}
	return Hash(h.key, v)
}

// HashString is Hash over the UTF-8 bytes of v.
func (h *Hasher) HashString(v string) Digest {
	total := len(h.prefix) + len(v) + len(h.key)
	if total <= oneShotMax {
		var buf [oneShotMax]byte
		n := copy(buf[:], h.prefix)
		n += copy(buf[n:], v)
		n += copy(buf[n:], h.key)
		return Digest(sha256.Sum256(buf[:n]))
	}
	return Hash(h.key, []byte(v))
}
