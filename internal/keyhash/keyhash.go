// Package keyhash implements the keyed one-way hash construct and the bit
// manipulation notation of Sion, "Proving Ownership over Categorical Data"
// (ICDE 2004), Section 2.
//
// The paper defines H(V;k) = crypto_hash(k ; V ; k) where ";" denotes
// concatenation, and relies on the one-wayness of the hash to defeat
// court-time exhaustive key-search claims (Section 2.2). The paper suggests
// MD5 or SHA; this implementation uses SHA-256, the modern standard-library
// equivalent, since the scheme requires only one-wayness and pseudorandomness
// of a keyed digest.
//
// A tuple T is "fit" for watermark encoding iff H(T(K);k1) mod e == 0
// (Section 3.2.1); Fit implements exactly that predicate.
package keyhash

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
)

// Key is a secret watermarking key. The paper prescribes a
// max(b(N), b(A))-bit key; any non-empty byte string is accepted here and
// mixed into the digest whole.
type Key []byte

// ErrEmptyKey is returned by validation helpers when a key has no bytes.
// An empty key would make the "secret criteria" of the fitness test public.
var ErrEmptyKey = errors.New("keyhash: empty key")

// NewKey derives a Key from an arbitrary passphrase. The passphrase is
// hashed so that short human-chosen strings still yield full-entropy-width
// key material for the concatenation construct.
func NewKey(passphrase string) Key {
	sum := sha256.Sum256([]byte("catwm-key-v1:" + passphrase))
	return Key(sum[:])
}

// Validate reports whether the key is usable.
func (k Key) Validate() error {
	if len(k) == 0 {
		return ErrEmptyKey
	}
	return nil
}

// String renders the key as hex, for logging. Secret material is the
// caller's responsibility; this is provided for diagnostics in examples.
func (k Key) String() string {
	return hex.EncodeToString(k)
}

// Digest is the output of the keyed hash H(V;k).
type Digest [sha256.Size]byte

// Hash computes H(V;k) = SHA-256(len(k) ‖ k ‖ V ‖ k). The key is bracketed
// around the value exactly as in the paper's construct; the length prefix
// removes any ambiguity between key and value bytes so distinct (k, V)
// pairs can never collide by boundary shifting.
func Hash(k Key, v []byte) Digest {
	h := sha256.New()
	var lenBuf [8]byte
	binary.BigEndian.PutUint64(lenBuf[:], uint64(len(k)))
	h.Write(lenBuf[:])
	h.Write(k)
	h.Write(v)
	h.Write(k)
	var d Digest
	h.Sum(d[:0])
	return d
}

// HashString is Hash over the UTF-8 bytes of v.
func HashString(k Key, v string) Digest {
	return Hash(k, []byte(v))
}

// Uint64 returns the most significant 8 bytes of the digest as a uint64.
// All pseudorandom decisions in the watermarking algorithms (fitness,
// value-index selection, bit-position selection) are derived from this view.
func (d Digest) Uint64() uint64 {
	return binary.BigEndian.Uint64(d[:8])
}

// Uint64At returns the i-th consecutive 8-byte word of the digest as a
// uint64, for callers that need several independent pseudorandom draws from
// a single hash invocation. i must be in [0, 4).
func (d Digest) Uint64At(i int) uint64 {
	if i < 0 || i >= sha256.Size/8 {
		panic(fmt.Sprintf("keyhash: word index %d out of range [0,4)", i))
	}
	return binary.BigEndian.Uint64(d[8*i : 8*i+8])
}

// Mod reduces the digest's 64-bit view modulo m. m must be positive.
func (d Digest) Mod(m uint64) uint64 {
	if m == 0 {
		panic("keyhash: modulus must be positive")
	}
	return d.Uint64() % m
}

// Fit reports whether a digest satisfies the paper's fitness criterion
// H(T(K);k1) mod e == 0. On average one in every e hashed keys is fit, so e
// controls the embedding-bandwidth / data-alteration trade-off
// (Section 4.4).
func Fit(d Digest, e uint64) bool {
	if e == 0 {
		panic("keyhash: fitness parameter e must be positive")
	}
	return d.Mod(e) == 0
}

// FitKey is a convenience composing HashString and Fit for a tuple's
// primary-key value.
func FitKey(k Key, keyValue string, e uint64) bool {
	return Fit(HashString(k, keyValue), e)
}
