// Package freq implements the frequency-domain watermark channel of
// Section 4.2 and the bijective-remapping recovery of Section 4.5.
//
// The extreme vertical-partition attack keeps a single categorical
// attribute A and nothing else. The remaining value of such data lies in
// the occurrence-frequency distribution [f_A(a_i)], so a watermark encoded
// *in that distribution* survives where the key-association channel cannot.
// The encoder delegates to the numeric-set scheme of package numeric
// (reference [10]); because the watermarked quantities are occurrence
// frequencies, minimising absolute change in frequency space minimises the
// number of categorical tuples rewritten — the observation the paper calls
// "surprising and fortunate".
package freq

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/ecc"
	"repro/internal/keyhash"
	"repro/internal/numeric"
	"repro/internal/quality"
	"repro/internal/relation"
)

// Params configures the frequency channel.
type Params struct {
	// Numeric configures the underlying numeric-set encoder. MinStep is
	// overridden internally to the larger of the count quantisation bound
	// and the NoiseKeep-derived sampling-noise bound.
	Numeric numeric.Params
	// NoiseKeep is the designed survival point: the smallest subset
	// fraction of the data under which detection should still succeed.
	// Smaller values buy more robustness with more tuple moves. 0 means
	// the default 0.5 (survive 50% data loss).
	NoiseKeep float64
	// Assessor, when non-nil, gates tuple moves through quality
	// constraints.
	Assessor *quality.Assessor
	// SkipRow, when non-nil, excludes rows from being moved (interference
	// ledger against the key-association channel, per the Section 4.2
	// "embedding markers" note).
	SkipRow func(row int) bool
	// OnAlter, when non-nil, is called for every moved row.
	OnAlter func(row int)
}

// DefaultParams returns the frequency-channel parameter set tuned for
// heavy-tailed (Zipf-like) histograms: the violator cut sits at the subset
// mean (Confidence 0) — for long-tailed frequency data a mean+0.5σ cut
// strands the cut far above the tail and makes "1" bits ruinously
// expensive to encode — with an asymmetric (0.08, 0.30) decision gap
// around the natural ≈0.15 above-mean fraction of Zipf subsets.
func DefaultParams(key keyhash.Key) Params {
	return Params{
		Numeric: numeric.Params{
			Key:        key,
			Confidence: 0,
			VTrue:      0.30,
			VFalse:     0.08,
		},
		NoiseKeep: 0.5,
	}
}

// EmbedStats reports what one frequency embedding did.
type EmbedStats struct {
	// TuplesMoved counts rows whose attribute value was reassigned.
	TuplesMoved int
	// Residual counts target-count units that could not be realised
	// (quality vetoes or ledger skips exhausted the movable rows).
	Residual int
	// Numeric carries the frequency-space encoder statistics.
	Numeric numeric.EncodeStats
}

// Embed watermarks the occurrence-frequency histogram of attr in place.
// It computes target frequencies with the numeric encoder, converts them
// to integer counts by largest-remainder apportionment, then moves the
// minimum number of tuples from surplus values to deficit values.
func Embed(r *relation.Relation, attr string, wm ecc.Bits, p Params) (EmbedStats, error) {
	var st EmbedStats
	col, ok := r.Schema().Index(attr)
	if !ok {
		return st, fmt.Errorf("freq: attribute %q not in schema", attr)
	}
	if len(wm) == 0 {
		return st, errors.New("freq: empty watermark")
	}
	if r.Len() == 0 {
		return st, errors.New("freq: empty relation")
	}
	hist, err := relation.HistogramOf(r, attr)
	if err != nil {
		return st, err
	}
	labels, freqs := hist.FreqVector()
	if len(labels) < len(wm) {
		return st, fmt.Errorf("freq: %d distinct values cannot carry %d bits", len(labels), len(wm))
	}

	items := make([]numeric.Item, len(labels))
	for i, l := range labels {
		items[i] = numeric.Item{Label: l, Value: freqs[i]}
	}
	np := p.Numeric
	// The nudge must survive two perturbations: count quantisation
	// (±1 tuple = 1/N of frequency) and the sampling noise a subset attack
	// induces. For a keep-fraction k of N tuples, a frequency f estimates
	// with σ ≈ sqrt(f·(1−k)/(k·N)); we size the minimum nudge at 3σ of the
	// mean frequency, the neighbourhood where nudged items live.
	keep := p.NoiseKeep
	if keep <= 0 || keep > 1 {
		keep = 0.5
	}
	n := float64(r.Len())
	fMean := 1.0 / float64(len(labels))
	noiseStep := 3 * math.Sqrt(fMean*(1-keep)/(keep*n))
	quantStep := 1.5 / n
	np.MinStep = math.Max(noiseStep, quantStep)
	marked, encSt, err := numeric.Encode(items, wm, np)
	if err != nil {
		return st, err
	}
	st.Numeric = encSt

	target := apportion(marked, r.Len())

	// Surplus/deficit per label.
	surplus := make(map[string]int) // current − target, positive = give away
	type deficitEntry struct {
		label string
		need  int
	}
	var deficits []deficitEntry
	for _, l := range labels {
		d := hist.Count(l) - target[l]
		if d > 0 {
			surplus[l] = d
		} else if d < 0 {
			deficits = append(deficits, deficitEntry{label: l, need: -d})
		}
	}
	// Largest deficit first, deterministic tie-break by label.
	sort.Slice(deficits, func(i, j int) bool {
		if deficits[i].need != deficits[j].need {
			return deficits[i].need > deficits[j].need
		}
		return deficits[i].label < deficits[j].label
	})

	di := 0
	advance := func() {
		for di < len(deficits) && deficits[di].need == 0 {
			di++
		}
	}
	advance()
	for row := 0; row < r.Len() && di < len(deficits); row++ {
		v := r.Tuple(row)[col]
		if surplus[v] <= 0 {
			continue
		}
		if p.SkipRow != nil && p.SkipRow(row) {
			continue
		}
		newVal := deficits[di].label
		if p.Assessor != nil {
			if aerr := p.Assessor.Apply(r, row, attr, newVal); aerr != nil {
				var verr *quality.ViolationError
				if errors.As(aerr, &verr) {
					continue
				}
				return st, aerr
			}
		} else if serr := r.SetValue(row, attr, newVal); serr != nil {
			return st, serr
		}
		surplus[v]--
		deficits[di].need--
		st.TuplesMoved++
		if p.OnAlter != nil {
			p.OnAlter(row)
		}
		advance()
	}
	for ; di < len(deficits); di++ {
		st.Residual += deficits[di].need
	}
	return st, nil
}

// apportion converts target frequencies to integer counts summing to n
// (largest-remainder method).
func apportion(items []numeric.Item, n int) map[string]int {
	total := 0.0
	for _, it := range items {
		if it.Value > 0 {
			total += it.Value
		}
	}
	counts := make(map[string]int, len(items))
	type frac struct {
		label string
		rem   float64
	}
	fracs := make([]frac, 0, len(items))
	assigned := 0
	for _, it := range items {
		v := it.Value
		if v < 0 {
			v = 0
		}
		exact := v / total * float64(n)
		c := int(exact)
		counts[it.Label] = c
		assigned += c
		fracs = append(fracs, frac{label: it.Label, rem: exact - float64(c)})
	}
	sort.Slice(fracs, func(i, j int) bool {
		if fracs[i].rem != fracs[j].rem {
			return fracs[i].rem > fracs[j].rem
		}
		return fracs[i].label < fracs[j].label
	})
	for i := 0; assigned < n && i < len(fracs); i++ {
		counts[fracs[i].label]++
		assigned++
	}
	return counts
}

// Detect recovers a wmLen-bit watermark from the occurrence-frequency
// histogram of attr. It needs nothing but the (possibly vertically
// partitioned, single-attribute) relation and the secret key — the channel
// the extreme A5 attack cannot remove without flattening the distribution
// and with it the data's remaining value.
func Detect(r *relation.Relation, attr string, wmLen int, p Params) (numeric.DecodeReport, error) {
	hist, err := relation.HistogramOf(r, attr)
	if err != nil {
		return numeric.DecodeReport{}, err
	}
	labels, freqs := hist.FreqVector()
	items := make([]numeric.Item, len(labels))
	for i, l := range labels {
		items[i] = numeric.Item{Label: l, Value: freqs[i]}
	}
	return numeric.Decode(items, wmLen, p.Numeric)
}
