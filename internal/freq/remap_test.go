package freq

import (
	"strconv"
	"testing"

	"repro/internal/datagen"
	"repro/internal/ecc"
	"repro/internal/keyhash"
	"repro/internal/mark"
	"repro/internal/relation"
	"repro/internal/stats"
)

// remapAttack applies a random bijection to attr, returning the forward
// mapping (original -> new label).
func remapAttack(t *testing.T, r *relation.Relation, attr string, dom *relation.Domain, seed string) map[string]string {
	t.Helper()
	src := stats.NewSource("remap-attack/" + seed)
	perm := src.Perm(dom.Size())
	forward := make(map[string]string, dom.Size())
	for i, p := range perm {
		forward[dom.Value(i)] = "REMAP_" + strconv.Itoa(p)
	}
	if _, err := ApplyMapping(r, attr, forward); err != nil {
		t.Fatal(err)
	}
	return forward
}

func TestRecoverMappingExact(t *testing.T) {
	r, dom, err := datagen.ItemScan(datagen.ItemScanConfig{
		N: 40000, CatalogSize: 60, ZipfS: 1.2, Seed: "remap",
	})
	if err != nil {
		t.Fatal(err)
	}
	reference, err := ProfileOf(r, "Item_Nbr")
	if err != nil {
		t.Fatal(err)
	}
	forward := remapAttack(t, r, "Item_Nbr", dom, "exact")
	truth := make(map[string]string, len(forward)) // new -> original
	for orig, nv := range forward {
		truth[nv] = orig
	}
	recovered, err := RecoverMapping(r, "Item_Nbr", reference)
	if err != nil {
		t.Fatal(err)
	}
	// Zipf with 60 well-separated ranks over 40k tuples: frequencies are
	// distinct, recovery should be (near) perfect.
	if acc := MappingAccuracy(recovered, truth); acc < 0.95 {
		t.Fatalf("recovery accuracy %v", acc)
	}
}

// The paper's full pipeline: watermark via the key-association channel,
// suffer an A6 remapping, recover the inverse from frequencies, detect.
func TestRemapRecoveryRestoresDetection(t *testing.T) {
	r, dom, err := datagen.ItemScan(datagen.ItemScanConfig{
		N: 40000, CatalogSize: 60, ZipfS: 1.2, Seed: "remap-detect",
	})
	if err != nil {
		t.Fatal(err)
	}
	opts := mark.Options{
		Attr:   "Item_Nbr",
		K1:     keyhash.NewKey("remap-k1"),
		K2:     keyhash.NewKey("remap-k2"),
		E:      40,
		Domain: dom,
	}
	wm := ecc.MustParseBits("1011001110")
	if _, err := mark.Embed(r, wm, opts); err != nil {
		t.Fatal(err)
	}
	reference, err := ProfileOf(r, "Item_Nbr")
	if err != nil {
		t.Fatal(err)
	}

	remapAttack(t, r, "Item_Nbr", dom, "detect")

	// Straight detection now sees only unknown values.
	repBroken, err := mark.Detect(r, len(wm), opts)
	if err != nil {
		t.Fatal(err)
	}
	if repBroken.UnknownValues == 0 {
		t.Fatal("remap attack left known values?")
	}

	// Recover and invert the mapping, then detect again.
	inverse, err := RecoverMapping(r, "Item_Nbr", reference)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ApplyMapping(r, "Item_Nbr", inverse); err != nil {
		t.Fatal(err)
	}
	rep, err := mark.Detect(r, len(wm), opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MatchFraction(wm) < 0.9 {
		t.Fatalf("post-recovery match %v", rep.MatchFraction(wm))
	}
}

func TestRecoverMappingUnderDataLoss(t *testing.T) {
	r, dom, err := datagen.ItemScan(datagen.ItemScanConfig{
		N: 40000, CatalogSize: 40, ZipfS: 1.3, Seed: "remap-loss",
	})
	if err != nil {
		t.Fatal(err)
	}
	reference, err := ProfileOf(r, "Item_Nbr")
	if err != nil {
		t.Fatal(err)
	}
	forward := remapAttack(t, r, "Item_Nbr", dom, "loss")
	truth := make(map[string]string, len(forward))
	for orig, nv := range forward {
		truth[nv] = orig
	}
	// Drop 40% of tuples after remapping.
	src := stats.NewSource("remap-loss-subset")
	sub, err := r.SelectRows(src.Sample(r.Len(), r.Len()*6/10))
	if err != nil {
		t.Fatal(err)
	}
	recovered, err := RecoverMapping(sub, "Item_Nbr", reference)
	if err != nil {
		t.Fatal(err)
	}
	// Sampling noise swaps near-tied ranks in the Zipf tail; label-count
	// accuracy degrades there, but the mass-weighted accuracy — which is
	// what detection quality tracks — must stay high, and overall label
	// accuracy must beat chance by a wide margin.
	if acc := MappingAccuracy(recovered, truth); acc < 0.4 {
		t.Fatalf("label recovery accuracy under loss %v", acc)
	}
	if macc := MappingMassAccuracy(recovered, truth, reference); macc < 0.85 {
		t.Fatalf("mass recovery accuracy under loss %v", macc)
	}
}

func TestRecoverMappingErrors(t *testing.T) {
	r, _, err := datagen.ItemScan(datagen.ItemScanConfig{
		N: 1000, CatalogSize: 20, ZipfS: 1, Seed: "err",
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RecoverMapping(r, "Item_Nbr", Profile{}); err == nil {
		t.Error("empty reference accepted")
	}
	if _, err := RecoverMapping(r, "ghost", Profile{"a": 1}); err == nil {
		t.Error("unknown attribute accepted")
	}
	// Suspect with more distinct values than the reference.
	small := Profile{"x": 0.5, "y": 0.5}
	if _, err := RecoverMapping(r, "Item_Nbr", small); err == nil {
		t.Error("non-bijective image accepted")
	}
}

func TestApplyMappingCountsAndSkips(t *testing.T) {
	s := relation.MustSchema([]relation.Attribute{
		{Name: "k", Type: relation.TypeInt},
		{Name: "a", Type: relation.TypeString, Categorical: true},
	}, "k")
	r := relation.New(s)
	for i, v := range []string{"x", "y", "z", "x"} {
		r.MustAppend(relation.Tuple{strconv.Itoa(i), v})
	}
	changed, err := ApplyMapping(r, "a", map[string]string{"x": "X", "y": "y"})
	if err != nil {
		t.Fatal(err)
	}
	if changed != 2 { // two x's; y->y is a no-op; z unmapped
		t.Fatalf("changed %d, want 2", changed)
	}
	if v, _ := r.Value(2, "a"); v != "z" {
		t.Fatal("unmapped value altered")
	}
	if _, err := ApplyMapping(r, "ghost", nil); err == nil {
		t.Error("unknown attribute accepted")
	}
}

func TestMappingAccuracy(t *testing.T) {
	truth := map[string]string{"a": "1", "b": "2"}
	if acc := MappingAccuracy(map[string]string{"a": "1", "b": "9"}, truth); acc != 0.5 {
		t.Fatalf("accuracy %v, want 0.5", acc)
	}
	if acc := MappingAccuracy(nil, truth); acc != 0 {
		t.Fatalf("empty accuracy %v", acc)
	}
}

func TestProfileOf(t *testing.T) {
	r, _, err := datagen.ItemScan(datagen.ItemScanConfig{
		N: 2000, CatalogSize: 10, ZipfS: 1, Seed: "profile",
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := ProfileOf(r, "Item_Nbr")
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, f := range p {
		sum += f
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("profile sums to %v", sum)
	}
	if _, err := ProfileOf(r, "ghost"); err == nil {
		t.Error("unknown attribute accepted")
	}
}
