package freq

import (
	"strconv"
	"testing"

	"repro/internal/datagen"
	"repro/internal/ecc"
	"repro/internal/keyhash"
	"repro/internal/numeric"
	"repro/internal/quality"
	"repro/internal/relation"
	"repro/internal/stats"
)

func freqParams() Params {
	return DefaultParams(keyhash.NewKey("freq-key"))
}

func freqData(t *testing.T, n int) *relation.Relation {
	t.Helper()
	r, _, err := datagen.ItemScan(datagen.ItemScanConfig{
		N: n, CatalogSize: 400, ZipfS: 1.0, Seed: "freq-test",
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestFreqEmbedDetectRoundTrip(t *testing.T) {
	r := freqData(t, 30000)
	p := freqParams()
	wm := ecc.MustParseBits("101101")
	st, err := Embed(r, "Item_Nbr", wm, p)
	if err != nil {
		t.Fatal(err)
	}
	if st.TuplesMoved == 0 {
		t.Fatal("no tuples moved")
	}
	if st.Residual != 0 {
		t.Fatalf("residual %d", st.Residual)
	}
	rep, err := Detect(r, "Item_Nbr", len(wm), p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.WM.String() != wm.String() {
		t.Fatalf("round trip: %s vs %s", wm, rep.WM)
	}
}

func TestFreqSurvivesExtremeVerticalPartition(t *testing.T) {
	// Attack A5, extreme: only the categorical attribute survives — no
	// primary key at all.
	r := freqData(t, 30000)
	p := freqParams()
	wm := ecc.MustParseBits("110010")
	if _, err := Embed(r, "Item_Nbr", wm, p); err != nil {
		t.Fatal(err)
	}
	part, _, err := r.Project("Item_Nbr")
	if err != nil {
		t.Fatal(err)
	}
	// The projection dedupes on its new key; re-detection must use the
	// *unprojected* multiset, so partition horizontally instead: keep the
	// single column by building a one-column relation with synthetic keys.
	single := relation.New(relation.MustSchema([]relation.Attribute{
		{Name: "rowid", Type: relation.TypeInt},
		{Name: "Item_Nbr", Type: relation.TypeInt, Categorical: true},
	}, "rowid"))
	for i := 0; i < r.Len(); i++ {
		v, _ := r.Value(i, "Item_Nbr")
		single.MustAppend(relation.Tuple{strconv.Itoa(i), v})
	}
	rep, err := Detect(single, "Item_Nbr", len(wm), p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.WM.String() != wm.String() {
		t.Fatalf("single-attribute detection: %s vs %s", wm, rep.WM)
	}
	_ = part // deduped projection is exercised elsewhere
}

func TestFreqSurvivesSubsetSelection(t *testing.T) {
	r := freqData(t, 40000)
	p := freqParams()
	wm := ecc.MustParseBits("10110")
	if _, err := Embed(r, "Item_Nbr", wm, p); err != nil {
		t.Fatal(err)
	}
	src := stats.NewSource("freq-subset")
	sub, err := r.SelectRows(src.Sample(r.Len(), r.Len()*7/10))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Detect(sub, "Item_Nbr", len(wm), p)
	if err != nil {
		t.Fatal(err)
	}
	if ecc.AlterationRate(wm, rep.WM) > 0.2 {
		t.Fatalf("30%% loss corrupted frequency mark: %s vs %s", wm, rep.WM)
	}
}

func TestFreqSurvivesResorting(t *testing.T) {
	r := freqData(t, 20000)
	p := freqParams()
	wm := ecc.MustParseBits("1011")
	if _, err := Embed(r, "Item_Nbr", wm, p); err != nil {
		t.Fatal(err)
	}
	r.Shuffle(stats.NewSource("freq-resort"))
	rep, err := Detect(r, "Item_Nbr", len(wm), p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.WM.String() != wm.String() {
		t.Fatal("re-sorting broke frequency detection (histogram is order-free!)")
	}
}

func TestFreqEmbedErrors(t *testing.T) {
	r := freqData(t, 1000)
	p := freqParams()
	if _, err := Embed(r, "ghost", ecc.MustParseBits("10"), p); err == nil {
		t.Error("unknown attribute accepted")
	}
	if _, err := Embed(r, "Item_Nbr", ecc.Bits{}, p); err == nil {
		t.Error("empty wm accepted")
	}
	empty := relation.New(r.Schema())
	if _, err := Embed(empty, "Item_Nbr", ecc.MustParseBits("10"), p); err == nil {
		t.Error("empty relation accepted")
	}
	if _, err := Detect(r, "ghost", 2, p); err == nil {
		t.Error("detect on unknown attribute accepted")
	}
}

func TestFreqEmbedTooManyBits(t *testing.T) {
	// More watermark bits than distinct values.
	s := relation.MustSchema([]relation.Attribute{
		{Name: "k", Type: relation.TypeInt},
		{Name: "a", Type: relation.TypeString, Categorical: true},
	}, "k")
	r := relation.New(s)
	for i := 0; i < 100; i++ {
		r.MustAppend(relation.Tuple{strconv.Itoa(i), "v" + strconv.Itoa(i%3)})
	}
	if _, err := Embed(r, "a", ecc.MustParseBits("1010"), freqParams()); err == nil {
		t.Error("4 bits over 3 values accepted")
	}
}

func TestFreqEmbedWithQualityConstraints(t *testing.T) {
	r := freqData(t, 20000)
	p := freqParams()
	assessor := quality.NewAssessor(quality.MaxAlterations(25))
	p.Assessor = assessor
	wm := ecc.MustParseBits("1011")
	st, err := Embed(r, "Item_Nbr", wm, p)
	if err != nil {
		t.Fatal(err)
	}
	if st.TuplesMoved > 25 {
		t.Fatalf("moved %d tuples despite a budget of 25", st.TuplesMoved)
	}
	// A tight budget leaves residual demand — it must be reported.
	if st.TuplesMoved == 25 && st.Residual == 0 {
		t.Log("note: target reached exactly at the budget")
	}
}

func TestFreqTotalCountConserved(t *testing.T) {
	r := freqData(t, 15000)
	n0 := r.Len()
	p := freqParams()
	if _, err := Embed(r, "Item_Nbr", ecc.MustParseBits("10110"), p); err != nil {
		t.Fatal(err)
	}
	if r.Len() != n0 {
		t.Fatal("embedding changed the tuple count")
	}
	hist, _ := relation.HistogramOf(r, "Item_Nbr")
	if hist.Total() != n0 {
		t.Fatal("histogram total drifted")
	}
}

func TestFreqMinimality(t *testing.T) {
	// The moved-tuple count should be a small fraction of N — the paper's
	// "minimizing absolute data change ... naturally minimizes the number
	// of items changed".
	r := freqData(t, 30000)
	p := freqParams()
	st, err := Embed(r, "Item_Nbr", ecc.MustParseBits("101101"), p)
	if err != nil {
		t.Fatal(err)
	}
	if frac := float64(st.TuplesMoved) / float64(r.Len()); frac > 0.10 {
		t.Fatalf("moved %.1f%% of tuples — not minimal", frac*100)
	}
}

func TestApportionConservesTotal(t *testing.T) {
	items := []numeric.Item{
		{Label: "a", Value: 0.305}, {Label: "b", Value: 0.295},
		{Label: "c", Value: 0.2}, {Label: "d", Value: 0.2},
	}
	counts := apportion(items, 1003)
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != 1003 {
		t.Fatalf("apportioned total %d, want 1003", total)
	}
}

func TestApportionNegativeClamped(t *testing.T) {
	items := []numeric.Item{
		{Label: "a", Value: -0.1}, {Label: "b", Value: 0.5}, {Label: "c", Value: 0.5},
	}
	counts := apportion(items, 100)
	if counts["a"] != 0 {
		t.Fatalf("negative-frequency label got %d", counts["a"])
	}
	if counts["b"]+counts["c"] != 100 {
		t.Fatal("total not conserved under clamping")
	}
}
