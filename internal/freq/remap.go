package freq

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/relation"
)

// This file implements the Section 4.5 defence against bijective attribute
// re-mapping (attack A6): Mallory maps the value set {a_1 … a_nA} through a
// secret bijection into {a'_1 … a'_nA} and sells the remapped data (with a
// black-box reverse mapper). Straight detection then fails — no suspect
// value resolves in the original domain. The distinguishing property that
// survives is the value occurrence frequency: we sample the frequencies of
// the suspect data, sort both frequency profiles, and associate values by
// rank, producing an (approximate) inverse mapping to apply before
// detection. Uniform distributions defeat this, as the paper concedes; for
// Zipf-like data the recovery is near-exact.

// Profile is an attribute's registered occurrence-frequency profile. The
// owner records it at watermarking time; it is small (one float per
// distinct value) and does not reveal the watermark keys.
type Profile map[string]float64

// ProfileOf captures the frequency profile of attr in r.
func ProfileOf(r *relation.Relation, attr string) (Profile, error) {
	hist, err := relation.HistogramOf(r, attr)
	if err != nil {
		return nil, err
	}
	p := make(Profile, hist.Distinct())
	for _, l := range hist.Labels() {
		p[l] = hist.Freq(l)
	}
	return p, nil
}

// RecoverMapping infers the inverse of a bijective remapping from the
// suspect relation's frequency profile: the i-th most frequent suspect
// value is matched to the i-th most frequent reference value. The result
// maps suspect labels to original labels. When the suspect data has lost
// values (e.g. after subsetting), only the observed labels are mapped.
// Fails if the suspect has more distinct values than the reference (not a
// bijective image).
func RecoverMapping(suspect *relation.Relation, attr string, reference Profile) (map[string]string, error) {
	if len(reference) == 0 {
		return nil, errors.New("freq: empty reference profile")
	}
	hist, err := relation.HistogramOf(suspect, attr)
	if err != nil {
		return nil, err
	}
	if hist.Distinct() > len(reference) {
		return nil, fmt.Errorf("freq: suspect has %d distinct values, reference only %d — not a bijective image",
			hist.Distinct(), len(reference))
	}

	type entry struct {
		label string
		freq  float64
	}
	suspectRank := make([]entry, 0, hist.Distinct())
	for _, l := range hist.Labels() {
		suspectRank = append(suspectRank, entry{l, hist.Freq(l)})
	}
	refRank := make([]entry, 0, len(reference))
	for l, f := range reference {
		refRank = append(refRank, entry{l, f})
	}
	byFreqDesc := func(s []entry) {
		sort.Slice(s, func(i, j int) bool {
			if s[i].freq != s[j].freq {
				return s[i].freq > s[j].freq
			}
			return s[i].label < s[j].label // deterministic among ties
		})
	}
	byFreqDesc(suspectRank)
	byFreqDesc(refRank)

	mapping := make(map[string]string, len(suspectRank))
	for i, se := range suspectRank {
		mapping[se.label] = refRank[i].label
	}
	return mapping, nil
}

// ApplyMapping rewrites attr through the given label mapping, returning
// the number of tuples rewritten. Values absent from the mapping are left
// in place (and will count as UnknownValues at detection).
func ApplyMapping(r *relation.Relation, attr string, mapping map[string]string) (int, error) {
	col, ok := r.Schema().Index(attr)
	if !ok {
		return 0, fmt.Errorf("freq: attribute %q not in schema", attr)
	}
	changed := 0
	for i := 0; i < r.Len(); i++ {
		old := r.Tuple(i)[col]
		if nv, ok := mapping[old]; ok && nv != old {
			if err := r.SetValue(i, attr, nv); err != nil {
				return changed, err
			}
			changed++
		}
	}
	return changed, nil
}

// MappingAccuracy compares a recovered mapping with the true inverse
// mapping, returning the fraction of suspect labels mapped correctly —
// used by the remap-recovery experiments.
func MappingAccuracy(recovered, truth map[string]string) float64 {
	if len(recovered) == 0 {
		return 0
	}
	ok := 0
	for k, v := range recovered {
		if truth[k] == v {
			ok++
		}
	}
	return float64(ok) / float64(len(recovered))
}

// MappingMassAccuracy weights each correctly recovered label by its
// reference frequency. Rank swaps concentrate in the near-tied tail of a
// Zipf profile, so mass accuracy — which predicts how many *tuples* map
// back correctly, and hence how well detection recovers — is the more
// meaningful figure under data loss.
func MappingMassAccuracy(recovered, truth map[string]string, reference Profile) float64 {
	totalMass, okMass := 0.0, 0.0
	for k, v := range recovered {
		m := reference[truth[k]]
		totalMass += m
		if truth[k] == v {
			okMass += m
		}
	}
	if totalMass == 0 {
		return 0
	}
	return okMass / totalMass
}
