package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// waitState polls until the job reaches a terminal state or the deadline
// passes.
func waitState(t *testing.T, m *Manager, id string) Snapshot {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		snap, err := m.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if snap.State.Terminal() {
			return snap
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return Snapshot{}
}

func TestSubmitRunsToDone(t *testing.T) {
	m := NewManager(Config{Workers: 2})
	defer m.Close()

	snap, err := m.Submit("test", func(ctx context.Context, _ *Progress) (any, error) {
		return 42, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if snap.ID == "" || snap.Kind != "test" {
		t.Fatalf("submit snapshot: %+v", snap)
	}
	final := waitState(t, m, snap.ID)
	if final.State != StateDone || final.Result != 42 || final.Err != nil {
		t.Fatalf("final: %+v", final)
	}
	if final.Started.IsZero() || final.Finished.IsZero() || final.Created.IsZero() {
		t.Fatalf("lifecycle timestamps missing: %+v", final)
	}
}

func TestFailedJobKeepsError(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer m.Close()

	boom := errors.New("boom")
	snap, err := m.Submit("test", func(ctx context.Context, _ *Progress) (any, error) {
		return nil, boom
	})
	if err != nil {
		t.Fatal(err)
	}
	final := waitState(t, m, snap.ID)
	if final.State != StateFailed || !errors.Is(final.Err, boom) {
		t.Fatalf("final: %+v", final)
	}
}

// TestCancelQueuedNeverRuns fills the single worker with a blocking job,
// queues a second, cancels it, and asserts it never executes.
func TestCancelQueuedNeverRuns(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer m.Close()

	release := make(chan struct{})
	blocker, err := m.Submit("blocker", func(ctx context.Context, _ *Progress) (any, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}

	ran := make(chan struct{}, 1)
	queued, err := m.Submit("queued", func(ctx context.Context, _ *Progress) (any, error) {
		ran <- struct{}{}
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}

	snap, err := m.Cancel(queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != StateCancelled {
		t.Fatalf("cancel of queued job: state %s, want cancelled", snap.State)
	}
	close(release)
	waitState(t, m, blocker.ID)

	select {
	case <-ran:
		t.Fatal("cancelled queued job still ran")
	case <-time.After(50 * time.Millisecond):
	}
	if _, err := m.Cancel(queued.ID); !errors.Is(err, ErrFinished) {
		t.Fatalf("second cancel: err %v, want ErrFinished", err)
	}
}

// TestCancelRunningStopsViaContext asserts Cancel propagates through the
// running job's context and the job lands in cancelled, not failed.
func TestCancelRunningStopsViaContext(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer m.Close()

	started := make(chan struct{})
	snap, err := m.Submit("running", func(ctx context.Context, _ *Progress) (any, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := m.Cancel(snap.ID); err != nil {
		t.Fatal(err)
	}
	final := waitState(t, m, snap.ID)
	if final.State != StateCancelled || !errors.Is(final.Err, context.Canceled) {
		t.Fatalf("final: %+v", final)
	}
}

func TestQueueFullBackpressure(t *testing.T) {
	m := NewManager(Config{Workers: 1, QueueDepth: 1})
	defer m.Close()

	release := make(chan struct{})
	defer close(release)
	block := func(ctx context.Context, _ *Progress) (any, error) {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil, nil
	}
	// One running + one queued fills a depth-1 queue (the worker may or
	// may not have picked the first up yet, so allow one extra).
	var ids []string
	var full bool
	for i := 0; i < 4; i++ {
		snap, err := m.Submit("block", block)
		if errors.Is(err, ErrQueueFull) {
			full = true
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, snap.ID)
	}
	if !full {
		t.Fatalf("queue never filled after %d submissions", len(ids))
	}
	// A rejected submission must not leave a ghost job behind.
	for _, s := range m.List() {
		if s.State == StateQueued || s.State == StateRunning {
			continue
		}
		t.Fatalf("unexpected state after backpressure: %+v", s)
	}
}

func TestListNewestFirst(t *testing.T) {
	m := NewManager(Config{Workers: 2})
	defer m.Close()

	var ids []string
	for i := 0; i < 5; i++ {
		snap, err := m.Submit(fmt.Sprintf("k%d", i), func(ctx context.Context, _ *Progress) (any, error) {
			return nil, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, snap.ID)
	}
	for _, id := range ids {
		waitState(t, m, id)
	}
	list := m.List()
	if len(list) != 5 {
		t.Fatalf("listed %d, want 5", len(list))
	}
	for i := 1; i < len(list); i++ {
		if list[i-1].Seq <= list[i].Seq {
			t.Fatalf("list not newest-first: %+v", list)
		}
	}
	if list[0].ID != ids[4] {
		t.Fatalf("newest job is %s, want %s", list[0].ID, ids[4])
	}
}

func TestRetentionEvictsOldestFinished(t *testing.T) {
	m := NewManager(Config{Workers: 1, Retain: 3})
	defer m.Close()

	var ids []string
	for i := 0; i < 6; i++ {
		snap, err := m.Submit("r", func(ctx context.Context, _ *Progress) (any, error) { return nil, nil })
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, snap.ID)
		waitState(t, m, snap.ID)
	}
	if got := len(m.List()); got > 4 { // cap 3 + at most one in-flight registration
		t.Fatalf("retained %d jobs, cap 3", got)
	}
	if _, err := m.Get(ids[0]); !errors.Is(err, ErrNotFound) {
		t.Fatalf("oldest job survived eviction: %v", err)
	}
	if _, err := m.Get(ids[len(ids)-1]); err != nil {
		t.Fatalf("newest job evicted: %v", err)
	}
}

// TestCloseCancelsRunning asserts manager shutdown cancels running jobs
// through their contexts and refuses later submissions.
func TestCloseCancelsRunning(t *testing.T) {
	m := NewManager(Config{Workers: 1})

	started := make(chan struct{})
	observed := make(chan error, 1)
	snap, err := m.Submit("shutdown", func(ctx context.Context, _ *Progress) (any, error) {
		close(started)
		<-ctx.Done()
		observed <- ctx.Err()
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	m.Close()
	if err := <-observed; !errors.Is(err, context.Canceled) {
		t.Fatalf("running job saw %v, want context.Canceled", err)
	}
	final, err := m.Get(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateCancelled {
		t.Fatalf("after Close: %+v", final)
	}
	if _, err := m.Submit("late", func(ctx context.Context, _ *Progress) (any, error) { return nil, nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after Close: %v, want ErrClosed", err)
	}
}

// TestConcurrentSubmitGetCancel hammers the manager from many goroutines;
// run under -race in CI.
func TestConcurrentSubmitGetCancel(t *testing.T) {
	m := NewManager(Config{Workers: 4, QueueDepth: 256})
	defer m.Close()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				snap, err := m.Submit("stress", func(ctx context.Context, _ *Progress) (any, error) {
					select {
					case <-time.After(time.Duration(i%3) * time.Millisecond):
					case <-ctx.Done():
					}
					return i, ctx.Err()
				})
				if errors.Is(err, ErrQueueFull) {
					continue
				}
				if err != nil {
					t.Error(err)
					return
				}
				if g%2 == 0 {
					m.Cancel(snap.ID) //nolint:errcheck // racing terminal states is the point
				}
				if _, err := m.Get(snap.ID); err != nil && !errors.Is(err, ErrNotFound) {
					t.Error(err)
					return
				}
				m.List()
				m.Stats()
			}
		}(g)
	}
	wg.Wait()
	for _, s := range m.List() {
		_ = s
	}
}

// TestProgressVisibleWhileRunning proves a running job's progress is
// observable through Get before the job finishes, and final afterwards.
func TestProgressVisibleWhileRunning(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer m.Close()

	reported := make(chan struct{})
	release := make(chan struct{})
	snap, err := m.Submit("progress", func(ctx context.Context, p *Progress) (any, error) {
		p.Add(512)
		p.Add(512)
		close(reported)
		select {
		case <-release:
		case <-ctx.Done():
		}
		p.Add(256)
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-reported
	mid, err := m.Get(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if mid.Progress != 1024 {
		t.Fatalf("mid-run progress = %d, want 1024", mid.Progress)
	}
	close(release)
	final := waitState(t, m, snap.ID)
	if final.Progress != 1280 {
		t.Fatalf("final progress = %d, want 1280", final.Progress)
	}
}

// TestWaitChangeBlocksUntilTransition long-polls a running job: the wait
// parks through the run and returns the moment the job finishes, well
// before its generous timeout.
func TestWaitChangeBlocksUntilTransition(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer m.Close()
	release := make(chan struct{})
	started := make(chan struct{})
	snap, err := m.Submit("test", func(ctx context.Context, _ *Progress) (any, error) {
		close(started)
		<-release
		return "result", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started

	got := make(chan Snapshot, 1)
	go func() {
		s, err := m.WaitChange(context.Background(), snap.ID, 30*time.Second)
		if err != nil {
			t.Error(err)
		}
		got <- s
	}()
	// The waiter must be parked, not returning early on the running state.
	select {
	case s := <-got:
		t.Fatalf("WaitChange returned %v while the job still ran", s.State)
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	select {
	case s := <-got:
		if s.State != StateDone {
			t.Fatalf("state = %v, want done", s.State)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitChange never woke on the transition")
	}
}

// TestWaitChangeQueuedToRunning wakes on the queued→running transition,
// not only on terminality.
func TestWaitChangeQueuedToRunning(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer m.Close()
	blockerRelease := make(chan struct{})
	if _, err := m.Submit("blocker", func(ctx context.Context, _ *Progress) (any, error) {
		<-blockerRelease
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	queued, err := m.Submit("queued", func(ctx context.Context, _ *Progress) (any, error) {
		<-ctx.Done() // runs until cancelled by Close
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}

	got := make(chan Snapshot, 1)
	go func() {
		s, _ := m.WaitChange(context.Background(), queued.ID, 30*time.Second)
		got <- s
	}()
	time.Sleep(20 * time.Millisecond) // let the waiter park on "queued"
	close(blockerRelease)             // the queued job may now start
	select {
	case s := <-got:
		if s.State != StateRunning {
			t.Fatalf("state = %v, want running", s.State)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitChange never woke on queued->running")
	}
}

// TestWaitChangeTimeoutAndErrors covers the timeout path (state
// unchanged, current snapshot returned) and the unknown-ID error.
func TestWaitChangeTimeoutAndErrors(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer m.Close()
	release := make(chan struct{})
	started := make(chan struct{})
	snap, err := m.Submit("test", func(ctx context.Context, _ *Progress) (any, error) {
		close(started)
		<-release
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started // park on "running", after the queued->running transition
	start := time.Now()
	s, err := m.WaitChange(context.Background(), snap.ID, 30*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if s.State != StateRunning {
		t.Fatalf("state = %v, want running after timeout", s.State)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Fatalf("returned after %v, before the timeout", elapsed)
	}

	if _, err := m.WaitChange(context.Background(), "job-nope", time.Millisecond); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}

	// A terminal job returns immediately, ignoring the timeout.
	close(release) // free the single worker
	done, err := m.Submit("quick", func(ctx context.Context, _ *Progress) (any, error) { return nil, nil })
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, m, done.ID)
	start = time.Now()
	s, err = m.WaitChange(context.Background(), done.ID, 10*time.Second)
	if err != nil || !s.State.Terminal() {
		t.Fatalf("terminal WaitChange = %v, %v", s.State, err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("terminal WaitChange blocked")
	}
}

// TestDrainWakesParkedWaiters pins the graceful-shutdown contract: Drain
// makes a parked WaitChange return its current snapshot immediately, and
// later WaitChange calls never park at all.
func TestDrainWakesParkedWaiters(t *testing.T) {
	m := NewManager(Config{Workers: 1})
	defer m.Close()
	release := make(chan struct{})
	defer close(release)
	started := make(chan struct{})
	snap, err := m.Submit("test", func(ctx context.Context, _ *Progress) (any, error) {
		close(started)
		<-release
		return nil, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started

	got := make(chan Snapshot, 1)
	go func() {
		s, _ := m.WaitChange(context.Background(), snap.ID, time.Minute)
		got <- s
	}()
	time.Sleep(20 * time.Millisecond) // let the waiter park
	m.Drain()
	select {
	case s := <-got:
		if s.State != StateRunning {
			t.Fatalf("drained snapshot state = %v, want running", s.State)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Drain did not wake the parked waiter")
	}

	start := time.Now()
	if _, err := m.WaitChange(context.Background(), snap.ID, time.Minute); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("post-Drain WaitChange parked")
	}
}
