// Package jobs is the async execution subsystem behind POST /v2/jobs: a
// bounded worker pool that runs long corpus audits and embeddings outside
// the HTTP request that submitted them. A court-grade batch verification
// over millions of suspect tuples cannot live inside one blocking
// request/response exchange; here it becomes a job resource the client
// submits, polls, and may cancel.
//
// Lifecycle (api.JobState mirrors these):
//
//	queued ──▶ running ──▶ done
//	   │          │    ╰──▶ failed
//	   ╰──────────┴───────▶ cancelled
//
// Every job runs under its own context.Context derived from the
// manager's base context. Cancel cancels that context; because the whole
// execution stack (core, pipeline, streaming readers) is
// context-threaded, a cancelled job stops scanning mid-pass instead of
// completing invisibly. Closing the manager cancels the base context, so
// server shutdown stops every running job the same way.
package jobs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/trace"
)

// State is a job's lifecycle state. The spellings match api.JobState —
// they cross the wire verbatim.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether s is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Func is the work a job performs. It must honor ctx: returning promptly
// once ctx is cancelled is what makes Cancel and shutdown effective. The
// returned value is the job's result on success. p is the job's live
// progress counter; work that can meter itself (a block-at-a-time scan
// reporting tuples per block) calls p.Add so pollers of GET /v2/jobs/{id}
// see the job advance.
type Func func(ctx context.Context, p *Progress) (any, error)

// Progress is a job's monotone work counter — for scan jobs, suspect
// tuples processed so far. It is updated from scan workers and read by
// concurrent snapshot requests, so it is atomic; the zero value is
// ready to use.
type Progress struct {
	tuples atomic.Int64
	// sink, when set, receives every Add as well — the manager points it
	// at the aggregate wm_jobs_tuples_scanned_total counter so the scan
	// rate across all jobs is one series.
	sink *obs.Counter
}

// Add records n more units of completed work. Safe for concurrent use —
// pipeline workers call it once per scanned block.
func (p *Progress) Add(n int) {
	p.tuples.Add(int64(n))
	if p.sink != nil && n > 0 {
		p.sink.Add(uint64(n))
	}
}

// Tuples reports the work counted so far.
func (p *Progress) Tuples() int64 {
	return p.tuples.Load()
}

// Snapshot is a point-in-time copy of a job's state, safe to hold after
// the job has moved on.
type Snapshot struct {
	ID   string
	Kind string
	// Seq is the submission sequence number; List orders by it.
	Seq   uint64
	State State
	// Created/Started/Finished timestamp the lifecycle; Started and
	// Finished are zero until reached.
	Created  time.Time
	Started  time.Time
	Finished time.Time
	// Err is why the job failed, or context.Canceled for a cancelled job.
	Err error
	// Result is the Func's return value once State is done.
	Result any
	// Progress is the work counted so far (tuples processed, for scan
	// jobs) — live while the job runs, final afterwards.
	Progress int64
	// TraceID is the hex trace ID of the submitting request, when the
	// job was submitted with WithSpanContext — the key GET
	// /v2/jobs/{id}/trace resolves the span tree by. Empty otherwise.
	TraceID string
}

// Errors returned by the manager surface.
var (
	// ErrNotFound reports a job ID the manager does not hold.
	ErrNotFound = errors.New("jobs: job not found")
	// ErrQueueFull reports a Submit against a full queue — the backpressure
	// signal; callers translate it to HTTP 429.
	ErrQueueFull = errors.New("jobs: queue full")
	// ErrFinished reports a Cancel against a job already in a terminal
	// state.
	ErrFinished = errors.New("jobs: job already finished")
	// ErrClosed reports a Submit against a closed manager.
	ErrClosed = errors.New("jobs: manager closed")
)

// Config sizes a Manager.
type Config struct {
	// Workers is the number of jobs that may run concurrently; <= 0 means
	// DefaultWorkers. Each job's internal scan parallelism is its own
	// affair (pipeline workers) — this bounds how many jobs hold that
	// much CPU at once.
	Workers int
	// QueueDepth bounds the number of queued-but-not-running jobs; <= 0
	// means DefaultQueueDepth. Submissions beyond it fail with
	// ErrQueueFull rather than buffering without bound.
	QueueDepth int
	// Retain bounds how many finished jobs stay inspectable; <= 0 means
	// DefaultRetain. The oldest finished jobs are evicted first; queued
	// and running jobs are never evicted.
	Retain int
	// Obs, when non-nil, registers the wm_jobs_* metric families there:
	// occupancy gauges sampled from Stats, queue-wait and run-time
	// histograms, terminal-outcome counters, and the aggregate
	// tuples-scanned counter fed by every job's Progress.
	Obs *obs.Registry
	// Trace, when non-nil, links jobs into the submitting request's
	// trace: a job.queue span covers created→started, and the Func runs
	// under a job.run span whose context re-attaches the request's span
	// context to the manager's detached base context.
	Trace *trace.Recorder
}

// Defaults for Config's zero values.
const (
	DefaultWorkers    = 2
	DefaultQueueDepth = 64
	DefaultRetain     = 256
)

// job is the manager-internal mutable record behind a Snapshot.
type job struct {
	id       string
	kind     string
	seq      uint64
	fn       Func
	state    State
	created  time.Time
	started  time.Time
	finished time.Time
	err      error
	result   any
	progress Progress           // updated lock-free by the running Func
	cancel   context.CancelFunc // cancels this job's context

	// sc is the submitting request's span context (zero when untraced);
	// queueSpan covers created→started and is ended on whichever path
	// takes the job out of the queue (run, cancel, sweep, queue-full).
	sc        trace.SpanContext
	queueSpan *trace.Span
}

// endQueueSpan closes the queue-wait span once, on whichever path
// removes the job from the queue.
func (j *job) endQueueSpan() {
	j.queueSpan.End()
	j.queueSpan = nil
}

// SubmitOption customizes one submission.
type SubmitOption func(*job)

// WithSpanContext links the job into the submitting request's trace:
// the queue-wait and run spans become children of sc, and the Func's
// context carries it onward into the scan stack.
func WithSpanContext(sc trace.SpanContext) SubmitOption {
	return func(j *job) { j.sc = sc }
}

// Manager owns the worker pool and the job table.
type Manager struct {
	cfg     Config
	baseCtx context.Context
	stop    context.CancelFunc
	queue   chan *job
	wg      sync.WaitGroup

	mu     sync.Mutex
	jobs   map[string]*job
	seq    uint64
	closed bool
	// changed is closed and replaced on every job state transition — the
	// broadcast WaitChange long-pollers park on. Coarse (any job's
	// transition wakes every waiter) but transitions are rare next to
	// scan work, and each woken waiter just re-reads one snapshot.
	changed chan struct{}
	// draining, once closed (Drain), makes every WaitChange — parked or
	// future — return its current snapshot immediately: the graceful-
	// shutdown hook, so parked long-polls never stall an http.Server
	// drain.
	draining  chan struct{}
	drainOnce sync.Once

	// met is the telemetry bundle; nil when Config.Obs was unset.
	met *metrics
}

// NewManager starts cfg.Workers worker goroutines and returns the
// manager. Close it to stop them and cancel running jobs.
func NewManager(cfg Config) *Manager {
	if cfg.Workers <= 0 {
		cfg.Workers = DefaultWorkers
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.Retain <= 0 {
		cfg.Retain = DefaultRetain
	}
	//wmlint:ignore ctxloop jobs outlive the submitting request by design; Manager.Close cancels this root
	ctx, stop := context.WithCancel(context.Background())
	m := &Manager{
		cfg:      cfg,
		baseCtx:  ctx,
		stop:     stop,
		queue:    make(chan *job, cfg.QueueDepth),
		jobs:     make(map[string]*job),
		changed:  make(chan struct{}),
		draining: make(chan struct{}),
	}
	if cfg.Obs != nil {
		m.met = newMetrics(cfg.Obs, m)
	}
	for w := 0; w < cfg.Workers; w++ {
		m.wg.Add(1)
		go m.worker()
	}
	return m
}

// newID returns a fresh random job ID (job- prefix distinguishes job IDs
// from record IDs in logs and URLs).
func newID() (string, error) {
	var b [12]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "", fmt.Errorf("jobs: generating id: %w", err)
	}
	return "job-" + hex.EncodeToString(b[:]), nil
}

// Submit enqueues fn as a new job of the given kind and returns its
// queued snapshot. It never blocks: a full queue fails fast with
// ErrQueueFull.
func (m *Manager) Submit(kind string, fn Func, opts ...SubmitOption) (Snapshot, error) {
	id, err := newID()
	if err != nil {
		return Snapshot{}, err
	}
	j := &job{
		id:      id,
		kind:    kind,
		fn:      fn,
		state:   StateQueued,
		created: time.Now(),
	}
	for _, opt := range opts {
		opt(j)
	}
	if m.met != nil {
		j.progress.sink = m.met.tuples
	}
	if m.cfg.Trace != nil && j.sc.Valid() {
		qctx := m.cfg.Trace.Attach(m.baseCtx, j.sc)
		//wmlint:ignore spanend queue span outlives Submit by design; every dequeue path calls endQueueSpan
		_, j.queueSpan = trace.Start(qctx, "job.queue")
		j.queueSpan.SetAttr("job_id", id)
		j.queueSpan.SetAttr("kind", kind)
	}

	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return Snapshot{}, ErrClosed
	}
	m.seq++
	j.seq = m.seq
	// Register before enqueueing so a Get can never miss a job a worker
	// already picked up; unregister on queue-full below.
	m.jobs[id] = j
	m.evictLocked()
	m.mu.Unlock()

	select {
	case m.queue <- j:
		return m.snapshotOf(j), nil
	default:
		m.mu.Lock()
		delete(m.jobs, id)
		j.queueSpan.SetError(ErrQueueFull)
		j.endQueueSpan()
		m.mu.Unlock()
		return Snapshot{}, ErrQueueFull
	}
}

// worker pulls queued jobs and runs them to a terminal state.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		select {
		case <-m.baseCtx.Done():
			return
		case j, ok := <-m.queue:
			if !ok {
				return
			}
			m.run(j)
		}
	}
}

// run executes one job under its own cancellable context.
func (m *Manager) run(j *job) {
	ctx, cancel := context.WithCancel(m.baseCtx)
	defer cancel()

	m.mu.Lock()
	if j.state != StateQueued { // cancelled while queued
		m.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = time.Now()
	j.cancel = cancel
	fn := j.fn
	if m.met != nil {
		m.met.queueWait.Observe(j.started.Sub(j.created).Seconds())
	}
	j.endQueueSpan()
	m.notifyLocked()
	m.mu.Unlock()

	// The job context is detached from the submitting request by design
	// (the request returns 202 and moves on), so the trace link is
	// re-attached explicitly: the run span — and everything the Func
	// starts under it — joins the submitter's tree.
	runCtx := m.cfg.Trace.Attach(ctx, j.sc)
	runCtx, span := trace.Start(runCtx, "job.run")
	span.SetAttr("job_id", j.id)
	span.SetAttr("kind", j.kind)

	result, err := fn(runCtx, &j.progress)

	span.SetError(err)
	span.End()

	m.mu.Lock()
	defer m.mu.Unlock()
	defer m.notifyLocked()
	j.finished = time.Now()
	j.cancel = nil
	j.fn = nil // the closure captures the request payload; free it with the job
	switch {
	case err != nil && (errors.Is(err, context.Canceled) || ctx.Err() != nil):
		// Either the job observed its cancelled context, or it failed for
		// another reason after cancellation was requested — both are a
		// cancellation from the caller's point of view.
		j.state = StateCancelled
		j.err = context.Canceled
	case err != nil:
		j.state = StateFailed
		j.err = err
	default:
		j.state = StateDone
		j.result = result
	}
	m.met.outcome(j.kind, j.state)
	if m.met != nil {
		m.met.runTime.With(j.kind).Observe(j.finished.Sub(j.started).Seconds())
	}
}

// notifyLocked broadcasts a state transition to every parked WaitChange.
// Callers hold m.mu.
func (m *Manager) notifyLocked() {
	close(m.changed)
	m.changed = make(chan struct{})
}

// WaitChange blocks until the job's state differs from what it was when
// the call arrived (queued→running counts, not just terminality), the
// job is already terminal, the timeout elapses, or ctx is cancelled —
// and returns the job's snapshot at that moment. This is the server side
// of long-polling GET /v2/jobs/{id}?wait=…: one parked request instead
// of a client polling loop. Progress updates alone do not wake it; they
// are sampled from whatever snapshot the state change (or timeout)
// returns.
func (m *Manager) WaitChange(ctx context.Context, id string, timeout time.Duration) (Snapshot, error) {
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	var from State
	first := true
	for {
		m.mu.Lock()
		j, ok := m.jobs[id]
		if !ok {
			m.mu.Unlock()
			return Snapshot{}, ErrNotFound
		}
		snap := snapshotLocked(j)
		ch := m.changed
		m.mu.Unlock()
		if first {
			from = snap.State
			first = false
		}
		if snap.State.Terminal() || snap.State != from {
			return snap, nil
		}
		select {
		case <-ctx.Done():
			return snap, nil // the poller is gone or gave up; current state is the answer
		case <-m.draining:
			return snap, nil // server shutting down; answer now so the drain completes
		case <-timer.C:
			return snap, nil
		case <-ch:
		}
	}
}

// Drain makes every WaitChange — currently parked or yet to arrive —
// return its snapshot immediately instead of parking. It cancels nothing
// and is idempotent: call it when graceful shutdown begins
// (http.Server.RegisterOnShutdown), so parked long-polls answer at once
// and the drain is bounded by scan work, not poll timeouts.
func (m *Manager) Drain() {
	m.drainOnce.Do(func() { close(m.draining) })
}

// Get returns a snapshot of the job with the given ID.
func (m *Manager) Get(id string) (Snapshot, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Snapshot{}, ErrNotFound
	}
	return snapshotLocked(j), nil
}

// Cancel requests cancellation of a job. A queued job flips to cancelled
// immediately and never runs; a running job has its context cancelled and
// reaches the cancelled state when its Func returns. The returned
// snapshot reflects the state after the request (a running job may still
// report running — poll until terminal). Cancelling a finished job
// reports ErrFinished.
func (m *Manager) Cancel(id string) (Snapshot, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Snapshot{}, ErrNotFound
	}
	switch j.state {
	case StateQueued:
		j.state = StateCancelled
		j.err = context.Canceled
		j.finished = time.Now()
		j.fn = nil
		j.queueSpan.SetError(context.Canceled)
		j.endQueueSpan()
		m.met.outcome(j.kind, j.state)
		m.notifyLocked()
	case StateRunning:
		if j.cancel != nil {
			j.cancel()
		}
	default:
		return snapshotLocked(j), ErrFinished
	}
	return snapshotLocked(j), nil
}

// List returns snapshots of every retained job, newest submission first.
func (m *Manager) List() []Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Snapshot, 0, len(m.jobs))
	for _, j := range m.jobs {
		out = append(out, snapshotLocked(j))
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Seq > out[b].Seq })
	return out
}

// Close stops accepting submissions, cancels the base context (and with
// it every running job), and waits for the workers to exit. Jobs still
// queued are marked cancelled.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		m.wg.Wait()
		return
	}
	m.closed = true
	m.mu.Unlock()

	m.stop()
	m.wg.Wait()

	// Workers are gone; sweep whatever never reached a terminal state.
	// The queue channel itself is left for the GC — closing it would race
	// a Submit that passed the closed check before we flipped it (the
	// sweep still catches that job, because Submit registers in the table
	// before enqueueing).
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, j := range m.jobs {
		if j.state == StateQueued || j.state == StateRunning {
			j.state = StateCancelled
			j.err = context.Canceled
			j.finished = time.Now()
			j.fn = nil
			j.queueSpan.SetError(context.Canceled)
			j.endQueueSpan()
			m.met.outcome(j.kind, j.state)
		}
	}
	m.notifyLocked()
}

// Stats is a point-in-time occupancy view for health endpoints.
type Stats struct {
	Workers   int `json:"workers"`
	Queued    int `json:"queued"`
	Running   int `json:"running"`
	Retained  int `json:"retained"`
	QueueCap  int `json:"queue_capacity"`
	RetainCap int `json:"retain_capacity"`
}

// Stats reports current occupancy.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := Stats{
		Workers:   m.cfg.Workers,
		Retained:  len(m.jobs),
		QueueCap:  m.cfg.QueueDepth,
		RetainCap: m.cfg.Retain,
	}
	for _, j := range m.jobs {
		switch j.state {
		case StateQueued:
			st.Queued++
		case StateRunning:
			st.Running++
		}
	}
	return st
}

// evictLocked drops the oldest finished jobs beyond the retention cap.
// Callers hold m.mu.
func (m *Manager) evictLocked() {
	excess := len(m.jobs) - m.cfg.Retain
	if excess <= 0 {
		return
	}
	finished := make([]*job, 0, len(m.jobs))
	for _, j := range m.jobs {
		if j.state.Terminal() {
			finished = append(finished, j)
		}
	}
	sort.Slice(finished, func(a, b int) bool { return finished[a].seq < finished[b].seq })
	for _, j := range finished {
		if excess <= 0 {
			break
		}
		delete(m.jobs, j.id)
		excess--
	}
}

// snapshotOf snapshots a job, taking the lock.
func (m *Manager) snapshotOf(j *job) Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	return snapshotLocked(j)
}

// snapshotLocked copies a job's state; callers hold m.mu. The progress
// counter is read atomically — a running Func updates it without the
// manager lock.
func snapshotLocked(j *job) Snapshot {
	snap := Snapshot{
		ID:       j.id,
		Kind:     j.kind,
		Seq:      j.seq,
		State:    j.state,
		Created:  j.created,
		Started:  j.started,
		Finished: j.finished,
		Err:      j.err,
		Result:   j.result,
		Progress: j.progress.Tuples(),
	}
	if j.sc.Valid() {
		snap.TraceID = j.sc.TraceID.String()
	}
	return snap
}
