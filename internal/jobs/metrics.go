package jobs

import "repro/internal/obs"

// metrics is the manager's telemetry bundle, nil when Config.Obs is
// unset (library users and most unit tests). Occupancy gauges are
// sampled from Stats() at scrape time so /metrics and /healthz read the
// same numbers; transitions and durations are recorded at the moment
// they happen.
type metrics struct {
	queueWait *obs.Histogram    // created → started
	runTime   *obs.HistogramVec // started → finished, by kind
	outcomes  *obs.CounterVec   // kind, terminal state
	tuples    *obs.Counter      // aggregate Progress across all jobs
}

func newMetrics(r *obs.Registry, m *Manager) *metrics {
	met := &metrics{
		queueWait: r.Histogram("wm_jobs_queue_wait_seconds",
			"Time jobs spent queued before a worker picked them up.", obs.WideBuckets),
		runTime: r.HistogramVec("wm_jobs_run_seconds",
			"Job execution time from start to terminal state, by job kind.", obs.WideBuckets, "kind"),
		outcomes: r.CounterVec("wm_jobs_total",
			"Jobs reaching a terminal state, by kind and state.", "kind", "state"),
		tuples: r.Counter("wm_jobs_tuples_scanned_total",
			"Suspect tuples processed across all jobs' progress counters."),
	}
	sample := func(pick func(Stats) int) func(emit obs.Emit) {
		return func(emit obs.Emit) { emit(float64(pick(m.Stats()))) }
	}
	r.Sampled("wm_jobs_workers", "Job worker pool size.", obs.TypeGauge,
		sample(func(s Stats) int { return s.Workers }))
	r.Sampled("wm_jobs_queued", "Jobs queued but not yet running.", obs.TypeGauge,
		sample(func(s Stats) int { return s.Queued }))
	r.Sampled("wm_jobs_running", "Jobs currently running.", obs.TypeGauge,
		sample(func(s Stats) int { return s.Running }))
	r.Sampled("wm_jobs_retained", "Jobs held in the retention table.", obs.TypeGauge,
		sample(func(s Stats) int { return s.Retained }))
	r.Sampled("wm_jobs_queue_capacity", "Job queue capacity.", obs.TypeGauge,
		sample(func(s Stats) int { return s.QueueCap }))
	r.Sampled("wm_jobs_retain_capacity", "Job retention capacity.", obs.TypeGauge,
		sample(func(s Stats) int { return s.RetainCap }))
	return met
}

// outcome counts a terminal transition; nil-safe so call sites stay
// unconditional.
func (met *metrics) outcome(kind string, state State) {
	if met != nil {
		met.outcomes.With(kind, string(state)).Inc()
	}
}
