package multimark

import (
	"strconv"
	"testing"

	"repro/internal/ecc"
	"repro/internal/relation"
	"repro/internal/stats"
)

// threeCatRelation builds a schema with three categorical attributes of
// different cardinalities, to exercise the full pair closure.
func threeCatRelation(t *testing.T, n int) (*relation.Relation, Config) {
	t.Helper()
	s := relation.MustSchema([]relation.Attribute{
		{Name: "id", Type: relation.TypeInt},
		{Name: "store", Type: relation.TypeString, Categorical: true},   // 600 values
		{Name: "product", Type: relation.TypeString, Categorical: true}, // 300 values
		{Name: "channel", Type: relation.TypeString, Categorical: true}, // 4 values
	}, "id")
	src := stats.NewSource("closure-3cat")
	stores := make([]string, 600)
	for i := range stores {
		stores[i] = "S" + strconv.Itoa(i)
	}
	products := make([]string, 300)
	for i := range products {
		products[i] = "P" + strconv.Itoa(i)
	}
	channels := []string{"web", "app", "phone", "store"}
	r := relation.New(s)
	for i := 0; i < n; i++ {
		r.MustAppend(relation.Tuple{
			strconv.Itoa(i),
			stores[src.Intn(len(stores))],
			products[src.Intn(len(products))],
			channels[src.Intn(len(channels))],
		})
	}
	cfg := Config{
		Secret: "closure-secret",
		E:      20,
		Domains: map[string]*relation.Domain{
			"store":   relation.MustDomain(stores),
			"product": relation.MustDomain(products),
			"channel": relation.MustDomain(channels),
		},
	}
	return r, cfg
}

func TestClosureThreeCategoricalAttributes(t *testing.T) {
	r, cfg := threeCatRelation(t, 20000)
	plan, err := BuildPlan(r, cfg, PlanOptions{IncludeInterAttribute: true})
	if err != nil {
		t.Fatal(err)
	}
	// 3 PK pairs + 3 inter-attribute pairs (all three combinations are
	// orientable: channel can never be the key, store/product can).
	if len(plan) != 6 {
		t.Fatalf("plan %v, want 6 pairs", plan)
	}
	// The low-cardinality channel attribute must never hold the key role.
	interCount := 0
	for _, p := range plan {
		if p.KeyAttr == "channel" {
			t.Fatalf("4-value attribute used as key: %s", p)
		}
		if p.KeyAttr != "id" {
			interCount++
		}
	}
	if interCount != 3 {
		t.Fatalf("%d inter-attribute pairs, want 3", interCount)
	}

	// Full embed + detect through all six channels.
	wm := ecc.MustParseBits("101100")
	rec, st, err := EmbedAll(r, wm, plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Ledger skips must appear: later passes revisit earlier passes' rows.
	totalSkips := 0
	for _, ps := range st {
		totalSkips += ps.Stats.SkippedLedger
	}
	if totalSkips == 0 {
		t.Log("note: no ledger overlaps in this configuration")
	}
	comb, err := DetectAll(r, rec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if comb.Detected != 6 {
		t.Fatalf("detected via %d channels, want 6", comb.Detected)
	}
	if comb.WM.String() != wm.String() {
		t.Fatalf("combined %s, want %s", comb.WM, wm)
	}
}

// The closure's orientation rule spreads modifications: with store already
// modified by (K,store), the {store,product} pair should prefer modifying
// whichever side was altered less.
func TestClosureSpreadsModifications(t *testing.T) {
	r, cfg := threeCatRelation(t, 8000)
	plan, err := BuildPlan(r, cfg, PlanOptions{IncludeInterAttribute: true})
	if err != nil {
		t.Fatal(err)
	}
	// Count per-attribute modified-passes over the whole plan. The 4-value
	// channel attribute can never take the key role, so it necessarily
	// absorbs the modification in both of its pairs (PK + 2 = 3 total).
	// The balance guarantee applies to the key-capable attributes: in the
	// orientable {store, product} pair the rule must modify whichever side
	// carries less load (a tie after the PK passes, broken toward using
	// the higher-cardinality store as key), so store 1, product 2.
	modCount := map[string]int{}
	for _, p := range plan {
		modCount[p.Attr]++
	}
	if modCount["channel"] != 3 {
		t.Fatalf("channel modified %d times, want 3 (forced)", modCount["channel"])
	}
	if modCount["store"] != 1 || modCount["product"] != 2 {
		t.Fatalf("orientable pair misbalanced: %v", modCount)
	}
}

// Detection must tolerate channels whose attributes vanished and channels
// whose bandwidth collapsed, reporting per-channel errors rather than
// failing wholesale.
func TestDetectAllPartialChannelFailures(t *testing.T) {
	r, cfg := threeCatRelation(t, 20000)
	plan, err := BuildPlan(r, cfg, PlanOptions{IncludeInterAttribute: true})
	if err != nil {
		t.Fatal(err)
	}
	wm := ecc.MustParseBits("101100")
	rec, _, err := EmbedAll(r, wm, plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Drop the product column entirely.
	part, _, err := r.Project("id", "store", "channel")
	if err != nil {
		t.Fatal(err)
	}
	comb, err := DetectAll(part, rec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	skipped := 0
	for _, pd := range comb.PerPair {
		if pd.Skipped {
			skipped++
		}
	}
	// Channels touching product: (K,product), (store,product) or
	// (product,store), and possibly (product,channel)/(channel,product).
	if skipped < 2 {
		t.Fatalf("only %d channels skipped after dropping product", skipped)
	}
	if comb.Detected == 0 {
		t.Fatal("no surviving channels")
	}
	if comb.WM.String() != wm.String() {
		t.Fatalf("surviving channels decoded %s, want %s", comb.WM, wm)
	}
}
