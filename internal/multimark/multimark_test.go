package multimark

import (
	"strings"
	"testing"

	"repro/internal/datagen"
	"repro/internal/ecc"
	"repro/internal/quality"
	"repro/internal/relation"
	"repro/internal/stats"
)

func airlineData(t *testing.T, n int) (*relation.Relation, Config) {
	t.Helper()
	r, cities, airs, err := datagen.Airline(datagen.AirlineConfig{
		N: n, Cities: 50, Airlines: 20, Seed: "multi-test",
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Secret: "multi-secret",
		E:      25,
		Domains: map[string]*relation.Domain{
			"departure_city": cities,
			"airline":        airs,
		},
	}
	return r, cfg
}

func TestBuildPlanPKPairsOnly(t *testing.T) {
	r, cfg := airlineData(t, 2000)
	plan, err := BuildPlan(r, cfg, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 2 {
		t.Fatalf("plan %v, want 2 PK pairs", plan)
	}
	for _, p := range plan {
		if p.KeyAttr != "ticket" {
			t.Fatalf("pair %s not keyed on the primary key", p)
		}
	}
}

func TestBuildPlanWithInterAttribute(t *testing.T) {
	r, cfg := airlineData(t, 2000)
	plan, err := BuildPlan(r, cfg, PlanOptions{IncludeInterAttribute: true})
	if err != nil {
		t.Fatal(err)
	}
	// (K,city), (K,airline), and one orientation of {city,airline}.
	if len(plan) != 3 {
		t.Fatalf("plan %v, want 3 pairs", plan)
	}
	last := plan[2]
	if last.KeyAttr == "ticket" {
		t.Fatalf("inter-attribute pair %s keyed on PK", last)
	}
	if last.KeyAttr == last.Attr {
		t.Fatalf("degenerate pair %s", last)
	}
}

func TestBuildPlanSkipsLowCardinalityKeys(t *testing.T) {
	// Schema with a binary attribute: it can be modified but never be a key.
	s := relation.MustSchema([]relation.Attribute{
		{Name: "id", Type: relation.TypeInt},
		{Name: "flag", Type: relation.TypeString, Categorical: true},
		{Name: "city", Type: relation.TypeString, Categorical: true},
	}, "id")
	r := relation.New(s)
	cities := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j"}
	for i := 0; i < 2000; i++ {
		r.MustAppend(relation.Tuple{itoa(i), []string{"yes", "no"}[i%2], cities[i%10]})
	}
	cfg := Config{Secret: "s", E: 20}
	plan, err := BuildPlan(r, cfg, PlanOptions{IncludeInterAttribute: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range plan {
		if p.KeyAttr == "flag" {
			t.Fatalf("binary attribute used as key in %s", p)
		}
	}
	// The {flag, city} pair must appear oriented as (city, flag).
	found := false
	for _, p := range plan {
		if p.KeyAttr == "city" && p.Attr == "flag" {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected mark(city,flag) in plan %v", plan)
	}
}

func TestBuildPlanErrors(t *testing.T) {
	s := relation.MustSchema([]relation.Attribute{
		{Name: "id", Type: relation.TypeInt},
	}, "id")
	empty := relation.New(s)
	if _, err := BuildPlan(empty, Config{}, PlanOptions{}); err == nil {
		t.Error("empty relation accepted")
	}
	r := relation.New(s)
	r.MustAppend(relation.Tuple{"1"})
	if _, err := BuildPlan(r, Config{}, PlanOptions{}); err == nil {
		t.Error("schema without categorical attrs accepted")
	}
}

func TestEmbedDetectAllRoundTrip(t *testing.T) {
	r, cfg := airlineData(t, 12000)
	plan, err := BuildPlan(r, cfg, PlanOptions{IncludeInterAttribute: true})
	if err != nil {
		t.Fatal(err)
	}
	wm := ecc.MustParseBits("10110011")
	rec, st, err := EmbedAll(r, wm, plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(st) != len(plan) {
		t.Fatalf("stats for %d pairs, want %d", len(st), len(plan))
	}
	for _, ps := range st {
		if ps.Stats.Fit == 0 {
			t.Fatalf("%s embedded nothing", ps.Pair)
		}
	}
	comb, err := DetectAll(r, rec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if comb.Detected != len(plan) {
		t.Fatalf("detected via %d channels, want %d", comb.Detected, len(plan))
	}
	if comb.WM.String() != wm.String() {
		t.Fatalf("combined detection %s, want %s", comb.WM, wm)
	}
	// Every individual PK channel must also decode cleanly (interference
	// from later passes is ledger-blocked).
	for _, pd := range comb.PerPair {
		if pd.Pair.KeyAttr == "ticket" && pd.Report.WM.String() != wm.String() {
			t.Errorf("channel %s decoded %s", pd.Pair, pd.Report.WM)
		}
	}
}

// The headline Section 3.3 scenario: Mallory vertically partitions away
// the primary key, keeping only the two categorical attributes. The
// (A, B) channel must still testify.
func TestDetectAllSurvivesVerticalPartition(t *testing.T) {
	r, cfg := airlineData(t, 30000)
	plan, err := BuildPlan(r, cfg, PlanOptions{IncludeInterAttribute: true})
	if err != nil {
		t.Fatal(err)
	}
	wm := ecc.MustParseBits("101100")
	rec, _, err := EmbedAll(r, wm, plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A5: drop the ticket column. Mallory keeps every (city, airline) row;
	// the projection dedupes rows whose (city) key collides, which is
	// itself part of the attack's damage.
	part, dropped, err := r.Project("departure_city", "airline")
	if err != nil {
		t.Fatal(err)
	}
	if dropped == 0 {
		t.Fatal("expected projection dedup losses")
	}
	comb, err := DetectAll(part, rec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	skipped := 0
	for _, pd := range comb.PerPair {
		if pd.Skipped {
			skipped++
		}
	}
	if skipped != 2 {
		t.Fatalf("skipped %d channels, want the 2 PK channels", skipped)
	}
	if comb.Detected == 0 {
		t.Fatal("no surviving channel")
	}
	// Note: projection dedup is brutal (one row per distinct city). The
	// surviving channel reads whatever fit rows remain; with 50 cities the
	// data is essentially destroyed, so we only require that detection ran.
	if len(comb.WM) != len(wm) {
		t.Fatal("combined WM has wrong length")
	}
}

// A gentler A5: the attacker keeps a synthetic row id (so no dedup) plus
// the two categorical attributes — the paper's "one of the remaining
// attributes can act as a primary key" scenario with full rows surviving.
//
// An inter-attribute channel's effective bandwidth is (distinct key
// values)/e — the capacity limit behind the paper's closing Section 3.3
// note on categorical key stand-ins — so this test uses a high-cardinality
// city catalog (the paper's own motivating example cites n_A = 16000
// departure cities).
func TestDetectAllVerticalPartitionWithRowIdentity(t *testing.T) {
	r, cities, airs, err := datagen.Airline(datagen.AirlineConfig{
		N: 30000, Cities: 2000, Airlines: 20, Seed: "multi-highcard",
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Secret: "multi-secret",
		E:      25,
		Domains: map[string]*relation.Domain{
			"departure_city": cities,
			"airline":        airs,
		},
	}
	plan, err := BuildPlan(r, cfg, PlanOptions{IncludeInterAttribute: true})
	if err != nil {
		t.Fatal(err)
	}
	wm := ecc.MustParseBits("101100")
	rec, _, err := EmbedAll(r, wm, plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild without the ticket column but with all rows intact.
	s := relation.MustSchema([]relation.Attribute{
		{Name: "rowid", Type: relation.TypeInt},
		{Name: "departure_city", Type: relation.TypeString, Categorical: true},
		{Name: "airline", Type: relation.TypeString, Categorical: true},
	}, "rowid")
	stripped := relation.New(s)
	for i := 0; i < r.Len(); i++ {
		city, _ := r.Value(i, "departure_city")
		air, _ := r.Value(i, "airline")
		stripped.MustAppend(relation.Tuple{itoa(i), city, air})
	}
	comb, err := DetectAll(stripped, rec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if comb.Detected == 0 {
		t.Fatal("no channel survived")
	}
	// The (city → airline) or (airline → city) channel survives intact.
	match := 1 - ecc.AlterationRate(wm, comb.WM)
	if match < 0.9 {
		t.Fatalf("combined match %v after key-less partition", match)
	}
}

func TestEmbedAllWithSharedAssessorBudget(t *testing.T) {
	r, cfg := airlineData(t, 12000)
	cfg.Assessor = quality.NewAssessor(quality.MaxAlterations(50))
	plan, err := BuildPlan(r, cfg, PlanOptions{IncludeInterAttribute: true})
	if err != nil {
		t.Fatal(err)
	}
	_, st, err := EmbedAll(r, ecc.MustParseBits("1011"), plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, ps := range st {
		total += ps.Stats.Altered
	}
	if total > 50 {
		t.Fatalf("altered %d tuples across passes despite budget 50", total)
	}
}

func TestDetectAllEmptyRecord(t *testing.T) {
	r, cfg := airlineData(t, 100)
	if _, err := DetectAll(r, Record{}, cfg); err == nil {
		t.Error("empty record accepted")
	}
}

func TestEmbedAllEmptyPlan(t *testing.T) {
	r, cfg := airlineData(t, 100)
	if _, _, err := EmbedAll(r, ecc.MustParseBits("1"), nil, cfg); err == nil {
		t.Error("empty plan accepted")
	}
}

func TestKeyDerivationOrientationSensitive(t *testing.T) {
	cfg := Config{Secret: "s"}
	k1a, k2a := cfg.deriveKeys(Pair{KeyAttr: "A", Attr: "B"})
	k1b, k2b := cfg.deriveKeys(Pair{KeyAttr: "B", Attr: "A"})
	if k1a.String() == k1b.String() || k2a.String() == k2b.String() {
		t.Fatal("opposite orientations share key material")
	}
	if k1a.String() == k2a.String() {
		t.Fatal("k1 == k2 for a channel")
	}
}

func TestDetectAllSubsetPlusShuffle(t *testing.T) {
	r, cfg := airlineData(t, 24000)
	plan, err := BuildPlan(r, cfg, PlanOptions{IncludeInterAttribute: true})
	if err != nil {
		t.Fatal(err)
	}
	wm := ecc.MustParseBits("110101")
	rec, _, err := EmbedAll(r, wm, plan, cfg)
	if err != nil {
		t.Fatal(err)
	}
	src := stats.NewSource("multi-attack")
	sub, err := r.SelectRows(src.Sample(r.Len(), r.Len()*6/10))
	if err != nil {
		t.Fatal(err)
	}
	sub.Shuffle(src)
	comb, err := DetectAll(sub, rec, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if comb.WM.String() != wm.String() {
		t.Fatalf("A1+A4 composite broke combined detection: %s vs %s", comb.WM, wm)
	}
}

func TestPairString(t *testing.T) {
	p := Pair{KeyAttr: "K", Attr: "A"}
	if !strings.Contains(p.String(), "mark(K,A)") {
		t.Fatalf("String() = %s", p.String())
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [20]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}
