// Package multimark implements the multiple-attribute embedding of Section
// 3.3: instead of relying on the single (primary key, A) association, the
// watermark is embedded separately into *every* usable attribute pair —
// mark(K,A), mark(K,B), mark(A,B), … — treating one attribute of each pair
// as the key. This defends against vertical-partitioning attacks (A5) that
// drop the primary key, removes the scheme's primary-key dependency, and
// multiplies the number of rights "witnesses".
//
// Interference between passes is controlled two ways, both from the paper:
//
//   - A ledger "remembers" which rows had an attribute modified by an
//     earlier pass; later passes skip those rows for that attribute, so a
//     committed bit is never overwritten (Section 3.3: "maintaining a
//     hash-map at watermarking time, remembering modified tuples in each
//     marking pass").
//   - Each unordered attribute pair is embedded in one orientation only,
//     chosen so the modified side is the attribute altered less so far —
//     "spreading" the watermark — and the key side has enough distinct
//     values to act as a key stand-in (the paper's closing note that a
//     near-constant categorical attribute would upset fit-tuple selection).
package multimark

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/ecc"
	"repro/internal/keyhash"
	"repro/internal/mark"
	"repro/internal/quality"
	"repro/internal/relation"
)

// Pair is one oriented embedding channel: KeyAttr plays the key role and
// Attr is the categorical attribute modified.
type Pair struct {
	KeyAttr string
	Attr    string
}

// String renders the paper's mark(K,A) notation.
func (p Pair) String() string { return fmt.Sprintf("mark(%s,%s)", p.KeyAttr, p.Attr) }

// Config parameterises a multi-attribute embedding.
type Config struct {
	// Secret is the master watermarking secret; per-pair keys k1, k2 are
	// derived from it deterministically, so detection needs only Secret.
	Secret string
	// E is the fitness modulus, shared by all pairs.
	E uint64
	// Code is the ECC; nil means majority voting.
	Code ecc.Code
	// Domains maps each categorical attribute to its value catalog.
	// Attributes without an entry get data-derived domains at embed time.
	Domains map[string]*relation.Domain
	// MinKeyCardinality is the minimum number of distinct values an
	// attribute needs to serve as a pair's key; below it, fitness
	// selection degenerates (all tuples sharing a value are selected
	// together). 0 means the default of 8.
	MinKeyCardinality int
	// Assessor optionally gates every alteration across all passes.
	Assessor *quality.Assessor
}

func (c *Config) minKeyCard() int {
	if c.MinKeyCardinality <= 0 {
		return 8
	}
	return c.MinKeyCardinality
}

// deriveKeys returns the (k1, k2) pair for a channel. Keys bind the
// orientation, so mark(A,B) and mark(B,A) never share key material.
func (c *Config) deriveKeys(p Pair) (keyhash.Key, keyhash.Key) {
	base := c.Secret + "|" + p.KeyAttr + "->" + p.Attr
	return keyhash.NewKey(base + "|k1"), keyhash.NewKey(base + "|k2")
}

// PlanOptions tunes BuildPlan.
type PlanOptions struct {
	// IncludeInterAttribute adds the (A_i, A_j) pairs between categorical
	// attributes; disable to reproduce the plain Section 3.2 scheme with
	// one pass per attribute.
	IncludeInterAttribute bool
}

// BuildPlan computes the ordered pair closure over r's schema: first the
// (primary key, A_i) channels for every categorical A_i, then — when
// enabled — one oriented channel per unordered categorical pair, modified
// side chosen as the attribute altered fewer times so far (ties broken
// toward using the higher-cardinality attribute as key). Attributes whose
// cardinality in r is below MinKeyCardinality are never used as keys.
func BuildPlan(r *relation.Relation, cfg Config, opt PlanOptions) ([]Pair, error) {
	if r.Len() == 0 {
		return nil, errors.New("multimark: empty relation")
	}
	cats := r.Schema().CategoricalAttrs()
	if len(cats) == 0 {
		return nil, errors.New("multimark: schema has no categorical attributes")
	}
	pk := r.Schema().KeyName()

	card := make(map[string]int, len(cats)+1)
	for _, a := range cats {
		if d, ok := cfg.Domains[a]; ok && d != nil {
			card[a] = d.Size()
			continue
		}
		d, err := relation.DomainOf(r, a)
		if err != nil {
			return nil, err
		}
		card[a] = d.Size()
	}

	var plan []Pair
	modified := make(map[string]int) // pass count per modified attribute
	for _, a := range cats {
		if a == pk {
			continue
		}
		if card[a] < 2 {
			continue // no parity channel
		}
		plan = append(plan, Pair{KeyAttr: pk, Attr: a})
		modified[a]++
	}
	if len(plan) == 0 {
		return nil, errors.New("multimark: no categorical attribute offers a parity channel")
	}
	if !opt.IncludeInterAttribute {
		return plan, nil
	}

	minCard := cfg.minKeyCard()
	for i := 0; i < len(cats); i++ {
		for j := i + 1; j < len(cats); j++ {
			a, b := cats[i], cats[j]
			if a == pk || b == pk {
				continue
			}
			// Orient: modify the less-altered side; require the key side
			// to have enough distinct values, the modified side ≥ 2.
			candidates := []Pair{{KeyAttr: a, Attr: b}, {KeyAttr: b, Attr: a}}
			sort.Slice(candidates, func(x, y int) bool {
				cx, cy := candidates[x], candidates[y]
				if modified[cx.Attr] != modified[cy.Attr] {
					return modified[cx.Attr] < modified[cy.Attr]
				}
				return card[cx.KeyAttr] > card[cy.KeyAttr]
			})
			chosen := false
			for _, cand := range candidates {
				if card[cand.KeyAttr] >= minCard && card[cand.Attr] >= 2 {
					plan = append(plan, cand)
					modified[cand.Attr]++
					chosen = true
					break
				}
			}
			_ = chosen // unpairable combinations are skipped silently
		}
	}
	return plan, nil
}

// PairRecord is the per-channel state the owner must retain for detection.
type PairRecord struct {
	Pair Pair
	// Bandwidth is the embedding-time |wm_data|, needed because detection
	// may run on data of different size (A1/A2 attacks).
	Bandwidth int
}

// Record is the detection-time state for a whole multi-attribute
// embedding: the plan plus per-channel bandwidths. Keys are re-derived
// from Config.Secret.
type Record struct {
	WMLen int
	Pairs []PairRecord
}

// PairStats couples a channel with its embedding statistics.
type PairStats struct {
	Pair  Pair
	Stats mark.EmbedStats
}

// EmbedAll embeds wm through every channel in plan, in order, maintaining
// the interference ledger across passes. Returns the detection record and
// per-pair statistics.
func EmbedAll(r *relation.Relation, wm ecc.Bits, plan []Pair, cfg Config) (Record, []PairStats, error) {
	if len(plan) == 0 {
		return Record{}, nil, errors.New("multimark: empty plan")
	}
	rec := Record{WMLen: len(wm)}
	var all []PairStats
	// ledger[attr][row]: row's attr was written by an earlier pass.
	ledger := make(map[string]map[int]bool)
	for _, p := range plan {
		k1, k2 := cfg.deriveKeys(p)
		written := ledger[p.Attr]
		if written == nil {
			written = make(map[int]bool)
			ledger[p.Attr] = written
		}
		opts := mark.Options{
			KeyAttr:  p.KeyAttr,
			Attr:     p.Attr,
			K1:       k1,
			K2:       k2,
			E:        cfg.E,
			Code:     cfg.Code,
			Domain:   cfg.Domains[p.Attr],
			Assessor: cfg.Assessor,
			SkipRow:  func(row int) bool { return written[row] },
			OnAlter:  func(row int) { written[row] = true },
		}
		st, err := mark.Embed(r, wm, opts)
		if err != nil {
			return Record{}, all, fmt.Errorf("multimark: %s: %w", p, err)
		}
		all = append(all, PairStats{Pair: p, Stats: st})
		rec.Pairs = append(rec.Pairs, PairRecord{Pair: p, Bandwidth: st.Bandwidth})
	}
	return rec, all, nil
}

// PairDetection is one channel's detection outcome.
type PairDetection struct {
	Pair   Pair
	Report mark.DetectReport
	// Skipped is true when the channel's attributes are absent from the
	// (possibly vertically partitioned) relation.
	Skipped bool
	// Err records a per-channel failure (e.g. bandwidth below |wm| after
	// massive loss); the combined detection continues without it.
	Err error
}

// CombinedReport aggregates detection across channels: per-bit majority
// over every surviving channel's recovered watermark.
type CombinedReport struct {
	PerPair []PairDetection
	// WM is the bitwise majority across detected channels.
	WM ecc.Bits
	// Detected is the number of channels that produced a watermark.
	Detected int
}

// DetectAll attempts detection through every recorded channel, skipping
// channels whose attributes did not survive partitioning, and combines
// the survivors by per-bit majority.
func DetectAll(r *relation.Relation, rec Record, cfg Config) (CombinedReport, error) {
	if rec.WMLen <= 0 || len(rec.Pairs) == 0 {
		return CombinedReport{}, errors.New("multimark: empty record")
	}
	var comb CombinedReport
	votes := make([]ecc.VoteTally, rec.WMLen)
	for _, pr := range rec.Pairs {
		pd := PairDetection{Pair: pr.Pair}
		_, haveKey := r.Schema().Index(pr.Pair.KeyAttr)
		_, haveAttr := r.Schema().Index(pr.Pair.Attr)
		if !haveKey || !haveAttr {
			pd.Skipped = true
			comb.PerPair = append(comb.PerPair, pd)
			continue
		}
		k1, k2 := cfg.deriveKeys(pr.Pair)
		opts := mark.Options{
			KeyAttr:           pr.Pair.KeyAttr,
			Attr:              pr.Pair.Attr,
			K1:                k1,
			K2:                k2,
			E:                 cfg.E,
			Code:              cfg.Code,
			Domain:            cfg.Domains[pr.Pair.Attr],
			BandwidthOverride: pr.Bandwidth,
		}
		rep, err := mark.Detect(r, rec.WMLen, opts)
		if err != nil {
			pd.Err = err
			comb.PerPair = append(comb.PerPair, pd)
			continue
		}
		pd.Report = rep
		comb.PerPair = append(comb.PerPair, pd)
		comb.Detected++
		for i, b := range rep.WM {
			switch b {
			case ecc.One:
				votes[i].Ones++
			case ecc.Zero:
				votes[i].Zeros++
			}
		}
	}
	if comb.Detected == 0 {
		return comb, errors.New("multimark: no channel survived for detection")
	}
	comb.WM = make(ecc.Bits, rec.WMLen)
	for i, v := range votes {
		comb.WM[i] = v.Winner(ecc.Zero)
	}
	return comb, nil
}
