package core

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sync"

	"repro/internal/ecc"
	"repro/internal/keyhash"
	"repro/internal/mark"
	"repro/internal/relation"
)

// preparedRecord is the schema-independent verification state derived
// from a certificate: parsed expected bits, the reconstructed value
// domain, and the channel options with both keys derived from the secret.
// Deriving it is the per-verify fixed cost — domain reconstruction is
// O(|domain|) map building, key derivation hashes the secret — so
// repeated verifies against the same certificate share one preparedRecord
// through a ScannerCache. It is immutable and safe for concurrent use;
// per-suspect scanners are instantiated from it cheaply.
type preparedRecord struct {
	want ecc.Bits
	opts mark.Options
}

func prepareRecord(rec *Record, kernel keyhash.KernelKind) (*preparedRecord, error) {
	want, err := ecc.ParseBits(rec.WM)
	if err != nil {
		return nil, fmt.Errorf("core: corrupt record: %w", err)
	}
	dom, err := relation.NewDomain(rec.Domain)
	if err != nil {
		return nil, fmt.Errorf("core: corrupt record: %w", err)
	}
	s := Spec{Secret: rec.Secret}
	k1, k2 := s.keys()
	return &preparedRecord{
		want: want,
		opts: mark.Options{
			KeyAttr:           rec.KeyAttr,
			Attr:              rec.Attribute,
			K1:                k1,
			K2:                k2,
			E:                 rec.E,
			Domain:            dom,
			BandwidthOverride: rec.Bandwidth,
			HashKernel:        kernel,
		},
	}, nil
}

// streamScanner instantiates a detection scanner for one suspect schema.
func (p *preparedRecord) streamScanner(schema *relation.Schema) (*mark.Scanner, error) {
	return mark.NewStreamScanner(schema, len(p.want), p.opts)
}

// fingerprint keys the scanner cache: a digest over every field that
// feeds the prepared state (secret, attributes, expected bits, e,
// bandwidth, domain). The frequency profile is deliberately excluded —
// remap recovery reads it straight off the record, never from the
// prepared state — so certificates differing only in profile share an
// entry.
//
// The digest is recomputed per lookup, so a cache hit still costs one
// hash pass over the domain strings. That is deliberate: Record is a
// plain value callers copy and mutate (tests and benchmarks derive
// sibling certificates via `other := *rec`), so memoizing the
// fingerprint inside the struct would silently go stale; and keying by
// store ID would couple core to the server's storage identity. The hit
// still skips the expensive part — ParseBits, key derivation and the
// O(|domain|) map build with its per-value allocations — which costs an
// order of magnitude more than hashing the same bytes.
func (rec *Record) fingerprint() string {
	h := sha256.New()
	var n [8]byte
	ws := func(s string) {
		binary.BigEndian.PutUint64(n[:], uint64(len(s)))
		h.Write(n[:])
		h.Write([]byte(s))
	}
	ws(rec.Secret)
	ws(rec.Attribute)
	ws(rec.KeyAttr)
	ws(rec.WM)
	binary.BigEndian.PutUint64(n[:], rec.E)
	h.Write(n[:])
	binary.BigEndian.PutUint64(n[:], uint64(rec.Bandwidth))
	h.Write(n[:])
	for _, v := range rec.Domain {
		ws(v)
	}
	return string(h.Sum(nil))
}

// DefaultScannerCacheEntries is the entry bound NewScannerCache applies
// when given a non-positive size.
const DefaultScannerCacheEntries = 256

// ScannerCache memoizes prepared certificate state across verifies, so a
// service verifying many suspects against the same registered catalog
// re-derives keys and domains once per certificate instead of once per
// request. Entries evict least-recently-used. Safe for concurrent use.
type ScannerCache struct {
	mu      sync.Mutex
	max     int
	lru     *list.List // of *cacheSlot, front = most recently used
	entries map[string]*list.Element
	hits    uint64
	misses  uint64
}

type cacheSlot struct {
	key  string
	prep *preparedRecord
}

// NewScannerCache returns a cache bounded to maxEntries prepared records
// (DefaultScannerCacheEntries when maxEntries <= 0).
func NewScannerCache(maxEntries int) *ScannerCache {
	if maxEntries <= 0 {
		maxEntries = DefaultScannerCacheEntries
	}
	return &ScannerCache{
		max:     maxEntries,
		lru:     list.New(),
		entries: make(map[string]*list.Element),
	}
}

// prepared returns the cached state for rec under the given hash-kernel
// kind, deriving and inserting it on miss. The kind is part of the cache
// key — prepared state carries the kernel choice into every scanner it
// spawns, so entries for different backends must not alias. Derivation
// happens outside the lock; when two goroutines race on the same
// certificate the first insert wins and both share its state.
func (c *ScannerCache) prepared(rec *Record, kernel keyhash.KernelKind) (*preparedRecord, error) {
	key := rec.fingerprint() + "|" + string(kernel)
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		c.hits++
		p := el.Value.(*cacheSlot).prep
		c.mu.Unlock()
		return p, nil
	}
	c.misses++
	c.mu.Unlock()

	p, err := prepareRecord(rec, kernel)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		return el.Value.(*cacheSlot).prep, nil
	}
	c.entries[key] = c.lru.PushFront(&cacheSlot{key: key, prep: p})
	if c.lru.Len() > c.max {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheSlot).key)
	}
	return p, nil
}

// CacheStats is a point-in-time view of a ScannerCache.
type CacheStats struct {
	Entries int    `json:"entries"`
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
}

// Stats reports current occupancy and lifetime hit/miss counts.
func (c *ScannerCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Entries: c.lru.Len(), Hits: c.hits, Misses: c.misses}
}

// prepared resolves a record's verification state through an optional
// cache; a nil cache derives it fresh.
func prepared(rec *Record, cache *ScannerCache, kernel keyhash.KernelKind) (*preparedRecord, error) {
	if cache == nil {
		return prepareRecord(rec, kernel)
	}
	return cache.prepared(rec, kernel)
}
