package core

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/datagen"
	"repro/internal/relation"
)

// batchTestCatalog watermarks one dataset under the first secret and
// builds a catalog of K certificates (the other K-1 belong to different
// owners over the same domain — the adversarial-audit shape).
func batchTestCatalog(t testing.TB, n, k int) (*relation.Relation, []*Record) {
	t.Helper()
	r, dom, err := datagen.ItemScan(datagen.ItemScanConfig{
		N: n, CatalogSize: 200, ZipfS: 1.0, Seed: "batch-test",
	})
	if err != nil {
		t.Fatal(err)
	}
	rec, _, err := Watermark(r, Spec{
		Secret:    "batch-owner-0",
		Attribute: "Item_Nbr",
		WM:        "1011001110",
		E:         20,
		Domain:    dom,
	})
	if err != nil {
		t.Fatal(err)
	}
	records := make([]*Record, k)
	records[0] = rec
	for i := 1; i < k; i++ {
		other := *rec
		other.Secret = fmt.Sprintf("batch-owner-%d", i)
		records[i] = &other
	}
	return r, records
}

// TestVerifyBatchMatchesIndividualVerify is the batch-equivalence
// acceptance test: one VerifyBatch pass over K certificates produces,
// per certificate, a Report identical to that certificate's own
// Record.Verify over the materialized suspect — matching owner and
// non-matching bystanders alike — and identical again when the suspect
// arrives as a CSV stream and the scans run on a worker pool.
func TestVerifyBatchMatchesIndividualVerify(t *testing.T) {
	suspect, records := batchTestCatalog(t, 4000, 6)

	want := make([]Report, len(records))
	for i, rec := range records {
		rep, err := rec.Verify(suspect)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		want[i] = rep
	}
	if want[0].Match != 1 {
		t.Fatalf("owner certificate should fully match, got %v", want[0].Match)
	}

	var csvData strings.Builder
	if err := relation.WriteCSV(&csvData, suspect); err != nil {
		t.Fatal(err)
	}
	for _, opts := range []BatchOptions{
		{},
		{Workers: 4},
		{Workers: 4, Cache: NewScannerCache(3)}, // smaller than the catalog: forces evictions
	} {
		// In-memory stream.
		got, err := VerifyBatch(context.Background(), records, relation.Rows(suspect), opts)
		if err != nil {
			t.Fatal(err)
		}
		assertBatchEqual(t, got, want)

		// CSV stream — the server's ingestion path.
		src, err := relation.NewCSVRowReader(strings.NewReader(csvData.String()), suspect.Schema())
		if err != nil {
			t.Fatal(err)
		}
		got, err = VerifyBatch(context.Background(), records, src, opts)
		if err != nil {
			t.Fatal(err)
		}
		assertBatchEqual(t, got, want)
	}
}

func assertBatchEqual(t *testing.T, got []BatchReport, want []Report) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got %d reports, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Err != nil {
			t.Fatalf("record %d: %v", i, got[i].Err)
		}
		if !reflect.DeepEqual(got[i].Report, want[i]) {
			t.Errorf("record %d: batch report diverged:\n got %+v\nwant %+v",
				i, got[i].Report, want[i])
		}
	}
}

// TestVerifyBatchBadRecord asserts one corrupt certificate fails alone,
// not the batch.
func TestVerifyBatchBadRecord(t *testing.T) {
	suspect, records := batchTestCatalog(t, 2000, 2)
	bad := *records[1]
	bad.WM = "10x1"
	out, err := VerifyBatch(context.Background(), []*Record{records[0], &bad}, relation.Rows(suspect), BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if out[0].Err != nil || out[0].Report.Match != 1 {
		t.Fatalf("good record: %+v", out[0])
	}
	if out[1].Err == nil {
		t.Fatal("corrupt record slipped through")
	}
}

// TestScannerCacheConcurrent hammers one small cache from concurrent
// verifies over a shared catalog — the wmserver request pattern — and is
// run under -race in CI. Every result must still match the uncached
// verify, with the cache evicting and re-deriving under contention.
func TestScannerCacheConcurrent(t *testing.T) {
	suspect, records := batchTestCatalog(t, 2000, 8)
	want := make([]Report, len(records))
	for i, rec := range records {
		rep, err := rec.Verify(suspect)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = rep
	}

	cache := NewScannerCache(3) // far smaller than the catalog
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 4; iter++ {
				i := (g + iter) % len(records)
				rep, err := records[i].VerifyWith(suspect, VerifyOptions{Workers: 2, Cache: cache})
				if err != nil {
					errs <- fmt.Errorf("record %d: %w", i, err)
					return
				}
				if !reflect.DeepEqual(rep, want[i]) {
					errs <- fmt.Errorf("record %d: cached verify diverged", i)
					return
				}
				out, err := VerifyBatch(context.Background(), records[i:i+1:i+1], relation.Rows(suspect), BatchOptions{Cache: cache})
				if err != nil {
					errs <- err
					return
				}
				if out[0].Err != nil || !reflect.DeepEqual(out[0].Report, want[i]) {
					errs <- fmt.Errorf("record %d: cached batch verify diverged", i)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := cache.Stats()
	if st.Entries > 3 {
		t.Fatalf("cache exceeded its bound: %+v", st)
	}
	if st.Misses == 0 {
		t.Fatalf("cache never derived anything: %+v", st)
	}
	// With 8 keys thrashing 3 slots, hits during the hammer are not
	// guaranteed — but a quiet back-to-back verify must hit.
	before := cache.Stats().Hits
	if _, err := records[0].VerifyWith(suspect, VerifyOptions{Cache: cache}); err != nil {
		t.Fatal(err)
	}
	if _, err := records[0].VerifyWith(suspect, VerifyOptions{Cache: cache}); err != nil {
		t.Fatal(err)
	}
	if cache.Stats().Hits == before {
		t.Fatal("back-to-back cached verifies never hit the cache")
	}
}
