package core

import (
	"context"

	"repro/internal/keyhash"
	"repro/internal/mark"
	"repro/internal/pipeline"
	"repro/internal/relation"
)

// BatchOptions configures a VerifyBatch pass.
type BatchOptions struct {
	// Workers follows the Spec.Workers convention: 0 or 1 sequential,
	// > 1 that many pipeline workers, negative means runtime.NumCPU().
	Workers int
	// Cache, when non-nil, memoizes prepared certificate state across
	// calls — the point of registering a catalog once and auditing many
	// suspect datasets against it.
	Cache *ScannerCache
	// HashKernel selects the batched keyed-hash backend every
	// certificate's scanner runs on (see Spec.HashKernel). Verdicts are
	// identical across backends.
	HashKernel keyhash.KernelKind
	// BlockSize is the scan-block size (pipeline.Config.BlockRows): the
	// batch engine extracts each block's key column once and keeps its
	// digests cache-resident while every certificate sweeps it. 0 means
	// mark.DefaultBlockRows; negative selects the tuple-at-a-time legacy
	// engine (the benchmark baseline). Tallies are bit-identical at
	// every setting.
	BlockSize int
	// Progress, when non-nil, receives the tuple count of each scanned
	// block — once per suspect tuple per pass, regardless of how many
	// certificates ride it. Called concurrently from worker goroutines;
	// async jobs point it at their atomic tuples-processed counter.
	Progress func(tuples int)
}

// BatchReport is one certificate's outcome from VerifyBatch.
type BatchReport struct {
	// Report is the verification outcome; meaningful only when Err is nil.
	Report Report
	// Err is a per-certificate failure — a corrupt record, a certificate
	// whose attributes do not resolve in the suspect's schema, or an ECC
	// decode failure. One bad certificate never fails the batch.
	Err error
}

// VerifyBatch verifies every certificate against ONE streaming pass over
// the suspect dataset — the ownership-audit primitive: a suspect corpus
// is checked against a whole registered catalog for the cost of a single
// read. Each certificate's primary-channel detection is bit-identical to
// what its individual Record.Verify would compute (see the equivalence
// test); results are in records order.
//
// Because the suspect is consumed as a one-shot stream and never
// materialized, the two rescanning fallbacks of Record.Verify are out of
// scope here: Section 4.5 bijective-remap recovery is not attempted
// (RemapRecovered is always false — a remapped suspect surfaces as a high
// Primary.UnknownValues count, at which point the caller can rerun
// Record.Verify on a materialized copy), and the Section 4.2 frequency
// channel is not scored (FrequencyMatch is -1).
//
// A stream-level error (unreadable or malformed suspect data) fails the
// whole call; per-certificate failures land in their BatchReport.Err. A
// cancelled ctx stops the scan before the reader drains and fails the
// call with ctx.Err() — this is how job cancellation and client
// disconnects halt a corpus audit mid-pass.
func VerifyBatch(ctx context.Context, records []*Record, src relation.RowReader, opts BatchOptions) ([]BatchReport, error) {
	out := make([]BatchReport, len(records))
	preps := make([]*preparedRecord, len(records))
	var scanners []*mark.Scanner
	var live []int // scanner position -> records index
	for i, rec := range records {
		p, err := prepared(rec, opts.Cache, opts.HashKernel)
		if err != nil {
			out[i].Err = err
			continue
		}
		sc, err := p.streamScanner(src.Schema())
		if err != nil {
			out[i].Err = err
			continue
		}
		preps[i] = p
		scanners = append(scanners, sc)
		live = append(live, i)
	}

	outs, err := pipeline.DetectMany(ctx, src, scanners, pipeline.Config{
		Workers:   workerCount(opts.Workers),
		BlockRows: opts.BlockSize,
		Progress:  opts.Progress,
	})
	if err != nil {
		return nil, err
	}
	for j, o := range outs {
		i := live[j]
		if o.Err != nil {
			out[i].Err = o.Err
			continue
		}
		out[i].Report = Report{
			Match:          o.Report.MatchFraction(preps[i].want),
			Detected:       o.Report.WM.String(),
			FrequencyMatch: -1,
			Primary:        o.Report,
		}
	}
	return out, nil
}
