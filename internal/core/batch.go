package core

import (
	"context"

	"repro/internal/ecc"
	"repro/internal/keyhash"
	"repro/internal/mark"
	"repro/internal/pipeline"
	"repro/internal/relation"
)

// BatchOptions configures a VerifyBatch pass.
type BatchOptions struct {
	// Workers follows the Spec.Workers convention: 0 or 1 sequential,
	// > 1 that many pipeline workers, negative means runtime.NumCPU().
	Workers int
	// Cache, when non-nil, memoizes prepared certificate state across
	// calls — the point of registering a catalog once and auditing many
	// suspect datasets against it.
	Cache *ScannerCache
	// HashKernel selects the batched keyed-hash backend every
	// certificate's scanner runs on (see Spec.HashKernel). Verdicts are
	// identical across backends.
	HashKernel keyhash.KernelKind
	// BlockSize is the scan-block size (pipeline.Config.BlockRows): the
	// batch engine extracts each block's key column once and keeps its
	// digests cache-resident while every certificate sweeps it. 0 means
	// mark.DefaultBlockRows; negative selects the tuple-at-a-time legacy
	// engine (the benchmark baseline). Tallies are bit-identical at
	// every setting.
	BlockSize int
	// Progress, when non-nil, receives the tuple count of each scanned
	// block — once per suspect tuple per pass, regardless of how many
	// certificates ride it. Called concurrently from worker goroutines;
	// async jobs point it at their atomic tuples-processed counter.
	Progress func(tuples int)
}

// BatchReport is one certificate's outcome from VerifyBatch.
type BatchReport struct {
	// Report is the verification outcome; meaningful only when Err is nil.
	Report Report
	// Err is a per-certificate failure — a corrupt record, a certificate
	// whose attributes do not resolve in the suspect's schema, or an ECC
	// decode failure. One bad certificate never fails the batch.
	Err error
}

// BatchPrep is the prepared front half of a batch verification: one
// detection scanner per resolvable certificate, fixed against one suspect
// schema. It splits VerifyBatch at the point a distributed audit needs to
// cut it — the coordinator prepares once, fans the SCAN out across
// workers (each of which prepares identically from the same certificates,
// since every parameter derives deterministically from the record), and
// feeds the merged tallies back through Reports. Local verification is
// the same prep with a local scan in the middle, so the two paths cannot
// drift. Immutable after PrepareBatch and safe for concurrent use.
type BatchPrep struct {
	scanners []*mark.Scanner
	records  []*Record // live certificates, scanner order
	wants    []ecc.Bits
	live     []int   // scanner position -> input records index
	errs     []error // per input record; nil where a scanner exists
}

// PrepareBatch resolves every certificate into a detection scanner
// against the suspect schema. Per-certificate failures (corrupt records,
// attributes missing from the schema) are collected, not fatal: they
// surface as BatchReport.Err from Reports, and the remaining certificates
// still ride the scan.
func PrepareBatch(records []*Record, schema *relation.Schema, opts BatchOptions) *BatchPrep {
	p := &BatchPrep{errs: make([]error, len(records))}
	for i, rec := range records {
		pr, err := prepared(rec, opts.Cache, opts.HashKernel)
		if err != nil {
			p.errs[i] = err
			continue
		}
		sc, err := pr.streamScanner(schema)
		if err != nil {
			p.errs[i] = err
			continue
		}
		p.scanners = append(p.scanners, sc)
		p.records = append(p.records, rec)
		p.wants = append(p.wants, pr.want)
		p.live = append(p.live, i)
	}
	return p
}

// Scanners returns the prepared scanners, one per live certificate in
// input order. The slice is shared — callers must not mutate it.
func (p *BatchPrep) Scanners() []*mark.Scanner { return p.scanners }

// Records returns the live certificates in scanner order — what a
// coordinator ships to workers, so a certificate that failed prep locally
// is never dispatched.
func (p *BatchPrep) Records() []*Record { return p.records }

// Errs returns the per-input-record prep failures (nil entries where a
// scanner exists). The slice is shared — callers must not mutate it.
func (p *BatchPrep) Errs() []error { return p.errs }

// Reports aggregates one completed tally per scanner (in Scanners order —
// pipeline.ScanMany's output, or a coordinator's merged shard partials)
// into per-certificate reports in the original records order, restoring
// the prep failures of certificates that never scanned.
func (p *BatchPrep) Reports(tallies []*mark.Tally) []BatchReport {
	out := make([]BatchReport, len(p.errs))
	for i, err := range p.errs {
		if err != nil {
			out[i].Err = err
		}
	}
	for j, sc := range p.scanners {
		i := p.live[j]
		rep, err := sc.Report(tallies[j])
		if err != nil {
			out[i].Err = err
			continue
		}
		out[i].Report = Report{
			Match:          rep.MatchFraction(p.wants[j]),
			Detected:       rep.WM.String(),
			FrequencyMatch: -1,
			Primary:        rep,
		}
	}
	return out
}

// VerifyBatch verifies every certificate against ONE streaming pass over
// the suspect dataset — the ownership-audit primitive: a suspect corpus
// is checked against a whole registered catalog for the cost of a single
// read. Each certificate's primary-channel detection is bit-identical to
// what its individual Record.Verify would compute (see the equivalence
// test); results are in records order.
//
// Because the suspect is consumed as a one-shot stream and never
// materialized, the two rescanning fallbacks of Record.Verify are out of
// scope here: Section 4.5 bijective-remap recovery is not attempted
// (RemapRecovered is always false — a remapped suspect surfaces as a high
// Primary.UnknownValues count, at which point the caller can rerun
// Record.Verify on a materialized copy), and the Section 4.2 frequency
// channel is not scored (FrequencyMatch is -1).
//
// A stream-level error (unreadable or malformed suspect data) fails the
// whole call; per-certificate failures land in their BatchReport.Err. A
// cancelled ctx stops the scan before the reader drains and fails the
// call with ctx.Err() — this is how job cancellation and client
// disconnects halt a corpus audit mid-pass.
func VerifyBatch(ctx context.Context, records []*Record, src relation.RowReader, opts BatchOptions) ([]BatchReport, error) {
	prep := PrepareBatch(records, src.Schema(), opts)
	tallies, err := pipeline.ScanMany(ctx, src, prep.Scanners(), pipeline.Config{
		Workers:   workerCount(opts.Workers),
		BlockRows: opts.BlockSize,
		Progress:  opts.Progress,
	})
	if err != nil {
		return nil, err
	}
	return prep.Reports(tallies), nil
}
