package core

import (
	"strings"
	"testing"

	"repro/internal/attacks"
	"repro/internal/datagen"
	"repro/internal/relation"
	"repro/internal/stats"
)

func coreData(t *testing.T, n int) (*relation.Relation, *relation.Domain) {
	t.Helper()
	r, dom, err := datagen.ItemScan(datagen.ItemScanConfig{
		N: n, CatalogSize: 300, ZipfS: 1.1, Seed: "core-test",
	})
	if err != nil {
		t.Fatal(err)
	}
	return r, dom
}

func TestWatermarkVerifyRoundTrip(t *testing.T) {
	r, dom := coreData(t, 12000)
	rec, st, err := Watermark(r, Spec{
		Secret:    "owner-secret",
		Attribute: "Item_Nbr",
		WM:        "1011001110",
		E:         50,
		Domain:    dom,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Mark.Altered == 0 {
		t.Fatal("nothing embedded")
	}
	rep, err := rec.Verify(r)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Match != 1 {
		t.Fatalf("match %v, want 1.0", rep.Match)
	}
	if rep.Detected != "1011001110" {
		t.Fatalf("detected %s", rep.Detected)
	}
	if rep.RemapRecovered {
		t.Fatal("remap recovery triggered without a remap")
	}
}

func TestVerifyAfterSubsetAndShuffle(t *testing.T) {
	r, dom := coreData(t, 20000)
	rec, _, err := Watermark(r, Spec{
		Secret: "s", Attribute: "Item_Nbr", WM: "1100110010", E: 50, Domain: dom,
	})
	if err != nil {
		t.Fatal(err)
	}
	src := stats.NewSource("core-attack")
	attacked, err := attacks.HorizontalSubset(r, 0.5, src)
	if err != nil {
		t.Fatal(err)
	}
	attacked = attacks.Resort(attacked, src)
	rep, err := rec.Verify(attacked)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Match < 1 {
		t.Fatalf("match %v after 50%% loss + shuffle", rep.Match)
	}
}

func TestVerifyAutoRemapRecovery(t *testing.T) {
	r, dom := coreData(t, 30000)
	rec, _, err := Watermark(r, Spec{
		Secret: "s", Attribute: "Item_Nbr", WM: "10110011", E: 40, Domain: dom,
	})
	if err != nil {
		t.Fatal(err)
	}
	remapped, _, err := attacks.BijectiveRemap(r, "Item_Nbr", stats.NewSource("core-remap"))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := rec.Verify(remapped)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.RemapRecovered {
		t.Fatal("remap recovery did not trigger")
	}
	if rep.Match < 0.7 {
		t.Fatalf("match %v after remap recovery", rep.Match)
	}
	// The suspect relation itself must be untouched by verification.
	v, _ := remapped.Value(0, "Item_Nbr")
	if !strings.HasPrefix(v, "M_") {
		t.Fatal("Verify modified the suspect relation")
	}
}

func TestWatermarkWithFrequencyChannel(t *testing.T) {
	r, dom := coreData(t, 30000)
	rec, st, err := Watermark(r, Spec{
		Secret: "s", Attribute: "Item_Nbr", WM: "101101", E: 50, Domain: dom,
		WithFrequencyChannel: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.FrequencyMoved == 0 {
		t.Fatal("frequency channel moved nothing")
	}
	rep, err := rec.Verify(r)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Match < 0.9 {
		t.Fatalf("primary match %v with frequency channel enabled", rep.Match)
	}
	if rep.FrequencyMatch < 0.9 {
		t.Fatalf("frequency match %v", rep.FrequencyMatch)
	}
}

func TestWatermarkAlterationBudget(t *testing.T) {
	r, dom := coreData(t, 12000)
	orig := r.Clone()
	_, st, err := Watermark(r, Spec{
		Secret: "s", Attribute: "Item_Nbr", WM: "1011", E: 20, Domain: dom,
		MaxAlterationFraction: 0.005, // 60 tuples
	})
	if err != nil {
		t.Fatal(err)
	}
	changed := 0
	for i := 0; i < r.Len(); i++ {
		a, _ := r.Value(i, "Item_Nbr")
		b, _ := orig.Value(i, "Item_Nbr")
		if a != b {
			changed++
		}
	}
	if changed > 60 {
		t.Fatalf("changed %d tuples, budget 60", changed)
	}
	if st.Mark.SkippedQuality == 0 {
		t.Fatal("budget never engaged")
	}
}

func TestWatermarkSpecValidation(t *testing.T) {
	r, dom := coreData(t, 1000)
	cases := []Spec{
		{Secret: "", Attribute: "Item_Nbr", WM: "1010"},
		{Secret: "s", Attribute: "Item_Nbr", WM: ""},
		{Secret: "s", Attribute: "Item_Nbr", WM: "10a0"},
		{Secret: "s", Attribute: "ghost", WM: "1010"},
	}
	for i, spec := range cases {
		spec.Domain = dom
		if spec.Attribute == "ghost" {
			spec.Domain = nil
		}
		if _, _, err := Watermark(r.Clone(), spec); err == nil {
			t.Errorf("spec %d accepted", i)
		}
	}
}

func TestRecordSaveLoad(t *testing.T) {
	r, dom := coreData(t, 6000)
	rec, _, err := Watermark(r, Spec{
		Secret: "persist", Attribute: "Item_Nbr", WM: "110010", E: 40, Domain: dom,
	})
	if err != nil {
		t.Fatal(err)
	}
	data, err := rec.Save()
	if err != nil {
		t.Fatal(err)
	}
	back, err := LoadRecord(data)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := back.Verify(r)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Match != 1 {
		t.Fatalf("match %v after record round trip", rep.Match)
	}
}

func TestLoadRecordErrors(t *testing.T) {
	if _, err := LoadRecord([]byte("{not json")); err == nil {
		t.Error("bad JSON accepted")
	}
	if _, err := LoadRecord([]byte("{}")); err == nil {
		t.Error("empty record accepted")
	}
}

func TestVerifyWrongSecretFails(t *testing.T) {
	r, dom := coreData(t, 12000)
	rec, _, err := Watermark(r, Spec{
		Secret: "right", Attribute: "Item_Nbr", WM: "1011001110", E: 50, Domain: dom,
	})
	if err != nil {
		t.Fatal(err)
	}
	stolen := *rec
	stolen.Secret = "wrong"
	rep, err := stolen.Verify(r)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Match == 1 {
		t.Fatal("wrong secret produced a perfect match")
	}
}
