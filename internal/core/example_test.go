package core_test

import (
	"fmt"
	"log"
	"strconv"

	"repro/internal/core"
	"repro/internal/relation"
)

// The complete ownership-protection flow: watermark a relation, keep the
// certificate, verify a suspect copy years later.
func Example() {
	// A sales relation: order id (primary key) + categorical region code.
	schema := relation.MustSchema([]relation.Attribute{
		{Name: "order_id", Type: relation.TypeInt},
		{Name: "region", Type: relation.TypeString, Categorical: true},
	}, "order_id")
	regions := []string{"EMEA", "APAC", "LATAM", "NA-E", "NA-W", "AFR"}
	r := relation.New(schema)
	for i := 0; i < 3000; i++ {
		r.MustAppend(relation.Tuple{strconv.Itoa(1000 + i), regions[i%len(regions)]})
	}

	rec, stats, err := core.Watermark(r, core.Spec{
		Secret:    "acme-owner-passphrase",
		Attribute: "region",
		WM:        "10110011",
		E:         20,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("altered %d of %d tuples\n", stats.Mark.Altered, r.Len())

	// Verification needs only the certificate and the suspect data.
	rep, err := rec.Verify(r)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("detected %s with %.0f%% agreement\n", rep.Detected, rep.Match*100)
	// Output:
	// altered 123 of 3000 tuples
	// detected 10110011 with 100% agreement
}
