package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"reflect"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/relation"
)

// TestScannerCacheConcurrentVerifyBatch hammers one small shared cache
// from concurrent whole-catalog VerifyBatch calls — the wmserver audit
// pattern — and checks, under -race in CI, that every report stays
// bit-identical to the uncached pass and that the hit/miss accounting
// stays consistent with the number of lookups while evictions churn.
func TestScannerCacheConcurrentVerifyBatch(t *testing.T) {
	suspect, records := batchTestCatalog(t, 2000, 8)
	want, err := VerifyBatch(context.Background(), records, relation.Rows(suspect), BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}

	const goroutines, iters = 6, 5
	cache := NewScannerCache(3) // far smaller than the catalog: constant eviction
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < iters; iter++ {
				got, err := VerifyBatch(context.Background(), records, relation.Rows(suspect),
					BatchOptions{Workers: 2, Cache: cache})
				if err != nil {
					errs <- err
					return
				}
				for i := range got {
					if got[i].Err != nil {
						errs <- fmt.Errorf("g%d record %d: %w", g, i, got[i].Err)
						return
					}
					if !reflect.DeepEqual(got[i].Report, want[i].Report) {
						errs <- fmt.Errorf("g%d record %d: cached batch report diverged", g, i)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st := cache.Stats()
	if st.Entries > 3 {
		t.Fatalf("cache exceeded its bound: %+v", st)
	}
	// Every VerifyBatch prepares each certificate exactly once, so the
	// lookup ledger must balance: hits + misses == calls × catalog size.
	// (Duplicate derivations after a racy miss count as misses too — the
	// invariant still holds because the ledger is bumped per lookup, not
	// per insertion.)
	lookups := uint64(goroutines * iters * len(records))
	if st.Hits+st.Misses != lookups {
		t.Fatalf("hit/miss ledger inconsistent: %d + %d != %d lookups (%+v)",
			st.Hits, st.Misses, lookups, st)
	}
	if st.Misses < uint64(len(records)) {
		t.Fatalf("fewer misses than certificates — first derivations unaccounted: %+v", st)
	}
}

// countingReader serves synthetic rows and cancels the attached context
// after gateAt rows — the core-level twin of the pipeline cancellation
// test, driven through VerifyBatch.
type countingReader struct {
	schema *relation.Schema
	total  int
	gateAt int
	cancel context.CancelFunc
	served atomic.Int64
}

func (c *countingReader) Schema() *relation.Schema { return c.schema }

func (c *countingReader) Read() (relation.Tuple, error) {
	n := int(c.served.Add(1))
	if n > c.total {
		return nil, io.EOF
	}
	if n == c.gateAt && c.cancel != nil {
		c.cancel()
	}
	return relation.Tuple{strconv.Itoa(n), strconv.Itoa(n % 7)}, nil
}

// TestVerifyBatchCancelledMidScan asserts a cancelled context fails the
// audit with ctx.Err() and stops pulling suspect rows well before the
// stream drains — the property job cancellation and client disconnects
// rely on.
func TestVerifyBatchCancelledMidScan(t *testing.T) {
	_, records := batchTestCatalog(t, 2000, 4)
	schema, err := relation.ParseSchemaSpec("Visit_Nbr:int!key, Item_Nbr:int:categorical")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const total = 400_000
	src := &countingReader{schema: schema, total: total, gateAt: 5_000, cancel: cancel}

	_, err = VerifyBatch(ctx, records, src, BatchOptions{Workers: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("VerifyBatch after cancel: err = %v, want context.Canceled", err)
	}
	if served := src.served.Load(); served >= total {
		t.Fatalf("reader was drained (%d rows) despite cancellation", served)
	}
}

// TestVerifyContextCancelled asserts the materialized verify path honors
// an already-cancelled context instead of scanning.
func TestVerifyContextCancelled(t *testing.T) {
	suspect, records := batchTestCatalog(t, 2000, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := records[0].VerifyContext(ctx, suspect, VerifyOptions{Workers: 4}); !errors.Is(err, context.Canceled) {
		t.Fatalf("VerifyContext under cancelled ctx: err = %v, want context.Canceled", err)
	}
	if _, _, err := WatermarkContext(ctx, suspect, Spec{
		Secret: "cancelled", Attribute: "Item_Nbr", WM: "1011", E: 20, Workers: 4,
	}); !errors.Is(err, context.Canceled) {
		t.Fatalf("WatermarkContext under cancelled ctx: err = %v, want context.Canceled", err)
	}
}
