// Package core is the high-level entry point to the categorical
// watermarking system: it bundles everything an owner must do — and must
// retain — into two calls and one serializable artifact.
//
//	rec, stats, err := core.Watermark(rel, core.Spec{
//	    Secret:    "owner-passphrase",
//	    Attribute: "Item_Nbr",
//	    WM:        "1011001110",
//	    E:         65,
//	})
//	// … years later, on a suspect copy, with only the record …
//	rep, err := rec.Verify(suspect)
//
// The Record is the owner's watermark certificate. It contains the secret
// passphrase, the channel parameters fixed at embedding time (e, bandwidth,
// the value domain), the registered frequency profile for remap recovery,
// and the expected bits. It serialises to JSON; whoever holds it can prove
// ownership, so it is exactly as secret as the keys themselves.
//
// Underneath, core composes the paper's channels: the (K, A) association
// codec of internal/mark (Section 3.2), the frequency-domain channel of
// internal/freq (Section 4.2) as a secondary witness, and the remap
// recovery of Section 4.5 during verification.
package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"

	"repro/internal/ecc"
	"repro/internal/freq"
	"repro/internal/keyhash"
	"repro/internal/mark"
	"repro/internal/pipeline"
	"repro/internal/quality"
	"repro/internal/relation"
)

// Spec is what the owner chooses before watermarking.
type Spec struct {
	// Secret is the master passphrase; k1, k2 and the frequency-channel
	// key derive from it.
	Secret string
	// Attribute is the categorical attribute to watermark.
	Attribute string
	// KeyAttr optionally overrides the key attribute (default: the
	// relation's primary key).
	KeyAttr string
	// WM is the watermark bit string, e.g. "1011001110".
	WM string
	// E is the fitness parameter (default 60).
	E uint64
	// Domain optionally fixes the value catalog; nil derives it from the
	// data and stores it in the record.
	Domain *relation.Domain
	// WithFrequencyChannel additionally embeds the watermark into the
	// attribute's occurrence histogram, surviving extreme vertical
	// partitions (Section 4.2). Costs extra tuple moves.
	WithFrequencyChannel bool
	// MaxAlterationFraction bounds total data change; 0 means unlimited.
	// Enforced through the Section 4.1 quality assessor.
	MaxAlterationFraction float64
	// Workers selects the execution engine for the key-association
	// channel: 0 or 1 runs the sequential pass, >1 runs the chunked
	// worker pool of internal/pipeline with that many workers, and any
	// negative value means runtime.NumCPU(). Quality-gated embedding
	// (MaxAlterationFraction > 0) is order-dependent and always runs
	// sequentially.
	Workers int
	// HashKernel selects the batched keyed-hash backend of the
	// block-at-a-time engine (keyhash.KernelAuto, KernelPortable or
	// KernelMultiBuffer). The zero value picks the fastest backend this
	// CPU supports; the choice never changes a digest, a certificate or
	// a verdict — only throughput.
	HashKernel keyhash.KernelKind
	// BlockSize is the number of tuples per scan block fed through the
	// hash kernel (pipeline.Config.BlockRows). 0 means
	// mark.DefaultBlockRows; results are bit-identical at every size.
	BlockSize int
	// Progress, when non-nil, observes the embedding pass: it receives
	// the tuple count of each completed block, concurrently from worker
	// goroutines. Async jobs aggregate it into their tuples-processed
	// counter.
	Progress func(tuples int)
}

// workerCount normalizes a Spec.Workers-style knob: 0 → sequential,
// negative → NumCPU.
func workerCount(w int) int {
	if w == 0 {
		return 1
	}
	if w < 0 {
		return runtime.NumCPU()
	}
	return w
}

// Stats reports what Watermark changed.
type Stats struct {
	// Mark is the key-association channel's statistics.
	Mark mark.EmbedStats
	// FrequencyMoved counts tuples moved by the frequency channel.
	FrequencyMoved int
}

// Record is the owner's watermark certificate — everything needed for
// later verification, and nothing that can be reconstructed from the data.
type Record struct {
	Secret    string   `json:"secret"`
	Attribute string   `json:"attribute"`
	KeyAttr   string   `json:"key_attr,omitempty"`
	WM        string   `json:"wm"`
	E         uint64   `json:"e"`
	Bandwidth int      `json:"bandwidth"`
	Domain    []string `json:"domain"`
	// Profile is the post-embedding frequency profile, kept for
	// Section 4.5 bijective-remap recovery.
	Profile map[string]float64 `json:"profile"`
	// HasFrequencyChannel records whether the histogram carries a copy.
	HasFrequencyChannel bool `json:"has_frequency_channel"`
}

func (s Spec) keys() (k1, k2 keyhash.Key) {
	return keyhash.NewKey(s.Secret + "|core-k1"), keyhash.NewKey(s.Secret + "|core-k2")
}

func (s Spec) freqKey() keyhash.Key {
	return keyhash.NewKey(s.Secret + "|core-freq")
}

// Watermark embeds per the spec, mutating r, and returns the certificate.
// It is WatermarkContext with a background context — embedding cannot be
// cancelled mid-pass through this entry point.
func Watermark(r *relation.Relation, s Spec) (*Record, Stats, error) {
	//wmlint:ignore ctxloop compatibility entry point documented as uncancellable; WatermarkContext is the cancellable path
	return WatermarkContext(context.Background(), r, s)
}

// WatermarkContext is Watermark under a caller-controlled context: a
// cancelled ctx stops the chunked embedding pass between chunks and
// returns ctx.Err(). This is the entry point of the async job executor
// and the HTTP handlers, where a disconnected client or a cancelled job
// must stop burning CPU. Note a cancelled embedding may have already
// altered part of r — callers discard the relation on error.
func WatermarkContext(ctx context.Context, r *relation.Relation, s Spec) (*Record, Stats, error) {
	var st Stats
	if s.Secret == "" {
		return nil, st, errors.New("core: empty secret")
	}
	wm, err := ecc.ParseBits(s.WM)
	if err != nil {
		return nil, st, err
	}
	if len(wm) == 0 {
		return nil, st, errors.New("core: empty watermark")
	}
	e := s.E
	if e == 0 {
		e = 60
	}
	dom := s.Domain
	if dom == nil {
		dom, err = relation.DomainOf(r, s.Attribute)
		if err != nil {
			return nil, st, err
		}
	}
	var assessor *quality.Assessor
	if s.MaxAlterationFraction > 0 {
		assessor = quality.NewAssessor(
			quality.MaxAlterationFraction(s.MaxAlterationFraction, r.Len()),
			quality.ValueDomain(s.Attribute, dom),
		)
	}
	k1, k2 := s.keys()
	opts := mark.Options{
		KeyAttr:    s.KeyAttr,
		Attr:       s.Attribute,
		K1:         k1,
		K2:         k2,
		E:          e,
		Domain:     dom,
		Assessor:   assessor,
		HashKernel: s.HashKernel,
	}
	mst, err := pipeline.Embed(ctx, r, wm, opts, pipeline.Config{
		Workers:   workerCount(s.Workers),
		BlockRows: s.BlockSize,
		Progress:  s.Progress,
	})
	if err != nil {
		return nil, st, err
	}
	st.Mark = mst

	if s.WithFrequencyChannel {
		fp := freq.DefaultParams(s.freqKey())
		fp.Assessor = assessor
		fst, err := freq.Embed(r, s.Attribute, wm, fp)
		if err != nil {
			return nil, st, fmt.Errorf("core: frequency channel: %w", err)
		}
		st.FrequencyMoved = fst.TuplesMoved
	}

	profile, err := freq.ProfileOf(r, s.Attribute)
	if err != nil {
		return nil, st, err
	}
	rec := &Record{
		Secret:              s.Secret,
		Attribute:           s.Attribute,
		KeyAttr:             s.KeyAttr,
		WM:                  wm.String(),
		E:                   e,
		Bandwidth:           mst.Bandwidth,
		Domain:              dom.Values(),
		Profile:             profile,
		HasFrequencyChannel: s.WithFrequencyChannel,
	}
	return rec, st, nil
}

// Verdict thresholds on Report.Match, shared by every surface (CLI,
// HTTP API) so a recalibration cannot leave them disagreeing: at least
// PresentThreshold is a positive ownership verdict, at least
// PartialThreshold a partial match (heavily attacked or partly related
// data), anything lower is no evidence.
const (
	PresentThreshold = 0.9
	PartialThreshold = 0.7
)

// Report is a verification outcome.
type Report struct {
	// Match is the fraction of watermark bits recovered through the
	// primary (key-association) channel; 1.0 is a perfect match.
	Match float64
	// Detected is the recovered bit string.
	Detected string
	// RemapRecovered is true when straight detection failed on unknown
	// values and a Section 4.5 frequency-profile inverse mapping was
	// applied first.
	RemapRecovered bool
	// FrequencyMatch is the match through the frequency channel, when the
	// record carries one and the channel decoded (−1 otherwise).
	FrequencyMatch float64
	// Primary is the raw detection report of the primary channel.
	Primary mark.DetectReport
}

// Verify blindly detects the certificate's watermark in a suspect
// relation. It tries the primary channel; if the suspect's values do not
// resolve in the recorded domain (a bijective remap, attack A6), it
// recovers an inverse mapping from the recorded frequency profile and
// retries. The frequency channel, when present, is scored as a secondary
// witness. The suspect relation is never modified.
func (rec *Record) Verify(suspect *relation.Relation) (Report, error) {
	//wmlint:ignore ctxloop compatibility entry point; VerifyContext is the cancellable path
	return rec.verify(context.Background(), suspect, VerifyOptions{})
}

// VerifyParallel is Verify with the detection scans chunked across a
// worker pool (see internal/pipeline). workers follows the Spec.Workers
// convention: 0 or 1 runs sequentially, > 1 uses that many goroutines,
// negative means runtime.NumCPU(). The recovered bit string is
// bit-identical to Verify's.
func (rec *Record) VerifyParallel(suspect *relation.Relation, workers int) (Report, error) {
	//wmlint:ignore ctxloop compatibility entry point; VerifyContext is the cancellable path
	return rec.verify(context.Background(), suspect, VerifyOptions{Workers: workers})
}

// VerifyOptions parameterises VerifyWith.
type VerifyOptions struct {
	// Workers follows the Spec.Workers convention (0/1 sequential,
	// negative = NumCPU).
	Workers int
	// Cache, when non-nil, reuses prepared certificate state across
	// verifies of the same record (see ScannerCache).
	Cache *ScannerCache
	// HashKernel selects the batched keyed-hash backend (see
	// Spec.HashKernel); verdicts are identical across backends.
	HashKernel keyhash.KernelKind
	// BlockSize is the scan-block size (see Spec.BlockSize).
	BlockSize int
}

// VerifyWith is Verify with an explicit worker count and an optional
// prepared-scanner cache; results are identical to Verify's.
func (rec *Record) VerifyWith(suspect *relation.Relation, o VerifyOptions) (Report, error) {
	//wmlint:ignore ctxloop compatibility entry point; VerifyContext is the cancellable path
	return rec.verify(context.Background(), suspect, o)
}

// VerifyContext is VerifyWith under a caller-controlled context: a
// cancelled ctx stops the detection scan between chunks and returns
// ctx.Err(). The suspect relation is never modified either way.
func (rec *Record) VerifyContext(ctx context.Context, suspect *relation.Relation, o VerifyOptions) (Report, error) {
	return rec.verify(ctx, suspect, o)
}

func (rec *Record) verify(ctx context.Context, suspect *relation.Relation, o VerifyOptions) (Report, error) {
	var rep Report
	rep.FrequencyMatch = -1
	p, err := prepared(rec, o.Cache, o.HashKernel)
	if err != nil {
		return rep, err
	}
	want := p.want

	cfg := pipeline.Config{Workers: workerCount(o.Workers), BlockRows: o.BlockSize}
	working := suspect
	det, err := pipeline.Detect(ctx, working, len(want), p.opts, cfg)
	if err != nil {
		return rep, err
	}
	// Heuristic remap trigger: most fit tuples failed to resolve.
	if det.Fit > 0 && det.UnknownValues > det.Fit/2 && len(rec.Profile) > 0 {
		inverse, rerr := freq.RecoverMapping(suspect, rec.Attribute, freq.Profile(rec.Profile))
		if rerr == nil {
			working = suspect.Clone()
			if _, aerr := freq.ApplyMapping(working, rec.Attribute, inverse); aerr == nil {
				if det2, derr := pipeline.Detect(ctx, working, len(want), p.opts, cfg); derr == nil {
					det = det2
					rep.RemapRecovered = true
				}
			}
		}
	}
	if err := ctx.Err(); err != nil {
		return rep, err // a cancelled remap retry must not pass as a verdict
	}
	rep.Primary = det
	rep.Detected = det.WM.String()
	rep.Match = det.MatchFraction(want)

	if rec.HasFrequencyChannel {
		fp := freq.DefaultParams(Spec{Secret: rec.Secret}.freqKey())
		if frep, ferr := freq.Detect(working, rec.Attribute, len(want), fp); ferr == nil {
			rep.FrequencyMatch = 1 - ecc.AlterationRate(want, frep.WM)
		}
	}
	return rep, nil
}

// MarshalJSON-friendly persistence helpers.

// Save serialises the record to JSON.
func (rec *Record) Save() ([]byte, error) {
	return json.MarshalIndent(rec, "", "  ")
}

// LoadRecord parses a record saved with Save.
func LoadRecord(data []byte) (*Record, error) {
	var rec Record
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("core: parsing record: %w", err)
	}
	if rec.Secret == "" || rec.Attribute == "" || rec.WM == "" || rec.E == 0 {
		return nil, errors.New("core: record missing required fields")
	}
	return &rec, nil
}
