package core

import (
	"context"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/keyhash"
	"repro/internal/relation"
)

// TestVerifyBatchBlockKnobsEquivalence proves the Spec/BatchOptions
// knobs are pure execution strategy: every combination of hash kernel
// and block size — the tuple-at-a-time legacy engine included — returns
// reports bit-identical to the defaults, and the progress hook counts
// each suspect tuple exactly once per pass.
func TestVerifyBatchBlockKnobsEquivalence(t *testing.T) {
	suspect, records := batchTestCatalog(t, 3000, 5)
	var csv strings.Builder
	if err := relation.WriteCSV(&csv, suspect); err != nil {
		t.Fatal(err)
	}
	scan := func(opts BatchOptions) []BatchReport {
		t.Helper()
		src, err := relation.NewCSVRowReader(strings.NewReader(csv.String()), suspect.Schema())
		if err != nil {
			t.Fatal(err)
		}
		outs, err := VerifyBatch(context.Background(), records, src, opts)
		if err != nil {
			t.Fatal(err)
		}
		return outs
	}

	want := scan(BatchOptions{})
	if want[0].Err != nil || want[0].Report.Match != 1 {
		t.Fatalf("owner certificate should match: %+v", want[0])
	}

	kinds := []keyhash.KernelKind{keyhash.KernelAuto, keyhash.KernelPortable}
	if _, err := keyhash.NewKey("probe").NewKernel(keyhash.KernelMultiBuffer); err == nil {
		kinds = append(kinds, keyhash.KernelMultiBuffer)
	}
	for _, kind := range kinds {
		for _, blockSize := range []int{-1, 1, 37, 512, 1 << 20} {
			var ticks atomic.Int64
			got := scan(BatchOptions{
				Workers:    2,
				HashKernel: kind,
				BlockSize:  blockSize,
				Cache:      NewScannerCache(8),
				Progress:   func(tuples int) { ticks.Add(int64(tuples)) },
			})
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("kernel %q blockSize %d: batch reports diverged from defaults", kind, blockSize)
			}
			if ticks.Load() != int64(suspect.Len()) {
				t.Fatalf("kernel %q blockSize %d: progress %d, want %d",
					kind, blockSize, ticks.Load(), suspect.Len())
			}
		}
	}
}

// TestScannerCacheKeysByKernel proves prepared-state cache entries do
// not alias across hash-kernel kinds: the same certificate prepared
// under two kinds occupies two entries, and re-preparing under either
// hits.
func TestScannerCacheKeysByKernel(t *testing.T) {
	_, records := batchTestCatalog(t, 500, 1)
	rec := records[0]
	cache := NewScannerCache(8)
	if _, err := cache.prepared(rec, keyhash.KernelAuto); err != nil {
		t.Fatal(err)
	}
	if _, err := cache.prepared(rec, keyhash.KernelPortable); err != nil {
		t.Fatal(err)
	}
	st := cache.Stats()
	if st.Entries != 2 || st.Misses != 2 {
		t.Fatalf("want 2 entries / 2 misses, got %+v", st)
	}
	if _, err := cache.prepared(rec, keyhash.KernelPortable); err != nil {
		t.Fatal(err)
	}
	if st := cache.Stats(); st.Hits != 1 {
		t.Fatalf("want 1 hit after re-prepare, got %+v", st)
	}
}

// TestSpecHashKernelRejected pins the error path: an unknown kernel name
// fails watermarking up front instead of silently falling back.
func TestSpecHashKernelRejected(t *testing.T) {
	suspect, _ := batchTestCatalog(t, 300, 1)
	_, _, err := Watermark(suspect.Clone(), Spec{
		Secret:     "kernel-err",
		Attribute:  "Item_Nbr",
		WM:         "1011",
		E:          20,
		HashKernel: keyhash.KernelKind("bogus"),
	})
	if err == nil || !strings.Contains(err.Error(), "unknown hash kernel") {
		t.Fatalf("want unknown-kernel error, got %v", err)
	}
}
