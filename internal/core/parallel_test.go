package core

import (
	"testing"
)

// TestParallelWatermarkEqualsSequential: the Spec.Workers pipeline path
// must produce the identical watermarked relation, certificate and stats
// as the sequential default.
func TestParallelWatermarkEqualsSequential(t *testing.T) {
	seqRel, dom := coreData(t, 12000)
	parRel := seqRel.Clone()
	spec := Spec{
		Secret:    "parallel-owner-secret",
		Attribute: "Item_Nbr",
		WM:        "1011001110",
		E:         40,
		Domain:    dom,
	}

	seqRec, seqStats, err := Watermark(seqRel, spec)
	if err != nil {
		t.Fatal(err)
	}
	pSpec := spec
	pSpec.Workers = 4
	parRec, parStats, err := Watermark(parRel, pSpec)
	if err != nil {
		t.Fatal(err)
	}

	if !seqRel.Equal(parRel) {
		t.Fatal("parallel watermarking altered different tuples")
	}
	if seqStats != parStats {
		t.Fatalf("stats diverge:\nseq: %+v\npar: %+v", seqStats, parStats)
	}
	seqJSON, err := seqRec.Save()
	if err != nil {
		t.Fatal(err)
	}
	parJSON, err := parRec.Save()
	if err != nil {
		t.Fatal(err)
	}
	if string(seqJSON) != string(parJSON) {
		t.Fatalf("certificates diverge:\nseq: %s\npar: %s", seqJSON, parJSON)
	}
}

// TestVerifyParallelBitIdentical: parallel verification must recover the
// identical bit string as Verify, marked or unmarked data alike.
func TestVerifyParallelBitIdentical(t *testing.T) {
	r, dom := coreData(t, 12000)
	pristine := r.Clone()
	rec, _, err := Watermark(r, Spec{
		Secret:    "parallel-owner-secret",
		Attribute: "Item_Nbr",
		WM:        "1011001110",
		E:         40,
		Domain:    dom,
	})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := rec.Verify(r)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 7, -1, 0} {
		par, err := rec.VerifyParallel(r, workers)
		if err != nil {
			t.Fatal(err)
		}
		if par.Detected != seq.Detected || par.Match != seq.Match {
			t.Fatalf("workers=%d: parallel %q (%v), sequential %q (%v)",
				workers, par.Detected, par.Match, seq.Detected, seq.Match)
		}
	}

	seqP, err := rec.Verify(pristine)
	if err != nil {
		t.Fatal(err)
	}
	parP, err := rec.VerifyParallel(pristine, 4)
	if err != nil {
		t.Fatal(err)
	}
	if parP.Detected != seqP.Detected || parP.Match != seqP.Match {
		t.Fatalf("unmarked data: parallel %q (%v), sequential %q (%v)",
			parP.Detected, parP.Match, seqP.Detected, seqP.Match)
	}
}
