// Package numeric re-implements the numeric-set watermarking scheme of
// Sion, Atallah & Prabhakar, "On Watermarking Numeric Sets" (IWDW 2002) —
// reference [10] of the categorical-data paper — to the extent Section 4.2
// depends on it: a bit encoder over a set of labelled numeric values that
// minimises absolute data change.
//
// Scheme: items are secretly partitioned into |wm| subsets by a keyed hash
// of their labels. Each subset S encodes one bit in its "confidence
// violators" statistic
//
//	v(S) = |{ x ∈ S : x > μ(S) + c·σ(S) }| / |S|
//
// To encode 1 the encoder nudges the items nearest the cut until
// v ≥ v_true; to encode 0 until v ≤ v_false. Nudges move a value just
// across the μ+c·σ boundary, so the absolute change per moved item is
// minimal. Decoding recomputes v and compares against the midpoint
// (v_true + v_false)/2, leaving a noise margin on both sides.
//
// The categorical paper applies this encoder to the value-occurrence
// histogram [f_A(a_i)] (Section 4.2), where minimising absolute change in
// frequency space minimises the number of categorical tuples rewritten.
package numeric

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/ecc"
	"repro/internal/keyhash"
)

// Item is a labelled numeric value. Labels drive subset assignment and
// must be stable across embedding and detection (for the frequency channel
// they are the categorical values themselves, which survive attacks that
// preserve any utility).
type Item struct {
	Label string
	Value float64
}

// Params configures the encoder.
type Params struct {
	// Key drives the secret subset partitioning.
	Key keyhash.Key
	// Confidence is the cut multiplier c in v_c = μ + c·σ. Typical 0.5.
	Confidence float64
	// VTrue is the violator fraction at/above which a subset reads 1.
	VTrue float64
	// VFalse is the violator fraction at/below which a subset reads 0.
	VFalse float64
	// MaxIterations caps the per-subset encoding loop; 0 means 4·|S|+16.
	MaxIterations int
	// MinStep is a lower bound on the nudge distance. Callers whose values
	// are later quantised (e.g. frequencies that round back to integer
	// counts) set this to ≥ 1.5 quantisation units so rounding cannot pull
	// a nudged item back across the cut. 0 disables the bound.
	MinStep float64
}

// DefaultParams returns the parameter set used by the frequency-domain
// channel: c=0.5 with a (0.15, 0.35) decision gap.
func DefaultParams(key keyhash.Key) Params {
	return Params{Key: key, Confidence: 0.5, VTrue: 0.35, VFalse: 0.15}
}

func (p Params) validate() error {
	if err := p.Key.Validate(); err != nil {
		return fmt.Errorf("numeric: %w", err)
	}
	if p.Confidence < 0 {
		return errors.New("numeric: negative confidence factor")
	}
	if !(0 <= p.VFalse && p.VFalse < p.VTrue && p.VTrue <= 1) {
		return fmt.Errorf("numeric: need 0 <= v_false < v_true <= 1, got (%v, %v)",
			p.VFalse, p.VTrue)
	}
	return nil
}

// Group returns the subset index of a label for a wmLen-bit watermark.
func Group(key keyhash.Key, label string, wmLen int) int {
	return int(keyhash.HashString(key, label).Mod(uint64(wmLen)))
}

// EncodeStats reports what Encode did.
type EncodeStats struct {
	// Moved is the number of item values altered.
	Moved int
	// TotalChange is Σ|new − old| over moved items.
	TotalChange float64
	// Failed lists watermark bit indices whose subsets could not reach the
	// target statistic (too few items or non-convergence). Detection of
	// those bits is unreliable.
	Failed []int
}

// subsetStats computes mean, stddev and the violator statistic for the cut.
func subsetStats(vals []float64, c float64) (mu, sigma, cut float64, violators int) {
	n := float64(len(vals))
	for _, v := range vals {
		mu += v
	}
	mu /= n
	for _, v := range vals {
		d := v - mu
		sigma += d * d
	}
	sigma = math.Sqrt(sigma / n)
	cut = mu + c*sigma
	for _, v := range vals {
		if v > cut {
			violators++
		}
	}
	return
}

// Encode returns a copy of items watermarked with wm. Values move by the
// minimum needed to push each subset's violator statistic across its
// target; labels and item order are preserved.
func Encode(items []Item, wm ecc.Bits, p Params) ([]Item, EncodeStats, error) {
	var st EncodeStats
	if err := p.validate(); err != nil {
		return nil, st, err
	}
	if len(wm) == 0 {
		return nil, st, errors.New("numeric: empty watermark")
	}
	for i, b := range wm {
		if b != ecc.Zero && b != ecc.One {
			return nil, st, fmt.Errorf("numeric: watermark bit %d is not 0/1", i)
		}
	}
	if len(items) < len(wm) {
		return nil, st, fmt.Errorf("numeric: %d items cannot carry %d bits", len(items), len(wm))
	}

	out := append([]Item(nil), items...)
	groups := make([][]int, len(wm)) // wm bit -> item indices
	for i, it := range out {
		g := Group(p.Key, it.Label, len(wm))
		groups[g] = append(groups[g], i)
	}

	for g, idxs := range groups {
		if len(idxs) == 0 {
			st.Failed = append(st.Failed, g)
			continue
		}
		if ok := encodeSubset(out, idxs, wm[g] == ecc.One, p, &st); !ok {
			st.Failed = append(st.Failed, g)
		}
	}
	return out, st, nil
}

// encodeSubset drives subset idxs of out to carry the given bit. Returns
// false on non-convergence.
func encodeSubset(out []Item, idxs []int, one bool, p Params, st *EncodeStats) bool {
	maxIter := p.MaxIterations
	if maxIter <= 0 {
		maxIter = 4*len(idxs) + 16
	}
	for iter := 0; iter < maxIter; iter++ {
		vals := make([]float64, len(idxs))
		for i, idx := range idxs {
			vals[i] = out[idx].Value
		}
		_, sigma, cut, violators := subsetStats(vals, p.Confidence)
		v := float64(violators) / float64(len(idxs))
		if one && v >= p.VTrue {
			return true
		}
		if !one && v <= p.VFalse {
			return true
		}
		// Nudge distance: a hair beyond the cut, scaled to the data.
		eps := sigma * 0.01
		if eps == 0 {
			eps = math.Max(math.Abs(cut)*0.001, 1e-9)
		}
		if eps < p.MinStep {
			eps = p.MinStep
		}
		if one {
			// Need more violators: lift the non-violator closest to the cut.
			best, bestGap := -1, math.Inf(1)
			for _, idx := range idxs {
				if out[idx].Value <= cut {
					if gap := cut - out[idx].Value; gap < bestGap {
						best, bestGap = idx, gap
					}
				}
			}
			if best < 0 {
				return false // everything already violates yet v < VTrue: |S| too small
			}
			old := out[best].Value
			out[best].Value = cut + eps
			st.Moved++
			st.TotalChange += math.Abs(out[best].Value - old)
		} else {
			// Need fewer violators: drop the violator closest to the cut.
			best, bestGap := -1, math.Inf(1)
			for _, idx := range idxs {
				if out[idx].Value > cut {
					if gap := out[idx].Value - cut; gap < bestGap {
						best, bestGap = idx, gap
					}
				}
			}
			if best < 0 {
				return false
			}
			old := out[best].Value
			out[best].Value = cut - eps
			st.Moved++
			st.TotalChange += math.Abs(out[best].Value - old)
		}
	}
	return false
}

// DecodeReport is the outcome of Decode.
type DecodeReport struct {
	// WM is the recovered watermark; subsets with no items decode Erased.
	WM ecc.Bits
	// Violators is the raw v(S) statistic per bit, for diagnostics.
	Violators []float64
	// Empty counts subsets with no items.
	Empty int
}

// Decode recovers a wmLen-bit watermark from items.
func Decode(items []Item, wmLen int, p Params) (DecodeReport, error) {
	var rep DecodeReport
	if err := p.validate(); err != nil {
		return rep, err
	}
	if wmLen <= 0 {
		return rep, errors.New("numeric: non-positive watermark length")
	}
	groups := make([][]float64, wmLen)
	for _, it := range items {
		g := Group(p.Key, it.Label, wmLen)
		groups[g] = append(groups[g], it.Value)
	}
	rep.WM = make(ecc.Bits, wmLen)
	rep.Violators = make([]float64, wmLen)
	mid := (p.VTrue + p.VFalse) / 2
	for g, vals := range groups {
		if len(vals) == 0 {
			rep.WM[g] = ecc.Erased
			rep.Empty++
			continue
		}
		_, _, _, violators := subsetStats(vals, p.Confidence)
		v := float64(violators) / float64(len(vals))
		rep.Violators[g] = v
		if v >= mid {
			rep.WM[g] = ecc.One
		} else {
			rep.WM[g] = ecc.Zero
		}
	}
	return rep, nil
}

// SortByLabel returns a copy of items sorted by label, for deterministic
// iteration in callers and tests.
func SortByLabel(items []Item) []Item {
	out := append([]Item(nil), items...)
	sort.Slice(out, func(i, j int) bool { return out[i].Label < out[j].Label })
	return out
}
