package numeric

import (
	"math"
	"strconv"
	"testing"

	"repro/internal/ecc"
	"repro/internal/keyhash"
	"repro/internal/stats"
)

func makeItems(seed string, n int) []Item {
	src := stats.NewSource("numeric-test/" + seed)
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{
			Label: "label-" + strconv.Itoa(i),
			Value: 100 + 20*src.NormFloat64(),
		}
	}
	return items
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	items := makeItems("rt", 400)
	p := DefaultParams(keyhash.NewKey("numeric-key"))
	wm := ecc.MustParseBits("10110100")
	marked, st, err := Encode(items, wm, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Failed) != 0 {
		t.Fatalf("failed subsets: %v", st.Failed)
	}
	if st.Moved == 0 {
		t.Fatal("nothing moved — encoding was free, suspicious")
	}
	rep, err := Decode(marked, len(wm), p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.WM.String() != wm.String() {
		t.Fatalf("round trip: %s vs %s", wm, rep.WM)
	}
}

func TestEncodePreservesLabelsAndOrder(t *testing.T) {
	items := makeItems("order", 100)
	p := DefaultParams(keyhash.NewKey("k"))
	marked, _, err := Encode(items, ecc.MustParseBits("1010"), p)
	if err != nil {
		t.Fatal(err)
	}
	if len(marked) != len(items) {
		t.Fatal("length changed")
	}
	for i := range items {
		if marked[i].Label != items[i].Label {
			t.Fatalf("label %d changed", i)
		}
	}
}

func TestEncodeDoesNotMutateInput(t *testing.T) {
	items := makeItems("immutable", 100)
	before := append([]Item(nil), items...)
	p := DefaultParams(keyhash.NewKey("k"))
	if _, _, err := Encode(items, ecc.MustParseBits("1100"), p); err != nil {
		t.Fatal(err)
	}
	for i := range items {
		if items[i] != before[i] {
			t.Fatal("Encode mutated its input")
		}
	}
}

func TestEncodeMinimality(t *testing.T) {
	// Total change should be small relative to the data scale: the scheme
	// nudges values just across the cut rather than rewriting them.
	items := makeItems("minimal", 400)
	p := DefaultParams(keyhash.NewKey("k"))
	_, st, err := Encode(items, ecc.MustParseBits("10110100"), p)
	if err != nil {
		t.Fatal(err)
	}
	perMove := st.TotalChange / math.Max(1, float64(st.Moved))
	// Values are N(100, 20); a per-move change above ~2σ would mean the
	// encoder is leaping, not nudging.
	if perMove > 40 {
		t.Fatalf("mean change per moved item %v too large", perMove)
	}
}

func TestDecodeRobustToSmallNoise(t *testing.T) {
	items := makeItems("noise", 600)
	p := DefaultParams(keyhash.NewKey("k"))
	wm := ecc.MustParseBits("110010")
	marked, _, err := Encode(items, wm, p)
	if err != nil {
		t.Fatal(err)
	}
	// Perturb every value by a small relative amount (sampling noise after
	// an A1 attack on the underlying relation).
	src := stats.NewSource("noise-gen")
	noisy := append([]Item(nil), marked...)
	for i := range noisy {
		noisy[i].Value *= 1 + 0.002*(src.Float64()-0.5)
	}
	rep, err := Decode(noisy, len(wm), p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.WM.String() != wm.String() {
		t.Fatalf("small noise broke decode: %s vs %s", wm, rep.WM)
	}
}

func TestDecodeEmptySubsetErased(t *testing.T) {
	// Single item: all other subsets are empty.
	items := []Item{{Label: "only", Value: 5}}
	p := DefaultParams(keyhash.NewKey("k"))
	rep, err := Decode(items, 4, p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Empty != 3 {
		t.Fatalf("empty subsets %d, want 3", rep.Empty)
	}
	erased := 0
	for _, b := range rep.WM {
		if b == ecc.Erased {
			erased++
		}
	}
	if erased != 3 {
		t.Fatalf("erased bits %d, want 3", erased)
	}
}

func TestEncodeFailsTinySubsets(t *testing.T) {
	// 8 items across 8 bits: subsets of ~1 item mostly cannot reach the
	// violator targets; failures must be reported, not silent.
	items := makeItems("tiny", 8)
	p := DefaultParams(keyhash.NewKey("k"))
	_, st, err := Encode(items, ecc.MustParseBits("10101010"), p)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Failed) == 0 {
		t.Fatal("no failures reported for starved subsets")
	}
}

func TestParamValidation(t *testing.T) {
	items := makeItems("v", 50)
	wm := ecc.MustParseBits("10")
	bad := []Params{
		{Key: nil, Confidence: 1, VTrue: 0.3, VFalse: 0.1},
		{Key: keyhash.NewKey("k"), Confidence: -1, VTrue: 0.3, VFalse: 0.1},
		{Key: keyhash.NewKey("k"), Confidence: 1, VTrue: 0.1, VFalse: 0.3},
		{Key: keyhash.NewKey("k"), Confidence: 1, VTrue: 1.5, VFalse: 0.1},
	}
	for i, p := range bad {
		if _, _, err := Encode(items, wm, p); err == nil {
			t.Errorf("params %d accepted by Encode", i)
		}
		if _, err := Decode(items, 2, p); err == nil {
			t.Errorf("params %d accepted by Decode", i)
		}
	}
}

func TestEncodeArgErrors(t *testing.T) {
	p := DefaultParams(keyhash.NewKey("k"))
	items := makeItems("a", 10)
	if _, _, err := Encode(items, ecc.Bits{}, p); err == nil {
		t.Error("empty wm accepted")
	}
	if _, _, err := Encode(items, ecc.Bits{ecc.Erased}, p); err == nil {
		t.Error("erased wm bit accepted")
	}
	if _, _, err := Encode(items[:1], ecc.MustParseBits("1010"), p); err == nil {
		t.Error("more bits than items accepted")
	}
	if _, err := Decode(items, 0, p); err == nil {
		t.Error("zero wmLen accepted")
	}
}

func TestGroupStability(t *testing.T) {
	key := keyhash.NewKey("group")
	for i := 0; i < 50; i++ {
		label := "x" + strconv.Itoa(i)
		g1 := Group(key, label, 10)
		g2 := Group(key, label, 10)
		if g1 != g2 || g1 < 0 || g1 >= 10 {
			t.Fatalf("Group unstable or out of range: %d vs %d", g1, g2)
		}
	}
}

func TestGroupKeyDependence(t *testing.T) {
	a, b := keyhash.NewKey("ga"), keyhash.NewKey("gb")
	diff := 0
	for i := 0; i < 200; i++ {
		label := "l" + strconv.Itoa(i)
		if Group(a, label, 16) != Group(b, label, 16) {
			diff++
		}
	}
	if diff < 150 {
		t.Fatalf("groups barely depend on key: %d/200 differ", diff)
	}
}

func TestSortByLabel(t *testing.T) {
	items := []Item{{"c", 1}, {"a", 2}, {"b", 3}}
	sorted := SortByLabel(items)
	if sorted[0].Label != "a" || sorted[2].Label != "c" {
		t.Fatalf("sort wrong: %v", sorted)
	}
	if items[0].Label != "c" {
		t.Fatal("SortByLabel mutated input")
	}
}

// Zipf-shaped values (like real frequency histograms) must also encode.
func TestEncodeZipfShapedValues(t *testing.T) {
	n := 300
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{
			Label: "item-" + strconv.Itoa(i),
			Value: 1000 / float64(i+1),
		}
	}
	p := DefaultParams(keyhash.NewKey("zipf"))
	wm := ecc.MustParseBits("101101")
	marked, st, err := Encode(items, wm, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Failed) != 0 {
		t.Fatalf("failed subsets on zipf data: %v", st.Failed)
	}
	rep, err := Decode(marked, len(wm), p)
	if err != nil {
		t.Fatal(err)
	}
	if rep.WM.String() != wm.String() {
		t.Fatalf("zipf round trip: %s vs %s", wm, rep.WM)
	}
}
