package client

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/api"
)

// stubJobServer serves GET /v2/jobs/{id} from a scripted sequence of job
// resources, recording the arrival time of every poll.
type stubJobServer struct {
	script []api.Job
	polls  atomic.Int64
	times  chan time.Time
}

func (s *stubJobServer) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := int(s.polls.Add(1)) - 1
		s.times <- time.Now()
		if n >= len(s.script) {
			n = len(s.script) - 1
		}
		json.NewEncoder(w).Encode(s.script[n]) //nolint:errcheck
	})
}

// TestWaitJobWithBackoffAndNotify drives WaitJobWith against a scripted
// job: every poll reaches Notify in order (progress visibly advancing),
// polling stops at the terminal state, and the inter-poll delays grow —
// the capped exponential backoff that keeps long audits from hammering
// the server.
func TestWaitJobWithBackoffAndNotify(t *testing.T) {
	running := func(progress int64) api.Job {
		return api.Job{ID: "job-x", State: api.JobRunning, Progress: progress}
	}
	stub := &stubJobServer{
		script: []api.Job{
			running(100), running(200), running(300), running(400),
			{ID: "job-x", State: api.JobDone, Progress: 500},
		},
		times: make(chan time.Time, 16),
	}
	ts := httptest.NewServer(stub.handler())
	defer ts.Close()

	var seen []int64
	job, err := New(ts.URL).WaitJobWith(context.Background(), "job-x", WaitOptions{
		Initial:    5 * time.Millisecond,
		Max:        40 * time.Millisecond,
		Multiplier: 2,
		Jitter:     -1,
		Notify:     func(j *api.Job) { seen = append(seen, j.Progress) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if job.State != api.JobDone || job.Progress != 500 {
		t.Fatalf("final job: %+v", job)
	}
	if got := stub.polls.Load(); got != 5 {
		t.Fatalf("polled %d times, want 5 (stop at terminal state)", got)
	}
	want := []int64{100, 200, 300, 400, 500}
	if len(seen) != len(want) {
		t.Fatalf("notify saw %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("notify saw %v, want %v", seen, want)
		}
	}

	// Delays between polls must grow: compare the first gap to the last.
	close(stub.times)
	var stamps []time.Time
	for ts := range stub.times {
		stamps = append(stamps, ts)
	}
	first := stamps[1].Sub(stamps[0])
	last := stamps[len(stamps)-1].Sub(stamps[len(stamps)-2])
	if last < 2*first {
		t.Fatalf("backoff did not grow: first gap %v, last gap %v", first, last)
	}
}

// TestWaitJobWithJitterStaysBelowDelay bounds the jittered sleep: with
// full-range timing slack, each gap must stay under the configured cap
// plus scheduling noise.
func TestWaitJobWithJitterStaysBelowDelay(t *testing.T) {
	stub := &stubJobServer{
		script: []api.Job{
			{ID: "j", State: api.JobRunning},
			{ID: "j", State: api.JobRunning},
			{ID: "j", State: api.JobDone},
		},
		times: make(chan time.Time, 16),
	}
	ts := httptest.NewServer(stub.handler())
	defer ts.Close()

	start := time.Now()
	if _, err := New(ts.URL).WaitJobWith(context.Background(), "j", WaitOptions{
		Initial:    10 * time.Millisecond,
		Max:        10 * time.Millisecond,
		Multiplier: 2,
		Jitter:     0.5,
	}); err != nil {
		t.Fatal(err)
	}
	// Two sleeps of at most 10ms each; generous envelope for CI noise.
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("jittered wait took %v — jitter should only shrink delays", elapsed)
	}
}

// TestWaitJobCancelledContext confirms the polling loop honors ctx while
// sleeping.
func TestWaitJobCancelledContext(t *testing.T) {
	stub := &stubJobServer{
		script: []api.Job{{ID: "j", State: api.JobRunning}},
		times:  make(chan time.Time, 64),
	}
	ts := httptest.NewServer(stub.handler())
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := New(ts.URL).WaitJobWith(ctx, "j", WaitOptions{
		Initial: time.Hour, Max: time.Hour,
	})
	if err == nil || ctx.Err() == nil {
		t.Fatalf("want ctx error, got %v", err)
	}
}

// longPollStub serves GET /v2/jobs/{id} with long-poll advertisement:
// requests without ?wait= return the current state immediately; requests
// with ?wait= park until the state flips to done or the wait elapses.
type longPollStub struct {
	mu        sync.Mutex
	state     api.JobState
	flipped   chan struct{} // closed when the job becomes terminal
	waits     []time.Duration
	plainGets atomic.Int64
}

func newLongPollStub() *longPollStub {
	return &longPollStub{state: api.JobRunning, flipped: make(chan struct{})}
}

func (s *longPollStub) finish() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.state != api.JobDone {
		s.state = api.JobDone
		close(s.flipped)
	}
}

func (s *longPollStub) handler(t *testing.T) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if raw := r.URL.Query().Get("wait"); raw != "" {
			wait, err := time.ParseDuration(raw)
			if err != nil {
				t.Errorf("bad wait %q: %v", raw, err)
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			s.mu.Lock()
			s.waits = append(s.waits, wait)
			s.mu.Unlock()
			select {
			case <-s.flipped:
			case <-time.After(wait):
			case <-r.Context().Done():
			}
		} else {
			s.plainGets.Add(1)
		}
		s.mu.Lock()
		job := api.Job{ID: "job-lp", State: s.state}
		s.mu.Unlock()
		w.Header().Set(api.LongPollMaxHeader, (30 * time.Second).String())
		json.NewEncoder(w).Encode(job) //nolint:errcheck
	})
}

// TestWaitJobWithPrefersLongPoll asserts the advertised-long-poll path:
// the first request is a plain GET (discovery), every later one parks
// server-side with ?wait=, and the terminal state comes back the moment
// it happens — far sooner than the next backoff poll would have.
func TestWaitJobWithPrefersLongPoll(t *testing.T) {
	stub := newLongPollStub()
	ts := httptest.NewServer(stub.handler(t))
	defer ts.Close()

	go func() {
		time.Sleep(60 * time.Millisecond)
		stub.finish()
	}()
	start := time.Now()
	job, err := New(ts.URL).WaitJobWith(context.Background(), "job-lp", WaitOptions{
		// A backoff that would sleep far past the flip if long-polling
		// were ignored.
		Initial: 10 * time.Second, Max: 10 * time.Second, Jitter: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if job.State != api.JobDone {
		t.Fatalf("state = %v, want done", job.State)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("took %v — long-poll not used, client slept its backoff", elapsed)
	}
	if got := stub.plainGets.Load(); got != 1 {
		t.Fatalf("plain GETs = %d, want exactly the discovery poll", got)
	}
	stub.mu.Lock()
	defer stub.mu.Unlock()
	if len(stub.waits) == 0 {
		t.Fatal("no long-poll requests arrived")
	}
	for _, wait := range stub.waits {
		if wait > 30*time.Second {
			t.Fatalf("client asked for %v, beyond the advertised cap", wait)
		}
	}
}

// TestWaitJobPlainPollingUnchanged pins the fallback: a server that never
// advertises long-polling sees only plain GETs (the pre-long-poll
// behavior, bit for bit).
func TestWaitJobPlainPollingUnchanged(t *testing.T) {
	var sawWait atomic.Bool
	var polls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("wait") != "" {
			sawWait.Store(true)
		}
		state := api.JobRunning
		if polls.Add(1) >= 3 {
			state = api.JobDone
		}
		json.NewEncoder(w).Encode(api.Job{ID: "job-p", State: state}) //nolint:errcheck
	}))
	defer ts.Close()

	job, err := New(ts.URL).WaitJob(context.Background(), "job-p", time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if job.State != api.JobDone {
		t.Fatalf("state = %v, want done", job.State)
	}
	if sawWait.Load() {
		t.Fatal("client sent ?wait= to a server that never advertised long-polling")
	}
}

// TestWaitJobLongPollSurvivesClientTimeout pins the interaction with a
// caller-supplied http.Client.Timeout shorter than the backoff delay: a
// parked request that dies at the client's own deadline is retried as a
// plain poll (and parking stops), instead of failing the whole wait.
func TestWaitJobLongPollSurvivesClientTimeout(t *testing.T) {
	stub := newLongPollStub()
	ts := httptest.NewServer(stub.handler(t))
	defer ts.Close()

	go func() {
		time.Sleep(250 * time.Millisecond)
		stub.finish()
	}()
	c := New(ts.URL, WithHTTPClient(&http.Client{Timeout: 100 * time.Millisecond}))
	job, err := c.WaitJobWith(context.Background(), "job-lp", WaitOptions{
		// Backoff delays beyond the client timeout: the long-poll request
		// is guaranteed to die at the client's deadline first, and the
		// plain polling it falls back to still finishes promptly.
		Initial: 300 * time.Millisecond, Max: 300 * time.Millisecond, Jitter: -1,
	})
	if err != nil {
		t.Fatalf("WaitJobWith failed on the client-side timeout: %v", err)
	}
	if job.State != api.JobDone {
		t.Fatalf("state = %v, want done", job.State)
	}
}
