package client

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/api"
)

// stubJobServer serves GET /v2/jobs/{id} from a scripted sequence of job
// resources, recording the arrival time of every poll.
type stubJobServer struct {
	script []api.Job
	polls  atomic.Int64
	times  chan time.Time
}

func (s *stubJobServer) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := int(s.polls.Add(1)) - 1
		s.times <- time.Now()
		if n >= len(s.script) {
			n = len(s.script) - 1
		}
		json.NewEncoder(w).Encode(s.script[n]) //nolint:errcheck
	})
}

// TestWaitJobWithBackoffAndNotify drives WaitJobWith against a scripted
// job: every poll reaches Notify in order (progress visibly advancing),
// polling stops at the terminal state, and the inter-poll delays grow —
// the capped exponential backoff that keeps long audits from hammering
// the server.
func TestWaitJobWithBackoffAndNotify(t *testing.T) {
	running := func(progress int64) api.Job {
		return api.Job{ID: "job-x", State: api.JobRunning, Progress: progress}
	}
	stub := &stubJobServer{
		script: []api.Job{
			running(100), running(200), running(300), running(400),
			{ID: "job-x", State: api.JobDone, Progress: 500},
		},
		times: make(chan time.Time, 16),
	}
	ts := httptest.NewServer(stub.handler())
	defer ts.Close()

	var seen []int64
	job, err := New(ts.URL).WaitJobWith(context.Background(), "job-x", WaitOptions{
		Initial:    5 * time.Millisecond,
		Max:        40 * time.Millisecond,
		Multiplier: 2,
		Jitter:     -1,
		Notify:     func(j *api.Job) { seen = append(seen, j.Progress) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if job.State != api.JobDone || job.Progress != 500 {
		t.Fatalf("final job: %+v", job)
	}
	if got := stub.polls.Load(); got != 5 {
		t.Fatalf("polled %d times, want 5 (stop at terminal state)", got)
	}
	want := []int64{100, 200, 300, 400, 500}
	if len(seen) != len(want) {
		t.Fatalf("notify saw %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("notify saw %v, want %v", seen, want)
		}
	}

	// Delays between polls must grow: compare the first gap to the last.
	close(stub.times)
	var stamps []time.Time
	for ts := range stub.times {
		stamps = append(stamps, ts)
	}
	first := stamps[1].Sub(stamps[0])
	last := stamps[len(stamps)-1].Sub(stamps[len(stamps)-2])
	if last < 2*first {
		t.Fatalf("backoff did not grow: first gap %v, last gap %v", first, last)
	}
}

// TestWaitJobWithJitterStaysBelowDelay bounds the jittered sleep: with
// full-range timing slack, each gap must stay under the configured cap
// plus scheduling noise.
func TestWaitJobWithJitterStaysBelowDelay(t *testing.T) {
	stub := &stubJobServer{
		script: []api.Job{
			{ID: "j", State: api.JobRunning},
			{ID: "j", State: api.JobRunning},
			{ID: "j", State: api.JobDone},
		},
		times: make(chan time.Time, 16),
	}
	ts := httptest.NewServer(stub.handler())
	defer ts.Close()

	start := time.Now()
	if _, err := New(ts.URL).WaitJobWith(context.Background(), "j", WaitOptions{
		Initial:    10 * time.Millisecond,
		Max:        10 * time.Millisecond,
		Multiplier: 2,
		Jitter:     0.5,
	}); err != nil {
		t.Fatal(err)
	}
	// Two sleeps of at most 10ms each; generous envelope for CI noise.
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("jittered wait took %v — jitter should only shrink delays", elapsed)
	}
}

// TestWaitJobCancelledContext confirms the polling loop honors ctx while
// sleeping.
func TestWaitJobCancelledContext(t *testing.T) {
	stub := &stubJobServer{
		script: []api.Job{{ID: "j", State: api.JobRunning}},
		times:  make(chan time.Time, 64),
	}
	ts := httptest.NewServer(stub.handler())
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := New(ts.URL).WaitJobWith(ctx, "j", WaitOptions{
		Initial: time.Hour, Max: time.Hour,
	})
	if err == nil || ctx.Err() == nil {
		t.Fatalf("want ctx error, got %v", err)
	}
}
