// Package client is the Go SDK for the wmserver HTTP API — the
// programmatic face of the ownership-audit service. It speaks the /v2
// routes exclusively, marshals the shared wire types of internal/api,
// and turns error envelopes back into typed *api.Error values callers
// can dispatch on:
//
//	c := client.New("http://localhost:8080")
//	wm, err := c.Watermark(ctx, api.WatermarkRequest{...})
//	job, err := c.SubmitJob(ctx, api.JobRequest{Kind: api.JobKindVerifyBatch, ...})
//	job, err = c.WaitJob(ctx, job.ID, 0)         // poll to a terminal state
//	var apiErr *api.Error
//	if errors.As(err, &apiErr) && apiErr.Code == api.CodeNotFound { ... }
//
// Every method takes a context.Context; cancelling it aborts the HTTP
// exchange, and — because the server threads request contexts into its
// scan pipeline — also stops the server-side work the call started.
// VerifyStream and VerifyBatchStream upload suspect datasets as raw
// text/csv or application/x-ndjson bodies straight from an io.Reader, so
// a multi-gigabyte corpus flows from disk to the server's detection
// pipeline without either side materializing it.
//
// wmtool's remote mode (-server) is built entirely on this package.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/api"
	"repro/internal/obs"
	"repro/internal/obs/trace"
)

// Client talks to one wmserver base URL. The zero value is not usable;
// construct with New.
type Client struct {
	base string
	hc   *http.Client
}

// Option customises a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, test doubles). The default is http.DefaultClient.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// New builds a client for the server at baseURL (e.g.
// "http://localhost:8080"); a trailing slash is tolerated.
func New(baseURL string, opts ...Option) *Client {
	c := &Client{base: strings.TrimRight(baseURL, "/"), hc: http.DefaultClient}
	for _, o := range opts {
		o(c)
	}
	return c
}

// do runs one JSON exchange: method+path with an optional JSON request
// body, decoding a 2xx response into out (unless nil) and any error
// status into a typed *api.Error.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return fmt.Errorf("client: encoding request: %w", err)
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	if in != nil {
		req.Header.Set("Content-Type", api.ContentTypeJSON)
	}
	return c.exchange(req, out)
}

// exchange sends req and decodes the response.
func (c *Client) exchange(req *http.Request, out any) error {
	_, err := c.exchangeHeader(req, out)
	return err
}

// exchangeHeader is exchange surfacing the response headers, for the few
// calls that read advertisement headers (long-poll discovery). Headers
// are returned only on success.
func (c *Client) exchangeHeader(req *http.Request, out any) (http.Header, error) {
	// Propagate the caller's request ID (when its ctx carries one) so a
	// coordinator's shard fan-out — and any other downstream hop — stays
	// correlatable with the API call that caused it.
	if id := obs.RequestID(req.Context()); id != "" && req.Header.Get(obs.RequestIDHeader) == "" {
		req.Header.Set(obs.RequestIDHeader, id)
	}
	// Same for the W3C trace context: a downstream server span joins the
	// caller's trace instead of minting its own, which is what stitches a
	// coordinator's dispatch span and the worker's shard execution into
	// one tree.
	if sc, ok := trace.FromContext(req.Context()); ok && req.Header.Get(trace.Header) == "" {
		req.Header.Set(trace.Header, sc.Traceparent())
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return nil, decodeAPIError(resp)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for keep-alive
		return resp.Header, nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return nil, fmt.Errorf("client: decoding response: %w", err)
	}
	return resp.Header, nil
}

// decodeAPIError reconstructs the typed error from an error response. A
// body that is not an envelope (a proxy's HTML, an empty 502) still
// yields an *api.Error, with the code derived from the status.
func decodeAPIError(resp *http.Response) error {
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	var e api.Error
	if err := json.Unmarshal(data, &e); err == nil && e.Message != "" {
		if e.Code == "" {
			e.Code = api.CodeForStatus(resp.StatusCode)
		}
		return &e
	}
	msg := strings.TrimSpace(string(data))
	if msg == "" {
		msg = resp.Status
	}
	return api.Errorf(api.CodeForStatus(resp.StatusCode), "%s", msg)
}

// Watermark embeds a watermark synchronously: the relation travels
// inline, the certificate is stored server-side, and the marked data
// comes back.
func (c *Client) Watermark(ctx context.Context, req api.WatermarkRequest) (*api.WatermarkResponse, error) {
	var out api.WatermarkResponse
	if err := c.do(ctx, http.MethodPost, "/v2/watermark", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Verify checks one inline suspect relation against a stored (by ID) or
// inline certificate — the materialized path, with remap recovery and
// the frequency channel in play.
func (c *Client) Verify(ctx context.Context, req api.VerifyRequest) (*api.VerifyResponse, error) {
	var out api.VerifyResponse
	if err := c.do(ctx, http.MethodPost, "/v2/verify", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// VerifyBatch audits one inline suspect relation against many stored
// certificates in a single server-side scan. Empty req.Records means the
// whole catalog.
func (c *Client) VerifyBatch(ctx context.Context, req api.BatchVerifyRequest) (*api.BatchVerifyResponse, error) {
	var out api.BatchVerifyResponse
	if err := c.do(ctx, http.MethodPost, "/v2/verify/batch", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// StreamOptions parameterise the raw-body verify calls.
type StreamOptions struct {
	// Schema is the schema-spec string of the uploaded rows (required).
	Schema string
	// ContentType is api.ContentTypeCSV (default) or
	// api.ContentTypeNDJSON, and must match the body's format.
	ContentType string
	// Workers optionally overrides the server's scan parallelism.
	Workers int
}

func (o StreamOptions) contentType() string {
	if o.ContentType == "" {
		return api.ContentTypeCSV
	}
	return o.ContentType
}

// VerifyStream checks a suspect dataset streamed from body against ONE
// stored certificate. Rows flow from the reader to the server's
// detection pipeline without being materialized on either side; only the
// primary channel is scored (one-pass scan).
func (c *Client) VerifyStream(ctx context.Context, recordID string, body io.Reader, opts StreamOptions) (*api.VerifyResponse, error) {
	q := url.Values{"id": {recordID}, "schema": {opts.Schema}}
	if opts.Workers > 0 {
		q.Set("workers", strconv.Itoa(opts.Workers))
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.base+"/v2/verify?"+q.Encode(), body)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	req.Header.Set("Content-Type", opts.contentType())
	var out api.VerifyResponse
	if err := c.exchange(req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// VerifyBatchStream audits a suspect dataset streamed from body against
// many stored certificates (all of them when recordIDs is empty) in one
// server-side scan — the corpus-audit primitive.
func (c *Client) VerifyBatchStream(ctx context.Context, recordIDs []string, body io.Reader, opts StreamOptions) (*api.BatchVerifyResponse, error) {
	q := url.Values{"schema": {opts.Schema}}
	if len(recordIDs) > 0 {
		q.Set("records", strings.Join(recordIDs, ","))
	}
	if opts.Workers > 0 {
		q.Set("workers", strconv.Itoa(opts.Workers))
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.base+"/v2/verify/batch?"+q.Encode(), body)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	req.Header.Set("Content-Type", opts.contentType())
	var out api.BatchVerifyResponse
	if err := c.exchange(req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ---- cluster-internal RPCs ----
//
// These two calls speak the coordinator/worker protocol of
// internal/cluster. They are exported because the coordinator and the
// worker agent are themselves SDK consumers, but the routes they hit are
// cluster-internal: ScanShard request bodies carry certificates with
// their owner secrets, so they must never cross the cluster's trust
// boundary.

// RegisterWorker announces (or re-announces — it doubles as the
// heartbeat) a scan worker to a coordinator and returns the lease terms
// the coordinator expects it to heartbeat under.
func (c *Client) RegisterWorker(ctx context.Context, reg api.WorkerRegistration) (*api.WorkerAck, error) {
	var out api.WorkerAck
	if err := c.do(ctx, http.MethodPost, "/v2/internal/workers", reg, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ScanShard asks a worker to scan one row-range shard of a suspect corpus
// against the request's certificate set, returning one partial tally per
// certificate.
func (c *Client) ScanShard(ctx context.Context, req api.ShardScanRequest) (*api.ShardScanResponse, error) {
	var out api.ShardScanResponse
	if err := c.do(ctx, http.MethodPost, "/v2/internal/scan", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ---- async jobs ----

// SubmitJob enqueues an async job (api.JobKindWatermark or
// api.JobKindVerifyBatch) and returns the queued resource immediately.
// A full queue surfaces as *api.Error with code queue_full.
func (c *Client) SubmitJob(ctx context.Context, req api.JobRequest) (*api.Job, error) {
	var out api.Job
	if err := c.do(ctx, http.MethodPost, "/v2/jobs", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Job polls one job by ID.
func (c *Client) Job(ctx context.Context, id string) (*api.Job, error) {
	job, _, err := c.jobPoll(ctx, id, 0)
	return job, err
}

// jobPoll fetches one job resource. wait > 0 long-polls: the server
// parks the request until the job changes state or the wait elapses
// (GET /v2/jobs/{id}?wait=…). The returned advertised duration is the
// server's long-poll cap from the X-Long-Poll-Max header, or 0 when the
// server does not advertise long-polling.
func (c *Client) jobPoll(ctx context.Context, id string, wait time.Duration) (*api.Job, time.Duration, error) {
	path := c.base + "/v2/jobs/" + url.PathEscape(id)
	if wait > 0 {
		path += "?wait=" + url.QueryEscape(wait.String())
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, path, nil)
	if err != nil {
		return nil, 0, fmt.Errorf("client: %w", err)
	}
	var out api.Job
	header, err := c.exchangeHeader(req, &out)
	if err != nil {
		return nil, 0, err
	}
	var advertised time.Duration
	if h := header.Get(api.LongPollMaxHeader); h != "" {
		if d, perr := time.ParseDuration(h); perr == nil && d > 0 {
			advertised = d
		}
	}
	return &out, advertised, nil
}

// Jobs lists the server's retained jobs, newest first.
func (c *Client) Jobs(ctx context.Context) ([]api.Job, error) {
	var out api.JobList
	if err := c.do(ctx, http.MethodGet, "/v2/jobs", nil, &out); err != nil {
		return nil, err
	}
	return out.Jobs, nil
}

// CancelJob requests cancellation. A queued job is cancelled outright; a
// running job's scan workers are stopped through its context and the job
// reaches the cancelled state shortly after — use WaitJob to observe the
// transition. Cancelling a finished job yields code conflict.
func (c *Client) CancelJob(ctx context.Context, id string) (*api.Job, error) {
	var out api.Job
	if err := c.do(ctx, http.MethodDelete, "/v2/jobs/"+url.PathEscape(id), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// DefaultPollInterval paces WaitJob when the caller passes 0.
const DefaultPollInterval = 250 * time.Millisecond

// Defaults for WaitOptions' zero values: start polling fast enough that
// short jobs return promptly, back off geometrically so day-long audits
// cost a handful of requests a minute, and jitter each delay so a fleet
// of waiting clients never thunders in phase.
const (
	DefaultWaitInitial    = 100 * time.Millisecond
	DefaultWaitMax        = 5 * time.Second
	DefaultWaitMultiplier = 1.6
	DefaultWaitJitter     = 0.2
)

// WaitOptions tunes WaitJobWith's polling loop.
type WaitOptions struct {
	// Initial is the delay after the first poll; <= 0 means
	// DefaultWaitInitial.
	Initial time.Duration
	// Max caps the grown delay; <= 0 means DefaultWaitMax. Setting
	// Initial == Max fixes the interval.
	Max time.Duration
	// Multiplier grows the delay after each poll; values <= 1 mean
	// DefaultWaitMultiplier (set Initial == Max for a constant rate
	// instead).
	Multiplier float64
	// Jitter is the fraction of every delay randomized away: a delay d
	// sleeps between d*(1-Jitter) and d. 0 means DefaultWaitJitter;
	// negative disables jitter.
	Jitter float64
	// Notify, when non-nil, observes every polled job resource — the
	// hook progress displays hang off (Job.Progress is the server's
	// tuples-processed counter). It runs on the polling goroutine;
	// returning promptly keeps the cadence honest.
	Notify func(*api.Job)
}

// WaitJobWith polls until the job reaches a terminal state (done,
// failed, cancelled) under capped exponential backoff with jitter, and
// returns the final resource; the outcome of failed and cancelled jobs
// is in Job.Error, not in WaitJobWith's error (which reports
// transport/ctx problems only).
//
// When the server advertises long-polling (the X-Long-Poll-Max header on
// job GETs), the wait prefers it: instead of sleeping its backoff delay
// and then polling, it sends that delay as ?wait= and lets the SERVER
// park the request — same request cadence when nothing happens, but the
// terminal state comes back the moment it is reached instead of up to a
// full backoff delay late. Notify fires on every poll either way, so
// progress displays keep their cadence. Against servers that do not
// advertise it, the sleep-then-poll loop is unchanged.
func (c *Client) WaitJobWith(ctx context.Context, id string, o WaitOptions) (*api.Job, error) {
	delay := o.Initial
	if delay <= 0 {
		delay = DefaultWaitInitial
	}
	max := o.Max
	if max <= 0 {
		max = DefaultWaitMax
	}
	mult := o.Multiplier
	if mult <= 1 {
		mult = DefaultWaitMultiplier
	}
	jitter := o.Jitter
	if jitter == 0 {
		jitter = DefaultWaitJitter
	} else if jitter > 1 {
		jitter = 1 // a fraction: anything larger would go negative and hot-loop
	}
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	var longPoll time.Duration // server's advertised cap; first poll discovers it
	longPollOK := true
	for {
		job, advertised, err := c.jobPoll(ctx, id, longPoll)
		if err != nil && longPoll > 0 && ctx.Err() == nil {
			// A parked request can outlive the caller's own
			// http.Client.Timeout (safe before long-polling existed, when
			// every poll returned instantly). Treat the failure as an
			// empty poll: retry plainly and stop parking for the rest of
			// this wait rather than flapping on every request.
			longPollOK = false
			job, _, err = c.jobPoll(ctx, id, 0)
		}
		if err != nil {
			return nil, err
		}
		if o.Notify != nil {
			o.Notify(job)
		}
		if job.State.Terminal() {
			return job, nil
		}
		d := min(delay, max)
		if jitter > 0 {
			d = time.Duration(float64(d) * (1 - jitter*rand.Float64()))
		}
		if advertised > 0 && longPollOK {
			// Long-poll the next request for the delay we would have
			// slept — the server returns early on any state change.
			longPoll = min(d, advertised)
		} else {
			longPoll = 0
			timer.Reset(d)
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-timer.C:
			}
		}
		if next := time.Duration(float64(delay) * mult); next > delay {
			delay = next // guard against overflow freezing the growth
		} else {
			delay = max
		}
	}
}

// WaitJob polls at a fixed interval until the job reaches a terminal
// state — WaitJobWith with Initial == Max and no jitter. poll <= 0 means
// DefaultPollInterval. Prefer WaitJobWith's backoff for long audits.
func (c *Client) WaitJob(ctx context.Context, id string, poll time.Duration) (*api.Job, error) {
	if poll <= 0 {
		poll = DefaultPollInterval
	}
	return c.WaitJobWith(ctx, id, WaitOptions{
		Initial: poll, Max: poll, Jitter: -1,
	})
}

// JobTrace fetches a job's assembled cross-process span tree. Available
// once the job was submitted to a tracing server; jobs whose trace was
// never sampled (and never errored) come back with zero spans.
func (c *Client) JobTrace(ctx context.Context, id string) (*api.JobTrace, error) {
	var out api.JobTrace
	if err := c.do(ctx, http.MethodGet, "/v2/jobs/"+url.PathEscape(id)+"/trace", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// TraceSpans fetches one server's retained spans of a trace — the
// cluster-internal route a coordinator assembles worker-side subtrees
// from.
func (c *Client) TraceSpans(ctx context.Context, traceID string) ([]api.TraceSpan, error) {
	var out api.TraceSpanList
	if err := c.do(ctx, http.MethodGet, "/v2/internal/trace/"+url.PathEscape(traceID), nil, &out); err != nil {
		return nil, err
	}
	return out.Spans, nil
}

// LogLevel reads the server's active log level.
func (c *Client) LogLevel(ctx context.Context) (string, error) {
	var out api.LogLevelResponse
	if err := c.do(ctx, http.MethodGet, "/debug/loglevel", nil, &out); err != nil {
		return "", err
	}
	return out.Level, nil
}

// SetLogLevel changes the server's log level at runtime (debug, info,
// warn, error) and returns the level now in effect.
func (c *Client) SetLogLevel(ctx context.Context, level string) (string, error) {
	var out api.LogLevelResponse
	if err := c.do(ctx, http.MethodPut, "/debug/loglevel", api.LogLevelRequest{Level: level}, &out); err != nil {
		return "", err
	}
	return out.Level, nil
}

// ---- record resources ----

// Records lists one page of stored certificate IDs: up to limit IDs
// strictly after the cursor (limit 0 means no bound), plus the cursor
// for the next page.
func (c *Client) Records(ctx context.Context, limit int, after string) (*api.RecordList, error) {
	q := url.Values{}
	if limit > 0 {
		q.Set("limit", strconv.Itoa(limit))
	}
	if after != "" {
		q.Set("after", after)
	}
	path := "/v2/records"
	if enc := q.Encode(); enc != "" {
		path += "?" + enc
	}
	var out api.RecordList
	if err := c.do(ctx, http.MethodGet, path, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// AllRecords walks the cursor to exhaustion and returns every stored ID,
// pageSize IDs per request (0 means a server-friendly default of 1000).
func (c *Client) AllRecords(ctx context.Context, pageSize int) ([]string, error) {
	if pageSize <= 0 {
		pageSize = 1000
	}
	var ids []string
	after := ""
	for {
		page, err := c.Records(ctx, pageSize, after)
		if err != nil {
			return nil, err
		}
		ids = append(ids, page.Records...)
		if page.Next == "" {
			return ids, nil
		}
		after = page.Next
	}
}

// Record fetches one certificate's public shape (secret redacted).
func (c *Client) Record(ctx context.Context, id string) (*api.RecordInfo, error) {
	var out api.RecordInfo
	if err := c.do(ctx, http.MethodGet, "/v2/records/"+url.PathEscape(id), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// DeleteRecord drops a stored certificate.
func (c *Client) DeleteRecord(ctx context.Context, id string) error {
	return c.do(ctx, http.MethodDelete, "/v2/records/"+url.PathEscape(id), nil, nil)
}

// Health fetches the liveness body as loose JSON.
func (c *Client) Health(ctx context.Context) (map[string]any, error) {
	var out map[string]any
	if err := c.do(ctx, http.MethodGet, "/healthz", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}
