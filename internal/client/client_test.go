package client_test

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/relation"
	"repro/internal/server"
	"repro/internal/server/store"
)

const testSchemaSpec = "Visit_Nbr:int!key, Item_Nbr:int:categorical"

// newTestClient spins a real server over a temp store and returns an SDK
// client bound to it, plus the store for white-box fixtures.
func newTestClient(t *testing.T, cfg server.Config) (*client.Client, *store.Store) {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(st, cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return client.New(ts.URL, client.WithHTTPClient(ts.Client())), st
}

func testCSV(t *testing.T, n int) (csv string, domain []string) {
	t.Helper()
	r, dom, err := datagen.ItemScan(datagen.ItemScanConfig{
		N: n, CatalogSize: 200, ZipfS: 1.0, Seed: "client-test",
	})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := relation.WriteCSV(&b, r); err != nil {
		t.Fatal(err)
	}
	return b.String(), dom.Values()
}

// TestSDKWatermarkVerifyRoundTrip drives the full synchronous surface
// through the SDK: watermark, verify (inline and streamed), record CRUD
// with cursor pagination, health.
func TestSDKWatermarkVerifyRoundTrip(t *testing.T) {
	c, _ := newTestClient(t, server.Config{Workers: 2})
	ctx := context.Background()
	csv, domain := testCSV(t, 5000)

	wm, err := c.Watermark(ctx, api.WatermarkRequest{
		Schema: testSchemaSpec, Data: csv, Secret: "sdk-secret",
		Attribute: "Item_Nbr", WM: "1011001110", E: 30, Domain: domain,
	})
	if err != nil {
		t.Fatal(err)
	}
	if wm.ID == "" || wm.Altered == 0 || wm.Data == csv {
		t.Fatalf("watermark did nothing: %+v", wm)
	}

	v, err := c.Verify(ctx, api.VerifyRequest{
		ID: wm.ID, Schema: testSchemaSpec, Data: wm.Data,
	})
	if err != nil {
		t.Fatal(err)
	}
	if v.Match != 1 || v.Verdict != api.VerdictPresent {
		t.Fatalf("verify: %+v", v)
	}

	// Streaming verify: the suspect flows from an io.Reader.
	vs, err := c.VerifyStream(ctx, wm.ID, strings.NewReader(wm.Data), client.StreamOptions{
		Schema: testSchemaSpec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if vs.Match != 1 || vs.Verdict != api.VerdictPresent {
		t.Fatalf("streamed verify: %+v", vs)
	}

	// Record CRUD.
	info, err := c.Record(ctx, wm.ID)
	if err != nil {
		t.Fatal(err)
	}
	if info.WMBits != 10 || info.Attribute != "Item_Nbr" {
		t.Fatalf("record info: %+v", info)
	}
	ids, err := c.AllRecords(ctx, 1) // page size 1 exercises the cursor
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != wm.ID {
		t.Fatalf("records: %v", ids)
	}
	if err := c.DeleteRecord(ctx, wm.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Record(ctx, wm.ID); err == nil {
		t.Fatal("deleted record still resolves")
	}

	h, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h["status"] != "ok" {
		t.Fatalf("health: %+v", h)
	}
}

// TestSDKBatchAuditJobToDone is the acceptance round-trip: submit a
// batch-verify job through the SDK against httptest, poll it to done,
// and read the per-certificate reports off the job resource.
func TestSDKBatchAuditJobToDone(t *testing.T) {
	c, _ := newTestClient(t, server.Config{Workers: 2})
	ctx := context.Background()
	csv, domain := testCSV(t, 5000)

	owner, err := c.Watermark(ctx, api.WatermarkRequest{
		Schema: testSchemaSpec, Data: csv, Secret: "audit-owner",
		Attribute: "Item_Nbr", WM: "1011001110", E: 30, Domain: domain,
	})
	if err != nil {
		t.Fatal(err)
	}
	innocent, err := c.Watermark(ctx, api.WatermarkRequest{
		Schema: testSchemaSpec, Data: csv, Secret: "audit-innocent",
		Attribute: "Item_Nbr", WM: "0110100101", E: 30, Domain: domain,
	})
	if err != nil {
		t.Fatal(err)
	}

	job, err := c.SubmitJob(ctx, api.JobRequest{
		Kind: api.JobKindVerifyBatch,
		VerifyBatch: &api.BatchVerifyRequest{
			Records: []string{owner.ID, innocent.ID},
			Schema:  testSchemaSpec,
			Data:    owner.Data,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if job.ID == "" || job.State.Terminal() {
		t.Fatalf("submitted job: %+v", job)
	}

	waitCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	final, err := c.WaitJob(waitCtx, job.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != api.JobDone || final.VerifyBatch == nil {
		t.Fatalf("final job: %+v (error %+v)", final, final.Error)
	}
	res := final.VerifyBatch.Results
	if len(res) != 2 {
		t.Fatalf("results: %+v", res)
	}
	if res[0].ID != owner.ID || res[0].Match != 1 || res[0].Verdict != api.VerdictPresent {
		t.Fatalf("owner report: %+v", res[0])
	}
	if res[1].ID != innocent.ID || res[1].Verdict == api.VerdictPresent || res[1].Match == 1 {
		t.Fatalf("innocent certificate read as present: %+v", res[1])
	}
	if final.VerifyBatch.Tuples != 5000 {
		t.Fatalf("scanned %d tuples, want 5000", final.VerifyBatch.Tuples)
	}

	// The job shows in the listing.
	jobs, err := c.Jobs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].ID != job.ID {
		t.Fatalf("job listing: %+v", jobs)
	}
}

// bigAuditFixture registers nCerts synthetic certificates and builds an
// nRows suspect CSV — enough scan work that a running audit job has a
// wide cancellation window.
func bigAuditFixture(t *testing.T, st *store.Store, nCerts, nRows int) string {
	t.Helper()
	for i := 0; i < nCerts; i++ {
		_, err := st.Put(&core.Record{
			Secret:    fmt.Sprintf("cancel-cert-%d", i),
			Attribute: "Item_Nbr",
			WM:        "10110011",
			E:         2, // most tuples fit: maximum per-tuple hash work
			Bandwidth: 1024,
			Domain:    []string{"0", "1", "2", "3", "4", "5", "6", "7"},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	var b strings.Builder
	b.WriteString("Visit_Nbr,Item_Nbr\n")
	for i := 0; i < nRows; i++ {
		fmt.Fprintf(&b, "%d,%d\n", i, i%8)
	}
	return b.String()
}

// TestSDKCancelRunningJobStopsScan is the second acceptance test: cancel
// a RUNNING batch-audit job through the SDK and observe the scan workers
// exit early via context — the job lands in cancelled (never done), with
// the typed cancelled error on the resource.
func TestSDKCancelRunningJobStopsScan(t *testing.T) {
	c, st := newTestClient(t, server.Config{Workers: 2, JobWorkers: 1})
	ctx := context.Background()
	// 24 certificates × 400k rows ≈ 10M keyed-hash votes: several seconds
	// of scan work, a comfortably wide window to land a cancel in.
	suspect := bigAuditFixture(t, st, 24, 400_000)

	job, err := c.SubmitJob(ctx, api.JobRequest{
		Kind: api.JobKindVerifyBatch,
		VerifyBatch: &api.BatchVerifyRequest{
			Schema: testSchemaSpec,
			Data:   suspect,
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Wait for the job to actually be running — cancelling a queued job
	// would not exercise the mid-scan path.
	deadline := time.Now().Add(15 * time.Second)
	for {
		cur, err := c.Job(ctx, job.ID)
		if err != nil {
			t.Fatal(err)
		}
		if cur.State == api.JobRunning {
			break
		}
		if cur.State.Terminal() {
			t.Fatalf("job finished before it could be cancelled: %+v", cur)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", cur.State)
		}
		time.Sleep(2 * time.Millisecond)
	}

	if _, err := c.CancelJob(ctx, job.ID); err != nil {
		t.Fatal(err)
	}
	cancelledAt := time.Now()

	waitCtx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	final, err := c.WaitJob(waitCtx, job.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != api.JobCancelled {
		t.Fatalf("cancelled job reached %s, want cancelled (%+v)", final.State, final)
	}
	if final.Error == nil || final.Error.Code != api.CodeCancelled {
		t.Fatalf("cancelled job error: %+v", final.Error)
	}
	if final.VerifyBatch != nil {
		t.Fatalf("cancelled job carries results: %+v", final.VerifyBatch)
	}
	// Context cancellation is chunk-granular: the workers drop the scan
	// within a couple of chunks, not after draining 400k rows × 24 certs.
	if took := time.Since(cancelledAt); took > 10*time.Second {
		t.Fatalf("cancellation took %v — scan workers did not exit early", took)
	}
}

// TestSDKTypedErrors asserts error envelopes come back as *api.Error
// with their stable codes intact.
func TestSDKTypedErrors(t *testing.T) {
	c, _ := newTestClient(t, server.Config{Workers: 1})
	ctx := context.Background()

	_, err := c.Record(ctx, "00000000000000000000000000000000")
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.Code != api.CodeNotFound {
		t.Fatalf("unknown record: %v", err)
	}

	_, err = c.Verify(ctx, api.VerifyRequest{Schema: testSchemaSpec, Data: "x"})
	if !errors.As(err, &apiErr) || apiErr.Code != api.CodeInvalidArgument {
		t.Fatalf("invalid verify: %v", err)
	}

	_, err = c.Job(ctx, "job-doesnotexist")
	if !errors.As(err, &apiErr) || apiErr.Code != api.CodeNotFound {
		t.Fatalf("unknown job: %v", err)
	}

	_, err = c.SubmitJob(ctx, api.JobRequest{Kind: "mystery"})
	if !errors.As(err, &apiErr) || apiErr.Code != api.CodeInvalidArgument {
		t.Fatalf("bad job kind: %v", err)
	}
}

// TestSDKVerifyBatchStream streams a corpus from a reader against the
// whole stored catalog.
func TestSDKVerifyBatchStream(t *testing.T) {
	c, _ := newTestClient(t, server.Config{Workers: 2})
	ctx := context.Background()
	csv, domain := testCSV(t, 4000)

	owner, err := c.Watermark(ctx, api.WatermarkRequest{
		Schema: testSchemaSpec, Data: csv, Secret: "stream-owner",
		Attribute: "Item_Nbr", WM: "1011001110", E: 30, Domain: domain,
	})
	if err != nil {
		t.Fatal(err)
	}

	resp, err := c.VerifyBatchStream(ctx, nil, strings.NewReader(owner.Data), client.StreamOptions{
		Schema: testSchemaSpec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 1 || resp.Results[0].Match != 1 || resp.Results[0].Verdict != api.VerdictPresent {
		t.Fatalf("streamed batch: %+v", resp.Results)
	}
	if resp.Tuples != 4000 {
		t.Fatalf("scanned %d tuples, want 4000", resp.Tuples)
	}
}

// TestSDKContextCancelsCall asserts a cancelled caller context aborts an
// in-flight SDK call.
func TestSDKContextCancelsCall(t *testing.T) {
	c, st := newTestClient(t, server.Config{Workers: 1})
	suspect := bigAuditFixture(t, st, 8, 200_000)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := c.VerifyBatch(ctx, api.BatchVerifyRequest{
		Schema: testSchemaSpec,
		Data:   suspect,
	})
	if err == nil {
		t.Fatal("call survived its deadline")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}
