package analysis

// Capacity analysis for the embedding channels — Section 2.4 ("Embedding
// Limits": bandwidth as a function of allowed alterations) and Section 3.1
// ("Bandwidth Channels": why the direct domain is too small and where the
// usable bandwidth actually lives).

import (
	"errors"
	"math"

	"repro/internal/stats"
)

// DirectDomainEntropy returns log2(n_A), the bits available from embedding
// directly in a categorical attribute's value choice — the paper's example:
// n_A = 16000 departure cities yield only ~14 bits, "not enough for
// direct-domain embedding of a reasonable watermark".
func DirectDomainEntropy(nA int) float64 {
	if nA <= 1 {
		return 0
	}
	return math.Log2(float64(nA))
}

// AssociationBandwidth returns N/e, the bit capacity of the key-association
// channel at fitness parameter e — each fit tuple carries one parity bit.
func AssociationBandwidth(n int, e uint64) int {
	if e == 0 {
		return 0
	}
	return int(uint64(n) / e)
}

// ReplicasPerBit returns how many wm_data positions replicate each
// watermark bit under the interleaved majority code.
func ReplicasPerBit(n int, e uint64, wmLen int) int {
	if wmLen <= 0 {
		return 0
	}
	return AssociationBandwidth(n, e) / wmLen
}

// PerBitErrorRate returns the probability that one watermark bit decodes
// wrongly when each of its replica votes independently flips with
// probability q: the majority over r replicas errs when ≥ ⌈(r+1)/2⌉ votes
// flip (ties resolve to the default bit and count as errors for a "1").
func PerBitErrorRate(replicas int, q float64) float64 {
	if replicas <= 0 {
		return 1
	}
	need := replicas/2 + 1
	if replicas%2 == 0 {
		need = replicas / 2 // a tie already risks the default-bit error
	}
	return stats.BinomialTail(replicas, need, q)
}

// MaxWatermarkBits returns the largest watermark length such that, at
// relation size n and fitness parameter e, a random-alteration attack
// flipping each vote with probability q keeps the per-bit error rate at or
// below target. This operationalises Section 2.4: the available bandwidth
// is an increasing function of the alterations the owner may perform
// (N/e), discounted by the resilience the ECC must buy back.
func MaxWatermarkBits(n int, e uint64, q, target float64) (int, error) {
	if n <= 0 || e == 0 {
		return 0, errors.New("analysis: need n > 0 and e > 0")
	}
	if q < 0 || q >= 0.5 {
		return 0, errors.New("analysis: vote flip rate must be in [0, 0.5)")
	}
	if target <= 0 || target >= 1 {
		return 0, errors.New("analysis: target error rate must be in (0,1)")
	}
	bw := AssociationBandwidth(n, e)
	if bw == 0 {
		return 0, nil
	}
	// Per-bit error decreases with replicas = bw/wmLen, so the feasible
	// set of wmLen is downward closed: binary search the largest feasible.
	lo, hi := 0, bw
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if PerBitErrorRate(bw/mid, q) <= target {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo, nil
}

// VoteFlipRate converts an attack fraction a (share of tuples randomly
// rewritten within an n_A-value domain) into the per-vote flip probability
// the capacity model consumes: an attacked tuple's parity is uniform over
// the domain's parity split, so q ≈ a·(odd share if bit was even, …) ≈ a/2
// for balanced domains.
func VoteFlipRate(attackFraction float64) float64 {
	if attackFraction < 0 {
		return 0
	}
	if attackFraction > 1 {
		attackFraction = 1
	}
	return attackFraction / 2
}

// FrequencyChannelBits returns the watermark capacity of the Section 4.2
// histogram channel: distinct values divided by the minimum subset size
// the violator statistic needs to encode reliably (≈8 labels per bit in
// practice; the numeric encoder reports starved subsets explicitly).
func FrequencyChannelBits(distinctValues, minSubset int) int {
	if minSubset <= 0 {
		minSubset = 8
	}
	if distinctValues < minSubset {
		return 0
	}
	return distinctValues / minSubset
}

// CapacityReport summarises every channel for one configuration.
type CapacityReport struct {
	// DirectDomainBits is log2(n_A) — the channel the paper rejects.
	DirectDomainBits float64
	// AssociationBits is N/e.
	AssociationBits int
	// RobustBits is the MaxWatermarkBits result for the given attack.
	RobustBits int
	// FrequencyBits is the histogram channel capacity.
	FrequencyBits int
	// AlterationBudget is N/e as a fraction of N — what embedding costs.
	AlterationBudget float64
}

// Capacity computes the full report. attackFraction is the design-point A3
// attack the robust capacity must survive at per-bit error ≤ target.
func Capacity(n int, e uint64, nA int, attackFraction, target float64) (CapacityReport, error) {
	var rep CapacityReport
	robust, err := MaxWatermarkBits(n, e, VoteFlipRate(attackFraction), target)
	if err != nil {
		return rep, err
	}
	rep.DirectDomainBits = DirectDomainEntropy(nA)
	rep.AssociationBits = AssociationBandwidth(n, e)
	rep.RobustBits = robust
	rep.FrequencyBits = FrequencyChannelBits(nA, 0)
	rep.AlterationBudget = AlterationBudget(n, e)
	return rep, nil
}
