package analysis

import (
	"math"
	"testing"
)

// The paper's Section 3.1 example: n_A = 16000 departure cities yield only
// ~14 bits of direct-domain entropy.
func TestDirectDomainEntropyPaperExample(t *testing.T) {
	bits := DirectDomainEntropy(16000)
	if bits < 13.9 || bits > 14.0 {
		t.Fatalf("entropy of 16000 values = %v bits, paper says ~14", bits)
	}
	if DirectDomainEntropy(1) != 0 || DirectDomainEntropy(0) != 0 {
		t.Fatal("degenerate domains should have zero entropy")
	}
}

func TestAssociationBandwidth(t *testing.T) {
	if got := AssociationBandwidth(6000, 60); got != 100 {
		t.Fatalf("bandwidth %d, want 100", got)
	}
	if AssociationBandwidth(100, 0) != 0 {
		t.Fatal("e=0 should yield zero bandwidth")
	}
}

func TestReplicasPerBit(t *testing.T) {
	if got := ReplicasPerBit(6000, 60, 10); got != 10 {
		t.Fatalf("replicas %d, want 10", got)
	}
	if ReplicasPerBit(6000, 60, 0) != 0 {
		t.Fatal("zero wmLen should yield zero replicas")
	}
}

func TestPerBitErrorRateBehaviour(t *testing.T) {
	// More replicas monotonically reduce the error at fixed q.
	prev := 1.0
	for _, r := range []int{1, 3, 9, 27, 81} {
		e := PerBitErrorRate(r, 0.3)
		if e > prev+1e-12 {
			t.Fatalf("error rate not decreasing: %d replicas -> %v (prev %v)", r, e, prev)
		}
		prev = e
	}
	// Zero flip rate means zero error (any replicas).
	if e := PerBitErrorRate(9, 0); e != 0 {
		t.Fatalf("q=0 error %v", e)
	}
	// No replicas means certain error.
	if e := PerBitErrorRate(0, 0.1); e != 1 {
		t.Fatalf("0 replicas error %v", e)
	}
}

func TestMaxWatermarkBitsMonotonicity(t *testing.T) {
	// Harsher attacks permit fewer bits.
	easy, err := MaxWatermarkBits(20000, 65, 0.1, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	hard, err := MaxWatermarkBits(20000, 65, 0.4, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if hard > easy {
		t.Fatalf("capacity grew with attack severity: %d > %d", hard, easy)
	}
	if easy <= 0 {
		t.Fatal("easy case should permit bits")
	}
	// Feasibility: the returned size actually meets the target.
	bw := AssociationBandwidth(20000, 65)
	if e := PerBitErrorRate(bw/easy, 0.1); e > 0.01 {
		t.Fatalf("reported capacity violates target: %v", e)
	}
	// And one more bit would not (unless already at bandwidth).
	if easy < bw {
		if e := PerBitErrorRate(bw/(easy+1), 0.1); e <= 0.01 {
			t.Fatalf("capacity not maximal: %d+1 still feasible (err %v)", easy, e)
		}
	}
}

func TestMaxWatermarkBitsValidation(t *testing.T) {
	cases := []struct {
		n      int
		e      uint64
		q, tgt float64
	}{
		{0, 60, 0.1, 0.01},
		{100, 0, 0.1, 0.01},
		{100, 10, 0.6, 0.01},
		{100, 10, -0.1, 0.01},
		{100, 10, 0.1, 0},
		{100, 10, 0.1, 1},
	}
	for i, c := range cases {
		if _, err := MaxWatermarkBits(c.n, c.e, c.q, c.tgt); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestVoteFlipRate(t *testing.T) {
	if got := VoteFlipRate(0.8); math.Abs(got-0.4) > 1e-12 {
		t.Fatalf("flip rate %v, want 0.4", got)
	}
	if VoteFlipRate(-1) != 0 {
		t.Fatal("negative attack should clamp to 0")
	}
	if got := VoteFlipRate(2); got != 0.5 {
		t.Fatalf("oversized attack should clamp to 0.5, got %v", got)
	}
}

func TestFrequencyChannelBits(t *testing.T) {
	if got := FrequencyChannelBits(400, 0); got != 50 {
		t.Fatalf("capacity %d, want 50 with the default subset size", got)
	}
	if got := FrequencyChannelBits(25, 8); got != 3 {
		t.Fatalf("capacity %d, want 3", got)
	}
	if FrequencyChannelBits(5, 8) != 0 {
		t.Fatal("too few labels should yield zero capacity")
	}
}

func TestCapacityReport(t *testing.T) {
	rep, err := Capacity(20000, 65, 1000, 0.5, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if rep.AssociationBits != 307 {
		t.Fatalf("association bits %d", rep.AssociationBits)
	}
	if rep.RobustBits <= 0 || rep.RobustBits > rep.AssociationBits {
		t.Fatalf("robust bits %d out of range", rep.RobustBits)
	}
	if rep.DirectDomainBits < 9.9 || rep.DirectDomainBits > 10 {
		t.Fatalf("direct bits %v for 1000 values", rep.DirectDomainBits)
	}
	if rep.FrequencyBits != 125 {
		t.Fatalf("frequency bits %d", rep.FrequencyBits)
	}
	if rep.AlterationBudget <= 0 || rep.AlterationBudget > 0.02 {
		t.Fatalf("budget %v", rep.AlterationBudget)
	}
	// The whole point of Section 3.1: the association channel beats the
	// direct domain by orders of magnitude.
	if float64(rep.AssociationBits) < rep.DirectDomainBits*10 {
		t.Fatal("association channel should dwarf direct-domain entropy")
	}
}
