// Package analysis implements the closed-form vulnerability mathematics of
// Section 4.4: false-positive probabilities for court-time claims, the
// random-alteration attack success probability P(r,a) — exactly (equation
// 1) and through the paper's central-limit approximation (equation 2) —
// the expected final watermark damage after error correction, and the
// minimum-e solver that turns a vulnerability bound into an embedding
// alteration budget.
package analysis

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/stats"
)

// FalsePositiveProb returns the probability that a random data set of
// sufficient size exhibits a given |wm|-bit watermark under random keys:
// (1/2)^|wm|. With multiple embeddings using all N/e available bits the
// exponent grows to N/e — see FalsePositiveProbFullBandwidth.
func FalsePositiveProb(wmBits int) float64 {
	if wmBits <= 0 {
		return 1
	}
	return math.Exp2(-float64(wmBits))
}

// FalsePositiveProbFullBandwidth returns (1/2)^(N/e): the chance of a
// full-bandwidth accidental match. The paper's example: N = 6000, e = 60
// gives (1/2)^100 ≈ 7.8·10⁻³¹.
func FalsePositiveProbFullBandwidth(n int, e uint64) float64 {
	if e == 0 || n <= 0 {
		return 1
	}
	return math.Exp2(-float64(uint64(n) / e))
}

// AttackModel captures the Section 4.4 random-alteration scenario.
type AttackModel struct {
	// N is the relation size.
	N int
	// E is the fitness parameter; only ~1/E of attacked tuples are marked.
	E uint64
	// A is the number of tuples the attacker alters ("attack size").
	A int
	// P is the per-marked-tuple flip success rate (the paper uses 0.7:
	// "it is quite likely that when Mallory alters a watermarked tuple, it
	// will destroy the embedded bit").
	P float64
	// R is the number of embedded (wm_data) bit flips deemed a success.
	R int
}

func (m AttackModel) validate() error {
	if m.N <= 0 || m.E == 0 {
		return errors.New("analysis: need N > 0 and e > 0")
	}
	if m.A < 0 || m.A > m.N {
		return fmt.Errorf("analysis: attack size %d outside [0, N=%d]", m.A, m.N)
	}
	if m.P < 0 || m.P > 1 {
		return fmt.Errorf("analysis: flip rate %v outside [0,1]", m.P)
	}
	return nil
}

// MarkedAttacked returns a/e — the expected number of *marked* tuples the
// attacker actually reaches.
func (m AttackModel) MarkedAttacked() int {
	return int(uint64(m.A) / m.E)
}

// AttackSuccessExact returns P(r,a) by the exact binomial tail of
// equation (1): the probability that among the a/e marked tuples attacked,
// at least r flips succeed at rate p. Returns 0 when r exceeds a/e, as the
// paper notes.
func AttackSuccessExact(m AttackModel) (float64, error) {
	if err := m.validate(); err != nil {
		return 0, err
	}
	n := m.MarkedAttacked()
	if m.R > n {
		return 0, nil
	}
	return stats.BinomialTail(n, m.R, m.P), nil
}

// AttackSuccessNormal returns P(r,a) via the paper's equation (2): the
// central-limit normalisation f(ΣXᵢ) = (ΣXᵢ − (a/e)p) / sqrt((a/e)p(1−p))
// behaves like N(0,1) when (a/e)p ≥ 5 and (a/e)(1−p) ≥ 5, so
// P(ΣXᵢ > r) ≈ 1 − Φ(f(r)). The second return reports whether the
// paper's applicability condition holds.
func AttackSuccessNormal(m AttackModel) (p float64, cltOK bool, err error) {
	if err := m.validate(); err != nil {
		return 0, false, err
	}
	n := m.MarkedAttacked()
	if m.R > n {
		return 0, stats.CLTApplies(n, m.P), nil
	}
	if n == 0 {
		return 0, false, nil
	}
	z := (float64(m.R) - stats.BinomialMean(n, m.P)) / stats.BinomialStdDev(n, m.P)
	return stats.NormalSurvival(z), stats.CLTApplies(n, m.P), nil
}

// ExpectedMarkAlteration evaluates the paper's final-damage estimate: with
// an ECC absorbing a fraction tECC of wm_data alterations, r successful
// wm_data flips out of a bandwidth N/e translate into an average final
// watermark alteration fraction of
//
//	(r/(N/e) − t_ecc) · |wm| / |wm_data|
//
// clamped at 0. The paper's example (r=15, N/e=|wm_data|=100, t_ecc=5%,
// |wm|=10) yields 1.0%.
func ExpectedMarkAlteration(r int, n int, e uint64, tECC float64, wmLen, wmDataLen int) float64 {
	if e == 0 || n <= 0 || wmDataLen <= 0 || wmLen <= 0 {
		return 0
	}
	bw := float64(uint64(n) / e)
	if bw == 0 {
		return 0
	}
	frac := (float64(r)/bw - tECC) * float64(wmLen) / float64(wmDataLen)
	if frac < 0 {
		return 0
	}
	return frac
}

// MinimumE computes the largest fitness parameter e (fewest embedding
// alterations, N/e of them) that still bounds the attack success
// probability P(r,a) ≤ theta under equation (2): it solves
//
//	(r − (a/e)·p) / sqrt((a/e)·p·(1−p)) ≥ z_theta
//
// for a/e and returns e* = ceil(a / m*) where m* is the largest admissible
// number of attacked marked tuples. Any e ≥ e* (with N/e ≥ wm bits)
// guarantees the bound; the watermarking phase then alters only ≈ N/e*
// tuples.
//
// Note: the paper's worked example states the inequality's conclusion as
// "e ≤ 23"; solving its own equation (2) with the stated numbers (r=15,
// a=600, p=0.7, θ=10%) yields e ≥ 34 — alteration budget N/e ≈ 2.9% of a
// 6000-tuple relation, close to but not equal to the printed "≈ 4.3%".
// EXPERIMENTS.md discusses the discrepancy; the solver follows the
// mathematics.
func MinimumE(a int, p, theta float64, r int) (uint64, error) {
	if a <= 0 {
		return 0, errors.New("analysis: attack size must be positive")
	}
	if p <= 0 || p >= 1 {
		return 0, fmt.Errorf("analysis: flip rate %v outside (0,1)", p)
	}
	if theta <= 0 || theta >= 1 {
		return 0, fmt.Errorf("analysis: threshold %v outside (0,1)", theta)
	}
	if r <= 0 {
		return 0, errors.New("analysis: r must be positive")
	}
	z := stats.NormalQuantile(1 - theta)
	// Solve (r − m·p)/sqrt(m·p·(1−p)) = z for m = a/e.
	// Let u = sqrt(m): p·u² + z·sqrt(p(1−p))·u − r = 0.
	b := z * math.Sqrt(p*(1-p))
	disc := b*b + 4*p*float64(r)
	u := (-b + math.Sqrt(disc)) / (2 * p)
	mStar := u * u
	if mStar <= 0 {
		return 0, errors.New("analysis: no admissible e for these parameters")
	}
	e := uint64(math.Ceil(float64(a) / mStar))
	if e == 0 {
		e = 1
	}
	return e, nil
}

// AlterationBudget returns N/e as a fraction of N: the share of tuples the
// watermarking phase alters at fitness parameter e.
func AlterationBudget(n int, e uint64) float64 {
	if n <= 0 || e == 0 {
		return 0
	}
	return float64(uint64(n)/e) / float64(n)
}

// SimulateAttackSuccess estimates P(r,a) by Monte-Carlo over the binomial
// model, cross-checking the closed forms in the Table A2 bench. Returns
// the fraction of trials in which at least r of the a/e marked tuples
// flipped.
func SimulateAttackSuccess(m AttackModel, trials int, src *stats.Source) (float64, error) {
	if err := m.validate(); err != nil {
		return 0, err
	}
	if trials <= 0 {
		return 0, errors.New("analysis: non-positive trial count")
	}
	n := m.MarkedAttacked()
	success := 0
	for t := 0; t < trials; t++ {
		flips := 0
		for i := 0; i < n; i++ {
			if src.Bool(m.P) {
				flips++
			}
		}
		if flips >= m.R {
			success++
		}
	}
	return float64(success) / float64(trials), nil
}
