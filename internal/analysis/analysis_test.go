package analysis

import (
	"math"
	"testing"

	"repro/internal/stats"
)

// The paper's worked example: N=6000, e=60 ⇒ (1/2)^100 ≈ 7.8·10⁻³¹.
func TestFalsePositivePaperExample(t *testing.T) {
	got := FalsePositiveProbFullBandwidth(6000, 60)
	want := 7.8886e-31 // 2^-100
	if math.Abs(got-want)/want > 1e-3 {
		t.Fatalf("(1/2)^100 = %g, want ≈ %g", got, want)
	}
}

func TestFalsePositiveProb(t *testing.T) {
	if got := FalsePositiveProb(10); math.Abs(got-1.0/1024) > 1e-12 {
		t.Fatalf("(1/2)^10 = %v", got)
	}
	if FalsePositiveProb(0) != 1 || FalsePositiveProb(-1) != 1 {
		t.Fatal("degenerate wm lengths should give probability 1")
	}
	if FalsePositiveProbFullBandwidth(0, 60) != 1 || FalsePositiveProbFullBandwidth(100, 0) != 1 {
		t.Fatal("degenerate inputs should give probability 1")
	}
}

// The paper's Table A2 scenario: r=15, p=0.7, a=1200 (20% of 6000), e=60.
// Marked tuples attacked: a/e = 20. The paper's normal-table lookup gives
// P ≈ 31.6%; the approximation computed with full precision gives ≈ 31.3%.
func TestAttackSuccessPaperScenario(t *testing.T) {
	m := AttackModel{N: 6000, E: 60, A: 1200, P: 0.7, R: 15}
	if got := m.MarkedAttacked(); got != 20 {
		t.Fatalf("a/e = %d, want 20", got)
	}
	normal, cltOK, err := AttackSuccessNormal(m)
	if err != nil {
		t.Fatal(err)
	}
	if !cltOK {
		t.Fatal("CLT condition should hold: (a/e)p = 14, (a/e)(1-p) = 6")
	}
	if math.Abs(normal-0.316) > 0.02 {
		t.Fatalf("normal approx = %v, paper says ≈ 0.316", normal)
	}
	exact, err := AttackSuccessExact(m)
	if err != nil {
		t.Fatal(err)
	}
	// Exact binomial tail P[X≥15], X~B(20,0.7) ≈ 0.4164. The gap to the
	// normal approximation is the continuity correction the paper skips.
	if math.Abs(exact-0.4164) > 5e-3 {
		t.Fatalf("exact P(r,a) = %v, want ≈ 0.4164", exact)
	}
}

func TestAttackSuccessZeroWhenRTooLarge(t *testing.T) {
	// r > a/e ⇒ P(r,a) = 0, as the paper states.
	m := AttackModel{N: 6000, E: 60, A: 600, P: 0.9, R: 15} // a/e = 10 < 15
	exact, err := AttackSuccessExact(m)
	if err != nil {
		t.Fatal(err)
	}
	if exact != 0 {
		t.Fatalf("P = %v, want 0 when r > a/e", exact)
	}
	normal, _, err := AttackSuccessNormal(m)
	if err != nil {
		t.Fatal(err)
	}
	if normal != 0 {
		t.Fatalf("normal P = %v, want 0", normal)
	}
}

func TestAttackModelValidation(t *testing.T) {
	bad := []AttackModel{
		{N: 0, E: 60, A: 10, P: 0.5, R: 1},
		{N: 100, E: 0, A: 10, P: 0.5, R: 1},
		{N: 100, E: 10, A: -1, P: 0.5, R: 1},
		{N: 100, E: 10, A: 200, P: 0.5, R: 1},
		{N: 100, E: 10, A: 10, P: 1.5, R: 1},
	}
	for i, m := range bad {
		if _, err := AttackSuccessExact(m); err == nil {
			t.Errorf("model %d accepted", i)
		}
	}
}

// Exact and normal forms must agree within a few percent whenever the
// paper's CLT condition holds.
func TestExactVsNormalAgreement(t *testing.T) {
	for _, m := range []AttackModel{
		{N: 60000, E: 60, A: 12000, P: 0.7, R: 150}, // a/e = 200
		{N: 60000, E: 30, A: 6000, P: 0.5, R: 110},  // a/e = 200
		{N: 6000, E: 20, A: 3000, P: 0.6, R: 95},    // a/e = 150
	} {
		exact, err := AttackSuccessExact(m)
		if err != nil {
			t.Fatal(err)
		}
		normal, cltOK, err := AttackSuccessNormal(m)
		if err != nil {
			t.Fatal(err)
		}
		if !cltOK {
			continue
		}
		if math.Abs(exact-normal) > 0.05 {
			t.Errorf("%+v: exact %v vs normal %v", m, exact, normal)
		}
	}
}

// The paper's final-damage example: r=15 flips over |wm_data|=100 with 5%
// ECC tolerance and a 10-bit mark ⇒ 1.0% expected final alteration.
func TestExpectedMarkAlterationPaperExample(t *testing.T) {
	got := ExpectedMarkAlteration(15, 6000, 60, 0.05, 10, 100)
	if math.Abs(got-0.01) > 1e-9 {
		t.Fatalf("expected alteration %v, paper says 1.0%%", got)
	}
}

func TestExpectedMarkAlterationClamp(t *testing.T) {
	// ECC absorbs everything: damage clamps at 0.
	if got := ExpectedMarkAlteration(3, 6000, 60, 0.05, 10, 100); got != 0 {
		t.Fatalf("clamped alteration %v, want 0", got)
	}
	if got := ExpectedMarkAlteration(15, 0, 60, 0.05, 10, 100); got != 0 {
		t.Fatal("degenerate N should give 0")
	}
}

// The paper's Table A3 scenario: a=600 (10% of N=6000), θ=10%, r=15,
// p=0.7. Solving equation (2) yields e ≥ 34 (the paper prints "e ≤ 23" and
// 4.3% alteration; see the MinimumE doc comment). Verify the solver's e*
// actually achieves the bound and that e*−1 does not.
func TestMinimumEPaperScenario(t *testing.T) {
	eStar, err := MinimumE(600, 0.7, 0.10, 15)
	if err != nil {
		t.Fatal(err)
	}
	if eStar < 30 || eStar > 38 {
		t.Fatalf("e* = %d, want ≈ 34", eStar)
	}
	check := func(e uint64) float64 {
		p, _, err := AttackSuccessNormal(AttackModel{N: 6000, E: e, A: 600, P: 0.7, R: 15})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	if p := check(eStar); p > 0.10+1e-6 {
		t.Fatalf("P at e* = %v exceeds θ", p)
	}
	if eStar > 1 {
		// One step looser on alterations (smaller e = more marked tuples
		// attacked = higher success probability) must violate the bound —
		// the integer a/e granularity can make a few adjacent e values
		// equivalent, so scan down until the probability changes.
		for e := eStar - 1; e >= eStar-3 && e > 0; e-- {
			if p := check(e); p > 0.10 {
				return // bound violated below e*, as expected
			}
		}
		t.Fatalf("bound not tight near e* = %d", eStar)
	}
}

// The resulting alteration budget for the Table A3 scenario:
// N/e* of 6000 ≈ 2.9%, the "alter only a few percent" conclusion.
func TestMinimumEAlterationBudget(t *testing.T) {
	eStar, err := MinimumE(600, 0.7, 0.10, 15)
	if err != nil {
		t.Fatal(err)
	}
	budget := AlterationBudget(6000, eStar)
	if budget > 0.05 {
		t.Fatalf("alteration budget %v, want a few percent", budget)
	}
	if budget <= 0 {
		t.Fatal("budget should be positive")
	}
}

func TestMinimumEValidation(t *testing.T) {
	cases := []struct {
		a     int
		p     float64
		theta float64
		r     int
	}{
		{0, 0.7, 0.1, 15},
		{600, 0, 0.1, 15},
		{600, 1, 0.1, 15},
		{600, 0.7, 0, 15},
		{600, 0.7, 1, 15},
		{600, 0.7, 0.1, 0},
	}
	for i, c := range cases {
		if _, err := MinimumE(c.a, c.p, c.theta, c.r); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

// Monte-Carlo simulation must agree with the exact binomial tail.
func TestSimulationMatchesExact(t *testing.T) {
	m := AttackModel{N: 6000, E: 60, A: 1200, P: 0.7, R: 15}
	exact, err := AttackSuccessExact(m)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := SimulateAttackSuccess(m, 20000, stats.NewSource("sim"))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sim-exact) > 0.02 {
		t.Fatalf("simulated %v vs exact %v", sim, exact)
	}
}

func TestSimulateValidation(t *testing.T) {
	m := AttackModel{N: 100, E: 10, A: 50, P: 0.5, R: 2}
	if _, err := SimulateAttackSuccess(m, 0, stats.NewSource("s")); err == nil {
		t.Error("zero trials accepted")
	}
}

func TestAlterationBudgetDegenerate(t *testing.T) {
	if AlterationBudget(0, 10) != 0 || AlterationBudget(100, 0) != 0 {
		t.Fatal("degenerate budgets should be 0")
	}
	if got := AlterationBudget(6000, 60); math.Abs(got-100.0/6000) > 1e-12 {
		t.Fatalf("budget = %v", got)
	}
}
