package analysis_test

import (
	"fmt"

	"repro/internal/analysis"
)

// The paper's Section 4.4 worked example: a 20% random-alteration attack
// (a=1200 of N=6000 tuples) against a mark embedded at e=60 reaches only
// a/e = 20 marked tuples; the probability of flipping at least r=15
// embedded bits at success rate p=0.7 follows equation (1).
func ExampleAttackSuccessExact() {
	m := analysis.AttackModel{N: 6000, E: 60, A: 1200, P: 0.7, R: 15}
	p, err := analysis.AttackSuccessExact(m)
	if err != nil {
		panic(err)
	}
	fmt.Printf("marked tuples attacked: %d\n", m.MarkedAttacked())
	fmt.Printf("P(r,a) = %.3f\n", p)
	// Output:
	// marked tuples attacked: 20
	// P(r,a) = 0.416
}

// Choosing e from a vulnerability bound (Section 4.4): if Mallory can
// afford to alter at most 10% of a 6000-tuple relation, what is the
// cheapest embedding that keeps the attack success below 10%?
func ExampleMinimumE() {
	eStar, err := analysis.MinimumE(600, 0.7, 0.10, 15)
	if err != nil {
		panic(err)
	}
	fmt.Printf("e* = %d, alter %.1f%% of the data\n",
		eStar, analysis.AlterationBudget(6000, eStar)*100)
	// Output:
	// e* = 34, alter 2.9% of the data
}

// Court-time false positives (Section 4.4): the chance of a random data
// set exhibiting all N/e embedded bits.
func ExampleFalsePositiveProbFullBandwidth() {
	fmt.Printf("%.1e\n", analysis.FalsePositiveProbFullBandwidth(6000, 60))
	// Output:
	// 7.9e-31
}

// Channel capacities (Sections 2.4, 3.1): the association channel dwarfs
// the direct-domain entropy the paper rejects.
func ExampleCapacity() {
	rep, err := analysis.Capacity(20000, 65, 16000, 0.5, 0.05)
	if err != nil {
		panic(err)
	}
	fmt.Printf("direct domain: %.0f bits\n", rep.DirectDomainBits)
	fmt.Printf("association:   %d bits\n", rep.AssociationBits)
	// Output:
	// direct domain: 14 bits
	// association:   307 bits
}
