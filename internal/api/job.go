package api

import "time"

// Job kinds accepted by POST /v2/jobs.
const (
	// JobKindWatermark embeds a watermark asynchronously; the payload is
	// a WatermarkRequest.
	JobKindWatermark = "watermark"
	// JobKindVerifyBatch audits a suspect dataset against many stored
	// certificates asynchronously; the payload is a BatchVerifyRequest.
	JobKindVerifyBatch = "verify_batch"
)

// JobState is the lifecycle state of an async job.
//
//	queued ──▶ running ──▶ done
//	   │          │    ╰──▶ failed
//	   ╰──────────┴───────▶ cancelled
type JobState string

const (
	JobQueued    JobState = "queued"
	JobRunning   JobState = "running"
	JobDone      JobState = "done"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
)

// Terminal reports whether the state is final — no further transitions.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCancelled
}

// JobRequest is the POST /v2/jobs body: a kind plus exactly the matching
// payload.
type JobRequest struct {
	// Kind is one of the JobKind* constants.
	Kind string `json:"kind"`
	// Watermark is the payload when Kind is JobKindWatermark.
	Watermark *WatermarkRequest `json:"watermark,omitempty"`
	// VerifyBatch is the payload when Kind is JobKindVerifyBatch.
	VerifyBatch *BatchVerifyRequest `json:"verify_batch,omitempty"`
}

// Job is the job resource returned by every /v2/jobs endpoint.
type Job struct {
	ID    string   `json:"id"`
	Kind  string   `json:"kind"`
	State JobState `json:"state"`
	// CreatedAt/StartedAt/FinishedAt timestamp the lifecycle; the latter
	// two are unset while the job has not reached them.
	CreatedAt  time.Time  `json:"created_at"`
	StartedAt  *time.Time `json:"started_at,omitempty"`
	FinishedAt *time.Time `json:"finished_at,omitempty"`
	// Progress is the number of tuples the job has processed so far —
	// live while the job runs (poll GET /v2/jobs/{id} to watch a corpus
	// audit advance), final once it stops. Always present — list items
	// included, so dashboards render progress without an N+1 poll of
	// every job — and zero until the job starts metering work.
	Progress int64 `json:"progress"`
	// Error is set when State is failed (why it failed) or cancelled
	// (code "cancelled").
	Error *Error `json:"error,omitempty"`
	// Watermark holds the result of a done watermark job.
	Watermark *WatermarkResponse `json:"watermark,omitempty"`
	// VerifyBatch holds the result of a done verify_batch job.
	VerifyBatch *BatchVerifyResponse `json:"verify_batch,omitempty"`
	// TraceID is the submitting request's hex trace ID — the handle GET
	// /v2/jobs/{id}/trace resolves. Empty when the server runs without
	// tracing.
	TraceID string `json:"trace_id,omitempty"`
}

// JobList is the GET /v2/jobs reply, newest first.
type JobList struct {
	Jobs []Job `json:"jobs"`
}

// LongPollMaxHeader is the response header GET /v2/jobs/{id} advertises
// long-poll support with: its value is the longest ?wait=<duration> the
// server will honor (a Go duration string). Clients that see it switch
// from sleep-and-poll to parked requests that return the moment the job
// changes state; clients that don't keep polling and lose nothing.
const LongPollMaxHeader = "X-Long-Poll-Max"
