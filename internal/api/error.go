// Package api holds the wire contract of the watermarking service: every
// request, response, resource and error shape that travels between
// internal/server and its consumers (the internal/client Go SDK, wmtool's
// remote mode, curl users). The server marshals these types and nothing
// else; the CI grep gate enforces that internal/server declares no wire
// structs of its own.
//
// Versioning: the same types back both /v1 and /v2 routes. /v1 keeps its
// original JSON shapes bit-for-bit (the error envelope only gained the
// machine-readable "code" field, and record listings paginate via the
// X-Next-After response header); /v2 adds the job resources, cursor
// pagination in the body, and nothing incompatible.
package api

import (
	"fmt"
	"net/http"
)

// Stable machine-readable error codes. Clients dispatch on these, never
// on message text; messages may change wording, codes may not.
const (
	// CodeInvalidArgument: the request is malformed or semantically
	// invalid — retrying unchanged is pointless. HTTP 400.
	CodeInvalidArgument = "invalid_argument"
	// CodeNotFound: the addressed resource (record, job, route) does not
	// exist. HTTP 404.
	CodeNotFound = "not_found"
	// CodeMethodNotAllowed: the path exists but not for this HTTP method;
	// the Allow response header lists the methods that do. HTTP 405.
	CodeMethodNotAllowed = "method_not_allowed"
	// CodePayloadTooLarge: the request body tripped the server's size
	// limit — shrink (or stream in pages) and retry. HTTP 413.
	CodePayloadTooLarge = "payload_too_large"
	// CodeConflict: the operation cannot apply to the resource's current
	// state (e.g. cancelling a finished job). HTTP 409.
	CodeConflict = "conflict"
	// CodeQueueFull: the async job queue is at capacity — back off and
	// resubmit. HTTP 429.
	CodeQueueFull = "queue_full"
	// CodeCancelled: the work was cancelled before completing (job
	// cancellation, client disconnect, server shutdown). HTTP 499 when it
	// must travel as a status; usually seen inside a Job's error field.
	CodeCancelled = "cancelled"
	// CodeInternal: the server failed; the request may be retried. HTTP 500.
	CodeInternal = "internal"
)

// Error is the uniform error envelope. The JSON keeps /v1's original
// {"error": "<message>"} shape and adds the stable "code"; decoding a
// pre-code v1 body therefore still works (Code is simply empty).
type Error struct {
	// Code is one of the Code* constants.
	Code string `json:"code,omitempty"`
	// Message is the human-readable description.
	Message string `json:"error"`
}

// Error implements the error interface, so SDK callers can errors.As a
// failed call into *api.Error and read the code.
func (e *Error) Error() string {
	if e.Code == "" {
		return e.Message
	}
	return e.Code + ": " + e.Message
}

// Errorf builds an Error with a formatted message.
func Errorf(code, format string, args ...any) *Error {
	return &Error{Code: code, Message: fmt.Sprintf(format, args...)}
}

// statusCancelled is the non-standard "client closed request" status
// popularized by nginx — the only honest status for work cancelled
// mid-flight.
const statusCancelled = 499

// HTTPStatus maps the error's code onto the HTTP status it travels with.
func (e *Error) HTTPStatus() int {
	switch e.Code {
	case CodeInvalidArgument:
		return http.StatusBadRequest
	case CodeNotFound:
		return http.StatusNotFound
	case CodeMethodNotAllowed:
		return http.StatusMethodNotAllowed
	case CodePayloadTooLarge:
		return http.StatusRequestEntityTooLarge
	case CodeConflict:
		return http.StatusConflict
	case CodeQueueFull:
		return http.StatusTooManyRequests
	case CodeCancelled:
		return statusCancelled
	default:
		return http.StatusInternalServerError
	}
}

// CodeForStatus is HTTPStatus's inverse, for reconstructing a typed error
// from a status when a response body carried no code (proxies, old
// servers).
func CodeForStatus(status int) string {
	switch status {
	case http.StatusBadRequest:
		return CodeInvalidArgument
	case http.StatusNotFound:
		return CodeNotFound
	case http.StatusMethodNotAllowed:
		return CodeMethodNotAllowed
	case http.StatusRequestEntityTooLarge:
		return CodePayloadTooLarge
	case http.StatusConflict:
		return CodeConflict
	case http.StatusTooManyRequests:
		return CodeQueueFull
	case statusCancelled:
		return CodeCancelled
	default:
		return CodeInternal
	}
}
