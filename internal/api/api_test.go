package api

import (
	"encoding/json"
	"errors"
	"net/http"
	"testing"
)

// TestErrorEnvelopeShape pins the wire shape: the /v1-era {"error": msg}
// key survives, "code" rides along, and decoding a pre-code body still
// works.
func TestErrorEnvelopeShape(t *testing.T) {
	data, err := json.Marshal(Errorf(CodeNotFound, "record %s not found", "abc"))
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]string
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	if m["error"] != "record abc not found" || m["code"] != CodeNotFound {
		t.Fatalf("envelope wrong: %s", data)
	}

	var legacy Error
	if err := json.Unmarshal([]byte(`{"error":"boom"}`), &legacy); err != nil {
		t.Fatal(err)
	}
	if legacy.Message != "boom" || legacy.Code != "" {
		t.Fatalf("legacy body decoded wrong: %+v", legacy)
	}
}

// TestErrorIsError asserts *Error travels as a Go error and is
// recoverable with errors.As.
func TestErrorIsError(t *testing.T) {
	var err error = Errorf(CodeConflict, "job finished")
	var apiErr *Error
	if !errors.As(err, &apiErr) || apiErr.Code != CodeConflict {
		t.Fatalf("errors.As failed: %v", err)
	}
	if apiErr.Error() != "conflict: job finished" {
		t.Fatalf("Error() = %q", apiErr.Error())
	}
}

// TestStatusRoundTrip asserts every code maps to a distinct status and
// back.
func TestStatusRoundTrip(t *testing.T) {
	codes := []string{
		CodeInvalidArgument, CodeNotFound, CodeMethodNotAllowed,
		CodePayloadTooLarge, CodeConflict, CodeQueueFull, CodeCancelled,
		CodeInternal,
	}
	seen := map[int]string{}
	for _, code := range codes {
		status := (&Error{Code: code}).HTTPStatus()
		if prev, dup := seen[status]; dup {
			t.Fatalf("codes %s and %s share status %d", prev, code, status)
		}
		seen[status] = code
		if got := CodeForStatus(status); got != code {
			t.Fatalf("CodeForStatus(%d) = %s, want %s", status, got, code)
		}
	}
	if (&Error{}).HTTPStatus() != http.StatusInternalServerError {
		t.Fatal("unknown code must default to 500")
	}
	if CodeForStatus(http.StatusTeapot) != CodeInternal {
		t.Fatal("unknown status must default to internal")
	}
}

// TestJobStateTerminal pins the lifecycle's terminal set.
func TestJobStateTerminal(t *testing.T) {
	for state, terminal := range map[JobState]bool{
		JobQueued: false, JobRunning: false,
		JobDone: true, JobFailed: true, JobCancelled: true,
	} {
		if state.Terminal() != terminal {
			t.Errorf("%s.Terminal() = %v, want %v", state, !terminal, terminal)
		}
	}
}

// TestJobTimestampsOmitted asserts unset lifecycle timestamps stay off
// the wire rather than serializing zero times.
func TestJobTimestampsOmitted(t *testing.T) {
	data, err := json.Marshal(Job{ID: "j1", Kind: JobKindVerifyBatch, State: JobQueued})
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"started_at", "finished_at", "error", "watermark", "verify_batch"} {
		if _, present := m[key]; present {
			t.Errorf("queued job serialized %q: %s", key, data)
		}
	}
}
