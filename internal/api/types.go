package api

import "repro/internal/core"

// Verdict values shared by every surface (HTTP API, SDK, CLI). The
// thresholds that map a bit-agreement fraction onto them live in
// internal/core (PresentThreshold, PartialThreshold); these are the wire
// spellings.
const (
	VerdictPresent = "present"
	VerdictPartial = "partial"
	VerdictAbsent  = "absent"
)

// Streamable request content types: a request body with one of these
// media types is row data that flows straight into the detection
// pipeline, never materialized in a request struct.
const (
	ContentTypeCSV    = "text/csv"
	ContentTypeNDJSON = "application/x-ndjson"
	ContentTypeJSON   = "application/json"
)

// WatermarkRequest is the POST /v1/watermark and /v2/watermark body, and
// the payload of a "watermark" job.
type WatermarkRequest struct {
	// Schema is the schema-spec string, e.g.
	// "Visit_Nbr:int!key, Item_Nbr:int:categorical".
	Schema string `json:"schema"`
	// Format of Data: "csv" (default) or "jsonl".
	Format string `json:"format,omitempty"`
	// Data is the relation payload.
	Data string `json:"data"`
	// Secret is the owner's master passphrase.
	Secret string `json:"secret"`
	// Attribute is the categorical attribute to watermark.
	Attribute string `json:"attribute"`
	// KeyAttr optionally overrides the key attribute.
	KeyAttr string `json:"key_attr,omitempty"`
	// WM is the watermark bit string.
	WM string `json:"wm"`
	// E is the fitness parameter (default 60).
	E uint64 `json:"e,omitempty"`
	// Domain optionally fixes the value catalog.
	Domain []string `json:"domain,omitempty"`
	// FrequencyChannel additionally embeds into the histogram.
	FrequencyChannel bool `json:"frequency_channel,omitempty"`
	// MaxAlterationFraction bounds total data change (0 = unlimited).
	// Forces a sequential pass — the quality budget is order-dependent.
	MaxAlterationFraction float64 `json:"max_alteration_fraction,omitempty"`
	// Workers overrides the server's pipeline worker count for this job.
	Workers int `json:"workers,omitempty"`
}

// WatermarkResponse is the watermark reply.
type WatermarkResponse struct {
	// ID is the stored certificate's identifier; pass it to verify.
	ID string `json:"id"`
	// Data is the watermarked relation in the request's format.
	Data string `json:"data"`
	// Tuples, Fit, Altered, Bandwidth summarize the embedding pass.
	Tuples         int     `json:"tuples"`
	Fit            int     `json:"fit"`
	Altered        int     `json:"altered"`
	AlterationRate float64 `json:"alteration_rate"`
	Bandwidth      int     `json:"bandwidth"`
	// FrequencyMoved counts tuples moved by the frequency channel.
	FrequencyMoved int `json:"frequency_moved,omitempty"`
}

// VerifyRequest is the POST /v1/verify and /v2/verify body. Exactly one
// of ID (a stored certificate) or Record (an inline certificate JSON
// object, core.Record-shaped) must be set.
type VerifyRequest struct {
	ID string `json:"id,omitempty"`
	// Record carries an inline certificate — the owner's core.Record,
	// which is itself the JSON certificate format.
	Record *core.Record `json:"record,omitempty"`
	// Schema/Format/Data carry the suspect relation, as in watermark.
	Schema  string `json:"schema"`
	Format  string `json:"format,omitempty"`
	Data    string `json:"data"`
	Workers int    `json:"workers,omitempty"`
}

// VerifyResponse is the verify reply.
type VerifyResponse struct {
	// Match is the fraction of watermark bits recovered; 1.0 is perfect.
	Match float64 `json:"match"`
	// Detected is the recovered bit string.
	Detected string `json:"detected"`
	// Verdict is VerdictPresent, VerdictPartial or VerdictAbsent at the
	// shared core thresholds (>= 0.9, >= 0.7).
	Verdict string `json:"verdict"`
	// RemapRecovered notes a Section 4.5 inverse-mapping recovery.
	RemapRecovered bool `json:"remap_recovered,omitempty"`
	// FrequencyMatch is the secondary channel's agreement (-1 = unused).
	FrequencyMatch float64 `json:"frequency_match"`
	// FalsePositiveProb is the chance of a full match on unmarked data.
	FalsePositiveProb float64 `json:"false_positive_prob"`
}

// BatchVerifyRequest is the JSON form of the POST /v1/verify/batch and
// /v2/verify/batch body, and the payload of a "verify_batch" job. The
// same endpoints also accept a RAW streamed suspect (Content-Type
// text/csv or application/x-ndjson) with records/schema/workers as query
// parameters — the corpus-scale path, since the dataset is never held in
// a request struct.
type BatchVerifyRequest struct {
	// Records selects stored certificate IDs to verify against; empty
	// means every stored certificate.
	Records []string `json:"records,omitempty"`
	// Schema/Format/Data carry the suspect relation, as in verify.
	Schema  string `json:"schema"`
	Format  string `json:"format,omitempty"`
	Data    string `json:"data"`
	Workers int    `json:"workers,omitempty"`
}

// BatchVerifyResult is one certificate's outcome in a batch reply.
type BatchVerifyResult struct {
	ID string `json:"id"`
	// Match/Detected/Verdict mirror VerifyResponse (primary channel only;
	// the one-pass scan does not attempt remap recovery or the frequency
	// channel).
	Match    float64 `json:"match"`
	Detected string  `json:"detected,omitempty"`
	Verdict  string  `json:"verdict,omitempty"`
	// Error reports a per-certificate failure; the batch still completes.
	Error string `json:"error,omitempty"`
}

// BatchVerifyResponse is the batch-verify reply; results follow the
// requested certificate order (or sorted ID order when verifying the
// whole catalog).
type BatchVerifyResponse struct {
	Results []BatchVerifyResult `json:"results"`
	// Tuples is the number of suspect rows scanned — once, no matter how
	// many certificates were checked.
	Tuples int `json:"tuples"`
}

// RecordInfo is the GET records/{id} reply: the certificate's public
// shape with the secret redacted — holders of the store's directory can
// read the raw files, but the API never echoes secrets.
type RecordInfo struct {
	ID                  string `json:"id"`
	Attribute           string `json:"attribute"`
	KeyAttr             string `json:"key_attr,omitempty"`
	WMBits              int    `json:"wm_bits"`
	E                   uint64 `json:"e"`
	Bandwidth           int    `json:"bandwidth"`
	DomainSize          int    `json:"domain_size"`
	HasFrequencyChannel bool   `json:"has_frequency_channel"`
}

// RecordList is the GET /v2/records reply. /v1/records serializes only
// the records array (its original shape) and moves Next into the
// X-Next-After response header.
type RecordList struct {
	// Records is one sorted page of certificate IDs.
	Records []string `json:"records"`
	// Next is the cursor for the following page: pass it back as
	// ?after=<Next>. Empty when this page ends the listing.
	Next string `json:"next,omitempty"`
}

// NextAfterHeader is the /v1 pagination cursor's response header.
const NextAfterHeader = "X-Next-After"

// DeleteResponse acknowledges a record deletion.
type DeleteResponse struct {
	Deleted string `json:"deleted"`
}
