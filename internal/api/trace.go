package api

import "time"

// TraceSpan is one finished span on the wire — the serialized form of a
// span retained in some process's ring. IDs are lowercase hex (32 chars
// for trace IDs, 16 for span IDs) matching the W3C traceparent fields.
type TraceSpan struct {
	TraceID string `json:"trace_id"`
	SpanID  string `json:"span_id"`
	// ParentID is empty on the tree's true root. A span whose parent
	// lives on another process sets Remote — the seam traceparent
	// propagation stitched across.
	ParentID string `json:"parent_id,omitempty"`
	Remote   bool   `json:"remote,omitempty"`
	Name     string `json:"name"`
	// Node is the advertised identity of the process that retained the
	// span: the coordinator's or worker's base URL, or "local" when the
	// server has no cluster identity.
	Node       string            `json:"node,omitempty"`
	Start      time.Time         `json:"start"`
	DurationNs int64             `json:"duration_ns"`
	Error      string            `json:"error,omitempty"`
	Attrs      map[string]string `json:"attrs,omitempty"`
}

// TraceSpanList is the GET /v2/internal/trace/{traceID} reply: one
// process's retained spans of the trace, oldest first. The ring is
// bounded, so the list is best-effort — an evicted span simply re-roots
// its children in the assembled tree.
type TraceSpanList struct {
	Spans []TraceSpan `json:"spans"`
}

// TraceNode is one vertex of an assembled span tree.
type TraceNode struct {
	Span     TraceSpan    `json:"span"`
	Children []*TraceNode `json:"children,omitempty"`
}

// JobTrace is the GET /v2/jobs/{id}/trace reply: the job's cross-process
// span tree, assembled from the coordinator's ring plus every live
// worker's ring (pulled by trace ID over the internal trace route).
type JobTrace struct {
	JobID   string `json:"job_id"`
	TraceID string `json:"trace_id"`
	// SpanCount is the number of spans assembled into Roots.
	SpanCount int `json:"span_count"`
	// Roots are the parentless (or orphaned-by-eviction) subtrees,
	// oldest first — for a fully retained trace, exactly one: the
	// submitting HTTP request's server span.
	Roots []*TraceNode `json:"roots"`
}

// FlightList is the GET /debug/traces reply: the flight recorder's
// retained root spans — errored requests newest first, then the slowest
// successes — regardless of the sampling ratio.
type FlightList struct {
	Spans []TraceSpan `json:"spans"`
}

// LogLevelRequest is the PUT /debug/loglevel body; LogLevelResponse (and
// the GET reply) reports the level now in effect. Levels are the slog
// spellings: debug, info, warn, error.
type LogLevelRequest struct {
	Level string `json:"level"`
}

// LogLevelResponse reports the server's active log level.
type LogLevelResponse struct {
	Level string `json:"level"`
}
