package api

import (
	"repro/internal/core"
	"repro/internal/mark"
)

// Cluster wire types: the coordinator/worker protocol behind distributed
// verify_batch audits. A cluster is one coordinator (the node the public
// API is pointed at) plus N workers; workers announce themselves with
// WorkerRegistration heartbeats, and the coordinator fans a corpus audit
// out as ShardScanRequests — contiguous row-range shards of the suspect
// plus the full certificate set — merging the returned partial tallies in
// row order into a report bit-identical to a single-node scan.
//
// The /v2/internal/* routes these types travel are cluster-internal:
// ShardScanRequest carries certificates WITH their owner secrets (a
// worker cannot compute the keyed hashes without them), so these
// endpoints must only ever be reachable inside the trust boundary the
// certificate store itself lives in.

// Cluster roles, as reported by /healthz.
const (
	// RoleSingle is a standalone server: no cluster configured, audits
	// scan locally.
	RoleSingle = "single"
	// RoleCoordinator accepts worker registrations and fans audits out.
	RoleCoordinator = "coordinator"
	// RoleWorker serves shard scans and heartbeats a coordinator.
	RoleWorker = "worker"
)

// WorkerRegistration is the POST /v2/internal/workers body — both the
// initial join and every subsequent heartbeat (registration is idempotent
// upsert; the coordinator refreshes the worker's lease each time).
type WorkerRegistration struct {
	// ID identifies the worker across re-registrations; a restarted
	// worker re-joining under the same ID replaces its old entry. Empty
	// defaults to URL.
	ID string `json:"id,omitempty"`
	// URL is the base URL the coordinator dispatches shards to.
	URL string `json:"url"`
	// Capacity is how many shards the worker scans concurrently; <= 0
	// means 1.
	Capacity int `json:"capacity,omitempty"`
	// Kernel is the hash backend the worker's scans run on (the
	// calibrated KernelAuto pick, or a pinned kind). Informational plus
	// autotuning: the coordinator surfaces it in /healthz.
	Kernel string `json:"kernel,omitempty"`
	// HashesPerSec is the worker's calibrated single-thread keyed-hash
	// rate (keyhash.Calibrate). The coordinator seeds shard-size
	// autotuning with it until real per-shard throughput is observed.
	HashesPerSec float64 `json:"hashes_per_sec,omitempty"`
}

// WorkerAck is the registration reply: the lease terms the coordinator
// expects the worker to heartbeat under.
type WorkerAck struct {
	// HeartbeatSeconds is the interval the worker should re-register at.
	HeartbeatSeconds float64 `json:"heartbeat_seconds"`
	// TTLSeconds is how long the lease lasts without a heartbeat before
	// the coordinator stops dispatching to the worker.
	TTLSeconds float64 `json:"ttl_seconds"`
}

// WorkerStatus is one worker's membership entry in ClusterStatus.
type WorkerStatus struct {
	ID       string `json:"id"`
	URL      string `json:"url"`
	Capacity int    `json:"capacity"`
	// Live reports whether the lease is current (heartbeat age < TTL and
	// the worker is not marked unreachable).
	Live bool `json:"live"`
	// LastHeartbeatAgeSeconds is the age of the newest heartbeat.
	LastHeartbeatAgeSeconds float64 `json:"last_heartbeat_age_seconds"`
	// ActiveShards is how many dispatched shards the worker currently
	// holds.
	ActiveShards int `json:"active_shards"`
	// Kernel is the hash backend the worker advertised at registration.
	Kernel string `json:"kernel,omitempty"`
	// HashesPerSec is the worker's advertised calibrated hash rate.
	HashesPerSec float64 `json:"hashes_per_sec,omitempty"`
	// RowsPerSec is the coordinator's observed per-worker scan
	// throughput (EWMA over completed shards) — the signal auto shard
	// sizing uses. Zero until the worker completes a shard.
	RowsPerSec float64 `json:"rows_per_sec,omitempty"`
}

// ClusterStatus is the cluster block of the /healthz body.
type ClusterStatus struct {
	// Role is RoleSingle, RoleCoordinator or RoleWorker.
	Role string `json:"role"`
	// Coordinator is the coordinator base URL a worker is joined to
	// (workers only).
	Coordinator string `json:"coordinator,omitempty"`
	// HeartbeatError is the worker's latest failed registration attempt
	// (workers only; empty while heartbeats succeed). A -join pointed at
	// a typo'd URL or a non-coordinator shows up here instead of
	// silently never forming a cluster.
	HeartbeatError string `json:"heartbeat_error,omitempty"`
	// LiveWorkers counts workers with a current lease (coordinator only).
	LiveWorkers int `json:"live_workers"`
	// Workers lists the membership table, live and expired (coordinator
	// only).
	Workers []WorkerStatus `json:"workers,omitempty"`
}

// ShardScanRequest is the POST /v2/internal/scan body: one contiguous
// row-range shard of a suspect corpus plus every certificate riding the
// audit. The worker scans the shard once with the certificate loop inside
// the block loop (pipeline.ScanMany) and returns one partial tally per
// certificate.
type ShardScanRequest struct {
	// Shard is the shard's index in row order — echoed back so responses
	// can be matched to ranges, and the order partials merge in.
	Shard int `json:"shard"`
	// Schema is the schema-spec string the shard rows conform to.
	Schema string `json:"schema"`
	// Format of Data: "csv" (default) or "jsonl".
	Format string `json:"format,omitempty"`
	// Data is the shard's rows, serialized in Format.
	Data string `json:"data"`
	// Records is the certificate set, secrets included — every scan
	// parameter derives deterministically from a record, which is what
	// keeps worker-side scanners identical to the coordinator's.
	Records []*core.Record `json:"records"`
	// BlockRows overrides the worker's scan-block size (0 = default,
	// negative = tuple-at-a-time engine).
	BlockRows int `json:"block_rows,omitempty"`
	// Workers overrides the worker node's per-shard scan parallelism.
	Workers int `json:"workers,omitempty"`
}

// ShardScanResponse is the shard scan reply: partial tallies in request
// certificate order.
type ShardScanResponse struct {
	// Shard echoes the request's shard index.
	Shard int `json:"shard"`
	// Rows is the number of shard rows scanned.
	Rows int `json:"rows"`
	// Tallies holds one partial tally per request certificate, to be
	// merged in shard order with mark.Tally.Merge.
	Tallies []mark.TallyWire `json:"tallies"`
}
