package power

import (
	"testing"

	"repro/internal/baseline"
	"repro/internal/datagen"
	"repro/internal/ecc"
	"repro/internal/freq"
	"repro/internal/keyhash"
	"repro/internal/mark"
	"repro/internal/relation"
	"repro/internal/stats"
)

func powerData(t *testing.T, n int) (*relation.Relation, *relation.Domain) {
	t.Helper()
	r, dom, err := datagen.ItemScan(datagen.ItemScanConfig{
		N: n, CatalogSize: 400, ZipfS: 1.0, Seed: "power-test",
	})
	if err != nil {
		t.Fatal(err)
	}
	return r, dom
}

func catScheme(dom *relation.Domain) *CategoricalScheme {
	return &CategoricalScheme{
		WM: ecc.MustParseBits("1011001110"),
		Opts: mark.Options{
			Attr:   "Item_Nbr",
			K1:     keyhash.NewKey("power-k1"),
			K2:     keyhash.NewKey("power-k2"),
			E:      50,
			Domain: dom,
		},
	}
}

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Levels = []float64{0.2, 0.5, 0.8}
	cfg.Passes = 2
	return cfg
}

func TestEvaluateCategoricalUnderLoss(t *testing.T) {
	r, dom := powerData(t, 12000)
	p, err := Evaluate(r, catScheme(dom), LossAttack(), "Item_Nbr", smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if p.CleanScore != 1 {
		t.Fatalf("clean score %v", p.CleanScore)
	}
	if p.Distortion.Fraction <= 0 || p.Distortion.Fraction > 0.05 {
		t.Fatalf("distortion %v", p.Distortion.Fraction)
	}
	if p.Distortion.FreqDrift <= 0 {
		t.Fatal("frequency drift not measured")
	}
	// At bandwidth 240 / 10 bits, loss attacks are fully absorbed.
	if p.AUC < 0.95 {
		t.Fatalf("AUC %v under loss, want ≈ 1", p.AUC)
	}
	if len(p.Curve) != 3 {
		t.Fatalf("curve has %d points", len(p.Curve))
	}
}

func TestEvaluateDetectsResilienceOrdering(t *testing.T) {
	// Under A3 alteration, the categorical scheme's survival must be
	// monotone-ish decreasing and the profile must record it.
	r, dom := powerData(t, 12000)
	p, err := Evaluate(r, catScheme(dom), AlterationAttack("Item_Nbr", dom), "Item_Nbr", smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	first, last := p.Curve[0], p.Curve[len(p.Curve)-1]
	if first.Score < last.Score-0.05 {
		t.Fatalf("alteration resilience inverted: %v -> %v", first.Score, last.Score)
	}
}

// The headline comparison the baseline package exists for: on categorical
// data, the categorical scheme embeds with zero domain damage while the
// KA numeric-LSB baseline leaves the catalog on a sparse code space.
func TestCategoricalVsKADomainDamage(t *testing.T) {
	// Sparse catalog: only even codes are valid.
	vals := make([]string, 200)
	for k := range vals {
		vals[k] = itoa(30000 + 2*k)
	}
	dom := relation.MustDomain(vals)
	r := relation.New(datagen.ItemScanSchema())
	src := stats.NewSource("sparse-power")
	for i := 0; i < 15000; i++ {
		r.MustAppend(relation.Tuple{itoa(i), vals[src.Intn(len(vals))]})
	}

	// Categorical scheme.
	cs := catScheme(dom)
	markedCat := r.Clone()
	if err := cs.Embed(markedCat); err != nil {
		t.Fatal(err)
	}
	catViol, err := baseline.DomainViolations(markedCat, "Item_Nbr", dom)
	if err != nil {
		t.Fatal(err)
	}
	if catViol != 0 {
		t.Fatalf("categorical scheme violated the domain %d times", catViol)
	}

	// KA baseline at a comparable marking rate.
	ka := &KAScheme{Opts: baseline.KAOptions{
		Attr: "Item_Nbr", Key: keyhash.NewKey("ka-power"), Gamma: 50, Xi: 2,
	}}
	markedKA := r.Clone()
	if err := ka.Embed(markedKA); err != nil {
		t.Fatal(err)
	}
	kaViol, err := baseline.DomainViolations(markedKA, "Item_Nbr", dom)
	if err != nil {
		t.Fatal(err)
	}
	if kaViol == 0 {
		t.Fatal("KA LSB marking on a sparse catalog produced no violations?")
	}
}

func TestEvaluateFrequencyScheme(t *testing.T) {
	r, _ := powerData(t, 30000)
	fs := &FrequencyScheme{
		Attr:   "Item_Nbr",
		WM:     ecc.MustParseBits("101101"),
		Params: freq.DefaultParams(keyhash.NewKey("power-freq")),
	}
	p, err := Evaluate(r, fs, LossAttack(), "Item_Nbr", smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if p.CleanScore < 1 {
		t.Fatalf("frequency clean score %v", p.CleanScore)
	}
	// Designed for 50% loss; must survive the 0.2 and 0.5 levels.
	if p.Curve[0].Survived < 1 || p.Curve[1].Survived < 0.5 {
		t.Fatalf("frequency survival curve %+v", p.Curve)
	}
}

func TestEvaluateConfigValidation(t *testing.T) {
	r, dom := powerData(t, 500)
	bad := []Config{
		{Levels: nil, Passes: 1, SurvivalThreshold: 0.9},
		{Levels: []float64{2}, Passes: 1, SurvivalThreshold: 0.9},
		{Levels: []float64{0.5}, Passes: 0, SurvivalThreshold: 0.9},
		{Levels: []float64{0.5}, Passes: 1, SurvivalThreshold: 0},
	}
	for i, cfg := range bad {
		if _, err := Evaluate(r, catScheme(dom), LossAttack(), "", cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestEvaluateDoesNotMutateBase(t *testing.T) {
	r, dom := powerData(t, 3000)
	orig := r.Clone()
	if _, err := Evaluate(r, catScheme(dom), LossAttack(), "", smallConfig()); err != nil {
		t.Fatal(err)
	}
	if !r.Equal(orig) {
		t.Fatal("Evaluate mutated the base relation")
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [20]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}
