// Package power implements the watermarking-evaluation metrics framework
// of Sion, Atallah & Prabhakar, "Power: Metrics for Evaluating
// Watermarking Algorithms" (ITCC 2002) — reference [11] of the
// categorical-data paper and the methodology behind its experimental
// section. A scheme's "power" combines what the mark costs (distortion),
// what it can carry (bandwidth), and what it survives (resilience under a
// parameterised attack family).
//
// The framework is scheme-agnostic: anything implementing Scheme — the
// categorical codec, the frequency channel, the Kiernan–Agrawal baseline —
// can be profiled against any attack family, producing comparable
// Profile values. The baseline-comparison experiment uses it to put the
// paper's scheme and its numeric predecessor side by side.
package power

import (
	"errors"
	"fmt"

	"repro/internal/relation"
	"repro/internal/stats"
)

// Scheme is a watermarking algorithm under evaluation. Embed must
// watermark the relation in place; Detect must return a detection score in
// [0,1] where 1 is a perfect recovery and ~0.5 is chance for bitwise marks
// (schemes with presence/absence semantics return 1/0 with their own
// confidence threshold applied).
type Scheme interface {
	// Name identifies the scheme in profiles.
	Name() string
	// Embed watermarks r in place.
	Embed(r *relation.Relation) error
	// Detect returns the detection score on (possibly attacked) data.
	Detect(r *relation.Relation) (float64, error)
}

// AttackFamily is a parameterised attack: Apply transforms a relation at
// the given severity level in [0,1].
type AttackFamily struct {
	// Name identifies the family in profiles (e.g. "A3-alteration").
	Name string
	// Apply attacks r at the given level, returning a new relation.
	Apply func(r *relation.Relation, level float64, src *stats.Source) (*relation.Relation, error)
}

// Config parameterises a profiling run.
type Config struct {
	// Levels is the attack severity sweep (default 0.1 … 0.8).
	Levels []float64
	// Passes averages each level over this many runs (default 3).
	Passes int
	// Seed drives attack randomness.
	Seed string
	// SurvivalThreshold is the detection score counted as "mark survived"
	// (default 0.9).
	SurvivalThreshold float64
}

// DefaultConfig returns the standard profiling sweep.
func DefaultConfig() Config {
	return Config{
		Levels:            []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8},
		Passes:            3,
		Seed:              "power",
		SurvivalThreshold: 0.9,
	}
}

func (c Config) validate() error {
	if len(c.Levels) == 0 {
		return errors.New("power: no attack levels")
	}
	for _, l := range c.Levels {
		if l < 0 || l > 1 {
			return fmt.Errorf("power: level %v outside [0,1]", l)
		}
	}
	if c.Passes <= 0 {
		return errors.New("power: passes must be positive")
	}
	if c.SurvivalThreshold <= 0 || c.SurvivalThreshold > 1 {
		return errors.New("power: survival threshold outside (0,1]")
	}
	return nil
}

// Distortion quantifies what embedding cost the data.
type Distortion struct {
	// TuplesAltered is the number of tuples changed by embedding.
	TuplesAltered int
	// Fraction is TuplesAltered / N.
	Fraction float64
	// FreqDrift is the L1 distance between the marked and unmarked
	// frequency profiles of the watched attribute ("" = skipped).
	FreqDrift float64
}

// ResiliencePoint is one point of the survival curve.
type ResiliencePoint struct {
	Level float64
	// Score is the mean detection score across passes.
	Score float64
	// Survived is the fraction of passes at/above the survival threshold.
	Survived float64
}

// Profile is the complete power evaluation of one scheme under one attack
// family.
type Profile struct {
	Scheme string
	Attack string
	// CleanScore is the detection score with no attack at all.
	CleanScore float64
	Distortion Distortion
	Curve      []ResiliencePoint
	// AUC is the area under the survival curve over the level sweep —
	// the scalar "power" figure: 1.0 means the mark survived every pass
	// at every level, 0 means it never survived.
	AUC float64
}

// Evaluate profiles scheme against attack on (a clone of) base.
// watchAttr, when non-empty, names the attribute whose frequency drift is
// reported as embedding distortion.
func Evaluate(base *relation.Relation, scheme Scheme, attack AttackFamily, watchAttr string, cfg Config) (Profile, error) {
	var p Profile
	if err := cfg.validate(); err != nil {
		return p, err
	}
	p.Scheme = scheme.Name()
	p.Attack = attack.Name

	marked := base.Clone()
	if err := scheme.Embed(marked); err != nil {
		return p, fmt.Errorf("power: embedding %s: %w", scheme.Name(), err)
	}

	// Distortion.
	altered := 0
	for i := 0; i < base.Len(); i++ {
		a, b := base.Tuple(i), marked.Tuple(i)
		for j := range a {
			if a[j] != b[j] {
				altered++
				break
			}
		}
	}
	p.Distortion.TuplesAltered = altered
	if base.Len() > 0 {
		p.Distortion.Fraction = float64(altered) / float64(base.Len())
	}
	if watchAttr != "" {
		h0, err := relation.HistogramOf(base, watchAttr)
		if err != nil {
			return p, err
		}
		h1, err := relation.HistogramOf(marked, watchAttr)
		if err != nil {
			return p, err
		}
		p.Distortion.FreqDrift = h1.L1Distance(h0)
	}

	clean, err := scheme.Detect(marked)
	if err != nil {
		return p, err
	}
	p.CleanScore = clean

	// Resilience sweep.
	src := stats.NewSource("power/" + cfg.Seed)
	total := 0.0
	for _, level := range cfg.Levels {
		var scoreSum, survived float64
		for pass := 0; pass < cfg.Passes; pass++ {
			attacked, err := attack.Apply(marked,
				level, src.Fork(fmt.Sprintf("%s/%v/%d", attack.Name, level, pass)))
			if err != nil {
				return p, fmt.Errorf("power: attack %s@%v: %w", attack.Name, level, err)
			}
			score, err := scheme.Detect(attacked)
			if err != nil {
				return p, fmt.Errorf("power: detect after %s@%v: %w", attack.Name, level, err)
			}
			scoreSum += score
			if score >= cfg.SurvivalThreshold {
				survived++
			}
		}
		pt := ResiliencePoint{
			Level:    level,
			Score:    scoreSum / float64(cfg.Passes),
			Survived: survived / float64(cfg.Passes),
		}
		p.Curve = append(p.Curve, pt)
		total += pt.Survived
	}
	p.AUC = total / float64(len(cfg.Levels))
	return p, nil
}
