package power

// Scheme adapters for the systems in this repository, plus standard attack
// families, so profiling any (scheme × attack) pair is one call.

import (
	"repro/internal/attacks"
	"repro/internal/baseline"
	"repro/internal/ecc"
	"repro/internal/freq"
	"repro/internal/mark"
	"repro/internal/relation"
	"repro/internal/stats"
)

// CategoricalScheme adapts the paper's key-association codec
// (internal/mark) to the Scheme interface.
type CategoricalScheme struct {
	// WM is the watermark to embed and score against.
	WM ecc.Bits
	// Opts are the codec options; BandwidthOverride is captured at embed
	// time automatically.
	Opts mark.Options
}

// Name implements Scheme.
func (s *CategoricalScheme) Name() string { return "categorical-ka-association" }

// Embed implements Scheme.
func (s *CategoricalScheme) Embed(r *relation.Relation) error {
	st, err := mark.Embed(r, s.WM, s.Opts)
	if err != nil {
		return err
	}
	s.Opts.BandwidthOverride = st.Bandwidth
	return nil
}

// Detect implements Scheme: the score is the bit match fraction.
func (s *CategoricalScheme) Detect(r *relation.Relation) (float64, error) {
	rep, err := mark.Detect(r, len(s.WM), s.Opts)
	if err != nil {
		return 0, err
	}
	return rep.MatchFraction(s.WM), nil
}

// FrequencyScheme adapts the Section 4.2 frequency channel.
type FrequencyScheme struct {
	Attr   string
	WM     ecc.Bits
	Params freq.Params
}

// Name implements Scheme.
func (s *FrequencyScheme) Name() string { return "categorical-frequency" }

// Embed implements Scheme.
func (s *FrequencyScheme) Embed(r *relation.Relation) error {
	_, err := freq.Embed(r, s.Attr, s.WM, s.Params)
	return err
}

// Detect implements Scheme.
func (s *FrequencyScheme) Detect(r *relation.Relation) (float64, error) {
	rep, err := freq.Detect(r, s.Attr, len(s.WM), s.Params)
	if err != nil {
		return 0, err
	}
	return 1 - ecc.AlterationRate(s.WM, rep.WM), nil
}

// KAScheme adapts the Kiernan–Agrawal baseline. Its detection score is the
// bit agreement rate, which sits at ~0.5 on unmarked data like the
// categorical schemes' match fractions.
type KAScheme struct {
	Opts baseline.KAOptions
}

// Name implements Scheme.
func (s *KAScheme) Name() string { return "kiernan-agrawal-lsb" }

// Embed implements Scheme.
func (s *KAScheme) Embed(r *relation.Relation) error {
	_, err := baseline.KAEmbed(r, s.Opts)
	return err
}

// Detect implements Scheme.
func (s *KAScheme) Detect(r *relation.Relation) (float64, error) {
	rep, err := baseline.KADetect(r, s.Opts)
	if err != nil {
		return 0, err
	}
	return rep.MatchRate(), nil
}

// AlterationAttack returns the A3 family over attr: level = fraction of
// tuples randomly rewritten within dom.
func AlterationAttack(attr string, dom *relation.Domain) AttackFamily {
	return AttackFamily{
		Name: "A3-alteration",
		Apply: func(r *relation.Relation, level float64, src *stats.Source) (*relation.Relation, error) {
			if level == 0 {
				return r.Clone(), nil
			}
			return attacks.SubsetAlteration(r, attr, level, dom, src)
		},
	}
}

// LossAttack returns the A1 family: level = fraction of tuples dropped.
func LossAttack() AttackFamily {
	return AttackFamily{
		Name: "A1-loss",
		Apply: func(r *relation.Relation, level float64, src *stats.Source) (*relation.Relation, error) {
			if level >= 1 {
				level = 0.99
			}
			return attacks.HorizontalSubset(r, 1-level, src)
		},
	}
}

// AdditionAttack returns the A2 family: level = added fraction.
func AdditionAttack() AttackFamily {
	return AttackFamily{
		Name: "A2-addition",
		Apply: func(r *relation.Relation, level float64, src *stats.Source) (*relation.Relation, error) {
			return attacks.SubsetAddition(r, level, src)
		},
	}
}
