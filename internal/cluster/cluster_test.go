package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/keyhash"
	"repro/internal/mark"
	"repro/internal/pipeline"
	"repro/internal/relation"
)

// ---- fixtures ----

// auditFixture is a watermarked corpus plus a certificate catalog — the
// inputs every distributed-vs-local equivalence test shares.
type auditFixture struct {
	rel     *relation.Relation
	schema  *relation.Schema
	spec    string
	records []*core.Record
}

func newAuditFixture(t *testing.T, rows, certs int) *auditFixture {
	t.Helper()
	r, _, err := datagen.ItemScan(datagen.ItemScanConfig{
		N: rows, CatalogSize: 120, ZipfS: 1.0, Seed: "cluster-test",
	})
	if err != nil {
		t.Fatal(err)
	}
	f := &auditFixture{rel: r, schema: r.Schema(), spec: relation.SchemaSpec(r.Schema())}
	for i := 0; i < certs; i++ {
		rec, _, err := core.Watermark(r, core.Spec{
			Secret:    fmt.Sprintf("owner-%d", i),
			Attribute: "Item_Nbr",
			WM:        "10110011",
			E:         4,
		})
		if err != nil {
			t.Fatal(err)
		}
		f.records = append(f.records, rec)
	}
	return f
}

func (f *auditFixture) rows() relation.RowReader { return relation.Rows(f.rel) }

// localTallies is the single-node reference: one pipeline.ScanMany pass.
func (f *auditFixture) localTallies(t *testing.T, prep *core.BatchPrep) []*mark.Tally {
	t.Helper()
	tallies, err := pipeline.ScanMany(context.Background(), f.rows(), prep.Scanners(), pipeline.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return tallies
}

// testWorker is an in-process worker node: the real ExecuteShard behind
// the real wire shapes, with fault-injection hooks.
type testWorker struct {
	ts *httptest.Server
	// served counts successfully scanned shards.
	served atomic.Int64
	// failWith, when non-nil, decides per-request whether to fail and
	// how: return an error to send it as HTTP 400, or panic with
	// http.ErrAbortHandler inside to kill the connection.
	failWith func(req api.ShardScanRequest) error
	// delay, when non-nil, sleeps before scanning (for forcing
	// out-of-order shard completion).
	delay func(req api.ShardScanRequest)
	// maxConcurrent observes the capacity ceiling the coordinator honors.
	inflight      atomic.Int64
	maxConcurrent atomic.Int64
}

func startTestWorker(t *testing.T) *testWorker {
	t.Helper()
	w := &testWorker{}
	w.ts = httptest.NewServer(http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost || r.URL.Path != "/v2/internal/scan" {
			http.NotFound(rw, r)
			return
		}
		cur := w.inflight.Add(1)
		defer w.inflight.Add(-1)
		for {
			max := w.maxConcurrent.Load()
			if cur <= max || w.maxConcurrent.CompareAndSwap(max, cur) {
				break
			}
		}
		var req api.ShardScanRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(rw, err.Error(), http.StatusBadRequest)
			return
		}
		if w.failWith != nil {
			if err := w.failWith(req); err != nil {
				data, _ := json.Marshal(api.Errorf(api.CodeInternal, "%v", err))
				rw.Header().Set("Content-Type", "application/json")
				rw.WriteHeader(http.StatusInternalServerError)
				rw.Write(data)
				return
			}
		}
		if w.delay != nil {
			w.delay(req)
		}
		resp, err := ExecuteShard(r.Context(), req, core.BatchOptions{})
		if err != nil {
			http.Error(rw, err.Error(), http.StatusBadRequest)
			return
		}
		w.served.Add(1)
		json.NewEncoder(rw).Encode(resp)
	}))
	t.Cleanup(w.ts.Close)
	return w
}

func (w *testWorker) register(c *Coordinator, id string, capacity int) {
	c.Register(api.WorkerRegistration{ID: id, URL: w.ts.URL, Capacity: capacity})
}

// ---- membership ----

func TestCoordinatorMembershipLease(t *testing.T) {
	clock := time.Unix(1000, 0)
	var mu sync.Mutex
	now := func() time.Time { mu.Lock(); defer mu.Unlock(); return clock }
	advance := func(d time.Duration) { mu.Lock(); clock = clock.Add(d); mu.Unlock() }

	c := NewCoordinator(Config{Heartbeat: time.Second}, withClock(now))
	ack := c.Register(api.WorkerRegistration{URL: "http://w1:1"})
	if ack.HeartbeatSeconds != 1 || ack.TTLSeconds != 3 {
		t.Fatalf("ack = %+v, want heartbeat 1s, ttl 3s", ack)
	}
	if got := c.LiveWorkers(); got != 1 {
		t.Fatalf("LiveWorkers = %d, want 1", got)
	}
	st := c.Status()
	if st.Role != api.RoleCoordinator || len(st.Workers) != 1 || !st.Workers[0].Live {
		t.Fatalf("status = %+v", st)
	}
	if st.Workers[0].ID != "http://w1:1" {
		t.Fatalf("empty ID should default to URL, got %q", st.Workers[0].ID)
	}
	if st.Workers[0].Capacity != 1 {
		t.Fatalf("capacity should default to 1, got %d", st.Workers[0].Capacity)
	}

	// Lease expires past the TTL; the entry stays visible (with its age)
	// but stops counting as live and receives no shards.
	advance(4 * time.Second)
	if got := c.LiveWorkers(); got != 0 {
		t.Fatalf("LiveWorkers after expiry = %d, want 0", got)
	}
	st = c.Status()
	if st.Workers[0].Live || st.Workers[0].LastHeartbeatAgeSeconds != 4 {
		t.Fatalf("expired worker status = %+v", st.Workers[0])
	}
	if m := c.acquire(nil); m != nil {
		t.Fatalf("acquire handed out an expired worker: %+v", m)
	}

	// A heartbeat revives it.
	c.Register(api.WorkerRegistration{URL: "http://w1:1", Capacity: 2})
	if got := c.LiveWorkers(); got != 1 {
		t.Fatalf("LiveWorkers after revival = %d, want 1", got)
	}

	// Long-dead members are pruned on the next registration.
	advance(31 * time.Second) // past 10×TTL
	c.Register(api.WorkerRegistration{ID: "w2", URL: "http://w2:1"})
	st = c.Status()
	if len(st.Workers) != 1 || st.Workers[0].ID != "w2" {
		t.Fatalf("stale member not pruned: %+v", st.Workers)
	}
}

func TestCoordinatorAcquirePrefersUntriedLeastLoaded(t *testing.T) {
	c := NewCoordinator(Config{})
	c.Register(api.WorkerRegistration{ID: "a", URL: "http://a", Capacity: 2})
	c.Register(api.WorkerRegistration{ID: "b", URL: "http://b", Capacity: 1})

	m1 := c.acquire(nil)
	if m1 == nil || m1.id != "a" {
		t.Fatalf("first acquire = %+v, want least-loaded tiebreak to a", m1)
	}
	// a now has 1 active of 2; b has 0 of 1 — b is least loaded.
	m2 := c.acquire(nil)
	if m2 == nil || m2.id != "b" {
		t.Fatalf("second acquire = %+v, want b", m2)
	}
	// Avoiding b leaves a's second slot.
	m3 := c.acquire(map[string]bool{"b": true})
	if m3 == nil || m3.id != "a" {
		t.Fatalf("third acquire = %+v, want a", m3)
	}
	// Everything full.
	if m := c.acquire(nil); m != nil {
		t.Fatalf("acquire over capacity = %+v, want nil", m)
	}
	// b frees a slot, but a (untried, merely busy) still exists: a shard
	// that failed on b WAITS for a rather than retrying where it failed.
	c.release(m2, false)
	if m := c.acquire(map[string]bool{"b": true}); m != nil {
		t.Fatalf("acquire = %+v, want nil (wait for the untried worker)", m)
	}
	// Once b is the sole survivor, the avoid set yields — retrying on the
	// last live worker beats failing the audit.
	c.release(m1, true)
	c.release(m3, true) // a now unreachable with no active shards
	m4 := c.acquire(map[string]bool{"b": true})
	if m4 == nil || m4.id != "b" {
		t.Fatalf("sole-survivor acquire = %+v, want b despite avoid", m4)
	}
}

// ---- distributed scan equivalence ----

// TestScanShardsMatchesLocalScan is the core equivalence contract: a
// coordinator with N ∈ {1, 2, 4} workers produces per-certificate tallies
// DeepEqual to one local pipeline.ScanMany pass — and tally equality
// makes every downstream report equal for BOTH vote aggregations, since
// Scanner.Report is a pure function of (tally, aggregation). The explicit
// both-aggregation report check runs at the end anyway.
func TestScanShardsMatchesLocalScan(t *testing.T) {
	f := newAuditFixture(t, 4000, 3)
	prep := core.PrepareBatch(f.records, f.schema, core.BatchOptions{})
	want := f.localTallies(t, prep)

	for _, n := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("workers=%d", n), func(t *testing.T) {
			c := NewCoordinator(Config{ShardRows: 256})
			for i := 0; i < n; i++ {
				startTestWorker(t).register(c, fmt.Sprintf("w%d", i), 2)
			}
			got, err := c.ScanShards(context.Background(), f.rows(), prep.Scanners(), ScanJob{
				Records: prep.Records(), Schema: f.spec,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("cluster tallies diverged from local scan")
			}
			assertReportsEqualBothAggregations(t, f, got, want)
		})
	}
}

// assertReportsEqualBothAggregations re-reports cluster and local tallies
// under MajorityVote and LastWriteWins and asserts bit-identical results.
// Report reads only bandwidth, wm length and the aggregation policy from
// its scanner, so a reporting-only scanner (throwaway keys) is enough.
func assertReportsEqualBothAggregations(t *testing.T, f *auditFixture, got, want []*mark.Tally) {
	t.Helper()
	for _, agg := range []mark.VoteAggregation{mark.MajorityVote, mark.LastWriteWins} {
		for j, rec := range f.records {
			dom, err := relation.NewDomain(rec.Domain)
			if err != nil {
				t.Fatal(err)
			}
			reporter, err := mark.NewStreamScanner(f.schema, len(rec.WM), mark.Options{
				Attr: rec.Attribute, K1: keyhash.NewKey("report-k1"), K2: keyhash.NewKey("report-k2"),
				E: rec.E, Domain: dom, BandwidthOverride: rec.Bandwidth, Aggregation: agg,
			})
			if err != nil {
				t.Fatal(err)
			}
			gotRep, gotErr := reporter.Report(got[j])
			wantRep, wantErr := reporter.Report(want[j])
			if !errors.Is(gotErr, wantErr) && (gotErr == nil) != (wantErr == nil) {
				t.Fatalf("%v cert %d: report errors diverged: %v vs %v", agg, j, gotErr, wantErr)
			}
			if !reflect.DeepEqual(gotRep, wantRep) {
				t.Fatalf("%v cert %d: cluster report diverged from local", agg, j)
			}
		}
	}
}

// TestScanShardsOutOfOrderCompletion forces shard 0 to finish LAST (it
// sleeps while every other shard races ahead on the second worker) and
// asserts the merge still happens in row order — the LastWriteWins column
// would corrupt under completion-order merging.
func TestScanShardsOutOfOrderCompletion(t *testing.T) {
	f := newAuditFixture(t, 2000, 2)
	prep := core.PrepareBatch(f.records, f.schema, core.BatchOptions{})
	want := f.localTallies(t, prep)

	c := NewCoordinator(Config{ShardRows: 128})
	slow := startTestWorker(t)
	slow.delay = func(req api.ShardScanRequest) {
		if req.Shard == 0 {
			time.Sleep(150 * time.Millisecond)
		}
	}
	slow.register(c, "slow", 1)
	startTestWorker(t).register(c, "fast", 4)

	got, err := c.ScanShards(context.Background(), f.rows(), prep.Scanners(), ScanJob{
		Records: prep.Records(), Schema: f.spec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("out-of-order completion corrupted the merged tallies")
	}
	assertReportsEqualBothAggregations(t, f, got, want)
}

// TestScanShardsRetriesOnWorkerDeath kills one worker's connections
// mid-audit (every request dies at the transport, as a killed process
// would) and asserts the audit still completes bit-identically on the
// survivor, with the dead worker marked unreachable.
func TestScanShardsRetriesOnWorkerDeath(t *testing.T) {
	f := newAuditFixture(t, 3000, 2)
	prep := core.PrepareBatch(f.records, f.schema, core.BatchOptions{})
	want := f.localTallies(t, prep)

	c := NewCoordinator(Config{ShardRows: 256})
	healthy := startTestWorker(t)
	healthy.register(c, "healthy", 2)

	dying := startTestWorker(t)
	var dyingHits atomic.Int64
	dying.failWith = func(api.ShardScanRequest) error {
		dyingHits.Add(1)
		panic(http.ErrAbortHandler) // kill the TCP connection mid-request
	}
	dying.register(c, "dying", 2)

	got, err := c.ScanShards(context.Background(), f.rows(), prep.Scanners(), ScanJob{
		Records: prep.Records(), Schema: f.spec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("worker death changed the merged tallies")
	}
	if dyingHits.Load() == 0 {
		t.Fatal("test never exercised the dying worker")
	}
	for _, w := range c.Status().Workers {
		if w.ID == "dying" && w.Live {
			t.Fatal("transport-failed worker still marked live")
		}
	}
}

// TestScanShardsRetriesOnWorkerError routes shards away from a worker
// that answers 500 (alive but failing): the shard is retried elsewhere,
// the worker keeps its lease.
func TestScanShardsRetriesOnWorkerError(t *testing.T) {
	f := newAuditFixture(t, 1500, 1)
	prep := core.PrepareBatch(f.records, f.schema, core.BatchOptions{})
	want := f.localTallies(t, prep)

	c := NewCoordinator(Config{ShardRows: 200})
	startTestWorker(t).register(c, "good", 1)
	bad := startTestWorker(t)
	bad.failWith = func(api.ShardScanRequest) error { return errors.New("disk on fire") }
	bad.register(c, "bad", 1)

	got, err := c.ScanShards(context.Background(), f.rows(), prep.Scanners(), ScanJob{
		Records: prep.Records(), Schema: f.spec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("erroring worker changed the merged tallies")
	}
	for _, w := range c.Status().Workers {
		if w.ID == "bad" && !w.Live {
			t.Fatal("an HTTP-level error should not cost the worker its lease")
		}
	}
}

// TestScanShardsProgressAndCapacity checks the aggregate progress ticks
// (every suspect row exactly once, regardless of retries) and that a
// capacity-1 worker never holds two shards.
func TestScanShardsProgressAndCapacity(t *testing.T) {
	f := newAuditFixture(t, 1000, 1)
	prep := core.PrepareBatch(f.records, f.schema, core.BatchOptions{})

	c := NewCoordinator(Config{ShardRows: 100})
	w := startTestWorker(t)
	w.delay = func(api.ShardScanRequest) { time.Sleep(2 * time.Millisecond) }
	w.register(c, "solo", 1)

	var progress atomic.Int64
	_, err := c.ScanShards(context.Background(), f.rows(), prep.Scanners(), ScanJob{
		Records: prep.Records(), Schema: f.spec,
		Progress: func(n int) { progress.Add(int64(n)) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := progress.Load(); got != int64(f.rel.Len()) {
		t.Fatalf("progress = %d, want %d", got, f.rel.Len())
	}
	if max := w.maxConcurrent.Load(); max > 1 {
		t.Fatalf("capacity-1 worker held %d concurrent shards", max)
	}
}

func TestScanShardsNoWorkers(t *testing.T) {
	f := newAuditFixture(t, 200, 1)
	prep := core.PrepareBatch(f.records, f.schema, core.BatchOptions{})
	c := NewCoordinator(Config{ShardRows: 100})
	_, err := c.ScanShards(context.Background(), f.rows(), prep.Scanners(), ScanJob{
		Records: prep.Records(), Schema: f.spec,
	})
	if !errors.Is(err, ErrNoWorkers) {
		t.Fatalf("err = %v, want ErrNoWorkers", err)
	}
}

func TestScanShardsExhaustsRetries(t *testing.T) {
	f := newAuditFixture(t, 500, 1)
	prep := core.PrepareBatch(f.records, f.schema, core.BatchOptions{})
	c := NewCoordinator(Config{ShardRows: 100, MaxShardAttempts: 2})
	bad := startTestWorker(t)
	bad.failWith = func(api.ShardScanRequest) error { return errors.New("always failing") }
	bad.register(c, "bad", 2)

	_, err := c.ScanShards(context.Background(), f.rows(), prep.Scanners(), ScanJob{
		Records: prep.Records(), Schema: f.spec,
	})
	if err == nil || !strings.Contains(err.Error(), "failed on 2 workers") {
		t.Fatalf("err = %v, want retry exhaustion", err)
	}
}

func TestScanShardsCancellation(t *testing.T) {
	f := newAuditFixture(t, 2000, 1)
	prep := core.PrepareBatch(f.records, f.schema, core.BatchOptions{})
	c := NewCoordinator(Config{ShardRows: 50})
	ctx, cancel := context.WithCancel(context.Background())
	w := startTestWorker(t)
	w.delay = func(req api.ShardScanRequest) {
		if req.Shard == 2 {
			cancel() // cancel mid-audit, with shards still pending
		}
		time.Sleep(5 * time.Millisecond)
	}
	w.register(c, "solo", 1)

	_, err := c.ScanShards(ctx, f.rows(), prep.Scanners(), ScanJob{
		Records: prep.Records(), Schema: f.spec,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestExecuteShardMatchesVerifyBatch pins the worker entry point itself:
// scanning a whole corpus as one shard equals core.VerifyBatch's internal
// scan, surfaced through identical reports.
func TestExecuteShardMatchesVerifyBatch(t *testing.T) {
	f := newAuditFixture(t, 1200, 2)
	var data strings.Builder
	if err := relation.WriteCSV(&data, f.rel); err != nil {
		t.Fatal(err)
	}
	resp, err := ExecuteShard(context.Background(), api.ShardScanRequest{
		Schema: f.spec, Data: data.String(), Records: f.records,
	}, core.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Rows != f.rel.Len() {
		t.Fatalf("rows = %d, want %d", resp.Rows, f.rel.Len())
	}

	prep := core.PrepareBatch(f.records, f.schema, core.BatchOptions{})
	tallies := make([]*mark.Tally, len(resp.Tallies))
	for j, w := range resp.Tallies {
		if tallies[j], err = w.Tally(); err != nil {
			t.Fatal(err)
		}
	}
	gotReports := prep.Reports(tallies)

	wantReports, err := core.VerifyBatch(context.Background(), f.records, f.rows(), core.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotReports, wantReports) {
		t.Fatal("ExecuteShard reports diverged from VerifyBatch")
	}
}

// ---- agent ----

func TestAgentHeartbeats(t *testing.T) {
	coord := NewCoordinator(Config{Heartbeat: 20 * time.Millisecond})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost || r.URL.Path != "/v2/internal/workers" {
			http.NotFound(w, r)
			return
		}
		var reg api.WorkerRegistration
		if err := json.NewDecoder(r.Body).Decode(&reg); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		json.NewEncoder(w).Encode(coord.Register(reg))
	}))
	defer ts.Close()

	beats := make(chan error, 64)
	agent := StartAgent(ts.URL, api.WorkerRegistration{ID: "w1", URL: "http://me:1", Capacity: 3},
		WithAgentHTTPClient(ts.Client()), withBeatHook(func(err error) { beats <- err }))
	defer agent.Stop()

	// First beat registers immediately; later beats use the coordinator's
	// advertised 20ms interval rather than the 2s default.
	deadline := time.After(2 * time.Second)
	for i := 0; i < 3; i++ {
		select {
		case err := <-beats:
			if err != nil {
				t.Fatalf("beat %d failed: %v", i, err)
			}
		case <-deadline:
			t.Fatalf("saw %d beats before deadline — interval not adopted from ack?", i)
		}
	}
	if got := coord.LiveWorkers(); got != 1 {
		t.Fatalf("LiveWorkers = %d, want 1", got)
	}
	st := coord.Status()
	if st.Workers[0].ID != "w1" || st.Workers[0].Capacity != 3 {
		t.Fatalf("registered worker = %+v", st.Workers[0])
	}

	agent.Stop()
	if agent.Coordinator() != ts.URL {
		t.Fatalf("Coordinator() = %q", agent.Coordinator())
	}
}

// blockingRowReader wraps a RowReader and counts Read calls, so a test
// can assert the reader goroutine has truly let go of the source.
type blockingRowReader struct {
	inner relation.RowReader
	reads atomic.Int64
}

func (b *blockingRowReader) Schema() *relation.Schema { return b.inner.Schema() }
func (b *blockingRowReader) Read() (relation.Tuple, error) {
	b.reads.Add(1)
	return b.inner.Read()
}

// TestScanShardsReleasesSourceOnFailure pins the reader-lifetime
// contract: once ScanShards returns — even on a mid-corpus fatal error —
// the source stream is never read again. (The server hands ScanShards a
// RowReader over an HTTP request body; net/http closes that body the
// moment the handler returns, so a straggling reader would race it.)
func TestScanShardsReleasesSourceOnFailure(t *testing.T) {
	f := newAuditFixture(t, 5000, 1)
	prep := core.PrepareBatch(f.records, f.schema, core.BatchOptions{})
	c := NewCoordinator(Config{ShardRows: 100, MaxShardAttempts: 1, MaxBufferedShards: 2})
	bad := startTestWorker(t)
	bad.failWith = func(api.ShardScanRequest) error { return errors.New("nope") }
	bad.register(c, "bad", 1)

	src := &blockingRowReader{inner: f.rows()}
	_, err := c.ScanShards(context.Background(), src, prep.Scanners(), ScanJob{
		Records: prep.Records(), Schema: f.spec,
	})
	if err == nil {
		t.Fatal("scan against an always-failing worker succeeded")
	}
	after := src.reads.Load()
	time.Sleep(50 * time.Millisecond)
	if got := src.reads.Load(); got != after {
		t.Fatalf("source read %d more times after ScanShards returned", got-after)
	}
	if after >= 5001 {
		t.Fatalf("reader drained the whole corpus (%d reads) despite the early failure", after)
	}
}

// TestScanShardsBackpressure runs a corpus of many small shards through
// a deliberately slow capacity-1 worker under a tight buffer bound: the
// reader must never run more than MaxBufferedShards + in-flight + 1
// shards ahead of the scans, and the result must still be bit-identical.
func TestScanShardsBackpressure(t *testing.T) {
	f := newAuditFixture(t, 3000, 1)
	prep := core.PrepareBatch(f.records, f.schema, core.BatchOptions{})
	want := f.localTallies(t, prep)

	const maxBuffered = 2
	c := NewCoordinator(Config{ShardRows: 100, MaxBufferedShards: maxBuffered})
	w := startTestWorker(t)
	w.delay = func(api.ShardScanRequest) { time.Sleep(time.Millisecond) }
	w.register(c, "slow", 1)

	src := &blockingRowReader{inner: f.rows()}
	var maxLead int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-done:
				return
			default:
			}
			lead := src.reads.Load()/100 - w.served.Load()
			if lead > atomic.LoadInt64(&maxLead) {
				atomic.StoreInt64(&maxLead, lead)
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()
	got, err := c.ScanShards(context.Background(), src, prep.Scanners(), ScanJob{
		Records: prep.Records(), Schema: f.spec,
	})
	done <- struct{}{}
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("backpressure changed the merged tallies")
	}
	// buffered (2) + in-flight (1) + the shard being accumulated (1),
	// plus one shard of sampling slack.
	if lead := atomic.LoadInt64(&maxLead); lead > maxBuffered+3 {
		t.Fatalf("reader ran %d shards ahead of the scans (bound %d)", lead, maxBuffered)
	}
}

// TestAgentReportsFailures pins the no-silent-failure contract: an agent
// pointed at something that is not a coordinator keeps LastError set,
// and it clears (with the joined transition observable) once heartbeats
// succeed.
func TestAgentReportsFailures(t *testing.T) {
	notACoordinator := httptest.NewServer(http.NotFoundHandler())
	defer notACoordinator.Close()

	beats := make(chan error, 64)
	agent := StartAgent(notACoordinator.URL, api.WorkerRegistration{ID: "w", URL: "http://me:1"},
		WithAgentHTTPClient(notACoordinator.Client()), withBeatHook(func(err error) { beats <- err }))
	defer agent.Stop()

	select {
	case err := <-beats:
		if err == nil {
			t.Fatal("registration against a 404 endpoint reported success")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no beat observed")
	}
	if agent.LastError() == nil {
		t.Fatal("LastError nil after a failed registration")
	}
}

// TestScanShardsMalformedResponseKeepsLease pins the classification of a
// worker that ANSWERS with garbage (version skew, corrupt tally): its
// shards retry elsewhere, but it is alive and keeps its lease — only
// transport failures empty the membership table.
func TestScanShardsMalformedResponseKeepsLease(t *testing.T) {
	f := newAuditFixture(t, 1000, 1)
	prep := core.PrepareBatch(f.records, f.schema, core.BatchOptions{})
	want := f.localTallies(t, prep)

	c := NewCoordinator(Config{ShardRows: 200})
	startTestWorker(t).register(c, "good", 1)
	garbage := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// 200 with a wrong-shaped body: zero tallies for one certificate.
		json.NewEncoder(w).Encode(api.ShardScanResponse{}) //nolint:errcheck
	}))
	t.Cleanup(garbage.Close)
	c.Register(api.WorkerRegistration{ID: "skewed", URL: garbage.URL, Capacity: 1})

	got, err := c.ScanShards(context.Background(), f.rows(), prep.Scanners(), ScanJob{
		Records: prep.Records(), Schema: f.spec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("malformed responses corrupted the merged tallies")
	}
	for _, w := range c.Status().Workers {
		if w.ID == "skewed" && !w.Live {
			t.Fatal("a worker that answers (with garbage) lost its lease as if unreachable")
		}
	}
}
