package cluster

import (
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/client"
	"repro/internal/obs"
)

// Coordinator owns the cluster membership table and schedules shard
// scans over it. Create with NewCoordinator; it holds no goroutines of
// its own — registration is driven by worker heartbeats arriving over
// HTTP, scans by ScanShards callers.
type Coordinator struct {
	cfg Config
	// now is the clock, swappable in tests to age leases synthetically.
	now func() time.Time
	// httpClient builds each member's SDK client; tests substitute the
	// httptest client.
	httpClient *http.Client
	// log receives membership transitions and shard dispatch events;
	// defaults to a discard logger.
	log *slog.Logger
	// met is the telemetry bundle, nil without WithObs.
	met *metrics

	mu      sync.Mutex
	members map[string]*member
	scans   map[*scan]struct{}
}

// member is one registered worker.
type member struct {
	id       string
	url      string
	capacity int
	client   *client.Client
	lastSeen time.Time
	// active counts dispatched shards the worker currently holds.
	active int
	// unreachable marks a worker whose transport failed mid-scan; it
	// stops receiving shards immediately (no TTL wait) until a fresh
	// heartbeat revives it.
	unreachable bool
	// kernel and hashesPerSec echo the worker's registration: the hash
	// backend it scans with and its calibrated single-thread hash rate.
	kernel       string
	hashesPerSec float64
	// rowsPerSec is the observed scan throughput (EWMA over completed
	// shards) — what auto shard sizing trusts once it exists. Zero until
	// the worker completes its first shard.
	rowsPerSec float64
}

// CoordinatorOption customises a Coordinator.
type CoordinatorOption func(*Coordinator)

// WithHTTPClient substitutes the http.Client the coordinator dials
// workers with.
func WithHTTPClient(hc *http.Client) CoordinatorOption {
	return func(c *Coordinator) { c.httpClient = hc }
}

// withClock substitutes the coordinator's clock (tests only).
func withClock(now func() time.Time) CoordinatorOption {
	return func(c *Coordinator) { c.now = now }
}

// NewCoordinator returns an empty-membership coordinator.
func NewCoordinator(cfg Config, opts ...CoordinatorOption) *Coordinator {
	c := &Coordinator{
		cfg:        cfg,
		now:        time.Now,
		httpClient: http.DefaultClient,
		log:        obs.Discard(),
		members:    make(map[string]*member),
		scans:      make(map[*scan]struct{}),
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Register upserts a worker from a registration (the join and every
// heartbeat look the same) and returns the lease terms. A re-registration
// under a known ID refreshes the lease, revives an unreachable worker,
// and adopts any changed URL or capacity; in-flight shard counts survive,
// so a heartbeat landing mid-scan never double-books capacity.
func (c *Coordinator) Register(reg api.WorkerRegistration) api.WorkerAck {
	id := reg.ID
	if id == "" {
		id = reg.URL
	}
	capacity := reg.Capacity
	if capacity <= 0 {
		capacity = 1
	}
	c.mu.Lock()
	m, ok := c.members[id]
	if !ok {
		m = &member{id: id}
		c.members[id] = m
	}
	revived := ok && m.unreachable
	if m.url != reg.URL || m.client == nil {
		m.url = reg.URL
		m.client = client.New(reg.URL, client.WithHTTPClient(c.httpClient))
	}
	m.capacity = capacity
	m.lastSeen = c.now()
	m.unreachable = false
	m.kernel = reg.Kernel
	m.hashesPerSec = reg.HashesPerSec
	pruned := c.pruneLocked()
	scans := c.activeScansLocked()
	c.mu.Unlock()

	switch {
	case !ok:
		c.met.transition("join")
		c.log.Info("cluster: worker joined", "worker", id, "url", reg.URL, "capacity", capacity)
	case revived:
		c.met.transition("revive")
		c.log.Info("cluster: worker revived", "worker", id)
	}
	for _, p := range pruned {
		c.met.transition("prune")
		c.log.Info("cluster: worker pruned after expired lease", "worker", p)
	}

	// A new or revived worker is fresh dispatch capacity — wake every
	// in-flight scan so parked shards get handed to it.
	for _, s := range scans {
		s.wake()
	}
	return api.WorkerAck{
		HeartbeatSeconds: c.cfg.heartbeat().Seconds(),
		TTLSeconds:       c.cfg.ttl().Seconds(),
	}
}

// liveLocked reports whether a member may receive shards.
func (c *Coordinator) liveLocked(m *member) bool {
	return !m.unreachable && c.now().Sub(m.lastSeen) <= c.cfg.ttl()
}

// pruneLocked drops members whose lease expired long ago (10×TTL) so the
// table does not accumulate every worker that ever joined. Members with
// in-flight shards are kept — their scan goroutines still hold them.
// Returns the pruned IDs so the caller can log and count them outside
// the lock.
func (c *Coordinator) pruneLocked() []string {
	cutoff := c.now().Add(-10 * c.cfg.ttl())
	var pruned []string
	for id, m := range c.members {
		if m.active == 0 && m.lastSeen.Before(cutoff) {
			delete(c.members, id)
			pruned = append(pruned, id)
		}
	}
	return pruned
}

// LiveWorkers counts workers with a current lease — the signal the
// server's audit path uses to choose cluster fan-out over a local scan.
func (c *Coordinator) LiveWorkers() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, m := range c.members {
		if c.liveLocked(m) {
			n++
		}
	}
	return n
}

// Status reports the membership table for /healthz, sorted by worker ID.
func (c *Coordinator) Status() api.ClusterStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := api.ClusterStatus{Role: api.RoleCoordinator}
	for _, m := range c.members {
		live := c.liveLocked(m)
		if live {
			st.LiveWorkers++
		}
		st.Workers = append(st.Workers, api.WorkerStatus{
			ID:                      m.id,
			URL:                     m.url,
			Capacity:                m.capacity,
			Live:                    live,
			LastHeartbeatAgeSeconds: c.now().Sub(m.lastSeen).Seconds(),
			ActiveShards:            m.active,
			Kernel:                  m.kernel,
			HashesPerSec:            m.hashesPerSec,
			RowsPerSec:              m.rowsPerSec,
		})
	}
	sort.Slice(st.Workers, func(a, b int) bool { return st.Workers[a].ID < st.Workers[b].ID })
	return st
}

// acquire reserves one shard slot on a live worker, preferring workers
// outside avoid (the set that already failed this shard) and, among
// those, the least-loaded. While a live non-avoided worker exists —
// even a momentarily busy one — avoided workers are never used: waiting
// for a good worker's slot beats burning one of the shard's bounded
// attempts on a worker known to fail it. Only when every live worker has
// already failed the shard is an avoided one handed out — with a single
// surviving worker, retrying there beats failing the audit. Returns nil
// when the shard should wait (or no live worker exists at all).
func (c *Coordinator) acquire(avoid map[string]bool) *member {
	c.mu.Lock()
	defer c.mu.Unlock()
	pickFree := func(skipAvoided bool) *member {
		var best *member
		for _, m := range c.members {
			if !c.liveLocked(m) || m.active >= m.capacity {
				continue
			}
			if skipAvoided && avoid[m.id] {
				continue
			}
			if best == nil || m.active < best.active ||
				(m.active == best.active && m.id < best.id) {
				best = m
			}
		}
		return best
	}
	m := pickFree(true)
	if m == nil && !c.hasLiveOutsideLocked(avoid) {
		m = pickFree(false)
	}
	if m != nil {
		m.active++
	}
	return m
}

// hasLiveOutsideLocked reports whether any live worker — busy or not —
// exists outside the avoid set. Callers hold c.mu.
func (c *Coordinator) hasLiveOutsideLocked(avoid map[string]bool) bool {
	for _, m := range c.members {
		if c.liveLocked(m) && !avoid[m.id] {
			return true
		}
	}
	return false
}

// release returns a shard slot. unreachable additionally marks the worker
// dead until its next heartbeat — the fast path for a killed node, so the
// retried shard does not wait out the TTL to avoid it.
func (c *Coordinator) release(m *member, unreachable bool) {
	c.mu.Lock()
	m.active--
	if unreachable {
		m.unreachable = true
	}
	scans := c.activeScansLocked()
	c.mu.Unlock()
	if unreachable {
		c.met.transition("unreachable")
		c.log.Warn("cluster: worker unreachable, excluded until next heartbeat", "worker", m.id)
	}
	for _, s := range scans {
		s.wake()
	}
}

// addScan/removeScan track in-flight scans so membership changes can wake
// their dispatchers.
func (c *Coordinator) addScan(s *scan) {
	c.mu.Lock()
	c.scans[s] = struct{}{}
	c.mu.Unlock()
}

func (c *Coordinator) removeScan(s *scan) {
	c.mu.Lock()
	delete(c.scans, s)
	c.mu.Unlock()
}

func (c *Coordinator) activeScansLocked() []*scan {
	out := make([]*scan, 0, len(c.scans))
	for s := range c.scans {
		out = append(out, s)
	}
	return out
}

// rateAlpha weights the newest per-shard throughput observation in the
// EWMA: heavy enough to track a worker that warms up or degrades within
// one audit, light enough that a single outlier shard doesn't whipsaw
// the shard size.
const rateAlpha = 0.4

// observeRate folds one completed shard into the worker's rows/s EWMA.
// The first observation is taken whole (no decay toward the seed — the
// seed is a cross-machine heuristic, a measurement beats it outright).
func (c *Coordinator) observeRate(m *member, rows int, elapsed time.Duration) {
	if rows <= 0 || elapsed <= 0 {
		return
	}
	rate := float64(rows) / elapsed.Seconds()
	c.mu.Lock()
	if m.rowsPerSec <= 0 {
		m.rowsPerSec = rate
	} else {
		m.rowsPerSec = rateAlpha*rate + (1-rateAlpha)*m.rowsPerSec
	}
	c.mu.Unlock()
}

// targetShardRows sizes the next shard for auto mode: peek at the worker
// the dispatcher would hand it to (same selection rule as acquire,
// without reserving the slot) and cut the shard so that worker finishes
// in ~TargetShardLatency at its learned rate. Workers with no completed
// shard yet are seeded from their advertised calibrated hash rate,
// scaled so a cluster-average machine gets the configured ShardRows;
// with no signal at all the configured ShardRows stands.
func (c *Coordinator) targetShardRows() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	var best *member
	for _, m := range c.members {
		if !c.liveLocked(m) || m.active >= m.capacity {
			continue
		}
		if best == nil || m.active < best.active ||
			(m.active == best.active && m.id < best.id) {
			best = m
		}
	}
	if best == nil {
		// Every live worker is busy (or none exists). Size for the
		// cluster's mean observed rate so the queued shard suits whoever
		// frees up first.
		if mean := c.meanRateLocked(); mean > 0 {
			return c.clampRows(int(mean * c.cfg.targetShardLatency().Seconds()))
		}
		return c.clampRows(c.cfg.shardRows())
	}
	if best.rowsPerSec > 0 {
		return c.clampRows(int(best.rowsPerSec * c.cfg.targetShardLatency().Seconds()))
	}
	// Unobserved worker: scale the configured shard size by how this
	// worker's calibrated hash rate compares to the cluster mean, so a
	// machine advertising 2× the hashes/s starts with a 2× shard.
	if best.hashesPerSec > 0 {
		if mean := c.meanAdvertisedLocked(); mean > 0 {
			return c.clampRows(int(float64(c.cfg.shardRows()) * best.hashesPerSec / mean))
		}
	}
	return c.clampRows(c.cfg.shardRows())
}

func (c *Coordinator) clampRows(rows int) int {
	if min := c.cfg.minShardRows(); rows < min {
		return min
	}
	if max := c.cfg.maxShardRows(); rows > max {
		return max
	}
	return rows
}

// meanRateLocked averages the observed rows/s over live workers that
// have one. Callers hold c.mu.
func (c *Coordinator) meanRateLocked() float64 {
	sum, n := 0.0, 0
	for _, m := range c.members {
		if c.liveLocked(m) && m.rowsPerSec > 0 {
			sum += m.rowsPerSec
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// meanAdvertisedLocked averages the calibrated hash rates live workers
// advertised at registration. Callers hold c.mu.
func (c *Coordinator) meanAdvertisedLocked() float64 {
	sum, n := 0.0, 0
	for _, m := range c.members {
		if c.liveLocked(m) && m.hashesPerSec > 0 {
			sum += m.hashesPerSec
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
