package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/mark"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/relation"
)

// ScanJob parameterises one distributed corpus scan.
type ScanJob struct {
	// Records is the certificate set, in scanner order — core.BatchPrep's
	// live records. Shipped verbatim to every worker.
	Records []*core.Record
	// Schema is the schema-spec string shard payloads conform to.
	Schema string
	// BlockRows and Workers pass through to each worker's scan
	// (api.ShardScanRequest semantics).
	BlockRows int
	Workers   int
	// Progress, when non-nil, receives each completed shard's row count —
	// the cluster aggregate of the per-block ticks a local scan would
	// emit. Called from shard goroutines; must be concurrency-safe.
	Progress func(tuples int)
}

// shardTask is one row-range shard travelling through the scheduler.
type shardTask struct {
	idx      int
	data     string // serialized rows, CSV with header
	rows     int
	attempts int
	// failed is the set of worker IDs that already failed this shard;
	// acquire avoids them while an untried live worker exists.
	failed map[string]bool
	// sub/child track re-splitting: when an auto-sized shard fails, the
	// retry may cut it into smaller children (same idx, sub 0..n-1) so a
	// shard sized for a fast worker that died isn't forced whole onto a
	// slow survivor. Children never split again.
	sub   int
	child bool
}

// resKey addresses one parked partial result: a whole shard is
// {idx, 0}; a split shard parks one entry per child.
type resKey struct{ idx, sub int }

// scan is the mutable state of one ScanShards call.
type scan struct {
	c   *Coordinator
	ctx context.Context
	job ScanJob
	// format is the wire format shard payloads are serialized in: the
	// source's own format when it can hand out raw record bytes
	// (relation.RawShardSource), "csv" re-serialization otherwise.
	format string
	// bandwidths holds each scanner's |wm_data|, the shape every wire
	// tally is validated against before it may merge.
	bandwidths []int

	// kick wakes the dispatcher after any state change; buffered so a
	// wake between dispatcher polls is never lost. feed is the same
	// mechanism pointed the other way: it wakes a reader parked on a
	// full pending queue when the dispatcher drains it (or the scan
	// dies). readerExited closes when the reader goroutine stops
	// touching src — ScanShards never returns before it, so a caller's
	// stream (an HTTP request body, typically) is never read after the
	// call unwinds.
	kick         chan struct{}
	feed         chan struct{}
	readerExited chan struct{}

	mu         sync.Mutex
	pending    []*shardTask
	inflight   int
	produced   int
	readerDone bool
	err        error
	results    map[resKey][]*mark.Tally
	// subCount marks shards that were re-split on retry: idx -> number
	// of children whose partials must merge in sub order.
	subCount map[int]int
}

// wake nudges the dispatcher (non-blocking; coalesces).
func (s *scan) wake() {
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// wakeFeeder nudges a reader parked on a full queue.
func (s *scan) wakeFeeder() {
	select {
	case s.feed <- struct{}{}:
	default:
	}
}

// failLocked records the scan's first fatal error; callers hold s.mu and
// wake the loops they may have parked after unlocking.
func (s *scan) failLocked(err error) {
	if s.err == nil {
		s.err = err
	}
}

// ScanShards fans one streaming pass of src out across the cluster:
// contiguous row-range shards are serialized and dispatched to live
// workers (capacity-bounded, least-loaded first), failed or timed-out
// shards are retried on surviving workers, and the returned partial
// tallies are folded in row order — so the result is one merged tally per
// scanner, bit-identical to pipeline.ScanMany over the same stream for
// both vote aggregations (the LastWriteWins column is exactly why merge
// order is shard order, not completion order).
//
// scanners must be prepared against src's schema and correspond 1:1 with
// job.Records; the coordinator uses them only for tally sizing and
// validation — all scanning happens on workers. A cancelled ctx stops the
// reader between shards, abandons in-flight RPCs, and returns ctx.Err().
// If every worker dies mid-scan the call fails with ErrNoWorkers (wrapped
// with the stranded shard's index) once retries are exhausted.
func (c *Coordinator) ScanShards(ctx context.Context, src relation.RowReader, scanners []*mark.Scanner, job ScanJob) ([]*mark.Tally, error) {
	if len(scanners) != len(job.Records) {
		return nil, fmt.Errorf("cluster: %d scanners for %d records", len(scanners), len(job.Records))
	}
	if len(scanners) == 0 {
		return nil, errors.New("cluster: no certificates to scan")
	}
	format := "csv"
	if raw, ok := src.(relation.RawShardSource); ok {
		format = raw.FormatName()
	}
	s := &scan{
		c:            c,
		ctx:          ctx,
		job:          job,
		format:       format,
		bandwidths:   make([]int, len(scanners)),
		kick:         make(chan struct{}, 1),
		feed:         make(chan struct{}, 1),
		readerExited: make(chan struct{}),
		results:      make(map[resKey][]*mark.Tally),
		subCount:     make(map[int]int),
	}
	for j, sc := range scanners {
		s.bandwidths[j] = sc.Bandwidth()
	}
	c.addScan(s)
	defer c.removeScan(s)

	// The ctx watcher wakes both loops so cancellation is observed even
	// while every shard slot (or the reader) is parked.
	watcherDone := make(chan struct{})
	defer close(watcherDone)
	go func() {
		select {
		case <-ctx.Done():
			s.wake()
			s.wakeFeeder()
		case <-watcherDone:
		}
	}()

	go s.readShards(src)
	// However the dispatch ends, wait for the reader to let go of src
	// before returning: the caller may close the stream (net/http closes
	// a request body when its handler returns) the moment this call
	// unwinds.
	err := s.dispatch()
	s.wakeFeeder()
	<-s.readerExited
	if err != nil {
		return nil, err
	}

	// Merge in shard (row) order. Every produced shard has a parked
	// result — dispatch only returns nil once done == produced.
	totals := make([]*mark.Tally, len(scanners))
	for j, sc := range scanners {
		totals[j] = sc.NewTally()
	}
	for idx := 0; idx < s.produced; idx++ {
		subs := 1
		if n := s.subCount[idx]; n > 0 {
			subs = n
		}
		for sub := 0; sub < subs; sub++ {
			for j := range totals {
				totals[j].Merge(s.results[resKey{idx, sub}][j])
			}
		}
	}
	return totals, nil
}

// readShards streams src into serialized shard payloads, appending each
// to the pending queue as it fills. Runs on its own goroutine so shard 0
// can be scanning on a worker while shard 1 is still being read, but
// under backpressure: when MaxBufferedShards undispatched payloads are
// already queued the reader parks until the dispatcher drains one, so
// coordinator memory stays bounded by buffered + in-flight shards, never
// by the corpus. The reader also stops at the next shard boundary (and
// between rows) once the scan has failed or been cancelled.
func (s *scan) readShards(src relation.RowReader) {
	defer close(s.readerExited)
	if raw, ok := src.(relation.RawShardSource); ok {
		// Zero-reprint fast path: the source slices shard payloads
		// straight out of the input bytes (see readRawShards).
		s.readRawShards(raw)
		return
	}
	auto := s.c.cfg.AutoShardRows
	shardRows := s.c.cfg.shardRows()
	maxBuffered := s.c.cfg.maxBufferedShards()
	var (
		buf  strings.Builder
		w    *relation.CSVRowWriter
		rows int
	)
	reset := func() error {
		buf.Reset()
		var err error
		w, err = relation.NewCSVRowWriter(&buf, src.Schema())
		rows = 0
		return err
	}
	finish := func(readErr error) {
		s.mu.Lock()
		s.readerDone = true
		if readErr != nil {
			s.failLocked(readErr)
		}
		s.mu.Unlock()
		s.wake()
	}
	// cut queues the current payload as the next shard, parking first
	// while the queue is full. Reports false when the scan has died and
	// the reader should stop.
	cut := func() bool {
		if err := w.Flush(); err != nil {
			finish(err)
			return false
		}
		task := &shardTask{data: buf.String(), rows: rows, failed: make(map[string]bool)}
		for {
			s.mu.Lock()
			if s.err != nil {
				s.mu.Unlock()
				finish(nil)
				return false
			}
			if len(s.pending) < maxBuffered {
				task.idx = s.produced
				s.produced++
				s.pending = append(s.pending, task)
				s.mu.Unlock()
				s.wake()
				return true
			}
			s.mu.Unlock()
			select {
			case <-s.feed:
			case <-s.ctx.Done():
				finish(s.ctx.Err())
				return false
			}
		}
	}
	stopped := func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.err != nil
	}
	if err := reset(); err != nil {
		finish(err)
		return
	}
	for {
		if s.ctx.Err() != nil {
			finish(s.ctx.Err())
			return
		}
		if stopped() {
			finish(nil)
			return
		}
		// Auto mode sizes each shard as it begins, not up front: the
		// reader stays at most one undispatched shard ahead (so the size
		// reflects the worker that will actually receive it) and asks the
		// coordinator how many rows that worker digests in the target
		// latency.
		if auto && rows == 0 {
			if shardRows = s.autoShardRows(); shardRows == 0 {
				finish(s.ctx.Err())
				return
			}
		}
		t, err := src.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			finish(err)
			return
		}
		if err := w.Write(t); err != nil {
			finish(err)
			return
		}
		rows++
		if rows >= shardRows {
			if !cut() {
				return
			}
			if err := reset(); err != nil {
				finish(err)
				return
			}
		}
	}
	if rows > 0 && !cut() {
		return
	}
	finish(nil)
}

// rawReadRows caps how many rows one ReadBlock call of the raw shard
// encoder parses at a time, bounding the reused block's arena while a
// multi-thousand-row shard accumulates.
const rawReadRows = 4096

// readRawShards is readShards for sources that hand out raw record
// bytes (relation.RawShardSource): each shard payload is the source's
// own header plus verbatim slices of the input stream — the rows are
// still parsed (a malformed record fails the scan exactly where the
// row path would fail), but never re-printed, so the coordinator does
// no per-row string materialization or CSV quoting work at all. The
// backpressure, auto-sizing and failure semantics match readShards.
func (s *scan) readRawShards(src relation.RawShardSource) {
	src.SetRecordRaw(true)
	auto := s.c.cfg.AutoShardRows
	shardRows := s.c.cfg.shardRows()
	maxBuffered := s.c.cfg.maxBufferedShards()
	hdr := string(src.RawHeader())
	blk := relation.GetBlock(src.Schema())
	defer relation.PutBlock(blk)
	var (
		buf  strings.Builder
		rows int
	)
	reset := func() {
		buf.Reset()
		buf.WriteString(hdr)
		rows = 0
	}
	finish := func(readErr error) {
		s.mu.Lock()
		s.readerDone = true
		if readErr != nil {
			s.failLocked(readErr)
		}
		s.mu.Unlock()
		s.wake()
	}
	cut := func() bool {
		task := &shardTask{data: buf.String(), rows: rows, failed: make(map[string]bool)}
		for {
			s.mu.Lock()
			if s.err != nil {
				s.mu.Unlock()
				finish(nil)
				return false
			}
			if len(s.pending) < maxBuffered {
				task.idx = s.produced
				s.produced++
				s.pending = append(s.pending, task)
				s.mu.Unlock()
				s.wake()
				return true
			}
			s.mu.Unlock()
			select {
			case <-s.feed:
			case <-s.ctx.Done():
				finish(s.ctx.Err())
				return false
			}
		}
	}
	stopped := func() bool {
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.err != nil
	}
	reset()
	for {
		if s.ctx.Err() != nil {
			finish(s.ctx.Err())
			return
		}
		if stopped() {
			finish(nil)
			return
		}
		if auto && rows == 0 {
			if shardRows = s.autoShardRows(); shardRows == 0 {
				finish(s.ctx.Err())
				return
			}
		}
		n, err := src.ReadBlock(blk, min(shardRows-rows, rawReadRows))
		if err == io.EOF {
			break
		}
		if err != nil {
			finish(err)
			return
		}
		buf.Write(blk.RawBytes())
		rows += n
		if rows >= shardRows {
			if !cut() {
				return
			}
			reset()
		}
	}
	if rows > 0 && !cut() {
		return
	}
	finish(nil)
}

// autoShardRows parks until the dispatcher has drained the pending
// queue — keeping the reader at most one undispatched shard ahead in
// auto mode — then returns the row count the coordinator recommends for
// the next shard. Returns 0 when the scan has died and the reader
// should stop.
func (s *scan) autoShardRows() int {
	for {
		s.mu.Lock()
		if s.err != nil || s.ctx.Err() != nil {
			s.mu.Unlock()
			return 0
		}
		if len(s.pending) == 0 {
			s.mu.Unlock()
			return s.c.targetShardRows()
		}
		s.mu.Unlock()
		select {
		case <-s.feed:
		case <-s.ctx.Done():
			return 0
		}
	}
}

// dispatch is the scheduler loop: hand pending shards to free workers,
// park when none are free, finish when the reader is drained and every
// shard is done — or when a fatal error (stream error, exhausted retries,
// cancellation, no workers left) surfaces, after in-flight RPCs unwind.
func (s *scan) dispatch() error {
	for {
		s.mu.Lock()
		if s.ctx.Err() != nil {
			s.failLocked(s.ctx.Err())
		}
		if s.err != nil {
			if s.inflight == 0 {
				err := s.err
				s.mu.Unlock()
				return err
			}
			s.mu.Unlock()
		} else if s.readerDone && len(s.pending) == 0 && s.inflight == 0 {
			s.mu.Unlock()
			return nil
		} else if len(s.pending) > 0 {
			task := s.pending[0]
			s.pending = s.pending[1:]
			s.mu.Unlock()
			s.wakeFeeder() // the queue has room again
			if m := s.c.acquire(task.failed); m != nil {
				s.mu.Lock()
				s.inflight++
				s.mu.Unlock()
				go s.runShard(task, m)
				continue // look for more dispatchable work before parking
			}
			// No free slot: put the shard back and, if the cluster has
			// emptied out with nothing in flight to free a slot later,
			// give up.
			s.mu.Lock()
			s.pending = append([]*shardTask{task}, s.pending...)
			if s.inflight == 0 && s.c.LiveWorkers() == 0 {
				s.failLocked(fmt.Errorf("%w (shard %d stranded)", ErrNoWorkers, task.idx))
			}
			s.mu.Unlock()
			s.wakeFeeder()
		} else {
			s.mu.Unlock()
		}
		// Cancellation arrives as a wake too (the ctx watcher), so this
		// never selects on ctx.Done directly — that would spin while
		// in-flight RPCs unwind after cancel.
		<-s.kick
	}
}

// runShard executes one shard RPC against one worker and routes the
// outcome: park the decoded tallies on success, requeue (avoiding this
// worker) on failure, fail the scan once the shard's attempts are spent.
func (s *scan) runShard(task *shardTask, m *member) {
	if met := s.c.met; met != nil {
		met.dispatched.With(m.id).Inc()
	}
	// One child span per attempt: a retried shard shows up as N dispatch
	// spans under the same scan, each naming the worker it tried. The
	// span's context rides into the RPC, so the worker's server span —
	// and everything under it — joins this trace via traceparent.
	sctx, span := trace.Start(s.ctx, "cluster.shard.dispatch")
	defer span.End()
	span.SetInt("shard", int64(task.idx))
	span.SetInt("sub", int64(task.sub))
	span.SetInt("rows", int64(task.rows))
	span.SetAttr("worker", m.id)
	span.SetInt("attempt", int64(task.attempts+1))
	s.c.log.Debug("cluster: shard dispatched",
		"request_id", obs.RequestID(s.ctx), "shard", task.idx, "rows", task.rows,
		"worker", m.id, "attempt", task.attempts+1)
	start := time.Now()
	tallies, err := s.callWorker(sctx, task, m)
	elapsed := time.Since(start)
	span.SetError(err)
	if met := s.c.met; met != nil {
		met.latency.With(m.id).Observe(elapsed.Seconds())
		if err != nil && s.ctx.Err() == nil {
			met.failures.With(m.id).Inc()
		}
	}

	// A transport-level failure (connection refused/reset, timeout) marks
	// the worker unreachable immediately. An api.Error — or a response
	// that arrived but failed validation — means the worker is alive and
	// answering: it keeps its lease and just gets avoided for this shard,
	// so a version-skewed node degrades to retries elsewhere instead of
	// emptying the membership table.
	var aerr *api.Error
	transport := err != nil && !errors.As(err, &aerr) &&
		!errors.Is(err, errInvalidShardResponse) && s.ctx.Err() == nil
	s.c.release(m, transport)

	if err == nil {
		// Feed the autotuner: rows over wall time for this worker. Runs
		// in fixed mode too — the learned rate shows up in /healthz and
		// /metrics either way.
		s.c.observeRate(m, task.rows, elapsed)
		if s.job.Progress != nil {
			s.job.Progress(task.rows)
		}
	}

	attempt := 0
	split := 0
	s.mu.Lock()
	s.inflight--
	switch {
	case err == nil:
		s.results[resKey{task.idx, task.sub}] = tallies
	case s.ctx.Err() != nil || s.err != nil:
		// Cancelled or already failing — drop the shard, the dispatcher
		// is only waiting for in-flight RPCs to unwind.
	default:
		task.attempts++
		attempt = task.attempts
		task.failed[m.id] = true
		if task.attempts >= s.c.cfg.maxShardAttempts() {
			s.failLocked(fmt.Errorf("cluster: shard %d failed on %d workers, last error: %w",
				task.idx, task.attempts, err))
		} else {
			// An auto-sized shard was cut for the worker that just failed
			// it; the survivor retrying it may be far slower. Re-split it
			// in half so the retry granularity matches the cluster that
			// remains. Children keep the shard's attempt budget and never
			// split again; splitting must happen in this same critical
			// section as inflight--, or the dispatcher could observe an
			// empty scheduler and finish without the shard.
			requeue := []*shardTask{task}
			if s.c.cfg.AutoShardRows && !task.child && task.rows >= 2*s.c.cfg.minShardRows() {
				_, rspan := trace.Start(s.ctx, "cluster.shard.resplit")
				rspan.SetInt("shard", int64(task.idx))
				rspan.SetInt("rows", int64(task.rows))
				children, splitErr := s.splitTask(task)
				rspan.SetError(splitErr)
				rspan.End()
				if splitErr == nil {
					s.subCount[task.idx] = len(children)
					requeue = children
					split = len(children)
				}
			}
			s.pending = append(s.pending, requeue...)
			if met := s.c.met; met != nil {
				met.retries.With(m.id).Inc()
			}
		}
	}
	s.mu.Unlock()
	if split > 0 {
		s.c.log.Info("cluster: shard re-split for retry",
			"request_id", obs.RequestID(s.ctx), "shard", task.idx, "rows", task.rows,
			"children", split)
	}
	if attempt > 0 {
		s.c.log.Warn("cluster: shard attempt failed",
			"request_id", obs.RequestID(s.ctx), "shard", task.idx, "worker", m.id,
			"attempt", attempt, "duration", elapsed, "err", err)
	}
	s.wake()
	s.wakeFeeder() // a parked reader re-checks for failure (or freed room)
}

// splitTask cuts a failed shard's payload into two half-sized children
// (same idx, sub 0 and 1) by re-parsing the serialized rows with the
// payload format's raw-recording block reader and slicing each child's
// record bytes verbatim — no re-printing, in either format. The
// children inherit the shard's attempt count and failure history.
func (s *scan) splitTask(task *shardTask) ([]*shardTask, error) {
	schema, err := relation.ParseSchemaSpec(s.job.Schema)
	if err != nil {
		return nil, err
	}
	var src relation.RawShardSource
	if s.format == "jsonl" {
		src = relation.NewJSONLBlockReader(strings.NewReader(task.data), schema)
	} else {
		csrc, err := relation.NewCSVBlockReader(strings.NewReader(task.data), schema)
		if err != nil {
			return nil, fmt.Errorf("cluster: re-split shard %d: %w", task.idx, err)
		}
		src = csrc
	}
	src.SetRecordRaw(true)
	hdr := string(src.RawHeader())
	blk := relation.GetBlock(schema)
	defer relation.PutBlock(blk)
	sizes := [2]int{task.rows / 2, task.rows - task.rows/2}
	children := make([]*shardTask, 0, len(sizes))
	for sub, want := range sizes {
		if err := s.ctx.Err(); err != nil {
			return nil, err
		}
		var buf strings.Builder
		buf.WriteString(hdr)
		for got := 0; got < want; {
			n, err := src.ReadBlock(blk, min(want-got, rawReadRows))
			if err != nil || n == 0 {
				if err == nil {
					err = io.ErrUnexpectedEOF
				}
				return nil, fmt.Errorf("cluster: re-split shard %d: %w", task.idx, err)
			}
			buf.Write(blk.RawBytes())
			got += n
		}
		failed := make(map[string]bool, len(task.failed))
		for id := range task.failed {
			failed[id] = true
		}
		children = append(children, &shardTask{
			idx:      task.idx,
			sub:      sub,
			child:    true,
			data:     buf.String(),
			rows:     want,
			attempts: task.attempts,
			failed:   failed,
		})
	}
	return children, nil
}

// errInvalidShardResponse marks a shard reply that arrived but failed
// validation — the worker is alive, so this must not count as a
// transport failure.
var errInvalidShardResponse = errors.New("invalid shard response")

// callWorker runs the shard RPC under the shard timeout and validates the
// response down to decoded, bandwidth-checked tallies — a malformed
// partial is a shard failure (and a retry), never a corrupt merge.
func (s *scan) callWorker(ctx context.Context, task *shardTask, m *member) ([]*mark.Tally, error) {
	ctx, cancel := context.WithTimeout(ctx, s.c.cfg.shardTimeout())
	defer cancel()
	resp, err := m.client.ScanShard(ctx, api.ShardScanRequest{
		Shard:     task.idx,
		Schema:    s.job.Schema,
		Format:    s.format,
		Data:      task.data,
		Records:   s.job.Records,
		BlockRows: s.job.BlockRows,
		Workers:   s.job.Workers,
	})
	if err != nil {
		return nil, err
	}
	if len(resp.Tallies) != len(s.job.Records) {
		return nil, fmt.Errorf("cluster: worker %s returned %d tallies for %d certificates: %w",
			m.id, len(resp.Tallies), len(s.job.Records), errInvalidShardResponse)
	}
	tallies := make([]*mark.Tally, len(resp.Tallies))
	for j, w := range resp.Tallies {
		if w.Bandwidth() != s.bandwidths[j] {
			return nil, fmt.Errorf("cluster: worker %s shard %d: tally %d has bandwidth %d, want %d: %w",
				m.id, task.idx, j, w.Bandwidth(), s.bandwidths[j], errInvalidShardResponse)
		}
		t, err := w.Tally()
		if err != nil {
			return nil, fmt.Errorf("cluster: worker %s shard %d: %v: %w",
				m.id, task.idx, err, errInvalidShardResponse)
		}
		tallies[j] = t
	}
	return tallies, nil
}
