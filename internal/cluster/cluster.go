// Package cluster is the distributed-audit subsystem: a coordinator that
// fans one corpus verification out across N worker nodes and merges the
// results into a report bit-identical to a single-node scan.
//
// The paper's detector makes this shape cheap. Every per-tuple decision
// derives from the tuple's own key, so a suspect corpus partitions into
// contiguous row-range shards that scan independently; and a detection
// pass accumulates into a mark.Tally whose partials merge in row order
// into exactly the sequential result (pipeline.DetectMany is the
// single-node form of the same identity). The cluster simply moves the
// shard boundary from goroutines to machines:
//
//	        POST /v2/jobs (verify_batch)           [public API]
//	                  │
//	            coordinator ──────────────┐
//	             │ row-range shards +     │ merge partial tallies
//	             ▼ certificate set        │ in row order, Report
//	POST {worker}/v2/internal/scan        │
//	     worker-1 … worker-N ─────────────┘
//	     └─ heartbeat: POST {coordinator}/v2/internal/workers
//
// Membership is lease-based: workers register (and keep re-registering —
// the registration IS the heartbeat) with a URL and a capacity, and the
// coordinator stops dispatching to any worker whose lease has aged past
// the TTL. A shard that fails — worker error, unreachable node, timeout —
// is retried on the surviving workers until MaxShardAttempts is spent, so
// killing a worker mid-audit costs latency, not correctness. Transport
// failures additionally mark the worker unreachable immediately (faster
// than waiting out the TTL); its next successful heartbeat revives it.
//
// The worker side is ExecuteShard: prepare scanners from the certificates
// in the request (every scan parameter derives deterministically from a
// certificate, which is why coordinator- and worker-side scanners cannot
// disagree), run pipeline.ScanMany over the shard rows, and return the
// partial tallies in wire form (mark.TallyWire). internal/server binds it
// to POST /v2/internal/scan and the coordinator to the public audit
// endpoints; cmd/wmserver's -coordinator and -join flags pick the role.
package cluster

import (
	"errors"
	"time"
)

// Defaults for Config's zero values.
const (
	// DefaultHeartbeat is the worker re-registration interval.
	DefaultHeartbeat = 2 * time.Second
	// DefaultTTLFactor sets the lease TTL as a multiple of the heartbeat
	// interval: a worker may miss two beats before it stops receiving
	// shards.
	DefaultTTLFactor = 3
	// DefaultShardRows is the row count of each dispatched shard.
	DefaultShardRows = 8192
	// DefaultMaxShardAttempts bounds how many workers a shard is tried on
	// before the audit fails.
	DefaultMaxShardAttempts = 3
	// DefaultMaxBufferedShards bounds how many undispatched shard
	// payloads the reader may hold serialized in memory — the
	// backpressure that keeps a coordinator auditing a corpus larger
	// than its RAM from buffering the whole thing when workers scan
	// slower than the reader reads.
	DefaultMaxBufferedShards = 32
	// DefaultShardTimeout bounds one shard RPC; a worker that accepts a
	// shard and hangs is treated like an unreachable one.
	DefaultShardTimeout = 5 * time.Minute
	// DefaultTargetShardLatency is the per-shard wall time auto shard
	// sizing aims each worker at: long enough to amortize the RPC and
	// serialization overhead, short enough that a lost worker costs
	// little rework and stragglers can't stall the merge for long.
	DefaultTargetShardLatency = 2 * time.Second
	// DefaultMinShardRows floors auto-sized shards so a worker whose
	// observed throughput momentarily collapses (GC pause, noisy
	// neighbor) isn't handed confetti-sized shards forever.
	DefaultMinShardRows = 256
	// DefaultMaxShardRows caps auto-sized shards so a very fast worker
	// doesn't get handed a shard whose serialized payload dominates
	// coordinator memory and whose loss costs a huge retry.
	DefaultMaxShardRows = 1 << 18
)

// Config tunes a Coordinator.
type Config struct {
	// Heartbeat is the re-registration interval advertised to workers;
	// <= 0 means DefaultHeartbeat.
	Heartbeat time.Duration
	// TTL is how long a worker's lease lasts without a heartbeat; <= 0
	// means DefaultTTLFactor × Heartbeat.
	TTL time.Duration
	// ShardRows is the number of suspect rows per dispatched shard; <= 0
	// means DefaultShardRows.
	ShardRows int
	// MaxShardAttempts is how many distinct dispatch attempts one shard
	// gets before the audit fails; <= 0 means DefaultMaxShardAttempts.
	MaxShardAttempts int
	// MaxBufferedShards bounds the undispatched shard payloads held in
	// memory; the reader parks when the queue is full. <= 0 means
	// DefaultMaxBufferedShards.
	MaxBufferedShards int
	// ShardTimeout bounds a single shard RPC; <= 0 means
	// DefaultShardTimeout.
	ShardTimeout time.Duration
	// AutoShardRows switches shard sizing from the fixed ShardRows to
	// throughput-driven autotuning: the coordinator learns each worker's
	// rows/s from completed shards (seeded by the calibrated hash rate
	// the worker advertises at registration) and cuts each next shard so
	// that the worker it is headed for finishes in ~TargetShardLatency.
	// Fixed mode is byte-identical to pre-autotuning behavior.
	AutoShardRows bool
	// TargetShardLatency is the per-shard wall time autotuning aims for;
	// <= 0 means DefaultTargetShardLatency. Ignored unless AutoShardRows.
	TargetShardLatency time.Duration
	// MinShardRows / MaxShardRows clamp auto-sized shards; <= 0 means
	// DefaultMinShardRows / DefaultMaxShardRows. Ignored unless
	// AutoShardRows.
	MinShardRows int
	MaxShardRows int
}

func (c Config) heartbeat() time.Duration {
	if c.Heartbeat <= 0 {
		return DefaultHeartbeat
	}
	return c.Heartbeat
}

func (c Config) ttl() time.Duration {
	if c.TTL <= 0 {
		return DefaultTTLFactor * c.heartbeat()
	}
	return c.TTL
}

func (c Config) shardRows() int {
	if c.ShardRows <= 0 {
		return DefaultShardRows
	}
	return c.ShardRows
}

func (c Config) maxShardAttempts() int {
	if c.MaxShardAttempts <= 0 {
		return DefaultMaxShardAttempts
	}
	return c.MaxShardAttempts
}

func (c Config) maxBufferedShards() int {
	if c.MaxBufferedShards <= 0 {
		return DefaultMaxBufferedShards
	}
	return c.MaxBufferedShards
}

func (c Config) shardTimeout() time.Duration {
	if c.ShardTimeout <= 0 {
		return DefaultShardTimeout
	}
	return c.ShardTimeout
}

func (c Config) targetShardLatency() time.Duration {
	if c.TargetShardLatency <= 0 {
		return DefaultTargetShardLatency
	}
	return c.TargetShardLatency
}

func (c Config) minShardRows() int {
	if c.MinShardRows <= 0 {
		return DefaultMinShardRows
	}
	return c.MinShardRows
}

func (c Config) maxShardRows() int {
	if c.MaxShardRows <= 0 {
		return DefaultMaxShardRows
	}
	return c.MaxShardRows
}

// ErrNoWorkers reports a scan that cannot proceed because no live worker
// remains to dispatch to. Callers decide whether to fail the audit or
// fall back to a local scan.
var ErrNoWorkers = errors.New("cluster: no live workers")
