package cluster

import (
	"log/slog"

	"repro/internal/obs"
)

// metrics is the coordinator's telemetry bundle, nil unless the
// coordinator was built with WithObs. Dispatch/retry/failure counters
// and shard latency histograms are labeled by worker ID; membership
// gauges are sampled from the live membership table at scrape time so
// /metrics and the /healthz cluster block read the same state.
type metrics struct {
	dispatched  *obs.CounterVec   // worker
	retries     *obs.CounterVec   // worker
	failures    *obs.CounterVec   // worker
	latency     *obs.HistogramVec // worker
	transitions *obs.CounterVec   // event
}

func newCoordinatorMetrics(r *obs.Registry, c *Coordinator) *metrics {
	met := &metrics{
		dispatched: r.CounterVec("wm_cluster_shards_dispatched_total",
			"Shard RPCs dispatched, by worker.", "worker"),
		retries: r.CounterVec("wm_cluster_shard_retries_total",
			"Shards requeued after a failed attempt, by worker that failed them.", "worker"),
		failures: r.CounterVec("wm_cluster_shard_failures_total",
			"Shard RPC attempts that returned an error, by worker.", "worker"),
		latency: r.HistogramVec("wm_cluster_shard_duration_seconds",
			"Shard RPC round-trip latency, by worker.", obs.WideBuckets, "worker"),
		transitions: r.CounterVec("wm_cluster_membership_transitions_total",
			"Membership table transitions (join, revive, unreachable, prune).", "event"),
	}
	r.Sampled("wm_cluster_workers_live",
		"Workers holding a current lease.", obs.TypeGauge,
		func(emit obs.Emit) { emit(float64(c.LiveWorkers())) })
	r.Sampled("wm_cluster_worker_heartbeat_age_seconds",
		"Seconds since each registered worker's last heartbeat.", obs.TypeGauge,
		func(emit obs.Emit) {
			for _, w := range c.Status().Workers {
				emit(w.LastHeartbeatAgeSeconds, w.ID)
			}
		}, "worker")
	r.Sampled("wm_cluster_worker_active_shards",
		"Shards currently dispatched to each registered worker.", obs.TypeGauge,
		func(emit obs.Emit) {
			for _, w := range c.Status().Workers {
				emit(float64(w.ActiveShards), w.ID)
			}
		}, "worker")
	r.Sampled("wm_cluster_worker_rows_per_sec",
		"Observed scan throughput per worker (EWMA over completed shards) — the signal auto shard sizing uses.", obs.TypeGauge,
		func(emit obs.Emit) {
			for _, w := range c.Status().Workers {
				if w.RowsPerSec > 0 {
					emit(w.RowsPerSec, w.ID)
				}
			}
		}, "worker")
	return met
}

// transition counts one membership event; nil-safe.
func (met *metrics) transition(event string) {
	if met != nil {
		met.transitions.With(event).Inc()
	}
}

// WithLogger routes the coordinator's membership and shard-dispatch
// logging to l.
func WithLogger(l *slog.Logger) CoordinatorOption {
	return func(c *Coordinator) {
		if l != nil {
			c.log = l
		}
	}
}

// WithObs registers the coordinator's wm_cluster_* metric families on r.
func WithObs(r *obs.Registry) CoordinatorOption {
	return func(c *Coordinator) { c.met = newCoordinatorMetrics(r, c) }
}
