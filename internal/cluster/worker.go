package cluster

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/keyhash"
	"repro/internal/mark"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/pipeline"
	"repro/internal/relation"
)

// ExecuteShard is the worker half of the shard protocol: prepare one
// scanner per certificate in the request, run the one-pass
// multi-certificate block engine over the shard rows, and return the
// partial tallies in wire form. internal/server's POST /v2/internal/scan
// handler is a thin decode/encode wrapper around this call — which also
// makes it the single-node reference the cluster tests check the HTTP
// path against.
//
// opts supplies the worker-local execution knobs (scanner cache, hash
// kernel, default parallelism); the request's Workers/BlockRows override
// them per shard. A certificate that fails to prepare fails the whole
// shard — the coordinator only ships records its own identical prep
// accepted, so a disagreement here means corrupt wire data, and failing
// loudly (the shard is retried, then the audit fails) beats merging a
// tally hole silently.
func ExecuteShard(ctx context.Context, req api.ShardScanRequest, opts core.BatchOptions) (*api.ShardScanResponse, error) {
	// The worker-side execution span: a child of the coordinator's
	// dispatch span when the RPC carried traceparent (the server
	// middleware joined it into ctx). Phase clocks ride the pipeline
	// config only when the trace is sampled — ph stays nil otherwise and
	// the zero-alloc scan path never reads a clock.
	ctx, span := trace.Start(ctx, "shard.execute")
	defer span.End()
	span.SetInt("shard", int64(req.Shard))
	var ph *trace.Phases
	if span != nil {
		ph = &trace.Phases{}
	}

	schema, err := relation.ParseSchemaSpec(req.Schema)
	if err != nil {
		err = fmt.Errorf("cluster: shard %d schema: %w", req.Shard, err)
		span.SetError(err)
		return nil, err
	}
	// The zero-copy block readers implement RowReader, so every engine
	// accepts them; pipeline.ScanMany additionally recognizes the
	// BlockReader side and takes its columnar zero-allocation path.
	var src relation.RowReader
	switch strings.ToLower(req.Format) {
	case "", "csv":
		src, err = relation.NewCSVBlockReader(strings.NewReader(req.Data), schema)
	case "jsonl":
		src = relation.NewJSONLBlockReader(strings.NewReader(req.Data), schema)
	default:
		err = fmt.Errorf("unknown format %q (want csv or jsonl)", req.Format)
	}
	if err != nil {
		err = fmt.Errorf("cluster: shard %d rows: %w", req.Shard, err)
		span.SetError(err)
		return nil, err
	}

	prep := core.PrepareBatch(req.Records, schema, opts)
	if errs := prep.Errs(); len(prep.Scanners()) != len(req.Records) {
		for i, err := range errs {
			if err != nil {
				err = fmt.Errorf("cluster: shard %d certificate %d: %w", req.Shard, i, err)
				span.SetError(err)
				return nil, err
			}
		}
	}

	workers := opts.Workers
	if req.Workers != 0 {
		workers = req.Workers
	}
	tallies, err := pipeline.ScanMany(ctx, src, prep.Scanners(), pipeline.Config{
		Workers:   normalizeWorkers(workers),
		BlockRows: req.BlockRows,
		Progress:  opts.Progress,
		Phases:    ph,
	})
	if err != nil {
		span.SetError(err)
		return nil, err
	}
	if span != nil {
		kernel := string(opts.HashKernel)
		if kernel == "" {
			kernel = keyhash.ActiveKernel()
		}
		span.SetAttr("kernel", kernel)
	}
	ph.Annotate(span)
	resp := &api.ShardScanResponse{Shard: req.Shard, Tallies: make([]mark.TallyWire, len(tallies))}
	for j, t := range tallies {
		resp.Tallies[j] = t.Wire()
	}
	if len(tallies) > 0 {
		resp.Rows = tallies[0].Rows
		span.SetInt("rows", int64(tallies[0].Rows))
	}
	return resp, nil
}

// normalizeWorkers maps the Spec.Workers convention (0 sequential,
// negative NumCPU) onto pipeline.Config.Workers (<= 0 means NumCPU).
func normalizeWorkers(w int) int {
	if w == 0 {
		return 1
	}
	if w < 0 {
		return 0
	}
	return w
}

// Agent keeps one worker joined to a coordinator: an initial registration
// followed by heartbeats at the coordinator's advertised interval, each a
// full (idempotent) re-registration — so a coordinator restart costs one
// missed beat, not the membership. Registration failures are retried at
// the same cadence; the worker serves shards regardless, since dispatch
// needs only the coordinator to know the worker, not vice versa. A
// failure is never silent: transitions are logged (once per change, not
// per beat — a down coordinator would spam otherwise) and the latest
// error is readable via LastError, which worker /healthz surfaces as
// heartbeat_error — so a -join against a typo'd URL or a non-coordinator
// is visible, not a cluster that quietly never forms.
type Agent struct {
	coordinator string
	reg         api.WorkerRegistration
	client      *client.Client
	log         *slog.Logger
	// beats counts registration attempts by result ("ok"/"error"), nil
	// without WithAgentObs.
	beats *obs.CounterVec

	stop   context.CancelFunc
	done   chan struct{}
	onBeat func(error) // test hook, observes each registration attempt

	mu      sync.Mutex
	lastErr error
	joined  bool // a registration has succeeded at least once
}

// AgentOption customises a StartAgent call.
type AgentOption func(*Agent)

// WithAgentHTTPClient substitutes the http.Client heartbeats travel on.
func WithAgentHTTPClient(hc *http.Client) AgentOption {
	return func(a *Agent) { a.client = client.New(a.coordinator, client.WithHTTPClient(hc)) }
}

// WithAgentLogger routes membership transitions (joined, heartbeat
// failing, recovered) to l.
func WithAgentLogger(l *slog.Logger) AgentOption {
	return func(a *Agent) { a.log = l }
}

// WithAgentObs registers the agent's wm_cluster_heartbeats_total
// family on r, counting registration attempts by result.
func WithAgentObs(r *obs.Registry) AgentOption {
	return func(a *Agent) {
		a.beats = r.CounterVec("wm_cluster_heartbeats_total",
			"Heartbeat registrations sent to the coordinator, by result.", "result")
	}
}

// withBeatHook observes registration attempts (tests only).
func withBeatHook(fn func(error)) AgentOption {
	return func(a *Agent) { a.onBeat = fn }
}

// StartAgent registers reg with the coordinator and starts the heartbeat
// loop. Stop the returned agent to leave the cluster (the coordinator
// notices through lease expiry — there is no explicit deregistration, so
// a crash and a clean stop look the same, which is the failure model the
// scheduler is built for anyway).
func StartAgent(coordinatorURL string, reg api.WorkerRegistration, opts ...AgentOption) *Agent {
	//wmlint:ignore ctxloop agent lifecycle outlives any single request; Agent.Stop cancels this root
	ctx, cancel := context.WithCancel(context.Background())
	a := &Agent{
		coordinator: coordinatorURL,
		reg:         reg,
		client:      client.New(coordinatorURL),
		stop:        cancel,
		done:        make(chan struct{}),
	}
	for _, o := range opts {
		o(a)
	}
	go a.loop(ctx)
	return a
}

// Coordinator returns the URL the agent is joined to.
func (a *Agent) Coordinator() string { return a.coordinator }

// LastError reports the most recent registration attempt's failure, or
// nil when it succeeded (or none has completed yet).
func (a *Agent) LastError() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.lastErr
}

// observe records one registration outcome and logs transitions.
func (a *Agent) observe(err error) {
	a.mu.Lock()
	prev := a.lastErr
	wasJoined := a.joined
	a.lastErr = err
	if err == nil {
		a.joined = true
	}
	a.mu.Unlock()
	if a.beats != nil {
		result := "ok"
		if err != nil {
			result = "error"
		}
		a.beats.With(result).Inc()
	}
	if a.log == nil {
		return
	}
	switch {
	case err == nil && !wasJoined:
		a.log.Info("cluster: joined coordinator", "coordinator", a.coordinator, "advertise", a.reg.URL, "worker", a.reg.ID)
	case err == nil && prev != nil:
		a.log.Info("cluster: heartbeat recovered", "coordinator", a.coordinator)
	case err != nil && (prev == nil || prev.Error() != err.Error()):
		a.log.Warn("cluster: heartbeat failing", "coordinator", a.coordinator, "err", err)
	}
}

// Stop ends the heartbeat loop and waits for it to exit.
func (a *Agent) Stop() {
	a.stop()
	<-a.done
}

func (a *Agent) loop(ctx context.Context) {
	defer close(a.done)
	interval := DefaultHeartbeat
	timer := time.NewTimer(0) // first registration immediately
	defer timer.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-timer.C:
		}
		ack, err := a.client.RegisterWorker(ctx, a.reg)
		if ctx.Err() != nil {
			return // a Stop mid-request is not a heartbeat failure
		}
		a.observe(err)
		if a.onBeat != nil {
			a.onBeat(err)
		}
		if err == nil && ack.HeartbeatSeconds > 0 {
			interval = time.Duration(ack.HeartbeatSeconds * float64(time.Second))
		}
		timer.Reset(interval)
	}
}
