package cluster

// Tests for throughput-driven shard autotuning: the coordinator's
// per-worker rate model, the re-split-on-retry path, and the end-to-end
// property the feature exists for — a fast/slow worker pair receives
// unequal shard sizes while the merged report stays bit-identical to a
// single-node scan.

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/relation"
)

// TestTargetShardRowsSeedsFromAdvertisedRate pins the cold-start path:
// with no completed shards, shard sizes scale from the calibrated hash
// rates workers advertise at registration, relative to the cluster mean.
func TestTargetShardRowsSeedsFromAdvertisedRate(t *testing.T) {
	c := NewCoordinator(Config{AutoShardRows: true, ShardRows: 300, MinShardRows: 1})
	c.Register(api.WorkerRegistration{ID: "w-a", URL: "http://a", HashesPerSec: 2e6})
	c.Register(api.WorkerRegistration{ID: "w-b", URL: "http://b", HashesPerSec: 1e6})

	// Both free: the peek picks w-a (tie on load, id order). Mean
	// advertised rate is 1.5e6, so w-a's seed is 300 * 2/1.5 = 400.
	if got := c.targetShardRows(); got != 400 {
		t.Fatalf("seeded shard rows for w-a = %d, want 400", got)
	}
	// Occupy w-a: the peek falls to w-b, seeded at 300 * 1/1.5 = 200.
	c.mu.Lock()
	c.members["w-a"].active = 1
	c.mu.Unlock()
	if got := c.targetShardRows(); got != 200 {
		t.Fatalf("seeded shard rows for w-b = %d, want 200", got)
	}
	// No free worker at all: fall back to the configured seed (no
	// observed rates exist yet).
	c.mu.Lock()
	c.members["w-b"].active = 1
	c.mu.Unlock()
	if got := c.targetShardRows(); got != 300 {
		t.Fatalf("shard rows with all workers busy = %d, want 300", got)
	}
}

// TestTargetShardRowsTracksObservedRate pins the steady-state path: a
// completed shard's rows/s beats any advertised seed, later shards fold
// in by EWMA, and the [min, max] clamp bounds the result.
func TestTargetShardRowsTracksObservedRate(t *testing.T) {
	c := NewCoordinator(Config{
		AutoShardRows:      true,
		TargetShardLatency: 2 * time.Second,
		MinShardRows:       100,
		MaxShardRows:       50_000,
	})
	c.Register(api.WorkerRegistration{ID: "w", URL: "http://w", HashesPerSec: 9e9})
	c.mu.Lock()
	m := c.members["w"]
	c.mu.Unlock()

	// First observation is taken whole: 5000 rows/s * 2s target = 10000.
	c.observeRate(m, 5000, time.Second)
	if got := c.targetShardRows(); got != 10_000 {
		t.Fatalf("shard rows after first observation = %d, want 10000", got)
	}
	// Second observation folds in at alpha=0.4:
	// 0.4*1000 + 0.6*5000 = 3400 rows/s -> 6800 rows.
	c.observeRate(m, 1000, time.Second)
	if got := c.targetShardRows(); got != 6800 {
		t.Fatalf("shard rows after EWMA = %d, want 6800", got)
	}
	// Clamps: a collapsed rate floors at MinShardRows, a huge one caps
	// at MaxShardRows.
	c.mu.Lock()
	m.rowsPerSec = 1
	c.mu.Unlock()
	if got := c.targetShardRows(); got != 100 {
		t.Fatalf("clamped floor = %d, want 100", got)
	}
	c.mu.Lock()
	m.rowsPerSec = 1e9
	c.mu.Unlock()
	if got := c.targetShardRows(); got != 50_000 {
		t.Fatalf("clamped ceiling = %d, want 50000", got)
	}
	// Zero-valued observations are ignored rather than poisoning the EWMA.
	c.observeRate(m, 0, time.Second)
	c.observeRate(m, 100, 0)
	c.mu.Lock()
	rate := m.rowsPerSec
	c.mu.Unlock()
	if rate != 1e9 {
		t.Fatalf("degenerate observations changed the rate: %v", rate)
	}
}

// TestSplitTask pins the re-split mechanics: the two children partition
// the parent's rows exactly, round-trip through the same CSV framing a
// fresh shard would use, and inherit the attempt budget and failure set.
func TestSplitTask(t *testing.T) {
	f := newAuditFixture(t, 101, 1)
	var buf strings.Builder
	w, err := relation.NewCSVRowWriter(&buf, f.schema)
	if err != nil {
		t.Fatal(err)
	}
	src := f.rows()
	for {
		tup, err := src.Read()
		if err != nil {
			break
		}
		if err := w.Write(tup); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	s := &scan{job: ScanJob{Schema: f.spec}, ctx: context.Background()}
	task := &shardTask{
		idx: 7, data: buf.String(), rows: 101, attempts: 1,
		failed: map[string]bool{"w-dead": true},
	}
	children, err := s.splitTask(task)
	if err != nil {
		t.Fatal(err)
	}
	if len(children) != 2 {
		t.Fatalf("split produced %d children, want 2", len(children))
	}
	if children[0].rows != 50 || children[1].rows != 51 {
		t.Fatalf("children rows = %d + %d, want 50 + 51", children[0].rows, children[1].rows)
	}
	var rejoined []relation.Tuple
	for i, ch := range children {
		if ch.idx != 7 || ch.sub != i || !ch.child || ch.attempts != 1 || !ch.failed["w-dead"] {
			t.Fatalf("child %d metadata wrong: %+v", i, ch)
		}
		r, err := relation.NewCSVRowReader(strings.NewReader(ch.data), f.schema)
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for {
			tup, err := r.Read()
			if err != nil {
				break
			}
			rejoined = append(rejoined, tup)
			n++
		}
		if n != ch.rows {
			t.Fatalf("child %d payload has %d rows, header says %d", i, n, ch.rows)
		}
	}
	// Mutating a child's failure set must not leak into its sibling.
	children[0].failed["w-other"] = true
	if children[1].failed["w-other"] {
		t.Fatal("children share a failed set")
	}
	orig, err := relation.NewCSVRowReader(strings.NewReader(task.data), f.schema)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		tup, err := orig.Read()
		if err != nil {
			break
		}
		if !reflect.DeepEqual(tup, rejoined[i]) {
			t.Fatalf("row %d changed across the split round-trip", i)
		}
	}
}

// TestScanShardsAutoUnequalShards is the feature's acceptance test: two
// workers with very different speeds, auto shard sizing on. The fast
// worker must end up receiving larger shards than the artificially
// throttled one, and the merged tallies must stay bit-identical to a
// single-node scan of the same stream.
func TestScanShardsAutoUnequalShards(t *testing.T) {
	f := newAuditFixture(t, 8000, 2)
	prep := core.PrepareBatch(f.records, f.schema, core.BatchOptions{})
	want := f.localTallies(t, prep)

	c := NewCoordinator(Config{
		AutoShardRows:      true,
		ShardRows:          400, // cold-start seed
		TargetShardLatency: 100 * time.Millisecond,
		MinShardRows:       50,
		MaxShardRows:       100_000,
	})
	var mu sync.Mutex
	sizes := map[string][]int{}
	record := func(worker string) func(api.ShardScanRequest) {
		return func(req api.ShardScanRequest) {
			rows := payloadRows(req.Data)
			mu.Lock()
			sizes[worker] = append(sizes[worker], rows)
			mu.Unlock()
			if worker == "slow" {
				// ~200µs per row caps the slow worker near 5k rows/s,
				// far under what any real scan manages.
				time.Sleep(time.Duration(rows) * 200 * time.Microsecond)
			}
		}
	}
	fast := startTestWorker(t)
	fast.delay = record("fast")
	fast.register(c, "fast", 1)
	slow := startTestWorker(t)
	slow.delay = record("slow")
	slow.register(c, "slow", 1)

	got, err := c.ScanShards(context.Background(), f.rows(), prep.Scanners(), ScanJob{
		Records: prep.Records(), Schema: f.spec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("auto-sized cluster tallies diverged from local scan")
	}
	assertReportsEqualBothAggregations(t, f, got, want)

	mu.Lock()
	defer mu.Unlock()
	if len(sizes["fast"]) == 0 || len(sizes["slow"]) == 0 {
		t.Fatalf("both workers should have served shards: %v", sizes)
	}
	// The discriminating signal is the largest shard each worker was
	// trusted with: the fast worker's rate keeps growing its shards
	// while the slow worker's throttle keeps its target near
	// rate * latency ≈ 500 rows.
	if maxInts(sizes["fast"]) <= maxInts(sizes["slow"]) {
		t.Fatalf("auto sizing gave the fast worker no larger shards: fast %v, slow %v",
			sizes["fast"], sizes["slow"])
	}
}

// TestScanShardsAutoSplitsFailedShards drives the re-split path end to
// end: one worker fails every shard it is handed (an application error,
// so it keeps its lease and stays in the rotation), and each failed
// shard must be re-cut into two half-sized children that complete on
// the healthy worker — observable as two sibling requests whose row
// counts partition the failed shard's.
func TestScanShardsAutoSplitsFailedShards(t *testing.T) {
	f := newAuditFixture(t, 3000, 2)
	prep := core.PrepareBatch(f.records, f.schema, core.BatchOptions{})
	want := f.localTallies(t, prep)

	c := NewCoordinator(Config{
		AutoShardRows:      true,
		ShardRows:          500,
		TargetShardLatency: 50 * time.Millisecond,
		MinShardRows:       50,
		MaxShardRows:       1000,
	})
	var mu sync.Mutex
	failedRows := map[int]int{}   // shard idx -> rows of the payload that failed
	servedRows := map[int][]int{} // shard idx -> rows of each request served OK

	bad := startTestWorker(t)
	bad.failWith = func(req api.ShardScanRequest) error {
		mu.Lock()
		failedRows[req.Shard] = payloadRows(req.Data)
		mu.Unlock()
		return errors.New("synthetic shard failure")
	}
	bad.register(c, "bad", 1)
	good := startTestWorker(t)
	good.delay = func(req api.ShardScanRequest) {
		mu.Lock()
		servedRows[req.Shard] = append(servedRows[req.Shard], payloadRows(req.Data))
		mu.Unlock()
	}
	good.register(c, "good", 1)

	got, err := c.ScanShards(context.Background(), f.rows(), prep.Scanners(), ScanJob{
		Records: prep.Records(), Schema: f.spec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("split-and-retried cluster tallies diverged from local scan")
	}
	assertReportsEqualBothAggregations(t, f, got, want)

	mu.Lock()
	defer mu.Unlock()
	if len(failedRows) == 0 {
		t.Fatal("the failing worker never received a shard; the test proved nothing")
	}
	for idx, rows := range failedRows {
		if rows < 2*50 {
			continue // too small to split; retried whole
		}
		halves := servedRows[idx]
		if len(halves) != 2 {
			t.Fatalf("shard %d (%d rows) failed once but was served as %v requests, want 2 children",
				idx, rows, halves)
		}
		if halves[0]+halves[1] != rows {
			t.Fatalf("shard %d children rows %v do not partition the original %d", idx, halves, rows)
		}
	}
}

// payloadRows counts the data rows of a CSV shard payload (one header
// line, one line per row).
func payloadRows(data string) int {
	n := strings.Count(data, "\n")
	if !strings.HasSuffix(data, "\n") {
		n++
	}
	return n - 1 // header
}

func maxInts(xs []int) int {
	best := 0
	for _, x := range xs {
		if x > best {
			best = x
		}
	}
	return best
}

// TestWorkerStatusCarriesRates pins the /healthz surface: registration
// rates and the observed EWMA show up on the worker's status row.
func TestWorkerStatusCarriesRates(t *testing.T) {
	c := NewCoordinator(Config{})
	c.Register(api.WorkerRegistration{
		ID: "w", URL: "http://w", Kernel: "multibuffer4", HashesPerSec: 7e6,
	})
	c.mu.Lock()
	m := c.members["w"]
	c.mu.Unlock()
	c.observeRate(m, 9000, time.Second)

	st := c.Status()
	if len(st.Workers) != 1 {
		t.Fatalf("want 1 worker, got %d", len(st.Workers))
	}
	w := st.Workers[0]
	if w.Kernel != "multibuffer4" || w.HashesPerSec != 7e6 || w.RowsPerSec != 9000 {
		t.Fatalf("status row lost the rates: %+v", w)
	}
	if fmt.Sprintf("%.0f", w.RowsPerSec) != "9000" {
		t.Fatalf("rows/s = %v", w.RowsPerSec)
	}
}
