package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/relation"
)

// rawFixtureData serializes the fixture corpus in both wire formats.
func rawFixtureData(t testing.TB, f *auditFixture) (csvData, jsonlData string) {
	t.Helper()
	var cb, jb strings.Builder
	if err := relation.WriteCSV(&cb, f.rel); err != nil {
		t.Fatal(err)
	}
	if err := relation.WriteJSONL(&jb, f.rel); err != nil {
		t.Fatal(err)
	}
	return cb.String(), jb.String()
}

// rawSource opens a zero-copy block reader over serialized fixture data.
func rawSource(t testing.TB, f *auditFixture, format, data string) relation.RowReader {
	t.Helper()
	if format == "jsonl" {
		return relation.NewJSONLBlockReader(strings.NewReader(data), f.schema)
	}
	br, err := relation.NewCSVBlockReader(strings.NewReader(data), f.schema)
	if err != nil {
		t.Fatal(err)
	}
	return br
}

// TestScanShardsRawSourceMatchesLocalScan is the byte-range encoder's
// equivalence and verbatim-slicing proof, per format: a distributed scan
// fed by a zero-copy block reader (a) produces tallies bit-identical to
// the local pass, (b) stamps every shard request with the source's own
// format, and (c) ships payloads that are verbatim slices of the input
// stream — reassembling the shards reproduces the input byte for byte,
// no parse-then-reprint anywhere.
func TestScanShardsRawSourceMatchesLocalScan(t *testing.T) {
	f := newAuditFixture(t, 4000, 3)
	prep := core.PrepareBatch(f.records, f.schema, core.BatchOptions{})
	want := f.localTallies(t, prep)
	csvData, jsonlData := rawFixtureData(t, f)

	for _, tc := range []struct {
		format, data, header string
	}{
		{"csv", csvData, csvData[:strings.IndexByte(csvData, '\n')+1]},
		{"jsonl", jsonlData, ""},
	} {
		t.Run(tc.format, func(t *testing.T) {
			c := NewCoordinator(Config{ShardRows: 256})
			var mu sync.Mutex
			payloads := map[int]string{}
			formats := map[string]bool{}
			record := func(req api.ShardScanRequest) {
				mu.Lock()
				payloads[req.Shard] = req.Data
				formats[req.Format] = true
				mu.Unlock()
			}
			for i := 0; i < 2; i++ {
				w := startTestWorker(t)
				w.delay = record
				w.register(c, fmt.Sprintf("w%d", i), 2)
			}

			got, err := c.ScanShards(context.Background(), rawSource(t, f, tc.format, tc.data), prep.Scanners(), ScanJob{
				Records: prep.Records(), Schema: f.spec,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s raw-source cluster tallies diverged from local scan", tc.format)
			}
			assertReportsEqualBothAggregations(t, f, got, want)

			mu.Lock()
			defer mu.Unlock()
			if len(formats) != 1 || !formats[tc.format] {
				t.Fatalf("shard requests carried formats %v, want only %q", formats, tc.format)
			}
			var rejoined strings.Builder
			rejoined.WriteString(tc.header)
			for idx := 0; idx < len(payloads); idx++ {
				body, ok := strings.CutPrefix(payloads[idx], tc.header)
				if !ok {
					t.Fatalf("shard %d payload does not start with the source header", idx)
				}
				rejoined.WriteString(body)
			}
			if rejoined.String() != tc.data {
				t.Fatalf("%s shard payloads are not verbatim slices of the input", tc.format)
			}
		})
	}
}

// TestScanShardsRawSourceResplit drives the raw re-split path end to
// end on a JSONL source: a worker that fails every shard forces each
// one to be re-cut into two children, whose payloads must still be
// verbatim byte ranges and whose merged tallies must match the local
// scan.
func TestScanShardsRawSourceResplit(t *testing.T) {
	f := newAuditFixture(t, 3000, 2)
	prep := core.PrepareBatch(f.records, f.schema, core.BatchOptions{})
	want := f.localTallies(t, prep)
	_, jsonlData := rawFixtureData(t, f)

	c := NewCoordinator(Config{
		AutoShardRows:      true,
		ShardRows:          500,
		TargetShardLatency: 50 * time.Millisecond,
		MinShardRows:       50,
		MaxShardRows:       1000,
	})
	var mu sync.Mutex
	failedRows := map[int]int{}
	servedRows := map[int][]int{}
	jsonlRows := func(data string) int { return strings.Count(data, "\n") }

	bad := startTestWorker(t)
	bad.failWith = func(req api.ShardScanRequest) error {
		mu.Lock()
		failedRows[req.Shard] = jsonlRows(req.Data)
		mu.Unlock()
		return errors.New("synthetic shard failure")
	}
	bad.register(c, "bad", 1)
	good := startTestWorker(t)
	good.delay = func(req api.ShardScanRequest) {
		mu.Lock()
		servedRows[req.Shard] = append(servedRows[req.Shard], jsonlRows(req.Data))
		mu.Unlock()
	}
	good.register(c, "good", 1)

	got, err := c.ScanShards(context.Background(), rawSource(t, f, "jsonl", jsonlData), prep.Scanners(), ScanJob{
		Records: prep.Records(), Schema: f.spec,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("re-split raw-source cluster tallies diverged from local scan")
	}
	assertReportsEqualBothAggregations(t, f, got, want)

	mu.Lock()
	defer mu.Unlock()
	if len(failedRows) == 0 {
		t.Fatal("the failing worker never received a shard; the test proved nothing")
	}
	for idx, rows := range failedRows {
		if rows < 2*50 {
			continue // too small to split; retried whole
		}
		halves := servedRows[idx]
		if len(halves) != 2 {
			t.Fatalf("shard %d (%d rows) failed once but was served as %v requests, want 2 children",
				idx, rows, halves)
		}
		if halves[0]+halves[1] != rows {
			t.Fatalf("shard %d children rows %v do not partition the original %d", idx, halves, rows)
		}
	}
}

// TestSplitTaskRawSlices pins the format-aware re-split mechanics: for
// both formats the two children's payloads are verbatim byte ranges of
// the parent — concatenating them (dropping the second child's repeated
// header) reproduces the parent payload exactly.
func TestSplitTaskRawSlices(t *testing.T) {
	f := newAuditFixture(t, 101, 1)
	csvData, jsonlData := rawFixtureData(t, f)
	for _, tc := range []struct {
		format, data, header string
	}{
		{"csv", csvData, csvData[:strings.IndexByte(csvData, '\n')+1]},
		{"jsonl", jsonlData, ""},
	} {
		s := &scan{job: ScanJob{Schema: f.spec}, ctx: context.Background(), format: tc.format}
		task := &shardTask{
			idx: 7, data: tc.data, rows: 101, attempts: 1,
			failed: map[string]bool{"w-dead": true},
		}
		children, err := s.splitTask(task)
		if err != nil {
			t.Fatal(err)
		}
		if len(children) != 2 || children[0].rows != 50 || children[1].rows != 51 {
			t.Fatalf("%s: children = %+v, want rows 50 + 51", tc.format, children)
		}
		for i, ch := range children {
			if ch.idx != 7 || ch.sub != i || !ch.child || ch.attempts != 1 || !ch.failed["w-dead"] {
				t.Fatalf("%s child %d metadata wrong: %+v", tc.format, i, ch)
			}
		}
		second, ok := strings.CutPrefix(children[1].data, tc.header)
		if !ok {
			t.Fatalf("%s: second child payload lacks the header", tc.format)
		}
		if children[0].data+second != tc.data {
			t.Fatalf("%s: children are not verbatim byte ranges of the parent", tc.format)
		}
	}
}

// BenchmarkShardEncode measures the coordinator's shard-payload encoder:
// the legacy parse-then-reprint pipeline (row reader + row writer)
// against the zero-copy raw byte-range slicer, per wire format.
func BenchmarkShardEncode(b *testing.B) {
	r, _, err := datagen.ItemScan(datagen.ItemScanConfig{
		N: 50000, CatalogSize: 120, ZipfS: 1.0, Seed: "shard-encode-bench",
	})
	if err != nil {
		b.Fatal(err)
	}
	schema := r.Schema()
	var cb, jb strings.Builder
	if err := relation.WriteCSV(&cb, r); err != nil {
		b.Fatal(err)
	}
	if err := relation.WriteJSONL(&jb, r); err != nil {
		b.Fatal(err)
	}
	csvData, jsonlData := cb.String(), jb.String()
	const shardRows = 4096

	reprint := func(b *testing.B, data, format string) {
		var out strings.Builder
		var src relation.RowReader
		if format == "csv" {
			rr, err := relation.NewCSVRowReader(strings.NewReader(data), schema)
			if err != nil {
				b.Fatal(err)
			}
			src = rr
		} else {
			src = relation.NewJSONLRowReader(strings.NewReader(data), schema)
		}
		newWriter := func() relation.RowWriter {
			out.Reset()
			if format == "csv" {
				w, err := relation.NewCSVRowWriter(&out, schema)
				if err != nil {
					b.Fatal(err)
				}
				return w
			}
			return relation.NewJSONLRowWriter(&out, schema)
		}
		w := newWriter()
		rows, shards := 0, 0
		for {
			tup, err := src.Read()
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
			if err := w.Write(tup); err != nil {
				b.Fatal(err)
			}
			if rows++; rows >= shardRows {
				if err := w.Flush(); err != nil {
					b.Fatal(err)
				}
				shards++
				rows = 0
				w = newWriter()
			}
		}
		if err := w.Flush(); err != nil {
			b.Fatal(err)
		}
	}
	raw := func(b *testing.B, data, format string) {
		var src relation.RawShardSource
		if format == "csv" {
			br, err := relation.NewCSVBlockReader(strings.NewReader(data), schema)
			if err != nil {
				b.Fatal(err)
			}
			src = br
		} else {
			src = relation.NewJSONLBlockReader(strings.NewReader(data), schema)
		}
		src.SetRecordRaw(true)
		hdr := src.RawHeader()
		blk := relation.GetBlock(schema)
		defer relation.PutBlock(blk)
		var out strings.Builder
		out.Write(hdr)
		rows := 0
		for {
			n, err := src.ReadBlock(blk, min(shardRows-rows, rawReadRows))
			if err == io.EOF {
				break
			}
			if err != nil {
				b.Fatal(err)
			}
			out.Write(blk.RawBytes())
			if rows += n; rows >= shardRows {
				out.Reset()
				out.Write(hdr)
				rows = 0
			}
		}
	}

	for _, tc := range []struct {
		name, data string
		run        func(b *testing.B, data, format string)
	}{
		{"csv/reprint", csvData, reprint},
		{"csv/raw", csvData, raw},
		{"jsonl/reprint", jsonlData, reprint},
		{"jsonl/raw", jsonlData, raw},
	} {
		format := strings.SplitN(tc.name, "/", 2)[0]
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(tc.data)))
			for i := 0; i < b.N; i++ {
				tc.run(b, tc.data, format)
			}
			b.ReportMetric(float64(r.Len())*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
		})
	}
}
