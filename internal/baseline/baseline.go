// Package baseline implements the numeric relational watermarking scheme
// of Kiernan & Agrawal, "Watermarking Relational Databases" (VLDB 2002) —
// reference [6] of the categorical-data paper and the state of the art it
// argues against for discrete domains.
//
// The KA scheme marks *numeric* attributes: a keyed hash of each tuple's
// primary key selects roughly 1/γ of the tuples; for each, the hash picks
// one of ξ candidate least-significant bits of the attribute and forces it
// to a hash-derived value. Detection recomputes the selections and counts
// bit agreements; under no watermark, agreements follow Binomial(n, 1/2),
// so a small binomial tail probability (p-value) evidences the mark.
//
// The categorical paper's Section 1/3 motivation is exactly that this
// approach has no meaningful analogue for categorical values: flipping a
// low bit of a product code or city identifier is not a "small" change but
// an arbitrary jump to a different category — likely outside the valid
// catalog entirely. The baseline-comparison experiment quantifies that:
// at equal marking rates, KA on a categorical code column produces
// out-of-domain values at nearly its full marking rate, while the
// categorical scheme by construction never leaves the catalog.
package baseline

import (
	"errors"
	"fmt"
	"strconv"

	"repro/internal/keyhash"
	"repro/internal/relation"
	"repro/internal/stats"
)

// KAOptions configures the Kiernan–Agrawal marker.
type KAOptions struct {
	// Attr is the numeric attribute to mark.
	Attr string
	// Key is the secret key.
	Key keyhash.Key
	// Gamma is the gap parameter γ: about 1/γ of tuples are marked.
	Gamma uint64
	// Xi is ξ, the number of candidate least-significant bits.
	Xi int
	// Alpha is the detection significance level (default 0.01): the
	// watermark is "detected" when the binomial tail probability of the
	// observed agreement count is below Alpha.
	Alpha float64
}

func (o *KAOptions) validate(r *relation.Relation) (col int, err error) {
	if err := o.Key.Validate(); err != nil {
		return 0, fmt.Errorf("baseline: %w", err)
	}
	if o.Gamma == 0 {
		return 0, errors.New("baseline: gamma must be positive")
	}
	if o.Xi <= 0 || o.Xi > 16 {
		return 0, errors.New("baseline: xi must be in [1,16]")
	}
	col, ok := r.Schema().Index(o.Attr)
	if !ok {
		return 0, fmt.Errorf("baseline: attribute %q not in schema", o.Attr)
	}
	return col, nil
}

func (o *KAOptions) alpha() float64 {
	if o.Alpha <= 0 || o.Alpha >= 1 {
		return 0.01
	}
	return o.Alpha
}

// KAEmbedStats reports an embedding pass.
type KAEmbedStats struct {
	// Tuples is the relation size.
	Tuples int
	// Marked is the number of tuples whose attribute was bit-marked.
	Marked int
	// Changed counts marked tuples whose value actually changed.
	Changed int
	// NonNumeric counts selected tuples skipped because the attribute
	// value did not parse as an integer.
	NonNumeric int
}

// mark computes the (bit position, bit value) pair for a selected tuple.
func kaMark(d keyhash.Digest, xi int) (pos int, bit uint64) {
	return int(d.Uint64At(1) % uint64(xi)), d.Uint64At(2) & 1
}

// KAEmbed watermarks r in place per the KA scheme.
func KAEmbed(r *relation.Relation, o KAOptions) (KAEmbedStats, error) {
	var st KAEmbedStats
	col, err := o.validate(r)
	if err != nil {
		return st, err
	}
	st.Tuples = r.Len()
	for i := 0; i < r.Len(); i++ {
		d := keyhash.HashString(o.Key, r.Key(i))
		if d.Mod(o.Gamma) != 0 {
			continue
		}
		v, perr := strconv.ParseInt(r.Tuple(i)[col], 10, 64)
		if perr != nil {
			st.NonNumeric++
			continue
		}
		st.Marked++
		pos, bit := kaMark(d, o.Xi)
		nv := int64(keyhash.SetBit(uint64(v), pos, bit))
		if nv != v {
			if serr := r.SetValue(i, o.Attr, strconv.FormatInt(nv, 10)); serr != nil {
				return st, serr
			}
			st.Changed++
		}
	}
	return st, nil
}

// KADetectReport is a detection outcome.
type KADetectReport struct {
	// Selected is the number of tuples the key selects (and parse).
	Selected int
	// Matches is how many carry the expected bit.
	Matches int
	// PValue is P[Binomial(Selected, 1/2) ≥ Matches]: the probability of
	// the observed agreement arising without a watermark.
	PValue float64
	// Detected is PValue < Alpha.
	Detected bool
}

// MatchRate returns Matches/Selected (≈0.5 on unmarked data, ≈1 on intact
// marked data).
func (rep KADetectReport) MatchRate() float64 {
	if rep.Selected == 0 {
		return 0
	}
	return float64(rep.Matches) / float64(rep.Selected)
}

// KADetect runs KA detection.
func KADetect(r *relation.Relation, o KAOptions) (KADetectReport, error) {
	var rep KADetectReport
	col, err := o.validate(r)
	if err != nil {
		return rep, err
	}
	for i := 0; i < r.Len(); i++ {
		d := keyhash.HashString(o.Key, r.Key(i))
		if d.Mod(o.Gamma) != 0 {
			continue
		}
		v, perr := strconv.ParseInt(r.Tuple(i)[col], 10, 64)
		if perr != nil {
			continue
		}
		rep.Selected++
		pos, bit := kaMark(d, o.Xi)
		if keyhash.Bit(uint64(v), pos) == bit {
			rep.Matches++
		}
	}
	rep.PValue = stats.BinomialTail(rep.Selected, rep.Matches, 0.5)
	rep.Detected = rep.Selected > 0 && rep.PValue < o.alpha()
	return rep, nil
}

// DomainViolations counts tuples of attr whose value falls outside the
// given catalog — the semantic damage metric for applying a numeric-LSB
// scheme to categorical codes.
func DomainViolations(r *relation.Relation, attr string, dom *relation.Domain) (int, error) {
	col, ok := r.Schema().Index(attr)
	if !ok {
		return 0, fmt.Errorf("baseline: attribute %q not in schema", attr)
	}
	violations := 0
	for i := 0; i < r.Len(); i++ {
		if !dom.Contains(r.Tuple(i)[col]) {
			violations++
		}
	}
	return violations, nil
}
