package baseline

import (
	"strconv"
	"testing"

	"repro/internal/attacks"
	"repro/internal/datagen"
	"repro/internal/keyhash"
	"repro/internal/relation"
	"repro/internal/stats"
)

func kaData(t *testing.T, n int) (*relation.Relation, *relation.Domain) {
	t.Helper()
	r, dom, err := datagen.ItemScan(datagen.ItemScanConfig{
		N: n, CatalogSize: 500, ZipfS: 1.0, Seed: "ka-test",
	})
	if err != nil {
		t.Fatal(err)
	}
	return r, dom
}

func kaOpts() KAOptions {
	return KAOptions{
		Attr:  "Item_Nbr",
		Key:   keyhash.NewKey("ka-secret"),
		Gamma: 20,
		Xi:    2,
	}
}

func TestKAEmbedDetect(t *testing.T) {
	r, _ := kaData(t, 10000)
	o := kaOpts()
	st, err := KAEmbed(r, o)
	if err != nil {
		t.Fatal(err)
	}
	want := float64(r.Len()) / float64(o.Gamma)
	if f := float64(st.Marked); f < want*0.7 || f > want*1.3 {
		t.Fatalf("marked %d, want ~%.0f", st.Marked, want)
	}
	rep, err := KADetect(r, o)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Detected {
		t.Fatalf("watermark not detected: %+v", rep)
	}
	if rep.MatchRate() != 1 {
		t.Fatalf("match rate %v on intact data", rep.MatchRate())
	}
	if rep.PValue > 1e-20 {
		t.Fatalf("p-value %g too weak for full agreement", rep.PValue)
	}
}

func TestKAUnmarkedDataNotDetected(t *testing.T) {
	r, _ := kaData(t, 10000)
	rep, err := KADetect(r, kaOpts())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Detected {
		t.Fatalf("false positive on unmarked data: %+v", rep)
	}
	if rate := rep.MatchRate(); rate < 0.35 || rate > 0.65 {
		t.Fatalf("unmarked match rate %v, want ≈ 0.5", rate)
	}
}

func TestKAWrongKeyNotDetected(t *testing.T) {
	r, _ := kaData(t, 10000)
	o := kaOpts()
	if _, err := KAEmbed(r, o); err != nil {
		t.Fatal(err)
	}
	wrong := o
	wrong.Key = keyhash.NewKey("guess")
	rep, err := KADetect(r, wrong)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Detected {
		t.Fatalf("wrong key detected a mark: %+v", rep)
	}
}

func TestKASurvivesSubsetSelection(t *testing.T) {
	r, _ := kaData(t, 20000)
	o := kaOpts()
	if _, err := KAEmbed(r, o); err != nil {
		t.Fatal(err)
	}
	sub, err := attacks.HorizontalSubset(r, 0.3, stats.NewSource("ka-subset"))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := KADetect(sub, o)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Detected {
		t.Fatalf("KA lost the mark at 70%% loss: %+v", rep)
	}
}

// The categorical paper's core argument: LSB marking of categorical codes
// walks off the valid catalog.
func TestKADomainViolations(t *testing.T) {
	r, dom := kaData(t, 20000)
	o := kaOpts()
	before, err := DomainViolations(r, "Item_Nbr", dom)
	if err != nil {
		t.Fatal(err)
	}
	if before != 0 {
		t.Fatalf("%d violations before marking", before)
	}
	st, err := KAEmbed(r, o)
	if err != nil {
		t.Fatal(err)
	}
	after, err := DomainViolations(r, "Item_Nbr", dom)
	if err != nil {
		t.Fatal(err)
	}
	// The catalog is a dense integer range (10000..10499), so flipping
	// LSB 0/1 usually stays *numerically* close but can exit the range at
	// the edges; more importantly, with sparse real-world code spaces most
	// flips exit. Simulate sparsity: every changed value that is not in
	// the catalog counts. With a dense catalog the violation count is
	// small; verify the accounting matches a manual recount, then verify
	// the sparse-catalog case below.
	manual := 0
	for i := 0; i < r.Len(); i++ {
		v, _ := r.Value(i, "Item_Nbr")
		if !dom.Contains(v) {
			manual++
		}
	}
	if after != manual {
		t.Fatalf("DomainViolations %d != manual %d", after, manual)
	}
	_ = st

	// Sparse catalog: only even item codes are valid (like real product
	// code spaces with checksum digits). Build data on the sparse catalog
	// and mark it: every LSB-0 flip to 1 leaves the catalog.
	sparseVals := make([]string, 250)
	for k := range sparseVals {
		sparseVals[k] = strconv.Itoa(20000 + 2*k)
	}
	sparse := relation.MustDomain(sparseVals)
	s := relation.New(datagen.ItemScanSchema())
	src := stats.NewSource("sparse")
	for i := 0; i < 20000; i++ {
		s.MustAppend(relation.Tuple{strconv.Itoa(i), sparseVals[src.Intn(len(sparseVals))]})
	}
	st2, err := KAEmbed(s, o)
	if err != nil {
		t.Fatal(err)
	}
	viol, err := DomainViolations(s, "Item_Nbr", sparse)
	if err != nil {
		t.Fatal(err)
	}
	// Roughly half the marked tuples get their LSB set to 1 → invalid.
	if viol < st2.Marked/4 {
		t.Fatalf("sparse catalog: only %d violations from %d marked tuples", viol, st2.Marked)
	}
}

func TestKAValidation(t *testing.T) {
	r, _ := kaData(t, 100)
	bad := []KAOptions{
		{Attr: "Item_Nbr", Key: nil, Gamma: 10, Xi: 2},
		{Attr: "Item_Nbr", Key: keyhash.NewKey("k"), Gamma: 0, Xi: 2},
		{Attr: "Item_Nbr", Key: keyhash.NewKey("k"), Gamma: 10, Xi: 0},
		{Attr: "Item_Nbr", Key: keyhash.NewKey("k"), Gamma: 10, Xi: 17},
		{Attr: "ghost", Key: keyhash.NewKey("k"), Gamma: 10, Xi: 2},
	}
	for i, o := range bad {
		if _, err := KAEmbed(r.Clone(), o); err == nil {
			t.Errorf("options %d accepted by embed", i)
		}
		if _, err := KADetect(r, o); err == nil {
			t.Errorf("options %d accepted by detect", i)
		}
	}
}

func TestKANonNumericSkipped(t *testing.T) {
	s := relation.MustSchema([]relation.Attribute{
		{Name: "k", Type: relation.TypeInt},
		{Name: "v", Type: relation.TypeString},
	}, "k")
	r := relation.New(s)
	for i := 0; i < 1000; i++ {
		r.MustAppend(relation.Tuple{strconv.Itoa(i), "not-a-number"})
	}
	o := KAOptions{Attr: "v", Key: keyhash.NewKey("k"), Gamma: 10, Xi: 2}
	st, err := KAEmbed(r, o)
	if err != nil {
		t.Fatal(err)
	}
	if st.Marked != 0 || st.NonNumeric == 0 {
		t.Fatalf("non-numeric handling wrong: %+v", st)
	}
}

func TestKAFalsePositiveRate(t *testing.T) {
	// Across many keys on unmarked data, detections at α=0.01 should be
	// rare (≈1%).
	r, _ := kaData(t, 5000)
	detections := 0
	const trials = 60
	for i := 0; i < trials; i++ {
		o := kaOpts()
		o.Key = keyhash.NewKey("fp-" + strconv.Itoa(i))
		rep, err := KADetect(r, o)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Detected {
			detections++
		}
	}
	if detections > 4 {
		t.Fatalf("%d of %d random keys detected a mark at α=0.01", detections, trials)
	}
}
