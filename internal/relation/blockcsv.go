package relation

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
)

// CSVBlockReader is the zero-copy CSV ingestion path: a bufio-backed
// parser that slices fields straight out of the read buffer into a
// Block's column arenas, allocating nothing per row once the block pool
// is warm. Parsing semantics are bit-identical to encoding/csv with the
// exact configuration the legacy CSVRowReader uses (comma separator,
// strict quotes, no comment lines, FieldsPerRecord pinned to the schema
// arity): \r\n normalization, blank-line skipping, quoted fields
// spanning lines, "" escapes, bare/stray-quote errors — the fuzz tests
// drive both parsers over the same inputs and demand identical row
// streams. The legacy reader stays as that oracle.
//
// The header row is consumed by NewCSVBlockReader; file column order
// may differ from schema order and is mapped by name, exactly as in
// NewCSVRowReader.
//
// CSVBlockReader implements both BlockReader (the zero-allocation
// path) and RowReader (a compatibility view that materializes tuples
// from an internal block); do not interleave Read and ReadBlock calls
// on one reader.
type CSVBlockReader struct {
	schema *Schema
	br     *bufio.Reader
	colFor []int // file column -> schema position
	// scrap absorbs header fields and any fields beyond the mapped
	// arity, so an over-long record parses to its end before the
	// field-count error surfaces (as in encoding/csv).
	scrap Column
	// spill assembles physical lines longer than the bufio buffer.
	spill     []byte
	rawHeader []byte
	recordRaw bool
	row       int   // next data row, 1-based (error reporting)
	err       error // sticky terminal parse/read error

	// rowBlk/rowIdx back the RowReader compatibility view.
	rowBlk *Block
	rowIdx int
}

// compatBlockRows sizes the internal block of the RowReader
// compatibility path and the default ReadBlock batch.
const compatBlockRows = 512

// NewCSVBlockReader reads and validates the CSV header, returning a
// reader positioned at the first data row.
func NewCSVBlockReader(rd io.Reader, schema *Schema) (*CSVBlockReader, error) {
	r := &CSVBlockReader{schema: schema, br: bufio.NewReader(rd), row: 1}
	r.scrap.reset()
	nf, err := r.parseRecord(nil, &r.rawHeader)
	if err != nil {
		return nil, fmt.Errorf("relation: reading CSV header: %w", err)
	}
	if nf != schema.Arity() {
		return nil, fmt.Errorf("relation: reading CSV header: record has %d fields, schema has %d",
			nf, schema.Arity())
	}
	colFor := make([]int, nf)
	seen := make(map[string]bool, nf)
	for fileCol := 0; fileCol < nf; fileCol++ {
		name := r.scrap.String(fileCol)
		pos, ok := schema.Index(name)
		if !ok {
			return nil, fmt.Errorf("relation: CSV column %q not in schema", name)
		}
		if seen[name] {
			return nil, fmt.Errorf("relation: duplicate CSV column %q", name)
		}
		seen[name] = true
		colFor[fileCol] = pos
	}
	r.colFor = colFor
	r.scrap.reset()
	return r, nil
}

// Schema returns the reader's schema.
func (r *CSVBlockReader) Schema() *Schema { return r.schema }

// SetRecordRaw toggles raw record-span recording into filled blocks.
func (r *CSVBlockReader) SetRecordRaw(on bool) { r.recordRaw = on }

// RawHeader returns the raw header bytes, including the newline.
func (r *CSVBlockReader) RawHeader() []byte { return r.rawHeader }

// FormatName returns "csv".
func (r *CSVBlockReader) FormatName() string { return "csv" }

// ReadBlock resets b and fills it with up to maxRows rows (<= 0 means a
// default batch). See BlockReader for the contract.
func (r *CSVBlockReader) ReadBlock(b *Block, maxRows int) (int, error) {
	b.Reset(r.schema)
	if r.err != nil {
		return 0, r.err
	}
	if maxRows <= 0 {
		maxRows = compatBlockRows
	}
	r.scrap.reset()
	var rawDst *[]byte
	if r.recordRaw {
		rawDst = &b.raw
	}
	n := 0
	for n < maxRows {
		nf, err := r.parseRecord(b, rawDst)
		if err == io.EOF {
			if n == 0 {
				return 0, io.EOF
			}
			return n, nil
		}
		if err != nil {
			r.err = err
			return n, err
		}
		if nf != r.schema.Arity() {
			r.err = fmt.Errorf("relation: reading CSV row %d: record has %d fields, schema has %d",
				r.row, nf, r.schema.Arity())
			return n, r.err
		}
		b.rows++
		n++
		r.row++
	}
	return n, nil
}

// Read returns the next tuple or io.EOF — the RowReader compatibility
// view, materializing tuples from an internal block. Rows parsed before
// a mid-block error are yielded first, exactly like the legacy reader.
func (r *CSVBlockReader) Read() (Tuple, error) {
	if r.rowBlk == nil {
		r.rowBlk = NewBlock(r.schema)
	}
	if r.rowIdx >= r.rowBlk.Rows() {
		n, err := r.ReadBlock(r.rowBlk, compatBlockRows)
		if n == 0 && err != nil {
			return nil, err
		}
		r.rowIdx = 0
	}
	t := r.rowBlk.Tuple(r.rowIdx)
	r.rowIdx++
	return t, nil
}

// parseErr positions a terminal parse error at the current data row.
func (r *CSVBlockReader) parseErr(msg string) error {
	return fmt.Errorf("relation: reading CSV row %d: parse error: %s", r.row, msg)
}

// readLine returns the next physical line with the terminating newline
// stripped and \r\n normalized exactly as encoding/csv does (a trailing
// \r on the last, newline-less line of the file is dropped too). raw is
// the unmodified input span including its newline; nl reports whether
// the line ended in one. Both slices are valid until the next readLine.
func (r *CSVBlockReader) readLine() (content, raw []byte, nl bool, err error) {
	line, rerr := r.br.ReadSlice('\n')
	if rerr == bufio.ErrBufferFull {
		r.spill = append(r.spill[:0], line...)
		for rerr == bufio.ErrBufferFull {
			line, rerr = r.br.ReadSlice('\n')
			r.spill = append(r.spill, line...)
		}
		line = r.spill
	}
	if len(line) == 0 && rerr != nil {
		return nil, nil, false, rerr
	}
	if rerr != nil && rerr != io.EOF {
		return nil, nil, false, rerr
	}
	raw = line
	if n := len(line); line[n-1] == '\n' {
		nl = true
		line = line[:n-1]
	}
	if n := len(line); n > 0 && line[n-1] == '\r' {
		// Mid-file this normalizes \r\n; at EOF it drops the stray \r
		// encoding/csv drops from a newline-less final line.
		if nl || rerr == io.EOF {
			line = line[:n-1]
		}
	}
	return line, raw, nl, nil
}

// parseRecord parses one record. Data fields land in b's columns
// through the header mapping (b == nil routes every field to scrap —
// the header parse); raw line spans append to *rawDst when non-nil. It
// returns the record's field count, or io.EOF when the input ends
// before a record starts. Blank lines are skipped, never recorded.
func (r *CSVBlockReader) parseRecord(b *Block, rawDst *[]byte) (int, error) {
	var content, raw []byte
	var nl bool
	for {
		var err error
		content, raw, nl, err = r.readLine()
		if err != nil {
			return 0, err // io.EOF at a record boundary, or a read error
		}
		if len(content) > 0 {
			break
		}
	}
	if rawDst != nil {
		*rawDst = append(*rawDst, raw...)
	}
	nf := 0
	line := content
parseField:
	for {
		var cur *Column
		if b == nil || nf >= len(r.colFor) {
			cur = &r.scrap
		} else {
			cur = &b.cols[r.colFor[nf]]
		}
		if len(line) == 0 || line[0] != '"' {
			// Unquoted field: runs to the next comma or end of record.
			field := line
			if i := bytes.IndexByte(line, ','); i >= 0 {
				field = line[:i]
				line = line[i+1:]
			} else {
				line = nil
			}
			if bytes.IndexByte(field, '"') >= 0 {
				return nf, r.parseErr(`bare " in non-quoted field`)
			}
			cur.appendBytes(field)
			cur.closeRow()
			nf++
			if line == nil {
				return nf, nil
			}
			continue parseField
		}
		// Quoted field.
		line = line[1:]
		for {
			i := bytes.IndexByte(line, '"')
			if i < 0 {
				// No closing quote on this line: the field spans lines
				// (the embedded line break is part of the value).
				cur.appendBytes(line)
				if !nl {
					return nf, r.parseErr(`unterminated quoted field`)
				}
				cur.appendByte('\n')
				var err error
				line, raw, nl, err = r.readLine()
				if err == io.EOF {
					return nf, r.parseErr(`unterminated quoted field`)
				}
				if err != nil {
					return nf, err
				}
				if rawDst != nil {
					*rawDst = append(*rawDst, raw...)
				}
				continue
			}
			cur.appendBytes(line[:i])
			line = line[i+1:]
			switch {
			case len(line) > 0 && line[0] == '"':
				cur.appendByte('"') // "" escape
				line = line[1:]
			case len(line) > 0 && line[0] == ',':
				line = line[1:]
				cur.closeRow()
				nf++
				continue parseField
			case len(line) == 0:
				cur.closeRow()
				nf++
				return nf, nil
			default:
				return nf, r.parseErr(`extraneous or missing " in quoted-field`)
			}
		}
	}
}
