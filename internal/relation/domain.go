package relation

import (
	"fmt"
	"sort"

	"repro/internal/stats"
)

// Domain is the sorted value set {a_1, …, a_nA} of a categorical attribute
// (Section 2.1: "These are distinct and can be sorted, e.g. by ASCII
// value"). The watermark bit carried by a tuple is the parity of its
// value's index t in this set, so embedder and detector must agree on the
// same Domain.
//
// Blind detection (Section 4.3) does not need the original data, but it
// does need the attribute's public value catalog — city names, product
// codes — which in practice is known independently of any one relation.
// DomainOf derives a Domain from data for convenience; for detection after
// data-loss attacks prefer a catalog-derived Domain, since a subset attack
// can remove all occurrences of a value and shift data-derived indices.
type Domain struct {
	values []string
	index  map[string]int
}

// NewDomain builds a domain from a value catalog. Values are deduplicated
// and sorted lexicographically.
func NewDomain(values []string) (*Domain, error) {
	if len(values) == 0 {
		return nil, fmt.Errorf("relation: empty domain")
	}
	set := make(map[string]bool, len(values))
	for _, v := range values {
		set[v] = true
	}
	sorted := make([]string, 0, len(set))
	for v := range set {
		sorted = append(sorted, v)
	}
	sort.Strings(sorted)
	d := &Domain{values: sorted, index: make(map[string]int, len(sorted))}
	for i, v := range sorted {
		d.index[v] = i
	}
	return d, nil
}

// MustDomain is NewDomain that panics on error.
func MustDomain(values []string) *Domain {
	d, err := NewDomain(values)
	if err != nil {
		panic(err)
	}
	return d
}

// DomainOf derives the domain of attr from the values present in r.
func DomainOf(r *Relation, attr string) (*Domain, error) {
	j, ok := r.Schema().Index(attr)
	if !ok {
		return nil, fmt.Errorf("relation: unknown attribute %q", attr)
	}
	if r.Len() == 0 {
		return nil, fmt.Errorf("relation: cannot derive domain of %q from empty relation", attr)
	}
	seen := make(map[string]bool)
	var values []string
	for i := 0; i < r.Len(); i++ {
		v := r.Tuple(i)[j]
		if !seen[v] {
			seen[v] = true
			values = append(values, v)
		}
	}
	return NewDomain(values)
}

// Size returns n_A, the number of distinct values.
func (d *Domain) Size() int { return len(d.values) }

// Value returns a_t, the value at sorted index t.
func (d *Domain) Value(t int) string {
	if t < 0 || t >= len(d.values) {
		panic(fmt.Sprintf("relation: domain index %d out of range [0,%d)", t, len(d.values)))
	}
	return d.values[t]
}

// Index returns t such that a_t == v, i.e. "determine t such that
// T_j(A) = a_t" from the decoding algorithm (Figure 2).
func (d *Domain) Index(v string) (int, bool) {
	t, ok := d.index[v]
	return t, ok
}

// IndexBytes is Index for an arena-backed byte view of the value. The
// direct map index keeps the string(...) conversion on the stack, so
// the block-scan hot path can classify values without allocating.
func (d *Domain) IndexBytes(v []byte) (int, bool) {
	t, ok := d.index[string(v)]
	return t, ok
}

// Values returns a copy of the sorted value list.
func (d *Domain) Values() []string { return append([]string(nil), d.values...) }

// Contains reports whether v is in the domain.
func (d *Domain) Contains(v string) bool {
	_, ok := d.index[v]
	return ok
}

// HistogramOf computes the occurrence histogram of attr over r — the
// paper's frequency transform [f_A(a_i)] (Sections 3.1, 4.2).
func HistogramOf(r *Relation, attr string) (*stats.Histogram, error) {
	j, ok := r.Schema().Index(attr)
	if !ok {
		return nil, fmt.Errorf("relation: unknown attribute %q", attr)
	}
	h := stats.NewHistogram()
	for i := 0; i < r.Len(); i++ {
		h.Add(r.Tuple(i)[j])
	}
	return h, nil
}
