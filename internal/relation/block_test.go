package relation

import (
	"fmt"
	"io"
	"strings"
	"testing"
)

// The zero-copy block readers must be bit-identical to the legacy
// stdlib-backed row readers — the legacy readers are the oracle. Every
// comparison here demands: identical rows up to the first error, and
// agreement on whether an error occurs (messages may differ).

func drainRows(rr RowReader) ([][]string, error) {
	var rows [][]string
	for {
		t, err := rr.Read()
		if err == io.EOF {
			return rows, nil
		}
		if err != nil {
			return rows, err
		}
		rows = append(rows, []string(t))
	}
}

func drainBlockRows(t *testing.T, br BlockReader, maxRows int) ([][]string, error) {
	t.Helper()
	b := NewBlock(br.Schema())
	var rows [][]string
	for {
		n, err := br.ReadBlock(b, maxRows)
		if err == io.EOF && n != 0 {
			t.Fatalf("ReadBlock returned %d rows together with io.EOF", n)
		}
		for i := 0; i < n; i++ {
			rows = append(rows, []string(b.Tuple(i)))
		}
		if err == io.EOF {
			return rows, nil
		}
		if err != nil {
			return rows, err
		}
		if n == 0 {
			t.Fatal("ReadBlock returned (0, nil)")
		}
	}
}

func sameRows(a, b [][]string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

func compareCSVWithOracle(t *testing.T, in string, blockRows int) {
	t.Helper()
	schema := rowioSchema(t)
	rr, lerr := NewCSVRowReader(strings.NewReader(in), schema)
	br, berr := NewCSVBlockReader(strings.NewReader(in), schema)
	if (lerr != nil) != (berr != nil) {
		t.Fatalf("header disagreement on %q: legacy %v, block %v", in, lerr, berr)
	}
	if lerr != nil {
		return
	}
	want, wantErr := drainRows(rr)
	got, gotErr := drainBlockRows(t, br, blockRows)
	if (wantErr != nil) != (gotErr != nil) {
		t.Fatalf("error disagreement on %q: legacy %v, block %v", in, wantErr, gotErr)
	}
	if !sameRows(want, got) {
		t.Fatalf("row disagreement on %q:\nlegacy: %q\nblock:  %q", in, want, got)
	}
}

func compareJSONLWithOracle(t *testing.T, in string, blockRows int) {
	t.Helper()
	schema := rowioSchema(t)
	want, wantErr := drainRows(NewJSONLRowReader(strings.NewReader(in), schema))
	got, gotErr := drainBlockRows(t, NewJSONLBlockReader(strings.NewReader(in), schema), blockRows)
	if (wantErr != nil) != (gotErr != nil) {
		t.Fatalf("error disagreement on %q: legacy %v, block %v", in, wantErr, gotErr)
	}
	if !sameRows(want, got) {
		t.Fatalf("row disagreement on %q:\nlegacy: %q\nblock:  %q", in, want, got)
	}
}

var csvOracleCases = []string{
	"Visit_Nbr,Item_Nbr\n1,10\n2,11\n",
	"Item_Nbr,Visit_Nbr\n10,1\n11,2\n", // reordered columns
	"Visit_Nbr,Item_Nbr\r\n1,10\r\n2,11\r\n",
	"Visit_Nbr,Item_Nbr\n1,10",                 // no trailing newline
	"Visit_Nbr,Item_Nbr\n1,10\r",               // trailing \r at EOF
	"Visit_Nbr,Item_Nbr\n\n1,10\n\r\n2,11\n\n", // blank lines
	"Visit_Nbr,Item_Nbr\n\"1\",\"a,b\"\n",
	"Visit_Nbr,Item_Nbr\n1,\"a\"\"b\"\n",
	"Visit_Nbr,Item_Nbr\n1,\"multi\nline\"\n2,x\n",
	"Visit_Nbr,Item_Nbr\n1,\"multi\r\nline\"\n",
	"Visit_Nbr,Item_Nbr\n1,\"\"\n",
	"Visit_Nbr,Item_Nbr\n,\n",
	"\"Visit_Nbr\",\"Item_Nbr\"\n1,10\n",   // quoted header
	"Visit_Nbr,Item_Nbr\n1,a\rb\n",         // interior \r
	"Visit_Nbr,Item_Nbr\n1,a\r\r\n",        // \r\r\n tail
	"Visit_Nbr,Item_Nbr\n1\n",              // short row
	"Visit_Nbr,Item_Nbr\n1,2,3\n4,5\n",     // long row
	"Visit_Nbr,Item_Nbr\n\"1,2\n",          // unterminated quote
	"Visit_Nbr,Item_Nbr\n1,\"a\"b\n",       // stray quote after close
	"Visit_Nbr,Item_Nbr\n1,a\"b\n",         // bare quote
	"Visit_Nbr,Item_Nbr\n1,10\n2\n3,12\n",  // error mid-stream after good rows
	"Visit_Nbr,Item_Nbr\n1,\"a\n\n\nb\"\n", // blank lines inside quotes
	"Visit_Nbr,Item_Nbr",
	"Visit_Nbr,Item_Nbr\n",
	"",
	"\r",
	"Wrong,Item_Nbr\n1,2\n",
	"Visit_Nbr\n1\n",
}

func TestCSVBlockReaderMatchesLegacy(t *testing.T) {
	for _, in := range csvOracleCases {
		for _, blockRows := range []int{1, 2, 512} {
			compareCSVWithOracle(t, in, blockRows)
		}
	}
}

var jsonlOracleCases = []string{
	"{\"Visit_Nbr\":\"1\",\"Item_Nbr\":\"10\"}\n{\"Visit_Nbr\":\"2\",\"Item_Nbr\":\"11\"}\n",
	"{\"Item_Nbr\":\"10\",\"Visit_Nbr\":\"1\"}\n", // reordered keys
	"  {\"Visit_Nbr\":\"1\",\"Item_Nbr\":\"10\"}  ",
	"{\n  \"Visit_Nbr\": \"1\",\n  \"Item_Nbr\": \"10\"\n}\n", // pretty-printed
	"{\"Visit_Nbr\":\"1\",\"Item_Nbr\":\"10\"}{\"Visit_Nbr\":\"2\",\"Item_Nbr\":\"11\"}",
	"{\"Visit_Nbr\":\"1\",\"Item_Nbr\":null}\n",                      // null -> ""
	"{\"Visit_Nbr\":\"1\",\"Visit_Nbr\":\"2\",\"Item_Nbr\":\"x\"}\n", // dup key, last wins
	"{\"Visit_Nbr\":\"a\\\"b\",\"Item_Nbr\":\"\\u0041\\n\\t\"}\n",    // escapes
	"{\"Visit_Nbr\":\"\\ud83d\\ude00\",\"Item_Nbr\":\"x\"}\n",        // surrogate pair
	"{\"Visit_Nbr\":\"\\ud800\",\"Item_Nbr\":\"x\"}\n",               // lone surrogate
	"{\"Visit_Nbr\":\"\\ud800\\ud800\",\"Item_Nbr\":\"x\"}\n",        // surrogate + surrogate
	"{\"Visit_Nbr\":\"\xff\xfe\",\"Item_Nbr\":\"x\"}\n",              // invalid UTF-8
	"{\"\\u0056isit_Nbr\":\"1\",\"Item_Nbr\":\"2\"}\n",               // escaped key
	"{\"Visit_Nbr\":\"1\"}\n",                                        // missing key
	"{\"Visit_Nbr\":\"1\",\"Wrong\":\"2\"}\n",                        // unknown key
	"{\"Visit_Nbr\":\"1\",\"Item_Nbr\":2}\n",                         // number value
	"{\"Visit_Nbr\":\"1\",\"Item_Nbr\":true}\n",                      // bool value
	"{\"Visit_Nbr\":\"1\",\"Item_Nbr\":[\"x\"]}\n",                   // array value
	"{\"Visit_Nbr\":\"1\",\"Item_Nbr\":{\"a\":1}}\n",                 // object value
	"{\"Visit_Nbr\":\"1\",\"Item_Nbr\":\"2\",}\n",                    // trailing comma
	"{}",
	"null\n",
	"not json\n",
	"[\"x\"]\n",
	"{\"Visit_Nbr\":\"1\",\"Item_Nbr\":\"2\"",         // truncated
	"{\"Visit_Nbr\":\"1\",\"Item_Nbr\":\"2\"}garbage", // good row then garbage
	"{\"Visit_Nbr\":\"a\tb\",\"Item_Nbr\":\"x\"}\n",   // raw control char
	"",
	"   \n\t ",
}

func TestJSONLBlockReaderMatchesLegacy(t *testing.T) {
	for _, in := range jsonlOracleCases {
		for _, blockRows := range []int{1, 2, 512} {
			compareJSONLWithOracle(t, in, blockRows)
		}
	}
}

func FuzzCSVBlockReader(f *testing.F) {
	for _, in := range csvOracleCases {
		f.Add(in, uint8(3))
	}
	f.Fuzz(func(t *testing.T, in string, blockRows uint8) {
		compareCSVWithOracle(t, in, int(blockRows%8)+1)
	})
}

func FuzzJSONLBlockReader(f *testing.F) {
	for _, in := range jsonlOracleCases {
		f.Add(in, uint8(3))
	}
	f.Fuzz(func(t *testing.T, in string, blockRows uint8) {
		compareJSONLWithOracle(t, in, int(blockRows%8)+1)
	})
}

// TestCSVBlockReaderRawSpans checks the raw record spans: header plus
// concatenated spans must re-parse to the identical row stream, and for
// input with no blank lines the concatenation is the input itself.
func TestCSVBlockReaderRawSpans(t *testing.T) {
	schema := rowioSchema(t)
	in := "Visit_Nbr,Item_Nbr\r\n1,10\r\n\n\"2\",\"a\"\"b\"\n3,\"multi\nline\"\n4,40"
	br, err := NewCSVBlockReader(strings.NewReader(in), schema)
	if err != nil {
		t.Fatal(err)
	}
	br.SetRecordRaw(true)
	var payload []byte
	payload = append(payload, br.RawHeader()...)
	blk := NewBlock(schema)
	var want [][]string
	for {
		n, err := br.ReadBlock(blk, 2)
		for i := 0; i < n; i++ {
			want = append(want, []string(blk.Tuple(i)))
		}
		payload = append(payload, blk.RawBytes()...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	rr, err := NewCSVRowReader(strings.NewReader(string(payload)), schema)
	if err != nil {
		t.Fatalf("raw payload header: %v\npayload: %q", err, payload)
	}
	got, err := drainRows(rr)
	if err != nil {
		t.Fatalf("raw payload re-parse: %v\npayload: %q", err, payload)
	}
	if !sameRows(want, got) {
		t.Fatalf("raw payload rows differ:\nwant %q\ngot  %q", want, got)
	}

	// Without blank lines the raw spans are exactly the input bytes.
	in2 := "Visit_Nbr,Item_Nbr\n1,10\n2,\"a,b\"\n"
	br2, err := NewCSVBlockReader(strings.NewReader(in2), schema)
	if err != nil {
		t.Fatal(err)
	}
	br2.SetRecordRaw(true)
	var exact []byte
	exact = append(exact, br2.RawHeader()...)
	for {
		n, err := br2.ReadBlock(blk, 512)
		_ = n
		exact = append(exact, blk.RawBytes()...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if string(exact) != in2 {
		t.Fatalf("raw spans not byte-identical to input:\nin  %q\nout %q", in2, exact)
	}
}

// TestJSONLBlockReaderRawSpans: concatenated object spans (one per
// line) must re-parse to the identical row stream.
func TestJSONLBlockReaderRawSpans(t *testing.T) {
	schema := rowioSchema(t)
	in := "{\"Visit_Nbr\":\"1\",\"Item_Nbr\":\"a\\\"b\"}   \n\n  {\"Item_Nbr\":\"11\",\"Visit_Nbr\":\"2\"}"
	br := NewJSONLBlockReader(strings.NewReader(in), schema)
	br.SetRecordRaw(true)
	if br.RawHeader() != nil {
		t.Fatal("JSONL RawHeader should be nil")
	}
	blk := NewBlock(schema)
	var payload []byte
	var want [][]string
	for {
		n, err := br.ReadBlock(blk, 1)
		for i := 0; i < n; i++ {
			want = append(want, []string(blk.Tuple(i)))
		}
		payload = append(payload, blk.RawBytes()...)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	got, err := drainRows(NewJSONLRowReader(strings.NewReader(string(payload)), schema))
	if err != nil {
		t.Fatalf("raw payload re-parse: %v\npayload: %q", err, payload)
	}
	if !sameRows(want, got) {
		t.Fatalf("raw payload rows differ:\nwant %q\ngot  %q", want, got)
	}
}

// TestBlockReaderRowCompat: the RowReader view over a block reader must
// match the legacy reader row for row, including rows before an error.
func TestBlockReaderRowCompat(t *testing.T) {
	schema := rowioSchema(t)
	in := "Visit_Nbr,Item_Nbr\n1,10\n2,11\n3\n"
	rr, err := NewCSVRowReader(strings.NewReader(in), schema)
	if err != nil {
		t.Fatal(err)
	}
	br, err := NewCSVBlockReader(strings.NewReader(in), schema)
	if err != nil {
		t.Fatal(err)
	}
	want, wantErr := drainRows(rr)
	got, gotErr := drainRows(br)
	if (wantErr != nil) != (gotErr != nil) {
		t.Fatalf("error disagreement: legacy %v, block %v", wantErr, gotErr)
	}
	if !sameRows(want, got) {
		t.Fatalf("rows differ:\nwant %q\ngot  %q", want, got)
	}
	if len(got) != 2 {
		t.Fatalf("expected the 2 rows before the error, got %d", len(got))
	}
}

func TestBlockPoolAndGen(t *testing.T) {
	schema := rowioSchema(t)
	b := GetBlock(schema)
	g := b.Gen()
	if err := b.AppendTuple(Tuple{"1", "10"}); err != nil {
		t.Fatal(err)
	}
	if b.Rows() != 1 || b.Col(0).String(0) != "1" || string(b.Value(0, 1)) != "10" {
		t.Fatalf("block contents wrong: %d rows", b.Rows())
	}
	b.Reset(schema)
	if b.Gen() == g {
		t.Fatal("Reset did not advance generation")
	}
	if b.Rows() != 0 || b.Col(0).Rows() != 0 {
		t.Fatal("Reset did not empty block")
	}
	PutBlock(b)
}

// TestBlockReadAllocsCSV pins the warm block-read path at zero
// allocations per block (hence per row) — the tentpole invariant.
func TestBlockReadAllocsCSV(t *testing.T) {
	schema := rowioSchema(t)
	var sb strings.Builder
	sb.WriteString("Visit_Nbr,Item_Nbr\n")
	for i := 0; i < 6000; i++ {
		fmt.Fprintf(&sb, "%d,%d\n", i, 10+i%97)
	}
	br, err := NewCSVBlockReader(strings.NewReader(sb.String()), schema)
	if err != nil {
		t.Fatal(err)
	}
	blk := NewBlock(schema)
	for i := 0; i < 4; i++ { // warm arenas
		if _, err := br.ReadBlock(blk, 32); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(50, func() {
		n, err := br.ReadBlock(blk, 32)
		if err != nil || n == 0 {
			t.Fatalf("ReadBlock: n=%d err=%v", n, err)
		}
	})
	if avg != 0 {
		t.Fatalf("warm CSV ReadBlock allocates: %v allocs/block", avg)
	}
}

// TestBlockReadAllocsJSONL is the JSONL counterpart.
func TestBlockReadAllocsJSONL(t *testing.T) {
	schema := rowioSchema(t)
	var sb strings.Builder
	for i := 0; i < 6000; i++ {
		fmt.Fprintf(&sb, "{\"Visit_Nbr\":\"%d\",\"Item_Nbr\":\"%d\"}\n", i, 10+i%97)
	}
	br := NewJSONLBlockReader(strings.NewReader(sb.String()), schema)
	blk := NewBlock(schema)
	for i := 0; i < 4; i++ {
		if _, err := br.ReadBlock(blk, 32); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(50, func() {
		n, err := br.ReadBlock(blk, 32)
		if err != nil || n == 0 {
			t.Fatalf("ReadBlock: n=%d err=%v", n, err)
		}
	})
	if avg != 0 {
		t.Fatalf("warm JSONL ReadBlock allocates: %v allocs/block", avg)
	}
}

// BenchmarkRowReader compares the stdlib-backed row readers against the
// zero-copy block readers over identical inputs.
func BenchmarkRowReader(b *testing.B) {
	schema := rowioSchema(b)
	const rows = 4096
	var plain, quoted, jsonl strings.Builder
	plain.WriteString("Visit_Nbr,Item_Nbr\n")
	quoted.WriteString("Visit_Nbr,Item_Nbr\n")
	for i := 0; i < rows; i++ {
		fmt.Fprintf(&plain, "%d,%d\n", i, 10+i%97)
		fmt.Fprintf(&quoted, "\"%d\",\"it\"\"em,%d\"\n", i, 10+i%97)
		fmt.Fprintf(&jsonl, "{\"Visit_Nbr\":\"%d\",\"Item_Nbr\":\"%d\"}\n", i, 10+i%97)
	}

	legacy := func(in string, mk func(string) (RowReader, error)) func(*testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(in)))
			for i := 0; i < b.N; i++ {
				rr, err := mk(in)
				if err != nil {
					b.Fatal(err)
				}
				var sink int
				for {
					t, err := rr.Read()
					if err == io.EOF {
						break
					}
					if err != nil {
						b.Fatal(err)
					}
					sink += len(t[0])
				}
				_ = sink
			}
		}
	}
	block := func(in string, mk func(string) (BlockReader, error)) func(*testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(in)))
			blk := NewBlock(schema)
			for i := 0; i < b.N; i++ {
				br, err := mk(in)
				if err != nil {
					b.Fatal(err)
				}
				var sink int
				for {
					n, err := br.ReadBlock(blk, 512)
					for j := 0; j < n; j++ {
						sink += len(blk.Value(j, 0))
					}
					if err == io.EOF {
						break
					}
					if err != nil {
						b.Fatal(err)
					}
				}
				_ = sink
			}
		}
	}

	mkLegacyCSV := func(in string) (RowReader, error) {
		return NewCSVRowReader(strings.NewReader(in), schema)
	}
	mkLegacyJSONL := func(in string) (RowReader, error) {
		return NewJSONLRowReader(strings.NewReader(in), schema), nil
	}
	mkBlockCSV := func(in string) (BlockReader, error) {
		return NewCSVBlockReader(strings.NewReader(in), schema)
	}
	mkBlockJSONL := func(in string) (BlockReader, error) {
		return NewJSONLBlockReader(strings.NewReader(in), schema), nil
	}

	b.Run("csv/stdlib", legacy(plain.String(), mkLegacyCSV))
	b.Run("csv/zerocopy", block(plain.String(), mkBlockCSV))
	b.Run("csv-quoted/stdlib", legacy(quoted.String(), mkLegacyCSV))
	b.Run("csv-quoted/zerocopy", block(quoted.String(), mkBlockCSV))
	b.Run("jsonl/stdlib", legacy(jsonl.String(), mkLegacyJSONL))
	b.Run("jsonl/zerocopy", block(jsonl.String(), mkBlockJSONL))
}
