package relation

import (
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewDomainSortsAndDedupes(t *testing.T) {
	d, err := NewDomain([]string{"zeta", "alpha", "zeta", "mid"})
	if err != nil {
		t.Fatal(err)
	}
	if d.Size() != 3 {
		t.Fatalf("size %d, want 3", d.Size())
	}
	want := []string{"alpha", "mid", "zeta"}
	if got := d.Values(); !reflect.DeepEqual(got, want) {
		t.Fatalf("values %v, want %v", got, want)
	}
}

func TestNewDomainEmpty(t *testing.T) {
	if _, err := NewDomain(nil); err == nil {
		t.Fatal("empty domain accepted")
	}
}

func TestDomainIndexValueInverse(t *testing.T) {
	d := MustDomain([]string{"c", "a", "b"})
	for i := 0; i < d.Size(); i++ {
		v := d.Value(i)
		j, ok := d.Index(v)
		if !ok || j != i {
			t.Fatalf("Index(Value(%d)) = %d,%v", i, j, ok)
		}
	}
	if _, ok := d.Index("missing"); ok {
		t.Fatal("missing value found")
	}
	if !d.Contains("a") || d.Contains("zz") {
		t.Fatal("Contains wrong")
	}
}

func TestDomainValuePanics(t *testing.T) {
	d := MustDomain([]string{"a"})
	for _, i := range []int{-1, 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Value(%d): expected panic", i)
				}
			}()
			d.Value(i)
		}()
	}
}

// Property: Index/Value are mutually inverse for arbitrary catalogs.
func TestDomainInverseProperty(t *testing.T) {
	f := func(raw []string) bool {
		if len(raw) == 0 {
			return true
		}
		d, err := NewDomain(raw)
		if err != nil {
			return false
		}
		for i := 0; i < d.Size(); i++ {
			if j, ok := d.Index(d.Value(i)); !ok || j != i {
				return false
			}
		}
		for _, v := range raw {
			if i, ok := d.Index(v); !ok || d.Value(i) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDomainOf(t *testing.T) {
	s := MustSchema([]Attribute{
		{Name: "k", Type: TypeInt},
		{Name: "city", Type: TypeString, Categorical: true},
	}, "k")
	r := New(s)
	for i, city := range []string{"chicago", "boston", "chicago", "austin"} {
		r.MustAppend(Tuple{itoa(i), city})
	}
	d, err := DomainOf(r, "city")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"austin", "boston", "chicago"}
	if !reflect.DeepEqual(d.Values(), want) {
		t.Fatalf("domain %v, want %v", d.Values(), want)
	}
}

func TestDomainOfErrors(t *testing.T) {
	s := MustSchema([]Attribute{{Name: "k", Type: TypeInt}}, "k")
	r := New(s)
	if _, err := DomainOf(r, "ghost"); err == nil {
		t.Error("unknown attribute accepted")
	}
	if _, err := DomainOf(r, "k"); err == nil {
		t.Error("empty relation accepted")
	}
}

func TestHistogramOf(t *testing.T) {
	s := MustSchema([]Attribute{
		{Name: "k", Type: TypeInt},
		{Name: "c", Type: TypeString, Categorical: true},
	}, "k")
	r := New(s)
	for i, v := range []string{"x", "x", "x", "y"} {
		r.MustAppend(Tuple{itoa(i), v})
	}
	h, err := HistogramOf(r, "c")
	if err != nil {
		t.Fatal(err)
	}
	if h.Count("x") != 3 || h.Count("y") != 1 || h.Total() != 4 {
		t.Fatalf("histogram counts wrong: x=%d y=%d total=%d",
			h.Count("x"), h.Count("y"), h.Total())
	}
	if _, err := HistogramOf(r, "ghost"); err == nil {
		t.Error("unknown attribute accepted")
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [20]byte
	pos := len(buf)
	for i > 0 {
		pos--
		buf[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[pos:])
}
