package relation

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// JSON-lines codec: one JSON object per line keyed by attribute name.
// Complements the CSV codec for pipelines whose tooling speaks JSONL
// (e.g. log processors and data-mining feeds, the paper's motivating
// consumers). Round trips are lossless for any string values.

// WriteJSONL writes the relation as JSON lines.
func WriteJSONL(w io.Writer, r *Relation) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	arity := r.Schema().Arity()
	names := make([]string, arity)
	for i := range names {
		names[i] = r.Schema().Attr(i).Name
	}
	for i := 0; i < r.Len(); i++ {
		obj := make(map[string]string, arity)
		t := r.Tuple(i)
		for j, name := range names {
			obj[name] = t[j]
		}
		if err := enc.Encode(obj); err != nil {
			return fmt.Errorf("relation: writing JSONL row %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL reads a relation under the given schema from JSON lines.
// Every object must supply exactly the schema's attributes; extra or
// missing keys are errors, as silent column loss would corrupt watermark
// detection. It is the materializing loop over JSONLRowReader (rowio.go).
func ReadJSONL(rd io.Reader, schema *Schema) (*Relation, error) {
	return ReadAll(NewJSONLRowReader(rd, schema))
}
