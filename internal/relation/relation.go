// Package relation is the relational-data substrate for the categorical
// watermarking system. The paper assumes a schema (K, A, B) — a primary key
// K and discrete attributes A, B — hosted on a DBMS and accessed through
// JDBC (Figure 3); this package is the in-memory stand-in: schemas,
// tuples, relations, categorical domains, codecs, sorting and partitioning.
//
// Values are stored as strings uniformly; Attribute.Type records the
// logical type for codecs and generators. Categorical semantics (the sorted
// value set {a_1 … a_nA} of Section 2.1) live in Domain.
package relation

import (
	"errors"
	"fmt"
	"strings"
)

// Type is the logical type of an attribute's values.
type Type int

const (
	// TypeString holds free-form text values.
	TypeString Type = iota
	// TypeInt holds base-10 integer values (e.g. Visit_Nbr, Item_Nbr).
	TypeInt
)

// String returns the type's schema-spec name.
func (t Type) String() string {
	switch t {
	case TypeString:
		return "string"
	case TypeInt:
		return "int"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// ParseType parses a schema-spec type name.
func ParseType(s string) (Type, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "string", "str", "text":
		return TypeString, nil
	case "int", "integer":
		return TypeInt, nil
	default:
		return 0, fmt.Errorf("relation: unknown type %q", s)
	}
}

// Attribute describes one column.
type Attribute struct {
	// Name is the attribute name, unique within a schema.
	Name string
	// Type is the logical value type.
	Type Type
	// Categorical marks attributes drawing from a finite discrete value
	// set — the watermark embedding channels of Section 3.
	Categorical bool
}

// Schema describes a relation's columns and its primary key.
type Schema struct {
	attrs    []Attribute
	byName   map[string]int
	keyIndex int
}

// NewSchema builds a schema from attributes; keyAttr names the primary key
// (the paper's K). Attribute names must be unique and non-empty.
func NewSchema(attrs []Attribute, keyAttr string) (*Schema, error) {
	if len(attrs) == 0 {
		return nil, errors.New("relation: schema needs at least one attribute")
	}
	s := &Schema{
		attrs:    append([]Attribute(nil), attrs...),
		byName:   make(map[string]int, len(attrs)),
		keyIndex: -1,
	}
	for i, a := range s.attrs {
		if a.Name == "" {
			return nil, fmt.Errorf("relation: attribute %d has empty name", i)
		}
		if _, dup := s.byName[a.Name]; dup {
			return nil, fmt.Errorf("relation: duplicate attribute %q", a.Name)
		}
		s.byName[a.Name] = i
		if a.Name == keyAttr {
			s.keyIndex = i
		}
	}
	if s.keyIndex < 0 {
		return nil, fmt.Errorf("relation: primary key %q not among attributes", keyAttr)
	}
	return s, nil
}

// MustSchema is NewSchema that panics on error; for tests and generators
// with static inputs.
func MustSchema(attrs []Attribute, keyAttr string) *Schema {
	s, err := NewSchema(attrs, keyAttr)
	if err != nil {
		panic(err)
	}
	return s
}

// Arity returns the number of attributes.
func (s *Schema) Arity() int { return len(s.attrs) }

// Attr returns the attribute at position i.
func (s *Schema) Attr(i int) Attribute { return s.attrs[i] }

// Attrs returns a copy of the attribute list.
func (s *Schema) Attrs() []Attribute { return append([]Attribute(nil), s.attrs...) }

// Index returns the position of the named attribute.
func (s *Schema) Index(name string) (int, bool) {
	i, ok := s.byName[name]
	return i, ok
}

// KeyIndex returns the primary key's position.
func (s *Schema) KeyIndex() int { return s.keyIndex }

// KeyName returns the primary key's attribute name.
func (s *Schema) KeyName() string { return s.attrs[s.keyIndex].Name }

// CategoricalAttrs returns the names of all categorical attributes,
// in schema order.
func (s *Schema) CategoricalAttrs() []string {
	var out []string
	for _, a := range s.attrs {
		if a.Categorical {
			out = append(out, a.Name)
		}
	}
	return out
}

// Project returns a new schema keeping only the named attributes (in the
// given order). If the original primary key is kept it remains the key;
// otherwise keyAttr of the projection is the first kept attribute —
// mirroring an A5 vertical partition where "one of the remaining attributes
// can act as a primary key" (Section 3.3).
func (s *Schema) Project(keep ...string) (*Schema, error) {
	if len(keep) == 0 {
		return nil, errors.New("relation: projection keeps no attributes")
	}
	attrs := make([]Attribute, 0, len(keep))
	key := ""
	for _, name := range keep {
		i, ok := s.byName[name]
		if !ok {
			return nil, fmt.Errorf("relation: unknown attribute %q", name)
		}
		attrs = append(attrs, s.attrs[i])
		if name == s.KeyName() {
			key = name
		}
	}
	if key == "" {
		key = attrs[0].Name
	}
	return NewSchema(attrs, key)
}

// Equal reports structural equality of two schemas.
func (s *Schema) Equal(o *Schema) bool {
	if s.Arity() != o.Arity() || s.keyIndex != o.keyIndex {
		return false
	}
	for i := range s.attrs {
		if s.attrs[i] != o.attrs[i] {
			return false
		}
	}
	return true
}

// Tuple is one row: values by attribute position, stored as strings.
type Tuple []string

// Clone returns an independent copy of the tuple.
func (t Tuple) Clone() Tuple { return append(Tuple(nil), t...) }

// Relation is an ordered multiset of tuples under a schema, with primary
// key uniqueness enforced on insert.
type Relation struct {
	schema *Schema
	tuples []Tuple
	keys   map[string]int // key value -> row index
}

// New returns an empty relation with the given schema.
func New(schema *Schema) *Relation {
	return &Relation{schema: schema, keys: make(map[string]int)}
}

// Schema returns the relation's schema.
func (r *Relation) Schema() *Schema { return r.schema }

// Reset empties the relation in place, keeping the schema and the
// tuple/key capacity — the recycling half of the pooled chunk relations
// in the streaming pipeline.
func (r *Relation) Reset() {
	r.tuples = r.tuples[:0]
	clear(r.keys)
}

// Len returns the number of tuples (the paper's N).
func (r *Relation) Len() int { return len(r.tuples) }

// ErrDuplicateKey is returned by Append when a tuple reuses a primary key.
var ErrDuplicateKey = errors.New("relation: duplicate primary key")

// Append adds a tuple. It validates arity and primary-key uniqueness.
// The tuple is stored as given (not copied); callers retaining the slice
// should pass t.Clone().
func (r *Relation) Append(t Tuple) error {
	if len(t) != r.schema.Arity() {
		return fmt.Errorf("relation: tuple arity %d, schema arity %d",
			len(t), r.schema.Arity())
	}
	key := t[r.schema.keyIndex]
	if _, dup := r.keys[key]; dup {
		return fmt.Errorf("%w: %q", ErrDuplicateKey, key)
	}
	r.keys[key] = len(r.tuples)
	r.tuples = append(r.tuples, t)
	return nil
}

// MustAppend is Append that panics on error; for generators whose inputs
// are unique by construction.
func (r *Relation) MustAppend(t Tuple) {
	if err := r.Append(t); err != nil {
		panic(err)
	}
}

// Tuple returns the i-th tuple. The returned slice aliases internal
// storage; mutate only through SetValue.
func (r *Relation) Tuple(i int) Tuple { return r.tuples[i] }

// Value returns T_i(attr): the value of the named attribute in row i.
func (r *Relation) Value(i int, attr string) (string, error) {
	j, ok := r.schema.Index(attr)
	if !ok {
		return "", fmt.Errorf("relation: unknown attribute %q", attr)
	}
	return r.tuples[i][j], nil
}

// SetValue overwrites the named attribute in row i, maintaining the
// primary-key index if the key column is the one changed.
func (r *Relation) SetValue(i int, attr, value string) error {
	j, ok := r.schema.Index(attr)
	if !ok {
		return fmt.Errorf("relation: unknown attribute %q", attr)
	}
	if j == r.schema.keyIndex {
		old := r.tuples[i][j]
		if old == value {
			return nil
		}
		if _, dup := r.keys[value]; dup {
			return fmt.Errorf("%w: %q", ErrDuplicateKey, value)
		}
		delete(r.keys, old)
		r.keys[value] = i
	}
	r.tuples[i][j] = value
	return nil
}

// Key returns the primary-key value of row i.
func (r *Relation) Key(i int) string { return r.tuples[i][r.schema.keyIndex] }

// Lookup returns the row index holding the given primary-key value.
func (r *Relation) Lookup(key string) (int, bool) {
	i, ok := r.keys[key]
	return i, ok
}

// Clone returns a deep copy: independent tuples and key index, shared
// (immutable) schema.
func (r *Relation) Clone() *Relation {
	c := &Relation{
		schema: r.schema,
		tuples: make([]Tuple, len(r.tuples)),
		keys:   make(map[string]int, len(r.keys)),
	}
	for i, t := range r.tuples {
		c.tuples[i] = t.Clone()
	}
	for k, v := range r.keys {
		c.keys[k] = v
	}
	return c
}

// Equal reports whether two relations have equal schemas and identical
// tuple sequences (order-sensitive; use EqualUnordered for set equality).
func (r *Relation) Equal(o *Relation) bool {
	if !r.schema.Equal(o.schema) || r.Len() != o.Len() {
		return false
	}
	for i, t := range r.tuples {
		ot := o.tuples[i]
		for j := range t {
			if t[j] != ot[j] {
				return false
			}
		}
	}
	return true
}

// EqualUnordered reports whether two relations contain the same tuples
// regardless of order, matching rows by primary key.
func (r *Relation) EqualUnordered(o *Relation) bool {
	if !r.schema.Equal(o.schema) || r.Len() != o.Len() {
		return false
	}
	for i := range r.tuples {
		j, ok := o.Lookup(r.Key(i))
		if !ok {
			return false
		}
		t, ot := r.tuples[i], o.tuples[j]
		for c := range t {
			if t[c] != ot[c] {
				return false
			}
		}
	}
	return true
}
