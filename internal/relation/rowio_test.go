package relation

import (
	"io"
	"strings"
	"testing"
)

func rowioSchema(t testing.TB) *Schema {
	t.Helper()
	s, err := NewSchema([]Attribute{
		{Name: "Visit_Nbr", Type: TypeInt},
		{Name: "Item_Nbr", Type: TypeInt, Categorical: true},
	}, "Visit_Nbr")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func rowioRelation(t testing.TB) *Relation {
	t.Helper()
	r := New(rowioSchema(t))
	for _, row := range [][2]string{{"1", "10"}, {"2", "11"}, {"3", "10"}} {
		if err := r.Append(Tuple{row[0], row[1]}); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func TestCSVRowRoundTrip(t *testing.T) {
	r := rowioRelation(t)
	var b strings.Builder
	w, err := NewCSVRowWriter(&b, r.Schema())
	if err != nil {
		t.Fatal(err)
	}
	src := Rows(r)
	for {
		tup, err := src.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Write(tup); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	rr, err := NewCSVRowReader(strings.NewReader(b.String()), r.Schema())
	if err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(rr)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Equal(got) {
		t.Fatalf("round trip lost data:\nin:  %v\nout: %v", r, got)
	}
}

func TestJSONLRowRoundTrip(t *testing.T) {
	r := rowioRelation(t)
	var b strings.Builder
	w := NewJSONLRowWriter(&b, r.Schema())
	for i := 0; i < r.Len(); i++ {
		if err := w.Write(r.Tuple(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ReadAll(NewJSONLRowReader(strings.NewReader(b.String()), r.Schema()))
	if err != nil {
		t.Fatal(err)
	}
	if !r.Equal(got) {
		t.Fatalf("round trip lost data:\nin:  %v\nout: %v", r, got)
	}
}

func TestCSVRowReaderMalformed(t *testing.T) {
	schema := rowioSchema(t)
	headerErrs := map[string]string{
		"":                           "empty input",
		"Visit_Nbr,Unknown\n1,2\n":   "unknown column",
		"Visit_Nbr,Visit_Nbr\n1,2\n": "duplicate column",
		"Visit_Nbr\n1\n":             "missing column",
	}
	for in, why := range headerErrs {
		if _, err := NewCSVRowReader(strings.NewReader(in), schema); err == nil {
			t.Errorf("%s: header accepted: %q", why, in)
		}
	}

	rowErrs := map[string]string{
		"Visit_Nbr,Item_Nbr\n1\n":        "short row",
		"Visit_Nbr,Item_Nbr\n1,2,3\n":    "long row",
		"Visit_Nbr,Item_Nbr\n\"1,2\n":    "unterminated quote",
		"Visit_Nbr,Item_Nbr\n1,\"a\"b\n": "stray quote",
	}
	for in, why := range rowErrs {
		rr, err := NewCSVRowReader(strings.NewReader(in), schema)
		if err != nil {
			t.Errorf("%s: header rejected: %v", why, err)
			continue
		}
		if _, err := rr.Read(); err == nil || err == io.EOF {
			t.Errorf("%s: row accepted: %q", why, in)
		}
	}
}

func TestJSONLRowReaderMalformed(t *testing.T) {
	schema := rowioSchema(t)
	cases := map[string]string{
		"{\"Visit_Nbr\":\"1\"}\n":                                    "missing key",
		"{\"Visit_Nbr\":\"1\",\"Item_Nbr\":\"2\",\"Extra\":\"3\"}\n": "extra key",
		"{\"Visit_Nbr\":\"1\",\"Wrong\":\"2\"}\n":                    "unknown key",
		"{\"Visit_Nbr\":\"1\",\"Item_Nbr\":2}\n":                     "non-string value",
		"not json\n":                                                 "not json",
		"{\"Visit_Nbr\":\"1\",\"Item_Nbr\":\"2\"":                    "truncated object",
		"[\"Visit_Nbr\",\"Item_Nbr\"]\n":                             "array not object",
	}
	for in, why := range cases {
		rr := NewJSONLRowReader(strings.NewReader(in), schema)
		if _, err := rr.Read(); err == nil || err == io.EOF {
			t.Errorf("%s: accepted: %q", why, in)
		}
	}
}

func TestReadAllEnforcesKeyUniqueness(t *testing.T) {
	schema := rowioSchema(t)
	in := "Visit_Nbr,Item_Nbr\n1,10\n1,11\n"
	rr, err := NewCSVRowReader(strings.NewReader(in), schema)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ReadAll(rr); err == nil {
		t.Fatal("duplicate primary key accepted by ReadAll")
	}
}

func TestRowsReaderYieldsClones(t *testing.T) {
	r := rowioRelation(t)
	src := Rows(r)
	tup, err := src.Read()
	if err != nil {
		t.Fatal(err)
	}
	tup[1] = "mutated"
	if v, _ := r.Value(0, "Item_Nbr"); v == "mutated" {
		t.Fatal("Rows reader aliases relation storage")
	}
}

// FuzzCSVRowReader asserts the CSV row path never panics and only ever
// returns rows of schema arity, whatever bytes arrive.
func FuzzCSVRowReader(f *testing.F) {
	f.Add("Visit_Nbr,Item_Nbr\n1,10\n2,11\n")
	f.Add("Item_Nbr,Visit_Nbr\n10,1\n")
	f.Add("Visit_Nbr,Item_Nbr\n\"quoted,comma\",2\n")
	f.Add("Visit_Nbr,Item_Nbr\r\n1,\r\n")
	f.Add("\xff\xfe")
	f.Fuzz(func(t *testing.T, in string) {
		schema := rowioSchema(t)
		rr, err := NewCSVRowReader(strings.NewReader(in), schema)
		if err != nil {
			return
		}
		for i := 0; i < 1000; i++ {
			tup, err := rr.Read()
			if err != nil {
				return
			}
			if len(tup) != schema.Arity() {
				t.Fatalf("row arity %d, schema %d", len(tup), schema.Arity())
			}
		}
	})
}

// FuzzJSONLRowReader is the JSONL counterpart.
func FuzzJSONLRowReader(f *testing.F) {
	f.Add("{\"Visit_Nbr\":\"1\",\"Item_Nbr\":\"10\"}\n")
	f.Add("{}")
	f.Add("null\n")
	f.Add("{\"Visit_Nbr\":\"\\u0000\",\"Item_Nbr\":\"x\"}")
	f.Add("\x00{")
	f.Fuzz(func(t *testing.T, in string) {
		schema := rowioSchema(t)
		rr := NewJSONLRowReader(strings.NewReader(in), schema)
		for i := 0; i < 1000; i++ {
			tup, err := rr.Read()
			if err != nil {
				return
			}
			if len(tup) != schema.Arity() {
				t.Fatalf("row arity %d, schema %d", len(tup), schema.Arity())
			}
		}
	})
}
