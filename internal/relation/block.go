package relation

import (
	"fmt"
	"sync"
)

// Columnar blocks: the zero-allocation ingestion unit. A Block holds one
// batch of rows in column-major form — each attribute's values
// concatenated into one contiguous byte arena with an offset table — so
// the scan engine can hand a key column to the batched keyed-hash
// kernels as raw bytes (keyhash.Kernel.HashColumn) without ever
// materializing a string per field. Blocks are recycled through a
// sync.Pool (GetBlock/PutBlock): once the pool is warm, a block travels
// from the input stream through mark.ScanColumns without a single
// per-row allocation.
//
// The arenas are owned by the block and overwritten on the next
// Reset/ReadBlock into it. Callers that need a value to outlive the
// block must copy it (Column.String is the sanctioned materializer);
// the wmlint arenacopy analyzer flags stray string(...) conversions of
// arena-backed slices inside the block loops.

// Column is one attribute's values across a block: all field bytes
// concatenated in data, with offs[i]:offs[i+1] delimiting row i
// (len(offs) == rows+1, offs[0] == 0).
type Column struct {
	data []byte
	offs []int32
}

// Rows returns the number of values in the column.
func (c *Column) Rows() int { return len(c.offs) - 1 }

// Value returns row i's bytes. The slice aliases the block arena and is
// valid only until the block is reset or returned to the pool.
func (c *Column) Value(i int) []byte { return c.data[c.offs[i]:c.offs[i+1]] }

// String materializes row i as an owned string — the one sanctioned
// copy out of the arena; everything on the scan hot path works on the
// Value byte view instead.
func (c *Column) String(i int) string {
	//wmlint:ignore arenacopy String is the sanctioned arena materializer
	return string(c.Value(i))
}

// Raw exposes the column's arena and offset table for batched hashing
// (keyhash.Kernel.HashColumn operates on exactly this shape). Both
// slices alias block storage; same lifetime rules as Value.
func (c *Column) Raw() (data []byte, offs []int32) { return c.data, c.offs }

// reset empties the column, keeping capacity.
func (c *Column) reset() {
	c.data = c.data[:0]
	if cap(c.offs) == 0 {
		c.offs = make([]int32, 1, 64)
	}
	c.offs = c.offs[:1]
	c.offs[0] = 0
}

// appendBytes extends the currently open field.
func (c *Column) appendBytes(b []byte) { c.data = append(c.data, b...) }

// appendByte extends the currently open field by one byte.
func (c *Column) appendByte(b byte) { c.data = append(c.data, b) }

// closeRow seals the currently open field as the next row's value.
func (c *Column) closeRow() { c.offs = append(c.offs, int32(len(c.data))) }

// Block is one batch of rows in columnar form, plus (optionally) the
// raw input byte spans the rows were parsed from — what the cluster
// coordinator slices shard payloads out of instead of re-serializing
// parsed tuples.
type Block struct {
	schema *Schema
	rows   int
	cols   []Column
	// raw holds the concatenated raw record spans when recording is on
	// (see RawShardSource.SetRecordRaw).
	raw []byte
	// gen increments on every Reset, giving pooled blocks a cheap
	// identity: (pointer, gen) pins one filling of one block, which is
	// how mark.BlockScratch knows when its per-block memo went stale.
	gen uint64
}

// NewBlock returns an empty block shaped for schema. Prefer
// GetBlock/PutBlock on hot paths — pooled blocks keep their arenas.
func NewBlock(schema *Schema) *Block {
	b := &Block{}
	b.Reset(schema)
	return b
}

// Reset empties the block and shapes it for schema, keeping arena
// capacity. Readers call it at the top of every ReadBlock.
func (b *Block) Reset(schema *Schema) {
	b.schema = schema
	b.rows = 0
	b.gen++
	arity := schema.Arity()
	if cap(b.cols) < arity {
		b.cols = append(b.cols[:cap(b.cols)], make([]Column, arity-cap(b.cols))...)
	}
	b.cols = b.cols[:arity]
	for i := range b.cols {
		b.cols[i].reset()
	}
	b.raw = b.raw[:0]
}

// Schema returns the schema the block's columns conform to.
func (b *Block) Schema() *Schema { return b.schema }

// Rows returns the number of complete rows in the block.
func (b *Block) Rows() int { return b.rows }

// Gen returns the block's fill generation (see the gen field).
func (b *Block) Gen() uint64 { return b.gen }

// Col returns the column at schema position i.
func (b *Block) Col(i int) *Column { return &b.cols[i] }

// Value returns the bytes of attribute col in row. Same lifetime rules
// as Column.Value.
func (b *Block) Value(row, col int) []byte { return b.cols[col].Value(row) }

// Tuple materializes row i as an owned Tuple — the compatibility bridge
// to the row-at-a-time engine; it allocates one string per field.
func (b *Block) Tuple(i int) Tuple {
	t := make(Tuple, len(b.cols))
	for c := range b.cols {
		t[c] = b.cols[c].String(i)
	}
	return t
}

// AppendTuple adds one row to the block in schema attribute order.
// Mainly for tests and adapters; the block readers append parsed field
// bytes directly into the arenas.
func (b *Block) AppendTuple(t Tuple) error {
	if len(t) != len(b.cols) {
		return fmt.Errorf("relation: tuple arity %d, block arity %d", len(t), len(b.cols))
	}
	for c := range b.cols {
		col := &b.cols[c]
		col.data = append(col.data, t[c]...)
		col.closeRow()
	}
	b.rows++
	return nil
}

// RawBytes returns the concatenated raw record spans of the block's
// rows — exact input bytes for CSV (every span newline-terminated as in
// the input, except possibly a final record at EOF), newline-terminated
// object spans for JSONL. Empty unless the reader recorded raw spans.
// Aliases block storage; same lifetime rules as Value.
func (b *Block) RawBytes() []byte { return b.raw }

// blockPool recycles blocks across reads and workers; arenas stay warm,
// so steady-state ingestion does not allocate per block, let alone per
// row.
var blockPool = sync.Pool{New: func() any { return new(Block) }}

// GetBlock returns a pooled block reset for schema.
func GetBlock(schema *Schema) *Block {
	b := blockPool.Get().(*Block)
	b.Reset(schema)
	return b
}

// PutBlock returns a block to the pool. The caller must not touch the
// block (or any Value/Raw slice taken from it) afterwards.
func PutBlock(b *Block) {
	if b != nil {
		blockPool.Put(b)
	}
}

// BlockReader is the batched complement of RowReader: it fills a
// caller-owned Block with up to maxRows rows per call. Implementations
// reset b before filling it.
//
// ReadBlock returns the number of complete rows appended. At end of
// input it returns (0, io.EOF) — never rows together with io.EOF. A
// parse error is returned with the count of complete rows parsed before
// it; the error is sticky, and the block's committed rows remain valid.
type BlockReader interface {
	// Schema returns the schema the rows conform to.
	Schema() *Schema
	// ReadBlock resets b and fills it with up to maxRows rows.
	ReadBlock(b *Block, maxRows int) (int, error)
}

// RawShardSource is a BlockReader that can also report the exact input
// byte ranges its rows were parsed from, which lets the cluster
// coordinator build shard payloads by slicing the original stream
// (header + record spans) instead of parsing and re-printing every row.
// Both zero-copy block readers implement it.
type RawShardSource interface {
	BlockReader
	// SetRecordRaw toggles raw-span recording into the blocks passed to
	// ReadBlock. Off by default; turn it on before the first ReadBlock.
	SetRecordRaw(on bool)
	// RawHeader returns the raw bytes of the stream preamble — the CSV
	// header line including its newline — or nil for formats without one.
	RawHeader() []byte
	// FormatName returns the shard wire-format name ("csv" or "jsonl")
	// a worker needs to re-parse the sliced payload.
	FormatName() string
}
