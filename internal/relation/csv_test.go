package relation

import (
	"bytes"
	"strings"
	"testing"
)

func TestParseSchemaSpec(t *testing.T) {
	s, err := ParseSchemaSpec("Visit_Nbr:int!key, Item_Nbr:int:categorical")
	if err != nil {
		t.Fatal(err)
	}
	if s.Arity() != 2 || s.KeyName() != "Visit_Nbr" {
		t.Fatalf("arity=%d key=%s", s.Arity(), s.KeyName())
	}
	if !s.Attr(1).Categorical || s.Attr(0).Categorical {
		t.Fatal("categorical flags wrong")
	}
	if s.Attr(0).Type != TypeInt {
		t.Fatal("type wrong")
	}
}

func TestParseSchemaSpecDefaultKey(t *testing.T) {
	s, err := ParseSchemaSpec("a:string, b:string:cat")
	if err != nil {
		t.Fatal(err)
	}
	if s.KeyName() != "a" {
		t.Fatalf("default key %q, want first attribute", s.KeyName())
	}
}

func TestParseSchemaSpecErrors(t *testing.T) {
	for _, spec := range []string{
		"",
		"a",
		"a:float",
		"a:int:wat",
		"a:int!key, b:int!key",
		"a:int:cat:extra",
	} {
		if _, err := ParseSchemaSpec(spec); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
}

func TestSchemaSpecRoundTrip(t *testing.T) {
	specs := []string{
		"Visit_Nbr:int!key, Item_Nbr:int:categorical",
		"a:string!key, b:string:categorical, c:int",
		"x:int!key",
	}
	for _, spec := range specs {
		s, err := ParseSchemaSpec(spec)
		if err != nil {
			t.Fatalf("%q: %v", spec, err)
		}
		s2, err := ParseSchemaSpec(SchemaSpec(s))
		if err != nil {
			t.Fatalf("re-parse %q: %v", SchemaSpec(s), err)
		}
		if !s.Equal(s2) {
			t.Errorf("round trip changed schema: %q -> %q", spec, SchemaSpec(s2))
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	s := MustSchema([]Attribute{
		{Name: "k", Type: TypeInt},
		{Name: "city", Type: TypeString, Categorical: true},
	}, "k")
	r := New(s)
	r.MustAppend(Tuple{"1", "chicago"})
	r.MustAppend(Tuple{"2", "san jose"}) // embedded space
	r.MustAppend(Tuple{"3", `quoted "city"`})

	var buf bytes.Buffer
	if err := WriteCSV(&buf, r); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, s)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Equal(back) {
		t.Fatal("CSV round trip changed relation")
	}
}

func TestReadCSVColumnReorder(t *testing.T) {
	s := MustSchema([]Attribute{
		{Name: "k", Type: TypeInt},
		{Name: "v", Type: TypeString},
	}, "k")
	in := "v,k\nhello,1\nworld,2\n"
	r, err := ReadCSV(strings.NewReader(in), s)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := r.Value(0, "v"); v != "hello" {
		t.Fatalf("reordered read got v=%q", v)
	}
	if r.Key(1) != "2" {
		t.Fatalf("reordered read got key=%q", r.Key(1))
	}
}

func TestReadCSVErrors(t *testing.T) {
	s := MustSchema([]Attribute{
		{Name: "k", Type: TypeInt},
		{Name: "v", Type: TypeString},
	}, "k")
	cases := map[string]string{
		"unknown column":   "k,zzz\n1,a\n",
		"duplicate column": "k,k\n1,a\n",
		"missing column":   "k\n1\n",
		"bad row arity":    "k,v\n1\n",
		"duplicate key":    "k,v\n1,a\n1,b\n",
		"empty input":      "",
	}
	for name, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in), s); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestWriteCSVEmptyRelation(t *testing.T) {
	s := MustSchema([]Attribute{{Name: "k", Type: TypeInt}}, "k")
	var buf bytes.Buffer
	if err := WriteCSV(&buf, New(s)); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(buf.String()); got != "k" {
		t.Fatalf("empty relation CSV = %q", got)
	}
}
