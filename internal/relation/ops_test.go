package relation

import (
	"strconv"
	"testing"

	"repro/internal/stats"
)

func buildNumbered(t *testing.T, n int) *Relation {
	t.Helper()
	s := MustSchema([]Attribute{
		{Name: "k", Type: TypeInt},
		{Name: "v", Type: TypeString, Categorical: true},
		{Name: "w", Type: TypeString, Categorical: true},
	}, "k")
	r := New(s)
	vals := []string{"a", "b", "c"}
	for i := 0; i < n; i++ {
		r.MustAppend(Tuple{strconv.Itoa(i), vals[i%3], vals[(i+1)%3]})
	}
	return r
}

func TestSortByNumeric(t *testing.T) {
	r := buildNumbered(t, 20)
	src := stats.NewSource("sort-test")
	r.Shuffle(src)
	if err := r.SortBy("k"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < r.Len(); i++ {
		if r.Key(i) != strconv.Itoa(i) {
			t.Fatalf("row %d has key %s after numeric sort", i, r.Key(i))
		}
	}
	// Numeric order, not lexicographic: "2" < "10".
	r2 := New(r.Schema())
	r2.MustAppend(Tuple{"10", "a", "b"})
	r2.MustAppend(Tuple{"2", "a", "b"})
	if err := r2.SortBy("k"); err != nil {
		t.Fatal(err)
	}
	if r2.Key(0) != "2" {
		t.Fatalf("numeric sort produced %s first", r2.Key(0))
	}
}

func TestSortByString(t *testing.T) {
	s := MustSchema([]Attribute{
		{Name: "k", Type: TypeString},
		{Name: "v", Type: TypeString},
	}, "k")
	r := New(s)
	for _, k := range []string{"pear", "apple", "mango"} {
		r.MustAppend(Tuple{k, "x"})
	}
	if err := r.SortBy("k"); err != nil {
		t.Fatal(err)
	}
	if r.Key(0) != "apple" || r.Key(2) != "pear" {
		t.Fatalf("string sort order wrong: %s..%s", r.Key(0), r.Key(2))
	}
}

func TestSortByUnknown(t *testing.T) {
	r := buildNumbered(t, 3)
	if err := r.SortBy("ghost"); err == nil {
		t.Fatal("unknown attribute accepted")
	}
}

func TestShufflePreservesContentAndIndex(t *testing.T) {
	r := buildNumbered(t, 50)
	orig := r.Clone()
	r.Shuffle(stats.NewSource("shuffle-ops"))
	if !r.EqualUnordered(orig) {
		t.Fatal("shuffle changed content")
	}
	// Index must still resolve every key to the right row.
	for i := 0; i < r.Len(); i++ {
		idx, ok := r.Lookup(r.Key(i))
		if !ok || idx != i {
			t.Fatalf("index broken after shuffle: key %s -> %d,%v", r.Key(i), idx, ok)
		}
	}
}

func TestSelectRows(t *testing.T) {
	r := buildNumbered(t, 10)
	sub, err := r.SelectRows([]int{3, 1, 7})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Len() != 3 || sub.Key(0) != "3" || sub.Key(1) != "1" || sub.Key(2) != "7" {
		t.Fatalf("selected keys %s,%s,%s", sub.Key(0), sub.Key(1), sub.Key(2))
	}
	if _, err := r.SelectRows([]int{99}); err == nil {
		t.Fatal("out-of-range row accepted")
	}
	// Clones: mutating the subset must not touch the original.
	if err := sub.SetValue(0, "v", "MUT"); err != nil {
		t.Fatal(err)
	}
	if v, _ := r.Value(3, "v"); v == "MUT" {
		t.Fatal("SelectRows aliased storage")
	}
}

func TestFilter(t *testing.T) {
	r := buildNumbered(t, 12)
	odd := r.Filter(func(i int, tp Tuple) bool {
		n, _ := strconv.Atoi(tp[0])
		return n%2 == 1
	})
	if odd.Len() != 6 {
		t.Fatalf("filtered %d rows, want 6", odd.Len())
	}
	for i := 0; i < odd.Len(); i++ {
		n, _ := strconv.Atoi(odd.Key(i))
		if n%2 != 1 {
			t.Fatalf("even key %d survived filter", n)
		}
	}
}

func TestProjectVerticalPartition(t *testing.T) {
	r := buildNumbered(t, 9)
	p, dropped, err := r.Project("v", "w")
	if err != nil {
		t.Fatal(err)
	}
	// v cycles a,b,c so only 3 distinct projected keys survive.
	if p.Len() != 3 {
		t.Fatalf("projection kept %d rows, want 3", p.Len())
	}
	if dropped != 6 {
		t.Fatalf("dropped %d, want 6", dropped)
	}
	if p.Schema().KeyName() != "v" {
		t.Fatalf("projected key %q", p.Schema().KeyName())
	}
}

func TestProjectKeepsKeyNoDrops(t *testing.T) {
	r := buildNumbered(t, 9)
	p, dropped, err := r.Project("k", "v")
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 9 || dropped != 0 {
		t.Fatalf("kept %d dropped %d", p.Len(), dropped)
	}
}

func TestAppendAll(t *testing.T) {
	a := buildNumbered(t, 5)
	b := New(a.Schema())
	b.MustAppend(Tuple{"100", "a", "b"})
	b.MustAppend(Tuple{"3", "a", "b"}) // collides with a's key 3
	rejected, err := a.AppendAll(b)
	if err != nil {
		t.Fatal(err)
	}
	if rejected != 1 {
		t.Fatalf("rejected %d, want 1", rejected)
	}
	if a.Len() != 6 {
		t.Fatalf("len %d, want 6", a.Len())
	}
}

func TestAppendAllSchemaMismatch(t *testing.T) {
	a := buildNumbered(t, 2)
	other := New(MustSchema([]Attribute{{Name: "x", Type: TypeInt}}, "x"))
	if _, err := a.AppendAll(other); err == nil {
		t.Fatal("schema mismatch accepted")
	}
}
