package relation

import (
	"bytes"
	"strings"
	"testing"
)

func TestJSONLRoundTrip(t *testing.T) {
	s := MustSchema([]Attribute{
		{Name: "k", Type: TypeInt},
		{Name: "city", Type: TypeString, Categorical: true},
	}, "k")
	r := New(s)
	r.MustAppend(Tuple{"1", "München"})
	r.MustAppend(Tuple{"2", `with "quotes" and, commas`})
	r.MustAppend(Tuple{"3", "newline\\nescape"})

	var buf bytes.Buffer
	if err := WriteJSONL(&buf, r); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSONL(&buf, s)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Equal(back) {
		t.Fatal("JSONL round trip changed the relation")
	}
}

func TestJSONLOneObjectPerLine(t *testing.T) {
	s := MustSchema([]Attribute{{Name: "k", Type: TypeInt}}, "k")
	r := New(s)
	r.MustAppend(Tuple{"1"})
	r.MustAppend(Tuple{"2"})
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, r); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("wrote %d lines, want 2", len(lines))
	}
}

func TestReadJSONLErrors(t *testing.T) {
	s := MustSchema([]Attribute{
		{Name: "k", Type: TypeInt},
		{Name: "v", Type: TypeString},
	}, "k")
	cases := map[string]string{
		"missing key":  `{"k":"1"}`,
		"extra key":    `{"k":"1","v":"a","z":"b"}`,
		"unknown key":  `{"k":"1","zzz":"a"}`,
		"duplicate pk": "{\"k\":\"1\",\"v\":\"a\"}\n{\"k\":\"1\",\"v\":\"b\"}",
		"corrupt json": `{"k":`,
		"non-string":   `{"k":1,"v":"a"}`,
	}
	for name, in := range cases {
		if _, err := ReadJSONL(strings.NewReader(in), s); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestReadJSONLEmpty(t *testing.T) {
	s := MustSchema([]Attribute{{Name: "k", Type: TypeInt}}, "k")
	r, err := ReadJSONL(strings.NewReader(""), s)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 0 {
		t.Fatalf("empty input produced %d rows", r.Len())
	}
}
