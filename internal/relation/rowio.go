package relation

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
)

// Streaming row I/O. The materializing codecs (ReadCSV/ReadJSONL) load a
// whole relation into memory; RowReader yields one tuple at a time so that
// internal/pipeline can watermark and detect over datasets that never fit
// in memory, chunk by chunk. RowWriter is the emitting half for streaming
// embed output. Both CSV and JSONL implement the pair, and the
// materializing codecs are thin loops over the readers so the formats
// cannot drift.

// RowReader yields a relation's tuples one at a time in stream order.
type RowReader interface {
	// Schema returns the schema the tuples conform to.
	Schema() *Schema
	// Read returns the next tuple, in schema attribute order. It returns
	// io.EOF after the last tuple. The returned tuple is owned by the
	// caller. Primary-key uniqueness is NOT enforced across a stream —
	// only a materialized Relation can afford the index; streaming callers
	// that need it must track keys themselves.
	Read() (Tuple, error)
}

// RowWriter consumes tuples one at a time.
type RowWriter interface {
	// Write appends one tuple, which must be in schema attribute order.
	Write(Tuple) error
	// Flush forces buffered rows out; call once after the last Write.
	Flush() error
}

// CSVRowReader streams tuples from CSV input. The header row is consumed
// by NewCSVRowReader; file column order may differ from schema order and
// is mapped by name, exactly as in ReadCSV.
type CSVRowReader struct {
	schema *Schema
	cr     *csv.Reader
	colFor []int // file column -> schema position
	row    int
}

// NewCSVRowReader reads and validates the CSV header, returning a reader
// positioned at the first data row.
func NewCSVRowReader(rd io.Reader, schema *Schema) (*CSVRowReader, error) {
	cr := csv.NewReader(rd)
	cr.FieldsPerRecord = schema.Arity()
	// Read copies the record into a caller-owned Tuple, so the csv.Reader
	// can safely recycle its field slice between rows.
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("relation: reading CSV header: %w", err)
	}
	colFor := make([]int, len(header))
	seen := make(map[string]bool, len(header))
	for fileCol, name := range header {
		pos, ok := schema.Index(name)
		if !ok {
			return nil, fmt.Errorf("relation: CSV column %q not in schema", name)
		}
		if seen[name] {
			return nil, fmt.Errorf("relation: duplicate CSV column %q", name)
		}
		seen[name] = true
		colFor[fileCol] = pos
	}
	if len(seen) != schema.Arity() {
		return nil, fmt.Errorf("relation: CSV header has %d of %d schema attributes",
			len(seen), schema.Arity())
	}
	return &CSVRowReader{schema: schema, cr: cr, colFor: colFor, row: 1}, nil
}

// Schema returns the reader's schema.
func (r *CSVRowReader) Schema() *Schema { return r.schema }

// Read returns the next tuple or io.EOF.
func (r *CSVRowReader) Read() (Tuple, error) {
	rec, err := r.cr.Read()
	if err == io.EOF {
		return nil, io.EOF
	}
	if err != nil {
		return nil, fmt.Errorf("relation: reading CSV row %d: %w", r.row, err)
	}
	t := make(Tuple, r.schema.Arity())
	for fileCol, v := range rec {
		t[r.colFor[fileCol]] = v
	}
	r.row++
	return t, nil
}

// CSVRowWriter streams tuples out as CSV, header first.
type CSVRowWriter struct {
	schema *Schema
	cw     *csv.Writer
}

// NewCSVRowWriter writes the header row and returns a writer for the data
// rows.
func NewCSVRowWriter(w io.Writer, schema *Schema) (*CSVRowWriter, error) {
	cw := csv.NewWriter(w)
	header := make([]string, schema.Arity())
	for i := range header {
		header[i] = schema.Attr(i).Name
	}
	if err := cw.Write(header); err != nil {
		return nil, fmt.Errorf("relation: writing CSV header: %w", err)
	}
	return &CSVRowWriter{schema: schema, cw: cw}, nil
}

// Write appends one tuple.
func (w *CSVRowWriter) Write(t Tuple) error {
	if len(t) != w.schema.Arity() {
		return fmt.Errorf("relation: tuple arity %d, schema arity %d", len(t), w.schema.Arity())
	}
	return w.cw.Write(t)
}

// Flush flushes buffered rows.
func (w *CSVRowWriter) Flush() error {
	w.cw.Flush()
	return w.cw.Error()
}

// JSONLRowReader streams tuples from JSON-lines input: one object per
// line keyed by attribute name, with exactly the schema's attributes.
type JSONLRowReader struct {
	schema *Schema
	dec    *json.Decoder
	obj    map[string]string // reused decode target; cleared before each row
	row    int
}

// NewJSONLRowReader returns a reader over JSONL input.
func NewJSONLRowReader(rd io.Reader, schema *Schema) *JSONLRowReader {
	return &JSONLRowReader{schema: schema, dec: json.NewDecoder(rd)}
}

// Schema returns the reader's schema.
func (r *JSONLRowReader) Schema() *Schema { return r.schema }

// Read returns the next tuple or io.EOF. Extra or missing keys are
// errors, as silent column loss would corrupt watermark detection.
func (r *JSONLRowReader) Read() (Tuple, error) {
	// Reuse one map across rows (a JSON null row nils it out — re-make).
	if r.obj == nil {
		r.obj = make(map[string]string, r.schema.Arity())
	} else {
		clear(r.obj)
	}
	if err := r.dec.Decode(&r.obj); err == io.EOF {
		return nil, io.EOF
	} else if err != nil {
		return nil, fmt.Errorf("relation: reading JSONL row %d: %w", r.row, err)
	}
	obj := r.obj
	if len(obj) != r.schema.Arity() {
		return nil, fmt.Errorf("relation: JSONL row %d has %d keys, schema has %d",
			r.row, len(obj), r.schema.Arity())
	}
	t := make(Tuple, r.schema.Arity())
	for name, v := range obj {
		pos, ok := r.schema.Index(name)
		if !ok {
			return nil, fmt.Errorf("relation: JSONL row %d key %q not in schema", r.row, name)
		}
		t[pos] = v
	}
	r.row++
	return t, nil
}

// JSONLRowWriter streams tuples out as JSON lines.
type JSONLRowWriter struct {
	schema *Schema
	bw     *bufio.Writer
	enc    *json.Encoder
	names  []string
}

// NewJSONLRowWriter returns a writer emitting one object per tuple.
func NewJSONLRowWriter(w io.Writer, schema *Schema) *JSONLRowWriter {
	bw := bufio.NewWriter(w)
	names := make([]string, schema.Arity())
	for i := range names {
		names[i] = schema.Attr(i).Name
	}
	return &JSONLRowWriter{schema: schema, bw: bw, enc: json.NewEncoder(bw), names: names}
}

// Write appends one tuple.
func (w *JSONLRowWriter) Write(t Tuple) error {
	if len(t) != w.schema.Arity() {
		return fmt.Errorf("relation: tuple arity %d, schema arity %d", len(t), w.schema.Arity())
	}
	obj := make(map[string]string, len(w.names))
	for i, name := range w.names {
		obj[name] = t[i]
	}
	return w.enc.Encode(obj)
}

// Flush flushes buffered rows.
func (w *JSONLRowWriter) Flush() error { return w.bw.Flush() }

// ReadAll drains a RowReader into a materialized Relation, enforcing
// primary-key uniqueness as it appends. Row numbers in errors are
// 1-based, matching the readers' own parse errors.
func ReadAll(rr RowReader) (*Relation, error) {
	out := New(rr.Schema())
	row := 1
	for {
		t, err := rr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		if err := out.Append(t); err != nil {
			return nil, fmt.Errorf("row %d: %w", row, err)
		}
		row++
	}
}

// Rows returns a RowReader over a materialized relation, for feeding
// in-memory data to streaming consumers.
func Rows(r *Relation) RowReader { return &memRowReader{r: r} }

type memRowReader struct {
	r *Relation
	i int
}

func (m *memRowReader) Schema() *Schema { return m.r.Schema() }

func (m *memRowReader) Read() (Tuple, error) {
	if m.i >= m.r.Len() {
		return nil, io.EOF
	}
	t := m.r.Tuple(m.i).Clone()
	m.i++
	return t, nil
}
