package relation

import (
	"errors"
	"strconv"
	"testing"
)

// itemScanSchema mirrors the paper's Wal-Mart test relation:
// Visit_Nbr INTEGER PRIMARY KEY, Item_Nbr INTEGER (categorical).
func itemScanSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema([]Attribute{
		{Name: "Visit_Nbr", Type: TypeInt},
		{Name: "Item_Nbr", Type: TypeInt, Categorical: true},
	}, "Visit_Nbr")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func threeAttrSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema([]Attribute{
		{Name: "ticket", Type: TypeInt},
		{Name: "city", Type: TypeString, Categorical: true},
		{Name: "airline", Type: TypeString, Categorical: true},
	}, "ticket")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSchemaValidation(t *testing.T) {
	cases := []struct {
		name  string
		attrs []Attribute
		key   string
	}{
		{"empty", nil, "k"},
		{"missing key", []Attribute{{Name: "a"}}, "b"},
		{"duplicate attr", []Attribute{{Name: "a"}, {Name: "a"}}, "a"},
		{"empty name", []Attribute{{Name: ""}}, ""},
	}
	for _, c := range cases {
		if _, err := NewSchema(c.attrs, c.key); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestSchemaAccessors(t *testing.T) {
	s := threeAttrSchema(t)
	if s.Arity() != 3 {
		t.Fatalf("arity %d", s.Arity())
	}
	if s.KeyName() != "ticket" || s.KeyIndex() != 0 {
		t.Fatalf("key %q at %d", s.KeyName(), s.KeyIndex())
	}
	i, ok := s.Index("airline")
	if !ok || i != 2 {
		t.Fatalf("Index(airline) = %d,%v", i, ok)
	}
	if _, ok := s.Index("nope"); ok {
		t.Fatal("unknown attribute found")
	}
	cats := s.CategoricalAttrs()
	if len(cats) != 2 || cats[0] != "city" || cats[1] != "airline" {
		t.Fatalf("categorical attrs %v", cats)
	}
}

func TestSchemaProjectKeepsKey(t *testing.T) {
	s := threeAttrSchema(t)
	p, err := s.Project("ticket", "city")
	if err != nil {
		t.Fatal(err)
	}
	if p.KeyName() != "ticket" {
		t.Fatalf("projected key %q, want ticket", p.KeyName())
	}
}

func TestSchemaProjectPromotesFirstAttr(t *testing.T) {
	s := threeAttrSchema(t)
	p, err := s.Project("city", "airline")
	if err != nil {
		t.Fatal(err)
	}
	if p.KeyName() != "city" {
		t.Fatalf("projected key %q, want city (first kept)", p.KeyName())
	}
}

func TestSchemaProjectErrors(t *testing.T) {
	s := threeAttrSchema(t)
	if _, err := s.Project(); err == nil {
		t.Error("empty projection should fail")
	}
	if _, err := s.Project("ghost"); err == nil {
		t.Error("unknown attribute should fail")
	}
}

func TestAppendAndLookup(t *testing.T) {
	r := New(itemScanSchema(t))
	for i := 0; i < 10; i++ {
		if err := r.Append(Tuple{strconv.Itoa(i), strconv.Itoa(100 + i%3)}); err != nil {
			t.Fatal(err)
		}
	}
	if r.Len() != 10 {
		t.Fatalf("len %d", r.Len())
	}
	idx, ok := r.Lookup("7")
	if !ok || r.Key(idx) != "7" {
		t.Fatalf("Lookup(7) = %d,%v", idx, ok)
	}
	v, err := r.Value(idx, "Item_Nbr")
	if err != nil || v != "101" {
		t.Fatalf("Value = %q, %v", v, err)
	}
}

func TestAppendArityMismatch(t *testing.T) {
	r := New(itemScanSchema(t))
	if err := r.Append(Tuple{"1"}); err == nil {
		t.Fatal("short tuple accepted")
	}
	if err := r.Append(Tuple{"1", "2", "3"}); err == nil {
		t.Fatal("long tuple accepted")
	}
}

func TestAppendDuplicateKey(t *testing.T) {
	r := New(itemScanSchema(t))
	if err := r.Append(Tuple{"1", "100"}); err != nil {
		t.Fatal(err)
	}
	err := r.Append(Tuple{"1", "200"})
	if !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("duplicate key error = %v", err)
	}
}

func TestSetValue(t *testing.T) {
	r := New(itemScanSchema(t))
	r.MustAppend(Tuple{"1", "100"})
	if err := r.SetValue(0, "Item_Nbr", "999"); err != nil {
		t.Fatal(err)
	}
	if v, _ := r.Value(0, "Item_Nbr"); v != "999" {
		t.Fatalf("value after set = %q", v)
	}
	if err := r.SetValue(0, "ghost", "x"); err == nil {
		t.Fatal("unknown attribute accepted")
	}
}

func TestSetValueKeyMaintainsIndex(t *testing.T) {
	r := New(itemScanSchema(t))
	r.MustAppend(Tuple{"1", "100"})
	r.MustAppend(Tuple{"2", "200"})
	if err := r.SetValue(0, "Visit_Nbr", "2"); err == nil {
		t.Fatal("key collision accepted")
	}
	if err := r.SetValue(0, "Visit_Nbr", "42"); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Lookup("1"); ok {
		t.Fatal("stale key still indexed")
	}
	idx, ok := r.Lookup("42")
	if !ok || idx != 0 {
		t.Fatalf("new key lookup = %d,%v", idx, ok)
	}
	// Setting a key to itself is a no-op, not a collision.
	if err := r.SetValue(1, "Visit_Nbr", "2"); err != nil {
		t.Fatalf("self-assignment rejected: %v", err)
	}
}

func TestCloneIndependence(t *testing.T) {
	r := New(itemScanSchema(t))
	r.MustAppend(Tuple{"1", "100"})
	c := r.Clone()
	if err := c.SetValue(0, "Item_Nbr", "777"); err != nil {
		t.Fatal(err)
	}
	c.MustAppend(Tuple{"2", "200"})
	if v, _ := r.Value(0, "Item_Nbr"); v != "100" {
		t.Fatal("clone mutation leaked into original")
	}
	if r.Len() != 1 || c.Len() != 2 {
		t.Fatal("clone append leaked")
	}
}

func TestEqualOrderSensitive(t *testing.T) {
	s := itemScanSchema(t)
	a, b := New(s), New(s)
	a.MustAppend(Tuple{"1", "x"})
	a.MustAppend(Tuple{"2", "y"})
	b.MustAppend(Tuple{"2", "y"})
	b.MustAppend(Tuple{"1", "x"})
	if a.Equal(b) {
		t.Fatal("Equal should be order-sensitive")
	}
	if !a.EqualUnordered(b) {
		t.Fatal("EqualUnordered should match reordered relations")
	}
}

func TestEqualUnorderedDetectsValueChange(t *testing.T) {
	s := itemScanSchema(t)
	a, b := New(s), New(s)
	a.MustAppend(Tuple{"1", "x"})
	b.MustAppend(Tuple{"1", "CHANGED"})
	if a.EqualUnordered(b) {
		t.Fatal("value change not detected")
	}
}

func TestEqualUnorderedDetectsMissingKey(t *testing.T) {
	s := itemScanSchema(t)
	a, b := New(s), New(s)
	a.MustAppend(Tuple{"1", "x"})
	b.MustAppend(Tuple{"2", "x"})
	if a.EqualUnordered(b) {
		t.Fatal("key mismatch not detected")
	}
}

func TestTypeParseRoundTrip(t *testing.T) {
	for _, typ := range []Type{TypeString, TypeInt} {
		got, err := ParseType(typ.String())
		if err != nil || got != typ {
			t.Errorf("round trip %v: got %v, %v", typ, got, err)
		}
	}
	if _, err := ParseType("float"); err == nil {
		t.Error("unknown type accepted")
	}
}
