package relation

import (
	"fmt"
	"io"
	"unicode"
	"unicode/utf16"
	"unicode/utf8"
)

// JSONLBlockReader is the zero-copy JSONL ingestion path: a windowed
// scanner over the input stream that decodes one flat JSON object per
// record straight into a Block's column arenas. Decoding semantics are
// bit-identical to the legacy JSONLRowReader's json.Decoder into
// map[string]string — the fuzz tests drive both over the same inputs
// and demand identical row streams: whitespace (including newlines)
// between records and tokens, duplicate keys resolved last-wins with
// the field count taken over distinct keys, null accepted as the empty
// string, every escape form (\uXXXX incl. surrogate pairs, with
// unpaired surrogates and invalid UTF-8 replaced by U+FFFD without
// error), and control characters inside strings rejected.
//
// JSONLBlockReader implements BlockReader, RawShardSource, and a
// RowReader compatibility view; do not interleave Read and ReadBlock
// calls on one reader.
type JSONLBlockReader struct {
	schema *Schema
	rd     io.Reader
	// buf is the sliding input window [r:w); bytes from recStart on are
	// preserved across refills so a record's raw span stays addressable.
	buf      []byte
	r, w     int
	eof      bool
	recStart int
	// rowBuf holds the decoded field bytes of the record being parsed;
	// spanLo/spanHi index into it per schema position, seen tracks the
	// distinct-key count (duplicate keys overwrite their span: last
	// write wins, exactly like a map decode).
	rowBuf []byte
	keyBuf []byte
	spanLo []int32
	spanHi []int32
	seen   []bool

	recordRaw bool
	row       int   // next data row, 1-based (error reporting)
	err       error // sticky terminal parse/read error

	// rowBlk/rowIdx back the RowReader compatibility view.
	rowBlk *Block
	rowIdx int
}

// NewJSONLBlockReader returns a reader decoding one JSON object per
// record from rd.
func NewJSONLBlockReader(rd io.Reader, schema *Schema) *JSONLBlockReader {
	arity := schema.Arity()
	return &JSONLBlockReader{
		schema: schema,
		rd:     rd,
		spanLo: make([]int32, arity),
		spanHi: make([]int32, arity),
		seen:   make([]bool, arity),
		row:    1,
	}
}

// Schema returns the reader's schema.
func (r *JSONLBlockReader) Schema() *Schema { return r.schema }

// SetRecordRaw toggles raw record-span recording into filled blocks.
func (r *JSONLBlockReader) SetRecordRaw(on bool) { r.recordRaw = on }

// RawHeader returns nil: JSONL streams have no preamble.
func (r *JSONLBlockReader) RawHeader() []byte { return nil }

// FormatName returns "jsonl".
func (r *JSONLBlockReader) FormatName() string { return "jsonl" }

// ReadBlock resets b and fills it with up to maxRows rows (<= 0 means a
// default batch). See BlockReader for the contract.
func (r *JSONLBlockReader) ReadBlock(b *Block, maxRows int) (int, error) {
	b.Reset(r.schema)
	if r.err != nil {
		return 0, r.err
	}
	if maxRows <= 0 {
		maxRows = compatBlockRows
	}
	var rawDst *[]byte
	if r.recordRaw {
		rawDst = &b.raw
	}
	n := 0
	for n < maxRows {
		err := r.parseRecord(b, rawDst)
		if err == io.EOF {
			if n == 0 {
				return 0, io.EOF
			}
			return n, nil
		}
		if err != nil {
			r.err = err
			return n, err
		}
		b.rows++
		n++
		r.row++
	}
	return n, nil
}

// Read returns the next tuple or io.EOF — the RowReader compatibility
// view. Rows parsed before a mid-block error are yielded first.
func (r *JSONLBlockReader) Read() (Tuple, error) {
	if r.rowBlk == nil {
		r.rowBlk = NewBlock(r.schema)
	}
	if r.rowIdx >= r.rowBlk.Rows() {
		n, err := r.ReadBlock(r.rowBlk, compatBlockRows)
		if n == 0 && err != nil {
			return nil, err
		}
		r.rowIdx = 0
	}
	t := r.rowBlk.Tuple(r.rowIdx)
	r.rowIdx++
	return t, nil
}

// rowErrf positions a terminal parse error at the current data row.
func (r *JSONLBlockReader) rowErrf(format string, args ...any) error {
	return fmt.Errorf("relation: reading JSONL row %d: %s", r.row, fmt.Sprintf(format, args...))
}

// unexpEOF converts a boundary io.EOF into a mid-record error.
func (r *JSONLBlockReader) unexpEOF(err error) error {
	if err == io.EOF {
		return r.rowErrf("unexpected end of JSON input")
	}
	return err
}

// fill reads more input into the window, sliding out everything before
// recStart (the live record) and growing the buffer when a record
// outsizes it. Returns io.EOF only when no byte was added at EOF.
func (r *JSONLBlockReader) fill() error {
	if r.eof {
		return io.EOF
	}
	if r.recStart > 0 {
		n := copy(r.buf, r.buf[r.recStart:r.w])
		r.r -= r.recStart
		r.w = n
		r.recStart = 0
	}
	if r.w == len(r.buf) {
		if len(r.buf) == 0 {
			r.buf = make([]byte, 64*1024)
		} else {
			nb := make([]byte, 2*len(r.buf))
			copy(nb, r.buf[:r.w])
			r.buf = nb
		}
	}
	for {
		n, err := r.rd.Read(r.buf[r.w:])
		r.w += n
		if err == io.EOF {
			r.eof = true
			if n == 0 {
				return io.EOF
			}
			return nil
		}
		if err != nil {
			return err
		}
		if n > 0 {
			return nil
		}
	}
}

// ensure refills until the window holds at least n unread bytes or the
// input ends (best effort — callers re-check the window size).
func (r *JSONLBlockReader) ensure(n int) error {
	for r.w-r.r < n {
		if err := r.fill(); err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
	}
	return nil
}

// peekByte returns the next byte without consuming it; io.EOF when the
// input is exhausted.
func (r *JSONLBlockReader) peekByte() (byte, error) {
	for r.r == r.w {
		if err := r.fill(); err != nil {
			return 0, err
		}
	}
	return r.buf[r.r], nil
}

// nextByte consumes and returns the next byte.
func (r *JSONLBlockReader) nextByte() (byte, error) {
	c, err := r.peekByte()
	if err == nil {
		r.r++
	}
	return c, err
}

// skipSpace consumes JSON whitespace; io.EOF when the input ends.
func (r *JSONLBlockReader) skipSpace() error {
	for {
		c, err := r.peekByte()
		if err != nil {
			return err
		}
		if c != ' ' && c != '\t' && c != '\r' && c != '\n' {
			return nil
		}
		r.r++
	}
}

// parseRecord decodes the next object into b's columns; raw span (the
// object's exact bytes plus a normalizing newline) appends to *rawDst
// when non-nil. Returns io.EOF when the input ends at a record
// boundary.
func (r *JSONLBlockReader) parseRecord(b *Block, rawDst *[]byte) error {
	r.recStart = r.r
	if err := r.skipSpace(); err != nil {
		return err // io.EOF: clean end of input
	}
	r.recStart = r.r
	c, _ := r.nextByte()
	if c != '{' {
		return r.rowErrf("invalid character %q looking for beginning of object", c)
	}
	r.rowBuf = r.rowBuf[:0]
	for i := range r.seen {
		r.seen[i] = false
	}
	distinct := 0
	if err := r.skipSpace(); err != nil {
		return r.unexpEOF(err)
	}
	if c, _ = r.peekByte(); c == '}' {
		r.r++
	} else {
		for {
			if err := r.skipSpace(); err != nil {
				return r.unexpEOF(err)
			}
			c, err := r.nextByte()
			if err != nil {
				return r.unexpEOF(err)
			}
			if c != '"' {
				return r.rowErrf("invalid character %q looking for object key", c)
			}
			r.keyBuf, err = r.appendUnquoted(r.keyBuf[:0])
			if err != nil {
				return err
			}
			// Direct map index so the string(...) conversion stays on
			// the stack — the method-call form would allocate per key.
			pos, ok := r.schema.byName[string(r.keyBuf)]
			if !ok {
				return r.rowErrf("unknown column %q", r.keyBuf)
			}
			if err := r.skipSpace(); err != nil {
				return r.unexpEOF(err)
			}
			if c, err = r.nextByte(); err != nil {
				return r.unexpEOF(err)
			} else if c != ':' {
				return r.rowErrf("invalid character %q after object key", c)
			}
			if err := r.skipSpace(); err != nil {
				return r.unexpEOF(err)
			}
			lo := int32(len(r.rowBuf))
			c, err = r.nextByte()
			if err != nil {
				return r.unexpEOF(err)
			}
			switch c {
			case '"':
				r.rowBuf, err = r.appendUnquoted(r.rowBuf)
				if err != nil {
					return err
				}
			case 'n':
				// null decodes into map[string]string as the empty
				// string without error; values must match that.
				for _, want := range [3]byte{'u', 'l', 'l'} {
					if c, err = r.nextByte(); err != nil {
						return r.unexpEOF(err)
					} else if c != want {
						return r.rowErrf("invalid literal")
					}
				}
			default:
				return r.rowErrf("invalid character %q looking for string value", c)
			}
			hi := int32(len(r.rowBuf))
			if !r.seen[pos] {
				r.seen[pos] = true
				distinct++
			}
			r.spanLo[pos], r.spanHi[pos] = lo, hi
			if err := r.skipSpace(); err != nil {
				return r.unexpEOF(err)
			}
			c, err = r.nextByte()
			if err != nil {
				return r.unexpEOF(err)
			}
			if c == '}' {
				break
			}
			if c != ',' {
				return r.rowErrf("invalid character %q after object value", c)
			}
		}
	}
	if distinct != r.schema.Arity() {
		return r.rowErrf("object has %d fields, schema has %d", distinct, r.schema.Arity())
	}
	if b != nil {
		for pos := range b.cols {
			col := &b.cols[pos]
			col.appendBytes(r.rowBuf[r.spanLo[pos]:r.spanHi[pos]])
			col.closeRow()
		}
	}
	if rawDst != nil {
		*rawDst = append(*rawDst, r.buf[r.recStart:r.r]...)
		*rawDst = append(*rawDst, '\n')
	}
	r.recStart = r.r
	return nil
}

// appendUnquoted decodes a JSON string body (opening quote already
// consumed) into dst, consuming through the closing quote. Semantics
// match encoding/json's unquote: \uXXXX escapes with surrogate
// pairing, unpaired surrogates and invalid UTF-8 become U+FFFD without
// error, control characters are rejected.
func (r *JSONLBlockReader) appendUnquoted(dst []byte) ([]byte, error) {
	for {
		c, err := r.peekByte()
		if err != nil {
			return dst, r.unexpEOF(err)
		}
		switch {
		case c == '"':
			r.r++
			return dst, nil
		case c == '\\':
			r.r++
			e, err := r.nextByte()
			if err != nil {
				return dst, r.unexpEOF(err)
			}
			switch e {
			case '"':
				dst = append(dst, '"')
			case '\\':
				dst = append(dst, '\\')
			case '/':
				dst = append(dst, '/')
			case 'b':
				dst = append(dst, '\b')
			case 'f':
				dst = append(dst, '\f')
			case 'n':
				dst = append(dst, '\n')
			case 'r':
				dst = append(dst, '\r')
			case 't':
				dst = append(dst, '\t')
			case 'u':
				rr, err := r.readU4()
				if err != nil {
					return dst, err
				}
				if utf16.IsSurrogate(rr) {
					if rr2 := r.peekU4Escape(); rr2 >= 0 {
						if dec := utf16.DecodeRune(rr, rr2); dec != unicode.ReplacementChar {
							r.r += 6
							dst = utf8.AppendRune(dst, dec)
							continue
						}
					}
					// Unpaired surrogate: U+FFFD, no error, and the
					// following bytes are re-processed as-is.
					rr = unicode.ReplacementChar
				}
				dst = utf8.AppendRune(dst, rr)
			default:
				return dst, r.rowErrf("invalid character %q in string escape code", e)
			}
		case c < 0x20:
			return dst, r.rowErrf("invalid character %#U in string literal", rune(c))
		case c < utf8.RuneSelf:
			dst = append(dst, c)
			r.r++
		default:
			// Multi-byte rune: invalid UTF-8 becomes U+FFFD (size 1),
			// exactly like encoding/json.
			if err := r.ensure(utf8.UTFMax); err != nil {
				return dst, err
			}
			ch, size := utf8.DecodeRune(r.buf[r.r:r.w])
			r.r += size
			dst = utf8.AppendRune(dst, ch)
		}
	}
}

// readU4 consumes four hex digits of a \u escape.
func (r *JSONLBlockReader) readU4() (rune, error) {
	var v rune
	for i := 0; i < 4; i++ {
		c, err := r.nextByte()
		if err != nil {
			return 0, r.unexpEOF(err)
		}
		switch {
		case c >= '0' && c <= '9':
			v = v<<4 + rune(c-'0')
		case c >= 'a' && c <= 'f':
			v = v<<4 + rune(c-'a'+10)
		case c >= 'A' && c <= 'F':
			v = v<<4 + rune(c-'A'+10)
		default:
			return 0, r.rowErrf("invalid character %q in \\u hexadecimal escape", c)
		}
	}
	return v, nil
}

// peekU4Escape decodes a \uXXXX escape at the cursor without consuming
// it, or -1 if the next six bytes are not one.
func (r *JSONLBlockReader) peekU4Escape() rune {
	if err := r.ensure(6); err != nil || r.w-r.r < 6 {
		return -1
	}
	if r.buf[r.r] != '\\' || r.buf[r.r+1] != 'u' {
		return -1
	}
	var v rune
	for _, c := range r.buf[r.r+2 : r.r+6] {
		switch {
		case c >= '0' && c <= '9':
			v = v<<4 + rune(c-'0')
		case c >= 'a' && c <= 'f':
			v = v<<4 + rune(c-'a'+10)
		case c >= 'A' && c <= 'F':
			v = v<<4 + rune(c-'A'+10)
		default:
			return -1
		}
	}
	return v
}
