package relation

import (
	"fmt"
	"sort"
	"strconv"

	"repro/internal/stats"
)

// This file implements the data transformations that both legitimate users
// and the Section 2.3 adversary apply: sorting/shuffling (A4), horizontal
// subsetting (A1), vertical partitioning (A5). The attack package composes
// these; they live here because they are ordinary relational operations.

// SortBy reorders tuples by the named attribute ascending (numeric order
// for TypeInt attributes, lexicographic otherwise), rebuilding the key
// index. Ties keep their relative order.
func (r *Relation) SortBy(attr string) error {
	j, ok := r.schema.Index(attr)
	if !ok {
		return fmt.Errorf("relation: unknown attribute %q", attr)
	}
	typ := r.schema.Attr(j).Type
	sort.SliceStable(r.tuples, func(a, b int) bool {
		va, vb := r.tuples[a][j], r.tuples[b][j]
		if typ == TypeInt {
			ia, errA := strconv.ParseInt(va, 10, 64)
			ib, errB := strconv.ParseInt(vb, 10, 64)
			if errA == nil && errB == nil {
				return ia < ib
			}
		}
		return va < vb
	})
	r.reindex()
	return nil
}

// Shuffle randomly permutes tuple order (attack A4: subset re-sorting —
// detection must not depend on any predefined ordering).
func (r *Relation) Shuffle(src *stats.Source) {
	src.Shuffle(len(r.tuples), func(i, j int) {
		r.tuples[i], r.tuples[j] = r.tuples[j], r.tuples[i]
	})
	r.reindex()
}

// SelectRows returns a new relation containing clones of the rows at the
// given indices, in the given order.
func (r *Relation) SelectRows(rows []int) (*Relation, error) {
	out := New(r.schema)
	for _, i := range rows {
		if i < 0 || i >= len(r.tuples) {
			return nil, fmt.Errorf("relation: row %d out of range [0,%d)", i, len(r.tuples))
		}
		if err := out.Append(r.tuples[i].Clone()); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Filter returns a new relation with clones of the rows for which keep
// returns true.
func (r *Relation) Filter(keep func(i int, t Tuple) bool) *Relation {
	out := New(r.schema)
	for i, t := range r.tuples {
		if keep(i, t) {
			out.MustAppend(t.Clone())
		}
	}
	return out
}

// Project returns a new relation keeping only the named attributes — the
// A5 vertical partition. The primary key follows Schema.Project semantics.
// Rows whose projected key collides are dropped (first occurrence wins),
// mirroring the duplicate elimination a real projection would perform; the
// second return value counts dropped rows.
func (r *Relation) Project(keep ...string) (*Relation, int, error) {
	ps, err := r.schema.Project(keep...)
	if err != nil {
		return nil, 0, err
	}
	cols := make([]int, len(keep))
	for i, name := range keep {
		j, _ := r.schema.Index(name)
		cols[i] = j
	}
	out := New(ps)
	dropped := 0
	for _, t := range r.tuples {
		nt := make(Tuple, len(cols))
		for i, c := range cols {
			nt[i] = t[c]
		}
		if err := out.Append(nt); err != nil {
			dropped++ // duplicate projected key
		}
	}
	return out, dropped, nil
}

// AppendAll appends clones of every tuple in o, returning the number of
// tuples rejected for duplicate keys.
func (r *Relation) AppendAll(o *Relation) (rejected int, err error) {
	if !r.schema.Equal(o.schema) {
		return 0, fmt.Errorf("relation: schema mismatch in AppendAll")
	}
	for _, t := range o.tuples {
		if appendErr := r.Append(t.Clone()); appendErr != nil {
			rejected++
		}
	}
	return rejected, nil
}

func (r *Relation) reindex() {
	for k := range r.keys {
		delete(r.keys, k)
	}
	for i, t := range r.tuples {
		r.keys[t[r.schema.keyIndex]] = i
	}
}
