package relation

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// CSV codec. The header row carries attribute names; logical types and the
// categorical flag travel in a schema spec string so that round-trips are
// lossless. Spec grammar, one clause per attribute, comma-separated:
//
//	name:type[:categorical]    e.g.  "Visit_Nbr:int, Item_Nbr:int:categorical"
//
// The first attribute marked with a trailing "!key", or else the first
// attribute, is the primary key:
//
//	"Visit_Nbr:int!key, Item_Nbr:int:categorical"

// ParseSchemaSpec parses the spec grammar above into a Schema.
func ParseSchemaSpec(spec string) (*Schema, error) {
	clauses := strings.Split(spec, ",")
	attrs := make([]Attribute, 0, len(clauses))
	keyName := ""
	for _, clause := range clauses {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		isKey := false
		if strings.HasSuffix(clause, "!key") {
			isKey = true
			clause = strings.TrimSuffix(clause, "!key")
		}
		parts := strings.Split(clause, ":")
		if len(parts) < 2 || len(parts) > 3 {
			return nil, fmt.Errorf("relation: bad schema clause %q", clause)
		}
		typ, err := ParseType(parts[1])
		if err != nil {
			return nil, err
		}
		attr := Attribute{Name: strings.TrimSpace(parts[0]), Type: typ}
		if len(parts) == 3 {
			flag := strings.ToLower(strings.TrimSpace(parts[2]))
			if flag != "categorical" && flag != "cat" {
				return nil, fmt.Errorf("relation: bad attribute flag %q", parts[2])
			}
			attr.Categorical = true
		}
		attrs = append(attrs, attr)
		if isKey {
			if keyName != "" {
				return nil, fmt.Errorf("relation: multiple !key attributes")
			}
			keyName = attr.Name
		}
	}
	if len(attrs) == 0 {
		return nil, fmt.Errorf("relation: empty schema spec")
	}
	if keyName == "" {
		keyName = attrs[0].Name
	}
	return NewSchema(attrs, keyName)
}

// SchemaSpec renders s back into the spec grammar (inverse of
// ParseSchemaSpec).
func SchemaSpec(s *Schema) string {
	var b strings.Builder
	for i, a := range s.Attrs() {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.Name)
		b.WriteByte(':')
		b.WriteString(a.Type.String())
		if a.Categorical {
			b.WriteString(":categorical")
		}
		if i == s.KeyIndex() {
			b.WriteString("!key")
		}
	}
	return b.String()
}

// WriteCSV writes the relation with a header row of attribute names.
func WriteCSV(w io.Writer, r *Relation) error {
	cw := csv.NewWriter(w)
	header := make([]string, r.Schema().Arity())
	for i := range header {
		header[i] = r.Schema().Attr(i).Name
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("relation: writing CSV header: %w", err)
	}
	for i := 0; i < r.Len(); i++ {
		if err := cw.Write(r.Tuple(i)); err != nil {
			return fmt.Errorf("relation: writing CSV row %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads a relation under the given schema. The CSV header must
// name exactly the schema's attributes; column order in the file may
// differ from schema order and is mapped by name. It is the materializing
// loop over CSVRowReader (rowio.go); use the row reader directly to
// stream without holding the whole relation.
func ReadCSV(rd io.Reader, schema *Schema) (*Relation, error) {
	rr, err := NewCSVRowReader(rd, schema)
	if err != nil {
		return nil, err
	}
	return ReadAll(rr)
}
