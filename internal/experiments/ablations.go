package experiments

import (
	"fmt"

	"repro/internal/attacks"
	"repro/internal/ecc"
	"repro/internal/mark"
	"repro/internal/relation"
	"repro/internal/stats"
)

// Ablation benchmarks for the design choices documented in DESIGN.md.
// Each returns a Table comparing variants along the attack-size axis.

// markAlterationVariant is markAlteration with an options mutator, letting
// ablations swap aggregation policies, codes, or the whole codec.
func (c Config) markAlterationVariant(base *relation.Relation, dom *relation.Domain,
	e uint64, attack attackFunc, mutate func(*mark.Options)) (float64, error) {
	total := 0.0
	for pass := 0; pass < c.Passes; pass++ {
		wm := c.passWM(pass)
		opts := c.passOptions(pass, e, dom)
		if mutate != nil {
			mutate(&opts)
		}
		r := base.Clone()
		if _, err := mark.Embed(r, wm, opts); err != nil {
			return 0, err
		}
		bw := mark.Bandwidth(r.Len(), e)
		attackSrc := stats.NewSource(fmt.Sprintf("%s/attack/%d", c.Seed, pass))
		attacked, err := attack(r, dom, attackSrc)
		if err != nil {
			return 0, err
		}
		detOpts := opts
		detOpts.BandwidthOverride = bw
		rep, err := mark.Detect(attacked, c.WMBits, detOpts)
		if err != nil {
			return 0, err
		}
		total += ecc.AlterationRate(wm, rep.WM) * 100
	}
	return total / float64(c.Passes), nil
}

// AblationVoteAggregation contrasts majority voting against the paper's
// literal last-write-wins position aggregation (DESIGN.md clarification 3)
// under A3 alteration attacks.
func AblationVoteAggregation(cfg Config) (*Table, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	base, dom, err := cfg.dataset()
	if err != nil {
		return nil, err
	}
	e := cfg.EPair[0]
	t := NewTable(
		"Ablation — detection vote aggregation (majority vs last-write-wins)",
		"attack_size_pct", "majority_alteration_pct", "lastwrite_alteration_pct",
	)
	for _, size := range cfg.AttackSizes {
		maj, err := cfg.markAlterationVariant(base, dom, e, alterationAttack(size), nil)
		if err != nil {
			return nil, err
		}
		lww, err := cfg.markAlterationVariant(base, dom, e, alterationAttack(size),
			func(o *mark.Options) { o.Aggregation = mark.LastWriteWins })
		if err != nil {
			return nil, err
		}
		t.AddRow(size*100, maj, lww)
	}
	return t, nil
}

// AblationECC contrasts the three registered codes under A3 alteration
// attacks, quantifying what majority voting buys over no redundancy and
// what interleaving buys over blocking.
func AblationECC(cfg Config) (*Table, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	base, dom, err := cfg.dataset()
	if err != nil {
		return nil, err
	}
	e := cfg.EPair[0]
	codes := []ecc.Code{ecc.MajorityCode{}, ecc.BlockMajorityCode{}, ecc.IdentityCode{}}
	t := NewTable(
		"Ablation — error correcting code under A3 attacks",
		"attack_size_pct", "majority_interleaved_pct", "majority_blocked_pct", "identity_pct",
	)
	for _, size := range cfg.AttackSizes {
		row := []float64{size * 100}
		for _, code := range codes {
			code := code
			v, err := cfg.markAlterationVariant(base, dom, e, alterationAttack(size),
				func(o *mark.Options) { o.Code = code })
			if err != nil {
				return nil, err
			}
			row = append(row, v)
		}
		t.AddRow(row...)
	}
	return t, nil
}

// AblationEmbeddingMap contrasts the blind k2-hash position selection
// (Figure 1(a)) against the stored embedding map (Figure 1(b)) under A1
// data-loss attacks.
func AblationEmbeddingMap(cfg Config) (*Table, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	base, dom, err := cfg.dataset()
	if err != nil {
		return nil, err
	}
	e := cfg.E7
	t := NewTable(
		"Ablation — blind (k2 hash) vs embedding-map position bookkeeping under A1 data loss",
		"data_loss_pct", "blind_alteration_pct", "map_alteration_pct",
	)
	for _, loss := range cfg.LossSizes {
		blind, err := cfg.markAlterationVariant(base, dom, e, lossAttack(loss), nil)
		if err != nil {
			return nil, err
		}

		mapTotal := 0.0
		for pass := 0; pass < cfg.Passes; pass++ {
			wm := cfg.passWM(pass)
			opts := cfg.passOptions(pass, e, dom)
			r := base.Clone()
			em, _, err := mark.EmbedWithMap(r, wm, opts)
			if err != nil {
				return nil, err
			}
			attackSrc := stats.NewSource(fmt.Sprintf("%s/attack/%d", cfg.Seed, pass))
			attacked, err := attacks.HorizontalSubset(r, 1-loss, attackSrc)
			if err != nil {
				return nil, err
			}
			rep, err := mark.DetectWithMap(attacked, cfg.WMBits, em, opts)
			if err != nil {
				return nil, err
			}
			mapTotal += ecc.AlterationRate(wm, rep.WM) * 100
		}
		t.AddRow(loss*100, blind, mapTotal/float64(cfg.Passes))
	}
	return t, nil
}
