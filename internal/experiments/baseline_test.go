package experiments

import "testing"

func TestBaselineComparison(t *testing.T) {
	cfg := tinyConfig()
	cfg.Passes = 2
	tab, err := BaselineComparison(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 2 schemes × 2 catalogs.
	if len(tab.Rows) != 4 {
		t.Fatalf("rows %d, want 4", len(tab.Rows))
	}
	byKey := map[[2]int][]float64{}
	for _, row := range tab.Rows {
		byKey[[2]int{int(row[0]), int(row[1])}] = row
	}
	const (
		colDistortion = 2
		colViolation  = 3
		colClean      = 4
		colAUCLoss    = 5
	)
	// The categorical scheme (scheme 0) never violates the domain.
	for catalog := 0; catalog <= 1; catalog++ {
		row := byKey[[2]int{0, catalog}]
		if row[colViolation] != 0 {
			t.Errorf("categorical scheme violated domain on catalog %d: %v%%",
				catalog, row[colViolation])
		}
		if row[colClean] < 1 {
			t.Errorf("categorical clean score %v", row[colClean])
		}
		// The tiny config has ~9 replicas per bit, so the 80% loss level
		// can starve bits; 3 of 4 levels surviving is the expected floor.
		if row[colAUCLoss] < 0.7 {
			t.Errorf("categorical AUC under loss %v", row[colAUCLoss])
		}
	}
	// The KA baseline on the sparse catalog leaves the domain at a rate
	// comparable to its marking rate (~1/e of tuples, half of which flip
	// to an odd, invalid code).
	kaSparse := byKey[[2]int{1, 1}]
	if kaSparse[colViolation] <= 0 {
		t.Error("KA baseline produced no violations on the sparse catalog")
	}
	if kaSparse[colViolation] < kaSparse[colDistortion]*0.2 {
		t.Errorf("KA sparse violations %v%% implausibly low vs distortion %v%%",
			kaSparse[colViolation], kaSparse[colDistortion])
	}
	// Both schemes carry a detectable mark cleanly.
	if byKey[[2]int{1, 0}][colClean] < 0.99 {
		t.Errorf("KA clean score %v", byKey[[2]int{1, 0}][colClean])
	}
}
