// Package experiments regenerates every figure and analytical table of the
// paper's evaluation (Section 5 and Section 4.4). Each runner reproduces
// one artifact:
//
//	Figure4 — watermark alteration vs. attack size, e ∈ {65, 35}
//	Figure5 — watermark alteration vs. e, attack ∈ {55%, 20%}
//	Figure6 — the (attack size × e) alteration surface
//	Figure7 — watermark alteration vs. data loss
//	TableA  — the three worked vulnerability examples of Section 4.4
//
// The experimental protocol follows Section 5: a 10-bit watermark, results
// averaged over multiple passes each seeded with a different key, on an
// ItemScan-shaped dataset (the synthetic Wal-Mart stand-in; see DESIGN.md).
package experiments

import (
	"fmt"

	"repro/internal/attacks"
	"repro/internal/datagen"
	"repro/internal/ecc"
	"repro/internal/keyhash"
	"repro/internal/mark"
	"repro/internal/relation"
	"repro/internal/stats"
)

// Config parameterises the experiment suite.
type Config struct {
	// N is the dataset size. The paper samples 141000 tuples; the default
	// scales down for interactive runs.
	N int
	// CatalogSize is the Item_Nbr catalog size (n_A).
	CatalogSize int
	// ZipfS is the item-popularity skew.
	ZipfS float64
	// WMBits is the watermark length; 10 in the paper.
	WMBits int
	// Passes is the number of key-averaged passes; 15 in the paper.
	Passes int
	// Seed drives data generation, per-pass keys and attack randomness.
	Seed string

	// EPair is the two e values contrasted in Figure 4 (65 and 35).
	EPair [2]uint64
	// AttackSizes is the Figure 4/6 x-axis (fractions of tuples altered).
	AttackSizes []float64
	// ESweep is the Figure 5/6 e-axis.
	ESweep []uint64
	// AttackPair is the two attack sizes contrasted in Figure 5 (55%, 20%).
	AttackPair [2]float64
	// LossSizes is the Figure 7 x-axis (fractions of tuples lost).
	LossSizes []float64
	// E7 is the Figure 7 fitness parameter (65).
	E7 uint64
}

// DefaultConfig returns a configuration that reproduces every figure's
// shape in seconds on a laptop. Use PaperConfig for the full-scale run.
func DefaultConfig() Config {
	return Config{
		N:           20000,
		CatalogSize: 1000,
		ZipfS:       1.0,
		WMBits:      10,
		Passes:      5,
		Seed:        "catwm-experiments",
		EPair:       [2]uint64{65, 35},
		AttackSizes: []float64{0.20, 0.30, 0.40, 0.50, 0.60, 0.70, 0.80},
		ESweep:      []uint64{10, 25, 50, 75, 100, 125, 150, 175, 200},
		AttackPair:  [2]float64{0.55, 0.20},
		LossSizes:   []float64{0.10, 0.20, 0.30, 0.40, 0.50, 0.60, 0.70, 0.80},
		E7:          65,
	}
}

// PaperConfig returns the full Section 5 configuration: 141000 tuples and
// 15 key-averaged passes.
func PaperConfig() Config {
	cfg := DefaultConfig()
	cfg.N = 141000
	cfg.Passes = 15
	return cfg
}

func (c Config) validate() error {
	if c.N <= 0 || c.CatalogSize < 2 || c.WMBits <= 0 || c.Passes <= 0 {
		return fmt.Errorf("experiments: invalid config %+v", c)
	}
	return nil
}

// dataset builds the experiment relation once; passes clone it.
func (c Config) dataset() (*relation.Relation, *relation.Domain, error) {
	return datagen.ItemScan(datagen.ItemScanConfig{
		N:           c.N,
		CatalogSize: c.CatalogSize,
		ZipfS:       c.ZipfS,
		Seed:        c.Seed,
	})
}

// passWM derives the watermark bits for one pass.
func (c Config) passWM(pass int) ecc.Bits {
	src := stats.NewSource(fmt.Sprintf("%s/wm/%d", c.Seed, pass))
	wm := make(ecc.Bits, c.WMBits)
	for i := range wm {
		wm[i] = src.Bit()
	}
	return wm
}

// passOptions derives the per-pass watermarking options — "each seeded
// with a different key" (Section 5).
func (c Config) passOptions(pass int, e uint64, dom *relation.Domain) mark.Options {
	return mark.Options{
		Attr:   "Item_Nbr",
		K1:     keyhash.NewKey(fmt.Sprintf("%s/k1/%d", c.Seed, pass)),
		K2:     keyhash.NewKey(fmt.Sprintf("%s/k2/%d", c.Seed, pass)),
		E:      e,
		Domain: dom,
	}
}

// attackFunc transforms a watermarked relation into an attacked one.
type attackFunc func(r *relation.Relation, dom *relation.Domain, src *stats.Source) (*relation.Relation, error)

// alterationAttack returns an A3 attack of the given size.
func alterationAttack(size float64) attackFunc {
	return func(r *relation.Relation, dom *relation.Domain, src *stats.Source) (*relation.Relation, error) {
		return attacks.SubsetAlteration(r, "Item_Nbr", size, dom, src)
	}
}

// lossAttack returns an A1 attack losing the given fraction.
func lossAttack(loss float64) attackFunc {
	return func(r *relation.Relation, dom *relation.Domain, src *stats.Source) (*relation.Relation, error) {
		return attacks.HorizontalSubset(r, 1-loss, src)
	}
}

// markAlteration runs the full embed → attack → detect pipeline for every
// pass and returns the mean watermark alteration percentage — the Y axis
// of Figures 4–7.
func (c Config) markAlteration(base *relation.Relation, dom *relation.Domain, e uint64, attack attackFunc) (float64, error) {
	total := 0.0
	for pass := 0; pass < c.Passes; pass++ {
		wm := c.passWM(pass)
		opts := c.passOptions(pass, e, dom)
		r := base.Clone()
		if _, err := mark.Embed(r, wm, opts); err != nil {
			return 0, err
		}
		bw := mark.Bandwidth(r.Len(), e)
		attackSrc := stats.NewSource(fmt.Sprintf("%s/attack/%d", c.Seed, pass))
		attacked, err := attack(r, dom, attackSrc)
		if err != nil {
			return 0, err
		}
		detOpts := opts
		detOpts.BandwidthOverride = bw
		rep, err := mark.Detect(attacked, c.WMBits, detOpts)
		if err != nil {
			return 0, err
		}
		total += ecc.AlterationRate(wm, rep.WM) * 100
	}
	return total / float64(c.Passes), nil
}

// Figure4 regenerates "mark alteration (%) vs attack size (%)" for the two
// e values. Paper shape: graceful degradation, roughly 0→25-40% alteration
// as the attack grows from 20% to 80%, with the smaller e (more embedding
// bandwidth) strictly more resilient.
func Figure4(cfg Config) (*Table, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	base, dom, err := cfg.dataset()
	if err != nil {
		return nil, err
	}
	t := NewTable(
		"Figure 4 — watermark degradation vs. attack size (A3 random alterations)",
		"attack_size_pct",
		fmt.Sprintf("mark_alteration_pct_e%d", cfg.EPair[0]),
		fmt.Sprintf("mark_alteration_pct_e%d", cfg.EPair[1]),
	)
	for _, size := range cfg.AttackSizes {
		row := []float64{size * 100}
		for _, e := range cfg.EPair {
			v, err := cfg.markAlteration(base, dom, e, alterationAttack(size))
			if err != nil {
				return nil, err
			}
			row = append(row, v)
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Figure5 regenerates "mark alteration (%) vs e" for the two attack sizes.
// Paper shape: alteration increases with e (less embedding bandwidth ⇒
// higher vulnerability), and the 55% attack dominates the 20% one.
func Figure5(cfg Config) (*Table, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	base, dom, err := cfg.dataset()
	if err != nil {
		return nil, err
	}
	t := NewTable(
		"Figure 5 — bandwidth/resilience trade-off: watermark alteration vs. e",
		"e",
		fmt.Sprintf("mark_alteration_pct_attack%.0f", cfg.AttackPair[0]*100),
		fmt.Sprintf("mark_alteration_pct_attack%.0f", cfg.AttackPair[1]*100),
	)
	for _, e := range cfg.ESweep {
		if mark.Bandwidth(cfg.N, e) < cfg.WMBits {
			continue // insufficient bandwidth at this e for this N
		}
		row := []float64{float64(e)}
		for _, size := range cfg.AttackPair {
			v, err := cfg.markAlteration(base, dom, e, alterationAttack(size))
			if err != nil {
				return nil, err
			}
			row = append(row, v)
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Figure6 regenerates the composite surface: mark alteration over the
// (attack size × e) grid. Paper shape: a lower-left (small attack, small
// e) to upper-right (large attack, large e) tilt.
func Figure6(cfg Config) (*Table, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	base, dom, err := cfg.dataset()
	if err != nil {
		return nil, err
	}
	t := NewTable(
		"Figure 6 — watermark alteration surface over (attack size, e)",
		"attack_size_pct", "e", "mark_alteration_pct",
	)
	for _, size := range cfg.AttackSizes {
		for _, e := range cfg.ESweep {
			if mark.Bandwidth(cfg.N, e) < cfg.WMBits {
				continue
			}
			v, err := cfg.markAlteration(base, dom, e, alterationAttack(size))
			if err != nil {
				return nil, err
			}
			t.AddRow(size*100, float64(e), v)
		}
	}
	return t, nil
}

// Figure7 regenerates "mark alteration (%) vs data loss (%)" at e = E7.
// Paper shape: near-linear degradation, tolerating up to 80% data loss
// with roughly 25% watermark alteration — the headline claim.
//
// Two series are produced. "paper_literal" zero-initialises wm_data as
// Figure 2(a) does, so positions whose fit tuples were lost read as 0 and
// "1" bits decay with loss — the mechanism behind the paper's curve.
// "erasure_aware" is this implementation's default decoding, which skips
// unfilled positions and degrades far more slowly (see EXPERIMENTS.md).
func Figure7(cfg Config) (*Table, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	base, dom, err := cfg.dataset()
	if err != nil {
		return nil, err
	}
	t := NewTable(
		"Figure 7 — watermark degradation vs. data loss (A1 subset selection)",
		"data_loss_pct", "mark_alteration_pct_paper_literal", "mark_alteration_pct_erasure_aware",
	)
	for _, loss := range cfg.LossSizes {
		literal, err := cfg.markAlterationVariant(base, dom, cfg.E7, lossAttack(loss),
			func(o *mark.Options) { o.ZeroUnfilled = true })
		if err != nil {
			return nil, err
		}
		aware, err := cfg.markAlteration(base, dom, cfg.E7, lossAttack(loss))
		if err != nil {
			return nil, err
		}
		t.AddRow(loss*100, literal, aware)
	}
	return t, nil
}
