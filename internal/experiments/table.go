package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table is a figure or table result: named columns of float rows, with
// CSV and aligned-text renderers. All experiment runners return Tables so
// the CLI, the benches, and EXPERIMENTS.md share one representation.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]float64
}

// NewTable creates an empty table with the given title and column names.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; it must match the column count.
func (t *Table) AddRow(values ...float64) {
	if len(values) != len(t.Columns) {
		panic(fmt.Sprintf("experiments: row arity %d, table arity %d",
			len(values), len(t.Columns)))
	}
	t.Rows = append(t.Rows, values)
}

// Column returns the values of the named column.
func (t *Table) Column(name string) ([]float64, error) {
	for i, c := range t.Columns {
		if c == name {
			out := make([]float64, len(t.Rows))
			for j, row := range t.Rows {
				out[j] = row[i]
			}
			return out, nil
		}
	}
	return nil, fmt.Errorf("experiments: no column %q", name)
}

// WriteCSV emits the table as CSV with a header row.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		rec := make([]string, len(row))
		for i, v := range row {
			rec[i] = strconv.FormatFloat(v, 'g', 6, 64)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Render emits the title plus an aligned text table.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	cells := make([][]string, len(t.Rows))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for j, row := range t.Rows {
		cells[j] = make([]string, len(row))
		for i, v := range row {
			s := strconv.FormatFloat(v, 'f', 2, 64)
			s = strings.TrimSuffix(strings.TrimRight(s, "0"), ".")
			if s == "" || s == "-" {
				s = "0"
			}
			cells[j][i] = s
			if len(s) > widths[i] {
				widths[i] = len(s)
			}
		}
	}
	var b strings.Builder
	b.WriteString(t.Title)
	b.WriteByte('\n')
	for i, c := range t.Columns {
		if i > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%*s", widths[i], c)
	}
	b.WriteByte('\n')
	for i, wd := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", wd))
	}
	b.WriteByte('\n')
	for _, row := range cells {
		for i, cell := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}
