package experiments

import (
	"repro/internal/analysis"
	"repro/internal/stats"
)

// TableA reproduces the three worked vulnerability examples of Section 4.4
// — the paper's analytical "table". Each row pairs the paper's printed
// value with this implementation's computed value(s).
//
//	A1  false-positive probability, N=6000, e=60: (1/2)^100 ≈ 7.8e-31
//	A2  attack success P(15, 1200) at e=60, p=0.7: paper ≈ 31.6%
//	    (normal table lookup); full-precision normal ≈ 31.3%; exact
//	    binomial ≈ 41.6%; Monte-Carlo cross-check included
//	A2b expected final mark damage: 1.0% of the watermark
//	A3  minimum e for P ≤ 10% at a=600, r=15: paper prints "e ≤ 23,
//	    alter ≈ 4.3%"; solving the paper's own equation (2) gives e ≥ 34,
//	    alter ≈ 2.9% — see EXPERIMENTS.md for the discrepancy discussion
func TableA() (*Table, error) {
	t := NewTable(
		"Table A — Section 4.4 worked vulnerability examples (paper vs computed)",
		"row", "paper_value", "computed",
	)

	// A1: false positives. Stored as -log10 for readable magnitudes.
	fp := analysis.FalsePositiveProbFullBandwidth(6000, 60)
	t.AddRow(1, 7.8e-31, fp)

	// A2: attack success probability.
	m := analysis.AttackModel{N: 6000, E: 60, A: 1200, P: 0.7, R: 15}
	normal, _, err := analysis.AttackSuccessNormal(m)
	if err != nil {
		return nil, err
	}
	exact, err := analysis.AttackSuccessExact(m)
	if err != nil {
		return nil, err
	}
	sim, err := analysis.SimulateAttackSuccess(m, 200000, stats.NewSource("tablea-sim"))
	if err != nil {
		return nil, err
	}
	t.AddRow(2, 0.316, normal)
	t.AddRow(3, 0.316, exact) // paper's printed value vs exact binomial
	t.AddRow(4, 0.316, sim)

	// A2b: expected final watermark damage.
	dmg := analysis.ExpectedMarkAlteration(15, 6000, 60, 0.05, 10, 100)
	t.AddRow(5, 0.01, dmg)

	// A3: minimum e and the implied alteration budget.
	eStar, err := analysis.MinimumE(600, 0.7, 0.10, 15)
	if err != nil {
		return nil, err
	}
	t.AddRow(6, 23, float64(eStar))
	t.AddRow(7, 0.043, analysis.AlterationBudget(6000, eStar))
	return t, nil
}

// TableARowLabels describes each TableA row for human-readable output.
var TableARowLabels = map[int]string{
	1: "false-positive probability (1/2)^(N/e), N=6000, e=60",
	2: "P(r=15, a=1200) — paper normal-table vs full-precision normal",
	3: "P(r=15, a=1200) — paper normal-table vs exact binomial tail",
	4: "P(r=15, a=1200) — paper normal-table vs Monte-Carlo (200k trials)",
	5: "expected final watermark damage (t_ecc=5%, |wm|=10, |wm_data|=100)",
	6: "minimum e for P <= 10% at a=600 — paper prints 23, equation gives 34",
	7: "implied alteration budget N/e* — paper prints 4.3%",
}
