package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// tinyConfig keeps test runtime low while preserving every figure's shape.
func tinyConfig() Config {
	cfg := DefaultConfig()
	cfg.N = 6000
	cfg.CatalogSize = 300
	cfg.Passes = 6
	cfg.AttackSizes = []float64{0.2, 0.5, 0.8}
	cfg.ESweep = []uint64{25, 75, 150}
	cfg.LossSizes = []float64{0.2, 0.5, 0.8}
	return cfg
}

func TestFigure4ShapeMatchesPaper(t *testing.T) {
	tab, err := Figure4(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows %d, want 3", len(tab.Rows))
	}
	e65, err := tab.Column("mark_alteration_pct_e65")
	if err != nil {
		t.Fatal(err)
	}
	e35, err := tab.Column("mark_alteration_pct_e35")
	if err != nil {
		t.Fatal(err)
	}
	// Shape 1: graceful degradation — larger attacks hurt at least as much.
	if e65[0] > e65[2]+5 {
		t.Errorf("e=65 not degrading with attack size: %v", e65)
	}
	// Shape 2: smaller e (more bandwidth) is at least as resilient at the
	// heavy end. The margin reflects the small-pass noise floor of the
	// scaled-down config (each series averages Passes × WMBits bits).
	if e35[2] > e65[2]+10 {
		t.Errorf("e=35 (%v) should not be clearly worse than e=65 (%v)", e35[2], e65[2])
	}
	// Shape 3: a 20% attack is largely absorbed by the ECC.
	if e35[0] > 20 {
		t.Errorf("20%% attack at e=35 caused %v%% mark alteration", e35[0])
	}
}

func TestFigure5ShapeMatchesPaper(t *testing.T) {
	tab, err := Figure5(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	heavy, err := tab.Column("mark_alteration_pct_attack55")
	if err != nil {
		t.Fatal(err)
	}
	light, err := tab.Column("mark_alteration_pct_attack20")
	if err != nil {
		t.Fatal(err)
	}
	// Shape 1: vulnerability grows with e (end ≥ start, with slack for the
	// small-pass noise floor).
	if heavy[len(heavy)-1]+5 < heavy[0] {
		t.Errorf("55%% attack alteration not increasing with e: %v", heavy)
	}
	// Shape 2: the heavier attack dominates overall.
	sumH, sumL := 0.0, 0.0
	for i := range heavy {
		sumH += heavy[i]
		sumL += light[i]
	}
	if sumH < sumL {
		t.Errorf("55%% attack (%v) should dominate 20%% attack (%v)", sumH, sumL)
	}
}

func TestFigure6SurfaceTilt(t *testing.T) {
	tab, err := Figure6(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Corner comparison: (small attack, small e) must be better than
	// (large attack, large e) — the paper's lower-left to upper-right tilt.
	var best, worst float64 = -1, -1
	for _, row := range tab.Rows {
		attack, e, v := row[0], row[1], row[2]
		if attack == 20 && e == 25 {
			best = v
		}
		if attack == 80 && e == 150 {
			worst = v
		}
	}
	if best < 0 || worst < 0 {
		t.Fatal("surface corners missing")
	}
	if best >= worst {
		t.Errorf("surface tilt inverted: corner(20,25)=%v vs corner(80,150)=%v", best, worst)
	}
}

func TestFigure7DataLossHeadline(t *testing.T) {
	tab, err := Figure7(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	literal, err := tab.Column("mark_alteration_pct_paper_literal")
	if err != nil {
		t.Fatal(err)
	}
	aware, err := tab.Column("mark_alteration_pct_erasure_aware")
	if err != nil {
		t.Fatal(err)
	}
	// Paper-literal decoding: visible degradation that grows with loss —
	// the mechanism behind the paper's near-linear Figure 7 curve. The
	// absolute level depends on bandwidth (replicas per bit), which the
	// tiny config deliberately starves; only the shape is asserted.
	if literal[len(literal)-1] <= literal[0] {
		t.Errorf("paper-literal decode not degrading with loss: %v", literal)
	}
	// Erasure-aware decoding dominates paper-literal at every loss level.
	for i := range aware {
		if aware[i] > literal[i]+5 {
			t.Errorf("erasure-aware (%v) worse than paper-literal (%v) at row %d",
				aware[i], literal[i], i)
		}
	}
	// The headline claim holds in the improved mode by a wide margin.
	if aware[len(aware)-1] > 25 {
		t.Errorf("erasure-aware decode lost %v%% at 80%% loss", aware[len(aware)-1])
	}
}

func TestTableAPaperNumbers(t *testing.T) {
	tab, err := TableA()
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 7 {
		t.Fatalf("rows %d, want 7", len(tab.Rows))
	}
	byRow := map[int][]float64{}
	for _, r := range tab.Rows {
		byRow[int(r[0])] = r
	}
	// Row 1: false positive ≈ 7.9e-31.
	if fp := byRow[1][2]; fp > 1e-30 || fp < 1e-31 {
		t.Errorf("false positive %g", fp)
	}
	// Row 2: normal approx ≈ 0.313, close to the paper's 0.316.
	if p := byRow[2][2]; p < 0.30 || p > 0.33 {
		t.Errorf("normal approx %v", p)
	}
	// Row 4: Monte-Carlo near the exact value (row 3).
	if d := byRow[4][2] - byRow[3][2]; d > 0.02 || d < -0.02 {
		t.Errorf("simulation %v vs exact %v", byRow[4][2], byRow[3][2])
	}
	// Row 5: damage estimate exactly 1%.
	if dmg := byRow[5][2]; dmg < 0.0099 || dmg > 0.0101 {
		t.Errorf("damage %v", dmg)
	}
	// Row 6/7: e* ≈ 34, budget ≈ 2.9%.
	if e := byRow[6][2]; e < 30 || e > 38 {
		t.Errorf("e* = %v", e)
	}
	if b := byRow[7][2]; b < 0.02 || b > 0.04 {
		t.Errorf("budget %v", b)
	}
	for row := range byRow {
		if TableARowLabels[row] == "" {
			t.Errorf("row %d has no label", row)
		}
	}
}

func TestTableRenderAndCSV(t *testing.T) {
	tab := NewTable("Demo", "x", "y")
	tab.AddRow(1, 2.5)
	tab.AddRow(10, 20)
	var txt bytes.Buffer
	if err := tab.Render(&txt); err != nil {
		t.Fatal(err)
	}
	out := txt.String()
	for _, want := range []string{"Demo", "x", "y", "2.5", "20"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in %q", want, out)
		}
	}
	var csvBuf bytes.Buffer
	if err := tab.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	if len(lines) != 3 || lines[0] != "x,y" {
		t.Fatalf("csv = %q", csvBuf.String())
	}
}

func TestTableColumnErrors(t *testing.T) {
	tab := NewTable("T", "a")
	if _, err := tab.Column("zzz"); err == nil {
		t.Error("unknown column accepted")
	}
}

func TestTableAddRowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTable("T", "a", "b").AddRow(1)
}

func TestConfigValidation(t *testing.T) {
	bad := DefaultConfig()
	bad.N = 0
	if _, err := Figure4(bad); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestAblationVoteAggregation(t *testing.T) {
	cfg := tinyConfig()
	cfg.AttackSizes = []float64{0.4}
	tab, err := AblationVoteAggregation(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 1 || len(tab.Rows[0]) != 3 {
		t.Fatalf("shape wrong: %+v", tab.Rows)
	}
	// The two aggregations only differ when several fit tuples collide on
	// one wm_data position; at N/e ≈ bandwidth the expected voters per
	// position is ~1, so they are statistically equivalent here — require
	// only that majority is not dramatically worse.
	if tab.Rows[0][1] > tab.Rows[0][2]+10 {
		t.Errorf("majority %v much worse than last-write %v", tab.Rows[0][1], tab.Rows[0][2])
	}
}

func TestAblationECC(t *testing.T) {
	cfg := tinyConfig()
	cfg.AttackSizes = []float64{0.5}
	tab, err := AblationECC(cfg)
	if err != nil {
		t.Fatal(err)
	}
	row := tab.Rows[0]
	// Identity (no redundancy) must be clearly worse than interleaved
	// majority under a 50% alteration attack.
	if row[3] < row[1] {
		t.Errorf("identity (%v) outperformed majority (%v)?", row[3], row[1])
	}
}

func TestAblationEmbeddingMap(t *testing.T) {
	cfg := tinyConfig()
	cfg.LossSizes = []float64{0.5}
	tab, err := AblationEmbeddingMap(cfg)
	if err != nil {
		t.Fatal(err)
	}
	row := tab.Rows[0]
	// Both variants should hold up under 50% loss; the map variant has
	// exact positions so it must not be dramatically worse.
	if row[1] > 40 || row[2] > 40 {
		t.Errorf("excessive degradation: blind %v, map %v", row[1], row[2])
	}
}
